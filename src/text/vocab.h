#ifndef EXPLAINTI_TEXT_VOCAB_H_
#define EXPLAINTI_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace explainti::text {

/// Well-known special-token ids; every Vocab places them first.
struct SpecialTokens {
  static constexpr int kPad = 0;
  static constexpr int kUnk = 1;
  static constexpr int kCls = 2;
  static constexpr int kSep = 3;
  static constexpr int kMask = 4;
  static constexpr int kCount = 5;

  static const char* Name(int id);
};

/// Bidirectional token <-> id map with BERT-style special tokens.
///
/// Ids 0..4 are reserved ([PAD], [UNK], [CLS], [SEP], [MASK]); the builder
/// appends corpus tokens after them. Immutable once built.
class Vocab {
 public:
  /// Empty vocabulary containing only the special tokens.
  Vocab();

  /// Adds `token` if absent; returns its id either way.
  int AddToken(const std::string& token);

  /// Id for `token`, or kUnk when unknown.
  int Id(const std::string& token) const;

  /// True if `token` is present.
  bool Contains(const std::string& token) const;

  /// Token string for `id` (aborts when out of range).
  const std::string& Token(int id) const;

  /// Total size including special tokens.
  int size() const { return static_cast<int>(tokens_.size()); }

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> ids_;
};

/// Builds a vocabulary from a token-frequency histogram: keeps tokens with
/// frequency >= `min_count` (most frequent first) up to `max_size`, and
/// always includes all single ASCII characters plus their "##c"
/// continuation forms so WordPiece can decompose any word.
Vocab BuildVocab(const std::unordered_map<std::string, int64_t>& counts,
                 int max_size, int64_t min_count = 1);

}  // namespace explainti::text

#endif  // EXPLAINTI_TEXT_VOCAB_H_
