#ifndef EXPLAINTI_TEXT_SERIALIZER_H_
#define EXPLAINTI_TEXT_SERIALIZER_H_

#include <string>
#include <vector>

#include "text/tokenizer.h"

namespace explainti::text {

/// Raw material for serialising one column (Section II-B of the paper).
struct ColumnText {
  std::string title;               ///< Table title p.
  std::string header;              ///< Column header h_i.
  std::vector<std::string> cells;  ///< Cell values v_1..v_m.
};

/// A serialised, tokenised sample ready for the encoder.
struct EncodedSequence {
  std::vector<int> ids;             ///< Token ids, starts with [CLS].
  std::vector<int> segments;        ///< 0 for first sentence, 1 for second.
  std::vector<std::string> tokens;  ///< Token strings (for explanations).
  /// Index of the first [SEP]; for pairs this separates the two columns
  /// (Algorithm 1 iterates windows on each side of it).
  int sep_pos = -1;
};

/// Serialises columns and column pairs into BERT-style sequences:
///   S(c)        = [CLS] title p header h cell v1 ... vm [SEP]
///   S(c_i,c_j)  = [CLS] title p header h_i cell v^i... [SEP]
///                 header h_j cell v^j... [SEP]
///
/// `dedup_cells` implements the paper's PP pre-processing step (choose
/// unduplicated cell values, Section IV-D). Sequences are truncated to
/// `max_len` tokens, always ending with [SEP].
class SequenceSerializer {
 public:
  SequenceSerializer(const Tokenizer* tokenizer, int max_len,
                     bool dedup_cells = false);

  /// Serialises a single column for the type-prediction task.
  EncodedSequence SerializeColumn(const ColumnText& column) const;

  /// Serialises a column pair for the relation-prediction task. The two
  /// columns share the table title, which is emitted once.
  EncodedSequence SerializePair(const ColumnText& left,
                                const ColumnText& right) const;

  int max_len() const { return max_len_; }

 private:
  /// Appends the tokenisation of `text` to ids/tokens with segment id
  /// `segment`, stopping at the token budget.
  void AppendText(const std::string& text, int segment, EncodedSequence* seq,
                  int budget) const;
  void AppendSpecial(int id, int segment, EncodedSequence* seq) const;
  std::vector<std::string> MaybeDedup(
      const std::vector<std::string>& cells) const;

  const Tokenizer* tokenizer_;  // Not owned.
  int max_len_;
  bool dedup_cells_;
};

/// Incremental builder for custom serialisations (used by the TaBERT and
/// TURL baselines, whose input layouts differ from S(c)).
class SequenceBuilder {
 public:
  SequenceBuilder(const Tokenizer* tokenizer, int max_len);

  /// Appends a special token ([CLS], [SEP], ...).
  void AddSpecial(int id, int segment);

  /// Appends the tokenisation of `text`; silently stops at the token
  /// budget (one slot is always reserved for the final [SEP]).
  void AddText(const std::string& text, int segment);

  /// Remaining token budget (excluding the reserved final [SEP]).
  int Remaining() const;

  /// Finalises: guarantees a trailing [SEP] and sets sep_pos to the first
  /// [SEP] in the sequence.
  EncodedSequence Build();

 private:
  const Tokenizer* tokenizer_;
  int max_len_;
  EncodedSequence seq_;
};

}  // namespace explainti::text

#endif  // EXPLAINTI_TEXT_SERIALIZER_H_
