#include "text/vocab.h"

#include <algorithm>

#include "util/logging.h"

namespace explainti::text {

const char* SpecialTokens::Name(int id) {
  switch (id) {
    case kPad:
      return "[PAD]";
    case kUnk:
      return "[UNK]";
    case kCls:
      return "[CLS]";
    case kSep:
      return "[SEP]";
    case kMask:
      return "[MASK]";
    default:
      return "";
  }
}

Vocab::Vocab() {
  for (int id = 0; id < SpecialTokens::kCount; ++id) {
    AddToken(SpecialTokens::Name(id));
  }
}

int Vocab::AddToken(const std::string& token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(tokens_.size());
  tokens_.push_back(token);
  ids_.emplace(token, id);
  return id;
}

int Vocab::Id(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? SpecialTokens::kUnk : it->second;
}

bool Vocab::Contains(const std::string& token) const {
  return ids_.count(token) > 0;
}

const std::string& Vocab::Token(int id) const {
  CHECK(id >= 0 && id < size()) << "token id out of range: " << id;
  return tokens_[static_cast<size_t>(id)];
}

Vocab BuildVocab(const std::unordered_map<std::string, int64_t>& counts,
                 int max_size, int64_t min_count) {
  Vocab vocab;
  // Character fallbacks first so they always fit within max_size.
  const std::string kChars =
      "abcdefghijklmnopqrstuvwxyz0123456789.-_'&/(),:%$";
  for (char c : kChars) {
    vocab.AddToken(std::string(1, c));
    vocab.AddToken(std::string("##") + c);
  }

  std::vector<std::pair<std::string, int64_t>> sorted(counts.begin(),
                                                      counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // Tie-break on the token for determinism.
  });
  for (const auto& [token, count] : sorted) {
    if (vocab.size() >= max_size) break;
    if (count < min_count) break;
    vocab.AddToken(token);
  }
  return vocab;
}

}  // namespace explainti::text
