#include "text/tokenizer.h"

#include <cctype>

#include "util/logging.h"
#include "util/string_util.h"

namespace explainti::text {

namespace {

bool IsPunct(char c) {
  return std::ispunct(static_cast<unsigned char>(c)) != 0;
}

/// Greedy longest-match WordPiece decomposition of a single word.
/// Returns false when some position cannot be matched at all.
bool GreedyWordPiece(const Vocab& vocab, const std::string& word,
                     std::vector<std::string>* pieces) {
  size_t start = 0;
  while (start < word.size()) {
    size_t end = word.size();
    bool found = false;
    std::string match;
    while (end > start) {
      std::string candidate = word.substr(start, end - start);
      if (start > 0) candidate = "##" + candidate;
      if (vocab.Contains(candidate)) {
        match = candidate;
        found = true;
        break;
      }
      --end;
    }
    if (!found) return false;
    pieces->push_back(match);
    start = end;
  }
  return true;
}

}  // namespace

std::vector<std::string> BasicTokenize(const std::string& text) {
  const std::string lower = util::ToLower(text);
  std::vector<std::string> out;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  for (char c : lower) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (IsPunct(c) && c != '\'') {
      flush();
      out.emplace_back(1, c);
    } else {
      current.push_back(c);
    }
  }
  flush();
  return out;
}

std::vector<int> Tokenizer::Encode(const std::string& text) const {
  std::vector<int> ids;
  for (const std::string& token : Tokenize(text)) {
    ids.push_back(vocab_->Id(token));
  }
  return ids;
}

std::vector<std::string> WordPieceTokenizer::Tokenize(
    const std::string& text) const {
  std::vector<std::string> out;
  for (const std::string& word : BasicTokenize(text)) {
    std::vector<std::string> pieces;
    if (vocab_->Contains(word)) {
      out.push_back(word);
    } else if (GreedyWordPiece(*vocab_, word, &pieces)) {
      out.insert(out.end(), pieces.begin(), pieces.end());
    } else {
      out.push_back(SpecialTokens::Name(SpecialTokens::kUnk));
    }
  }
  return out;
}

std::vector<std::string> ByteFallbackTokenizer::Tokenize(
    const std::string& text) const {
  std::vector<std::string> out;
  for (const std::string& word : BasicTokenize(text)) {
    std::vector<std::string> pieces;
    if (vocab_->Contains(word)) {
      out.push_back(word);
      continue;
    }
    if (GreedyWordPiece(*vocab_, word, &pieces)) {
      out.insert(out.end(), pieces.begin(), pieces.end());
      continue;
    }
    // Byte-level fallback: emit each character; unknown characters map to
    // [UNK] at encode time but the character tokens built into every vocab
    // make that rare.
    for (size_t i = 0; i < word.size(); ++i) {
      std::string piece(1, word[i]);
      if (i > 0) piece = "##" + piece;
      out.push_back(piece);
    }
  }
  return out;
}

std::unique_ptr<Tokenizer> MakeTokenizer(const std::string& base_model,
                                         std::shared_ptr<const Vocab> vocab) {
  if (base_model == "bert") {
    return std::make_unique<WordPieceTokenizer>(std::move(vocab));
  }
  if (base_model == "roberta") {
    return std::make_unique<ByteFallbackTokenizer>(std::move(vocab));
  }
  LOG(FATAL) << "unknown base model: " << base_model;
  return nullptr;
}

}  // namespace explainti::text
