#ifndef EXPLAINTI_TEXT_TOKENIZER_H_
#define EXPLAINTI_TEXT_TOKENIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "text/vocab.h"

namespace explainti::text {

/// Splits raw text into pre-tokens: lower-cases, splits on whitespace, and
/// breaks punctuation into standalone tokens (BERT's BasicTokenizer).
std::vector<std::string> BasicTokenize(const std::string& text);

/// Subword tokenizer interface. Two implementations mirror the paper's two
/// base models ("bert" and "roberta"); they share the greedy WordPiece
/// algorithm but differ in unknown-word handling (see each class).
class Tokenizer {
 public:
  virtual ~Tokenizer() = default;

  /// Subword token strings for `text`.
  virtual std::vector<std::string> Tokenize(const std::string& text) const = 0;

  /// Token ids for `text` (no special tokens added).
  std::vector<int> Encode(const std::string& text) const;

  const Vocab& vocab() const { return *vocab_; }

 protected:
  explicit Tokenizer(std::shared_ptr<const Vocab> vocab)
      : vocab_(std::move(vocab)) {}

  std::shared_ptr<const Vocab> vocab_;
};

/// BERT-style WordPiece: greedy longest-match-first with "##" continuation
/// pieces; a word with no decomposition becomes a single [UNK].
class WordPieceTokenizer : public Tokenizer {
 public:
  explicit WordPieceTokenizer(std::shared_ptr<const Vocab> vocab)
      : Tokenizer(std::move(vocab)) {}

  std::vector<std::string> Tokenize(const std::string& text) const override;
};

/// RoBERTa-flavoured tokenizer: same greedy subword matching but with
/// byte(character)-level fallback, so no token ever maps to [UNK] — the
/// practical property that distinguishes RoBERTa's byte-level BPE from
/// BERT's WordPiece at this scale.
class ByteFallbackTokenizer : public Tokenizer {
 public:
  explicit ByteFallbackTokenizer(std::shared_ptr<const Vocab> vocab)
      : Tokenizer(std::move(vocab)) {}

  std::vector<std::string> Tokenize(const std::string& text) const override;
};

/// Creates a tokenizer by base-model name: "bert" -> WordPiece,
/// "roberta" -> byte-fallback. Aborts on other names.
std::unique_ptr<Tokenizer> MakeTokenizer(const std::string& base_model,
                                         std::shared_ptr<const Vocab> vocab);

}  // namespace explainti::text

#endif  // EXPLAINTI_TEXT_TOKENIZER_H_
