#include "text/serializer.h"

#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace explainti::text {

SequenceSerializer::SequenceSerializer(const Tokenizer* tokenizer, int max_len,
                                       bool dedup_cells)
    : tokenizer_(tokenizer), max_len_(max_len), dedup_cells_(dedup_cells) {
  CHECK(tokenizer != nullptr);
  CHECK_GE(max_len, 8) << "max_len too small to hold a serialised column";
}

void SequenceSerializer::AppendSpecial(int id, int segment,
                                       EncodedSequence* seq) const {
  seq->ids.push_back(id);
  seq->segments.push_back(segment);
  seq->tokens.emplace_back(SpecialTokens::Name(id));
}

void SequenceSerializer::AppendText(const std::string& text, int segment,
                                    EncodedSequence* seq, int budget) const {
  for (const std::string& token : tokenizer_->Tokenize(text)) {
    if (static_cast<int>(seq->ids.size()) >= budget) return;
    seq->ids.push_back(tokenizer_->vocab().Id(token));
    seq->segments.push_back(segment);
    seq->tokens.push_back(token);
  }
}

std::vector<std::string> SequenceSerializer::MaybeDedup(
    const std::vector<std::string>& cells) const {
  if (!dedup_cells_) return cells;
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const std::string& cell : cells) {
    if (seen.insert(util::ToLower(cell)).second) out.push_back(cell);
  }
  return out;
}

EncodedSequence SequenceSerializer::SerializeColumn(
    const ColumnText& column) const {
  EncodedSequence seq;
  const int budget = max_len_ - 1;  // Reserve the trailing [SEP].
  AppendSpecial(SpecialTokens::kCls, 0, &seq);
  AppendText("title " + column.title, 0, &seq, budget);
  AppendText("header " + column.header, 0, &seq, budget);
  AppendText("cell", 0, &seq, budget);
  for (const std::string& cell : MaybeDedup(column.cells)) {
    if (static_cast<int>(seq.ids.size()) >= budget) break;
    AppendText(cell, 0, &seq, budget);
  }
  AppendSpecial(SpecialTokens::kSep, 0, &seq);
  seq.sep_pos = static_cast<int>(seq.ids.size()) - 1;
  return seq;
}

EncodedSequence SequenceSerializer::SerializePair(
    const ColumnText& left, const ColumnText& right) const {
  EncodedSequence seq;
  // Split the budget so the right column is never squeezed out: first part
  // may use up to ~60% (title is emitted once on the left side).
  const int budget_total = max_len_ - 2;  // Two [SEP] tokens.
  const int budget_left = budget_total * 3 / 5;
  AppendSpecial(SpecialTokens::kCls, 0, &seq);
  AppendText("title " + left.title, 0, &seq, budget_left);
  AppendText("header " + left.header, 0, &seq, budget_left);
  AppendText("cell", 0, &seq, budget_left);
  for (const std::string& cell : MaybeDedup(left.cells)) {
    if (static_cast<int>(seq.ids.size()) >= budget_left) break;
    AppendText(cell, 0, &seq, budget_left);
  }
  AppendSpecial(SpecialTokens::kSep, 0, &seq);
  seq.sep_pos = static_cast<int>(seq.ids.size()) - 1;

  const int budget_right = budget_total + 1;  // All but the final [SEP].
  AppendText("header " + right.header, 1, &seq, budget_right);
  AppendText("cell", 1, &seq, budget_right);
  for (const std::string& cell : MaybeDedup(right.cells)) {
    if (static_cast<int>(seq.ids.size()) >= budget_right) break;
    AppendText(cell, 1, &seq, budget_right);
  }
  AppendSpecial(SpecialTokens::kSep, 1, &seq);
  return seq;
}

SequenceBuilder::SequenceBuilder(const Tokenizer* tokenizer, int max_len)
    : tokenizer_(tokenizer), max_len_(max_len) {
  CHECK(tokenizer != nullptr);
  CHECK_GE(max_len, 4);
}

void SequenceBuilder::AddSpecial(int id, int segment) {
  if (static_cast<int>(seq_.ids.size()) >= max_len_ - 1) return;
  seq_.ids.push_back(id);
  seq_.segments.push_back(segment);
  seq_.tokens.emplace_back(SpecialTokens::Name(id));
}

void SequenceBuilder::AddText(const std::string& text, int segment) {
  for (const std::string& token : tokenizer_->Tokenize(text)) {
    if (static_cast<int>(seq_.ids.size()) >= max_len_ - 1) return;
    seq_.ids.push_back(tokenizer_->vocab().Id(token));
    seq_.segments.push_back(segment);
    seq_.tokens.push_back(token);
  }
}

int SequenceBuilder::Remaining() const {
  return max_len_ - 1 - static_cast<int>(seq_.ids.size());
}

EncodedSequence SequenceBuilder::Build() {
  const int last_segment = seq_.segments.empty() ? 0 : seq_.segments.back();
  seq_.ids.push_back(SpecialTokens::kSep);
  seq_.segments.push_back(last_segment);
  seq_.tokens.emplace_back(SpecialTokens::Name(SpecialTokens::kSep));
  seq_.sep_pos = -1;
  for (size_t i = 0; i < seq_.ids.size(); ++i) {
    if (seq_.ids[i] == SpecialTokens::kSep) {
      seq_.sep_pos = static_cast<int>(i);
      break;
    }
  }
  return std::move(seq_);
}

}  // namespace explainti::text
