#ifndef EXPLAINTI_EVAL_HUMAN_SIM_H_
#define EXPLAINTI_EVAL_HUMAN_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace explainti::eval {

/// One explanation as shown to a (simulated) judge.
struct JudgedExplanation {
  /// The explanation units the judge reads (windows, retrieved samples,
  /// neighbours, or single tokens for saliency maps).
  std::vector<std::string> items;
  /// Evidence-oracle tokens for the underlying sample (generator-provided
  /// ground truth of what actually carries the label signal).
  std::vector<std::string> evidence;
  /// Whether the model's prediction was correct.
  bool prediction_correct = false;
  /// Length of the underlying serialised sample in tokens (verification
  /// effort proxy).
  int sample_tokens = 0;
};

/// Aggregate outcome of a simulated human study (paper Figure 5).
struct HumanEvalResult {
  double adequacy_pct = 0.0;          ///< "adequately justifies" votes, %.
  double understandability_pct = 0.0; ///< "understandable" votes, %.
  double mean_trust = 0.0;            ///< Mean 1-5 trust score.
  double evidence_coverage = 0.0;     ///< Mean oracle-evidence coverage.
};

/// Simulated-judge model (substitution for the paper's 50 human judges;
/// DESIGN.md §1).
///
/// Each judge votes per sample from two measurable properties:
///  - *evidence coverage*: does the explanation point at tokens the oracle
///    knows to carry the label signal? (drives adequacy and trust);
///  - *coherence*: are units phrase-sized rather than scattered single
///    tokens or overwhelming full texts? (drives understandability).
/// Per-judge bias and per-vote noise model inter-annotator variance.
HumanEvalResult SimulateJudges(const std::vector<JudgedExplanation>& samples,
                               int num_judges, uint64_t seed);

/// Online verification-time simulation (paper Section IV-C): experts
/// verify predictions with and without explanations. Reading a covering
/// explanation lets the expert confirm without scanning the whole sample;
/// a non-covering explanation costs its reading time on top of the scan.
struct VerificationOutcome {
  double mean_seconds_without = 0.0;
  double mean_seconds_with = 0.0;
  double reduction_pct = 0.0;  ///< Positive = explanations save time.
};

VerificationOutcome SimulateVerification(
    const std::vector<JudgedExplanation>& samples, uint64_t seed);

}  // namespace explainti::eval

#endif  // EXPLAINTI_EVAL_HUMAN_SIM_H_
