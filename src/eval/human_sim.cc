#include "eval/human_sim.h"

#include <algorithm>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/rng.h"

namespace explainti::eval {

namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

/// Fraction of explanation items that mention at least one oracle-evidence
/// token.
double EvidenceCoverage(const JudgedExplanation& sample) {
  if (sample.items.empty()) return 0.0;
  std::unordered_set<std::string> evidence(sample.evidence.begin(),
                                           sample.evidence.end());
  if (evidence.empty()) return 0.0;
  int covered = 0;
  for (const std::string& item : sample.items) {
    for (const std::string& token : text::BasicTokenize(item)) {
      if (evidence.count(token)) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) /
         static_cast<double>(sample.items.size());
}

/// Coherence of the explanation units: phrase-sized units read best;
/// isolated tokens (saliency maps) and whole-sample dumps read worst.
double Coherence(const JudgedExplanation& sample) {
  if (sample.items.empty()) return 0.0;
  double total = 0.0;
  for (const std::string& item : sample.items) {
    const size_t words = text::BasicTokenize(item).size();
    double score;
    if (words <= 1) {
      score = 0.25;  // Scattered single tokens.
    } else if (words <= 12) {
      score = 1.0;  // Phrase-sized.
    } else if (words <= 24) {
      score = 0.7;  // Long but readable.
    } else {
      score = 0.45;  // Overwhelming.
    }
    total += score;
  }
  return total / static_cast<double>(sample.items.size());
}

}  // namespace

HumanEvalResult SimulateJudges(const std::vector<JudgedExplanation>& samples,
                               int num_judges, uint64_t seed) {
  CHECK(!samples.empty());
  CHECK_GT(num_judges, 0);
  util::Rng rng(seed);

  // Per-judge leniency bias models inter-annotator variance.
  std::vector<double> judge_bias(static_cast<size_t>(num_judges));
  for (double& b : judge_bias) b = rng.Normal(0.0, 0.05);

  int64_t adequacy_votes = 0;
  int64_t understandability_votes = 0;
  int64_t total_votes = 0;
  double trust_total = 0.0;
  double coverage_total = 0.0;

  for (const JudgedExplanation& sample : samples) {
    const double coverage = EvidenceCoverage(sample);
    const double coherence = Coherence(sample);
    coverage_total += coverage;
    for (int j = 0; j < num_judges; ++j) {
      const double bias = judge_bias[static_cast<size_t>(j)];
      const double noise = rng.Normal(0.0, 0.08);

      const double p_adequate =
          Clamp01(0.12 + 0.72 * coverage +
                  (sample.prediction_correct ? 0.06 : -0.06) + bias + noise);
      if (rng.Bernoulli(p_adequate)) ++adequacy_votes;

      const double p_understandable =
          Clamp01(0.18 + 0.52 * coherence + 0.25 * coverage + bias + noise);
      if (rng.Bernoulli(p_understandable)) ++understandability_votes;

      const double trust = 1.0 + 4.0 * Clamp01(0.52 * coverage +
                                               0.28 * coherence +
                                               (sample.prediction_correct
                                                    ? 0.12
                                                    : 0.0) +
                                               bias + noise);
      trust_total += trust;
      ++total_votes;
    }
  }

  HumanEvalResult result;
  result.adequacy_pct =
      100.0 * static_cast<double>(adequacy_votes) / total_votes;
  result.understandability_pct =
      100.0 * static_cast<double>(understandability_votes) / total_votes;
  result.mean_trust = trust_total / total_votes;
  result.evidence_coverage =
      coverage_total / static_cast<double>(samples.size());
  return result;
}

VerificationOutcome SimulateVerification(
    const std::vector<JudgedExplanation>& samples, uint64_t seed) {
  CHECK(!samples.empty());
  util::Rng rng(seed);

  // Time model (seconds): without an explanation the expert scans the full
  // serialised sample and cross-checks it; with an explanation the expert
  // first reads the top explanation units, and when they cover the true
  // evidence the remaining scan is a quick confirmation.
  constexpr double kFixedOverhead = 8.0;   // Load the sample, read labels.
  constexpr double kPerToken = 0.9;        // Full scan cost per token.
  constexpr double kPerExplItem = 2.5;     // Reading one explanation unit.
  constexpr double kCoveredScanFactor = 0.35;

  double without_total = 0.0;
  double with_total = 0.0;
  for (const JudgedExplanation& sample : samples) {
    const double scan = kPerToken * sample.sample_tokens;
    const double noise1 = rng.Normal(1.0, 0.08);
    const double noise2 = rng.Normal(1.0, 0.08);
    without_total += (kFixedOverhead + scan) * noise1;

    const double coverage = EvidenceCoverage(sample);
    const size_t read_items = std::min<size_t>(sample.items.size(), 3);
    const double read_time = kPerExplItem * static_cast<double>(read_items);
    // Expected scan after reading: covered fraction short-circuits.
    const double with_scan =
        coverage * kCoveredScanFactor * scan + (1.0 - coverage) * scan;
    with_total += (kFixedOverhead + read_time + with_scan) * noise2;
  }

  VerificationOutcome outcome;
  outcome.mean_seconds_without =
      without_total / static_cast<double>(samples.size());
  outcome.mean_seconds_with =
      with_total / static_cast<double>(samples.size());
  outcome.reduction_pct = 100.0 *
                          (outcome.mean_seconds_without -
                           outcome.mean_seconds_with) /
                          outcome.mean_seconds_without;
  return outcome;
}

}  // namespace explainti::eval
