#ifndef EXPLAINTI_EVAL_F1_METRICS_H_
#define EXPLAINTI_EVAL_F1_METRICS_H_

#include <vector>

namespace explainti::eval {

/// The three F1 aggregations the paper reports (Section IV-A).
struct F1Scores {
  double micro = 0.0;
  double macro = 0.0;
  double weighted = 0.0;
};

/// A prediction/gold pair as label-id sets. Multi-class tasks use
/// single-element sets; multi-label tasks may have several gold labels and
/// several predicted labels.
struct LabeledPrediction {
  std::vector<int> gold;
  std::vector<int> predicted;
};

/// Computes micro / macro / weighted F1 over `num_labels` classes from
/// per-label true-positive / false-positive / false-negative counts:
///  - micro: global counts pooled across labels;
///  - macro: unweighted mean of per-label F1;
///  - weighted: mean of per-label F1 weighted by gold support.
/// Labels with zero support contribute 0 to macro (standard sklearn
/// behaviour) and nothing to weighted.
F1Scores ComputeF1(const std::vector<LabeledPrediction>& predictions,
                   int num_labels);

}  // namespace explainti::eval

#endif  // EXPLAINTI_EVAL_F1_METRICS_H_
