#include "eval/f1_metrics.h"

#include <unordered_set>

#include "util/logging.h"

namespace explainti::eval {

F1Scores ComputeF1(const std::vector<LabeledPrediction>& predictions,
                   int num_labels) {
  CHECK_GT(num_labels, 0);
  std::vector<int64_t> tp(static_cast<size_t>(num_labels), 0);
  std::vector<int64_t> fp(static_cast<size_t>(num_labels), 0);
  std::vector<int64_t> fn(static_cast<size_t>(num_labels), 0);

  for (const LabeledPrediction& p : predictions) {
    std::unordered_set<int> gold(p.gold.begin(), p.gold.end());
    std::unordered_set<int> predicted(p.predicted.begin(), p.predicted.end());
    for (int label : predicted) {
      CHECK(label >= 0 && label < num_labels) << "label id out of range";
      if (gold.count(label)) {
        ++tp[static_cast<size_t>(label)];
      } else {
        ++fp[static_cast<size_t>(label)];
      }
    }
    for (int label : gold) {
      CHECK(label >= 0 && label < num_labels) << "label id out of range";
      if (!predicted.count(label)) ++fn[static_cast<size_t>(label)];
    }
  }

  int64_t tp_total = 0;
  int64_t fp_total = 0;
  int64_t fn_total = 0;
  double macro_sum = 0.0;
  double weighted_sum = 0.0;
  int64_t support_total = 0;
  for (int label = 0; label < num_labels; ++label) {
    const size_t i = static_cast<size_t>(label);
    tp_total += tp[i];
    fp_total += fp[i];
    fn_total += fn[i];
    const int64_t support = tp[i] + fn[i];
    const double denom =
        2.0 * static_cast<double>(tp[i]) + static_cast<double>(fp[i] + fn[i]);
    const double f1 =
        denom > 0.0 ? 2.0 * static_cast<double>(tp[i]) / denom : 0.0;
    macro_sum += f1;
    weighted_sum += f1 * static_cast<double>(support);
    support_total += support;
  }

  F1Scores scores;
  const double micro_denom = 2.0 * static_cast<double>(tp_total) +
                             static_cast<double>(fp_total + fn_total);
  scores.micro =
      micro_denom > 0.0 ? 2.0 * static_cast<double>(tp_total) / micro_denom
                        : 0.0;
  scores.macro = macro_sum / static_cast<double>(num_labels);
  scores.weighted = support_total > 0
                        ? weighted_sum / static_cast<double>(support_total)
                        : 0.0;
  return scores;
}

}  // namespace explainti::eval
