#ifndef EXPLAINTI_EVAL_SUFFICIENCY_H_
#define EXPLAINTI_EVAL_SUFFICIENCY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/f1_metrics.h"

namespace explainti::eval {

/// A dataset of explanation texts for the FRESH sufficiency protocol
/// (Jain et al., ACL 2020; paper Section IV-C): each sample is replaced by
/// the explanation a method produced for it, and a fresh classifier is
/// trained on explanations alone. High F1 means the explanations alone
/// carry the label signal — they are *sufficient*.
struct ExplanationDataset {
  std::vector<std::string> train_texts;
  std::vector<std::vector<int>> train_labels;
  std::vector<std::string> test_texts;
  std::vector<std::vector<int>> test_labels;
  int num_labels = 0;
  bool multi_label = false;
};

/// Options for the sufficiency probe classifier.
///
/// The probe is a hashed bag-of-words MLP rather than the paper's RoBERTa
/// (substitution documented in DESIGN.md): the probe's only job is to
/// measure how much label information the explanation text carries, and a
/// BoW probe measures exactly that at a fraction of the cost.
struct SufficiencyProbeOptions {
  int hash_dim = 256;
  int hidden_dim = 96;
  int epochs = 40;
  float learning_rate = 2e-3f;
  int batch_size = 16;
  uint64_t seed = 97;
};

/// Trains the probe on train explanations and returns test F1.
F1Scores EvaluateSufficiency(const ExplanationDataset& dataset,
                             const SufficiencyProbeOptions& options = {});

}  // namespace explainti::eval

#endif  // EXPLAINTI_EVAL_SUFFICIENCY_H_
