#include "eval/sufficiency.h"

#include <algorithm>
#include <cmath>

#include "nn/linear.h"
#include "tensor/optimizer.h"
#include "tensor/tensor_ops.h"
#include "text/tokenizer.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/rng.h"

namespace explainti::eval {

namespace {

std::vector<float> BagOfWords(const std::string& textual, int hash_dim) {
  std::vector<float> features(static_cast<size_t>(hash_dim), 0.0f);
  int64_t total = 0;
  for (const std::string& token : text::BasicTokenize(textual)) {
    features[static_cast<size_t>(util::HashTokenFeature(token) % hash_dim)] += 1.0f;
    ++total;
  }
  if (total > 0) {
    for (float& v : features) v /= static_cast<float>(total);
  }
  return features;
}

/// Two-layer probe; self-contained to keep eval independent of baselines.
class Probe : public nn::Module {
 public:
  Probe(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, util::Rng& rng)
      : hidden_(in_dim, hidden_dim, rng), out_(hidden_dim, out_dim, rng) {
    AddChild(&hidden_);
    AddChild(&out_);
  }
  tensor::Tensor Forward(const tensor::Tensor& x) const {
    return out_.Forward(tensor::Relu(hidden_.Forward(x)));
  }

 private:
  nn::Linear hidden_;
  nn::Linear out_;
};

}  // namespace

F1Scores EvaluateSufficiency(const ExplanationDataset& dataset,
                             const SufficiencyProbeOptions& options) {
  CHECK_GT(dataset.num_labels, 0);
  CHECK_EQ(dataset.train_texts.size(), dataset.train_labels.size());
  CHECK_EQ(dataset.test_texts.size(), dataset.test_labels.size());
  CHECK(!dataset.train_texts.empty());

  util::Rng rng(options.seed);
  Probe probe(options.hash_dim, options.hidden_dim, dataset.num_labels, rng);

  std::vector<std::vector<float>> train_features;
  train_features.reserve(dataset.train_texts.size());
  for (const std::string& textual : dataset.train_texts) {
    train_features.push_back(BagOfWords(textual, options.hash_dim));
  }

  tensor::AdamWOptions adam_options;
  adam_options.learning_rate = options.learning_rate;
  tensor::AdamW optimizer(probe.Parameters(), adam_options);

  std::vector<size_t> order(train_features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    optimizer.ZeroGrad();
    int in_batch = 0;
    for (size_t i = 0; i < order.size(); ++i) {
      const size_t id = order[i];
      tensor::Tensor x = tensor::Tensor::FromVector(
          {options.hash_dim}, train_features[id]);
      tensor::Tensor logits = probe.Forward(x);
      tensor::Tensor loss;
      if (dataset.multi_label) {
        std::vector<float> y(static_cast<size_t>(dataset.num_labels), 0.0f);
        for (int label : dataset.train_labels[id]) {
          y[static_cast<size_t>(label)] = 1.0f;
        }
        loss = tensor::BceWithLogitsLoss(logits, y);
      } else {
        loss = tensor::CrossEntropyLoss(logits, dataset.train_labels[id][0]);
      }
      loss =
          tensor::Scale(loss, 1.0f / static_cast<float>(options.batch_size));
      loss.Backward();
      ++in_batch;
      if (in_batch == options.batch_size || i + 1 == order.size()) {
        optimizer.Step();
        optimizer.ZeroGrad();
        in_batch = 0;
      }
    }
  }

  std::vector<LabeledPrediction> predictions;
  predictions.reserve(dataset.test_texts.size());
  for (size_t i = 0; i < dataset.test_texts.size(); ++i) {
    tensor::Tensor logits = probe.Forward(tensor::Tensor::FromVector(
        {options.hash_dim}, BagOfWords(dataset.test_texts[i],
                                       options.hash_dim)));
    const std::vector<float> values = logits.ToVector();
    LabeledPrediction p;
    p.gold = dataset.test_labels[i];
    if (dataset.multi_label) {
      for (size_t c = 0; c < values.size(); ++c) {
        if (values[c] >= 0.0f) p.predicted.push_back(static_cast<int>(c));
      }
      if (p.predicted.empty()) {
        p.predicted.push_back(static_cast<int>(
            std::max_element(values.begin(), values.end()) - values.begin()));
      }
    } else {
      p.predicted.push_back(static_cast<int>(
          std::max_element(values.begin(), values.end()) - values.begin()));
    }
    predictions.push_back(std::move(p));
  }
  return ComputeF1(predictions, dataset.num_labels);
}

}  // namespace explainti::eval
