#include "data/value_pools.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace explainti::data {

namespace {

const std::vector<std::string> kFirstNames = {
    "james",  "mary",   "robert",  "linda",    "michael", "susan",
    "david",  "karen",  "john",    "lisa",     "richard", "nancy",
    "joseph", "sarah",  "thomas",  "emma",     "charles", "olivia",
    "daniel", "sophia", "matthew", "isabella", "anthony", "mia",
    "mark",   "amelia", "paul",    "harper",   "steven",  "evelyn",
    "andrew", "luna",   "kevin",   "camila",   "brian",   "aria",
    "george", "scarlett", "edward", "penelope", "ronald", "chloe",
    "timothy", "victoria", "jason", "madison",  "jeffrey", "eleanor"};

const std::vector<std::string> kLastNames = {
    "smith",    "johnson",  "williams", "brown",   "jones",    "garcia",
    "miller",   "davis",    "rodriguez", "martinez", "hernandez", "lopez",
    "gonzalez", "wilson",   "anderson", "thomas",  "taylor",   "moore",
    "jackson",  "martin",   "lee",      "perez",   "thompson", "white",
    "harris",   "sanchez",  "clark",    "ramirez", "lewis",    "robinson",
    "walker",   "young",    "allen",    "king",    "wright",   "scott",
    "torres",   "nguyen",   "hill",     "flores",  "green",    "adams",
    "nelson",   "baker",    "hall",     "rivera",  "campbell", "mitchell"};

const std::vector<std::string> kNbaTeams = {
    "lakers",   "celtics",  "bulls",     "warriors",     "knicks",
    "heat",     "spurs",    "rockets",   "suns",         "jazz",
    "nets",     "hawks",    "bucks",     "magic",        "pistons",
    "pacers",   "raptors",  "clippers",  "nuggets",      "mavericks",
    "grizzlies", "hornets", "timberwolves", "kings",     "blazers",
    "wizards",  "sixers",   "thunder",   "cavaliers",    "pelicans"};

const std::vector<std::string> kNflTeams = {
    "patriots", "cowboys",  "packers",  "steelers", "giants",
    "eagles",   "bears",    "raiders",  "broncos",  "chiefs",
    "dolphins", "jets",     "bills",    "ravens",   "bengals",
    "browns",   "titans",   "colts",    "jaguars",  "texans",
    "chargers", "rams",     "seahawks", "cardinals", "falcons",
    "panthers", "saints",   "buccaneers", "vikings", "lions"};

const std::vector<std::string> kSoccerClubs = {
    "arsenal",     "chelsea",  "liverpool", "barcelona", "juventus",
    "bayern",      "dortmund", "ajax",      "porto",     "benfica",
    "celtic",      "rangers",  "galatasaray", "marseille", "lyon",
    "monaco",      "sevilla",  "valencia",  "napoli",    "roma",
    "inter",       "milan"};

const std::vector<std::string> kCountries = {
    "france",   "germany",  "italy",     "spain",     "portugal",
    "japan",    "china",    "india",     "brazil",    "argentina",
    "canada",   "mexico",   "australia", "egypt",     "kenya",
    "nigeria",  "morocco",  "sweden",    "norway",    "finland",
    "denmark",  "poland",   "austria",   "greece",    "turkey",
    "thailand", "vietnam",  "indonesia", "chile",     "peru",
    "colombia", "ecuador",  "iceland",   "ireland",   "hungary",
    "romania",  "bulgaria", "croatia",   "serbia",    "ukraine"};

// Parallel to kCountries.
const std::vector<std::string> kCapitals = {
    "paris",    "berlin",   "rome",      "madrid",    "lisbon",
    "tokyo",    "beijing",  "delhi",     "brasilia",  "buenos aires",
    "ottawa",   "mexico city", "canberra", "cairo",   "nairobi",
    "abuja",    "rabat",    "stockholm", "oslo",      "helsinki",
    "copenhagen", "warsaw", "vienna",    "athens",    "ankara",
    "bangkok",  "hanoi",    "jakarta",   "santiago",  "lima",
    "bogota",   "quito",    "reykjavik", "dublin",    "budapest",
    "bucharest", "sofia",   "zagreb",    "belgrade",  "kyiv"};

const std::vector<std::string> kCities = {
    "barcelona", "munich",   "milan",    "valencia",  "porto",
    "osaka",     "shanghai", "mumbai",   "sao paulo", "cordoba",
    "toronto",   "guadalajara", "sydney", "alexandria", "mombasa",
    "lagos",     "casablanca", "gothenburg", "bergen", "tampere",
    "aarhus",    "krakow",   "salzburg", "thessaloniki", "izmir",
    "chiang mai", "da nang", "surabaya", "valparaiso", "arequipa",
    "medellin",  "guayaquil", "akureyri", "cork",     "debrecen",
    "cluj",      "plovdiv",  "split",    "novi sad",  "lviv"};

const std::vector<std::string> kUniversities = {
    "harvard university",   "stanford university", "oxford university",
    "cambridge university", "mit",                 "caltech",
    "princeton university", "yale university",     "columbia university",
    "cornell university",   "duke university",     "ucla",
    "berkeley",             "michigan university", "toronto university",
    "melbourne university", "heidelberg university", "sorbonne",
    "kyoto university",     "tsinghua university", "eth zurich",
    "delft university",     "uppsala university",  "bologna university"};

const std::vector<std::string> kCompanies = {
    "acme corp",      "globex",        "initech",      "umbrella corp",
    "stark industries", "wayne enterprises", "wonka industries",
    "tyrell corp",    "cyberdyne",     "oscorp",       "massive dynamic",
    "hooli",          "pied piper",    "aperture science", "black mesa",
    "soylent corp",   "vandelay industries", "dunder mifflin",
    "sterling cooper", "prestige worldwide", "gekko and co",
    "nakatomi trading", "weyland yutani", "virtucon"};

const std::vector<std::string> kParties = {
    "progressive party",  "conservative union", "liberal alliance",
    "green coalition",    "national front",     "labor movement",
    "democratic league",  "reform party",       "unity party",
    "people's voice",     "freedom bloc",       "civic platform"};

const std::vector<std::string> kCurrencies = {
    "euro",  "dollar", "yen",   "pound", "franc", "krona",
    "peso",  "real",   "rupee", "yuan",  "lira",  "zloty"};

const std::vector<std::string> kGenres = {
    "drama",     "comedy",  "thriller", "horror",  "romance", "action",
    "adventure", "fantasy", "science fiction", "documentary", "animation",
    "mystery"};

const std::vector<std::string> kHabitats = {
    "rainforest", "desert",   "grassland", "wetland", "tundra",
    "savanna",    "mangrove", "coral reef", "taiga",  "alpine meadow",
    "estuary",    "cave system"};

const std::vector<std::string> kContinents = {
    "africa", "asia", "europe", "north america", "south america",
    "oceania", "antarctica"};

const std::vector<std::string> kConservation = {
    "least concern", "near threatened", "vulnerable",
    "endangered",    "critically endangered", "extinct in the wild"};

const std::vector<std::string> kTitleNouns = {
    "river",   "mountain", "garden",  "mirror",  "shadow",  "horizon",
    "echo",    "crown",    "harbor",  "lantern", "voyage",  "silence",
    "ember",   "meadow",   "compass", "tempest", "orchard", "paradox"};

const std::vector<std::string> kTitleAdjectives = {
    "silent",   "golden",  "hidden",  "broken",  "endless", "crimson",
    "forgotten", "electric", "winter", "distant", "burning", "hollow",
    "midnight", "scarlet", "wandering", "luminous"};

const std::vector<std::string> kLatinStems = {
    "acro", "bio",  "cyto", "dermo", "echino", "fibro", "gastro", "helio",
    "ichthy", "kerato", "lepido", "myco", "nemato", "ornitho", "phyto",
    "rhizo", "sacchar", "thermo", "xantho", "zygo"};

const std::vector<std::string> kLatinSuffixes = {
    "bacter", "coccus", "myces",  "phyton", "saurus", "cephalus",
    "derma",  "phora",  "spora",  "stoma",  "theca",  "virens"};

const std::vector<std::string> kSpeciesEpithets = {
    "vulgaris",  "communis", "officinalis", "sylvestris", "maritimus",
    "montanus",  "borealis", "australis",   "orientalis", "occidentalis",
    "giganteus", "minimus",  "albus",       "niger",      "ruber",
    "viridis",   "luteus",   "pallidus",    "robustus",   "gracilis"};

const std::vector<std::string> kEnzymeStems = {
    "amyl",   "prote",  "lip",    "cellul", "lact",  "malt",
    "pectin", "chitin", "kerat",  "ure",    "catal", "oxid"};

}  // namespace

std::string ValuePools::PersonName(util::Rng& rng) {
  return Pick(kFirstNames, rng) + " " + Pick(kLastNames, rng);
}

const std::vector<std::string>& ValuePools::NbaTeams() { return kNbaTeams; }
const std::vector<std::string>& ValuePools::NflTeams() { return kNflTeams; }
const std::vector<std::string>& ValuePools::SoccerClubs() {
  return kSoccerClubs;
}
const std::vector<std::string>& ValuePools::Countries() { return kCountries; }
const std::vector<std::string>& ValuePools::Capitals() { return kCapitals; }
const std::vector<std::string>& ValuePools::Cities() { return kCities; }
const std::vector<std::string>& ValuePools::Universities() {
  return kUniversities;
}
const std::vector<std::string>& ValuePools::Companies() { return kCompanies; }
const std::vector<std::string>& ValuePools::Parties() { return kParties; }
const std::vector<std::string>& ValuePools::Currencies() {
  return kCurrencies;
}
const std::vector<std::string>& ValuePools::Genres() { return kGenres; }
const std::vector<std::string>& ValuePools::Habitats() { return kHabitats; }
const std::vector<std::string>& ValuePools::Continents() {
  return kContinents;
}
const std::vector<std::string>& ValuePools::ConservationStatuses() {
  return kConservation;
}

std::string ValuePools::FilmTitle(util::Rng& rng) {
  return "the " + Pick(kTitleAdjectives, rng) + " " + Pick(kTitleNouns, rng);
}

std::string ValuePools::AlbumTitle(util::Rng& rng) {
  return Pick(kTitleAdjectives, rng) + " " + Pick(kTitleNouns, rng);
}

std::string ValuePools::BookTitle(util::Rng& rng) {
  return "a " + Pick(kTitleNouns, rng) + " of " + Pick(kTitleNouns, rng);
}

std::string ValuePools::SeriesTitle(util::Rng& rng) {
  return Pick(kTitleNouns, rng) + " and " + Pick(kTitleNouns, rng);
}

std::string ValuePools::GenusName(util::Rng& rng) {
  return Pick(kLatinStems, rng) + Pick(kLatinSuffixes, rng);
}

std::string ValuePools::SpeciesEpithet(util::Rng& rng) {
  return Pick(kSpeciesEpithets, rng);
}

std::string ValuePools::FamilyName(util::Rng& rng) {
  return Pick(kLatinStems, rng) + "idae";
}

std::string ValuePools::DiseaseName(util::Rng& rng) {
  return Pick(kLatinStems, rng) + "osis";
}

std::string ValuePools::EnzymeName(util::Rng& rng) {
  return Pick(kEnzymeStems, rng) + "ase";
}

std::string ValuePools::Code(const std::string& prefix, util::Rng& rng) {
  return prefix + "-" + Integer(1000, 99999, rng);
}

std::string ValuePools::Year(util::Rng& rng) {
  return Integer(1950, 2023, rng);
}

std::string ValuePools::Date(util::Rng& rng) {
  return Integer(1980, 2023, rng) + "-" + Integer(1, 12, rng) + "-" +
         Integer(1, 28, rng);
}

std::string ValuePools::Integer(int64_t lo, int64_t hi, util::Rng& rng) {
  return std::to_string(rng.UniformInt(lo, hi));
}

std::string ValuePools::Decimal(double lo, double hi, int precision,
                                util::Rng& rng) {
  return util::FormatDouble(rng.Uniform(lo, hi), precision);
}

const std::string& ValuePools::Pick(const std::vector<std::string>& pool,
                                    util::Rng& rng) {
  CHECK(!pool.empty());
  return pool[static_cast<size_t>(rng.UniformInt(pool.size()))];
}

}  // namespace explainti::data
