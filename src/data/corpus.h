#ifndef EXPLAINTI_DATA_CORPUS_H_
#define EXPLAINTI_DATA_CORPUS_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "text/serializer.h"

namespace explainti::data {

/// Which partition a table (and its samples) belongs to.
enum class SplitPart { kTrain = 0, kValid = 1, kTest = 2 };

/// A column-type prediction sample (Definition 1).
struct TypeSample {
  int table_index = -1;
  int column_index = -1;
  /// Gold label ids; one entry for multi-class corpora, possibly several
  /// (fine type + coarse ancestor) for multi-label corpora.
  std::vector<int> labels;
  /// Evidence oracle: lower-case tokens that genuinely carry the label
  /// signal in this sample's serialisation (generator-provided ground
  /// truth used by the simulated-judge evaluation; see DESIGN.md).
  std::vector<std::string> evidence;
};

/// A column-relation prediction sample (Definition 2).
struct RelationSample {
  int table_index = -1;
  int left_column = -1;
  int right_column = -1;
  int label = -1;
  std::vector<std::string> evidence;
};

/// An annotated table corpus with both TI tasks, table-level splits, label
/// vocabularies, and the evidence oracle.
struct TableCorpus {
  std::string name;
  std::vector<Table> tables;
  std::vector<SplitPart> table_split;  // Parallel to `tables`.

  std::vector<std::string> type_label_names;
  std::vector<std::string> relation_label_names;
  /// Web-table types are multi-label (fine + coarse); database-table types
  /// are multi-class (paper Section IV-A).
  bool type_multi_label = false;

  std::vector<TypeSample> type_samples;
  std::vector<RelationSample> relation_samples;

  /// Indices into type_samples belonging to `part`.
  std::vector<int> TypeSampleIds(SplitPart part) const;
  /// Indices into relation_samples belonging to `part`.
  std::vector<int> RelationSampleIds(SplitPart part) const;

  /// Raw serialisation material for one column.
  text::ColumnText ColumnTextOf(int table_index, int column_index) const;
  text::ColumnText ColumnTextOf(const TypeSample& sample) const;
};

/// Headline corpus statistics (paper Table II).
struct CorpusStatistics {
  int64_t num_tables = 0;
  double avg_rows = 0.0;
  double avg_cols = 0.0;
  int64_t num_type_labels = 0;
  int64_t num_relation_labels = 0;
  int64_t num_type_samples = 0;
  int64_t num_relation_samples = 0;
};

CorpusStatistics ComputeStatistics(const TableCorpus& corpus);

/// Assigns tables to train/valid/test with the given fractions (the
/// remainder goes to test), shuffled by `seed`. All of a table's samples
/// stay in one part, preventing leakage between splits.
void AssignSplits(TableCorpus* corpus, double train_fraction,
                  double valid_fraction, uint64_t seed);

}  // namespace explainti::data

#endif  // EXPLAINTI_DATA_CORPUS_H_
