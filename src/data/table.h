#ifndef EXPLAINTI_DATA_TABLE_H_
#define EXPLAINTI_DATA_TABLE_H_

#include <string>
#include <vector>

namespace explainti::data {

/// One column of a relational table: a header plus cell values.
struct Column {
  std::string header;
  std::vector<std::string> cells;
};

/// A relational table T = (c_1 .. c_n) with a title p.
struct Table {
  std::string title;
  std::vector<Column> columns;

  int64_t num_rows() const {
    return columns.empty() ? 0
                           : static_cast<int64_t>(columns[0].cells.size());
  }
};

}  // namespace explainti::data

#endif  // EXPLAINTI_DATA_TABLE_H_
