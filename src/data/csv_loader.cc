#include "data/csv_loader.h"

#include "util/csv.h"
#include "util/string_util.h"

namespace explainti::data {

namespace {

std::string BasenameTitle(const std::string& path) {
  size_t start = path.find_last_of('/');
  start = start == std::string::npos ? 0 : start + 1;
  size_t end = path.find_last_of('.');
  if (end == std::string::npos || end <= start) end = path.size();
  std::string name = path.substr(start, end - start);
  for (char& c : name) {
    if (c == '_' || c == '-') c = ' ';
  }
  return util::ToLower(name);
}

}  // namespace

util::StatusOr<Table> TableFromCsvRows(
    const std::vector<std::vector<std::string>>& rows,
    const CsvLoadOptions& options) {
  if (rows.empty()) {
    return util::Status::InvalidArgument("CSV has no rows");
  }
  if (rows[0].empty()) {
    return util::Status::InvalidArgument("CSV has a zero-column first row");
  }
  Table table;
  table.title = options.title;

  size_t data_start = 0;
  size_t width = rows[0].size();
  if (options.first_row_is_header) {
    for (const std::string& header : rows[0]) {
      Column column;
      column.header = util::Trim(util::ToLower(header));
      if (column.header.empty()) {
        column.header = "column_" + std::to_string(table.columns.size());
      }
      table.columns.push_back(std::move(column));
    }
    data_start = 1;
  } else {
    for (size_t c = 0; c < width; ++c) {
      Column column;
      column.header = "column_" + std::to_string(c);
      table.columns.push_back(std::move(column));
    }
  }
  if (table.columns.empty()) {
    return util::Status::InvalidArgument("CSV has no columns");
  }

  int64_t loaded = 0;
  for (size_t r = data_start; r < rows.size(); ++r) {
    if (options.max_rows > 0 && loaded >= options.max_rows) break;
    ++loaded;
    for (size_t c = 0; c < table.columns.size(); ++c) {
      table.columns[c].cells.push_back(c < rows[r].size()
                                           ? util::Trim(rows[r][c])
                                           : std::string());
    }
  }
  if (table.num_rows() == 0) {
    return util::Status::InvalidArgument("CSV has headers but no data rows");
  }
  return table;
}

util::StatusOr<Table> LoadTableFromCsv(const std::string& path,
                                       const CsvLoadOptions& options) {
  auto rows = util::ReadCsvFile(path);
  if (!rows.ok()) return rows.status();
  CsvLoadOptions resolved = options;
  if (resolved.title.empty()) resolved.title = BasenameTitle(path);
  return TableFromCsvRows(*rows, resolved);
}

}  // namespace explainti::data
