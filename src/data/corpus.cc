#include "data/corpus.h"

#include "util/logging.h"
#include "util/rng.h"

namespace explainti::data {

std::vector<int> TableCorpus::TypeSampleIds(SplitPart part) const {
  std::vector<int> ids;
  for (size_t i = 0; i < type_samples.size(); ++i) {
    const TypeSample& s = type_samples[i];
    if (table_split[static_cast<size_t>(s.table_index)] == part) {
      ids.push_back(static_cast<int>(i));
    }
  }
  return ids;
}

std::vector<int> TableCorpus::RelationSampleIds(SplitPart part) const {
  std::vector<int> ids;
  for (size_t i = 0; i < relation_samples.size(); ++i) {
    const RelationSample& s = relation_samples[i];
    if (table_split[static_cast<size_t>(s.table_index)] == part) {
      ids.push_back(static_cast<int>(i));
    }
  }
  return ids;
}

text::ColumnText TableCorpus::ColumnTextOf(int table_index,
                                           int column_index) const {
  CHECK(table_index >= 0 &&
        table_index < static_cast<int>(tables.size()));
  const Table& table = tables[static_cast<size_t>(table_index)];
  CHECK(column_index >= 0 &&
        column_index < static_cast<int>(table.columns.size()));
  const Column& column = table.columns[static_cast<size_t>(column_index)];
  return text::ColumnText{table.title, column.header, column.cells};
}

text::ColumnText TableCorpus::ColumnTextOf(const TypeSample& sample) const {
  return ColumnTextOf(sample.table_index, sample.column_index);
}

CorpusStatistics ComputeStatistics(const TableCorpus& corpus) {
  CorpusStatistics stats;
  stats.num_tables = static_cast<int64_t>(corpus.tables.size());
  stats.num_type_labels =
      static_cast<int64_t>(corpus.type_label_names.size());
  stats.num_relation_labels =
      static_cast<int64_t>(corpus.relation_label_names.size());
  stats.num_type_samples = static_cast<int64_t>(corpus.type_samples.size());
  stats.num_relation_samples =
      static_cast<int64_t>(corpus.relation_samples.size());
  int64_t total_rows = 0;
  int64_t total_cols = 0;
  for (const Table& table : corpus.tables) {
    total_rows += table.num_rows();
    total_cols += static_cast<int64_t>(table.columns.size());
  }
  if (stats.num_tables > 0) {
    stats.avg_rows =
        static_cast<double>(total_rows) / static_cast<double>(stats.num_tables);
    stats.avg_cols =
        static_cast<double>(total_cols) / static_cast<double>(stats.num_tables);
  }
  return stats;
}

void AssignSplits(TableCorpus* corpus, double train_fraction,
                  double valid_fraction, uint64_t seed) {
  CHECK(corpus != nullptr);
  CHECK(train_fraction > 0.0 && valid_fraction >= 0.0 &&
        train_fraction + valid_fraction < 1.0)
      << "split fractions must leave room for a test partition";
  const size_t n = corpus->tables.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  util::Rng rng(seed);
  rng.Shuffle(order);

  corpus->table_split.assign(n, SplitPart::kTest);
  const size_t train_count = static_cast<size_t>(train_fraction * n);
  const size_t valid_count = static_cast<size_t>(valid_fraction * n);
  for (size_t i = 0; i < n; ++i) {
    if (i < train_count) {
      corpus->table_split[order[i]] = SplitPart::kTrain;
    } else if (i < train_count + valid_count) {
      corpus->table_split[order[i]] = SplitPart::kValid;
    }
  }
}

}  // namespace explainti::data
