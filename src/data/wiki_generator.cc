#include "data/wiki_generator.h"

#include <functional>
#include <unordered_map>

#include "data/value_pools.h"
#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/rng.h"

namespace explainti::data {

namespace {

/// One column of a schema blueprint.
struct ColumnSpec {
  std::string header;                    ///< Specific header.
  std::string generic_header;            ///< "" = never generalised.
  std::string fine_label;
  std::vector<std::string> coarse_labels;
  /// Cell values alone identify the fine label (unique pool).
  bool values_are_evidence = false;
  /// Optional disambiguating sibling; may be dropped per table.
  bool is_context_column = false;
};

struct RelationSpec {
  int left;
  int right;
  std::string label;
};

/// A table schema: a title maker, column specs, a row maker producing one
/// cell per column, and the relations between columns.
struct TableBlueprint {
  std::string schema_name;
  std::function<std::string(util::Rng&)> make_title;
  std::vector<std::string> title_evidence;  ///< Domain tokens in the title.
  std::vector<ColumnSpec> columns;
  std::function<std::vector<std::string>(util::Rng&)> make_row;
  std::vector<RelationSpec> relations;
};

using VP = ValuePools;

std::vector<TableBlueprint> BuildBlueprints() {
  std::vector<TableBlueprint> blueprints;

  // 1. NBA draft -----------------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "nba_draft",
      [](util::Rng& rng) { return VP::Year(rng) + " nba draft"; },
      {"nba"},
      {
          {"player", "name", "person.basketball_player", {"person"}, false,
           false},
          {"nba team", "team", "sports_team.basketball", {"sports_team"},
           true, true},
          {"college", "", "organization.university", {"organization"}, true,
           true},
          {"pick", "", "number", {}, false, false},
      },
      [](util::Rng& rng) {
        return std::vector<std::string>{
            VP::PersonName(rng), VP::Pick(VP::NbaTeams(), rng),
            VP::Pick(VP::Universities(), rng), VP::Integer(1, 60, rng)};
      },
      {{0, 1, "basketball.player_team"}, {0, 2, "person.education"}}});

  // 2. NFL draft -----------------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "nfl_draft",
      [](util::Rng& rng) { return VP::Year(rng) + " nfl draft"; },
      {"nfl"},
      {
          {"player", "name", "person.football_player", {"person"}, false,
           false},
          {"nfl team", "team", "sports_team.football", {"sports_team"}, true,
           true},
          {"college", "", "organization.university", {"organization"}, true,
           true},
          {"round", "", "number", {}, false, false},
      },
      [](util::Rng& rng) {
        return std::vector<std::string>{
            VP::PersonName(rng), VP::Pick(VP::NflTeams(), rng),
            VP::Pick(VP::Universities(), rng), VP::Integer(1, 7, rng)};
      },
      {{0, 1, "football.player_team"}, {0, 2, "person.education"}}});

  // 3. Soccer season -------------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "soccer_season",
      [](util::Rng& rng) { return VP::Year(rng) + " football league season"; },
      {"football", "league"},
      {
          {"club", "team", "sports_team.soccer", {"sports_team"}, true,
           false},
          {"manager", "name", "person.coach", {"person"}, false,
           true},
          {"points", "", "number", {}, false, false},
      },
      [](util::Rng& rng) {
        return std::vector<std::string>{VP::Pick(VP::SoccerClubs(), rng),
                                        VP::PersonName(rng),
                                        VP::Integer(20, 98, rng)};
      },
      {{0, 1, "sports.team_manager"}}});

  // 4. Films ----------------------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "films",
      [](util::Rng& rng) { return "films of " + VP::Year(rng); },
      {"films"},
      {
          {"film", "title", "work.film", {"creative_work"}, false, false},
          {"director", "name", "person.film_director", {"person"}, false,
           true},
          {"genre", "", "genre", {}, true, true},
      },
      [](util::Rng& rng) {
        return std::vector<std::string>{VP::FilmTitle(rng),
                                        VP::PersonName(rng),
                                        VP::Pick(VP::Genres(), rng)};
      },
      {{0, 1, "film.director"}, {0, 2, "film.genre"}}});

  // 5. Albums ---------------------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "albums",
      [](util::Rng& rng) { return "albums released in " + VP::Year(rng); },
      {"albums"},
      {
          {"album", "title", "work.album", {"creative_work"}, false, false},
          {"artist", "name", "person.musician", {"person"}, false, true},
          {"year", "", "year", {}, false, false},
      },
      [](util::Rng& rng) {
        return std::vector<std::string>{
            VP::AlbumTitle(rng), VP::PersonName(rng), VP::Year(rng)};
      },
      {{0, 1, "music.artist"}}});

  // 6. Countries --------------------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "countries",
      [](util::Rng& rng) {
        return "countries of " + VP::Pick(VP::Continents(), rng);
      },
      {"countries"},
      {
          {"country", "", "location.country", {"location"}, true, false},
          {"capital", "city", "location.city", {"location"}, true, true},
          {"currency", "", "currency", {}, true, true},
          {"population", "", "number", {}, false, false},
      },
      [](util::Rng& rng) {
        const size_t i =
            static_cast<size_t>(rng.UniformInt(VP::Countries().size()));
        return std::vector<std::string>{
            VP::Countries()[i], VP::Capitals()[i],
            VP::Pick(VP::Currencies(), rng),
            VP::Integer(100000, 99000000, rng)};
      },
      {{0, 1, "location.capital"}, {0, 2, "location.currency"}}});

  // 7. Cities --------------------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "cities",
      [](util::Rng& rng) {
        return "largest cities in " + VP::Pick(VP::Countries(), rng);
      },
      {"cities"},
      {
          {"city", "", "location.city", {"location"}, true, false},
          {"country", "", "location.country", {"location"}, true, true},
          {"population", "", "number", {}, false, false},
      },
      [](util::Rng& rng) {
        return std::vector<std::string>{VP::Pick(VP::Cities(), rng),
                                        VP::Pick(VP::Countries(), rng),
                                        VP::Integer(50000, 20000000, rng)};
      },
      {{0, 1, "location.containedby"}}});

  // 8. Universities -----------------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "universities",
      [](util::Rng& rng) {
        return "universities in " + VP::Pick(VP::Countries(), rng);
      },
      {"universities"},
      {
          {"university", "name", "organization.university", {"organization"},
           true, false},
          {"city", "", "location.city", {"location"}, true, true},
          {"established", "", "year", {}, false, false},
      },
      [](util::Rng& rng) {
        return std::vector<std::string>{VP::Pick(VP::Universities(), rng),
                                        VP::Pick(VP::Cities(), rng),
                                        VP::Year(rng)};
      },
      {{0, 1, "organization.headquarters"}}});

  // 9. Companies ---------------------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "companies",
      [](util::Rng& rng) { return "largest companies " + VP::Year(rng); },
      {"companies"},
      {
          {"company", "name", "organization.company", {"organization"}, true,
           false},
          {"chief executive", "name", "person.executive", {"person"}, false,
           true},
          {"revenue", "", "number", {}, false, false},
      },
      [](util::Rng& rng) {
        return std::vector<std::string>{VP::Pick(VP::Companies(), rng),
                                        VP::PersonName(rng),
                                        VP::Integer(100, 500000, rng)};
      },
      {{0, 1, "organization.leadership"}}});

  // 10. Elections ---------------------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "elections",
      [](util::Rng& rng) { return VP::Year(rng) + " election results"; },
      {"election"},
      {
          {"candidate", "name", "person.politician", {"person"}, false,
           false},
          {"party", "", "organization.party", {"organization"}, true, true},
          {"votes", "", "number", {}, false, false},
      },
      [](util::Rng& rng) {
        return std::vector<std::string>{VP::PersonName(rng),
                                        VP::Pick(VP::Parties(), rng),
                                        VP::Integer(1000, 5000000, rng)};
      },
      {{0, 1, "politics.party"}}});

  // 11. Books ----------------------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "books",
      [](util::Rng& rng) { return "notable books of " + VP::Year(rng); },
      {"books"},
      {
          {"book", "title", "work.book", {"creative_work"}, false, false},
          {"author", "name", "person.author", {"person"}, false, true},
          {"year", "", "year", {}, false, false},
      },
      [](util::Rng& rng) {
        return std::vector<std::string>{
            VP::BookTitle(rng), VP::PersonName(rng), VP::Year(rng)};
      },
      {{0, 1, "book.author"}}});

  // 12. TV series ---------------------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "tv_series",
      [](util::Rng& rng) {
        return "television series " + VP::Year(rng) + " cast";
      },
      {"television"},
      {
          {"series", "title", "work.tv_series", {"creative_work"}, false,
           false},
          {"actor", "name", "person.actor", {"person"}, false, true},
          {"genre", "", "genre", {}, true, true},
      },
      [](util::Rng& rng) {
        return std::vector<std::string>{VP::SeriesTitle(rng),
                                        VP::PersonName(rng),
                                        VP::Pick(VP::Genres(), rng)};
      },
      {{0, 1, "tv.cast"}}});

  // 13. Olympics medal table ------------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "olympics",
      [](util::Rng& rng) { return VP::Year(rng) + " olympics medal table"; },
      {"olympics"},
      {
          {"country", "", "location.country", {"location"}, true, false},
          {"gold", "", "number", {}, false, false},
          {"total", "", "number", {}, false, false},
      },
      [](util::Rng& rng) {
        return std::vector<std::string>{VP::Pick(VP::Countries(), rng),
                                        VP::Integer(0, 40, rng),
                                        VP::Integer(0, 120, rng)};
      },
      {}});

  // 14. Basketball season stats ------------------------------------------------
  blueprints.push_back(TableBlueprint{
      "nba_season",
      [](util::Rng& rng) { return VP::Year(rng) + " nba season standings"; },
      {"nba"},
      {
          {"nba team", "team", "sports_team.basketball", {"sports_team"},
           true, false},
          {"coach", "name", "person.coach", {"person"}, false,
           true},
          {"wins", "", "number", {}, false, false},
      },
      [](util::Rng& rng) {
        return std::vector<std::string>{VP::Pick(VP::NbaTeams(), rng),
                                        VP::PersonName(rng),
                                        VP::Integer(10, 73, rng)};
      },
      {{0, 1, "sports.team_manager"}}});

  return blueprints;
}

const std::vector<std::string> kGenericTitles = {
    "season results",  "annual list",   "statistics overview",
    "records",         "summary table", "yearly rankings"};

/// Interns a label name into the corpus label list, returning its id.
int LabelId(std::vector<std::string>* names,
            std::unordered_map<std::string, int>* ids,
            const std::string& name) {
  auto [it, inserted] =
      ids->try_emplace(name, static_cast<int>(names->size()));
  if (inserted) names->push_back(name);
  return it->second;
}

}  // namespace

TableCorpus GenerateWikiTableCorpus(const WikiTableOptions& options) {
  CHECK_GT(options.num_tables, 0);
  CHECK_LE(options.min_rows, options.max_rows);

  const std::vector<TableBlueprint> blueprints = BuildBlueprints();
  util::Rng rng(options.seed);

  TableCorpus corpus;
  corpus.name = "SynthWikiTable";
  corpus.type_multi_label = true;
  std::unordered_map<std::string, int> type_ids;
  std::unordered_map<std::string, int> relation_ids;

  // Register all labels up front so ids are stable regardless of which
  // schemas happen to be drawn.
  for (const TableBlueprint& bp : blueprints) {
    for (const ColumnSpec& col : bp.columns) {
      LabelId(&corpus.type_label_names, &type_ids, col.fine_label);
      for (const std::string& coarse : col.coarse_labels) {
        LabelId(&corpus.type_label_names, &type_ids, coarse);
      }
    }
    for (const RelationSpec& rel : bp.relations) {
      LabelId(&corpus.relation_label_names, &relation_ids, rel.label);
    }
  }

  for (int t = 0; t < options.num_tables; ++t) {
    const TableBlueprint& bp =
        blueprints[static_cast<size_t>(rng.UniformInt(blueprints.size()))];

    // Decide the table-level ambiguity knobs.
    const bool title_informative = !rng.Bernoulli(options.generic_title_prob);
    std::vector<bool> include(bp.columns.size(), true);
    for (size_t c = 0; c < bp.columns.size(); ++c) {
      if (bp.columns[c].is_context_column) {
        include[c] = rng.Bernoulli(options.context_column_prob);
      }
    }
    std::vector<bool> generic_header(bp.columns.size(), false);
    for (size_t c = 0; c < bp.columns.size(); ++c) {
      if (!bp.columns[c].generic_header.empty()) {
        generic_header[c] = rng.Bernoulli(options.generic_header_prob);
      }
    }

    Table table;
    table.title = title_informative
                      ? bp.make_title(rng)
                      : VP::Pick(kGenericTitles, rng) + " " + VP::Year(rng);

    // Column skeletons.
    std::vector<int> dense_index(bp.columns.size(), -1);
    for (size_t c = 0; c < bp.columns.size(); ++c) {
      if (!include[c]) continue;
      dense_index[c] = static_cast<int>(table.columns.size());
      Column column;
      column.header = generic_header[c] ? bp.columns[c].generic_header
                                        : bp.columns[c].header;
      table.columns.push_back(std::move(column));
    }

    // Rows.
    const int rows = static_cast<int>(
        rng.UniformInt(options.min_rows, options.max_rows));
    for (int r = 0; r < rows; ++r) {
      const std::vector<std::string> row = bp.make_row(rng);
      CHECK_EQ(row.size(), bp.columns.size());
      for (size_t c = 0; c < bp.columns.size(); ++c) {
        if (dense_index[c] >= 0) {
          table.columns[static_cast<size_t>(dense_index[c])].cells.push_back(
              row[c]);
        }
      }
    }

    const int table_index = static_cast<int>(corpus.tables.size());

    // Type samples with the evidence oracle.
    for (size_t c = 0; c < bp.columns.size(); ++c) {
      if (dense_index[c] < 0) continue;
      const ColumnSpec& spec = bp.columns[c];
      TypeSample sample;
      sample.table_index = table_index;
      sample.column_index = dense_index[c];
      sample.labels.push_back(
          LabelId(&corpus.type_label_names, &type_ids, spec.fine_label));
      for (const std::string& coarse : spec.coarse_labels) {
        sample.labels.push_back(
            LabelId(&corpus.type_label_names, &type_ids, coarse));
      }
      if (title_informative) {
        sample.evidence.insert(sample.evidence.end(),
                               bp.title_evidence.begin(),
                               bp.title_evidence.end());
      }
      if (!generic_header[c]) {
        for (const std::string& tok : text::BasicTokenize(spec.header)) {
          sample.evidence.push_back(tok);
        }
      }
      if (spec.values_are_evidence) {
        const Column& column =
            table.columns[static_cast<size_t>(dense_index[c])];
        for (size_t r = 0; r < column.cells.size() && r < 3; ++r) {
          for (const std::string& tok : text::BasicTokenize(column.cells[r])) {
            sample.evidence.push_back(tok);
          }
        }
      }
      corpus.type_samples.push_back(std::move(sample));
    }

    // Relation samples.
    for (const RelationSpec& rel : bp.relations) {
      const int left = dense_index[static_cast<size_t>(rel.left)];
      const int right = dense_index[static_cast<size_t>(rel.right)];
      if (left < 0 || right < 0) continue;
      RelationSample sample;
      sample.table_index = table_index;
      sample.left_column = left;
      sample.right_column = right;
      sample.label =
          LabelId(&corpus.relation_label_names, &relation_ids, rel.label);
      if (title_informative) {
        sample.evidence.insert(sample.evidence.end(),
                               bp.title_evidence.begin(),
                               bp.title_evidence.end());
      }
      for (int side : {rel.left, rel.right}) {
        const ColumnSpec& spec = bp.columns[static_cast<size_t>(side)];
        if (!generic_header[static_cast<size_t>(side)]) {
          for (const std::string& tok : text::BasicTokenize(spec.header)) {
            sample.evidence.push_back(tok);
          }
        }
        if (spec.values_are_evidence) {
          const Column& column = table.columns[static_cast<size_t>(
              dense_index[static_cast<size_t>(side)])];
          for (size_t r = 0; r < column.cells.size() && r < 2; ++r) {
            for (const std::string& tok :
                 text::BasicTokenize(column.cells[r])) {
              sample.evidence.push_back(tok);
            }
          }
        }
      }
      corpus.relation_samples.push_back(std::move(sample));
    }

    corpus.tables.push_back(std::move(table));
  }

  AssignSplits(&corpus, options.train_fraction, options.valid_fraction,
               options.seed + 1);
  return corpus;
}

}  // namespace explainti::data
