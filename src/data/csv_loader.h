#ifndef EXPLAINTI_DATA_CSV_LOADER_H_
#define EXPLAINTI_DATA_CSV_LOADER_H_

#include <string>

#include "data/table.h"
#include "util/status.h"

namespace explainti::data {

/// Options for loading user tables from CSV.
struct CsvLoadOptions {
  /// Treat the first row as column headers; otherwise headers become
  /// "column_0", "column_1", ...
  bool first_row_is_header = true;
  /// Table title; when empty, the file's basename (without extension) is
  /// used — the same role a filename-like title plays in GitTables.
  std::string title;
  /// Cap on loaded rows (0 = unlimited); serialisation truncates anyway.
  int64_t max_rows = 0;
};

/// Builds a Table from already-parsed CSV rows. Ragged rows are padded
/// with empty cells to the header width; extra cells are dropped.
util::StatusOr<Table> TableFromCsvRows(
    const std::vector<std::vector<std::string>>& rows,
    const CsvLoadOptions& options);

/// Loads a table from a CSV file on disk — the entry point for annotating
/// real user tables with a trained model (see examples/).
util::StatusOr<Table> LoadTableFromCsv(const std::string& path,
                                       const CsvLoadOptions& options = {});

}  // namespace explainti::data

#endif  // EXPLAINTI_DATA_CSV_LOADER_H_
