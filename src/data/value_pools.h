#ifndef EXPLAINTI_DATA_VALUE_POOLS_H_
#define EXPLAINTI_DATA_VALUE_POOLS_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace explainti::data {

/// Value pools for the synthetic corpora.
///
/// The crucial design point (DESIGN.md): *people share one name pool*
/// regardless of occupation, so cell values alone cannot distinguish a
/// basketball player from a film director — exactly the under-determination
/// the paper's Example I describes — while team/club/country pools are
/// domain-unique and therefore strong evidence.
class ValuePools {
 public:
  /// A full person name ("jordan smith"); shared across all person
  /// subtypes.
  static std::string PersonName(util::Rng& rng);

  static const std::vector<std::string>& NbaTeams();
  static const std::vector<std::string>& NflTeams();
  static const std::vector<std::string>& SoccerClubs();
  static const std::vector<std::string>& Countries();
  static const std::vector<std::string>& Capitals();  ///< Parallel to Countries().
  static const std::vector<std::string>& Cities();
  static const std::vector<std::string>& Universities();
  static const std::vector<std::string>& Companies();
  static const std::vector<std::string>& Parties();
  static const std::vector<std::string>& Currencies();
  static const std::vector<std::string>& Genres();
  static const std::vector<std::string>& Habitats();
  static const std::vector<std::string>& Continents();
  static const std::vector<std::string>& ConservationStatuses();

  /// Generated creative-work titles ("the silent river").
  static std::string FilmTitle(util::Rng& rng);
  static std::string AlbumTitle(util::Rng& rng);
  static std::string BookTitle(util::Rng& rng);
  static std::string SeriesTitle(util::Rng& rng);

  /// Latin-flavoured binomials for the GitTable organism domain.
  static std::string GenusName(util::Rng& rng);
  static std::string SpeciesEpithet(util::Rng& rng);
  static std::string FamilyName(util::Rng& rng);
  static std::string DiseaseName(util::Rng& rng);
  static std::string EnzymeName(util::Rng& rng);

  /// Identifier-style codes ("sp-48127", "prot-0931").
  static std::string Code(const std::string& prefix, util::Rng& rng);

  static std::string Year(util::Rng& rng);
  static std::string Date(util::Rng& rng);
  static std::string Integer(int64_t lo, int64_t hi, util::Rng& rng);
  static std::string Decimal(double lo, double hi, int precision,
                             util::Rng& rng);

  /// Uniform pick from a pool.
  static const std::string& Pick(const std::vector<std::string>& pool,
                                 util::Rng& rng);
};

}  // namespace explainti::data

#endif  // EXPLAINTI_DATA_VALUE_POOLS_H_
