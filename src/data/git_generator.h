#ifndef EXPLAINTI_DATA_GIT_GENERATOR_H_
#define EXPLAINTI_DATA_GIT_GENERATOR_H_

#include <cstdint>

#include "data/corpus.h"

namespace explainti::data {

/// Options for the synthetic database-table corpus (GitTables `organism`
/// stand-in).
///
/// Database tables differ from Web tables in exactly the ways the paper's
/// GitTable observations depend on: far fewer tables, many more rows,
/// filename-like titles that carry no semantics, headers that are highly
/// type-indicative, heterogeneous column orders (so positional inter-table
/// aggregation — TCN's idea — is noise), and no relation annotations.
struct GitTableOptions {
  int num_tables = 130;
  uint64_t seed = 11;
  /// Probability a column's header degrades to a generic one ("value",
  /// "id", "name"), forcing value-based prediction.
  double generic_header_prob = 0.08;
  int min_rows = 60;
  int max_rows = 200;
  double train_fraction = 0.8;
  double valid_fraction = 0.1;
};

/// Generates the database-table corpus: organism-domain schemas (taxonomy,
/// genomes, proteins, specimens, ...), multi-class column types, shuffled
/// column order, no relations.
TableCorpus GenerateGitTableCorpus(const GitTableOptions& options);

}  // namespace explainti::data

#endif  // EXPLAINTI_DATA_GIT_GENERATOR_H_
