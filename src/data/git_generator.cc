#include "data/git_generator.h"

#include <functional>
#include <unordered_map>

#include "data/value_pools.h"
#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/rng.h"

namespace explainti::data {

namespace {

using VP = ValuePools;

struct GitColumnSpec {
  std::string header;
  std::string type_label;
  std::function<std::string(util::Rng&)> value;
  /// Cell values identify the type even under a generic header (codes,
  /// latin binomials, status strings — true for most organism columns).
  bool values_are_evidence = false;
};

struct GitBlueprint {
  std::string schema_name;
  std::vector<GitColumnSpec> columns;
};

std::vector<GitBlueprint> BuildGitBlueprints() {
  std::vector<GitBlueprint> blueprints;

  blueprints.push_back(GitBlueprint{
      "taxonomy",
      {
          {"genus", "organism.genus",
           [](util::Rng& rng) { return VP::GenusName(rng); }, true},
          {"species", "organism.species",
           [](util::Rng& rng) { return VP::SpeciesEpithet(rng); }, true},
          {"family", "organism.family",
           [](util::Rng& rng) { return VP::FamilyName(rng); }, true},
          {"discovered", "date.year",
           [](util::Rng& rng) { return VP::Year(rng); }, false},
      }});

  blueprints.push_back(GitBlueprint{
      "habitats",
      {
          {"organism", "organism.name",
           [](util::Rng& rng) {
             return VP::GenusName(rng) + " " + VP::SpeciesEpithet(rng);
           },
           true},
          {"habitat", "environment.habitat",
           [](util::Rng& rng) { return VP::Pick(VP::Habitats(), rng); },
           true},
          {"continent", "location.continent",
           [](util::Rng& rng) { return VP::Pick(VP::Continents(), rng); },
           true},
          {"status", "conservation.status",
           [](util::Rng& rng) {
             return VP::Pick(VP::ConservationStatuses(), rng);
           },
           true},
      }});

  blueprints.push_back(GitBlueprint{
      "genomes",
      {
          {"organism", "organism.name",
           [](util::Rng& rng) {
             return VP::GenusName(rng) + " " + VP::SpeciesEpithet(rng);
           },
           true},
          {"genome size mb", "genome.size",
           [](util::Rng& rng) { return VP::Decimal(0.5, 9000.0, 1, rng); },
           false},
          {"gene count", "genome.gene_count",
           [](util::Rng& rng) { return VP::Integer(400, 60000, rng); },
           false},
          {"gc content", "genome.gc_content",
           [](util::Rng& rng) { return VP::Decimal(20.0, 75.0, 2, rng); },
           false},
      }});

  blueprints.push_back(GitBlueprint{
      "proteins",
      {
          {"protein id", "protein.id",
           [](util::Rng& rng) { return VP::Code("prot", rng); }, true},
          {"organism", "organism.name",
           [](util::Rng& rng) {
             return VP::GenusName(rng) + " " + VP::SpeciesEpithet(rng);
           },
           true},
          {"length", "protein.length",
           [](util::Rng& rng) { return VP::Integer(50, 5000, rng); }, false},
          {"mass kda", "protein.mass",
           [](util::Rng& rng) { return VP::Decimal(5.0, 600.0, 1, rng); },
           false},
      }});

  blueprints.push_back(GitBlueprint{
      "specimens",
      {
          {"specimen id", "specimen.id",
           [](util::Rng& rng) { return VP::Code("sp", rng); }, true},
          {"collector", "person.collector",
           [](util::Rng& rng) { return VP::PersonName(rng); }, false},
          {"collection date", "date.collection",
           [](util::Rng& rng) { return VP::Date(rng); }, true},
          {"location", "location.site",
           [](util::Rng& rng) { return VP::Pick(VP::Cities(), rng); }, true},
      }});

  blueprints.push_back(GitBlueprint{
      "diseases",
      {
          {"disease", "disease.name",
           [](util::Rng& rng) { return VP::DiseaseName(rng); }, true},
          {"pathogen", "disease.pathogen",
           [](util::Rng& rng) { return VP::GenusName(rng); }, true},
          {"host", "organism.host",
           [](util::Rng& rng) {
             return VP::GenusName(rng) + " " + VP::SpeciesEpithet(rng);
           },
           true},
          {"first reported", "date.year",
           [](util::Rng& rng) { return VP::Year(rng); }, false},
      }});

  blueprints.push_back(GitBlueprint{
      "enzymes",
      {
          {"enzyme", "enzyme.name",
           [](util::Rng& rng) { return VP::EnzymeName(rng); }, true},
          {"substrate", "enzyme.substrate",
           [](util::Rng& rng) { return VP::EnzymeName(rng) + " substrate"; },
           true},
          {"source organism", "organism.name",
           [](util::Rng& rng) {
             return VP::GenusName(rng) + " " + VP::SpeciesEpithet(rng);
           },
           true},
          {"optimal ph", "assay.ph",
           [](util::Rng& rng) { return VP::Decimal(1.5, 11.0, 1, rng); },
           false},
      }});

  blueprints.push_back(GitBlueprint{
      "strains",
      {
          {"strain id", "strain.id",
           [](util::Rng& rng) { return VP::Code("str", rng); }, true},
          {"species", "organism.species",
           [](util::Rng& rng) { return VP::SpeciesEpithet(rng); }, true},
          {"laboratory", "organization.laboratory",
           [](util::Rng& rng) { return VP::Pick(VP::Universities(), rng); },
           true},
          {"isolated", "date.year",
           [](util::Rng& rng) { return VP::Year(rng); }, false},
      }});

  return blueprints;
}

const std::vector<std::string> kGenericHeaders = {"value", "id", "name",
                                                  "field"};

int LabelId(std::vector<std::string>* names,
            std::unordered_map<std::string, int>* ids,
            const std::string& name) {
  auto [it, inserted] =
      ids->try_emplace(name, static_cast<int>(names->size()));
  if (inserted) names->push_back(name);
  return it->second;
}

}  // namespace

TableCorpus GenerateGitTableCorpus(const GitTableOptions& options) {
  CHECK_GT(options.num_tables, 0);
  const std::vector<GitBlueprint> blueprints = BuildGitBlueprints();
  util::Rng rng(options.seed);

  TableCorpus corpus;
  corpus.name = "SynthGitTable";
  corpus.type_multi_label = false;
  std::unordered_map<std::string, int> type_ids;

  for (const GitBlueprint& bp : blueprints) {
    for (const GitColumnSpec& col : bp.columns) {
      LabelId(&corpus.type_label_names, &type_ids, col.type_label);
    }
  }

  for (int t = 0; t < options.num_tables; ++t) {
    const GitBlueprint& bp =
        blueprints[static_cast<size_t>(rng.UniformInt(blueprints.size()))];

    // Database tables: filename-like titles with no semantic content, and
    // shuffled column order (defeats positional inter-table aggregation).
    Table table;
    table.title = "data_" + std::to_string(t) + "_export";
    std::vector<size_t> column_order(bp.columns.size());
    for (size_t i = 0; i < column_order.size(); ++i) column_order[i] = i;
    rng.Shuffle(column_order);

    std::vector<bool> generic_header(bp.columns.size(), false);
    for (size_t c = 0; c < bp.columns.size(); ++c) {
      generic_header[c] = rng.Bernoulli(options.generic_header_prob);
    }

    const int rows = static_cast<int>(
        rng.UniformInt(options.min_rows, options.max_rows));
    const int table_index = static_cast<int>(corpus.tables.size());

    for (size_t pos = 0; pos < column_order.size(); ++pos) {
      const size_t c = column_order[pos];
      const GitColumnSpec& spec = bp.columns[c];
      Column column;
      column.header = generic_header[c]
                          ? kGenericHeaders[static_cast<size_t>(
                                rng.UniformInt(kGenericHeaders.size()))]
                          : spec.header;
      column.cells.reserve(static_cast<size_t>(rows));
      for (int r = 0; r < rows; ++r) column.cells.push_back(spec.value(rng));

      TypeSample sample;
      sample.table_index = table_index;
      sample.column_index = static_cast<int>(pos);
      sample.labels.push_back(
          LabelId(&corpus.type_label_names, &type_ids, spec.type_label));
      if (!generic_header[c]) {
        for (const std::string& tok : text::BasicTokenize(spec.header)) {
          sample.evidence.push_back(tok);
        }
      }
      if (spec.values_are_evidence) {
        for (size_t r = 0; r < column.cells.size() && r < 3; ++r) {
          for (const std::string& tok : text::BasicTokenize(column.cells[r])) {
            sample.evidence.push_back(tok);
          }
        }
      }
      corpus.type_samples.push_back(std::move(sample));
      table.columns.push_back(std::move(column));
    }

    corpus.tables.push_back(std::move(table));
  }

  AssignSplits(&corpus, options.train_fraction, options.valid_fraction,
               options.seed + 1);
  return corpus;
}

}  // namespace explainti::data
