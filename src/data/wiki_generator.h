#ifndef EXPLAINTI_DATA_WIKI_GENERATOR_H_
#define EXPLAINTI_DATA_WIKI_GENERATOR_H_

#include <cstdint>

#include "data/corpus.h"

namespace explainti::data {

/// Options for the synthetic Web-table corpus (WikiTable stand-in).
///
/// The three probability knobs control how often a sample's fine-grained
/// label is decidable from its own serialisation versus only from table
/// context, which is what gives the corpus the paper's headline shape
/// (structural context helps; see DESIGN.md §1):
///  - `generic_title_prob`: the table title carries no domain token
///    ("season results" instead of "1990 nba draft").
///  - `generic_header_prob`: a column's header is generic ("name" instead
///    of "player").
///  - `context_column_prob`: the schema's disambiguating sibling column
///    (the team/club/studio column) is present in the table.
struct WikiTableOptions {
  int num_tables = 240;
  uint64_t seed = 7;
  double generic_title_prob = 0.15;
  double generic_header_prob = 0.30;
  double context_column_prob = 0.85;
  int min_rows = 6;
  int max_rows = 14;
  double train_fraction = 0.8;
  double valid_fraction = 0.1;
};

/// Generates the Web-table corpus: many small, text-heavy tables over ~14
/// schemas (drafts, films, geography, music, ...), multi-label column
/// types (fine + coarse), and pairwise relation annotations.
TableCorpus GenerateWikiTableCorpus(const WikiTableOptions& options);

}  // namespace explainti::data

#endif  // EXPLAINTI_DATA_WIKI_GENERATOR_H_
