#ifndef EXPLAINTI_NN_PRETRAIN_H_
#define EXPLAINTI_NN_PRETRAIN_H_

#include <cstdint>
#include <vector>

#include "nn/encoder.h"

namespace explainti::nn {

/// Options for masked-language-model pre-training.
struct MlmPretrainOptions {
  int epochs = 2;
  float learning_rate = 1e-3f;
  /// Fraction of maskable tokens selected per sequence (BERT: 0.15).
  float mask_prob = 0.15f;
  /// BERT masks once (static); RoBERTa redraws the mask every epoch
  /// (dynamic).
  bool dynamic_masking = false;
  int batch_size = 8;
  uint64_t seed = 1;
  /// Print a progress line every N optimiser steps (0 = silent).
  int log_every = 0;
};

/// Result of a pre-training run.
struct MlmPretrainStats {
  float final_epoch_loss = 0.0f;
  int64_t masked_tokens_total = 0;
  int64_t steps = 0;
};

/// Pre-trains `encoder` in place with the BERT masked-LM objective over
/// the given corpus of token-id sequences.
///
/// Per selected position the 80/10/10 rule applies (replace with [MASK] /
/// random token / keep). This is the "pre-trained transformer encoder"
/// stage that ExplainTI and the transformer baselines fine-tune; see
/// DESIGN.md for the substitution rationale.
MlmPretrainStats PretrainMlm(TransformerEncoder* encoder,
                             const std::vector<std::vector<int>>& id_seqs,
                             const std::vector<std::vector<int>>& segment_seqs,
                             const MlmPretrainOptions& options);

}  // namespace explainti::nn

#endif  // EXPLAINTI_NN_PRETRAIN_H_
