#ifndef EXPLAINTI_NN_LINEAR_H_
#define EXPLAINTI_NN_LINEAR_H_

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace explainti::nn {

/// Affine map y = x W + b with W [in, out], b [out].
///
/// Accepts rank-1 [in] or rank-2 [m, in] inputs. Xavier-uniform
/// initialisation.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, util::Rng& rng);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int64_t in_features() const { return weight_.dim(0); }
  int64_t out_features() const { return weight_.dim(1); }
  const tensor::Tensor& weight() const { return weight_; }
  const tensor::Tensor& bias() const { return bias_; }

 private:
  tensor::Tensor weight_;
  tensor::Tensor bias_;
};

}  // namespace explainti::nn

#endif  // EXPLAINTI_NN_LINEAR_H_
