#ifndef EXPLAINTI_NN_ATTENTION_H_
#define EXPLAINTI_NN_ATTENTION_H_

#include "nn/exec_context.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/transformer_config.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace explainti::nn {

/// Multi-head scaled dot-product self-attention (BERT-style).
///
/// Sequences here are unpadded (one sample at a time), so no padding mask
/// is needed; an optional additive attention mask [L, L] supports the TURL
/// baseline's structure-aware visibility matrix (0 where attention is
/// allowed, a large negative value where it is blocked).
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(const TransformerConfig& config, util::Rng& rng);

  /// x: [L, d] -> [L, d]. `mask` may be undefined (no masking).
  tensor::Tensor Forward(const tensor::Tensor& x, const tensor::Tensor& mask,
                         const ExecContext& ctx) const;

  /// Legacy entry point; forwards to the ExecContext overload.
  tensor::Tensor Forward(const tensor::Tensor& x, const tensor::Tensor& mask,
                         bool training, util::Rng& rng) const;

 private:
  // Reads the projection weights when lowering the frozen eval graph into
  // a compiled inference plan (nn/lowering.cc).
  friend struct LoweringAccess;

  TransformerConfig config_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

}  // namespace explainti::nn

#endif  // EXPLAINTI_NN_ATTENTION_H_
