#ifndef EXPLAINTI_NN_MODULE_H_
#define EXPLAINTI_NN_MODULE_H_

#include <vector>

#include "tensor/tensor.h"

namespace explainti::nn {

/// Base class for neural components: a parameter registry.
///
/// Concrete modules register their trainable tensors with AddParameter()
/// and compose children with AddChild(); Parameters() flattens the tree so
/// optimizers can be constructed over a whole model. Modules are neither
/// copyable nor movable (parameters are shared by reference with
/// optimizers).
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children, in
  /// registration order.
  std::vector<tensor::Tensor> Parameters() const;

  /// Total number of trainable scalars.
  int64_t ParameterCount() const;

 protected:
  /// Registers `parameter` (marks requires_grad) and returns it.
  tensor::Tensor AddParameter(tensor::Tensor parameter);

  /// Registers a child module. The child must outlive this module; the
  /// usual pattern is a by-value member registered in the constructor.
  void AddChild(Module* child);

 private:
  std::vector<tensor::Tensor> parameters_;
  std::vector<Module*> children_;
};

}  // namespace explainti::nn

#endif  // EXPLAINTI_NN_MODULE_H_
