#include "nn/attention.h"

#include <cmath>
#include <memory>
#include <vector>

#include "tensor/tensor_ops.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace explainti::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(const TransformerConfig& config,
                                               util::Rng& rng)
    : config_(config),
      wq_(config.d_model, config.d_model, rng),
      wk_(config.d_model, config.d_model, rng),
      wv_(config.d_model, config.d_model, rng),
      wo_(config.d_model, config.d_model, rng) {
  CHECK_EQ(config.d_model % config.num_heads, 0)
      << "d_model must be divisible by num_heads";
  AddChild(&wq_);
  AddChild(&wk_);
  AddChild(&wv_);
  AddChild(&wo_);
}

tensor::Tensor MultiHeadSelfAttention::Forward(const tensor::Tensor& x,
                                               const tensor::Tensor& mask,
                                               bool training,
                                               util::Rng& rng) const {
  return Forward(x, mask,
                 training ? ExecContext::Train(rng) : ExecContext::Eval(&rng));
}

tensor::Tensor MultiHeadSelfAttention::Forward(const tensor::Tensor& x,
                                               const tensor::Tensor& mask,
                                               const ExecContext& ctx) const {
  const int64_t head_dim = config_.d_model / config_.num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  tensor::Tensor q = wq_.Forward(x);
  tensor::Tensor k = wk_.Forward(x);
  tensor::Tensor v = wv_.Forward(x);

  // Attention dropout masks are drawn serially, in head order, from the
  // shared RNG — the exact element order the per-head Dropout call used —
  // so the RNG stream (and with it every training numeric) is independent
  // of how many threads then apply them.
  const int64_t len = x.dim(0);
  const bool use_dropout = ctx.training() && config_.dropout > 0.0f;
  std::vector<std::shared_ptr<const std::vector<float>>> dropout_masks;
  if (use_dropout) {
    CHECK(ctx.rng != nullptr) << "attention dropout requires an RNG";
    const float keep_scale = 1.0f / (1.0f - config_.dropout);
    dropout_masks.reserve(static_cast<size_t>(config_.num_heads));
    for (int64_t h = 0; h < config_.num_heads; ++h) {
      auto head_mask =
          std::make_shared<std::vector<float>>(static_cast<size_t>(len * len));
      for (float& m : *head_mask) {
        m = ctx.rng->Bernoulli(config_.dropout) ? 0.0f : keep_scale;
      }
      dropout_masks.push_back(std::move(head_mask));
    }
  }

  // Each head builds an independent subgraph over the shared, read-only
  // q/k/v tensors; writes go to its own slot, so the concat order (and
  // the result) is identical to the serial per-head loop.
  std::vector<tensor::Tensor> head_outputs(
      static_cast<size_t>(config_.num_heads));
  auto run_heads = [&](int64_t hb, int64_t he) {
    for (int64_t h = hb; h < he; ++h) {
      const int64_t lo = h * head_dim;
      const int64_t hi = lo + head_dim;
      tensor::Tensor qh = tensor::SliceCols(q, lo, hi);
      tensor::Tensor kh = tensor::SliceCols(k, lo, hi);
      tensor::Tensor vh = tensor::SliceCols(v, lo, hi);

      tensor::Tensor scores =
          tensor::Scale(tensor::MatMul(qh, tensor::Transpose(kh)), scale);
      if (mask.defined()) {
        scores = tensor::Add(scores, mask);
      }
      tensor::Tensor attn = tensor::Softmax(scores);
      if (use_dropout) {
        attn = tensor::DropoutWithMask(attn,
                                       dropout_masks[static_cast<size_t>(h)]);
      }
      head_outputs[static_cast<size_t>(h)] = tensor::MatMul(attn, vh);
    }
  };
  if (ctx.inference()) {
    // Inference mode is a thread-local property: pool workers would not
    // see this thread's guard (or its workspace), so the head loop runs on
    // the calling thread. Per the determinism contract the serial loop is
    // bit-identical to the chunked one; the matmuls inside still fan out.
    run_heads(0, config_.num_heads);
  } else {
    util::ParallelFor(0, config_.num_heads, 1, run_heads);
  }

  tensor::Tensor context = tensor::ConcatCols(head_outputs);
  return wo_.Forward(context);
}

}  // namespace explainti::nn
