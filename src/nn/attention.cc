#include "nn/attention.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace explainti::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(const TransformerConfig& config,
                                               util::Rng& rng)
    : config_(config),
      wq_(config.d_model, config.d_model, rng),
      wk_(config.d_model, config.d_model, rng),
      wv_(config.d_model, config.d_model, rng),
      wo_(config.d_model, config.d_model, rng) {
  CHECK_EQ(config.d_model % config.num_heads, 0)
      << "d_model must be divisible by num_heads";
  AddChild(&wq_);
  AddChild(&wk_);
  AddChild(&wv_);
  AddChild(&wo_);
}

tensor::Tensor MultiHeadSelfAttention::Forward(const tensor::Tensor& x,
                                               const tensor::Tensor& mask,
                                               bool training,
                                               util::Rng& rng) const {
  const int64_t head_dim = config_.d_model / config_.num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  tensor::Tensor q = wq_.Forward(x);
  tensor::Tensor k = wk_.Forward(x);
  tensor::Tensor v = wv_.Forward(x);

  std::vector<tensor::Tensor> head_outputs;
  head_outputs.reserve(static_cast<size_t>(config_.num_heads));
  for (int64_t h = 0; h < config_.num_heads; ++h) {
    const int64_t lo = h * head_dim;
    const int64_t hi = lo + head_dim;
    tensor::Tensor qh = tensor::SliceCols(q, lo, hi);
    tensor::Tensor kh = tensor::SliceCols(k, lo, hi);
    tensor::Tensor vh = tensor::SliceCols(v, lo, hi);

    tensor::Tensor scores =
        tensor::Scale(tensor::MatMul(qh, tensor::Transpose(kh)), scale);
    if (mask.defined()) {
      scores = tensor::Add(scores, mask);
    }
    tensor::Tensor attn = tensor::Softmax(scores);
    attn = tensor::Dropout(attn, config_.dropout, rng, training);
    head_outputs.push_back(tensor::MatMul(attn, vh));
  }

  tensor::Tensor context = tensor::ConcatCols(head_outputs);
  return wo_.Forward(context);
}

}  // namespace explainti::nn
