#include "nn/module.h"

#include "util/logging.h"

namespace explainti::nn {

std::vector<tensor::Tensor> Module::Parameters() const {
  std::vector<tensor::Tensor> all(parameters_);
  for (const Module* child : children_) {
    const auto child_params = child->Parameters();
    all.insert(all.end(), child_params.begin(), child_params.end());
  }
  return all;
}

int64_t Module::ParameterCount() const {
  int64_t total = 0;
  for (const tensor::Tensor& p : Parameters()) total += p.size();
  return total;
}

tensor::Tensor Module::AddParameter(tensor::Tensor parameter) {
  CHECK(parameter.defined());
  parameter.set_requires_grad(true);
  parameters_.push_back(parameter);
  return parameter;
}

void Module::AddChild(Module* child) {
  CHECK(child != nullptr);
  children_.push_back(child);
}

}  // namespace explainti::nn
