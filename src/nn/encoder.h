#ifndef EXPLAINTI_NN_ENCODER_H_
#define EXPLAINTI_NN_ENCODER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/embeddings.h"
#include "nn/exec_context.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/transformer_config.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace explainti::nn {

/// One post-LN transformer encoder block:
///   x = LN(x + SelfAttention(x)); x = LN(x + FFN(x)).
class EncoderLayer : public Module {
 public:
  EncoderLayer(const TransformerConfig& config, util::Rng& rng);

  tensor::Tensor Forward(const tensor::Tensor& x, const tensor::Tensor& mask,
                         const ExecContext& ctx) const;

  /// Legacy entry point; forwards to the ExecContext overload.
  tensor::Tensor Forward(const tensor::Tensor& x, const tensor::Tensor& mask,
                         bool training, util::Rng& rng) const;

 private:
  // Reads the sublayer weights when lowering the frozen eval graph into a
  // compiled inference plan (nn/lowering.cc).
  friend struct LoweringAccess;

  TransformerConfig config_;
  MultiHeadSelfAttention attention_;
  Linear ffn_in_;
  Linear ffn_out_;
  tensor::Tensor ln1_gamma_, ln1_beta_;
  tensor::Tensor ln2_gamma_, ln2_beta_;
};

/// The full mini-BERT encoder M: embeddings plus a stack of encoder layers.
///
/// `Forward` maps a token-id sequence to contextual embeddings E [L, d];
/// E[0] is the [CLS] embedding used throughout ExplainTI (Eq. 1).
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(const TransformerConfig& config, util::Rng& rng);

  /// Encodes one sequence. `segments` may be empty; `mask` (optional,
  /// [L, L] additive) supports structure-aware baselines. In
  /// ExecMode::kInference the caller must hold a tensor::InferenceModeGuard
  /// on this thread; outputs are bit-identical to ExecMode::kEval.
  tensor::Tensor Forward(const std::vector<int>& ids,
                         const std::vector<int>& segments,
                         const ExecContext& ctx,
                         const tensor::Tensor& mask = tensor::Tensor()) const;

  /// Legacy entry point; forwards to the ExecContext overload.
  tensor::Tensor Forward(const std::vector<int>& ids,
                         const std::vector<int>& segments, bool training,
                         util::Rng& rng,
                         const tensor::Tensor& mask = tensor::Tensor()) const;

  const TransformerConfig& config() const { return config_; }

 private:
  // Walks the layer stack when lowering the frozen eval graph into a
  // compiled inference plan (nn/lowering.cc).
  friend struct LoweringAccess;

  TransformerConfig config_;
  TransformerEmbeddings embeddings_;
  std::vector<std::unique_ptr<EncoderLayer>> layers_;
};

}  // namespace explainti::nn

#endif  // EXPLAINTI_NN_ENCODER_H_
