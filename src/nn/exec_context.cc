#include "nn/exec_context.h"

#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace explainti::nn {

tensor::Tensor ApplyDropout(const tensor::Tensor& x, float p,
                            const ExecContext& ctx) {
  if (ctx.training()) {
    CHECK(ctx.rng != nullptr) << "training dropout requires an RNG";
    return tensor::Dropout(x, p, *ctx.rng, /*training=*/true);
  }
  if (ctx.inference()) return x;
  // Tape-eval: keep the identity node the legacy path built so eval graphs
  // (and anything walking them) are unchanged.
  return tensor::Scale(x, 1.0f);
}

}  // namespace explainti::nn
