#ifndef EXPLAINTI_NN_EMBEDDINGS_H_
#define EXPLAINTI_NN_EMBEDDINGS_H_

#include <vector>

#include "nn/exec_context.h"
#include "nn/module.h"
#include "nn/transformer_config.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace explainti::nn {

/// Input embeddings: token + learned position (+ optional segment),
/// followed by layer normalisation and dropout, exactly as in BERT.
class TransformerEmbeddings : public Module {
 public:
  TransformerEmbeddings(const TransformerConfig& config, util::Rng& rng);

  /// Embeds a token-id sequence. `segments` may be empty (all zeros) and is
  /// ignored when the config disables segment embeddings. Returns [L, d].
  tensor::Tensor Forward(const std::vector<int>& ids,
                         const std::vector<int>& segments,
                         const ExecContext& ctx) const;

  /// Legacy entry point; forwards to the ExecContext overload.
  tensor::Tensor Forward(const std::vector<int>& ids,
                         const std::vector<int>& segments, bool training,
                         util::Rng& rng) const;

 private:
  // Reads the tables/LN weights when lowering the frozen eval graph into
  // a compiled inference plan (nn/lowering.cc).
  friend struct LoweringAccess;

  TransformerConfig config_;
  tensor::Tensor token_table_;
  tensor::Tensor position_table_;
  tensor::Tensor segment_table_;
  tensor::Tensor ln_gamma_;
  tensor::Tensor ln_beta_;
};

}  // namespace explainti::nn

#endif  // EXPLAINTI_NN_EMBEDDINGS_H_
