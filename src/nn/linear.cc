#include "nn/linear.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace explainti::nn {

Linear::Linear(int64_t in_features, int64_t out_features, util::Rng& rng) {
  CHECK_GT(in_features, 0);
  CHECK_GT(out_features, 0);
  const float bound = std::sqrt(6.0f / static_cast<float>(in_features +
                                                          out_features));
  weight_ = AddParameter(tensor::Tensor::RandUniform({in_features, out_features},
                                                     rng, bound));
  bias_ = AddParameter(tensor::Tensor::Zeros({out_features}));
}

tensor::Tensor Linear::Forward(const tensor::Tensor& x) const {
  return tensor::Add(tensor::MatMul(x, weight_), bias_);
}

}  // namespace explainti::nn
