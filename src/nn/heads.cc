#include "nn/heads.h"

namespace explainti::nn {

MlmHead::MlmHead(int64_t d_model, int64_t vocab_size, util::Rng& rng)
    : projection_(d_model, vocab_size, rng) {
  AddChild(&projection_);
}

tensor::Tensor MlmHead::Forward(const tensor::Tensor& hidden) const {
  return projection_.Forward(hidden);
}

ClassifierHead::ClassifierHead(int64_t in_features, int64_t num_labels,
                               util::Rng& rng)
    : projection_(in_features, num_labels, rng) {
  AddChild(&projection_);
}

tensor::Tensor ClassifierHead::Forward(const tensor::Tensor& features) const {
  return projection_.Forward(features);
}

}  // namespace explainti::nn
