#ifndef EXPLAINTI_NN_EXEC_CONTEXT_H_
#define EXPLAINTI_NN_EXEC_CONTEXT_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace explainti::nn {

/// How a forward pass executes.
enum class ExecMode {
  /// Builds the autograd tape; dropout active. Requires an RNG.
  kTrain,
  /// Builds the tape (no Backward expected) with dropout disabled as
  /// identity ops — the historical eval path, kept byte-for-byte.
  kEval,
  /// No-grad: ops skip the tape and draw storage from the per-thread
  /// Workspace arena. Requires an active tensor::InferenceModeGuard on the
  /// executing thread. Bit-identical outputs to kEval.
  kInference,
};

/// Execution context threaded through the encoder stack: mode + RNG. The
/// scratch arena is not carried here — it is per-thread (see
/// tensor/workspace.h), so the context stays trivially copyable and safe
/// to share across the threads of a parallel region.
struct ExecContext {
  ExecMode mode = ExecMode::kEval;
  util::Rng* rng = nullptr;

  static ExecContext Train(util::Rng& rng) {
    return ExecContext{ExecMode::kTrain, &rng};
  }
  static ExecContext Eval(util::Rng* rng = nullptr) {
    return ExecContext{ExecMode::kEval, rng};
  }
  static ExecContext Inference(util::Rng* rng = nullptr) {
    return ExecContext{ExecMode::kInference, rng};
  }

  bool training() const { return mode == ExecMode::kTrain; }
  bool inference() const { return mode == ExecMode::kInference; }
};

/// Dropout dispatch on the execution mode: real dropout when training, the
/// legacy identity node in tape-eval (keeps eval graphs unchanged), and a
/// plain pass-through off-tape.
tensor::Tensor ApplyDropout(const tensor::Tensor& x, float p,
                            const ExecContext& ctx);

}  // namespace explainti::nn

#endif  // EXPLAINTI_NN_EXEC_CONTEXT_H_
