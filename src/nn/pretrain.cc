#include "nn/pretrain.h"

#include <algorithm>

#include "nn/heads.h"
#include "tensor/optimizer.h"
#include "tensor/tensor_ops.h"
#include "text/vocab.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace explainti::nn {

namespace {

/// One masked training instance: corrupted ids plus (position, original id)
/// prediction targets.
struct MaskedInstance {
  std::vector<int> ids;
  std::vector<std::pair<int, int>> targets;  // (position, original id)
};

MaskedInstance MaskSequence(const std::vector<int>& ids, float mask_prob,
                            int64_t vocab_size, util::Rng& rng) {
  MaskedInstance instance;
  instance.ids = ids;
  for (size_t pos = 0; pos < ids.size(); ++pos) {
    // Never mask special tokens ([PAD]..[MASK] occupy the first ids).
    if (ids[pos] < text::SpecialTokens::kCount) continue;
    if (!rng.Bernoulli(mask_prob)) continue;
    instance.targets.emplace_back(static_cast<int>(pos), ids[pos]);
    const double roll = rng.Uniform();
    if (roll < 0.8) {
      instance.ids[pos] = text::SpecialTokens::kMask;
    } else if (roll < 0.9) {
      instance.ids[pos] = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(vocab_size -
                                               text::SpecialTokens::kCount)) +
          text::SpecialTokens::kCount);
    }  // else keep the original token.
  }
  return instance;
}

}  // namespace

MlmPretrainStats PretrainMlm(TransformerEncoder* encoder,
                             const std::vector<std::vector<int>>& id_seqs,
                             const std::vector<std::vector<int>>& segment_seqs,
                             const MlmPretrainOptions& options) {
  CHECK(encoder != nullptr);
  CHECK_EQ(id_seqs.size(), segment_seqs.size());
  CHECK(!id_seqs.empty()) << "empty pre-training corpus";

  const TransformerConfig& config = encoder->config();
  util::Rng init_rng(options.seed);
  MlmHead head(config.d_model, config.vocab_size, init_rng);

  std::vector<tensor::Tensor> params = encoder->Parameters();
  const auto head_params = head.Parameters();
  params.insert(params.end(), head_params.begin(), head_params.end());

  tensor::AdamWOptions adam_options;
  adam_options.learning_rate = options.learning_rate;
  tensor::AdamW optimizer(params, adam_options);

  util::Rng mask_rng(options.seed + 17);
  util::Rng order_rng(options.seed + 31);
  util::Rng dropout_rng(options.seed + 47);

  // Static masking (BERT) corrupts each sequence once up front.
  std::vector<MaskedInstance> static_instances;
  if (!options.dynamic_masking) {
    static_instances.reserve(id_seqs.size());
    for (const auto& ids : id_seqs) {
      static_instances.push_back(
          MaskSequence(ids, options.mask_prob, config.vocab_size, mask_rng));
    }
  }

  MlmPretrainStats stats;
  std::vector<size_t> order(id_seqs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    order_rng.Shuffle(order);
    float epoch_loss = 0.0f;
    int64_t epoch_targets = 0;
    optimizer.ZeroGrad();
    int in_batch = 0;
    for (size_t ordinal = 0; ordinal < order.size(); ++ordinal) {
      const size_t idx = order[ordinal];
      MaskedInstance instance =
          options.dynamic_masking
              ? MaskSequence(id_seqs[idx], options.mask_prob,
                             config.vocab_size, mask_rng)
              : static_instances[idx];
      if (instance.targets.empty()) continue;

      tensor::Tensor hidden = encoder->Forward(
          instance.ids, segment_seqs[idx], /*training=*/true, dropout_rng);
      // Project only the masked rows; the vocab-sized matmul dominates.
      // Each target's loss subgraph is independent (hidden is read-only,
      // each slot written once), so targets fan out across the pool; the
      // reduction below stays serial and in target order, which keeps the
      // summed loss bit-identical to the single-threaded run.
      std::vector<tensor::Tensor> losses(instance.targets.size());
      util::ParallelFor(
          0, static_cast<int64_t>(instance.targets.size()), 1,
          [&](int64_t tb, int64_t te) {
            for (int64_t t = tb; t < te; ++t) {
              const auto& [pos, original_id] =
                  instance.targets[static_cast<size_t>(t)];
              tensor::Tensor logits = head.Forward(tensor::Row(hidden, pos));
              losses[static_cast<size_t>(t)] =
                  tensor::CrossEntropyLoss(logits, original_id);
            }
          });
      tensor::Tensor loss = losses[0];
      for (size_t i = 1; i < losses.size(); ++i) {
        loss = tensor::Add(loss, losses[i]);
      }
      loss = tensor::Scale(loss, 1.0f / static_cast<float>(losses.size()));
      loss.Backward();

      epoch_loss += loss.item();
      epoch_targets += static_cast<int64_t>(instance.targets.size());
      ++in_batch;
      if (in_batch == options.batch_size || ordinal + 1 == order.size()) {
        optimizer.Step();
        optimizer.ZeroGrad();
        in_batch = 0;
        ++stats.steps;
        if (options.log_every > 0 && stats.steps % options.log_every == 0) {
          LOG(INFO) << "mlm pretrain step " << stats.steps;
        }
      }
    }
    stats.final_epoch_loss =
        epoch_loss / static_cast<float>(std::max<size_t>(order.size(), 1));
    stats.masked_tokens_total += epoch_targets;
  }
  return stats;
}

}  // namespace explainti::nn
