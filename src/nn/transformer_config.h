#ifndef EXPLAINTI_NN_TRANSFORMER_CONFIG_H_
#define EXPLAINTI_NN_TRANSFORMER_CONFIG_H_

#include <cstdint>
#include <string>

namespace explainti::nn {

/// Hyper-parameters of the mini transformer encoder.
///
/// The defaults are the "quick" scale used throughout the reproduction
/// (see DESIGN.md): the architecture is BERT's, shrunk to run on a CPU.
struct TransformerConfig {
  int64_t vocab_size = 0;   ///< Set from the built vocabulary.
  int64_t d_model = 64;     ///< Hidden width (BERT-base: 768).
  int64_t num_heads = 4;    ///< Attention heads (BERT-base: 12).
  int64_t num_layers = 2;   ///< Encoder layers (BERT-base: 12).
  int64_t ffn_dim = 128;    ///< Feed-forward inner width.
  int64_t max_len = 64;     ///< Maximum sequence length (paper: 64).
  float dropout = 0.1f;     ///< Hidden/attention dropout probability.
  /// BERT uses segment (token-type) embeddings; RoBERTa does not.
  bool use_segments = true;

  /// Returns a config matching the named base model ("bert" or
  /// "roberta") at this reproduction's scale.
  static TransformerConfig ForBaseModel(const std::string& base_model,
                                        int64_t vocab_size);
};

}  // namespace explainti::nn

#endif  // EXPLAINTI_NN_TRANSFORMER_CONFIG_H_
