#include "nn/encoder.h"

#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"
#include "util/logging.h"

namespace explainti::nn {

EncoderLayer::EncoderLayer(const TransformerConfig& config, util::Rng& rng)
    : config_(config),
      attention_(config, rng),
      ffn_in_(config.d_model, config.ffn_dim, rng),
      ffn_out_(config.ffn_dim, config.d_model, rng) {
  ln1_gamma_ = AddParameter(tensor::Tensor::Full({config.d_model}, 1.0f));
  ln1_beta_ = AddParameter(tensor::Tensor::Zeros({config.d_model}));
  ln2_gamma_ = AddParameter(tensor::Tensor::Full({config.d_model}, 1.0f));
  ln2_beta_ = AddParameter(tensor::Tensor::Zeros({config.d_model}));
  AddChild(&attention_);
  AddChild(&ffn_in_);
  AddChild(&ffn_out_);
}

tensor::Tensor EncoderLayer::Forward(const tensor::Tensor& x,
                                     const tensor::Tensor& mask, bool training,
                                     util::Rng& rng) const {
  return Forward(x, mask,
                 training ? ExecContext::Train(rng) : ExecContext::Eval(&rng));
}

tensor::Tensor EncoderLayer::Forward(const tensor::Tensor& x,
                                     const tensor::Tensor& mask,
                                     const ExecContext& ctx) const {
  tensor::Tensor attn = attention_.Forward(x, mask, ctx);
  attn = ApplyDropout(attn, config_.dropout, ctx);
  tensor::Tensor h =
      tensor::LayerNorm(tensor::Add(x, attn), ln1_gamma_, ln1_beta_);

  tensor::Tensor ffn = ffn_out_.Forward(tensor::Gelu(ffn_in_.Forward(h)));
  ffn = ApplyDropout(ffn, config_.dropout, ctx);
  return tensor::LayerNorm(tensor::Add(h, ffn), ln2_gamma_, ln2_beta_);
}

TransformerEncoder::TransformerEncoder(const TransformerConfig& config,
                                       util::Rng& rng)
    : config_(config), embeddings_(config, rng) {
  AddChild(&embeddings_);
  layers_.reserve(static_cast<size_t>(config.num_layers));
  for (int64_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<EncoderLayer>(config, rng));
    AddChild(layers_.back().get());
  }
}

tensor::Tensor TransformerEncoder::Forward(const std::vector<int>& ids,
                                           const std::vector<int>& segments,
                                           bool training, util::Rng& rng,
                                           const tensor::Tensor& mask) const {
  return Forward(ids, segments,
                 training ? ExecContext::Train(rng) : ExecContext::Eval(&rng),
                 mask);
}

tensor::Tensor TransformerEncoder::Forward(const std::vector<int>& ids,
                                           const std::vector<int>& segments,
                                           const ExecContext& ctx,
                                           const tensor::Tensor& mask) const {
  CHECK(!ctx.training() || ctx.rng != nullptr)
      << "training forward requires an RNG";
  CHECK(!ctx.inference() || tensor::InferenceModeActive())
      << "ExecMode::kInference requires an InferenceModeGuard on this thread";
  tensor::Tensor x = embeddings_.Forward(ids, segments, ctx);
  for (const auto& layer : layers_) {
    x = layer->Forward(x, mask, ctx);
  }
  return x;
}

}  // namespace explainti::nn
