#ifndef EXPLAINTI_NN_HEADS_H_
#define EXPLAINTI_NN_HEADS_H_

#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace explainti::nn {

/// Masked-language-model head: projects a token embedding [d] (or a batch
/// of masked-position embeddings [m, d]) to vocabulary logits.
class MlmHead : public Module {
 public:
  MlmHead(int64_t d_model, int64_t vocab_size, util::Rng& rng);

  tensor::Tensor Forward(const tensor::Tensor& hidden) const;

 private:
  Linear projection_;
};

/// Classification head (Eq. 1 / Eq. 9): logits = W x + b over `num_labels`.
/// The sigma (softmax/sigmoid) lives in the loss, as usual.
class ClassifierHead : public Module {
 public:
  ClassifierHead(int64_t in_features, int64_t num_labels, util::Rng& rng);

  tensor::Tensor Forward(const tensor::Tensor& features) const;

  int64_t num_labels() const { return projection_.out_features(); }

  /// The underlying affine map — read by plan lowering (the head is one
  /// Linear, so serving can fold it into the compiled instruction stream).
  const Linear& projection() const { return projection_; }

 private:
  Linear projection_;
};

}  // namespace explainti::nn

#endif  // EXPLAINTI_NN_HEADS_H_
