#include "nn/lowering.h"

#include "nn/attention.h"
#include "nn/embeddings.h"
#include "nn/encoder.h"
#include "nn/linear.h"
#include "util/logging.h"

namespace explainti::nn {

/// Befriended by the modules it reads. Keeping the accessors here (rather
/// than adding public getters to every module) keeps the lowering surface
/// in one file: the set of weights a compiled plan may touch is exactly
/// the set of accessors below.
struct LoweringAccess {
  static const TransformerEmbeddings& Embeddings(
      const TransformerEncoder& encoder) {
    return encoder.embeddings_;
  }
  static const std::vector<std::unique_ptr<EncoderLayer>>& Layers(
      const TransformerEncoder& encoder) {
    return encoder.layers_;
  }

  static EmbeddingsLowering Lower(const TransformerEmbeddings& emb) {
    EmbeddingsLowering out;
    out.token_table = emb.token_table_.data();
    out.position_table = emb.position_table_.data();
    out.use_segments = emb.config_.use_segments;
    out.segment_table = out.use_segments ? emb.segment_table_.data() : nullptr;
    out.ln_gamma = emb.ln_gamma_.data();
    out.ln_beta = emb.ln_beta_.data();
    out.vocab_size = emb.token_table_.dim(0);
    out.max_len = emb.position_table_.dim(0);
    return out;
  }

  static EncoderLayerLowering Lower(const EncoderLayer& layer) {
    EncoderLayerLowering out;
    const MultiHeadSelfAttention& attn = layer.attention_;
    out.wq = LowerLinear(attn.wq_);
    out.wk = LowerLinear(attn.wk_);
    out.wv = LowerLinear(attn.wv_);
    out.wo = LowerLinear(attn.wo_);
    out.ffn_in = LowerLinear(layer.ffn_in_);
    out.ffn_out = LowerLinear(layer.ffn_out_);
    out.ln1_gamma = layer.ln1_gamma_.data();
    out.ln1_beta = layer.ln1_beta_.data();
    out.ln2_gamma = layer.ln2_gamma_.data();
    out.ln2_beta = layer.ln2_beta_.data();
    return out;
  }
};

LinearLowering LowerLinear(const Linear& linear) {
  LinearLowering out;
  out.weight = linear.weight().data();
  out.bias = linear.bias().data();
  out.in = linear.in_features();
  out.out = linear.out_features();
  return out;
}

int64_t QuantizedEncoder::Fp32Bytes() const {
  int64_t total = 0;
  for (const QuantizedEncoderLayer& layer : layers) {
    for (const QuantizedLinear* lin :
         {&layer.wq, &layer.wk, &layer.wv, &layer.wo, &layer.ffn_in,
          &layer.ffn_out}) {
      total += lin->Fp32Bytes();
    }
  }
  return total;
}

int64_t QuantizedEncoder::Int8Bytes() const {
  int64_t total = 0;
  for (const QuantizedEncoderLayer& layer : layers) {
    for (const QuantizedLinear* lin :
         {&layer.wq, &layer.wk, &layer.wv, &layer.wo, &layer.ffn_in,
          &layer.ffn_out}) {
      total += lin->Int8Bytes();
    }
  }
  return total;
}

QuantizedLinear QuantizeLinear(const LinearLowering& lin) {
  QuantizedLinear q;
  q.weight = tensor::QuantizeWeightMatrix(lin.weight, lin.in, lin.out);
  q.bias = lin.bias;
  q.in = lin.in;
  q.out = lin.out;
  return q;
}

void RequantizeLinear(const LinearLowering& lin, QuantizedLinear* q) {
  CHECK_EQ(lin.in, q->in);
  CHECK_EQ(lin.out, q->out);
  tensor::RequantizeWeightMatrix(lin.weight, lin.in, lin.out, &q->weight);
  q->bias = lin.bias;
}

QuantizedEncoder QuantizeEncoder(const EncoderLowering& encoder) {
  QuantizedEncoder q;
  q.layers.reserve(encoder.layers.size());
  for (const EncoderLayerLowering& layer : encoder.layers) {
    QuantizedEncoderLayer ql;
    ql.wq = QuantizeLinear(layer.wq);
    ql.wk = QuantizeLinear(layer.wk);
    ql.wv = QuantizeLinear(layer.wv);
    ql.wo = QuantizeLinear(layer.wo);
    ql.ffn_in = QuantizeLinear(layer.ffn_in);
    ql.ffn_out = QuantizeLinear(layer.ffn_out);
    q.layers.push_back(std::move(ql));
  }
  return q;
}

void RequantizeEncoder(const EncoderLowering& encoder, QuantizedEncoder* q) {
  CHECK_EQ(encoder.layers.size(), q->layers.size())
      << "re-quantize must preserve the layer stack";
  for (size_t i = 0; i < encoder.layers.size(); ++i) {
    const EncoderLayerLowering& layer = encoder.layers[i];
    QuantizedEncoderLayer& ql = q->layers[i];
    RequantizeLinear(layer.wq, &ql.wq);
    RequantizeLinear(layer.wk, &ql.wk);
    RequantizeLinear(layer.wv, &ql.wv);
    RequantizeLinear(layer.wo, &ql.wo);
    RequantizeLinear(layer.ffn_in, &ql.ffn_in);
    RequantizeLinear(layer.ffn_out, &ql.ffn_out);
  }
}

EncoderLowering LowerEncoder(const TransformerEncoder& encoder) {
  EncoderLowering out;
  out.embeddings =
      LoweringAccess::Lower(LoweringAccess::Embeddings(encoder));
  for (const auto& layer : LoweringAccess::Layers(encoder)) {
    CHECK(layer != nullptr);
    out.layers.push_back(LoweringAccess::Lower(*layer));
  }
  out.d_model = encoder.config().d_model;
  out.num_heads = encoder.config().num_heads;
  out.ffn_dim = encoder.config().ffn_dim;
  return out;
}

}  // namespace explainti::nn
