#ifndef EXPLAINTI_NN_LOWERING_H_
#define EXPLAINTI_NN_LOWERING_H_

#include <cstdint>
#include <vector>

#include "tensor/quant.h"

namespace explainti::nn {

class Linear;
class TransformerEncoder;

/// Graph metadata for lowering the frozen eval graph into a compiled
/// inference plan (core/inference_plan.cc).
///
/// The tensor library is eager — each forward call rebuilds its graph —
/// so there is no persistent tape to capture. What IS persistent is the
/// module structure: the encoder's op sequence is fixed by construction
/// (embeddings -> N x [attention, FFN] -> output), and only the weight
/// pointers and dimensions vary between models. These structs are that
/// structure, flattened: everything a plan builder needs to emit the
/// exact op stream TransformerEncoder::Forward would execute, without
/// ever running it. The pointers borrow the module's parameter storage;
/// they stay valid across LoadWeights (which copies into the existing
/// buffers) but die with the encoder.
///
/// EXPLAINTI_PLAN=verify (see InferenceSession) provides the runtime
/// complement: every serving call executes both the lowered plan and the
/// graph walk and checks bit-equality.

/// y = x W + b with W [in, out] row-major, b [out].
struct LinearLowering {
  const float* weight = nullptr;
  const float* bias = nullptr;
  int64_t in = 0;
  int64_t out = 0;
};

/// token + position (+ optional segment) gather-adds, then LayerNorm.
struct EmbeddingsLowering {
  const float* token_table = nullptr;     // [vocab, d]
  const float* position_table = nullptr;  // [max_len, d]
  const float* segment_table = nullptr;   // [2, d]; null: no segment term
  const float* ln_gamma = nullptr;        // [d]
  const float* ln_beta = nullptr;         // [d]
  int64_t vocab_size = 0;
  int64_t max_len = 0;
  bool use_segments = false;
};

/// One post-LN encoder block:
///   h = LN(x + Attn(x)); out = LN(h + W2 gelu(W1 h + b1) + b2).
struct EncoderLayerLowering {
  LinearLowering wq, wk, wv, wo;          // d -> d each.
  LinearLowering ffn_in;                  // d -> ffn_dim (GELU after).
  LinearLowering ffn_out;                 // ffn_dim -> d.
  const float* ln1_gamma = nullptr;
  const float* ln1_beta = nullptr;
  const float* ln2_gamma = nullptr;
  const float* ln2_beta = nullptr;
};

/// The full encoder: embeddings plus the layer stack.
struct EncoderLowering {
  EmbeddingsLowering embeddings;
  std::vector<EncoderLayerLowering> layers;
  int64_t d_model = 0;
  int64_t num_heads = 0;
  int64_t ffn_dim = 0;
};

/// Flattens `encoder`'s structure and weight pointers for plan building.
/// Always succeeds (the encoder architecture is closed); whether a
/// particular *call shape* is supported — sequence length in range, no
/// additive attention mask, d_model divisible by num_heads — is decided
/// by the plan builder, which falls back to the graph walk otherwise.
EncoderLowering LowerEncoder(const TransformerEncoder& encoder);

/// Flattens one affine head for plan building.
LinearLowering LowerLinear(const Linear& linear);

// ---------------------------------------------------------------------------
// Quantized views (the int8 serving tier)
// ---------------------------------------------------------------------------
//
// A quantized view is an OWNED int8 snapshot of a frozen Linear's fp32
// weight (symmetric per-output-channel, tensor/quant.h), plus a borrowed
// pointer to the fp32 bias — the bias add stays in fp32 on the plan's
// epilogue path. Views are built once at session construction
// (quantize-once); after LoadWeights mutates the fp32 parameters in
// place, RequantizeLinear/RequantizeEncoder rewrite the SAME int8
// storage, so plan instructions that borrowed the quantized pointers
// stay valid exactly like the fp32 borrowed-pointer contract.

/// y = dequant(x_q W_q) + b for one frozen Linear.
struct QuantizedLinear {
  tensor::QuantizedMatrix weight;  ///< [in, out] int8, per-column params.
  const float* bias = nullptr;     ///< Borrows the module's fp32 bias.
  int64_t in = 0;
  int64_t out = 0;

  /// fp32 bytes this view replaces (the weight matrix only — the bias
  /// stays fp32 on both paths).
  int64_t Fp32Bytes() const {
    return in * out * static_cast<int64_t>(sizeof(float));
  }
  int64_t Int8Bytes() const { return weight.StorageBytes(); }
};

/// One encoder block's six weight GEMMs, quantized. Attention's
/// activation x activation GEMMs (scores, context) have no frozen
/// operand and stay fp32 by construction.
struct QuantizedEncoderLayer {
  QuantizedLinear wq, wk, wv, wo, ffn_in, ffn_out;
};

/// The full encoder's quantized weight set, parallel to
/// EncoderLowering::layers.
struct QuantizedEncoder {
  std::vector<QuantizedEncoderLayer> layers;

  int64_t Fp32Bytes() const;
  int64_t Int8Bytes() const;
};

/// Quantizes one lowered Linear (a fresh owned snapshot).
QuantizedLinear QuantizeLinear(const LinearLowering& lin);

/// Re-quantizes `lin`'s current fp32 weights into `q`'s existing
/// storage; shape must match (CHECK). Pointer-stable.
void RequantizeLinear(const LinearLowering& lin, QuantizedLinear* q);

/// Quantizes every weight GEMM of a lowered encoder.
QuantizedEncoder QuantizeEncoder(const EncoderLowering& encoder);

/// Re-quantizes every layer in place; layer count and shapes must match.
void RequantizeEncoder(const EncoderLowering& encoder, QuantizedEncoder* q);

}  // namespace explainti::nn

#endif  // EXPLAINTI_NN_LOWERING_H_
