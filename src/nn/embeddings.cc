#include "nn/embeddings.h"

#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace explainti::nn {

TransformerConfig TransformerConfig::ForBaseModel(
    const std::string& base_model, int64_t vocab_size) {
  TransformerConfig config;
  config.vocab_size = vocab_size;
  if (base_model == "bert") {
    config.use_segments = true;
  } else if (base_model == "roberta") {
    config.use_segments = false;
  } else {
    LOG(FATAL) << "unknown base model: " << base_model;
  }
  return config;
}

TransformerEmbeddings::TransformerEmbeddings(const TransformerConfig& config,
                                             util::Rng& rng)
    : config_(config) {
  CHECK_GT(config.vocab_size, 0);
  constexpr float kInitStd = 0.02f;  // BERT's truncated-normal stddev.
  token_table_ = AddParameter(tensor::Tensor::Randn(
      {config.vocab_size, config.d_model}, rng, kInitStd));
  position_table_ = AddParameter(
      tensor::Tensor::Randn({config.max_len, config.d_model}, rng, kInitStd));
  segment_table_ =
      AddParameter(tensor::Tensor::Randn({2, config.d_model}, rng, kInitStd));
  ln_gamma_ = AddParameter(tensor::Tensor::Full({config.d_model}, 1.0f));
  ln_beta_ = AddParameter(tensor::Tensor::Zeros({config.d_model}));
}

tensor::Tensor TransformerEmbeddings::Forward(const std::vector<int>& ids,
                                              const std::vector<int>& segments,
                                              bool training,
                                              util::Rng& rng) const {
  return Forward(ids, segments,
                 training ? ExecContext::Train(rng) : ExecContext::Eval(&rng));
}

tensor::Tensor TransformerEmbeddings::Forward(const std::vector<int>& ids,
                                              const std::vector<int>& segments,
                                              const ExecContext& ctx) const {
  const int64_t len = static_cast<int64_t>(ids.size());
  CHECK_GT(len, 0);
  CHECK_LE(len, config_.max_len)
      << "sequence longer than max_len: " << len;

  tensor::Tensor x = tensor::EmbeddingLookup(token_table_, ids);

  std::vector<int> positions(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) positions[i] = static_cast<int>(i);
  x = tensor::Add(x, tensor::EmbeddingLookup(position_table_, positions));

  if (config_.use_segments && !segments.empty()) {
    CHECK_EQ(segments.size(), ids.size());
    x = tensor::Add(x, tensor::EmbeddingLookup(segment_table_, segments));
  }

  x = tensor::LayerNorm(x, ln_gamma_, ln_beta_);
  return ApplyDropout(x, config_.dropout, ctx);
}

}  // namespace explainti::nn
