#ifndef EXPLAINTI_SERVE_TENANT_H_
#define EXPLAINTI_SERVE_TENANT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/request.h"
#include "util/status.h"

namespace explainti::serve {

/// Per-tenant admission policy: a traffic class plus a token-bucket
/// quota. `quota_rps <= 0` means unlimited (no bucket; every request
/// admitted). `burst` is the bucket capacity — how far a tenant may
/// exceed its steady rate instantaneously; 0 defaults it to
/// max(quota_rps, 1), i.e. roughly one second of quota.
struct TenantOptions {
  std::string name = "default";
  Priority priority = Priority::kInteractive;
  double quota_rps = 0.0;  ///< Sustained tokens/second; <= 0 = unlimited.
  double burst = 0.0;      ///< Bucket capacity; 0 = max(quota_rps, 1).
};

/// Registry of serving tenants with token-bucket admission.
///
/// Register every tenant before serving starts (registration appends;
/// ids are dense and stable). Tenant 0 is pre-registered as the
/// unlimited, interactive "default" tenant so single-tenant callers work
/// untouched. Admit() is thread-safe and refills lazily from the
/// monotonic clock — no background refill thread: each call tops the
/// bucket up by elapsed_seconds * quota_rps (capped at burst) and then
/// spends one token, so a tenant sustained above its quota is rejected
/// with kResourceExhausted at admission time, before the request touches
/// the queue or any compute.
class TenantRegistry {
 public:
  TenantRegistry();

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Adds a tenant; returns its dense id. Register before the server
  /// starts taking traffic — ids handed to clients must already exist.
  int Register(TenantOptions options);

  /// Number of registered tenants (>= 1: the default tenant).
  int size() const;

  /// True when `tenant_id` names a registered tenant.
  bool Contains(int tenant_id) const;

  /// The registered options for `tenant_id`. Aborts on unknown ids —
  /// validate with Contains() first.
  const TenantOptions& options(int tenant_id) const;

  /// Spends one quota token for `tenant_id` at monotonic time `now_us`.
  /// Returns OK when admitted, kResourceExhausted when the bucket is
  /// empty (the tenant is over quota), kInvalidArgument for unknown ids.
  /// `now_us` is a parameter (not read internally) so tests can drive the
  /// refill clock without sleeping.
  util::Status Admit(int tenant_id, int64_t now_us);

  /// Admissions rejected for quota since registration, per tenant.
  int64_t quota_rejections(int tenant_id) const;

 private:
  struct Tenant {
    TenantOptions options;
    double capacity = 0.0;  ///< Resolved burst.
    // Bucket state, guarded by `mu`. Separate per-tenant locks: one
    // tenant hammering its bucket never contends with another's path.
    mutable std::mutex mu;
    double tokens = 0.0;
    int64_t last_refill_us = 0;
    int64_t rejections = 0;
  };

  // Guards the tenant list itself (registration); per-bucket state has
  // its own locks. Tenants are held by pointer so Register never moves
  // live bucket state.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
};

}  // namespace explainti::serve

#endif  // EXPLAINTI_SERVE_TENANT_H_
