#ifndef EXPLAINTI_SERVE_SERVER_H_
#define EXPLAINTI_SERVE_SERVER_H_

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/inference_session.h"
#include "serve/batcher.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "util/status.h"

namespace explainti::serve {

/// Server shape: worker count plus the admission/batching knobs.
struct ServerOptions {
  /// Worker threads executing coalesced batches. 0 is allowed (no
  /// execution happens; tests drive ExecuteBatch directly and Shutdown
  /// fails whatever is still queued).
  int num_workers = 2;
  BatcherOptions batcher;
};

/// Dynamic micro-batching inference server over a frozen
/// core::InferenceSession.
///
///   clients --Submit/ServeSync--> [bounded admission queue]
///                                        | coalesce (method, task),
///                                        | expire past-deadline
///                                        v
///                                  MicroBatcher::PopBatch
///                                        |
///                  +---------------------+--------------------+
///                  v                     v                    v
///              worker 0              worker 1   ...       worker N-1
///         (ExecuteBatch: batched InferenceSession entry points; each
///          per-sample forward runs under its own InferenceModeGuard +
///          per-thread Workspace arena)
///
/// Admission control: Submit validates the request and rejects
/// immediately — kInvalidArgument for unknown task/sample,
/// kResourceExhausted when the bounded queue is full (load shedding, not
/// buffering), kFailedPrecondition after Shutdown. Accepted requests are
/// guaranteed exactly one completion callback: with a served (OK or
/// kDeadlineExceeded) response from a worker, or — only when
/// num_workers == 0 — a kFailedPrecondition response from Shutdown.
///
/// Results are bit-identical to calling the InferenceSession directly:
/// batching changes scheduling, never numerics (golden-tested in
/// tests/serve_test.cc).
class InferenceServer {
 public:
  /// `session` must outlive the server. `metrics` may be null, in which
  /// case the server owns a private registry; pass a shared registry to
  /// aggregate several servers into one exporter.
  explicit InferenceServer(const core::InferenceSession& session,
                           const ServerOptions& options = {},
                           MetricsRegistry* metrics = nullptr);

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Drains and joins (Shutdown()).
  ~InferenceServer();

  /// Admits one request. On a non-OK return the callback will never be
  /// invoked; on OK it is invoked exactly once, from a worker thread.
  util::Status Submit(ServeRequest request, ServeCallback on_done);

  /// Blocking convenience: admits `request` and waits for its response.
  /// Rejections come back as a response with the rejecting status.
  ServeResponse ServeSync(ServeRequest request);

  /// Graceful drain: closes admissions, serves every already-accepted
  /// request, then joins the workers. Idempotent; also run by the
  /// destructor.
  void Shutdown();

  MetricsRegistry& metrics() { return *metrics_; }
  const MicroBatcher& batcher() const { return batcher_; }
  const ServerOptions& options() const { return options_; }

  /// Executes one coalesced batch (all entries batch-compatible) against
  /// `session` and completes every request: the worker-loop body, public
  /// so tests and benches can drive it on their own thread (e.g. the
  /// steady-state zero-alloc assertion). `metrics` may be null.
  static void ExecuteBatch(const core::InferenceSession& session,
                           std::vector<PendingRequest>& batch,
                           MetricsRegistry* metrics);

  /// Completes `expired` requests with kDeadlineExceeded (no compute).
  /// `metrics` may be null.
  static void FailExpired(std::vector<PendingRequest>& expired,
                          MetricsRegistry* metrics);

 private:
  void WorkerLoop();

  const core::InferenceSession* session_;
  const ServerOptions options_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  MicroBatcher batcher_;
  std::vector<std::thread> workers_;

  std::mutex shutdown_mu_;
  bool stopped_ = false;  // Guarded by shutdown_mu_.
};

}  // namespace explainti::serve

#endif  // EXPLAINTI_SERVE_SERVER_H_
