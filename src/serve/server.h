#ifndef EXPLAINTI_SERVE_SERVER_H_
#define EXPLAINTI_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/inference_session.h"
#include "qa/engine.h"
#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "serve/tenant.h"
#include "util/status.h"

namespace explainti::serve {

/// Table-QA serving: when enabled the server builds one qa::QaEngine per
/// generation (the surrogate, when armed in `options`, is distilled from
/// that generation's session — a hot-swap re-distils from the replacement
/// BEFORE the atomic redirect, so the old generation serves throughout)
/// and accepts ServeMethod::kQaAnswer requests. Disabled by default: QA
/// requests are rejected with kInvalidArgument at admission.
struct QaServeOptions {
  bool enabled = false;
  qa::QaOptions options;
};

/// Server shape: worker count plus the admission/batching/caching knobs.
struct ServerOptions {
  /// Worker threads executing coalesced batches. 0 is allowed (no
  /// execution happens; tests drive ExecuteBatch directly and Shutdown
  /// fails whatever is still queued).
  int num_workers = 2;
  BatcherOptions batcher;
  /// Response cache; disabled by default (opt-in, see CacheOptions).
  CacheOptions cache;
  /// Tenant quota/priority table. Null (the default) serves everything
  /// as one anonymous unlimited tenant — the pre-tenancy behaviour.
  /// Borrowed; must outlive the server, with all tenants registered
  /// before traffic starts.
  TenantRegistry* tenants = nullptr;
  /// Table-QA method + surrogate cascade (see QaServeOptions).
  QaServeOptions qa;
};

/// Dynamic micro-batching inference server over frozen
/// core::InferenceSession generations.
///
///   clients --Submit/ServeSync--> [tenant quota] -> [response cache]
///                                        | miss
///                                        v
///                                 [bounded admission queue]
///                                        | coalesce (method, task),
///                                        | priority-lead, expire,
///                                        | preempt low classes
///                                        v
///                                  MicroBatcher::PopBatch
///                                        |
///                  +---------------------+--------------------+
///                  v                     v                    v
///              worker 0              worker 1   ...       worker N-1
///         (pin current generation -> ExecuteBatch: batched
///          InferenceSession entry points; each per-sample forward runs
///          under its own InferenceModeGuard + per-thread Workspace)
///
/// Admission control: Submit validates the request and rejects
/// immediately — kInvalidArgument for unknown task/sample/tenant,
/// kResourceExhausted when the tenant is over quota or the bounded queue
/// is full with no lower-priority victim (load shedding, not buffering),
/// kFailedPrecondition after Shutdown. Accepted requests are guaranteed
/// exactly one completion callback: a served (OK or kDeadlineExceeded)
/// response from a worker, an OK cache-hit response inline from Submit,
/// a kResourceExhausted response when preempted by a higher-priority
/// arrival, a kFailedPrecondition response when a hot-swap invalidated
/// the request (task/sample gone on the new generation) while it was
/// queued, or — only when num_workers == 0 — a kFailedPrecondition
/// response from Shutdown.
///
/// Hot swap: SwapSession atomically redirects workers to a new frozen
/// session via a generation pointer. Batches in flight finish on the
/// generation they started with (a batch never observes two sessions —
/// no torn reads), the swap blocks until the old generation has fully
/// drained — Submit pins the generation while it validates and hashes,
/// so the drain covers in-flight admissions too — and the response
/// cache is invalidated before new-generation traffic can be served
/// stale entries. No accepted request is dropped by a swap: a queued
/// request the new generation cannot serve (task/sample gone) completes
/// with kFailedPrecondition at dispatch instead of executing. Fault
/// site "serve.swap" aborts the swap with the injected status; the old
/// generation keeps serving.
///
/// Results are bit-identical to calling the InferenceSession directly:
/// batching and caching change scheduling, never numerics (golden-tested
/// in tests/serve_test.cc).
class InferenceServer {
 public:
  /// `session` must outlive the server (or its replacement via
  /// SwapSession — after a successful swap the old session may be
  /// destroyed). `metrics` may be null, in which case the server owns a
  /// private registry; pass a shared registry to aggregate several
  /// servers into one exporter.
  explicit InferenceServer(const core::InferenceSession& session,
                           const ServerOptions& options = {},
                           MetricsRegistry* metrics = nullptr);

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Drains and joins (Shutdown()).
  ~InferenceServer();

  /// Admits one request. On a non-OK return the callback will never be
  /// invoked; on OK it is invoked exactly once (from a worker thread, or
  /// inline when the response cache answers).
  util::Status Submit(ServeRequest request, ServeCallback on_done);

  /// Blocking convenience: admits `request` and waits for its response.
  /// Rejections come back as a response with the rejecting status.
  ServeResponse ServeSync(ServeRequest request);

  /// Zero-drop model hot-swap: redirects all future batches to `next`
  /// and blocks until every batch in flight on the previous generation
  /// has completed, so the caller may free the old model as soon as this
  /// returns OK. The response cache (if any) is cleared on success.
  /// Serving continues throughout — admissions are never paused, and no
  /// accepted request is dropped or served from a torn state. Returns
  /// the injected error without swapping when the "serve.swap" fault
  /// fires (chaos: checkpoint-load failure mid-rollout), and
  /// kFailedPrecondition after Shutdown.
  util::Status SwapSession(const core::InferenceSession& next);

  /// Generation currently serving (1 = the constructor session; each
  /// successful SwapSession increments it). Responses echo the
  /// generation that computed them in ServeResponse::model_generation.
  uint64_t current_generation() const;

  /// Graceful drain: closes admissions, serves every already-accepted
  /// request, then joins the workers. Idempotent; also run by the
  /// destructor.
  void Shutdown();

  MetricsRegistry& metrics() { return *metrics_; }
  const MicroBatcher& batcher() const { return batcher_; }
  /// Null when the cache is disabled.
  const ResponseCache* cache() const { return cache_.get(); }
  /// The current generation's QA engine (for tests and cascade telemetry
  /// inspection); null when ServerOptions::qa is off. Borrowed — valid
  /// until the next successful SwapSession retires the generation.
  const qa::QaEngine* qa_engine() const;
  const ServerOptions& options() const { return options_; }

  /// Executes one coalesced batch (all entries batch-compatible) against
  /// `session` and completes every request: the worker-loop body, public
  /// so tests and benches can drive it on their own thread (e.g. the
  /// steady-state zero-alloc assertion). `metrics` may be null.
  static void ExecuteBatch(const core::InferenceSession& session,
                           std::vector<PendingRequest>& batch,
                           MetricsRegistry* metrics) {
    ExecuteBatch(session, batch, metrics, /*cache=*/nullptr,
                 /*generation=*/0);
  }

  /// Also stamps `generation` into each response and inserts OK results
  /// into `cache` (both optional).
  static void ExecuteBatch(const core::InferenceSession& session,
                           std::vector<PendingRequest>& batch,
                           MetricsRegistry* metrics, ResponseCache* cache,
                           uint64_t generation) {
    ExecuteBatch(session, batch, metrics, cache, generation,
                 /*qa_engine=*/nullptr);
  }

  /// Full form: `qa_engine` answers kQaAnswer entries (each completed
  /// individually — one bad query fails alone with a typed status, never
  /// the batch). Null rejects QA entries with kFailedPrecondition.
  static void ExecuteBatch(const core::InferenceSession& session,
                           std::vector<PendingRequest>& batch,
                           MetricsRegistry* metrics, ResponseCache* cache,
                           uint64_t generation,
                           const qa::QaEngine* qa_engine);

  /// Completes `expired` requests with kDeadlineExceeded (no compute).
  /// `metrics` may be null.
  static void FailExpired(std::vector<PendingRequest>& expired,
                          MetricsRegistry* metrics);

 private:
  /// One serving generation: a frozen session plus the count of batches
  /// currently executing against it. Workers pin the generation for the
  /// duration of one batch; SwapSession waits for in_flight to reach
  /// zero before declaring the old generation drained.
  struct Generation {
    const core::InferenceSession* session = nullptr;
    /// Per-generation QA engine (null when ServerOptions::qa is off); its
    /// surrogate is distilled from `session`, so it retires with it.
    std::unique_ptr<qa::QaEngine> qa_engine;
    uint64_t id = 0;
    std::atomic<int64_t> in_flight{0};
  };

  void WorkerLoop();
  /// Pins the current generation for one batch (increments in_flight).
  std::shared_ptr<Generation> PinGeneration();
  /// Releases a pinned generation and wakes any waiting swap.
  void UnpinGeneration(const std::shared_ptr<Generation>& generation);
  /// Fails `victims` (preempted by a higher-priority arrival) with
  /// kResourceExhausted and records per-tenant shed counters.
  void FailPreempted(std::vector<PendingRequest>& victims);
  /// Per-tenant counter "serve.tenant.<name>.<what>"; null when the
  /// server runs without a TenantRegistry.
  Counter* TenantCounter(int tenant_id, const char* what);

  const ServerOptions options_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  std::unique_ptr<ResponseCache> cache_;  // Null when disabled.
  MicroBatcher batcher_;
  std::vector<std::thread> workers_;

  // Generation pointer: guarded by gen_mu_; swapped by SwapSession,
  // pinned per batch by workers. gen_cv_ signals in_flight drains.
  mutable std::mutex gen_mu_;
  std::condition_variable gen_cv_;
  std::shared_ptr<Generation> current_;

  // Serialises SwapSession callers: one rollout at a time.
  std::mutex swap_mu_;
  // Set at the start of Shutdown so SwapSession can refuse without
  // contending on shutdown_mu_ (held across the worker join).
  std::atomic<bool> stopping_{false};

  std::mutex shutdown_mu_;
  bool stopped_ = false;  // Guarded by shutdown_mu_.
};

}  // namespace explainti::serve

#endif  // EXPLAINTI_SERVE_SERVER_H_
