#ifndef EXPLAINTI_SERVE_BATCHER_H_
#define EXPLAINTI_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/request.h"
#include "util/status.h"

namespace explainti::serve {

/// Tuning knobs for the admission queue and batch coalescing.
struct BatcherOptions {
  /// Largest coalesced batch handed to a worker.
  int max_batch_size = 8;
  /// How long the oldest queued request may wait for its batch to fill
  /// before the batcher dispatches a partial batch. 0 = dispatch
  /// immediately (batching only under instantaneous bursts).
  int64_t max_queue_wait_us = 2000;
  /// Bound on queued (admitted, not yet dispatched) requests. Push
  /// rejects with kResourceExhausted beyond this — the server sheds load
  /// instead of buffering unboundedly — unless a lower-priority victim
  /// can be preempted (see Push).
  int max_queue_depth = 256;
};

/// Condition-variable-driven dynamic micro-batcher: a bounded MPMC
/// admission queue whose consumers receive *coalesced batches* of
/// compatible requests (same method + task) instead of single items.
///
/// Dispatch discipline, in order:
///   1. Expired requests (monotonic deadline passed while queued) are
///      swept out on every pop and returned separately so the worker can
///      fail them with kDeadlineExceeded before they consume compute.
///   2. The *leader* — the oldest queued request of the highest queued
///      priority class — leads the batch; compatible requests anywhere in
///      the queue join it in arrival order, up to max_batch_size. With a
///      single priority class this is exactly oldest-request-leads.
///   3. A partial batch dispatches once the leader has waited
///      max_queue_wait_us (or immediately on shutdown); a full batch
///      dispatches at once. Incompatible requests keep their arrival
///      order for the next pop.
///
/// Overload discipline: at max_queue_depth, an arriving request preempts
/// the *youngest queued request of the lowest priority class strictly
/// below its own* (background before batch; interactive never preempted
/// by batch traffic). The victim is handed back to the caller to fail
/// with kResourceExhausted; when no strictly-lower-priority victim
/// exists, the arriving request itself is rejected. Same-class traffic
/// therefore keeps the seed first-come-first-admitted behaviour.
///
/// Thread-safe: any number of producers (Push) and consumers (PopBatch).
class MicroBatcher {
 public:
  explicit MicroBatcher(const BatcherOptions& options);

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Admits one request, stamping request.arrival_us. Fails with
  /// kResourceExhausted when the queue is at max_queue_depth and no
  /// lower-priority victim exists, and with kFailedPrecondition after
  /// Shutdown; in both cases the callback is NOT invoked and ownership
  /// stays with the caller. When the queue is full but holds work of a
  /// strictly lower priority class, the youngest such request is moved
  /// into `*preempted` (when non-null; with a null `preempted` the push
  /// is rejected instead — no request is ever silently dropped) and the
  /// new request is admitted; the caller owns failing the victim.
  util::Status Push(PendingRequest pending,
                    std::vector<PendingRequest>* preempted = nullptr);

  /// Blocks until work is available, then fills `batch` (one coalesced,
  /// compatible batch; possibly empty) and `expired` (requests whose
  /// deadline passed in the queue). Returns false only when the batcher
  /// is shut down AND drained — after which neither vector has content
  /// and the consumer should exit. Both vectors are cleared first and
  /// keep their capacity across calls.
  bool PopBatch(std::vector<PendingRequest>* batch,
                std::vector<PendingRequest>* expired);

  /// Stops admissions and wakes all consumers. Already-admitted requests
  /// remain poppable so consumers can drain gracefully. Idempotent.
  void Shutdown();

  /// Pops every remaining queued request (no coalescing, no waiting).
  /// For terminal cleanup when no consumer threads exist.
  std::vector<PendingRequest> Flush();

  /// Current queued depth (admitted, not yet dispatched).
  int64_t size() const;
  /// Highest depth ever observed — proof the queue stays bounded.
  int64_t high_water() const;
  /// Requests evicted by higher-priority arrivals since construction.
  int64_t preemptions() const;

 private:
  /// Index of the leader: oldest request of the best (numerically
  /// lowest) priority class. Requires mu_ held and a non-empty queue.
  size_t LeaderIndex() const;

  const BatcherOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<PendingRequest> queue_;
  bool shutdown_ = false;
  int64_t high_water_ = 0;
  int64_t preemptions_ = 0;
};

}  // namespace explainti::serve

#endif  // EXPLAINTI_SERVE_BATCHER_H_
