#ifndef EXPLAINTI_SERVE_REQUEST_H_
#define EXPLAINTI_SERVE_REQUEST_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/explanation.h"
#include "core/task_data.h"
#include "qa/query.h"
#include "util/status.h"
#include "util/timer.h"

namespace explainti::serve {

/// Which InferenceSession entry point a request targets. Requests with
/// the same (method, task) pair are batch-compatible: the micro-batcher
/// coalesces them into one dispatch through the session's batched entry
/// points.
enum class ServeMethod {
  kPredict = 0,              ///< Label ids only (cheapest).
  kPredictProbabilities = 1, ///< Per-label sigma outputs.
  kExplain = 2,              ///< Prediction + multi-view explanation set Z.
  /// Structured table-QA: plans the request's qa::QaQuery into session
  /// calls (surrogate-cascaded when the server arms it) and answers with
  /// a provenance-tagged qa::QaAnswer. Requires ServerOptions::qa.enabled.
  kQaAnswer = 3,
};

/// Short human-readable name for `method` (e.g. "Predict").
const char* ServeMethodName(ServeMethod method);

/// Traffic class of a request. Lower numeric value = more important.
/// Under overload the server sheds in reverse class order: a full
/// admission queue preempts the youngest request of the *lowest* class
/// strictly below the arriving one, and batch dispatch leads with the
/// oldest request of the highest queued class.
enum class Priority {
  kInteractive = 0,  ///< User-facing; protected under overload.
  kBatch = 1,        ///< Throughput-oriented; shed before interactive.
  kBackground = 2,   ///< Best-effort backfill; shed first.
};

/// Short human-readable name for `priority` (e.g. "interactive").
const char* PriorityName(Priority priority);

/// One inference request as admitted by the InferenceServer.
///
/// `deadline_us` is on the monotonic clock (util::MonotonicNowUs);
/// util::kNoDeadline means "no limit". A request whose deadline passes
/// while it is still queued is expired with kDeadlineExceeded before it
/// consumes any compute. `arrival_us` is stamped by the admission queue;
/// callers leave it zero.
///
/// `tenant_id` names the traffic owner for quota accounting and
/// per-tenant metrics (serve::TenantRegistry); id 0 is the pre-registered
/// unlimited default tenant, so single-tenant callers need not touch it.
/// `priority` is the request's traffic class. When the server runs with a
/// TenantRegistry, the tenant's registered class overrides this field at
/// admission (priority is a server-side property of the tenant — a noisy
/// neighbour cannot self-promote); without a registry the field is
/// honoured as sent.
struct ServeRequest {
  ServeMethod method = ServeMethod::kPredict;
  core::TaskKind task = core::TaskKind::kType;
  int sample_id = -1;
  /// kQaAnswer only: the structured query. Submit derives `task` from the
  /// query kind and `sample_id` from its first candidate, so QA requests
  /// flow through the same admission/batching/quota machinery.
  qa::QaQuery qa;
  /// Caller-chosen id echoed in the response, for request tracing across
  /// queue/batch/worker boundaries.
  uint64_t trace_id = 0;
  int64_t deadline_us = util::kNoDeadline;  ///< Monotonic; kNoDeadline = none.
  int64_t arrival_us = 0;  ///< Stamped on admission (monotonic).
  int tenant_id = 0;       ///< Quota/metrics owner; 0 = default tenant.
  Priority priority = Priority::kInteractive;
};

/// The response envelope. Exactly one payload field is populated,
/// selected by the request's method; `status` is OK on success, or one
/// of kDeadlineExceeded / kResourceExhausted / kFailedPrecondition /
/// kInvalidArgument when the request was shed.
struct ServeResponse {
  util::Status status;
  uint64_t trace_id = 0;

  std::vector<int> labels;            ///< kPredict.
  std::vector<float> probabilities;   ///< kPredictProbabilities.
  /// kExplain: the full multi-view set, including the per-request ANN
  /// degradation flag/note — batching never strips the annotation.
  core::Explanation explanation;
  /// kQaAnswer: the composed answer with its provenance-tagged
  /// justification and cascade telemetry.
  qa::QaAnswer qa;

  // Serving telemetry, filled for completed (non-rejected) requests.
  int64_t queue_wait_us = 0;  ///< Admission to batch dispatch.
  int64_t total_us = 0;       ///< Admission to completion.
  int batch_size = 0;         ///< Size of the coalesced batch served with.
  /// Served straight from the response cache (no queue, no compute;
  /// batch_size is 0).
  bool cache_hit = false;
  /// Model generation that computed this response (1 = the session the
  /// server started with; each successful hot-swap increments it). A
  /// cache hit reports the generation that originally computed the entry.
  uint64_t model_generation = 0;
  /// Serving precision of the session that computed this response
  /// ("fp32", "int8" or "mixed" — InferenceSession::served_precision()).
  /// Static storage; valid for the process lifetime. A cache hit reports
  /// the precision that originally computed the entry.
  const char* precision = "fp32";
};

/// Completion callback. Invoked exactly once per admitted request, from a
/// worker thread, from Submit itself (cache hits and preempted victims),
/// or from Shutdown for requests that could not be served. Must not block
/// for long and must not re-enter the server.
using ServeCallback = std::function<void(ServeResponse&&)>;

/// A queued request with its completion callback; the unit the admission
/// queue and micro-batcher operate on.
struct PendingRequest {
  ServeRequest request;
  ServeCallback on_done;
  /// Content hash of the sample's serialised input, stamped at admission
  /// when the response cache is enabled (0 = not hashed / cache off).
  uint64_t input_hash = 0;
};

/// Can `a` and `b` ride in the same coalesced batch?
inline bool CompatibleForBatch(const ServeRequest& a, const ServeRequest& b) {
  return a.method == b.method && a.task == b.task;
}

}  // namespace explainti::serve

#endif  // EXPLAINTI_SERVE_REQUEST_H_
