#ifndef EXPLAINTI_SERVE_REQUEST_H_
#define EXPLAINTI_SERVE_REQUEST_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/explanation.h"
#include "core/task_data.h"
#include "util/status.h"
#include "util/timer.h"

namespace explainti::serve {

/// Which InferenceSession entry point a request targets. Requests with
/// the same (method, task) pair are batch-compatible: the micro-batcher
/// coalesces them into one dispatch through the session's batched entry
/// points.
enum class ServeMethod {
  kPredict = 0,              ///< Label ids only (cheapest).
  kPredictProbabilities = 1, ///< Per-label sigma outputs.
  kExplain = 2,              ///< Prediction + multi-view explanation set Z.
};

/// Short human-readable name for `method` (e.g. "Predict").
const char* ServeMethodName(ServeMethod method);

/// One inference request as admitted by the InferenceServer.
///
/// `deadline_us` is on the monotonic clock (util::MonotonicNowUs);
/// util::kNoDeadline means "no limit". A request whose deadline passes
/// while it is still queued is expired with kDeadlineExceeded before it
/// consumes any compute. `arrival_us` is stamped by the admission queue;
/// callers leave it zero.
struct ServeRequest {
  ServeMethod method = ServeMethod::kPredict;
  core::TaskKind task = core::TaskKind::kType;
  int sample_id = -1;
  /// Caller-chosen id echoed in the response, for request tracing across
  /// queue/batch/worker boundaries.
  uint64_t trace_id = 0;
  int64_t deadline_us = util::kNoDeadline;  ///< Monotonic; kNoDeadline = none.
  int64_t arrival_us = 0;  ///< Stamped on admission (monotonic).
};

/// The response envelope. Exactly one payload field is populated,
/// selected by the request's method; `status` is OK on success, or one
/// of kDeadlineExceeded / kResourceExhausted / kFailedPrecondition /
/// kInvalidArgument when the request was shed.
struct ServeResponse {
  util::Status status;
  uint64_t trace_id = 0;

  std::vector<int> labels;            ///< kPredict.
  std::vector<float> probabilities;   ///< kPredictProbabilities.
  /// kExplain: the full multi-view set, including the per-request ANN
  /// degradation flag/note — batching never strips the annotation.
  core::Explanation explanation;

  // Serving telemetry, filled for completed (non-rejected) requests.
  int64_t queue_wait_us = 0;  ///< Admission to batch dispatch.
  int64_t total_us = 0;       ///< Admission to completion.
  int batch_size = 0;         ///< Size of the coalesced batch served with.
};

/// Completion callback. Invoked exactly once per admitted request, from a
/// worker thread (or from Shutdown for requests that could not be
/// served). Must not block for long and must not re-enter the server.
using ServeCallback = std::function<void(ServeResponse&&)>;

/// A queued request with its completion callback; the unit the admission
/// queue and micro-batcher operate on.
struct PendingRequest {
  ServeRequest request;
  ServeCallback on_done;
};

/// Can `a` and `b` ride in the same coalesced batch?
inline bool CompatibleForBatch(const ServeRequest& a, const ServeRequest& b) {
  return a.method == b.method && a.task == b.task;
}

}  // namespace explainti::serve

#endif  // EXPLAINTI_SERVE_REQUEST_H_
