#include "serve/request.h"

namespace explainti::serve {

const char* ServeMethodName(ServeMethod method) {
  switch (method) {
    case ServeMethod::kPredict:
      return "Predict";
    case ServeMethod::kPredictProbabilities:
      return "PredictProbabilities";
    case ServeMethod::kExplain:
      return "Explain";
    case ServeMethod::kQaAnswer:
      return "QaAnswer";
  }
  return "Unknown";
}

const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBackground:
      return "background";
  }
  return "unknown";
}

}  // namespace explainti::serve
