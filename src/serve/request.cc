#include "serve/request.h"

namespace explainti::serve {

const char* ServeMethodName(ServeMethod method) {
  switch (method) {
    case ServeMethod::kPredict:
      return "Predict";
    case ServeMethod::kPredictProbabilities:
      return "PredictProbabilities";
    case ServeMethod::kExplain:
      return "Explain";
  }
  return "Unknown";
}

}  // namespace explainti::serve
