#include "serve/batcher.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"
#include "util/timer.h"

namespace explainti::serve {

namespace {

// Reconstructs a steady_clock time point from MonotonicNowUs
// microseconds (same epoch, truncated to 1us).
std::chrono::steady_clock::time_point ToTimePoint(int64_t monotonic_us) {
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::microseconds(monotonic_us)));
}

}  // namespace

MicroBatcher::MicroBatcher(const BatcherOptions& options) : options_(options) {
  CHECK(options_.max_batch_size >= 1) << "max_batch_size must be >= 1";
  CHECK(options_.max_queue_depth >= 1) << "max_queue_depth must be >= 1";
  CHECK(options_.max_queue_wait_us >= 0) << "max_queue_wait_us must be >= 0";
}

util::Status MicroBatcher::Push(PendingRequest pending,
                                std::vector<PendingRequest>* preempted) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return util::Status::FailedPrecondition(
        "admission closed: server is shutting down");
  }
  if (static_cast<int64_t>(queue_.size()) >= options_.max_queue_depth) {
    // Priority shedding: evict the youngest request of the lowest class
    // strictly below the arrival's — background yields to batch, both
    // yield to interactive; equal-class traffic is first-come-first-
    // admitted, exactly the pre-tenancy behaviour.
    size_t victim = queue_.size();
    Priority victim_priority = pending.request.priority;
    for (size_t i = 0; i < queue_.size(); ++i) {
      const Priority p = queue_[i].request.priority;
      if (p > victim_priority ||
          (victim < queue_.size() && p == victim_priority)) {
        // Strictly worse class than the best victim so far, or equally
        // bad but younger (later in arrival order): prefer it.
        victim = i;
        victim_priority = p;
      }
    }
    if (victim == queue_.size() || preempted == nullptr) {
      return util::Status::ResourceExhausted(
          "admission queue full (max_queue_depth=" +
          std::to_string(options_.max_queue_depth) + ")");
    }
    preempted->push_back(std::move(queue_[victim]));
    queue_.erase(queue_.begin() + static_cast<int64_t>(victim));
    ++preemptions_;
  }
  pending.request.arrival_us = util::MonotonicNowUs();
  queue_.push_back(std::move(pending));
  high_water_ =
      std::max(high_water_, static_cast<int64_t>(queue_.size()));
  work_cv_.notify_one();
  return util::Status::OK();
}

size_t MicroBatcher::LeaderIndex() const {
  size_t leader = 0;
  for (size_t i = 1; i < queue_.size(); ++i) {
    // Strictly better class wins; the queue is in arrival order, so the
    // first request of the best class is also its oldest.
    if (queue_[i].request.priority < queue_[leader].request.priority) {
      leader = i;
    }
  }
  return leader;
}

bool MicroBatcher::PopBatch(std::vector<PendingRequest>* batch,
                            std::vector<PendingRequest>* expired) {
  batch->clear();
  expired->clear();
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // Shut down and drained.

    // 1. Sweep requests whose deadline passed while queued: they are
    // handed back separately so the worker fails them without running
    // any inference.
    const int64_t now = util::MonotonicNowUs();
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (util::DeadlineExpired(it->request.deadline_us, now)) {
        expired->push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    if (queue_.empty()) {
      if (!expired->empty()) return true;
      if (shutdown_) return false;
      continue;
    }

    // 2. The oldest request of the best queued priority class leads;
    // count how many queued requests could join its batch.
    const size_t leader = LeaderIndex();
    const ServeMethod leader_method = queue_[leader].request.method;
    const core::TaskKind leader_task = queue_[leader].request.task;
    int compatible = 0;
    for (const PendingRequest& p : queue_) {
      if (p.request.method == leader_method && p.request.task == leader_task) {
        if (++compatible >= options_.max_batch_size) break;
      }
    }

    // 3. Dispatch when the batch is full, the leader has waited long
    // enough, or we are draining. Otherwise sleep until the leader's
    // fill window (or the earliest queued deadline) and re-evaluate.
    const int64_t full_by =
        queue_[leader].request.arrival_us + options_.max_queue_wait_us;
    const bool ready = shutdown_ ||
                       compatible >= options_.max_batch_size ||
                       now >= full_by;
    if (!ready) {
      if (!expired->empty()) return true;  // Fail these now; batch later.
      int64_t wake_at = full_by;
      for (const PendingRequest& p : queue_) {
        if (p.request.deadline_us != util::kNoDeadline) {
          wake_at = std::min(wake_at, p.request.deadline_us);
        }
      }
      const size_t depth_at_wait = queue_.size();
      work_cv_.wait_until(lock, ToTimePoint(wake_at), [&] {
        return shutdown_ || queue_.size() != depth_at_wait;
      });
      continue;
    }

    for (auto it = queue_.begin();
         it != queue_.end() &&
         batch->size() < static_cast<size_t>(options_.max_batch_size);) {
      if (it->request.method == leader_method &&
          it->request.task == leader_task) {
        batch->push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    // Leftover (incompatible) requests may already form another batch —
    // hand them to a sibling consumer instead of waiting for the next
    // Push.
    if (!queue_.empty()) work_cv_.notify_one();
    return true;
  }
}

void MicroBatcher::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  work_cv_.notify_all();
}

std::vector<PendingRequest> MicroBatcher::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingRequest> remaining;
  remaining.reserve(queue_.size());
  while (!queue_.empty()) {
    remaining.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return remaining;
}

int64_t MicroBatcher::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

int64_t MicroBatcher::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

int64_t MicroBatcher::preemptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return preemptions_;
}

}  // namespace explainti::serve
