#ifndef EXPLAINTI_SERVE_CACHE_H_
#define EXPLAINTI_SERVE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "serve/request.h"
#include "text/serializer.h"

namespace explainti::serve {

/// Tuning knobs for the serving response cache. Disabled by default: the
/// cache changes observable serving behaviour (hits bypass the queue and
/// the completed/batch counters), so callers opt in explicitly.
struct CacheOptions {
  bool enabled = false;
  /// Total cached entries across all shards; at capacity each shard
  /// evicts its own least-recently-used entry.
  int64_t capacity = 1024;
  /// Independently locked shards. Lookups hash the key to one shard, so
  /// concurrent workers on different keys rarely contend. Clamped to
  /// `capacity` so the shard capacities always sum exactly to it.
  int num_shards = 8;
};

/// Bounded, lock-sharded LRU cache of fully-computed serve responses,
/// keyed on (method, task, input-hash).
///
/// Keying on the *content hash* of the serialised input (util::HashInts
/// over the sample's token ids + segments) rather than the sample id
/// means repeated tables dedupe even when clients address them through
/// different sample ids, and an id remapped to different content never
/// serves stale data.
///
/// The 64-bit FNV-1a key hash is non-cryptographic and shared across
/// tenants, so a hash alone must never select a payload: every entry
/// also stores the exact serialised input (ids + segments) it was
/// computed from, and Lookup compares it against the caller's input,
/// treating any mismatch — a collision, crafted or accidental — as a
/// miss. A colliding entry can therefore cost a recomputation, never a
/// wrong (or another tenant's) payload.
///
/// Values are the full response payloads — for kExplain the entire
/// core::Explanation struct, including the ANN-degradation flag and note
/// as computed at insert time — copied out bit-identically on every hit.
/// Hits therefore reproduce exactly what the uncached call returned when
/// the entry was inserted; the serving layer clears the cache on model
/// hot-swap (see InferenceServer::SwapSession) so no entry outlives the
/// generation that computed it.
///
/// Fault site "serve.cache.lookup": when armed, lookups report a miss —
/// a broken cache degrades to recomputation, never to wrong data.
class ResponseCache {
 public:
  /// One cache key. `method`/`task` are part of the key because the same
  /// input produces different payloads per entry point.
  struct Key {
    ServeMethod method = ServeMethod::kPredict;
    core::TaskKind task = core::TaskKind::kType;
    uint64_t input_hash = 0;
    bool operator==(const Key& other) const {
      return method == other.method && task == other.task &&
             input_hash == other.input_hash;
    }
  };

  explicit ResponseCache(const CacheOptions& options);

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// On a hit, copies the cached payload (labels / probabilities /
  /// explanation / qa answer + model_generation) into `*out`, marks it
  /// cache_hit, promotes the entry to most-recently-used, and returns
  /// true. A hit requires the stored input to equal `input` (ids +
  /// segments) exactly; a key whose hash matches but whose content
  /// differs — a collision — reports a miss. For kQaAnswer entries the
  /// stored query must also equal `*query` (kind, candidates, label,
  /// top_k): the key folds the query into input_hash, but a 64-bit hash
  /// alone never selects a payload, and the verified input covers only
  /// the primary candidate — so a QA entry can never answer a different
  /// query, nor collide with an Explain entry for the same table (the
  /// method is part of the key AND a QA lookup without a stored query is
  /// a miss). Also returns false on a plain miss and when the
  /// "serve.cache.lookup" fault fires, leaving `*out` untouched.
  bool Lookup(const Key& key, const text::EncodedSequence& input,
              ServeResponse* out) {
    return Lookup(key, input, /*query=*/nullptr, out);
  }
  bool Lookup(const Key& key, const text::EncodedSequence& input,
              const qa::QaQuery* query, ServeResponse* out);

  /// Inserts (or refreshes) the payload of `response` under `key`,
  /// storing `input` for hit-time verification and evicting the shard's
  /// LRU entry at capacity. `key.input_hash` must be the hash of `input`
  /// (plus the query, for kQaAnswer). Pass the request's query for QA
  /// entries; it is stored for hit-time verification. Only OK responses
  /// are cacheable; callers must not insert rejected/shed responses.
  void Insert(const Key& key, const text::EncodedSequence& input,
              const ServeResponse& response) {
    Insert(key, input, /*query=*/nullptr, response);
  }
  void Insert(const Key& key, const text::EncodedSequence& input,
              const qa::QaQuery* query, const ServeResponse& response);

  /// Drops every entry (model hot-swap invalidation). Hit/miss/eviction
  /// counters survive — they describe the cache's lifetime, not one
  /// generation's.
  void Clear();

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Current cached entries across all shards.
  int64_t size() const;
  int64_t capacity() const { return capacity_; }

 private:
  /// The cached payload: exactly the response fields a hit must
  /// reproduce, plus the serialised input it was computed from (compared
  /// on Lookup so a 64-bit hash collision can never serve it for
  /// different content). Telemetry fields (queue_wait, batch_size) are
  /// not cached — a hit reports its own (zero-queue) telemetry.
  struct Payload {
    std::vector<int> input_ids;
    std::vector<int> input_segments;
    std::vector<int> labels;
    std::vector<float> probabilities;
    core::Explanation explanation;
    /// kQaAnswer entries: the full composed answer, plus the query it
    /// answered (compared with SameQuery on Lookup) and a flag marking
    /// that a query was stored at all — an entry inserted without one can
    /// never satisfy a QA lookup.
    qa::QaAnswer qa;
    qa::QaQuery qa_query;
    bool has_query = false;
    uint64_t model_generation = 0;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      // input_hash is already well-mixed (FNV-1a); fold in the enums.
      return static_cast<size_t>(key.input_hash ^
                                 (static_cast<uint64_t>(key.method) << 62) ^
                                 (static_cast<uint64_t>(key.task) << 60));
    }
  };
  struct Shard {
    std::mutex mu;
    /// This shard's entry bound; shard capacities sum to capacity_.
    int64_t capacity = 0;
    /// Most-recently-used at the front.
    std::list<std::pair<Key, Payload>> lru;
    std::unordered_map<Key, std::list<std::pair<Key, Payload>>::iterator,
                       KeyHash>
        index;
  };

  Shard& ShardFor(const Key& key);

  const int64_t capacity_;
  const int num_shards_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace explainti::serve

#endif  // EXPLAINTI_SERVE_CACHE_H_
