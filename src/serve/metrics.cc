#include "serve/metrics.h"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

#include "util/logging.h"

namespace explainti::serve {

Histogram::Histogram(std::vector<int64_t> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<int64_t>[upper_bounds_.size() + 1]) {
  CHECK(!upper_bounds_.empty()) << "histogram needs at least one bucket";
  for (size_t i = 1; i < upper_bounds_.size(); ++i) {
    CHECK(upper_bounds_[i] > upper_bounds_[i - 1])
        << "histogram bounds must be strictly increasing";
  }
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<int64_t> Histogram::LatencyBucketsUs() {
  // 1us .. 10s, roughly x2 per bucket: fine resolution where serving
  // latencies actually land, bounded bucket count everywhere.
  return {1,      2,      5,      10,     20,      50,      100,
          200,    500,    1000,   2000,   5000,    10000,   20000,
          50000,  100000, 200000, 500000, 1000000, 2000000, 5000000,
          10000000};
}

std::vector<int64_t> Histogram::LinearBuckets(int64_t lo, int64_t step,
                                              int n) {
  CHECK(step > 0 && n > 0);
  std::vector<int64_t> bounds(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) bounds[static_cast<size_t>(i)] = lo + step * i;
  return bounds;
}

void Histogram::Record(int64_t value) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  const size_t idx = static_cast<size_t>(it - upper_bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::Mean() const {
  const int64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(upper_bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Percentile(double q) const {
  const std::vector<int64_t> counts = BucketCounts();
  int64_t total = 0;
  size_t populated = 0;
  size_t last_populated = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) {
      ++populated;
      last_populated = i;
      total += counts[i];
    }
  }
  if (total == 0) return 0.0;  // Empty histogram: no data, report 0.

  // Bucket i spans (lo, hi]. The overflow bucket has no upper bound;
  // saturate it at the last configured bound rather than extrapolating
  // past the bucket array (an extrapolated "bound" reported latencies the
  // histogram never promised to resolve).
  auto bucket_lo = [&](size_t i) {
    return i == 0 ? 0.0 : static_cast<double>(upper_bounds_[i - 1]);
  };
  auto bucket_hi = [&](size_t i) {
    return i < upper_bounds_.size()
               ? static_cast<double>(upper_bounds_[i])
               : static_cast<double>(upper_bounds_.back());
  };

  // All mass in one bucket: the intra-bucket distribution is unknown, so
  // interpolation would fabricate spread (p1 near the lower bound, p99
  // near the upper, from identical samples). Report the bucket midpoint
  // for every quantile instead.
  if (populated == 1) {
    return 0.5 * (bucket_lo(last_populated) + bucket_hi(last_populated));
  }

  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(seen + counts[i]) >= rank) {
      // Linear interpolation inside the bucket [lo, hi].
      const double lo = bucket_lo(i);
      const double hi = bucket_hi(i);
      const double within = (rank - static_cast<double>(seen)) /
                            static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    seen += counts[i];
  }
  return static_cast<double>(upper_bounds_.back());
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(std::string_view name) {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.counters.find(std::string(name));
  if (it == shard.counters.end()) {
    it = shard.counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(
    std::string_view name, const std::vector<int64_t>& upper_bounds) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.histograms.find(std::string(name));
  if (it == shard.histograms.end()) {
    it = shard.histograms
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::ToJson() const {
  // Collect into ordered maps so the export is stable run-to-run.
  std::map<std::string, int64_t> counters;
  std::map<std::string, const Histogram*> histograms;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, counter] : shard.counters) {
      counters[name] = counter->Value();
    }
    for (const auto& [name, histogram] : shard.histograms) {
      histograms[name] = histogram.get();
    }
  }
  std::ostringstream json;
  json << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    json << (first ? "" : ", ") << "\"" << name << "\": " << value;
    first = false;
  }
  json << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    json << (first ? "" : ", ") << "\"" << name
         << "\": {\"count\": " << h->Count() << ", \"mean\": " << h->Mean()
         << ", \"p50\": " << h->Percentile(0.50)
         << ", \"p90\": " << h->Percentile(0.90)
         << ", \"p99\": " << h->Percentile(0.99) << "}";
    first = false;
  }
  json << "}}";
  return json.str();
}

}  // namespace explainti::serve
