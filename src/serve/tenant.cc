#include "serve/tenant.h"

#include <algorithm>

#include "util/logging.h"

namespace explainti::serve {

TenantRegistry::TenantRegistry() {
  Register(TenantOptions{});  // Tenant 0: unlimited interactive default.
}

int TenantRegistry::Register(TenantOptions options) {
  auto tenant = std::make_unique<Tenant>();
  tenant->capacity = options.burst > 0.0
                         ? options.burst
                         : std::max(options.quota_rps, 1.0);
  tenant->tokens = tenant->capacity;  // Buckets start full.
  tenant->options = std::move(options);
  std::lock_guard<std::mutex> lock(mu_);
  tenants_.push_back(std::move(tenant));
  return static_cast<int>(tenants_.size()) - 1;
}

int TenantRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(tenants_.size());
}

bool TenantRegistry::Contains(int tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenant_id >= 0 && tenant_id < static_cast<int>(tenants_.size());
}

const TenantOptions& TenantRegistry::options(int tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(tenant_id >= 0 && tenant_id < static_cast<int>(tenants_.size()))
      << "unknown tenant id " << tenant_id;
  return tenants_[static_cast<size_t>(tenant_id)]->options;
}

util::Status TenantRegistry::Admit(int tenant_id, int64_t now_us) {
  Tenant* tenant = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tenant_id < 0 || tenant_id >= static_cast<int>(tenants_.size())) {
      return util::Status::InvalidArgument(
          "unknown tenant id " + std::to_string(tenant_id));
    }
    tenant = tenants_[static_cast<size_t>(tenant_id)].get();
  }
  if (tenant->options.quota_rps <= 0.0) return util::Status::OK();

  std::lock_guard<std::mutex> lock(tenant->mu);
  if (tenant->last_refill_us == 0) tenant->last_refill_us = now_us;
  const int64_t elapsed_us = std::max<int64_t>(0, now_us - tenant->last_refill_us);
  tenant->last_refill_us = now_us;
  tenant->tokens = std::min(
      tenant->capacity,
      tenant->tokens + static_cast<double>(elapsed_us) * 1e-6 *
                           tenant->options.quota_rps);
  if (tenant->tokens < 1.0) {
    ++tenant->rejections;
    return util::Status::ResourceExhausted(
        "tenant '" + tenant->options.name + "' over quota (" +
        std::to_string(tenant->options.quota_rps) + " rps)");
  }
  tenant->tokens -= 1.0;
  return util::Status::OK();
}

int64_t TenantRegistry::quota_rejections(int tenant_id) const {
  Tenant* tenant = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CHECK(tenant_id >= 0 && tenant_id < static_cast<int>(tenants_.size()))
        << "unknown tenant id " << tenant_id;
    tenant = tenants_[static_cast<size_t>(tenant_id)].get();
  }
  std::lock_guard<std::mutex> lock(tenant->mu);
  return tenant->rejections;
}

}  // namespace explainti::serve
