#include "serve/cache.h"

#include <algorithm>

#include "util/fault_injection.h"
#include "util/logging.h"

namespace explainti::serve {

ResponseCache::ResponseCache(const CacheOptions& options)
    : capacity_(options.capacity),
      // Clamp shards to capacity (a shard below one entry is useless) and
      // spread the remainder so the shard capacities sum exactly to the
      // configured capacity — the cache never holds more than capacity()
      // and never silently rounds it down.
      num_shards_(static_cast<int>(std::max<int64_t>(
          1, std::min<int64_t>(options.num_shards, options.capacity)))) {
  CHECK(options.capacity >= 1) << "cache capacity must be >= 1";
  shards_.reserve(static_cast<size_t>(num_shards_));
  const int64_t base = capacity_ / num_shards_;
  const int64_t remainder = capacity_ % num_shards_;
  for (int i = 0; i < num_shards_; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < remainder ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

ResponseCache::Shard& ResponseCache::ShardFor(const Key& key) {
  return *shards_[static_cast<size_t>(KeyHash{}(key)) %
                  static_cast<size_t>(num_shards_)];
}

bool ResponseCache::Lookup(const Key& key, const text::EncodedSequence& input,
                           const qa::QaQuery* query, ServeResponse* out) {
  // A faulted cache must degrade to recomputation, never wrong data:
  // report a miss and let the request take the normal batched path.
  if (util::fault::ShouldInject("serve.cache.lookup",
                               util::fault::FaultKind::kError)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  // The stored input must match exactly: the 64-bit key hash is not
  // collision-proof (FNV-1a, craftable), and entries are shared across
  // tenants, so a hash match alone must never select a payload. A
  // collision degrades to a miss (recomputation), never wrong data.
  if (it == shard.index.end() || it->second->second.input_ids != input.ids ||
      it->second->second.input_segments != input.segments) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // QA entries additionally verify the stored query: the verified input
  // covers only the primary candidate's sequence, so two queries over the
  // same table (different candidate sets, target label, or top_k) must
  // compare the query itself before an answer is shared.
  if (key.method == ServeMethod::kQaAnswer &&
      (query == nullptr || !it->second->second.has_query ||
       !qa::SameQuery(it->second->second.qa_query, *query))) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // Promote.
  const Payload& payload = it->second->second;
  out->labels = payload.labels;
  out->probabilities = payload.probabilities;
  out->explanation = payload.explanation;
  out->qa = payload.qa;
  out->model_generation = payload.model_generation;
  out->cache_hit = true;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResponseCache::Insert(const Key& key, const text::EncodedSequence& input,
                           const qa::QaQuery* query,
                           const ServeResponse& response) {
  CHECK(response.status.ok()) << "only OK responses are cacheable";
  CHECK(key.method != ServeMethod::kQaAnswer || query != nullptr)
      << "QA cache entries require the answered query";
  Payload payload;
  payload.input_ids = input.ids;
  payload.input_segments = input.segments;
  payload.labels = response.labels;
  payload.probabilities = response.probabilities;
  payload.explanation = response.explanation;
  payload.qa = response.qa;
  if (query != nullptr) {
    payload.qa_query = *query;
    payload.has_query = true;
  }
  payload.model_generation = response.model_generation;

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh recency. On a hash collision the newer content takes the
    // slot; the loser's requests verify-miss and recompute.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    it->second->second = std::move(payload);
    return;
  }
  shard.lru.emplace_front(key, std::move(payload));
  shard.index.emplace(key, shard.lru.begin());
  if (static_cast<int64_t>(shard.lru.size()) > shard.capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResponseCache::Clear() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

int64_t ResponseCache::size() const {
  int64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += static_cast<int64_t>(shard->lru.size());
  }
  return total;
}

}  // namespace explainti::serve
