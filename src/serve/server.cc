#include "serve/server.h"

#include <condition_variable>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace explainti::serve {

InferenceServer::InferenceServer(const core::InferenceSession& session,
                                 const ServerOptions& options,
                                 MetricsRegistry* metrics)
    : session_(&session),
      options_(options),
      owned_metrics_(metrics == nullptr ? std::make_unique<MetricsRegistry>()
                                        : nullptr),
      metrics_(metrics == nullptr ? owned_metrics_.get() : metrics),
      batcher_(options.batcher) {
  CHECK(options_.num_workers >= 0) << "num_workers must be >= 0";
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

util::Status InferenceServer::Submit(ServeRequest request,
                                     ServeCallback on_done) {
  CHECK(on_done) << "Submit requires a completion callback";
  // Admission-time validation: malformed requests are rejected here so
  // they never occupy queue slots or reach a worker.
  if (!session_->HasTask(request.task)) {
    metrics_->GetCounter("serve.rejected_invalid")->Increment();
    return util::Status::InvalidArgument("task not available on this model");
  }
  const core::TaskData& task = session_->task_data(request.task);
  if (request.sample_id < 0 ||
      request.sample_id >= static_cast<int>(task.samples.size())) {
    metrics_->GetCounter("serve.rejected_invalid")->Increment();
    return util::Status::InvalidArgument(
        "sample_id " + std::to_string(request.sample_id) +
        " out of range [0, " + std::to_string(task.samples.size()) + ")");
  }

  PendingRequest pending;
  pending.request = request;
  pending.on_done = std::move(on_done);
  util::Status admitted = batcher_.Push(std::move(pending));
  if (admitted.ok()) {
    metrics_->GetCounter("serve.accepted")->Increment();
  } else if (admitted.code() == util::StatusCode::kResourceExhausted) {
    metrics_->GetCounter("serve.rejected_queue_full")->Increment();
  } else {
    metrics_->GetCounter("serve.rejected_shutdown")->Increment();
  }
  return admitted;
}

ServeResponse InferenceServer::ServeSync(ServeRequest request) {
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ServeResponse response;
  } state;
  const uint64_t trace_id = request.trace_id;
  const util::Status admitted =
      Submit(std::move(request), [&state](ServeResponse&& response) {
        std::lock_guard<std::mutex> lock(state.mu);
        state.response = std::move(response);
        state.done = true;
        state.cv.notify_one();
      });
  if (!admitted.ok()) {
    ServeResponse rejected;
    rejected.status = admitted;
    rejected.trace_id = trace_id;
    return rejected;
  }
  std::unique_lock<std::mutex> lock(state.mu);
  state.cv.wait(lock, [&state] { return state.done; });
  return std::move(state.response);
}

void InferenceServer::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (stopped_) return;
  stopped_ = true;
  batcher_.Shutdown();
  // Workers drain the queue completely before PopBatch returns false, so
  // every accepted request is served before the join returns.
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Only reachable with num_workers == 0: nobody drained, so fail the
  // leftovers rather than dropping their callbacks.
  std::vector<PendingRequest> leftovers = batcher_.Flush();
  for (PendingRequest& pending : leftovers) {
    ServeResponse response;
    response.status = util::Status::FailedPrecondition(
        "server shut down before the request was served");
    response.trace_id = pending.request.trace_id;
    metrics_->GetCounter("serve.rejected_shutdown")->Increment();
    pending.on_done(std::move(response));
  }
}

void InferenceServer::WorkerLoop() {
  // Batch vectors live for the worker's lifetime and keep their capacity
  // across iterations; each per-sample forward inside ExecuteBatch runs
  // under its own InferenceModeGuard with the executing thread's
  // Workspace arena, so the steady-state loop performs no tensor heap
  // allocations.
  std::vector<PendingRequest> batch;
  std::vector<PendingRequest> expired;
  while (batcher_.PopBatch(&batch, &expired)) {
    FailExpired(expired, metrics_);
    if (!batch.empty()) ExecuteBatch(*session_, batch, metrics_);
  }
}

void InferenceServer::FailExpired(std::vector<PendingRequest>& expired,
                                  MetricsRegistry* metrics) {
  if (expired.empty()) return;
  if (metrics != nullptr) {
    metrics->GetCounter("serve.deadline_expired")
        ->Increment(static_cast<int64_t>(expired.size()));
  }
  for (PendingRequest& pending : expired) {
    ServeResponse response;
    response.status = util::Status::DeadlineExceeded(
        "deadline passed while queued; request shed before execution");
    response.trace_id = pending.request.trace_id;
    pending.on_done(std::move(response));
  }
}

void InferenceServer::ExecuteBatch(const core::InferenceSession& session,
                                   std::vector<PendingRequest>& batch,
                                   MetricsRegistry* metrics) {
  if (batch.empty()) return;
  const ServeMethod method = batch.front().request.method;
  const core::TaskKind task = batch.front().request.task;
  const int64_t dispatch_us = util::MonotonicNowUs();

  std::vector<int> ids;
  ids.reserve(batch.size());
  for (const PendingRequest& pending : batch) {
    CHECK(CompatibleForBatch(batch.front().request, pending.request))
        << "incompatible request coalesced into one batch";
    ids.push_back(pending.request.sample_id);
  }

  std::vector<ServeResponse> responses(batch.size());
  switch (method) {
    case ServeMethod::kPredict: {
      std::vector<std::vector<int>> labels = session.PredictBatch(task, ids);
      for (size_t i = 0; i < batch.size(); ++i) {
        responses[i].labels = std::move(labels[i]);
      }
      break;
    }
    case ServeMethod::kPredictProbabilities: {
      std::vector<std::vector<float>> probs =
          session.PredictProbabilitiesBatch(task, ids);
      for (size_t i = 0; i < batch.size(); ++i) {
        responses[i].probabilities = std::move(probs[i]);
      }
      break;
    }
    case ServeMethod::kExplain: {
      std::vector<core::Explanation> explanations =
          session.ExplainBatch(task, ids);
      for (size_t i = 0; i < batch.size(); ++i) {
        // Whole-struct move: the ann_degraded flag and degradation_note
        // ride along with the views, per request.
        responses[i].explanation = std::move(explanations[i]);
      }
      break;
    }
  }

  const int64_t done_us = util::MonotonicNowUs();
  Histogram* queue_wait = nullptr;
  Histogram* e2e = nullptr;
  if (metrics != nullptr) {
    queue_wait = metrics->GetHistogram("serve.queue_wait_us",
                                       Histogram::LatencyBucketsUs());
    e2e = metrics->GetHistogram("serve.e2e_us",
                                Histogram::LatencyBucketsUs());
    metrics->GetCounter("serve.batches")->Increment();
    metrics->GetCounter("serve.completed")
        ->Increment(static_cast<int64_t>(batch.size()));
    metrics
        ->GetHistogram("serve.batch_size",
                       Histogram::LinearBuckets(1, 1, 32))
        ->Record(static_cast<int64_t>(batch.size()));
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    PendingRequest& pending = batch[i];
    ServeResponse& response = responses[i];
    response.status = util::Status::OK();
    response.trace_id = pending.request.trace_id;
    response.queue_wait_us = dispatch_us - pending.request.arrival_us;
    response.total_us = done_us - pending.request.arrival_us;
    response.batch_size = static_cast<int>(batch.size());
    if (queue_wait != nullptr) queue_wait->Record(response.queue_wait_us);
    if (e2e != nullptr) e2e->Record(response.total_us);
    pending.on_done(std::move(response));
  }
}

}  // namespace explainti::serve
