#include "serve/server.h"

#include <condition_variable>
#include <cstring>
#include <string>
#include <utility>

#include "util/fault_injection.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/timer.h"

namespace explainti::serve {

InferenceServer::InferenceServer(const core::InferenceSession& session,
                                 const ServerOptions& options,
                                 MetricsRegistry* metrics)
    : options_(options),
      owned_metrics_(metrics == nullptr ? std::make_unique<MetricsRegistry>()
                                        : nullptr),
      metrics_(metrics == nullptr ? owned_metrics_.get() : metrics),
      cache_(options.cache.enabled
                 ? std::make_unique<ResponseCache>(options.cache)
                 : nullptr),
      batcher_(options.batcher) {
  CHECK(options_.num_workers >= 0) << "num_workers must be >= 0";
  current_ = std::make_shared<Generation>();
  current_->session = &session;
  if (options_.qa.enabled) {
    // The engine is fail-closed internally: a surrogate distillation
    // failure leaves it serving teacher-only with a typed status, so QA
    // serving always comes up when asked for.
    current_->qa_engine =
        std::make_unique<qa::QaEngine>(&session, options_.qa.options);
  }
  current_->id = 1;
  // Cumulative across generations: bumped once per installed session by
  // its calibrated per-layer fp32-fallback count, so a fleet scrape sees
  // mixed-precision calibration drift across rollouts.
  metrics_->GetCounter("serve.fp32_fallback_layers")
      ->Increment(session.precision_stats().fp32_fallback_layers);
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

Counter* InferenceServer::TenantCounter(int tenant_id, const char* what) {
  if (options_.tenants == nullptr) return nullptr;
  return metrics_->GetCounter("serve.tenant." +
                              options_.tenants->options(tenant_id).name + "." +
                              what);
}

util::Status InferenceServer::Submit(ServeRequest request,
                                     ServeCallback on_done) {
  CHECK(on_done) << "Submit requires a completion callback";
  // Chaos site: an armed "serve.admit" fault sheds the request at the
  // front door with its injected (typed) status — modelling e.g. an
  // auth/metadata dependency outage — before any queue slot is taken.
  if (util::Status fault = FAULT_POINT("serve.admit"); !fault.ok()) {
    metrics_->GetCounter("serve.rejected_admit_fault")->Increment();
    return fault;
  }

  // Tenant admission: unknown tenants are invalid; the tenant's
  // registered class overrides the request's self-declared priority
  // (noisy neighbours cannot self-promote); over-quota tenants are shed
  // here, before the request touches the queue or any compute.
  if (options_.tenants != nullptr) {
    if (!options_.tenants->Contains(request.tenant_id)) {
      metrics_->GetCounter("serve.rejected_invalid")->Increment();
      return util::Status::InvalidArgument(
          "unknown tenant_id " + std::to_string(request.tenant_id));
    }
    request.priority = options_.tenants->options(request.tenant_id).priority;
    util::Status quota = options_.tenants->Admit(request.tenant_id,
                                                 util::MonotonicNowUs());
    if (!quota.ok()) {
      metrics_->GetCounter("serve.rejected_quota")->Increment();
      TenantCounter(request.tenant_id, "rejected_quota")->Increment();
      return quota;
    }
  }

  // QA requests address samples through their query; derive the batching
  // coordinates (task, primary sample) here so the request rides the same
  // coalescing, deadline, and priority machinery as every other method.
  if (request.method == ServeMethod::kQaAnswer) {
    request.task = qa::QaTaskOf(request.qa.kind);
    request.sample_id =
        request.qa.sample_ids.empty() ? -1 : request.qa.sample_ids.front();
  }

  PendingRequest pending;
  pending.request = request;
  pending.on_done = std::move(on_done);

  // Admission-time validation: malformed requests are rejected here so
  // they never occupy queue slots or reach a worker. Validation, content
  // hashing, and the cache lookup all read the serving session, so the
  // generation stays pinned throughout: SwapSession's drain then covers
  // in-flight admissions too, and the caller can never free the old
  // session while Submit is still reading it.
  util::Status valid = util::Status::OK();
  bool cache_hit = false;
  ServeResponse hit;
  {
    std::shared_ptr<Generation> generation = PinGeneration();
    const core::InferenceSession& session = *generation->session;
    if (request.method == ServeMethod::kQaAnswer) {
      if (!options_.qa.enabled) {
        valid = util::Status::InvalidArgument(
            "QA serving is not enabled on this server");
      } else {
        valid = qa::ValidateQuery(session, request.qa);
      }
      if (valid.ok() && cache_ != nullptr) {
        // QA cache key: the query's parameters plus the serialised
        // content of EVERY candidate — two queries differing in any
        // candidate, target label, or top_k can never share a key, and
        // the method field already separates QA entries from an Explain
        // entry over the same table.
        const core::TaskData& task = session.task_data(request.task);
        uint64_t hash = util::HashInts(
            {static_cast<int>(request.qa.kind), request.qa.label_id,
             request.qa.top_k});
        for (int id : request.qa.sample_ids) {
          const text::EncodedSequence& seq =
              task.samples[static_cast<size_t>(id)].seq;
          hash = util::HashInts(seq.ids, hash);
          hash = util::HashInts(seq.segments, hash);
        }
        pending.input_hash = hash;
        cache_hit = cache_->Lookup(
            {request.method, request.task, hash},
            task.samples[static_cast<size_t>(request.sample_id)].seq,
            &request.qa, &hit);
      }
    } else if (!session.HasTask(request.task)) {
      valid = util::Status::InvalidArgument("task not available on this model");
    } else {
      const core::TaskData& task = session.task_data(request.task);
      if (request.sample_id < 0 ||
          request.sample_id >= static_cast<int>(task.samples.size())) {
        valid = util::Status::InvalidArgument(
            "sample_id " + std::to_string(request.sample_id) +
            " out of range [0, " + std::to_string(task.samples.size()) + ")");
      } else if (cache_ != nullptr) {
        // Response cache: key on the *content* of the serialised input
        // (token ids + segments), so repeated tables short-circuit the
        // queue entirely. A hit completes inline, bit-identical to the
        // insert-time computation.
        const text::EncodedSequence& seq =
            task.samples[request.sample_id].seq;
        uint64_t hash = util::HashInts(seq.ids);
        hash = util::HashInts(seq.segments, hash);
        pending.input_hash = hash;
        cache_hit =
            cache_->Lookup({request.method, request.task, hash}, seq, &hit);
      }
    }
    UnpinGeneration(generation);
  }
  if (!valid.ok()) {
    metrics_->GetCounter("serve.rejected_invalid")->Increment();
    return valid;
  }
  if (cache_hit) {
    metrics_->GetCounter("serve.accepted")->Increment();
    metrics_->GetCounter("serve.cache_hits")->Increment();
    if (Counter* c = TenantCounter(request.tenant_id, "accepted")) {
      c->Increment();
    }
    if (request.method == ServeMethod::kQaAnswer) {
      metrics_->GetCounter("serve.qa_accepted")->Increment();
      if (Counter* c = TenantCounter(request.tenant_id, "qa_accepted")) {
        c->Increment();
      }
    }
    hit.status = util::Status::OK();
    hit.trace_id = request.trace_id;
    pending.on_done(std::move(hit));
    return util::Status::OK();
  }

  std::vector<PendingRequest> preempted;
  util::Status admitted = batcher_.Push(std::move(pending), &preempted);
  if (admitted.ok()) {
    metrics_->GetCounter("serve.accepted")->Increment();
    if (Counter* c = TenantCounter(request.tenant_id, "accepted")) {
      c->Increment();
    }
    if (request.method == ServeMethod::kQaAnswer) {
      // QA traffic is separately visible per tenant: the method costs a
      // whole query plan per request, so quota debugging needs to see who
      // sends it.
      metrics_->GetCounter("serve.qa_accepted")->Increment();
      if (Counter* c = TenantCounter(request.tenant_id, "qa_accepted")) {
        c->Increment();
      }
    }
  } else if (admitted.code() == util::StatusCode::kResourceExhausted) {
    metrics_->GetCounter("serve.rejected_queue_full")->Increment();
    if (Counter* c = TenantCounter(request.tenant_id, "rejected_queue_full")) {
      c->Increment();
    }
  } else {
    metrics_->GetCounter("serve.rejected_shutdown")->Increment();
  }
  FailPreempted(preempted);
  return admitted;
}

void InferenceServer::FailPreempted(std::vector<PendingRequest>& victims) {
  if (victims.empty()) return;
  metrics_->GetCounter("serve.preempted")
      ->Increment(static_cast<int64_t>(victims.size()));
  for (PendingRequest& victim : victims) {
    if (Counter* c = TenantCounter(victim.request.tenant_id, "preempted")) {
      c->Increment();
    }
    ServeResponse response;
    response.status = util::Status::ResourceExhausted(
        "shed from a full queue by a higher-priority arrival");
    response.trace_id = victim.request.trace_id;
    victim.on_done(std::move(response));
  }
  victims.clear();
}

ServeResponse InferenceServer::ServeSync(ServeRequest request) {
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ServeResponse response;
  } state;
  const uint64_t trace_id = request.trace_id;
  const util::Status admitted =
      Submit(std::move(request), [&state](ServeResponse&& response) {
        std::lock_guard<std::mutex> lock(state.mu);
        state.response = std::move(response);
        state.done = true;
        state.cv.notify_one();
      });
  if (!admitted.ok()) {
    ServeResponse rejected;
    rejected.status = admitted;
    rejected.trace_id = trace_id;
    return rejected;
  }
  std::unique_lock<std::mutex> lock(state.mu);
  state.cv.wait(lock, [&state] { return state.done; });
  return std::move(state.response);
}

uint64_t InferenceServer::current_generation() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  return current_->id;
}

const qa::QaEngine* InferenceServer::qa_engine() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  return current_->qa_engine.get();
}

util::Status InferenceServer::SwapSession(const core::InferenceSession& next) {
  // One rollout at a time; a swap racing Shutdown is refused rather than
  // left waiting on workers that are exiting.
  std::lock_guard<std::mutex> swap_lock(swap_mu_);
  if (stopping_.load(std::memory_order_acquire)) {
    return util::Status::FailedPrecondition(
        "server is shutting down; hot-swap refused");
  }
  // Chaos site: an armed "serve.swap" fault aborts the rollout before any
  // state changes — the old generation keeps serving untouched.
  if (util::Status fault = FAULT_POINT("serve.swap"); !fault.ok()) {
    metrics_->GetCounter("serve.swap_aborted")->Increment();
    return fault;
  }

  std::shared_ptr<Generation> next_gen = std::make_shared<Generation>();
  next_gen->session = &next;
  if (options_.qa.enabled) {
    // Build the replacement QA engine (including surrogate distillation,
    // the expensive part) BEFORE the atomic redirect: the old generation
    // keeps answering QA traffic for the whole build, and a distillation
    // failure fail-closes inside the engine rather than failing the swap.
    next_gen->qa_engine =
        std::make_unique<qa::QaEngine>(&next, options_.qa.options);
  }

  std::unique_lock<std::mutex> lock(gen_mu_);
  std::shared_ptr<Generation> old = current_;
  next_gen->id = old->id + 1;
  // The atomic redirect: every batch pinned after this line runs on the
  // new generation. Batches already pinned keep their old pointer and
  // finish there — no batch ever observes two sessions.
  current_ = next_gen;
  // Drain: the old model may only be freed once nothing executes on it.
  gen_cv_.wait(lock, [&old] {
    return old->in_flight.load(std::memory_order_acquire) == 0;
  });
  lock.unlock();

  // Invalidate after the drain so a still-running old-generation batch
  // cannot re-insert a stale entry behind the wipe. (New-generation
  // entries inserted during the drain window are wiped too — a lost
  // caching opportunity, never a correctness issue.)
  if (cache_ != nullptr) cache_->Clear();
  metrics_->GetCounter("serve.swaps")->Increment();
  metrics_->GetCounter("serve.fp32_fallback_layers")
      ->Increment(next.precision_stats().fp32_fallback_layers);
  return util::Status::OK();
}

std::shared_ptr<InferenceServer::Generation> InferenceServer::PinGeneration() {
  std::lock_guard<std::mutex> lock(gen_mu_);
  current_->in_flight.fetch_add(1, std::memory_order_acq_rel);
  return current_;
}

void InferenceServer::UnpinGeneration(
    const std::shared_ptr<Generation>& generation) {
  if (generation->in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last batch off this generation: wake a swap waiting to drain it.
    // Lock/unlock pairs the notify with the waiter's predicate check.
    std::lock_guard<std::mutex> lock(gen_mu_);
    gen_cv_.notify_all();
  }
}

void InferenceServer::Shutdown() {
  stopping_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (stopped_) return;
  stopped_ = true;
  batcher_.Shutdown();
  // Workers drain the queue completely before PopBatch returns false, so
  // every accepted request is served before the join returns.
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Only reachable with num_workers == 0: nobody drained, so fail the
  // leftovers rather than dropping their callbacks.
  std::vector<PendingRequest> leftovers = batcher_.Flush();
  for (PendingRequest& pending : leftovers) {
    ServeResponse response;
    response.status = util::Status::FailedPrecondition(
        "server shut down before the request was served");
    response.trace_id = pending.request.trace_id;
    metrics_->GetCounter("serve.rejected_shutdown")->Increment();
    pending.on_done(std::move(response));
  }
}

void InferenceServer::WorkerLoop() {
  // Batch vectors live for the worker's lifetime and keep their capacity
  // across iterations; each per-sample forward inside ExecuteBatch runs
  // under its own InferenceModeGuard with the executing thread's
  // Workspace arena, so the steady-state loop performs no tensor heap
  // allocations.
  std::vector<PendingRequest> batch;
  std::vector<PendingRequest> expired;
  while (batcher_.PopBatch(&batch, &expired)) {
    FailExpired(expired, metrics_);
    if (batch.empty()) continue;
    // Pin one generation for the whole batch: the swap path redirects
    // the pointer first and then waits for this pin to release.
    std::shared_ptr<Generation> generation = PinGeneration();
    ExecuteBatch(*generation->session, batch, metrics_, cache_.get(),
                 generation->id, generation->qa_engine.get());
    UnpinGeneration(generation);
  }
}

void InferenceServer::FailExpired(std::vector<PendingRequest>& expired,
                                  MetricsRegistry* metrics) {
  if (expired.empty()) return;
  if (metrics != nullptr) {
    metrics->GetCounter("serve.deadline_expired")
        ->Increment(static_cast<int64_t>(expired.size()));
  }
  for (PendingRequest& pending : expired) {
    ServeResponse response;
    response.status = util::Status::DeadlineExceeded(
        "deadline passed while queued; request shed before execution");
    response.trace_id = pending.request.trace_id;
    pending.on_done(std::move(response));
  }
}

void InferenceServer::ExecuteBatch(const core::InferenceSession& session,
                                   std::vector<PendingRequest>& batch,
                                   MetricsRegistry* metrics,
                                   ResponseCache* cache, uint64_t generation,
                                   const qa::QaEngine* qa_engine) {
  if (batch.empty()) return;
  // Chaos site: an armed "serve.dispatch" fault fails the whole batch
  // with its injected status (modelling a backend executor crash) —
  // every callback still fires exactly once, with a typed error.
  if (util::Status fault = FAULT_POINT("serve.dispatch"); !fault.ok()) {
    if (metrics != nullptr) {
      metrics->GetCounter("serve.dispatch_failed")
          ->Increment(static_cast<int64_t>(batch.size()));
    }
    for (PendingRequest& pending : batch) {
      ServeResponse response;
      response.status = fault;
      response.trace_id = pending.request.trace_id;
      pending.on_done(std::move(response));
    }
    return;
  }
  const ServeMethod method = batch.front().request.method;
  const core::TaskKind task = batch.front().request.task;

  // Requests were validated against the generation current at admission,
  // but the batch executes on whatever generation is pinned now: a
  // hot-swap in between may have removed the task or shrunk the sample
  // set. Re-validate against the executing session and complete
  // mismatches with a typed status — a stale request must fail alone,
  // never trip a CHECK that takes the whole process down.
  const int num_samples =
      session.HasTask(task)
          ? static_cast<int>(session.task_data(task).samples.size())
          : 0;
  size_t keep = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    PendingRequest& pending = batch[i];
    bool in_range = pending.request.sample_id >= 0 &&
                    pending.request.sample_id < num_samples;
    if (method == ServeMethod::kQaAnswer && in_range) {
      // A QA request ranges over EVERY candidate in its query, not just
      // the primary sample the batcher coalesced it by — a swap that
      // shrank the sample set must invalidate the whole query.
      for (int id : pending.request.qa.sample_ids) {
        if (id < 0 || id >= num_samples) {
          in_range = false;
          break;
        }
      }
    }
    if (in_range) {
      if (keep != i) batch[keep] = std::move(pending);
      ++keep;
      continue;
    }
    if (metrics != nullptr) {
      metrics->GetCounter("serve.rejected_stale")->Increment();
    }
    ServeResponse stale;
    stale.status = util::Status::FailedPrecondition(
        "request invalidated by a model hot-swap while queued; retry "
        "against the current generation");
    stale.trace_id = pending.request.trace_id;
    pending.on_done(std::move(stale));
  }
  batch.resize(keep);
  if (batch.empty()) return;

  if (metrics != nullptr) {
    // Which execution path answered: compiled inference plans or the
    // graph-walk fallback. A generation that unexpectedly serves
    // graph_batches is the alert that plan compilation failed at swap
    // time (the swap still succeeds — this is a perf regression signal,
    // not an error).
    metrics
        ->GetCounter(session.plans_enabled() ? "serve.plan_batches"
                                             : "serve.graph_batches")
        ->Increment();
    // Quantized-tier visibility: batches served below fp32. A generation
    // whose policy asks for int8 but never bumps this is the alert that
    // the tier failed closed (session.precision_status() has the why).
    if (std::strcmp(session.served_precision(), "fp32") != 0) {
      metrics->GetCounter("serve.int8_batches")->Increment();
    }
  }

  const int64_t dispatch_us = util::MonotonicNowUs();

  std::vector<int> ids;
  ids.reserve(batch.size());
  for (const PendingRequest& pending : batch) {
    CHECK(CompatibleForBatch(batch.front().request, pending.request))
        << "incompatible request coalesced into one batch";
    ids.push_back(pending.request.sample_id);
  }

  std::vector<ServeResponse> responses(batch.size());
  switch (method) {
    case ServeMethod::kPredict: {
      std::vector<std::vector<int>> labels = session.PredictBatch(task, ids);
      for (size_t i = 0; i < batch.size(); ++i) {
        responses[i].labels = std::move(labels[i]);
      }
      break;
    }
    case ServeMethod::kPredictProbabilities: {
      std::vector<std::vector<float>> probs =
          session.PredictProbabilitiesBatch(task, ids);
      for (size_t i = 0; i < batch.size(); ++i) {
        responses[i].probabilities = std::move(probs[i]);
      }
      break;
    }
    case ServeMethod::kExplain: {
      std::vector<core::Explanation> explanations =
          session.ExplainBatch(task, ids);
      for (size_t i = 0; i < batch.size(); ++i) {
        // Whole-struct move: the ann_degraded flag and degradation_note
        // ride along with the views, per request.
        responses[i].explanation = std::move(explanations[i]);
      }
      break;
    }
    case ServeMethod::kQaAnswer: {
      // Each query is planned and answered individually: a malformed or
      // faulted query completes alone with its typed status — the rest of
      // the batch (and the callback-exactly-once guarantee) is untouched.
      Histogram* surrogate_us = nullptr;
      Histogram* teacher_us = nullptr;
      if (metrics != nullptr) {
        surrogate_us = metrics->GetHistogram("qa.surrogate_us",
                                             Histogram::LatencyBucketsUs());
        teacher_us = metrics->GetHistogram("qa.teacher_us",
                                           Histogram::LatencyBucketsUs());
      }
      for (size_t i = 0; i < batch.size(); ++i) {
        if (qa_engine == nullptr) {
          responses[i].status = util::Status::FailedPrecondition(
              "QA serving is not enabled on this server");
          continue;
        }
        const int64_t start_us = util::MonotonicNowUs();
        util::StatusOr<qa::QaAnswer> answer =
            qa_engine->Answer(batch[i].request.qa);
        const int64_t elapsed_us = util::MonotonicNowUs() - start_us;
        if (!answer.ok()) {
          responses[i].status = answer.status();
          if (metrics != nullptr) {
            metrics->GetCounter("qa.failed")->Increment();
          }
          continue;
        }
        responses[i].qa = std::move(answer).value();
        if (metrics != nullptr) {
          const qa::QaAnswer& composed = responses[i].qa;
          const int64_t total_steps =
              static_cast<int64_t>(composed.justification.steps.size());
          metrics->GetCounter("qa.answered")->Increment();
          metrics->GetCounter("qa.surrogate_answered")
              ->Increment(composed.surrogate_steps);
          metrics->GetCounter("qa.escalated")
              ->Increment(composed.escalated_steps);
          // Per-tier latency: an answer composed entirely at the
          // surrogate tier is the cheap path the cascade exists for;
          // anything that touched the teacher is teacher-tier cost.
          if (total_steps > 0 && composed.surrogate_steps == total_steps) {
            surrogate_us->Record(elapsed_us);
          } else {
            teacher_us->Record(elapsed_us);
          }
        }
      }
      break;
    }
  }

  const int64_t done_us = util::MonotonicNowUs();
  Histogram* queue_wait = nullptr;
  Histogram* e2e = nullptr;
  if (metrics != nullptr) {
    queue_wait = metrics->GetHistogram("serve.queue_wait_us",
                                       Histogram::LatencyBucketsUs());
    e2e = metrics->GetHistogram("serve.e2e_us",
                                Histogram::LatencyBucketsUs());
    metrics->GetCounter("serve.batches")->Increment();
    metrics->GetCounter("serve.completed")
        ->Increment(static_cast<int64_t>(batch.size()));
    metrics
        ->GetHistogram("serve.batch_size",
                       Histogram::LinearBuckets(1, 1, 32))
        ->Record(static_cast<int64_t>(batch.size()));
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    PendingRequest& pending = batch[i];
    ServeResponse& response = responses[i];
    // A per-entry failure (QA dispatch) keeps its typed status; everything
    // else completes OK (the default-constructed status).
    const bool entry_ok = response.status.ok();
    response.trace_id = pending.request.trace_id;
    response.queue_wait_us = dispatch_us - pending.request.arrival_us;
    response.total_us = done_us - pending.request.arrival_us;
    response.batch_size = static_cast<int>(batch.size());
    response.model_generation = generation;
    response.precision = session.served_precision();
    if (queue_wait != nullptr) queue_wait->Record(response.queue_wait_us);
    if (e2e != nullptr) e2e->Record(response.total_us);
    if (entry_ok && cache != nullptr && pending.input_hash != 0) {
      // Stores the executing generation's input alongside the payload:
      // a later lookup whose content differs (hash collision, or a swap
      // between hashing and execution) verify-misses instead of being
      // served this entry. Failed entries are never cached. QA entries
      // store their query too, for hit-time verification.
      cache->Insert(
          {pending.request.method, pending.request.task, pending.input_hash},
          session.task_data(task).samples[pending.request.sample_id].seq,
          pending.request.method == ServeMethod::kQaAnswer
              ? &pending.request.qa
              : nullptr,
          response);
    }
    pending.on_done(std::move(response));
  }
}

}  // namespace explainti::serve
