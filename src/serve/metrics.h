#ifndef EXPLAINTI_SERVE_METRICS_H_
#define EXPLAINTI_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace explainti::serve {

/// Monotonically increasing counter. Updates are a single relaxed atomic
/// add — safe from any thread, never locks.
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram for latency-like int64 samples.
///
/// Bucket upper bounds are fixed at construction; Record() is a binary
/// search plus three relaxed atomic adds (bucket count, total count,
/// sum), so concurrent recording never locks. Percentiles are estimated
/// from the bucket counts with linear interpolation inside the bucket —
/// exact enough for p50/p99 dashboards, cheap enough for per-request
/// recording.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; an implicit overflow
  /// bucket catches everything above the last bound.
  explicit Histogram(std::vector<int64_t> upper_bounds);

  /// Exponential 1us .. ~10s bounds, the default for latency histograms.
  static std::vector<int64_t> LatencyBucketsUs();
  /// Linear bounds {lo, lo+step, ...} with `n` buckets (for batch sizes).
  static std::vector<int64_t> LinearBuckets(int64_t lo, int64_t step, int n);

  void Record(int64_t value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// Estimated q-quantile (q in [0, 1]) from the bucket counts; 0 when
  /// empty, the (single) populated bucket's midpoint when all mass landed
  /// in one bucket, and bounded by the last configured bucket bound for
  /// overflow samples. A concurrent snapshot, not a linearizable one.
  double Percentile(double q) const;

  const std::vector<int64_t>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket counts (size = upper_bounds().size() + 1; last entry is
  /// the overflow bucket).
  std::vector<int64_t> BucketCounts() const;

 private:
  std::vector<int64_t> upper_bounds_;
  // One extra slot: the overflow bucket.
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Lock-sharded registry of named counters and histograms.
///
/// Registration (name → instrument lookup) hashes the name to one of
/// kShards independently locked maps, so concurrent workers registering
/// or re-looking-up different names rarely contend; the hot path is to
/// look an instrument up once and keep the pointer, after which updates
/// are pure atomics. Instruments live as long as the registry; returned
/// pointers are stable.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The counter named `name`, created on first use.
  Counter* GetCounter(std::string_view name);

  /// The histogram named `name`, created on first use with
  /// `upper_bounds` (ignored on later lookups).
  Histogram* GetHistogram(std::string_view name,
                          const std::vector<int64_t>& upper_bounds);

  /// One JSON object with every instrument, names sorted, e.g.
  ///   {"counters": {"serve.completed": 42, ...},
  ///    "histograms": {"serve.e2e_us": {"count": 42, "mean": ...,
  ///                   "p50": ..., "p90": ..., "p99": ...}, ...}}
  /// A concurrent snapshot: each value is individually atomic.
  std::string ToJson() const;

 private:
  static constexpr size_t kShards = 8;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
  };
  Shard& ShardFor(std::string_view name);

  Shard shards_[kShards];
};

}  // namespace explainti::serve

#endif  // EXPLAINTI_SERVE_METRICS_H_
