#ifndef EXPLAINTI_UTIL_FAULT_INJECTION_H_
#define EXPLAINTI_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/rng.h"
#include "util/status.h"

namespace explainti::util::fault {

/// What an armed site does when it fires.
enum class FaultKind {
  kError,     ///< Production code receives an error Status.
  kNan,       ///< Caller poisons a float buffer with quiet NaNs.
  kTruncate,  ///< Caller truncates a byte buffer mid-way.
};

/// Arms one named fault site. The schedule is deterministic: the site
/// fires on every `every_n`-th hit (1 = every hit), optionally gated by a
/// Bernoulli draw from the registry's seeded Rng, and disarms itself after
/// `max_fires` firings.
struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  StatusCode code = StatusCode::kIoError;
  std::string message = "injected fault";
  int every_n = 1;
  int max_fires = -1;       ///< -1 = unlimited.
  double probability = 1.0; ///< <1 adds a seeded stochastic gate.
};

/// Process-wide deterministic fault-injection registry.
///
/// Production code plants named sites — `FAULT_POINT("csv.read")`,
/// `ShouldInject("optimizer.step", FaultKind::kNan)` — that are inert
/// (one relaxed atomic load) until a test arms them. Tests arm a site,
/// run the pipeline, and assert the recovery path; `DisarmAll()` restores
/// normal operation. All scheduling is counter-based (plus the seeded
/// Rng for probabilistic specs), so runs are reproducible.
class FaultRegistry {
 public:
  /// The process-wide registry.
  static FaultRegistry& Instance();

  /// Arms (or re-arms, resetting counters) the site.
  void Arm(const std::string& site, FaultSpec spec);

  /// Disarms one site; hit/fire counters are kept for inspection.
  void Disarm(const std::string& site);

  /// Disarms every site and clears all counters.
  void DisarmAll();

  /// Reseeds the Rng behind probabilistic specs.
  void Reseed(uint64_t seed);

  /// Records a hit at `site`; returns the armed spec when the site fires
  /// this hit, nullopt otherwise. Unarmed sites return nullopt without
  /// taking the lock or counting.
  std::optional<FaultSpec> Check(const char* site);

  /// Hits observed at `site` while it was armed.
  int64_t hits(const std::string& site) const;

  /// Times `site` has fired.
  int64_t fires(const std::string& site) const;

  /// True when at least one site is armed (fast path gate).
  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  FaultRegistry() : rng_(0xFA017FA017ULL) {}

  struct SiteState {
    FaultSpec spec;
    bool armed = false;
    int64_t hits = 0;
    int64_t fires = 0;
  };

  mutable std::mutex mu_;
  std::atomic<int> armed_count_{0};
  Rng rng_;
  std::unordered_map<std::string, SiteState> sites_;
};

/// Status-returning fault point for `FaultKind::kError` sites. Returns the
/// armed error when the site fires, OK otherwise (and always OK when the
/// site is unarmed or armed with a different kind).
Status InjectionPoint(const char* site);

/// True when `site` is armed with `kind` and fires this hit.
bool ShouldInject(const char* site, FaultKind kind);

/// Poisons `data[0..n)` with quiet NaNs when `site` (armed as kNan)
/// fires; returns whether it did.
bool MaybeCorrupt(const char* site, float* data, int64_t n);

/// Truncates `buffer` to half its length when `site` (armed as kTruncate)
/// fires; returns whether it did.
bool MaybeTruncate(const char* site, std::string* buffer);

}  // namespace explainti::util::fault

/// Plants an error-injection site: `if (auto s = FAULT_POINT("x"); !s.ok())
/// return s;`. Inert until a test arms the site.
#define FAULT_POINT(site) ::explainti::util::fault::InjectionPoint(site)

#endif  // EXPLAINTI_UTIL_FAULT_INJECTION_H_
