#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace explainti::util {

namespace {

bool MmapDisabledByEnv() {
  const char* value = std::getenv("EXPLAINTI_NO_MMAP");
  return value != nullptr && value[0] == '1' && value[1] == '\0';
}

}  // namespace

util::StatusOr<std::shared_ptr<MappedFile>> MappedFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no file at " + path);
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " +
                           std::strerror(errno));
  }
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ == 0) {
    ::close(fd);
    return file;
  }

  if (!MmapDisabledByEnv()) {
    void* base = ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      ::close(fd);  // The mapping keeps the inode alive.
      file->map_base_ = base;
      file->data_ = static_cast<const char*>(base);
      file->mmap_backed_ = true;
      return file;
    }
    // Fall through to the buffered path; e.g. filesystems without mmap.
  }

  file->fallback_.resize(file->size_);
  size_t done = 0;
  while (done < file->size_) {
    const ssize_t n =
        ::read(fd, file->fallback_.data() + done, file->size_ - done);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("short read on " + path);
    }
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  file->data_ = file->fallback_.data();
  return file;
}

MappedFile::~MappedFile() {
  if (map_base_ != nullptr) ::munmap(map_base_, size_);
}

}  // namespace explainti::util
