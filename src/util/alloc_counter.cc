#include "util/alloc_counter.h"

#include <cstddef>
#include <cstdlib>
#include <new>

namespace explainti::util {
namespace {

// Plain thread_local aggregates; operator new can run before any
// explainti code, so keep construction trivial (zero-init, no dtor
// side effects).
thread_local int64_t tls_allocations = 0;
thread_local int64_t tls_frees = 0;
thread_local int64_t tls_bytes = 0;

void* CountingAlloc(std::size_t size, std::size_t align) {
  ++tls_allocations;
  tls_bytes += static_cast<int64_t>(size);
  // malloc(0) may return nullptr; operator new must not.
  if (size == 0) size = 1;
  for (;;) {
    void* p = align > alignof(std::max_align_t)
                  ? std::aligned_alloc(align, (size + align - 1) / align * align)
                  : std::malloc(size);
    if (p != nullptr) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

void CountingFree(void* p) {
  if (p == nullptr) return;
  ++tls_frees;
  // aligned_alloc storage is freeable with plain free on POSIX, so one
  // release path covers both branches of CountingAlloc.
  std::free(p);
}

}  // namespace

AllocCounts ThisThreadAllocCounts() {
  return {tls_allocations, tls_frees, tls_bytes};
}

}  // namespace explainti::util

// ---------------------------------------------------------------------------
// Global replacement operators (C++17 set). They delegate to malloc/free,
// which sanitizers intercept, so ASan/TSan builds keep working — only the
// new/delete-specific mismatch checks are traded for counting.
// ---------------------------------------------------------------------------

namespace {

void* ThrowingAlloc(std::size_t size, std::size_t align) {
  void* p = explainti::util::CountingAlloc(size, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return ThrowingAlloc(size, 0); }
void* operator new[](std::size_t size) { return ThrowingAlloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return ThrowingAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ThrowingAlloc(size, static_cast<std::size_t>(align));
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return explainti::util::CountingAlloc(size, 0);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return explainti::util::CountingAlloc(size, 0);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return explainti::util::CountingAlloc(size,
                                        static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return explainti::util::CountingAlloc(size,
                                        static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { explainti::util::CountingFree(p); }
void operator delete[](void* p) noexcept { explainti::util::CountingFree(p); }
void operator delete(void* p, std::size_t) noexcept {
  explainti::util::CountingFree(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  explainti::util::CountingFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  explainti::util::CountingFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  explainti::util::CountingFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  explainti::util::CountingFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  explainti::util::CountingFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  explainti::util::CountingFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  explainti::util::CountingFree(p);
}
