#ifndef EXPLAINTI_UTIL_LOGGING_H_
#define EXPLAINTI_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace explainti::util {

/// Severity levels for LOG(). kFatal aborts after printing.
enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Minimum severity printed by LOG(); default prints everything.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

/// Stream-style log line; flushes (and possibly aborts) in the destructor.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Swallows a log stream; used for disabled severities.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace explainti::util

#define EXPLAINTI_LOG_INFO \
  ::explainti::util::internal_logging::LogMessage( \
      ::explainti::util::LogSeverity::kInfo, __FILE__, __LINE__)
#define EXPLAINTI_LOG_WARNING \
  ::explainti::util::internal_logging::LogMessage( \
      ::explainti::util::LogSeverity::kWarning, __FILE__, __LINE__)
#define EXPLAINTI_LOG_ERROR \
  ::explainti::util::internal_logging::LogMessage( \
      ::explainti::util::LogSeverity::kError, __FILE__, __LINE__)
#define EXPLAINTI_LOG_FATAL \
  ::explainti::util::internal_logging::LogMessage( \
      ::explainti::util::LogSeverity::kFatal, __FILE__, __LINE__)

/// LOG(INFO) << "message"; severities: INFO, WARNING, ERROR, FATAL.
#define LOG(severity) EXPLAINTI_LOG_##severity.stream()

/// Aborts with a message when `condition` is false. Used for programming
/// errors (invariant violations), never for data-dependent failures — those
/// return util::Status.
#define CHECK(condition)                                     \
  (condition) ? (void)0                                      \
              : ::explainti::util::internal_logging::LogMessageVoidify() & \
                    EXPLAINTI_LOG_FATAL.stream()             \
                        << "Check failed: " #condition " "

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Aborts if `status_expr` is not OK; for callers that cannot recover.
#define CHECK_OK(status_expr)                                  \
  do {                                                         \
    const ::explainti::util::Status _st = (status_expr);       \
    CHECK(_st.ok()) << _st.ToString();                         \
  } while (0)

#endif  // EXPLAINTI_UTIL_LOGGING_H_
