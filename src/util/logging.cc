#include "util/logging.h"

namespace explainti::util {

namespace {
LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace explainti::util
