#include "util/logging.h"

#include <atomic>
#include <cstring>
#include <mutex>

namespace explainti::util {

namespace {

/// Parses EXPLAINTI_MIN_LOG_SEVERITY ("INFO".."FATAL" or "0".."3"); falls
/// back to kInfo on anything unrecognised.
LogSeverity SeverityFromEnv() {
  const char* env = std::getenv("EXPLAINTI_MIN_LOG_SEVERITY");
  if (env == nullptr || env[0] == '\0') return LogSeverity::kInfo;
  if (std::strcmp(env, "INFO") == 0 || std::strcmp(env, "0") == 0) {
    return LogSeverity::kInfo;
  }
  if (std::strcmp(env, "WARNING") == 0 || std::strcmp(env, "1") == 0) {
    return LogSeverity::kWarning;
  }
  if (std::strcmp(env, "ERROR") == 0 || std::strcmp(env, "2") == 0) {
    return LogSeverity::kError;
  }
  if (std::strcmp(env, "FATAL") == 0 || std::strcmp(env, "3") == 0) {
    return LogSeverity::kFatal;
  }
  return LogSeverity::kInfo;
}

/// Read once at startup; SetMinLogSeverity overrides at runtime.
std::atomic<LogSeverity> g_min_severity{SeverityFromEnv()};

/// Serialises the std::cerr write in ~LogMessage so concurrent log lines
/// never interleave mid-line.
std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(severity, std::memory_order_relaxed);
}
LogSeverity MinLogSeverity() {
  return g_min_severity.load(std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::lock_guard<std::mutex> lock(SinkMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace explainti::util
