#ifndef EXPLAINTI_UTIL_CRC32_H_
#define EXPLAINTI_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace explainti::util {

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `data[0..n)`. Used as the
/// integrity footer of checkpoint files; matches zlib's crc32() so files
/// can be verified externally.
uint32_t Crc32(const void* data, size_t n);

/// Incremental form: feed the previous return value back as `seed` to
/// extend a running checksum (start from 0).
uint32_t Crc32(uint32_t seed, const void* data, size_t n);

/// Convenience overload for strings.
uint32_t Crc32(const std::string& data);

}  // namespace explainti::util

#endif  // EXPLAINTI_UTIL_CRC32_H_
