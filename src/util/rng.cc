#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace explainti::util {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
  uint64_t r;
  do {
    r = Next();
  } while (r < threshold);
  return r % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    CHECK_GE(w, 0.0);
    total += w;
  }
  CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point edge: return the last index.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  CHECK_LE(k, n);
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher-Yates: fix the first k slots.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace explainti::util
