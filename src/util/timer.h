#ifndef EXPLAINTI_UTIL_TIMER_H_
#define EXPLAINTI_UTIL_TIMER_H_

#include <chrono>

namespace explainti::util {

/// Monotonic wall-clock stopwatch used by the efficiency benchmarks
/// (Table V) and the trainer's per-epoch reporting.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace explainti::util

#endif  // EXPLAINTI_UTIL_TIMER_H_
