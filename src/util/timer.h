#ifndef EXPLAINTI_UTIL_TIMER_H_
#define EXPLAINTI_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace explainti::util {

/// Sentinel deadline meaning "never expires". Requests admitted without a
/// client deadline carry this value.
inline constexpr int64_t kNoDeadline = INT64_MAX;

/// Microseconds on the monotonic (steady) clock since an arbitrary but
/// process-stable epoch. All serving deadlines are expressed on this
/// clock: it never jumps backwards, so a deadline comparison is a single
/// integer compare regardless of NTP slews or wall-clock changes.
inline int64_t MonotonicNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic deadline `timeout_us` from now. Non-positive timeouts yield
/// kNoDeadline (no limit). Timeouts large enough that `now + timeout`
/// would overflow int64 saturate to kNoDeadline instead of wrapping
/// negative (a wrapped deadline would read as "expired in the distant
/// past" and shed every request carrying it).
inline int64_t DeadlineAfterUs(int64_t timeout_us) {
  if (timeout_us <= 0) return kNoDeadline;
  const int64_t now = MonotonicNowUs();
  if (timeout_us >= kNoDeadline - now) return kNoDeadline;
  return now + timeout_us;
}

/// Has `deadline_us` passed at `now_us` (default: now)? kNoDeadline never
/// expires.
inline bool DeadlineExpired(int64_t deadline_us,
                            int64_t now_us = MonotonicNowUs()) {
  return deadline_us != kNoDeadline && now_us >= deadline_us;
}

/// Monotonic wall-clock stopwatch used by the efficiency benchmarks
/// (Table V) and the trainer's per-epoch reporting.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace explainti::util

#endif  // EXPLAINTI_UTIL_TIMER_H_
