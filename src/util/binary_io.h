#ifndef EXPLAINTI_UTIL_BINARY_IO_H_
#define EXPLAINTI_UTIL_BINARY_IO_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace explainti::util {

// Shared primitives for the CRC32-footed binary file formats (checkpoint
// files, embedding-store segments and manifests). Writers serialise into a
// std::string with the Append helpers; loaders walk the byte image with
// BinaryReader. All multi-byte fields are host-endian — the formats are
// snapshot/cache artifacts, not interchange formats.

/// Appends the raw bytes of a trivially copyable value.
template <typename T>
void AppendPod(std::string* buffer, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  buffer->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// Appends a float array without a length prefix (callers record counts in
/// their own headers).
inline void AppendFloats(std::string* buffer, const std::vector<float>& values) {
  buffer->append(reinterpret_cast<const char*>(values.data()),
                 values.size() * sizeof(float));
}

/// Bounds-checked cursor over a loaded (or mmap'd) file image; every read
/// returns false on overrun so a truncated file can never walk off the
/// buffer. Reads memcpy out of the image, so the image itself needs no
/// alignment.
class BinaryReader {
 public:
  BinaryReader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > size_) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadFloats(std::vector<float>* out, int64_t count) {
    if (count < 0 ||
        pos_ + static_cast<size_t>(count) * sizeof(float) > size_) {
      return false;
    }
    out->resize(static_cast<size_t>(count));
    std::memcpy(out->data(), data_ + pos_,
                static_cast<size_t>(count) * sizeof(float));
    pos_ += static_cast<size_t>(count) * sizeof(float);
    return true;
  }

  /// Advances the cursor without reading; false on overrun.
  bool Skip(size_t n) {
    if (pos_ + n > size_) return false;
    pos_ += n;
    return true;
  }

  /// Current byte offset into the image.
  size_t pos() const { return pos_; }

  /// Bytes left after the cursor.
  size_t remaining() const { return size_ - pos_; }

  /// Pointer to the byte at the cursor (valid for `remaining()` bytes).
  const char* cursor() const { return data_ + pos_; }

  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace explainti::util

#endif  // EXPLAINTI_UTIL_BINARY_IO_H_
