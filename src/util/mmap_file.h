#ifndef EXPLAINTI_UTIL_MMAP_FILE_H_
#define EXPLAINTI_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace explainti::util {

/// A read-only file image, mmap(2)-backed when the platform allows it.
///
/// Embedding-store segments are loaded through this so a restarted process
/// reopens a multi-gigabyte store without copying it through the heap: the
/// kernel pages vectors in on first touch and can evict them under memory
/// pressure. When mapping fails — or EXPLAINTI_NO_MMAP=1 forces the issue,
/// which the persistence tests use to cover both paths — the file is
/// read() into an owned buffer instead; callers see the same (data, size)
/// either way. The mapping base is page-aligned, so any field a file
/// format places at an 8-byte-aligned offset may be read through a typed
/// pointer directly.
class MappedFile {
 public:
  /// Opens `path` read-only. NotFound when the file does not exist,
  /// IoError on open/map/read failures. An empty file yields size() == 0
  /// with data() == nullptr.
  static StatusOr<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }

  /// False when the read()-fallback buffered the file instead of mapping.
  bool mmap_backed() const { return mmap_backed_; }

 private:
  MappedFile() = default;

  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mmap_backed_ = false;
  void* map_base_ = nullptr;        // munmap target when mmap-backed.
  std::vector<char> fallback_;      // Owning buffer otherwise.
};

}  // namespace explainti::util

#endif  // EXPLAINTI_UTIL_MMAP_FILE_H_
