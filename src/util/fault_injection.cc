#include "util/fault_injection.h"

#include <limits>

namespace explainti::util::fault {

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.spec = std::move(spec);
  state.armed = true;
  state.hits = 0;
  state.fires = 0;
}

void FaultRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

void FaultRegistry::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Rng(seed);
}

std::optional<FaultSpec> FaultRegistry::Check(const char* site) {
  if (!AnyArmed()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return std::nullopt;
  SiteState& state = it->second;
  ++state.hits;
  const int every_n = state.spec.every_n > 0 ? state.spec.every_n : 1;
  if (state.hits % every_n != 0) return std::nullopt;
  if (state.spec.probability < 1.0 &&
      !rng_.Bernoulli(state.spec.probability)) {
    return std::nullopt;
  }
  ++state.fires;
  FaultSpec fired = state.spec;
  if (state.spec.max_fires >= 0 && state.fires >= state.spec.max_fires) {
    state.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  return fired;
}

int64_t FaultRegistry::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

int64_t FaultRegistry::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

Status InjectionPoint(const char* site) {
  FaultRegistry& registry = FaultRegistry::Instance();
  if (!registry.AnyArmed()) return Status::OK();
  std::optional<FaultSpec> fired = registry.Check(site);
  if (!fired.has_value() || fired->kind != FaultKind::kError) {
    return Status::OK();
  }
  return Status(fired->code,
                fired->message + " [injected at " + site + "]");
}

bool ShouldInject(const char* site, FaultKind kind) {
  FaultRegistry& registry = FaultRegistry::Instance();
  if (!registry.AnyArmed()) return false;
  std::optional<FaultSpec> fired = registry.Check(site);
  return fired.has_value() && fired->kind == kind;
}

bool MaybeCorrupt(const char* site, float* data, int64_t n) {
  if (!ShouldInject(site, FaultKind::kNan)) return false;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (int64_t i = 0; i < n; ++i) data[i] = nan;
  return true;
}

bool MaybeTruncate(const char* site, std::string* buffer) {
  if (!ShouldInject(site, FaultKind::kTruncate)) return false;
  buffer->resize(buffer->size() / 2);
  return true;
}

}  // namespace explainti::util::fault
