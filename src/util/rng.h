#ifndef EXPLAINTI_UTIL_RNG_H_
#define EXPLAINTI_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace explainti::util {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in this library (data generation, dropout,
/// neighbour sampling, weight init, judge noise) takes an explicit `Rng` or
/// seed so that tests and benchmark tables are reproducible run-to-run and
/// machine-to-machine. Not thread-safe; use one instance per thread.
class Rng {
 public:
  /// Seeds the generator; two Rngs with the same seed produce identical
  /// streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box-Muller).
  double Normal();

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap(items[i], items[j]);
    }
  }

  /// Index sampled from unnormalised non-negative weights. Requires a
  /// positive total weight.
  size_t Categorical(const std::vector<double>& weights);

  /// k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace explainti::util

#endif  // EXPLAINTI_UTIL_RNG_H_
