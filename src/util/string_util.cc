#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace explainti::util {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool IsAllDigits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

}  // namespace explainti::util
