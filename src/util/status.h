#ifndef EXPLAINTI_UTIL_STATUS_H_
#define EXPLAINTI_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace explainti::util {

/// Error category for a failed operation.
///
/// Modelled after the status codes used by database engines (RocksDB,
/// Arrow): a small closed set that callers can branch on, with a free-form
/// message for humans.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnimplemented,
  /// A request's monotonic deadline passed before the work ran; the
  /// serving layer sheds such requests before they consume compute.
  kDeadlineExceeded,
  /// A bounded resource (admission queue, memory budget) is full; the
  /// caller should back off and retry rather than expect buffering.
  kResourceExhausted,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// This library does not use exceptions; fallible public APIs return
/// `Status` (or `StatusOr<T>` when they produce a value). `Status` is cheap
/// to copy in the OK case and carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" for logging.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`.
///
/// Minimal analogue of absl::StatusOr. Access the value only after checking
/// `ok()`; `value()` on an error status aborts the process (see CHECK in
/// logging.h), which is the intended failure mode for programming errors.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from Status, mirroring absl::StatusOr, so that
  /// `return value;` and `return Status::...;` both work in factories.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace explainti::util

#endif  // EXPLAINTI_UTIL_STATUS_H_
