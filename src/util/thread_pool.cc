#include "util/thread_pool.h"

#include <cstdlib>
#include <memory>
#include <string>

namespace explainti::util {

namespace {

/// Set while the current thread is executing chunks of a region (worker
/// or participating caller); nested ParallelFor calls then run inline.
thread_local bool tl_in_parallel_region = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || generation_ != seen_generation;
    });
    if (stop_) return;
    seen_generation = generation_;
    lock.unlock();
    tl_in_parallel_region = true;
    RunChunks();
    tl_in_parallel_region = false;
    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::RunChunks() {
  for (;;) {
    const int64_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= num_chunks_) return;
    const int64_t chunk_begin = begin_ + chunk * chunk_size_;
    int64_t chunk_end = chunk_begin + chunk_size_;
    if (chunk_end > end_) chunk_end = end_;
    try {
      (*fn_)(chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  const int64_t n = end - begin;
  // Serial paths: single-participant pool, range within one grain, or a
  // nested region (the chunk contract makes inline execution equivalent).
  if (workers_.empty() || n <= grain || tl_in_parallel_region) {
    fn(begin, end);
    return;
  }

  // Static chunking: boundaries depend only on range, grain and pool
  // size. Workers pick chunks dynamically, which is safe because chunks
  // are independent by contract.
  std::lock_guard<std::mutex> region(region_mu_);
  const int64_t participants = static_cast<int64_t>(workers_.size()) + 1;
  int64_t chunk_size = (n + participants - 1) / participants;
  if (chunk_size < grain) chunk_size = grain;
  const int64_t num_chunks = (n + chunk_size - 1) / chunk_size;

  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    begin_ = begin;
    end_ = end;
    chunk_size_ = chunk_size;
    num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_workers_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();

  tl_in_parallel_region = true;
  RunChunks();
  tl_in_parallel_region = false;

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  fn_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

int ConfiguredThreadCount() {
  if (const char* env = std::getenv("EXPLAINTI_NUM_THREADS")) {
    char* parse_end = nullptr;
    const long value = std::strtol(env, &parse_end, 10);
    if (parse_end != env && *parse_end == '\0' && value > 0 &&
        value <= 1024) {
      return static_cast<int>(value);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace {

std::mutex g_pool_mu;
ThreadPool* g_pool = nullptr;  // Intentionally leaked at exit.

}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) g_pool = new ThreadPool(ConfiguredThreadCount());
  return *g_pool;
}

void SetGlobalThreadCount(int num_threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  delete g_pool;  // Joins workers; callers must not be mid-region.
  g_pool = new ThreadPool(num_threads);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  // Inline fast path: small ranges never touch the pool or its lock.
  if (end - begin <= (grain < 1 ? 1 : grain)) {
    fn(begin, end);
    return;
  }
  GlobalThreadPool().ParallelFor(begin, end, grain, fn);
}

}  // namespace explainti::util
