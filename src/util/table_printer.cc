#include "util/table_printer.h"

#include <algorithm>

namespace explainti::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void TablePrinter::AddSeparator() {
  rows_.push_back(Row{{}, /*separator=*/true});
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const Row& row : rows_) {
    for (size_t i = 0; i < row.cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto print_rule = [&]() {
    os << '+';
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << ' ' << cell;
      for (size_t pad = cell.size(); pad < widths[i] + 1; ++pad) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  print_rule();
  print_cells(headers_);
  print_rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      print_rule();
    } else {
      print_cells(row.cells);
    }
  }
  print_rule();
}

}  // namespace explainti::util
