#ifndef EXPLAINTI_UTIL_CSV_H_
#define EXPLAINTI_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace explainti::util {

/// Parses RFC-4180-style CSV text: comma-separated fields, double-quote
/// quoting with "" escapes, LF or CRLF row ends. Returns the rows; rows
/// may have differing field counts (callers validate shape) and a blank
/// line parses as a zero-column row. Hostile input — embedded NUL bytes,
/// fields above 1 MiB, unterminated quotes — returns InvalidArgument
/// rather than ever aborting.
StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

/// Reads and parses a CSV file.
StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Renders rows as CSV text, quoting fields that need it.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

}  // namespace explainti::util

#endif  // EXPLAINTI_UTIL_CSV_H_
