#ifndef EXPLAINTI_UTIL_ALLOC_COUNTER_H_
#define EXPLAINTI_UTIL_ALLOC_COUNTER_H_

#include <cstdint>

namespace explainti::util {

/// Per-thread heap-allocation counters.
///
/// alloc_counter.cc replaces the global `operator new` / `operator delete`
/// family with counting versions that delegate to malloc/free, so any
/// binary that links this translation unit (i.e. references any symbol
/// below) observes every C++ heap allocation made on the calling thread —
/// including the ones inside std::vector and std::shared_ptr that the
/// tensor layer is built from. Binaries that never reference these
/// symbols keep the default operators; the archive member is simply not
/// pulled in.
///
/// This exists to *measure*, not to speed anything up: the zero-alloc
/// test and bench_inference_session use it to prove that a warmed-up
/// InferenceSession::Predict performs zero tensor heap allocations
/// (everything comes from the per-thread Workspace arena).
struct AllocCounts {
  int64_t allocations = 0;  // operator new / new[] calls.
  int64_t frees = 0;        // operator delete / delete[] calls.
  int64_t bytes = 0;        // Total bytes requested from operator new.
};

/// Counters for the calling thread since it started.
AllocCounts ThisThreadAllocCounts();

/// Convenience scope: Delta() = calling thread's counters since
/// construction. Counting is always on; this only subtracts a baseline.
class ScopedAllocCounter {
 public:
  ScopedAllocCounter() : start_(ThisThreadAllocCounts()) {}

  AllocCounts Delta() const {
    const AllocCounts now = ThisThreadAllocCounts();
    return {now.allocations - start_.allocations, now.frees - start_.frees,
            now.bytes - start_.bytes};
  }

 private:
  AllocCounts start_;
};

}  // namespace explainti::util

#endif  // EXPLAINTI_UTIL_ALLOC_COUNTER_H_
