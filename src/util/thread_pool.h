#ifndef EXPLAINTI_UTIL_THREAD_POOL_H_
#define EXPLAINTI_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace explainti::util {

/// Fixed-size worker pool with a deterministic `ParallelFor` primitive.
///
/// Execution model (see DESIGN.md "Execution model"):
///  - A pool of `num_threads` participants: `num_threads - 1` background
///    workers plus the calling thread, which always takes part in its own
///    parallel regions. `ThreadPool(1)` spawns nothing and runs every
///    region inline.
///  - `ParallelFor(begin, end, grain, fn)` partitions `[begin, end)` into
///    contiguous chunks of at least `grain` indices. Chunk *boundaries*
///    are a pure function of (range, grain, pool size) — never of timing —
///    and `fn(chunk_begin, chunk_end)` must write only outputs owned by
///    the indices it was handed. Under that contract every result is
///    bit-identical run-to-run and across pool sizes; which thread runs
///    which chunk is the only scheduling freedom.
///  - Nested regions degrade to inline execution: a `ParallelFor` issued
///    from inside a worker (or from the caller's own chunk) runs serially
///    on that thread, so callees can parallelise unconditionally.
///  - The first exception thrown by `fn` is captured and rethrown on the
///    calling thread once the region has quiesced; remaining chunks still
///    run (chunks are independent by contract, so there is nothing to
///    unwind).
///
/// One region executes at a time per pool; concurrent top-level callers
/// serialise on an internal mutex. Destruction joins all workers.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` total participants (clamped to at
  /// least 1). `num_threads - 1` background workers are spawned.
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers.
  ~ThreadPool();

  /// Total participants (workers + caller).
  int num_threads() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs `fn(chunk_begin, chunk_end)` over `[begin, end)`; see class
  /// comment for the determinism contract. Empty ranges are a no-op.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  void WorkerLoop();
  void RunChunks();

  std::vector<std::thread> workers_;

  // Region state; valid while a region is in flight. Guarded by mu_
  // except the atomic chunk cursor.
  std::mutex region_mu_;  // Serialises top-level ParallelFor callers.
  std::mutex mu_;
  std::condition_variable work_cv_;   // Wakes workers on a new region.
  std::condition_variable done_cv_;   // Wakes the caller on completion.
  uint64_t generation_ = 0;
  int active_workers_ = 0;
  bool stop_ = false;

  const std::function<void(int64_t, int64_t)>* fn_ = nullptr;
  int64_t begin_ = 0;
  int64_t end_ = 0;
  int64_t chunk_size_ = 1;
  int64_t num_chunks_ = 0;
  std::atomic<int64_t> next_chunk_{0};
  std::exception_ptr first_error_;
};

/// Thread count configured for this process: `EXPLAINTI_NUM_THREADS` when
/// set to a positive integer, otherwise the hardware concurrency (at
/// least 1). Read once per call; the global pool samples it lazily.
int ConfiguredThreadCount();

/// The process-wide pool used by the free `ParallelFor`. Created lazily
/// with `ConfiguredThreadCount()` threads on first use.
ThreadPool& GlobalThreadPool();

/// Replaces the global pool with one of `num_threads` participants.
/// Intended for tests and benchmarks that sweep thread counts; must only
/// be called while no other thread is inside `ParallelFor`.
void SetGlobalThreadCount(int num_threads);

/// `GlobalThreadPool().ParallelFor(...)`, with a fast inline path for
/// ranges of at most `grain` indices (no pool lookup, no locking).
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Chunk grain that targets roughly `target_chunk_cost` scalar operations
/// per chunk given a per-index cost, so cheap loops stay serial and
/// expensive ones split finely.
inline int64_t GrainForCost(int64_t per_item_cost,
                            int64_t target_chunk_cost = 16384) {
  if (per_item_cost < 1) per_item_cost = 1;
  const int64_t grain = target_chunk_cost / per_item_cost;
  return grain < 1 ? 1 : grain;
}

}  // namespace explainti::util

#endif  // EXPLAINTI_UTIL_THREAD_POOL_H_
