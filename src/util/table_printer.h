#ifndef EXPLAINTI_UTIL_TABLE_PRINTER_H_
#define EXPLAINTI_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace explainti::util {

/// Renders aligned plain-text tables; the benchmark binaries use it to print
/// the same row layout as the paper's tables.
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void AddSeparator();

  /// Writes the formatted table to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  // A row is either cells, or empty + separator flag.
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<Row> rows_;
};

}  // namespace explainti::util

#endif  // EXPLAINTI_UTIL_TABLE_PRINTER_H_
