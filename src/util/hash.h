#ifndef EXPLAINTI_UTIL_HASH_H_
#define EXPLAINTI_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace explainti::util {

/// 64-bit FNV-1a offset basis / prime. FNV-1a is the content-hash used
/// for serving-cache keys: stable across runs and platforms (unlike
/// std::hash), cheap enough to run per request, and good enough mixing
/// for bucketing — it is NOT a cryptographic hash.
inline constexpr uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv64Prime = 0x100000001b3ULL;

/// FNV-1a over `data[0..n)`, continuing from `seed` (pass the previous
/// return value to extend a running hash; start from kFnv64OffsetBasis).
inline uint64_t HashBytes(const void* data, size_t n,
                          uint64_t seed = kFnv64OffsetBasis) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint64_t>(bytes[i]);
    h *= kFnv64Prime;
  }
  return h;
}

/// Seed of the bag-of-words token featurisers. This is the 64-bit FNV
/// offset basis with its last decimal digit dropped — a long-fossilised
/// typo from the first hand-rolled copy of the hasher. It is pinned
/// deliberately: feature extractors bucket tokens by `hash % dim`, so
/// "fixing" the constant would silently remap every hashed feature and
/// invalidate anything trained on them. tests/util_test.cc pins concrete
/// hash values against accidental drift.
inline constexpr uint64_t kFnvLegacyTokenBasis = 1469598103934665603ULL;

/// FNV-1a of `token` seeded with the pinned legacy basis — the one shared
/// implementation behind the bag-of-words featurisers
/// (baselines/column_features, eval/sufficiency), which previously each
/// carried their own copy.
inline uint64_t HashTokenFeature(const std::string& token) {
  return HashBytes(token.data(), token.size(), kFnvLegacyTokenBasis);
}

/// Hashes a vector of ints (e.g. a serialised token-id sequence),
/// length-prefixed so that ({1}, {2}) and ({1, 2}, {}) hash differently
/// when chained.
inline uint64_t HashInts(const std::vector<int>& values,
                         uint64_t seed = kFnv64OffsetBasis) {
  const uint64_t n = static_cast<uint64_t>(values.size());
  uint64_t h = HashBytes(&n, sizeof(n), seed);
  if (!values.empty()) {
    h = HashBytes(values.data(), values.size() * sizeof(int), h);
  }
  return h;
}

}  // namespace explainti::util

#endif  // EXPLAINTI_UTIL_HASH_H_
