#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/fault_injection.h"

namespace explainti::util {

namespace {

/// Hard cap on a single field; real-world dirty tables occasionally carry
/// megabyte blobs (stack traces, base64) that would otherwise blow up the
/// serialiser downstream.
constexpr size_t kMaxFieldBytes = 1 << 20;  // 1 MiB

}  // namespace

StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  const auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  const auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\0') {
      return Status::InvalidArgument("embedded NUL byte at offset " +
                                     std::to_string(i));
    }
    if (field.size() > kMaxFieldBytes) {
      return Status::InvalidArgument(
          "field exceeds " + std::to_string(kMaxFieldBytes) +
          " bytes at offset " + std::to_string(i));
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::InvalidArgument(
              "quote inside unquoted field at offset " + std::to_string(i));
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // The next field exists even if empty.
        break;
      case '\r':
        break;  // Tolerate CRLF.
      case '\n':
        if (!field_started && field.empty() && row.empty()) {
          // A blank line is a zero-column row, not a one-empty-field row;
          // table loaders reject these explicitly.
          rows.emplace_back();
        } else {
          end_row();
        }
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  if (field_started || !field.empty() || !row.empty()) {
    end_row();  // Final row without a trailing newline.
  }
  return rows;
}

StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  if (Status fault = FAULT_POINT("csv.read"); !fault.ok()) return fault;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failed for " + path);
  }
  std::string content = buffer.str();
  // Simulates a short read (torn file, interrupted transfer) under test.
  fault::MaybeTruncate("csv.read.truncate", &content);
  return ParseCsv(content);
}

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      const std::string& cell = row[i];
      const bool needs_quotes =
          cell.find_first_of(",\"\n\r") != std::string::npos;
      if (needs_quotes) {
        out.push_back('"');
        for (char c : cell) {
          if (c == '"') out.push_back('"');
          out.push_back(c);
        }
        out.push_back('"');
      } else {
        out.append(cell);
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace explainti::util
