#ifndef EXPLAINTI_UTIL_STRING_UTIL_H_
#define EXPLAINTI_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace explainti::util {

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits `text` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// ASCII lower-casing (table text is ASCII in this library).
std::string ToLower(std::string_view text);

/// Strips leading and trailing ASCII whitespace.
std::string Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True if every character is an ASCII digit (and the string is non-empty).
bool IsAllDigits(std::string_view text);

/// Formats `value` with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

}  // namespace explainti::util

#endif  // EXPLAINTI_UTIL_STRING_UTIL_H_
