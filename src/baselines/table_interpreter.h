#ifndef EXPLAINTI_BASELINES_TABLE_INTERPRETER_H_
#define EXPLAINTI_BASELINES_TABLE_INTERPRETER_H_

#include <string>
#include <vector>

#include "core/task_data.h"
#include "data/corpus.h"
#include "eval/f1_metrics.h"

namespace explainti::baselines {

/// Common interface for every baseline table-interpretation system
/// compared in Table III. `Fit` trains on the corpus's train split;
/// `Predict` returns label ids for a sample index (corpus order).
class TableInterpreter {
 public:
  explicit TableInterpreter(std::string name) : name_(std::move(name)) {}
  virtual ~TableInterpreter() = default;

  TableInterpreter(const TableInterpreter&) = delete;
  TableInterpreter& operator=(const TableInterpreter&) = delete;

  const std::string& name() const { return name_; }

  /// Trains the system end-to-end on the corpus's training split.
  virtual void Fit(const data::TableCorpus& corpus) = 0;

  /// True when the system supports `kind` on the fitted corpus.
  virtual bool HasTask(core::TaskKind kind) const = 0;

  /// Predicted label ids for sample `sample_id` (index into the corpus's
  /// type_samples or relation_samples).
  virtual std::vector<int> Predict(core::TaskKind kind,
                                   int sample_id) const = 0;

 private:
  std::string name_;
};

/// Evaluates any interpreter on one task/split of `corpus` with the
/// paper's three F1 metrics.
eval::F1Scores EvaluateInterpreter(const TableInterpreter& interpreter,
                                   const data::TableCorpus& corpus,
                                   core::TaskKind kind,
                                   data::SplitPart part);

}  // namespace explainti::baselines

#endif  // EXPLAINTI_BASELINES_TABLE_INTERPRETER_H_
