#include "baselines/self_explain.h"

#include <algorithm>

#include "tensor/tensor_ops.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace explainti::baselines {

namespace {

std::vector<float> NormalizeToDistribution(std::vector<float> v) {
  float total = 0.0f;
  for (float x : v) total += x;
  if (total <= 0.0f) {
    const float u = 1.0f / static_cast<float>(v.size());
    for (float& x : v) x = u;
    return v;
  }
  for (float& x : v) x /= total;
  return v;
}

}  // namespace

SelfExplain::SelfExplain(TransformerBaselineConfig config, float alpha,
                         float beta, int chunk_size, int top_k)
    : TransformerBaseline("SelfExplain", std::move(config)),
      alpha_(alpha),
      beta_(beta),
      chunk_size_(chunk_size),
      top_k_(top_k) {}

void SelfExplain::OnModelBuilt(const data::TableCorpus& corpus,
                               int64_t d_model, util::Rng& rng) {
  const int64_t c_type = static_cast<int64_t>(corpus.type_label_names.size());
  type_heads_.local =
      std::make_unique<nn::ClassifierHead>(d_model, c_type, rng);
  type_heads_.global =
      std::make_unique<nn::ClassifierHead>(d_model, c_type, rng);
  if (!corpus.relation_samples.empty()) {
    const int64_t c_rel =
        static_cast<int64_t>(corpus.relation_label_names.size());
    relation_heads_.local =
        std::make_unique<nn::ClassifierHead>(d_model, c_rel, rng);
    relation_heads_.global =
        std::make_unique<nn::ClassifierHead>(d_model, c_rel, rng);
  }
}

void SelfExplain::PrepareContext(const data::TableCorpus& /*corpus*/) {
  // Static global store: built once from post-pre-training embeddings and
  // never refreshed (see the class comment).
  for (core::TaskKind kind :
       {core::TaskKind::kType, core::TaskKind::kRelation}) {
    if (!HasTask(kind)) continue;
    StaticStore& store =
        kind == core::TaskKind::kType ? type_store_ : relation_store_;
    const core::TaskData& task = task_data(kind);
    store.ids = task.train_ids;
    store.embeddings.assign(task.samples.size(), {});
    for (int id : task.train_ids) {
      std::vector<float> e = ClsEmbedding(kind, id);
      store.index.Add(id, e);
      store.embeddings[static_cast<size_t>(id)] = std::move(e);
    }
  }
}

std::vector<std::pair<int, int>> SelfExplain::Chunks(
    const core::TaskSample& sample) const {
  std::vector<std::pair<int, int>> chunks;
  const int len = static_cast<int>(sample.seq.ids.size());
  for (int start = 1; start < len - 1; start += chunk_size_) {
    const int end = std::min(start + chunk_size_, len - 1);
    if (end > start) chunks.emplace_back(start, end);
  }
  return chunks;
}

const SelfExplain::ConceptHeads& SelfExplain::HeadsOf(
    core::TaskKind kind) const {
  return kind == core::TaskKind::kType ? type_heads_ : relation_heads_;
}

const SelfExplain::StaticStore& SelfExplain::StoreOf(
    core::TaskKind kind) const {
  return kind == core::TaskKind::kType ? type_store_ : relation_store_;
}

tensor::Tensor SelfExplain::ExtraLoss(core::TaskKind kind,
                                      const core::TaskSample& sample,
                                      const tensor::Tensor& embeddings,
                                      const tensor::Tensor& cls,
                                      const tensor::Tensor& final_logits,
                                      util::Rng& /*rng*/) const {
  const core::TaskData& task = task_data(kind);
  const ConceptHeads& heads = HeadsOf(kind);
  tensor::Tensor total;

  // -- Local concept loss (LIL). ------------------------------------------
  const std::vector<std::pair<int, int>> chunks = Chunks(sample);
  if (!chunks.empty() && heads.local != nullptr) {
    std::vector<float> ref =
        task.multi_label
            ? NormalizeToDistribution(
                  tensor::SigmoidValues(final_logits.ToVector()))
            : tensor::SoftmaxValues(final_logits.ToVector());
    std::vector<tensor::Tensor> s_probs;
    std::vector<float> kls;
    for (const auto& [start, end] : chunks) {
      tensor::Tensor pooled =
          tensor::MeanRows(tensor::SliceRows(embeddings, start, end));
      tensor::Tensor t_j = tensor::Sub(cls, pooled);
      tensor::Tensor logits_j = heads.local->Forward(t_j);
      tensor::Tensor s_j = task.multi_label ? tensor::SigmoidOp(logits_j)
                                            : tensor::Softmax(logits_j);
      std::vector<float> dist = s_j.ToVector();
      if (task.multi_label) dist = NormalizeToDistribution(dist);
      kls.push_back(tensor::KlDivergence(dist, ref));
      s_probs.push_back(std::move(s_j));
    }
    float total_kl = 0.0f;
    for (float v : kls) total_kl += v;
    if (total_kl <= 0.0f) total_kl = 1.0f;
    tensor::Tensor mixed;
    for (size_t j = 0; j < s_probs.size(); ++j) {
      tensor::Tensor weighted = tensor::Scale(s_probs[j], kls[j] / total_kl);
      mixed = mixed.defined() ? tensor::Add(mixed, weighted) : weighted;
    }
    tensor::Tensor local_loss;
    if (task.multi_label) {
      std::vector<float> y(static_cast<size_t>(task.num_labels), 0.0f);
      for (int label : sample.labels) y[static_cast<size_t>(label)] = 1.0f;
      local_loss = tensor::BceFromProbs(mixed, y);
    } else {
      local_loss = tensor::NllFromProbs(mixed, sample.labels[0]);
    }
    total = tensor::Scale(local_loss, alpha_);
  }

  // -- Global interpretable layer loss (GIL). --------------------------------
  const StaticStore& store = StoreOf(kind);
  if (store.index.size() > 0 && heads.global != nullptr) {
    std::vector<ann::SearchResult> hits =
        store.index.Search(cls.ToVector(), top_k_ + 1);
    // Drop the self-hit during training.
    std::vector<const std::vector<float>*> retrieved;
    for (const ann::SearchResult& hit : hits) {
      if (static_cast<int>(hit.id) == sample.id &&
          task.IsTrainSample(sample.id)) {
        continue;
      }
      retrieved.push_back(&store.embeddings[static_cast<size_t>(hit.id)]);
      if (static_cast<int>(retrieved.size()) == top_k_) break;
    }
    if (!retrieved.empty()) {
      const int64_t d = cls.size();
      const int k = static_cast<int>(retrieved.size());
      std::vector<float> q(static_cast<size_t>(k) * d);
      for (int j = 0; j < k; ++j) {
        std::copy(retrieved[static_cast<size_t>(j)]->begin(),
                  retrieved[static_cast<size_t>(j)]->end(),
                  q.begin() + static_cast<int64_t>(j) * d);
      }
      tensor::Tensor q_matrix = tensor::Tensor::FromVector({k, d}, q);
      tensor::Tensor scores = tensor::MatMul(q_matrix, cls);
      tensor::Tensor weights = tensor::Softmax(scores);
      tensor::Tensor global_embedding = tensor::MatMul(weights, q_matrix);
      tensor::Tensor global_logits = heads.global->Forward(global_embedding);
      tensor::Tensor global_loss;
      if (task.multi_label) {
        std::vector<float> y(static_cast<size_t>(task.num_labels), 0.0f);
        for (int label : sample.labels) y[static_cast<size_t>(label)] = 1.0f;
        global_loss = tensor::BceWithLogitsLoss(global_logits, y);
      } else {
        global_loss =
            tensor::CrossEntropyLoss(global_logits, sample.labels[0]);
      }
      tensor::Tensor scaled = tensor::Scale(global_loss, beta_);
      total = total.defined() ? tensor::Add(total, scaled) : scaled;
    }
  }
  return total;
}

std::vector<tensor::Tensor> SelfExplain::ExtraParameters() const {
  std::vector<tensor::Tensor> params;
  for (const ConceptHeads* heads : {&type_heads_, &relation_heads_}) {
    for (const nn::ClassifierHead* head :
         {heads->local.get(), heads->global.get()}) {
      if (head == nullptr) continue;
      const auto p = head->Parameters();
      params.insert(params.end(), p.begin(), p.end());
    }
  }
  return params;
}

std::vector<std::string> SelfExplain::TopLocalChunks(core::TaskKind kind,
                                                     int sample_id,
                                                     int k) const {
  const core::TaskData& task = task_data(kind);
  const core::TaskSample& sample =
      task.samples[static_cast<size_t>(sample_id)];
  const ConceptHeads& heads = HeadsOf(kind);
  if (heads.local == nullptr) return {};

  util::Rng rng(1);
  tensor::Tensor embeddings =
      Encode(kind, sample_id, /*training=*/false, rng);
  tensor::Tensor cls = tensor::Row(embeddings, 0);
  std::vector<float> ref = Probabilities(kind, sample_id);
  if (task.multi_label) ref = NormalizeToDistribution(ref);

  const std::vector<std::pair<int, int>> chunks = Chunks(sample);
  std::vector<std::pair<float, size_t>> ranked;
  for (size_t j = 0; j < chunks.size(); ++j) {
    tensor::Tensor pooled = tensor::MeanRows(
        tensor::SliceRows(embeddings, chunks[j].first, chunks[j].second));
    tensor::Tensor logits_j =
        heads.local->Forward(tensor::Sub(cls, pooled));
    std::vector<float> dist =
        task.multi_label
            ? NormalizeToDistribution(
                  tensor::SigmoidValues(logits_j.ToVector()))
            : tensor::SoftmaxValues(logits_j.ToVector());
    ranked.emplace_back(tensor::KlDivergence(dist, ref), j);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<std::string> out;
  for (size_t i = 0; i < ranked.size() && static_cast<int>(i) < k; ++i) {
    const auto& [start, end] = chunks[ranked[i].second];
    std::vector<std::string> words;
    for (int t = start; t < end; ++t) {
      const std::string& token = sample.seq.tokens[static_cast<size_t>(t)];
      if (!token.empty() && token[0] == '[') continue;
      if (util::StartsWith(token, "##") && !words.empty()) {
        words.back() += token.substr(2);
      } else {
        words.push_back(token);
      }
    }
    out.push_back(util::Join(words, " "));
  }
  return out;
}

std::vector<int> SelfExplain::TopGlobalSamples(core::TaskKind kind,
                                               int sample_id, int k) const {
  const StaticStore& store = StoreOf(kind);
  std::vector<int> out;
  if (store.index.size() == 0) return out;
  const std::vector<float> cls = ClsEmbedding(kind, sample_id);
  for (const ann::SearchResult& hit : store.index.Search(cls, k + 1)) {
    if (hit.id == sample_id &&
        task_data(kind).IsTrainSample(sample_id)) {
      continue;
    }
    out.push_back(static_cast<int>(hit.id));
    if (static_cast<int>(out.size()) == k) break;
  }
  return out;
}

std::unique_ptr<SelfExplain> MakeSelfExplain(TransformerBaselineConfig config) {
  return std::make_unique<SelfExplain>(std::move(config));
}

}  // namespace explainti::baselines
