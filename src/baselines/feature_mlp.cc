#include "baselines/feature_mlp.h"

#include <algorithm>

#include "tensor/optimizer.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace explainti::baselines {

Mlp::Mlp(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, util::Rng& rng)
    : hidden_(in_dim, hidden_dim, rng), out_(hidden_dim, out_dim, rng) {
  AddChild(&hidden_);
  AddChild(&out_);
}

tensor::Tensor Mlp::Forward(const tensor::Tensor& x) const {
  return out_.Forward(tensor::Relu(hidden_.Forward(x)));
}

FeatureMlpInterpreter::FeatureMlpInterpreter(std::string name,
                                             FeatureMlpConfig config)
    : TableInterpreter(std::move(name)), config_(config) {}

std::vector<float> FeatureMlpInterpreter::TypeFeatures(
    const data::TableCorpus& corpus, const data::TypeSample& sample) const {
  const data::Table& table =
      corpus.tables[static_cast<size_t>(sample.table_index)];
  std::vector<float> features = extractor_.Extract(
      table.columns[static_cast<size_t>(sample.column_index)].cells);
  if (config_.use_table_topic) {
    const std::vector<float> topic =
        extractor_.TableTopic(table, config_.topic_dim);
    features.insert(features.end(), topic.begin(), topic.end());
  }
  return features;
}

std::vector<float> FeatureMlpInterpreter::RelationFeatures(
    const data::TableCorpus& corpus, const data::RelationSample& s) const {
  const data::Table& table = corpus.tables[static_cast<size_t>(s.table_index)];
  std::vector<float> features =
      extractor_.Extract(table.columns[static_cast<size_t>(s.left_column)].cells);
  const std::vector<float> right = extractor_.Extract(
      table.columns[static_cast<size_t>(s.right_column)].cells);
  features.insert(features.end(), right.begin(), right.end());
  if (config_.use_table_topic) {
    const std::vector<float> topic =
        extractor_.TableTopic(table, config_.topic_dim);
    features.insert(features.end(), topic.begin(), topic.end());
  }
  return features;
}

void FeatureMlpInterpreter::TrainMlp(
    Mlp* mlp, const std::vector<std::vector<float>>& features,
    const std::vector<std::vector<int>>& labels,
    const std::vector<int>& train_ids, int num_labels, bool multi_label,
    util::Rng& rng) {
  tensor::AdamWOptions adam_options;
  adam_options.learning_rate = config_.learning_rate;
  tensor::AdamW optimizer(mlp->Parameters(), adam_options);

  std::vector<int> order = train_ids;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    optimizer.ZeroGrad();
    int in_batch = 0;
    for (size_t i = 0; i < order.size(); ++i) {
      const size_t id = static_cast<size_t>(order[i]);
      tensor::Tensor x = tensor::Tensor::FromVector(
          {static_cast<int64_t>(features[id].size())}, features[id]);
      tensor::Tensor logits = mlp->Forward(x);
      tensor::Tensor loss;
      if (multi_label) {
        std::vector<float> y(static_cast<size_t>(num_labels), 0.0f);
        for (int label : labels[id]) y[static_cast<size_t>(label)] = 1.0f;
        loss = tensor::BceWithLogitsLoss(logits, y);
      } else {
        loss = tensor::CrossEntropyLoss(logits, labels[id][0]);
      }
      loss = tensor::Scale(loss, 1.0f / static_cast<float>(config_.batch_size));
      loss.Backward();
      ++in_batch;
      if (in_batch == config_.batch_size || i + 1 == order.size()) {
        optimizer.Step();
        optimizer.ZeroGrad();
        in_batch = 0;
      }
    }
  }
}

void FeatureMlpInterpreter::Fit(const data::TableCorpus& corpus) {
  util::Rng rng(config_.seed);
  type_multi_label_ = corpus.type_multi_label;
  num_type_labels_ = static_cast<int>(corpus.type_label_names.size());
  num_relation_labels_ =
      static_cast<int>(corpus.relation_label_names.size());

  // -- Type task. ---------------------------------------------------------
  type_features_.clear();
  std::vector<std::vector<int>> type_labels;
  for (const data::TypeSample& sample : corpus.type_samples) {
    type_features_.push_back(TypeFeatures(corpus, sample));
    type_labels.push_back(sample.labels);
  }
  type_mlp_ = std::make_unique<Mlp>(
      static_cast<int64_t>(type_features_[0].size()), config_.hidden_dim,
      num_type_labels_, rng);
  TrainMlp(type_mlp_.get(), type_features_, type_labels,
           corpus.TypeSampleIds(data::SplitPart::kTrain), num_type_labels_,
           type_multi_label_, rng);

  // -- Relation task (if annotated). ---------------------------------------
  relation_features_.clear();
  relation_mlp_.reset();
  if (!corpus.relation_samples.empty()) {
    std::vector<std::vector<int>> relation_labels;
    for (const data::RelationSample& sample : corpus.relation_samples) {
      relation_features_.push_back(RelationFeatures(corpus, sample));
      relation_labels.push_back({sample.label});
    }
    relation_mlp_ = std::make_unique<Mlp>(
        static_cast<int64_t>(relation_features_[0].size()),
        config_.hidden_dim, num_relation_labels_, rng);
    TrainMlp(relation_mlp_.get(), relation_features_, relation_labels,
             corpus.RelationSampleIds(data::SplitPart::kTrain),
             num_relation_labels_, /*multi_label=*/false, rng);
  }
}

bool FeatureMlpInterpreter::HasTask(core::TaskKind kind) const {
  return kind == core::TaskKind::kType ? type_mlp_ != nullptr
                                       : relation_mlp_ != nullptr;
}

std::vector<int> FeatureMlpInterpreter::Predict(core::TaskKind kind,
                                                int sample_id) const {
  const bool is_type = kind == core::TaskKind::kType;
  const auto& features = is_type ? type_features_ : relation_features_;
  const Mlp* mlp = is_type ? type_mlp_.get() : relation_mlp_.get();
  CHECK(mlp != nullptr);
  CHECK(sample_id >= 0 &&
        sample_id < static_cast<int>(features.size()));
  const auto& f = features[static_cast<size_t>(sample_id)];
  tensor::Tensor logits = mlp->Forward(
      tensor::Tensor::FromVector({static_cast<int64_t>(f.size())}, f));
  const std::vector<float> values = logits.ToVector();

  std::vector<int> out;
  if (is_type && type_multi_label_) {
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i] >= 0.0f) out.push_back(static_cast<int>(i));  // sigma>=.5
    }
    if (out.empty()) {
      out.push_back(static_cast<int>(
          std::max_element(values.begin(), values.end()) - values.begin()));
    }
  } else {
    out.push_back(static_cast<int>(
        std::max_element(values.begin(), values.end()) - values.begin()));
  }
  return out;
}

std::unique_ptr<TableInterpreter> MakeSherlock(uint64_t seed) {
  FeatureMlpConfig config;
  config.seed = seed;
  config.use_table_topic = false;
  return std::make_unique<FeatureMlpInterpreter>("Sherlock", config);
}

std::unique_ptr<TableInterpreter> MakeSato(uint64_t seed) {
  FeatureMlpConfig config;
  config.seed = seed;
  config.use_table_topic = true;
  return std::make_unique<FeatureMlpInterpreter>("Sato", config);
}

}  // namespace explainti::baselines
