#ifndef EXPLAINTI_BASELINES_COLUMN_FEATURES_H_
#define EXPLAINTI_BASELINES_COLUMN_FEATURES_H_

#include <string>
#include <vector>

#include "data/table.h"

namespace explainti::baselines {

/// Hand-crafted column features in the style of Sherlock (Hulsebos et al.,
/// KDD 2019): character distribution, value statistics, and a hashed
/// bag-of-tokens — computed from *cell values only* (no header, no title),
/// which is exactly why these baselines trail the transformer methods on
/// context-dependent types.
class ColumnFeatureExtractor {
 public:
  /// `hash_dim` buckets for the hashed token bag.
  explicit ColumnFeatureExtractor(int hash_dim = 96);

  /// Feature vector for one column's cells.
  std::vector<float> Extract(const std::vector<std::string>& cells) const;

  /// Table-level hashed bag-of-words over every cell in the table — the
  /// topic-model stand-in used by the Sato baseline (LDA substitute; see
  /// DESIGN.md).
  std::vector<float> TableTopic(const data::Table& table,
                                int topic_dim) const;

  /// Dimensionality of Extract() output.
  int dim() const;

 private:
  int hash_dim_;
};

}  // namespace explainti::baselines

#endif  // EXPLAINTI_BASELINES_COLUMN_FEATURES_H_
