#ifndef EXPLAINTI_BASELINES_SELF_EXPLAIN_H_
#define EXPLAINTI_BASELINES_SELF_EXPLAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "ann/flat_index.h"
#include "baselines/transformer_baseline.h"
#include "nn/heads.h"

namespace explainti::baselines {

/// SelfExplain (Rajagopal et al., EMNLP 2021) extended to tables, as the
/// paper does for its strongest explainable baseline.
///
/// Differences from ExplainTI that this implementation preserves:
///  - Local concepts are *parse-like fixed chunks*: the sequence is cut
///    into non-overlapping segments (tables have no syntax, so the
///    constituent parser degenerates to fixed segmentation — the paper's
///    Challenge I). ExplainTI's sliding windows strictly generalise this.
///  - The Global Interpretable Layer retrieves influential training
///    samples from a *static* embedding space built once after
///    pre-training and never refreshed, so retrieval is poorly aligned
///    with the fine-tuned label geometry (the cause of
///    SelfExplain-Global's low sufficiency in Table IV).
///  - No structural view.
class SelfExplain : public TransformerBaseline {
 public:
  SelfExplain(TransformerBaselineConfig config, float alpha = 0.1f,
              float beta = 0.1f, int chunk_size = 8, int top_k = 10);

  /// Top-`k` local concept chunks (texts) for a sample, most relevant
  /// first — the SelfExplain-Local explanations of Table IV.
  std::vector<std::string> TopLocalChunks(core::TaskKind kind, int sample_id,
                                          int k) const;

  /// Top-`k` influential training sample ids — SelfExplain-Global.
  std::vector<int> TopGlobalSamples(core::TaskKind kind, int sample_id,
                                    int k) const;

 protected:
  void OnModelBuilt(const data::TableCorpus& corpus, int64_t d_model,
                    util::Rng& rng) override;
  void PrepareContext(const data::TableCorpus& corpus) override;
  tensor::Tensor ExtraLoss(core::TaskKind kind,
                           const core::TaskSample& sample,
                           const tensor::Tensor& embeddings,
                           const tensor::Tensor& cls,
                           const tensor::Tensor& final_logits,
                           util::Rng& rng) const override;
  std::vector<tensor::Tensor> ExtraParameters() const override;

 private:
  struct ConceptHeads {
    std::unique_ptr<nn::ClassifierHead> local;
    std::unique_ptr<nn::ClassifierHead> global;
  };
  struct StaticStore {
    ann::FlatIndex index;
    std::vector<std::vector<float>> embeddings;  // By train id (dense map).
    std::vector<int> ids;
  };

  /// Chunk boundaries for a sequence (non-overlapping, content only).
  std::vector<std::pair<int, int>> Chunks(
      const core::TaskSample& sample) const;

  const ConceptHeads& HeadsOf(core::TaskKind kind) const;
  const StaticStore& StoreOf(core::TaskKind kind) const;

  float alpha_;
  float beta_;
  int chunk_size_;
  int top_k_;
  ConceptHeads type_heads_;
  ConceptHeads relation_heads_;
  StaticStore type_store_;
  StaticStore relation_store_;
};

std::unique_ptr<SelfExplain> MakeSelfExplain(TransformerBaselineConfig config);

}  // namespace explainti::baselines

#endif  // EXPLAINTI_BASELINES_SELF_EXPLAIN_H_
