#ifndef EXPLAINTI_BASELINES_TCN_H_
#define EXPLAINTI_BASELINES_TCN_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/transformer_baseline.h"

namespace explainti::baselines {

/// TCN (Wang et al., WWW 2021), scaled down: augments each sample's [CLS]
/// embedding with aggregated intra-table and inter-table context.
///
///  - intra-table: mean embedding of the *other* columns in the same table
///    (same-row/column connections collapsed to column level);
///  - inter-table: mean embedding of training columns at the *same column
///    position* in other tables (TCN's positional implicit connection).
///
/// The positional signal is informative on Web tables (consistent schema
/// layouts) and misleading on database tables (shuffled column order) —
/// the mechanism behind TCN's collapse on GitTable in Table III.
class Tcn : public TransformerBaseline {
 public:
  explicit Tcn(TransformerBaselineConfig config)
      : TransformerBaseline("TCN", std::move(config)) {}

 protected:
  void OnModelBuilt(const data::TableCorpus& corpus, int64_t d_model,
                    util::Rng& rng) override;
  void PrepareContext(const data::TableCorpus& corpus) override;
  int ContextDim(core::TaskKind kind) const override;
  std::vector<float> ContextFeatures(core::TaskKind kind,
                                     int sample_id) const override;

 private:
  struct TaskContext {
    /// Post-pre-training [CLS] embedding per sample.
    std::vector<std::vector<float>> embeddings;
    /// sample -> other samples in the same table.
    std::vector<std::vector<int>> intra;
    /// sample -> training samples at the same column position elsewhere.
    std::vector<std::vector<int>> inter;
  };

  std::vector<float> MeanEmbedding(const TaskContext& context,
                                   const std::vector<int>& ids) const;

  int64_t d_model_ = 0;
  TaskContext type_context_;
  TaskContext relation_context_;
};

std::unique_ptr<TransformerBaseline> MakeTcn(TransformerBaselineConfig config);

}  // namespace explainti::baselines

#endif  // EXPLAINTI_BASELINES_TCN_H_
