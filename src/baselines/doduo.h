#ifndef EXPLAINTI_BASELINES_DODUO_H_
#define EXPLAINTI_BASELINES_DODUO_H_

#include <memory>

#include "baselines/transformer_baseline.h"

namespace explainti::baselines {

/// Doduo (Suhara et al., SIGMOD 2022): a single pre-trained language model
/// fine-tuned multi-task on column type and relation prediction over the
/// plain column serialisation S(c) — exactly the TransformerBaseline
/// defaults. Doduo is also the "Base" of the paper's efficiency analysis
/// (Table V) and the host model for the post-hoc Saliency/Influence
/// baselines (Table IV).
class Doduo : public TransformerBaseline {
 public:
  explicit Doduo(TransformerBaselineConfig config)
      : TransformerBaseline("Doduo", std::move(config)) {}
};

std::unique_ptr<TransformerBaseline> MakeDoduo(
    TransformerBaselineConfig config);

}  // namespace explainti::baselines

#endif  // EXPLAINTI_BASELINES_DODUO_H_
