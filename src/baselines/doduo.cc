#include "baselines/doduo.h"

namespace explainti::baselines {

std::unique_ptr<TransformerBaseline> MakeDoduo(
    TransformerBaselineConfig config) {
  return std::make_unique<Doduo>(std::move(config));
}

}  // namespace explainti::baselines
