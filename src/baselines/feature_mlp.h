#ifndef EXPLAINTI_BASELINES_FEATURE_MLP_H_
#define EXPLAINTI_BASELINES_FEATURE_MLP_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/column_features.h"
#include "baselines/table_interpreter.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "util/rng.h"

namespace explainti::baselines {

/// Configuration shared by the feature-based baselines.
struct FeatureMlpConfig {
  int hidden_dim = 64;
  int epochs = 30;
  float learning_rate = 1e-3f;
  int batch_size = 16;
  uint64_t seed = 21;
  /// Sato = Sherlock + table-level topic features.
  bool use_table_topic = false;
  int topic_dim = 64;
};

/// Two-layer MLP classifier head used by Sherlock and Sato.
class Mlp : public nn::Module {
 public:
  Mlp(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, util::Rng& rng);
  tensor::Tensor Forward(const tensor::Tensor& x) const;

 private:
  nn::Linear hidden_;
  nn::Linear out_;
};

/// Feature-engineering baseline family:
///  - Sherlock [37]: per-column hand-crafted features -> MLP.
///  - Sato [10]: Sherlock plus table-level topic features, giving it crude
///    table context (its edge over Sherlock in Table III).
/// Relation prediction concatenates the two columns' features, following
/// the paper's adaptation of these type-only systems.
class FeatureMlpInterpreter : public TableInterpreter {
 public:
  FeatureMlpInterpreter(std::string name, FeatureMlpConfig config);

  void Fit(const data::TableCorpus& corpus) override;
  bool HasTask(core::TaskKind kind) const override;
  std::vector<int> Predict(core::TaskKind kind, int sample_id) const override;

 private:
  std::vector<float> TypeFeatures(const data::TableCorpus& corpus,
                                  const data::TypeSample& sample) const;
  std::vector<float> RelationFeatures(const data::TableCorpus& corpus,
                                      const data::RelationSample& s) const;

  void TrainMlp(Mlp* mlp, const std::vector<std::vector<float>>& features,
                const std::vector<std::vector<int>>& labels,
                const std::vector<int>& train_ids, int num_labels,
                bool multi_label, util::Rng& rng);

  FeatureMlpConfig config_;
  ColumnFeatureExtractor extractor_;

  bool type_multi_label_ = false;
  int num_type_labels_ = 0;
  int num_relation_labels_ = 0;
  std::vector<std::vector<float>> type_features_;
  std::vector<std::vector<float>> relation_features_;
  std::unique_ptr<Mlp> type_mlp_;
  std::unique_ptr<Mlp> relation_mlp_;
};

/// Factories for the two published systems.
std::unique_ptr<TableInterpreter> MakeSherlock(uint64_t seed);
std::unique_ptr<TableInterpreter> MakeSato(uint64_t seed);

}  // namespace explainti::baselines

#endif  // EXPLAINTI_BASELINES_FEATURE_MLP_H_
