#include "baselines/table_interpreter.h"

#include "util/logging.h"

namespace explainti::baselines {

eval::F1Scores EvaluateInterpreter(const TableInterpreter& interpreter,
                                   const data::TableCorpus& corpus,
                                   core::TaskKind kind,
                                   data::SplitPart part) {
  CHECK(interpreter.HasTask(kind))
      << interpreter.name() << " does not support task "
      << core::TaskKindName(kind);
  std::vector<int> ids = kind == core::TaskKind::kType
                             ? corpus.TypeSampleIds(part)
                             : corpus.RelationSampleIds(part);
  const int num_labels =
      kind == core::TaskKind::kType
          ? static_cast<int>(corpus.type_label_names.size())
          : static_cast<int>(corpus.relation_label_names.size());

  std::vector<eval::LabeledPrediction> predictions;
  predictions.reserve(ids.size());
  for (int id : ids) {
    eval::LabeledPrediction p;
    p.gold = kind == core::TaskKind::kType
                 ? corpus.type_samples[static_cast<size_t>(id)].labels
                 : std::vector<int>{
                       corpus.relation_samples[static_cast<size_t>(id)].label};
    p.predicted = interpreter.Predict(kind, id);
    predictions.push_back(std::move(p));
  }
  return eval::ComputeF1(predictions, num_labels);
}

}  // namespace explainti::baselines
