#include "baselines/turl.h"

#include "text/vocab.h"
#include "util/logging.h"

namespace explainti::baselines {

text::EncodedSequence Turl::SerializeType(
    const data::TableCorpus& corpus, const data::TypeSample& sample) const {
  const data::Table& table =
      corpus.tables[static_cast<size_t>(sample.table_index)];
  const data::Column& target =
      table.columns[static_cast<size_t>(sample.column_index)];

  text::SequenceBuilder builder(&tokenizer(), max_seq_len());
  builder.AddSpecial(text::SpecialTokens::kCls, 0);
  builder.AddText("title " + table.title, 0);
  builder.AddSpecial(text::SpecialTokens::kSep, 0);
  // Structural context: every column header.
  for (const data::Column& column : table.columns) {
    builder.AddText("header " + column.header, 0);
  }
  builder.AddSpecial(text::SpecialTokens::kSep, 0);
  builder.AddText("cell", 1);
  for (const std::string& cell : target.cells) {
    if (builder.Remaining() <= 0) break;
    builder.AddText(cell, 1);
  }
  return builder.Build();
}

text::EncodedSequence Turl::SerializeRelation(
    const data::TableCorpus& corpus,
    const data::RelationSample& sample) const {
  const data::Table& table =
      corpus.tables[static_cast<size_t>(sample.table_index)];
  const data::Column& left =
      table.columns[static_cast<size_t>(sample.left_column)];
  const data::Column& right =
      table.columns[static_cast<size_t>(sample.right_column)];

  text::SequenceBuilder builder(&tokenizer(), max_seq_len());
  builder.AddSpecial(text::SpecialTokens::kCls, 0);
  builder.AddText("title " + table.title, 0);
  builder.AddSpecial(text::SpecialTokens::kSep, 0);
  for (const data::Column& column : table.columns) {
    builder.AddText("header " + column.header, 0);
  }
  builder.AddSpecial(text::SpecialTokens::kSep, 0);
  builder.AddText("cell " + left.header, 1);
  for (size_t r = 0; r < left.cells.size() && builder.Remaining() > 8; ++r) {
    builder.AddText(left.cells[r], 1);
  }
  builder.AddText("cell " + right.header, 1);
  for (size_t r = 0; r < right.cells.size() && builder.Remaining() > 0; ++r) {
    builder.AddText(right.cells[r], 1);
  }
  return builder.Build();
}

tensor::Tensor Turl::AttentionMask(core::TaskKind /*kind*/,
                                   const core::TaskSample& sample) const {
  // Regions delimited by the first two [SEP] tokens:
  //   hub    = [0 .. sep1]      ([CLS] + title)
  //   header = (sep1 .. sep2]   (column headers)
  //   cells  = (sep2 .. L)      (target column values)
  const int64_t len = static_cast<int64_t>(sample.seq.ids.size());
  int sep1 = -1;
  int sep2 = -1;
  for (int64_t i = 0; i < len; ++i) {
    if (sample.seq.ids[static_cast<size_t>(i)] == text::SpecialTokens::kSep) {
      if (sep1 < 0) {
        sep1 = static_cast<int>(i);
      } else {
        sep2 = static_cast<int>(i);
        break;
      }
    }
  }
  if (sep1 < 0 || sep2 < 0) return tensor::Tensor();  // Degenerate: no mask.

  constexpr float kBlocked = -1e9f;
  std::vector<float> mask(static_cast<size_t>(len * len), 0.0f);
  auto region = [&](int64_t i) {
    if (i <= sep1) return 0;  // hub
    if (i <= sep2) return 1;  // headers
    return 2;                 // cells
  };
  for (int64_t i = 0; i < len; ++i) {
    for (int64_t j = 0; j < len; ++j) {
      const int ri = region(i);
      const int rj = region(j);
      const bool allowed =
          ri == 0 || rj == 0 || ri == rj;  // Hub is globally visible.
      if (!allowed) mask[static_cast<size_t>(i * len + j)] = kBlocked;
    }
  }
  return tensor::Tensor::FromVector({len, len}, mask);
}

std::unique_ptr<TransformerBaseline> MakeTurl(
    TransformerBaselineConfig config) {
  return std::make_unique<Turl>(std::move(config));
}

}  // namespace explainti::baselines
