#ifndef EXPLAINTI_BASELINES_TURL_H_
#define EXPLAINTI_BASELINES_TURL_H_

#include <memory>

#include "baselines/transformer_baseline.h"

namespace explainti::baselines {

/// TURL (Deng et al., VLDB 2020), scaled down: a structure-aware encoder.
/// The serialisation carries the table's structural context (title + all
/// column headers) before the target column, and a *visibility matrix*
/// restricts attention the way TURL's masked self-attention does:
///   - the [CLS]/title region attends everywhere (global hub);
///   - the header region attends to the hub and itself;
///   - target-column cells attend to the hub and themselves, but not to
///     other columns' headers directly.
class Turl : public TransformerBaseline {
 public:
  explicit Turl(TransformerBaselineConfig config)
      : TransformerBaseline("TURL", std::move(config)) {}

 protected:
  text::EncodedSequence SerializeType(
      const data::TableCorpus& corpus,
      const data::TypeSample& sample) const override;

  text::EncodedSequence SerializeRelation(
      const data::TableCorpus& corpus,
      const data::RelationSample& sample) const override;

  tensor::Tensor AttentionMask(core::TaskKind kind,
                               const core::TaskSample& sample) const override;
};

std::unique_ptr<TransformerBaseline> MakeTurl(
    TransformerBaselineConfig config);

}  // namespace explainti::baselines

#endif  // EXPLAINTI_BASELINES_TURL_H_
