#ifndef EXPLAINTI_BASELINES_POSTHOC_H_
#define EXPLAINTI_BASELINES_POSTHOC_H_

#include <string>
#include <vector>

#include "baselines/transformer_baseline.h"

namespace explainti::baselines {

/// Saliency-map explanation (Simonyan et al., ICLR 2014): the top-k input
/// tokens ranked by the gradient-times-input norm with respect to the
/// model's predicted class. Post-hoc — applied to an already-trained
/// transformer interpreter (Doduo in our Table IV setup).
std::vector<std::string> SaliencyExplanation(const TransformerBaseline& model,
                                             core::TaskKind kind,
                                             int sample_id, int k);

/// Influence Functions (Koh & Liang; applied to NLP by Han et al., ACL
/// 2020) with the standard tractable simplification: identity Hessian and
/// final-classifier-layer gradients only, so that
///   influence(z_train, z_test) = <grad_W L(z_test), grad_W L(z_train)>
///                              = ((p_te - y_te) . (p_tr - y_tr))
///                                * (cls_te . cls_tr).
/// Training-sample gradient factors are precomputed once.
class InfluenceFunctions {
 public:
  InfluenceFunctions(const TransformerBaseline& model, core::TaskKind kind);

  /// Training-sample ids ranked by influence alignment, most influential
  /// first.
  std::vector<int> TopInfluential(int sample_id, int k) const;

  /// Serialised text of a training sample (for FRESH probes and display).
  std::string ExplanationText(int train_id) const;

 private:
  const TransformerBaseline& model_;
  core::TaskKind kind_;
  std::vector<int> train_ids_;
  std::vector<std::vector<float>> train_cls_;
  std::vector<std::vector<float>> train_residual_;  // p - y per train sample.
};

}  // namespace explainti::baselines

#endif  // EXPLAINTI_BASELINES_POSTHOC_H_
