#include "baselines/tcn.h"

#include <unordered_map>

#include "util/logging.h"
#include "util/rng.h"

namespace explainti::baselines {

namespace {
constexpr int kMaxInterNeighbors = 16;
}  // namespace

void Tcn::OnModelBuilt(const data::TableCorpus& /*corpus*/, int64_t d_model,
                       util::Rng& /*rng*/) {
  // ContextDim is consulted when the classification heads are sized, which
  // happens before PrepareContext runs; record the width here.
  d_model_ = d_model;
}

void Tcn::PrepareContext(const data::TableCorpus& corpus) {
  util::Rng rng(config().seed + 77);

  // -- Type task context. ------------------------------------------------
  {
    const core::TaskData& task = task_data(core::TaskKind::kType);
    TaskContext& context = type_context_;
    context.embeddings.resize(task.samples.size());
    context.intra.assign(task.samples.size(), {});
    context.inter.assign(task.samples.size(), {});
    for (size_t i = 0; i < task.samples.size(); ++i) {
      context.embeddings[i] = ClsEmbedding(core::TaskKind::kType,
                                           static_cast<int>(i));
    }
    // Group samples by table (intra) and by column position (inter).
    std::unordered_map<int, std::vector<int>> by_table;
    std::unordered_map<int, std::vector<int>> by_position;
    for (size_t i = 0; i < corpus.type_samples.size(); ++i) {
      const data::TypeSample& s = corpus.type_samples[i];
      by_table[s.table_index].push_back(static_cast<int>(i));
      if (task.IsTrainSample(static_cast<int>(i))) {
        by_position[s.column_index].push_back(static_cast<int>(i));
      }
    }
    for (size_t i = 0; i < corpus.type_samples.size(); ++i) {
      const data::TypeSample& s = corpus.type_samples[i];
      for (int other : by_table[s.table_index]) {
        if (other != static_cast<int>(i)) context.intra[i].push_back(other);
      }
      const auto& positional = by_position[s.column_index];
      std::vector<int> candidates;
      for (int other : positional) {
        if (corpus.type_samples[static_cast<size_t>(other)].table_index !=
            s.table_index) {
          candidates.push_back(other);
        }
      }
      if (static_cast<int>(candidates.size()) > kMaxInterNeighbors) {
        rng.Shuffle(candidates);
        candidates.resize(kMaxInterNeighbors);
      }
      context.inter[i] = std::move(candidates);
    }
  }

  // -- Relation task context. -----------------------------------------------
  if (HasTask(core::TaskKind::kRelation)) {
    const core::TaskData& task = task_data(core::TaskKind::kRelation);
    TaskContext& context = relation_context_;
    context.embeddings.resize(task.samples.size());
    context.intra.assign(task.samples.size(), {});
    context.inter.assign(task.samples.size(), {});
    for (size_t i = 0; i < task.samples.size(); ++i) {
      context.embeddings[i] = ClsEmbedding(core::TaskKind::kRelation,
                                           static_cast<int>(i));
    }
    std::unordered_map<int, std::vector<int>> by_table;
    std::unordered_map<int64_t, std::vector<int>> by_position;
    for (size_t i = 0; i < corpus.relation_samples.size(); ++i) {
      const data::RelationSample& s = corpus.relation_samples[i];
      by_table[s.table_index].push_back(static_cast<int>(i));
      if (task.IsTrainSample(static_cast<int>(i))) {
        const int64_t key = static_cast<int64_t>(s.left_column) * 1000 +
                            s.right_column;
        by_position[key].push_back(static_cast<int>(i));
      }
    }
    for (size_t i = 0; i < corpus.relation_samples.size(); ++i) {
      const data::RelationSample& s = corpus.relation_samples[i];
      for (int other : by_table[s.table_index]) {
        if (other != static_cast<int>(i)) context.intra[i].push_back(other);
      }
      const int64_t key =
          static_cast<int64_t>(s.left_column) * 1000 + s.right_column;
      std::vector<int> candidates;
      for (int other : by_position[key]) {
        if (corpus.relation_samples[static_cast<size_t>(other)].table_index !=
            s.table_index) {
          candidates.push_back(other);
        }
      }
      if (static_cast<int>(candidates.size()) > kMaxInterNeighbors) {
        rng.Shuffle(candidates);
        candidates.resize(kMaxInterNeighbors);
      }
      context.inter[i] = std::move(candidates);
    }
  }
}

int Tcn::ContextDim(core::TaskKind /*kind*/) const {
  return static_cast<int>(2 * d_model_);
}

std::vector<float> Tcn::MeanEmbedding(const TaskContext& context,
                                      const std::vector<int>& ids) const {
  std::vector<float> mean(static_cast<size_t>(d_model_), 0.0f);
  if (ids.empty()) return mean;
  for (int id : ids) {
    const std::vector<float>& e = context.embeddings[static_cast<size_t>(id)];
    for (int64_t j = 0; j < d_model_; ++j) {
      mean[static_cast<size_t>(j)] += e[static_cast<size_t>(j)];
    }
  }
  const float inv = 1.0f / static_cast<float>(ids.size());
  for (float& v : mean) v *= inv;
  return mean;
}

std::vector<float> Tcn::ContextFeatures(core::TaskKind kind,
                                        int sample_id) const {
  const TaskContext& context =
      kind == core::TaskKind::kType ? type_context_ : relation_context_;
  CHECK(!context.embeddings.empty())
      << "TCN context queried before PrepareContext";
  std::vector<float> features =
      MeanEmbedding(context, context.intra[static_cast<size_t>(sample_id)]);
  const std::vector<float> inter =
      MeanEmbedding(context, context.inter[static_cast<size_t>(sample_id)]);
  features.insert(features.end(), inter.begin(), inter.end());
  return features;
}

std::unique_ptr<TransformerBaseline> MakeTcn(TransformerBaselineConfig config) {
  return std::make_unique<Tcn>(std::move(config));
}

}  // namespace explainti::baselines
