#ifndef EXPLAINTI_BASELINES_TABERT_H_
#define EXPLAINTI_BASELINES_TABERT_H_

#include <memory>

#include "baselines/transformer_baseline.h"

namespace explainti::baselines {

/// TaBERT (Yin et al., ACL 2020), scaled down: the table is linearised as
/// a *content snapshot* — the headers of every column plus a single
/// representative row — followed by the target column's header. Seeing one
/// row instead of the column's value distribution is what puts TaBERT
/// below the column-serialisation methods in Table III.
class TaBert : public TransformerBaseline {
 public:
  explicit TaBert(TransformerBaselineConfig config)
      : TransformerBaseline("TaBERT", std::move(config)) {}

 protected:
  text::EncodedSequence SerializeType(
      const data::TableCorpus& corpus,
      const data::TypeSample& sample) const override;

  text::EncodedSequence SerializeRelation(
      const data::TableCorpus& corpus,
      const data::RelationSample& sample) const override;
};

std::unique_ptr<TransformerBaseline> MakeTaBert(
    TransformerBaselineConfig config);

}  // namespace explainti::baselines

#endif  // EXPLAINTI_BASELINES_TABERT_H_
