#include "baselines/column_features.h"

#include <cctype>
#include <cmath>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/hash.h"
#include "util/logging.h"

namespace explainti::baselines {

namespace {

constexpr char kCharset[] = "abcdefghijklmnopqrstuvwxyz0123456789";
constexpr int kCharsetSize = 36;
constexpr int kStatsSize = 9;

}  // namespace

ColumnFeatureExtractor::ColumnFeatureExtractor(int hash_dim)
    : hash_dim_(hash_dim) {
  CHECK_GT(hash_dim, 0);
}

int ColumnFeatureExtractor::dim() const {
  return kCharsetSize + 1 + kStatsSize + hash_dim_;
}

std::vector<float> ColumnFeatureExtractor::Extract(
    const std::vector<std::string>& cells) const {
  std::vector<float> features(static_cast<size_t>(dim()), 0.0f);
  if (cells.empty()) return features;

  // -- Character distribution (kCharsetSize + 1 "other" bucket). ---------
  int64_t char_total = 0;
  for (const std::string& cell : cells) {
    for (char raw : cell) {
      const char c =
          static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
      ++char_total;
      bool matched = false;
      for (int i = 0; i < kCharsetSize; ++i) {
        if (kCharset[i] == c) {
          features[static_cast<size_t>(i)] += 1.0f;
          matched = true;
          break;
        }
      }
      if (!matched) features[kCharsetSize] += 1.0f;
    }
  }
  if (char_total > 0) {
    for (int i = 0; i <= kCharsetSize; ++i) {
      features[static_cast<size_t>(i)] /= static_cast<float>(char_total);
    }
  }

  // -- Value statistics. ---------------------------------------------------
  const size_t stats_base = kCharsetSize + 1;
  double len_sum = 0.0;
  double len_sq_sum = 0.0;
  double word_sum = 0.0;
  int numeric = 0;
  int alphabetic = 0;
  size_t max_len = 0;
  size_t min_len = cells[0].size();
  std::unordered_set<std::string> distinct;
  for (const std::string& cell : cells) {
    len_sum += static_cast<double>(cell.size());
    len_sq_sum += static_cast<double>(cell.size()) * cell.size();
    word_sum += static_cast<double>(text::BasicTokenize(cell).size());
    bool all_digit = !cell.empty();
    bool any_alpha = false;
    for (char c : cell) {
      if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
          c != '-') {
        all_digit = false;
      }
      if (std::isalpha(static_cast<unsigned char>(c))) any_alpha = true;
    }
    if (all_digit) ++numeric;
    if (any_alpha) ++alphabetic;
    max_len = std::max(max_len, cell.size());
    min_len = std::min(min_len, cell.size());
    distinct.insert(cell);
  }
  const double n = static_cast<double>(cells.size());
  const double mean_len = len_sum / n;
  const double var_len = std::max(0.0, len_sq_sum / n - mean_len * mean_len);
  features[stats_base + 0] = static_cast<float>(mean_len / 32.0);
  features[stats_base + 1] = static_cast<float>(std::sqrt(var_len) / 16.0);
  features[stats_base + 2] = static_cast<float>(word_sum / n / 8.0);
  features[stats_base + 3] = static_cast<float>(numeric / n);
  features[stats_base + 4] = static_cast<float>(alphabetic / n);
  features[stats_base + 5] =
      static_cast<float>(static_cast<double>(distinct.size()) / n);
  features[stats_base + 6] = static_cast<float>(max_len) / 64.0f;
  features[stats_base + 7] = static_cast<float>(min_len) / 64.0f;
  features[stats_base + 8] = static_cast<float>(std::log1p(n) / 6.0);

  // -- Hashed token bag. --------------------------------------------------------
  const size_t hash_base = stats_base + kStatsSize;
  int64_t token_total = 0;
  for (const std::string& cell : cells) {
    for (const std::string& token : text::BasicTokenize(cell)) {
      const size_t bucket =
          static_cast<size_t>(util::HashTokenFeature(token) % hash_dim_);
      features[hash_base + bucket] += 1.0f;
      ++token_total;
    }
  }
  if (token_total > 0) {
    for (int i = 0; i < hash_dim_; ++i) {
      features[hash_base + static_cast<size_t>(i)] /=
          static_cast<float>(token_total);
    }
  }
  return features;
}

std::vector<float> ColumnFeatureExtractor::TableTopic(const data::Table& table,
                                                      int topic_dim) const {
  CHECK_GT(topic_dim, 0);
  std::vector<float> topic(static_cast<size_t>(topic_dim), 0.0f);
  int64_t total = 0;
  auto add_text = [&](const std::string& textual) {
    for (const std::string& token : text::BasicTokenize(textual)) {
      topic[static_cast<size_t>(util::HashTokenFeature(token) % topic_dim)] += 1.0f;
      ++total;
    }
  };
  add_text(table.title);
  for (const data::Column& column : table.columns) {
    add_text(column.header);
    for (const std::string& cell : column.cells) add_text(cell);
  }
  if (total > 0) {
    for (float& v : topic) v /= static_cast<float>(total);
  }
  return topic;
}

}  // namespace explainti::baselines
