#include "baselines/posthoc.h"

#include <algorithm>

#include "util/logging.h"

namespace explainti::baselines {

std::vector<std::string> SaliencyExplanation(const TransformerBaseline& model,
                                             core::TaskKind kind,
                                             int sample_id, int k) {
  const core::TaskData& task = model.task_data(kind);
  const core::TaskSample& sample =
      task.samples[static_cast<size_t>(sample_id)];
  const std::vector<float> scores = model.TokenSaliency(kind, sample_id);

  std::vector<std::pair<float, size_t>> ranked;
  for (size_t i = 0; i < scores.size(); ++i) {
    const std::string& token = sample.seq.tokens[i];
    if (!token.empty() && token[0] == '[') continue;  // Skip specials.
    ranked.emplace_back(scores[i], i);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<std::string> out;
  for (size_t i = 0; i < ranked.size() && static_cast<int>(i) < k; ++i) {
    out.push_back(sample.seq.tokens[ranked[i].second]);
  }
  return out;
}

InfluenceFunctions::InfluenceFunctions(const TransformerBaseline& model,
                                       core::TaskKind kind)
    : model_(model), kind_(kind) {
  const core::TaskData& task = model.task_data(kind);
  train_ids_ = task.train_ids;
  train_cls_.reserve(train_ids_.size());
  train_residual_.reserve(train_ids_.size());
  for (int id : train_ids_) {
    train_cls_.push_back(model.ClsEmbedding(kind, id));
    std::vector<float> residual = model.Probabilities(kind, id);
    for (int label : task.samples[static_cast<size_t>(id)].labels) {
      residual[static_cast<size_t>(label)] -= 1.0f;
    }
    train_residual_.push_back(std::move(residual));
  }
}

std::vector<int> InfluenceFunctions::TopInfluential(int sample_id,
                                                    int k) const {
  const core::TaskData& task = model_.task_data(kind_);
  const std::vector<float> cls = model_.ClsEmbedding(kind_, sample_id);
  std::vector<float> residual = model_.Probabilities(kind_, sample_id);
  // Pseudo-label the query with its own prediction (test labels unknown).
  const int predicted = static_cast<int>(
      std::max_element(residual.begin(), residual.end()) - residual.begin());
  residual[static_cast<size_t>(predicted)] -= 1.0f;

  std::vector<std::pair<float, int>> ranked;
  ranked.reserve(train_ids_.size());
  for (size_t i = 0; i < train_ids_.size(); ++i) {
    if (train_ids_[i] == sample_id && task.IsTrainSample(sample_id)) continue;
    double residual_dot = 0.0;
    for (size_t c = 0; c < residual.size(); ++c) {
      residual_dot += static_cast<double>(residual[c]) * train_residual_[i][c];
    }
    double cls_dot = 0.0;
    for (size_t d = 0; d < cls.size(); ++d) {
      cls_dot += static_cast<double>(cls[d]) * train_cls_[i][d];
    }
    ranked.emplace_back(static_cast<float>(residual_dot * cls_dot),
                        train_ids_[i]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<int> out;
  for (size_t i = 0; i < ranked.size() && static_cast<int>(i) < k; ++i) {
    out.push_back(ranked[i].second);
  }
  return out;
}

std::string InfluenceFunctions::ExplanationText(int train_id) const {
  return model_.task_data(kind_).SampleText(train_id);
}

}  // namespace explainti::baselines
