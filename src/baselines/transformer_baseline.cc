#include "baselines/transformer_baseline.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "nn/pretrain.h"
#include "tensor/optimizer.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace explainti::baselines {

TransformerBaseline::TransformerBaseline(std::string name,
                                         TransformerBaselineConfig config)
    : TableInterpreter(std::move(name)), config_(config) {}

text::EncodedSequence TransformerBaseline::SerializeType(
    const data::TableCorpus& corpus, const data::TypeSample& sample) const {
  return serializer_->SerializeColumn(corpus.ColumnTextOf(sample));
}

text::EncodedSequence TransformerBaseline::SerializeRelation(
    const data::TableCorpus& corpus, const data::RelationSample& s) const {
  return serializer_->SerializePair(
      corpus.ColumnTextOf(s.table_index, s.left_column),
      corpus.ColumnTextOf(s.table_index, s.right_column));
}

void TransformerBaseline::Fit(const data::TableCorpus& corpus) {
  corpus_ = &corpus;
  util::Rng init_rng(config_.seed);

  // -- Vocabulary from the training tables. ------------------------------
  std::unordered_map<std::string, int64_t> counts;
  auto count_text = [&counts](const std::string& textual) {
    for (const std::string& token : text::BasicTokenize(textual)) {
      ++counts[token];
    }
  };
  for (const char* marker : {"title", "header", "cell", "row"}) {
    counts[marker] += 1000;
  }
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    if (corpus.table_split[t] != data::SplitPart::kTrain) continue;
    const data::Table& table = corpus.tables[t];
    count_text(table.title);
    for (const data::Column& column : table.columns) {
      count_text(column.header);
      for (const std::string& cell : column.cells) count_text(cell);
    }
  }
  vocab_ = std::make_shared<text::Vocab>(
      text::BuildVocab(counts, /*max_size=*/4000, /*min_count=*/2));
  tokenizer_ = text::MakeTokenizer(config_.base_model, vocab_);
  serializer_ = std::make_unique<text::SequenceSerializer>(
      tokenizer_.get(), config_.max_seq_len);

  // -- Encoder. -------------------------------------------------------------
  nn::TransformerConfig encoder_config = nn::TransformerConfig::ForBaseModel(
      config_.base_model, vocab_->size());
  encoder_config.max_len = config_.max_seq_len;
  encoder_ =
      std::make_unique<nn::TransformerEncoder>(encoder_config, init_rng);
  const int64_t d = encoder_config.d_model;
  OnModelBuilt(corpus, d, init_rng);

  // -- Serialise tasks through the subclass hooks. -------------------------
  type_state_.emplace();
  type_state_->data = core::BuildTypeTaskData(corpus, *serializer_);
  for (size_t i = 0; i < corpus.type_samples.size(); ++i) {
    type_state_->data.samples[i].seq =
        SerializeType(corpus, corpus.type_samples[i]);
  }
  type_state_->head = std::make_unique<nn::ClassifierHead>(
      d + ContextDim(core::TaskKind::kType), type_state_->data.num_labels,
      init_rng);

  if (SupportsRelation() && !corpus.relation_samples.empty()) {
    relation_state_.emplace();
    relation_state_->data = core::BuildRelationTaskData(corpus, *serializer_);
    for (size_t i = 0; i < corpus.relation_samples.size(); ++i) {
      relation_state_->data.samples[i].seq =
          SerializeRelation(corpus, corpus.relation_samples[i]);
    }
    relation_state_->head = std::make_unique<nn::ClassifierHead>(
        d + ContextDim(core::TaskKind::kRelation),
        relation_state_->data.num_labels, init_rng);
  }

  // -- MLM pre-training on training sequences. ------------------------------
  {
    std::vector<std::vector<int>> id_seqs;
    std::vector<std::vector<int>> segment_seqs;
    for (const TaskState* state :
         {type_state_ ? &*type_state_ : nullptr,
          relation_state_ ? &*relation_state_ : nullptr}) {
      if (state == nullptr) continue;
      for (int id : state->data.train_ids) {
        id_seqs.push_back(state->data.samples[static_cast<size_t>(id)].seq.ids);
        segment_seqs.push_back(
            state->data.samples[static_cast<size_t>(id)].seq.segments);
      }
    }
    nn::MlmPretrainOptions options;
    options.epochs = config_.pretrain_epochs;
    options.learning_rate = config_.pretrain_learning_rate;
    options.dynamic_masking = config_.base_model == "roberta";
    options.seed = config_.seed + 1;
    nn::PretrainMlm(encoder_.get(), id_seqs, segment_seqs, options);
  }

  PrepareContext(corpus);

  // -- Fine-tuning (multi-task, epoch switching like Doduo). -----------------
  std::vector<tensor::Tensor> params = encoder_->Parameters();
  for (const TaskState* state :
       {type_state_ ? &*type_state_ : nullptr,
        relation_state_ ? &*relation_state_ : nullptr}) {
    if (state == nullptr) continue;
    const auto head_params = state->head->Parameters();
    params.insert(params.end(), head_params.begin(), head_params.end());
  }
  const auto extra = ExtraParameters();
  params.insert(params.end(), extra.begin(), extra.end());

  tensor::AdamWOptions adam_options;
  adam_options.learning_rate = config_.learning_rate;
  tensor::AdamW optimizer(params, adam_options);

  std::vector<core::TaskKind> tasks = {core::TaskKind::kType};
  if (relation_state_) tasks.push_back(core::TaskKind::kRelation);
  int64_t steps_per_epoch = 0;
  for (core::TaskKind kind : tasks) {
    const int64_t n =
        static_cast<int64_t>(State(kind).data.train_ids.size());
    steps_per_epoch += (n + config_.batch_size - 1) / config_.batch_size;
  }
  tensor::LinearSchedule schedule(
      config_.learning_rate, steps_per_epoch * config_.epochs,
      /*warmup_steps=*/steps_per_epoch * config_.epochs / 10);

  util::Rng train_rng(config_.seed + 2);
  util::Rng order_rng(config_.seed + 3);
  int64_t step = 0;

  float best_valid = -1.0f;
  std::vector<std::vector<float>> best_params;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (core::TaskKind kind : tasks) {
      TaskState& state = State(kind);
      std::vector<int> order = state.data.train_ids;
      order_rng.Shuffle(order);
      optimizer.ZeroGrad();
      int in_batch = 0;
      for (size_t i = 0; i < order.size(); ++i) {
        const int id = order[i];
        const core::TaskSample& sample =
            state.data.samples[static_cast<size_t>(id)];
        tensor::Tensor embeddings;
        tensor::Tensor cls;
        tensor::Tensor logits = ForwardLogits(kind, id, /*training=*/true,
                                              train_rng, &embeddings, &cls);
        tensor::Tensor loss;
        if (state.data.multi_label) {
          std::vector<float> y(static_cast<size_t>(state.data.num_labels),
                               0.0f);
          for (int label : sample.labels) y[static_cast<size_t>(label)] = 1.0f;
          loss = tensor::BceWithLogitsLoss(logits, y);
        } else {
          loss = tensor::CrossEntropyLoss(logits, sample.labels[0]);
        }
        tensor::Tensor extra_loss =
            ExtraLoss(kind, sample, embeddings, cls, logits, train_rng);
        if (extra_loss.defined()) loss = tensor::Add(loss, extra_loss);
        loss = tensor::Scale(loss,
                             1.0f / static_cast<float>(config_.batch_size));
        loss.Backward();
        ++in_batch;
        if (in_batch == config_.batch_size || i + 1 == order.size()) {
          optimizer.Step(schedule.LearningRate(step++));
          optimizer.ZeroGrad();
          in_batch = 0;
        }
      }
    }

    float valid = 0.0f;
    for (core::TaskKind kind : tasks) {
      valid += static_cast<float>(
          EvaluateInterpreter(*this, corpus, kind, data::SplitPart::kValid)
              .weighted);
    }
    valid /= static_cast<float>(tasks.size());
    if (valid > best_valid) {
      best_valid = valid;
      best_params.clear();
      best_params.reserve(params.size());
      for (const tensor::Tensor& p : params) best_params.push_back(p.ToVector());
    }
  }

  if (!best_params.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      std::copy(best_params[i].begin(), best_params[i].end(),
                params[i].data());
    }
  }
}

const TransformerBaseline::TaskState& TransformerBaseline::State(
    core::TaskKind kind) const {
  if (kind == core::TaskKind::kType) {
    CHECK(type_state_.has_value());
    return *type_state_;
  }
  CHECK(relation_state_.has_value());
  return *relation_state_;
}

TransformerBaseline::TaskState& TransformerBaseline::State(
    core::TaskKind kind) {
  return const_cast<TaskState&>(
      static_cast<const TransformerBaseline*>(this)->State(kind));
}

const core::TaskData& TransformerBaseline::task_data(
    core::TaskKind kind) const {
  return State(kind).data;
}

bool TransformerBaseline::HasTask(core::TaskKind kind) const {
  return kind == core::TaskKind::kType ? type_state_.has_value()
                                       : relation_state_.has_value();
}

tensor::Tensor TransformerBaseline::Encode(core::TaskKind kind, int sample_id,
                                           bool training,
                                           util::Rng& rng) const {
  const TaskState& state = State(kind);
  const core::TaskSample& sample =
      state.data.samples[static_cast<size_t>(sample_id)];
  return encoder_->Forward(sample.seq.ids, sample.seq.segments, training, rng,
                           AttentionMask(kind, sample));
}

tensor::Tensor TransformerBaseline::ForwardLogits(
    core::TaskKind kind, int sample_id, bool training, util::Rng& rng,
    tensor::Tensor* embeddings_out, tensor::Tensor* cls_out) const {
  const TaskState& state = State(kind);
  tensor::Tensor embeddings = Encode(kind, sample_id, training, rng);
  tensor::Tensor cls = tensor::Row(embeddings, 0);
  tensor::Tensor features = cls;
  if (ContextDim(kind) > 0) {
    const std::vector<float> context = ContextFeatures(kind, sample_id);
    CHECK_EQ(static_cast<int>(context.size()), ContextDim(kind));
    features = tensor::Concat(
        cls, tensor::Tensor::FromVector(
                 {static_cast<int64_t>(context.size())}, context));
  }
  if (embeddings_out != nullptr) *embeddings_out = embeddings;
  if (cls_out != nullptr) *cls_out = cls;
  return state.head->Forward(features);
}

std::vector<int> TransformerBaseline::DecodeLabels(
    core::TaskKind kind, const std::vector<float>& logits) const {
  const TaskState& state = State(kind);
  std::vector<int> out;
  if (state.data.multi_label) {
    for (size_t i = 0; i < logits.size(); ++i) {
      if (logits[i] >= 0.0f) out.push_back(static_cast<int>(i));
    }
    if (out.empty()) {
      out.push_back(static_cast<int>(
          std::max_element(logits.begin(), logits.end()) - logits.begin()));
    }
  } else {
    out.push_back(static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin()));
  }
  return out;
}

std::vector<int> TransformerBaseline::Predict(core::TaskKind kind,
                                              int sample_id) const {
  util::Rng rng(InferenceSeed(sample_id));
  tensor::Tensor logits = ForwardLogits(kind, sample_id, /*training=*/false,
                                        rng, nullptr, nullptr);
  return DecodeLabels(kind, logits.ToVector());
}

std::vector<float> TransformerBaseline::TokenSaliency(core::TaskKind kind,
                                                      int sample_id) const {
  tensor::Tensor embeddings;
  tensor::Tensor cls;
  util::Rng rng(InferenceSeed(sample_id));
  tensor::Tensor logits = ForwardLogits(kind, sample_id, /*training=*/false,
                                        rng, &embeddings, &cls);
  const std::vector<float> values = logits.ToVector();
  const int target = static_cast<int>(
      std::max_element(values.begin(), values.end()) - values.begin());
  // Backward from the winning logit.
  std::vector<float> onehot(values.size(), 0.0f);
  onehot[static_cast<size_t>(target)] = 1.0f;
  tensor::Tensor picked = tensor::Sum(tensor::Mul(
      logits, tensor::Tensor::FromVector(
                  {static_cast<int64_t>(onehot.size())}, onehot)));
  picked.Backward();

  const int64_t len = embeddings.dim(0);
  const int64_t d = embeddings.dim(1);
  std::vector<float> scores(static_cast<size_t>(len), 0.0f);
  const float* grad = embeddings.grad();
  const float* value = embeddings.data();
  for (int64_t i = 0; i < len; ++i) {
    double acc = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double gx = static_cast<double>(grad[i * d + j]) *
                        value[i * d + j];
      acc += gx * gx;
    }
    scores[static_cast<size_t>(i)] = static_cast<float>(std::sqrt(acc));
  }
  return scores;
}

std::vector<float> TransformerBaseline::ClsEmbedding(core::TaskKind kind,
                                                     int sample_id) const {
  util::Rng rng(InferenceSeed(sample_id));
  tensor::Tensor embeddings =
      Encode(kind, sample_id, /*training=*/false, rng);
  return tensor::Row(embeddings, 0).ToVector();
}

std::vector<float> TransformerBaseline::Probabilities(core::TaskKind kind,
                                                      int sample_id) const {
  util::Rng rng(InferenceSeed(sample_id));
  tensor::Tensor logits = ForwardLogits(kind, sample_id, /*training=*/false,
                                        rng, nullptr, nullptr);
  return State(kind).data.multi_label
             ? tensor::SigmoidValues(logits.ToVector())
             : tensor::SoftmaxValues(logits.ToVector());
}

}  // namespace explainti::baselines
