#include "baselines/tabert.h"

#include "text/vocab.h"

namespace explainti::baselines {

namespace {

/// First-row cell of a column, or "" when the column is empty.
const std::string& FirstCell(const data::Column& column) {
  static const std::string kEmpty;
  return column.cells.empty() ? kEmpty : column.cells[0];
}

}  // namespace

text::EncodedSequence TaBert::SerializeType(
    const data::TableCorpus& corpus, const data::TypeSample& sample) const {
  const data::Table& table =
      corpus.tables[static_cast<size_t>(sample.table_index)];
  const data::Column& target =
      table.columns[static_cast<size_t>(sample.column_index)];

  text::SequenceBuilder builder(&tokenizer(), max_seq_len());
  builder.AddSpecial(text::SpecialTokens::kCls, 0);
  builder.AddText("title " + table.title, 0);
  builder.AddText("header " + target.header, 0);
  builder.AddText("cell " + FirstCell(target), 0);
  builder.AddSpecial(text::SpecialTokens::kSep, 0);
  // Content snapshot: header + first-row cell of every other column.
  for (size_t c = 0; c < table.columns.size(); ++c) {
    if (static_cast<int>(c) == sample.column_index) continue;
    const data::Column& other = table.columns[c];
    builder.AddText("row " + other.header + " " + FirstCell(other), 1);
  }
  return builder.Build();
}

text::EncodedSequence TaBert::SerializeRelation(
    const data::TableCorpus& corpus,
    const data::RelationSample& sample) const {
  const data::Table& table =
      corpus.tables[static_cast<size_t>(sample.table_index)];
  const data::Column& left =
      table.columns[static_cast<size_t>(sample.left_column)];
  const data::Column& right =
      table.columns[static_cast<size_t>(sample.right_column)];

  text::SequenceBuilder builder(&tokenizer(), max_seq_len());
  builder.AddSpecial(text::SpecialTokens::kCls, 0);
  builder.AddText("title " + table.title, 0);
  builder.AddText("header " + left.header, 0);
  builder.AddText("cell " + FirstCell(left), 0);
  builder.AddSpecial(text::SpecialTokens::kSep, 0);
  builder.AddText("header " + right.header, 1);
  builder.AddText("cell " + FirstCell(right), 1);
  return builder.Build();
}

std::unique_ptr<TransformerBaseline> MakeTaBert(
    TransformerBaselineConfig config) {
  return std::make_unique<TaBert>(std::move(config));
}

}  // namespace explainti::baselines
