#ifndef EXPLAINTI_BASELINES_TRANSFORMER_BASELINE_H_
#define EXPLAINTI_BASELINES_TRANSFORMER_BASELINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/table_interpreter.h"
#include "core/task_data.h"
#include "nn/encoder.h"
#include "nn/heads.h"
#include "text/serializer.h"
#include "text/tokenizer.h"
#include "text/vocab.h"
#include "util/rng.h"

namespace explainti::baselines {

/// Shared configuration for the transformer-based baselines.
struct TransformerBaselineConfig {
  std::string base_model = "bert";
  int epochs = 10;
  float learning_rate = 1e-3f;
  int batch_size = 16;
  int max_seq_len = 40;
  int pretrain_epochs = 2;
  float pretrain_learning_rate = 1e-3f;
  uint64_t seed = 31;
};

/// Base class for TaBERT / TURL / Doduo / TCN / SelfExplain: a pre-trained
/// mini transformer encoder fine-tuned with a classification head per
/// task. Subclasses customise the serialisation, an optional attention
/// mask (TURL), optional constant context features concatenated to the
/// [CLS] embedding (TCN), and optional auxiliary losses plus extra trained
/// modules (SelfExplain).
///
/// The fitted corpus must outlive the interpreter (the benches keep both).
class TransformerBaseline : public TableInterpreter {
 public:
  TransformerBaseline(std::string name, TransformerBaselineConfig config);

  void Fit(const data::TableCorpus& corpus) override;
  bool HasTask(core::TaskKind kind) const override;
  std::vector<int> Predict(core::TaskKind kind, int sample_id) const override;

  // -- Post-hoc explainability access (Table IV baselines) ----------------

  const core::TaskData& task_data(core::TaskKind kind) const;

  /// Per-token saliency scores |grad . emb|_2 with respect to the
  /// highest-probability class (Simonyan et al. saliency maps).
  std::vector<float> TokenSaliency(core::TaskKind kind, int sample_id) const;

  /// [CLS] embedding of a sample (inference mode).
  std::vector<float> ClsEmbedding(core::TaskKind kind, int sample_id) const;

  /// Per-label sigma outputs for a sample.
  std::vector<float> Probabilities(core::TaskKind kind, int sample_id) const;

  const TransformerBaselineConfig& config() const { return config_; }

 protected:
  // -- Subclass hooks -------------------------------------------------------

  /// Serialisation for the type task; default is the paper's S(c).
  virtual text::EncodedSequence SerializeType(
      const data::TableCorpus& corpus, const data::TypeSample& sample) const;

  /// Serialisation for the relation task; default is S(c_i, c_j).
  virtual text::EncodedSequence SerializeRelation(
      const data::TableCorpus& corpus,
      const data::RelationSample& sample) const;

  virtual bool SupportsRelation() const { return true; }

  /// Called once after MLM pre-training (e.g. TCN builds its context
  /// store here).
  virtual void PrepareContext(const data::TableCorpus& /*corpus*/) {}

  /// Number of constant context features appended to [CLS]; 0 = none.
  virtual int ContextDim(core::TaskKind /*kind*/) const { return 0; }

  /// The constant context feature vector for one sample (size must equal
  /// ContextDim).
  virtual std::vector<float> ContextFeatures(core::TaskKind /*kind*/,
                                             int /*sample_id*/) const {
    return {};
  }

  /// Optional [L, L] additive attention mask (TURL's visibility matrix).
  virtual tensor::Tensor AttentionMask(
      core::TaskKind /*kind*/, const core::TaskSample& /*sample*/) const {
    return tensor::Tensor();
  }

  /// Optional auxiliary loss added to the task loss (SelfExplain's concept
  /// losses). May return an undefined tensor for "none".
  virtual tensor::Tensor ExtraLoss(core::TaskKind /*kind*/,
                                   const core::TaskSample& /*sample*/,
                                   const tensor::Tensor& /*embeddings*/,
                                   const tensor::Tensor& /*cls*/,
                                   const tensor::Tensor& /*final_logits*/,
                                   util::Rng& /*rng*/) const {
    return tensor::Tensor();
  }

  /// Extra trainable parameters owned by the subclass.
  virtual std::vector<tensor::Tensor> ExtraParameters() const { return {}; }

  /// Called by Fit before serialisation so subclasses can size their
  /// modules; `d_model` is the encoder width.
  virtual void OnModelBuilt(const data::TableCorpus& /*corpus*/,
                            int64_t /*d_model*/, util::Rng& /*rng*/) {}

  // -- Shared state access for subclasses ----------------------------------

  const text::SequenceSerializer& serializer() const { return *serializer_; }
  const text::Tokenizer& tokenizer() const { return *tokenizer_; }
  int max_seq_len() const { return config_.max_seq_len; }
  const nn::TransformerEncoder& encoder() const { return *encoder_; }
  nn::TransformerEncoder* mutable_encoder() { return encoder_.get(); }
  const data::TableCorpus* fitted_corpus() const { return corpus_; }

  /// Encoder forward for one sample (applies the subclass mask).
  tensor::Tensor Encode(core::TaskKind kind, int sample_id, bool training,
                        util::Rng& rng) const;

 private:
  struct TaskState {
    core::TaskData data;
    std::unique_ptr<nn::ClassifierHead> head;
  };

  const TaskState& State(core::TaskKind kind) const;
  TaskState& State(core::TaskKind kind);

  tensor::Tensor ForwardLogits(core::TaskKind kind, int sample_id,
                               bool training, util::Rng& rng,
                               tensor::Tensor* embeddings_out,
                               tensor::Tensor* cls_out) const;

  std::vector<int> DecodeLabels(core::TaskKind kind,
                                const std::vector<float>& logits) const;

  /// Seed for inference-time RNG state, derived per sample from the config
  /// seed so that Predict/Probabilities/TokenSaliency are deterministic
  /// per sample and independent of call order (eval-mode forwards never
  /// actually draw from it — it only pins down the contract), and so that
  /// concurrent inference calls share no mutable RNG state.
  uint64_t InferenceSeed(int sample_id) const {
    return config_.seed * 2654435761ULL + 999 +
           static_cast<uint64_t>(sample_id);
  }

  TransformerBaselineConfig config_;
  const data::TableCorpus* corpus_ = nullptr;  // Not owned.
  std::shared_ptr<text::Vocab> vocab_;
  std::unique_ptr<text::Tokenizer> tokenizer_;
  std::unique_ptr<text::SequenceSerializer> serializer_;
  std::unique_ptr<nn::TransformerEncoder> encoder_;
  std::optional<TaskState> type_state_;
  std::optional<TaskState> relation_state_;
};

}  // namespace explainti::baselines

#endif  // EXPLAINTI_BASELINES_TRANSFORMER_BASELINE_H_
