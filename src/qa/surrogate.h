#ifndef EXPLAINTI_QA_SURROGATE_H_
#define EXPLAINTI_QA_SURROGATE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/inference_session.h"
#include "core/task_data.h"
#include "qa/query.h"
#include "util/status.h"

namespace explainti::qa {

/// Tuning knobs for the QA layer and its surrogate tier. Defaults are the
/// values the bench gate was tuned against; the serving layer embeds one
/// of these in `serve::ServerOptions`.
struct QaOptions {
  /// Arm the explanation-distilled surrogate as the first tier. Off by
  /// default: the cascade is opt-in, and a disabled cascade is the
  /// bit-identity reference the fail-closed path must match.
  bool enable_surrogate = false;
  /// A surrogate answer below this confidence escalates to the teacher.
  float confidence_threshold = 0.9f;
  /// Hashed token-feature buckets (feature dim = hash_dim + labels + 1).
  int surrogate_hash_dim = 512;
  /// Full-batch gradient-descent distillation schedule (deterministic:
  /// zero init, fixed epoch count, no shuffling). The mean-normalised
  /// hashed features are small (~1/len per bucket), so the schedule runs
  /// long and hot; the whole fit is still a few ms of dense GEMV.
  int surrogate_epochs = 1200;
  float surrogate_lr = 4.0f;
  /// Cap on teacher Explain calls used to distill token importances.
  int distill_max_samples = 64;
  /// Per-view caps when assembling a QaJustification from a teacher
  /// explanation (LE / GE / SE items per step).
  int max_local_items = 2;
  int max_global_items = 1;
  int max_structural_items = 1;
};

/// Explanation-distilled linear surrogate for one task (Shi et al.:
/// explanation-boosted surrogates). Built once from a frozen teacher
/// session; serving is a dense GEMV over precomputed per-sample features,
/// allocation-free after a one-call warm-up.
///
/// Features (precomputed for every task sample at build):
///   [0, hash_dim)            hashed bag of token ids, each token weighted
///                            by (1 + distilled LE importance of its id),
///                            normalised by token count;
///   [hash_dim, +num_labels)  graph-vote prior: distribution of TEACHER
///                            labels over the sample's training-set graph
///                            neighbours (SE view distilled to a vote);
///   [last]                   bias.
/// Token importances are distilled from teacher LE windows (relevance mass
/// accumulated per token id over a capped training slice); targets are
/// TEACHER labels, not gold — the surrogate imitates the teacher, and its
/// agreement with the teacher is what the bench gates.
///
/// What the surrogate can and cannot answer: it sees unigram identity and
/// neighbour votes, not token order or cross-column attention — good
/// enough to clear the agreement floor on easy columns, which is exactly
/// why low-confidence scores must escalate (CascadeRouter in qa/engine.h).
class SurrogateModel {
 public:
  /// Caller-owned scoring scratch. Sized on first ScoreInto; reusing it
  /// across calls makes every later call allocation-free.
  struct Scratch {
    std::vector<float> logits;
    std::vector<float> probs;
    std::vector<int> labels;
  };

  /// Distils a surrogate from `session`'s task `kind`. Fault site
  /// "qa.surrogate_build". Returns InvalidArgument for an absent task or
  /// an empty training split.
  static util::StatusOr<std::unique_ptr<SurrogateModel>> Distill(
      const core::InferenceSession& session, core::TaskKind kind,
      const QaOptions& options);

  /// Scores one sample: fills `scratch` (logits, per-label probabilities
  /// under the trained head, decoded labels — same decode rule as the
  /// teacher) and sets
  /// `confidence` (multiclass: top probability; multi-label: mean
  /// per-label certainty max(p, 1-p)). Fault site "qa.surrogate_score".
  /// Allocation-free once `scratch` is warm.
  util::Status ScoreInto(int sample_id, Scratch* scratch,
                         float* confidence) const;

  /// Appends up to `max_items` kSurrogate evidence items for `label` on
  /// `sample_id`: the tokens whose hashed features contribute the largest
  /// positive weight * feature mass to that label's logit. Renders from
  /// the task's stored token strings; allocates (compose path only).
  void AppendSaliency(int sample_id, int label, int max_items, int step,
                      std::vector<QaEvidenceItem>* items) const;

  core::TaskKind task_kind() const { return kind_; }
  int num_labels() const { return num_labels_; }
  int feature_dim() const { return feature_dim_; }
  int num_samples() const { return num_samples_; }
  bool multi_label() const { return multi_label_; }

 private:
  SurrogateModel() = default;

  /// Precomputes the feature row for every task sample (teacher train
  /// labels feed the graph-vote block).
  void BuildFeatures(const core::TaskData& task,
                     const std::vector<std::vector<int>>& train_labels);

  /// Full-batch gradient descent of W against multi-hot teacher targets
  /// on the training split — sigmoid/BCE for multi-label heads, softmax/CE
  /// for multiclass (matching the teacher's loss geometry).
  void Train(const core::TaskData& task,
             const std::vector<std::vector<int>>& train_labels,
             const QaOptions& options);

  const core::TaskData* task_ = nullptr;  ///< Borrowed; model outlives us.
  core::TaskKind kind_ = core::TaskKind::kType;
  bool multi_label_ = false;
  int num_labels_ = 0;
  int hash_dim_ = 0;
  int feature_dim_ = 0;
  int num_samples_ = 0;
  /// Distilled LE importance per token id (absent ids score 0).
  std::unordered_map<int, float> token_importance_;
  std::vector<float> features_;  ///< [num_samples, feature_dim], row-major.
  std::vector<float> weights_;   ///< [num_labels, feature_dim], row-major.
};

}  // namespace explainti::qa

#endif  // EXPLAINTI_QA_SURROGATE_H_
