#include "qa/surrogate.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <utility>

#include "util/fault_injection.h"
#include "util/logging.h"

namespace explainti::qa {

namespace {

float Sigmoid(float x) {
  if (x >= 0.0f) return 1.0f / (1.0f + std::exp(-x));
  const float e = std::exp(x);
  return e / (1.0f + e);
}

}  // namespace

util::StatusOr<std::unique_ptr<SurrogateModel>> SurrogateModel::Distill(
    const core::InferenceSession& session, core::TaskKind kind,
    const QaOptions& options) {
  if (auto s = FAULT_POINT("qa.surrogate_build"); !s.ok()) return s;
  if (!session.HasTask(kind)) {
    return util::Status::InvalidArgument(
        std::string("surrogate distillation: session has no ") +
        core::TaskKindName(kind) + " task");
  }
  const core::TaskData& task = session.task_data(kind);
  if (task.train_ids.empty() || task.num_labels <= 0) {
    return util::Status::InvalidArgument(
        "surrogate distillation: empty training split");
  }
  if (options.surrogate_hash_dim <= 0 || options.surrogate_epochs <= 0) {
    return util::Status::InvalidArgument(
        "surrogate distillation: hash_dim and epochs must be positive");
  }

  auto model = std::unique_ptr<SurrogateModel>(new SurrogateModel());
  model->task_ = &task;
  model->kind_ = kind;
  model->multi_label_ = task.multi_label;
  model->num_labels_ = task.num_labels;
  model->hash_dim_ = options.surrogate_hash_dim;
  model->feature_dim_ = options.surrogate_hash_dim + task.num_labels + 1;
  model->num_samples_ = static_cast<int>(task.samples.size());

  // Teacher labels over the training split: the distillation targets AND
  // the graph-vote source. Dense by sample id for O(1) neighbour lookups.
  const std::vector<std::vector<int>> batch =
      session.PredictBatch(kind, task.train_ids);
  std::vector<std::vector<int>> train_labels(task.samples.size());
  for (size_t i = 0; i < task.train_ids.size(); ++i) {
    train_labels[static_cast<size_t>(task.train_ids[i])] = batch[i];
  }

  // Distil LE token importances: relevance mass of every teacher attention
  // window, accumulated per token id over a capped training slice.
  const int distill_n = std::min<int>(options.distill_max_samples,
                                      static_cast<int>(task.train_ids.size()));
  std::vector<int> distill_ids(task.train_ids.begin(),
                               task.train_ids.begin() + distill_n);
  const std::vector<core::Explanation> explanations =
      session.ExplainBatch(kind, distill_ids);
  for (size_t i = 0; i < explanations.size(); ++i) {
    const text::EncodedSequence& seq =
        task.samples[static_cast<size_t>(distill_ids[i])].seq;
    for (const core::LocalExplanation& le : explanations[i].local) {
      const std::pair<int, int> windows[2] = {
          {le.window_start, le.window_end},
          {le.window_start2, le.window_end2}};
      for (const auto& [start, end] : windows) {
        if (start < 0) continue;
        const int hi = std::min<int>(end, static_cast<int>(seq.ids.size()));
        for (int t = start; t < hi; ++t) {
          model->token_importance_[seq.ids[static_cast<size_t>(t)]] +=
              le.relevance;
        }
      }
    }
  }
  float max_importance = 0.0f;
  for (const auto& [id, mass] : model->token_importance_) {
    max_importance = std::max(max_importance, mass);
  }
  if (max_importance > 0.0f) {
    for (auto& [id, mass] : model->token_importance_) {
      mass /= max_importance;
    }
  }

  model->BuildFeatures(task, train_labels);
  model->Train(task, train_labels, options);
  LOG(INFO) << "qa: distilled " << core::TaskKindName(kind)
            << " surrogate: dim=" << model->feature_dim_ << " over "
            << task.train_ids.size() << " teacher-labelled samples ("
            << distill_n << " explained)";
  return model;
}

void SurrogateModel::BuildFeatures(
    const core::TaskData& task,
    const std::vector<std::vector<int>>& train_labels) {
  features_.assign(
      static_cast<size_t>(num_samples_) * static_cast<size_t>(feature_dim_),
      0.0f);
  for (int i = 0; i < num_samples_; ++i) {
    float* row = features_.data() +
                 static_cast<size_t>(i) * static_cast<size_t>(feature_dim_);
    const text::EncodedSequence& seq = task.samples[static_cast<size_t>(i)].seq;
    for (int id : seq.ids) {
      const int bucket = id % hash_dim_;
      float importance = 0.0f;
      if (auto it = token_importance_.find(id); it != token_importance_.end()) {
        importance = it->second;
      }
      row[bucket] += 1.0f + importance;
    }
    if (!seq.ids.empty()) {
      const float inv = 1.0f / static_cast<float>(seq.ids.size());
      for (int b = 0; b < hash_dim_; ++b) row[b] *= inv;
    }
    // Graph-vote prior: the teacher's label distribution over training-set
    // 2-hop neighbours (non-train neighbours have no teacher label).
    int votes = 0;
    for (const graph::SampledNeighbor& n : task.graph.Neighbors(i)) {
      if (!task.IsTrainSample(n.sample_id)) continue;
      for (int label : train_labels[static_cast<size_t>(n.sample_id)]) {
        if (label >= 0 && label < num_labels_) {
          row[hash_dim_ + label] += 1.0f;
          ++votes;
        }
      }
    }
    if (votes > 0) {
      const float inv = 1.0f / static_cast<float>(votes);
      for (int l = 0; l < num_labels_; ++l) row[hash_dim_ + l] *= inv;
    }
    row[feature_dim_ - 1] = 1.0f;
  }
}

void SurrogateModel::Train(const core::TaskData& task,
                           const std::vector<std::vector<int>>& train_labels,
                           const QaOptions& options) {
  weights_.assign(
      static_cast<size_t>(num_labels_) * static_cast<size_t>(feature_dim_),
      0.0f);
  const int n = static_cast<int>(task.train_ids.size());
  // Multi-hot teacher targets, row-major [n, num_labels].
  std::vector<float> targets(static_cast<size_t>(n) *
                                 static_cast<size_t>(num_labels_),
                             0.0f);
  for (int i = 0; i < n; ++i) {
    for (int label : train_labels[static_cast<size_t>(task.train_ids[i])]) {
      if (label >= 0 && label < num_labels_) {
        targets[static_cast<size_t>(i) * static_cast<size_t>(num_labels_) +
                static_cast<size_t>(label)] = 1.0f;
      }
    }
  }
  const float lr = options.surrogate_lr;
  std::vector<float> errors(static_cast<size_t>(n) *
                            static_cast<size_t>(num_labels_));
  for (int epoch = 0; epoch < options.surrogate_epochs; ++epoch) {
    // Forward errors for the whole batch: independent sigmoids (BCE) for
    // multi-label tasks, softmax (CE) for multiclass — matching the loss
    // geometry of the teacher head the surrogate mimics, so the argmax
    // decision boundaries line up much faster than all-sigmoid training.
    for (int i = 0; i < n; ++i) {
      const float* x = features_.data() +
                       static_cast<size_t>(task.train_ids[i]) *
                           static_cast<size_t>(feature_dim_);
      const size_t base = static_cast<size_t>(i) *
                          static_cast<size_t>(num_labels_);
      for (int l = 0; l < num_labels_; ++l) {
        const float* w = weights_.data() +
                         static_cast<size_t>(l) *
                             static_cast<size_t>(feature_dim_);
        float z = 0.0f;
        for (int d = 0; d < feature_dim_; ++d) z += x[d] * w[d];
        errors[base + static_cast<size_t>(l)] = z;
      }
      if (multi_label_) {
        for (int l = 0; l < num_labels_; ++l) {
          const size_t e = base + static_cast<size_t>(l);
          errors[e] = Sigmoid(errors[e]) - targets[e];
        }
      } else {
        float max_z = errors[base];
        for (int l = 1; l < num_labels_; ++l) {
          max_z = std::max(max_z, errors[base + static_cast<size_t>(l)]);
        }
        float denom = 0.0f;
        for (int l = 0; l < num_labels_; ++l) {
          const size_t e = base + static_cast<size_t>(l);
          errors[e] = std::exp(errors[e] - max_z);
          denom += errors[e];
        }
        for (int l = 0; l < num_labels_; ++l) {
          const size_t e = base + static_cast<size_t>(l);
          errors[e] = errors[e] / denom - targets[e];
        }
      }
    }
    // Backward: w_l -= lr/n * sum_i err_il * x_i.
    const float scale = lr / static_cast<float>(n);
    for (int i = 0; i < n; ++i) {
      const float* x = features_.data() +
                       static_cast<size_t>(task.train_ids[i]) *
                           static_cast<size_t>(feature_dim_);
      for (int l = 0; l < num_labels_; ++l) {
        const float step =
            scale * errors[static_cast<size_t>(i) *
                               static_cast<size_t>(num_labels_) +
                           static_cast<size_t>(l)];
        if (step == 0.0f) continue;
        float* w = weights_.data() +
                   static_cast<size_t>(l) * static_cast<size_t>(feature_dim_);
        for (int d = 0; d < feature_dim_; ++d) w[d] -= step * x[d];
      }
    }
  }
}

util::Status SurrogateModel::ScoreInto(int sample_id, Scratch* scratch,
                                       float* confidence) const {
  if (auto s = FAULT_POINT("qa.surrogate_score"); !s.ok()) return s;
  if (sample_id < 0 || sample_id >= num_samples_) {
    return util::Status::InvalidArgument("surrogate score: sample " +
                                         std::to_string(sample_id) +
                                         " out of range");
  }
  scratch->logits.resize(static_cast<size_t>(num_labels_));
  scratch->probs.resize(static_cast<size_t>(num_labels_));
  scratch->labels.clear();
  scratch->labels.reserve(static_cast<size_t>(num_labels_));
  const float* x = features_.data() + static_cast<size_t>(sample_id) *
                                          static_cast<size_t>(feature_dim_);
  for (int l = 0; l < num_labels_; ++l) {
    const float* w =
        weights_.data() + static_cast<size_t>(l) *
                              static_cast<size_t>(feature_dim_);
    float z = 0.0f;
    for (int d = 0; d < feature_dim_; ++d) z += x[d] * w[d];
    scratch->logits[static_cast<size_t>(l)] = z;
  }
  // Probabilities under the head the model was trained as: sigmoids for
  // multi-label, softmax (max-subtracted) for multiclass. Argmax decoding
  // is identical either way; only the confidence calibration differs.
  if (multi_label_) {
    for (int l = 0; l < num_labels_; ++l) {
      scratch->probs[static_cast<size_t>(l)] =
          Sigmoid(scratch->logits[static_cast<size_t>(l)]);
    }
  } else {
    float max_z = scratch->logits[0];
    for (int l = 1; l < num_labels_; ++l) {
      max_z = std::max(max_z, scratch->logits[static_cast<size_t>(l)]);
    }
    float denom = 0.0f;
    for (int l = 0; l < num_labels_; ++l) {
      const float e = std::exp(scratch->logits[static_cast<size_t>(l)] - max_z);
      scratch->probs[static_cast<size_t>(l)] = e;
      denom += e;
    }
    const float inv = 1.0f / denom;
    for (int l = 0; l < num_labels_; ++l) {
      scratch->probs[static_cast<size_t>(l)] *= inv;
    }
  }
  // Decode exactly like the teacher (ExplainTiModel::DecodeLabels):
  // multi-label takes every p >= 0.5 with an argmax fallback, multiclass
  // takes the argmax.
  int argmax = 0;
  for (int l = 1; l < num_labels_; ++l) {
    if (scratch->probs[static_cast<size_t>(l)] >
        scratch->probs[static_cast<size_t>(argmax)]) {
      argmax = l;
    }
  }
  if (multi_label_) {
    for (int l = 0; l < num_labels_; ++l) {
      if (scratch->probs[static_cast<size_t>(l)] >= 0.5f) {
        scratch->labels.push_back(l);
      }
    }
    if (scratch->labels.empty()) scratch->labels.push_back(argmax);
    float certainty = 0.0f;
    for (int l = 0; l < num_labels_; ++l) {
      const float p = scratch->probs[static_cast<size_t>(l)];
      certainty += std::max(p, 1.0f - p);
    }
    *confidence = certainty / static_cast<float>(num_labels_);
  } else {
    scratch->labels.push_back(argmax);
    *confidence = scratch->probs[static_cast<size_t>(argmax)];
  }
  return util::Status::OK();
}

void SurrogateModel::AppendSaliency(int sample_id, int label, int max_items,
                                    int step,
                                    std::vector<QaEvidenceItem>* items) const {
  if (sample_id < 0 || sample_id >= num_samples_ || label < 0 ||
      label >= num_labels_ || max_items <= 0) {
    return;
  }
  const text::EncodedSequence& seq =
      task_->samples[static_cast<size_t>(sample_id)].seq;
  if (seq.ids.empty()) return;
  const float* w = weights_.data() +
                   static_cast<size_t>(label) * static_cast<size_t>(feature_dim_);
  const float inv = 1.0f / static_cast<float>(seq.ids.size());
  // Per-token contribution to this label's logit: the token's share of its
  // hashed bucket times the label weight on that bucket.
  std::vector<std::pair<float, int>> ranked;  // (contribution, position)
  ranked.reserve(seq.ids.size());
  for (size_t t = 0; t < seq.ids.size(); ++t) {
    const int id = seq.ids[t];
    float importance = 0.0f;
    if (auto it = token_importance_.find(id); it != token_importance_.end()) {
      importance = it->second;
    }
    const float contribution =
        w[id % hash_dim_] * (1.0f + importance) * inv;
    if (contribution > 0.0f) {
      ranked.emplace_back(contribution, static_cast<int>(t));
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  int emitted = 0;
  std::vector<int> seen_ids;
  for (const auto& [contribution, pos] : ranked) {
    if (emitted >= max_items) break;
    const int id = seq.ids[static_cast<size_t>(pos)];
    if (std::find(seen_ids.begin(), seen_ids.end(), id) != seen_ids.end()) {
      continue;  // One item per distinct token.
    }
    seen_ids.push_back(id);
    QaEvidenceItem item;
    item.step = step;
    item.view = QaView::kSurrogate;
    item.score = contribution;
    item.text = pos < static_cast<int>(seq.tokens.size())
                    ? seq.tokens[static_cast<size_t>(pos)]
                    : std::to_string(id);
    items->push_back(std::move(item));
    ++emitted;
  }
}

}  // namespace explainti::qa
