#ifndef EXPLAINTI_QA_ENGINE_H_
#define EXPLAINTI_QA_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>

#include "core/inference_session.h"
#include "qa/query.h"
#include "qa/surrogate.h"
#include "util/status.h"

namespace explainti::qa {

/// Validates `query` against `session`: known kind, present task, in-range
/// candidate ids, canonical label_id/top_k for the kind. Shared by the
/// engine and by serve admission (which rejects bad queries before they
/// cost a batch slot).
util::Status ValidateQuery(const core::InferenceSession& session,
                           const QaQuery& query);

/// Table-QA composition engine plus cascade router over one frozen
/// session.
///
/// Answer() plans a query into the minimal set of session calls — one
/// PredictProbabilities per candidate (stage 1), one Explain per selected
/// answer entry (stage 2) — composes the QaAnswer, and assembles the
/// QaJustification from the teacher's LE/GE/SE views (or surrogate
/// saliency) with per-step provenance.
///
/// Cascade: when `options.enable_surrogate` is set, construction distils
/// one SurrogateModel per served task and stage 1 scores candidates there
/// first; scores at or above `options.confidence_threshold` are answered
/// at the surrogate tier, the rest escalate to the teacher. Fail-closed:
/// a distillation failure (or the "qa.surrogate_build" fault) keeps the
/// engine teacher-only with a typed surrogate_status(); a scoring failure
/// (or "qa.surrogate_score") abandons the partial cascade answer, trips
/// the surrogate permanently, and recomposes the SAME query teacher-only
/// — so a faulted engine's answers are bit-identical to a cascade-off
/// build, never wrong or partial. The "qa.compose" fault site fails the
/// whole Answer() with a typed error before any work.
///
/// Thread-safe after construction: Answer() is const, the trip latch is
/// atomic, and the underlying session is already concurrent.
class QaEngine {
 public:
  /// `session` is borrowed and must outlive the engine (under serve each
  /// generation owns both, so they retire together).
  QaEngine(const core::InferenceSession* session, const QaOptions& options);

  QaEngine(const QaEngine&) = delete;
  QaEngine& operator=(const QaEngine&) = delete;

  /// Answers `query` at the configured confidence threshold.
  util::StatusOr<QaAnswer> Answer(const QaQuery& query) const;

  /// Answer with an explicit escalation threshold (bench threshold
  /// sweeps); cascade semantics otherwise identical to Answer().
  util::StatusOr<QaAnswer> AnswerWithThreshold(const QaQuery& query,
                                               float threshold) const;

  /// True while the surrogate tier is armed, built, and not tripped.
  bool surrogate_active() const;

  /// OK while healthy (or disabled by options); the typed build/score
  /// failure that routed the cascade 100% to the teacher otherwise.
  util::Status surrogate_status() const;

  /// The distilled surrogate for `kind`, or null (disabled, failed, or
  /// task absent). For bench agreement sweeps and tests; Answer() owns
  /// routing.
  const SurrogateModel* surrogate(core::TaskKind kind) const;

  const QaOptions& options() const { return options_; }
  const core::InferenceSession& session() const { return *session_; }

 private:
  /// Composes the full answer. With `use_surrogate`, stage 1 scores
  /// through the surrogate and escalates below `threshold`; any surrogate
  /// scoring error aborts composition (the caller trips the latch and
  /// recomposes teacher-only).
  util::StatusOr<QaAnswer> Compose(const QaQuery& query, bool use_surrogate,
                                   float threshold) const;

  /// Records `status` and flips the trip latch (idempotent; first error
  /// wins so the status names the root cause).
  void TripSurrogate(const util::Status& status) const;

  const core::InferenceSession* session_;
  QaOptions options_;
  std::unique_ptr<SurrogateModel> type_surrogate_;
  std::unique_ptr<SurrogateModel> relation_surrogate_;
  /// Sticky fail-closed latch: set on the first scoring failure, checked
  /// before every cascade attempt.
  mutable std::atomic<bool> tripped_{false};
  mutable std::mutex status_mu_;
  /// Guarded by status_mu_ after the ctor; mutable because a scoring
  /// fault during a const Answer() must record its typed root cause.
  mutable util::Status surrogate_status_;
};

}  // namespace explainti::qa

#endif  // EXPLAINTI_QA_ENGINE_H_
