#include "qa/engine.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/fault_injection.h"
#include "util/logging.h"

namespace explainti::qa {

namespace {

/// Argmax with first-max tie-breaking, matching std::max_element (and
/// therefore ExplainTiModel::DecodeLabels).
int ArgMax(const std::vector<float>& v) {
  int best = 0;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[static_cast<size_t>(best)]) best = static_cast<int>(i);
  }
  return best;
}

/// Mirrors ExplainTiModel::DecodeLabels over the probability vector
/// PredictProbabilities returns (softmax is monotone in the logits, so
/// multiclass argmax agrees bit-for-bit with Predict).
std::vector<int> DecodeFromProbs(bool multi_label,
                                 const std::vector<float>& probs) {
  std::vector<int> labels;
  if (multi_label) {
    for (size_t i = 0; i < probs.size(); ++i) {
      if (probs[i] >= 0.5f) labels.push_back(static_cast<int>(i));
    }
    if (labels.empty()) labels.push_back(ArgMax(probs));
  } else {
    labels.push_back(ArgMax(probs));
  }
  return labels;
}

bool IsFindKind(QaQueryKind kind) {
  return kind == QaQueryKind::kFindColumnsOfType ||
         kind == QaQueryKind::kFindRelatedPairs;
}

/// One stage-1 scored candidate, before selection.
struct ScoredCandidate {
  int sample_id = -1;
  QaTier tier = QaTier::kTeacher;
  std::vector<int> labels;
  std::vector<float> probs;
  float confidence = 0.0f;  ///< Probability backing the (target) label.
  bool qualifies = false;
  bool escalated = false;   ///< Surrogate scored below threshold.
};

}  // namespace

util::Status ValidateQuery(const core::InferenceSession& session,
                           const QaQuery& query) {
  switch (query.kind) {
    case QaQueryKind::kColumnType:
    case QaQueryKind::kFindColumnsOfType:
    case QaQueryKind::kRelationBetween:
    case QaQueryKind::kFindRelatedPairs:
      break;
    default:
      return util::Status::InvalidArgument("qa: unknown query kind");
  }
  const core::TaskKind task_kind = QaTaskOf(query.kind);
  if (!session.HasTask(task_kind)) {
    return util::Status::InvalidArgument(
        std::string("qa: session has no ") + core::TaskKindName(task_kind) +
        " task");
  }
  const core::TaskData& task = session.task_data(task_kind);
  if (query.sample_ids.empty()) {
    return util::Status::InvalidArgument("qa: query has no candidate samples");
  }
  const bool find = IsFindKind(query.kind);
  if (!find && query.sample_ids.size() != 1) {
    return util::Status::InvalidArgument(
        std::string("qa: ") + QaQueryKindName(query.kind) +
        " takes exactly one sample, got " +
        std::to_string(query.sample_ids.size()));
  }
  for (int id : query.sample_ids) {
    if (id < 0 || id >= static_cast<int>(task.samples.size())) {
      return util::Status::InvalidArgument(
          "qa: sample " + std::to_string(id) + " out of range for " +
          core::TaskKindName(task_kind) + " task");
    }
  }
  if (!find) {
    if (query.label_id != -1) {
      return util::Status::InvalidArgument(
          std::string("qa: ") + QaQueryKindName(query.kind) +
          " does not take a target label");
    }
  } else {
    const int lo = query.kind == QaQueryKind::kFindRelatedPairs ? -1 : 0;
    if (query.label_id < lo || query.label_id >= task.num_labels) {
      return util::Status::InvalidArgument(
          "qa: target label " + std::to_string(query.label_id) +
          " out of range for " + core::TaskKindName(task_kind) + " task");
    }
    if (query.top_k < 1) {
      return util::Status::InvalidArgument("qa: top_k must be >= 1");
    }
  }
  return util::Status::OK();
}

QaEngine::QaEngine(const core::InferenceSession* session,
                   const QaOptions& options)
    : session_(session), options_(options) {
  if (!options_.enable_surrogate) return;
  for (core::TaskKind kind :
       {core::TaskKind::kType, core::TaskKind::kRelation}) {
    if (!session_->HasTask(kind)) continue;
    auto built = SurrogateModel::Distill(*session_, kind, options_);
    if (!built.ok()) {
      // Fail closed: no surrogate tier at all (a half-armed cascade would
      // answer one task cheaply and silently refuse the other).
      LOG(WARNING) << "qa: surrogate distillation failed, serving "
                      "teacher-only: "
                   << built.status().ToString();
      surrogate_status_ = built.status();
      type_surrogate_.reset();
      relation_surrogate_.reset();
      tripped_.store(true, std::memory_order_release);
      return;
    }
    if (kind == core::TaskKind::kType) {
      type_surrogate_ = std::move(built).value();
    } else {
      relation_surrogate_ = std::move(built).value();
    }
  }
}

bool QaEngine::surrogate_active() const {
  return options_.enable_surrogate &&
         !tripped_.load(std::memory_order_acquire) &&
         (type_surrogate_ != nullptr || relation_surrogate_ != nullptr);
}

util::Status QaEngine::surrogate_status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return surrogate_status_;
}

const SurrogateModel* QaEngine::surrogate(core::TaskKind kind) const {
  if (!surrogate_active()) return nullptr;
  return kind == core::TaskKind::kType ? type_surrogate_.get()
                                       : relation_surrogate_.get();
}

void QaEngine::TripSurrogate(const util::Status& status) const {
  std::lock_guard<std::mutex> lock(status_mu_);
  if (!tripped_.load(std::memory_order_relaxed) || surrogate_status_.ok()) {
    surrogate_status_ = status;
  }
  tripped_.store(true, std::memory_order_release);
  LOG(WARNING) << "qa: surrogate tier tripped, all answers now "
                  "teacher-only: "
               << status.ToString();
}

util::StatusOr<QaAnswer> QaEngine::Answer(const QaQuery& query) const {
  return AnswerWithThreshold(query, options_.confidence_threshold);
}

util::StatusOr<QaAnswer> QaEngine::AnswerWithThreshold(const QaQuery& query,
                                                       float threshold) const {
  // The compose fault fails the whole answer up front — a typed error,
  // never a partial answer.
  if (auto s = FAULT_POINT("qa.compose"); !s.ok()) return s;
  if (auto s = ValidateQuery(*session_, query); !s.ok()) return s;
  if (surrogate_active()) {
    auto cascaded = Compose(query, /*use_surrogate=*/true, threshold);
    if (cascaded.ok()) return cascaded;
    // A scoring failure mid-cascade: abandon the partial answer, trip the
    // tier, and recompose the same query teacher-only below.
    TripSurrogate(cascaded.status());
  }
  auto answer = Compose(query, /*use_surrogate=*/false, threshold);
  if (answer.ok()) answer->surrogate_status = surrogate_status();
  return answer;
}

util::StatusOr<QaAnswer> QaEngine::Compose(const QaQuery& query,
                                           bool use_surrogate,
                                           float threshold) const {
  const core::TaskKind task_kind = QaTaskOf(query.kind);
  const core::TaskData& task = session_->task_data(task_kind);
  const bool find = IsFindKind(query.kind);
  const SurrogateModel* surrogate =
      use_surrogate ? (task_kind == core::TaskKind::kType
                           ? type_surrogate_.get()
                           : relation_surrogate_.get())
                    : nullptr;

  // Stage 1: score every candidate — surrogate first when armed for this
  // task, escalating below-threshold scores to the teacher.
  std::vector<ScoredCandidate> scored;
  scored.reserve(query.sample_ids.size());
  SurrogateModel::Scratch scratch;
  for (int id : query.sample_ids) {
    ScoredCandidate c;
    c.sample_id = id;
    bool need_teacher = true;
    if (surrogate != nullptr) {
      float confidence = 0.0f;
      if (auto s = surrogate->ScoreInto(id, &scratch, &confidence); !s.ok()) {
        return s;  // Caller trips the latch and recomposes teacher-only.
      }
      if (confidence >= threshold) {
        c.tier = QaTier::kSurrogate;
        c.labels = scratch.labels;
        c.probs = scratch.probs;
        need_teacher = false;
      } else {
        c.escalated = true;
      }
    }
    if (need_teacher) {
      c.tier = QaTier::kTeacher;
      c.probs = session_->PredictProbabilities(task_kind, id);
      c.labels = DecodeFromProbs(task.multi_label, c.probs);
    }
    // Qualification + the confidence the answer cites.
    if (!find) {
      c.qualifies = true;
      c.confidence = c.probs[static_cast<size_t>(c.labels.front())];
      for (int label : c.labels) {
        c.confidence = std::max(c.confidence,
                                c.probs[static_cast<size_t>(label)]);
      }
    } else if (query.label_id < 0) {
      // "Any relation": every candidate qualifies with its top label.
      c.qualifies = true;
      c.confidence = c.probs[static_cast<size_t>(c.labels.front())];
    } else {
      c.confidence = c.probs[static_cast<size_t>(query.label_id)];
      c.qualifies = task.multi_label
                        ? c.confidence >= 0.5f
                        : std::find(c.labels.begin(), c.labels.end(),
                                    query.label_id) != c.labels.end();
    }
    scored.push_back(std::move(c));
  }

  // Selection: qualified candidates by confidence (desc), sample id as the
  // deterministic tie-break, truncated to top_k for find queries.
  std::vector<int> selected;  // Indices into `scored`.
  for (size_t i = 0; i < scored.size(); ++i) {
    if (scored[i].qualifies) selected.push_back(static_cast<int>(i));
  }
  std::sort(selected.begin(), selected.end(), [&scored](int a, int b) {
    const ScoredCandidate& ca = scored[static_cast<size_t>(a)];
    const ScoredCandidate& cb = scored[static_cast<size_t>(b)];
    if (ca.confidence != cb.confidence) return ca.confidence > cb.confidence;
    return ca.sample_id < cb.sample_id;
  });
  if (find && static_cast<int>(selected.size()) > query.top_k) {
    selected.resize(static_cast<size_t>(query.top_k));
  }

  // Compose the answer: one provenance step per evaluated candidate (so
  // rejections are auditable too), evidence items only for selected steps
  // (stage 2 — the only Explain calls the plan pays for).
  QaAnswer answer;
  answer.query = query;
  answer.justification.steps.reserve(scored.size());
  for (size_t i = 0; i < scored.size(); ++i) {
    QaStep step;
    step.step = static_cast<int>(i);
    step.task = task_kind;
    step.sample_id = scored[i].sample_id;
    step.tier = scored[i].tier;
    step.predicted_labels = scored[i].labels;
    step.confidence = scored[i].confidence;
    if (scored[i].tier == QaTier::kSurrogate) {
      ++answer.surrogate_steps;
    } else if (scored[i].escalated) {
      ++answer.escalated_steps;
    }
    answer.justification.steps.push_back(std::move(step));
  }
  for (int idx : selected) {
    const ScoredCandidate& c = scored[static_cast<size_t>(idx)];
    QaAnswerEntry entry;
    entry.sample_id = c.sample_id;
    entry.labels = c.labels;
    entry.confidence = c.confidence;
    entry.step = idx;
    answer.entries.push_back(std::move(entry));

    if (c.tier == QaTier::kSurrogate) {
      const int target =
          find && query.label_id >= 0 ? query.label_id : c.labels.front();
      surrogate->AppendSaliency(c.sample_id, target, options_.max_local_items,
                                idx, &answer.justification.items);
      continue;
    }
    const core::Explanation exp =
        session_->Explain(task_kind, c.sample_id);
    QaStep& step = answer.justification.steps[static_cast<size_t>(idx)];
    step.ann_degraded = exp.ann_degraded;
    step.note = exp.degradation_note;
    const int n_local =
        std::min<int>(options_.max_local_items,
                      static_cast<int>(exp.local.size()));
    for (int i = 0; i < n_local; ++i) {
      QaEvidenceItem item;
      item.step = idx;
      item.view = QaView::kLocal;
      item.score = exp.local[static_cast<size_t>(i)].relevance;
      item.text = exp.local[static_cast<size_t>(i)].text;
      answer.justification.items.push_back(std::move(item));
    }
    const int n_global =
        std::min<int>(options_.max_global_items,
                      static_cast<int>(exp.global.size()));
    for (int i = 0; i < n_global; ++i) {
      QaEvidenceItem item;
      item.step = idx;
      item.view = QaView::kGlobal;
      item.score = exp.global[static_cast<size_t>(i)].influence;
      item.text = exp.global[static_cast<size_t>(i)].text;
      answer.justification.items.push_back(std::move(item));
    }
    const int n_structural =
        std::min<int>(options_.max_structural_items,
                      static_cast<int>(exp.structural.size()));
    for (int i = 0; i < n_structural; ++i) {
      QaEvidenceItem item;
      item.step = idx;
      item.view = QaView::kStructural;
      item.score = exp.structural[static_cast<size_t>(i)].attention;
      item.text = exp.structural[static_cast<size_t>(i)].text;
      answer.justification.items.push_back(std::move(item));
    }
  }
  answer.surrogate_status = util::Status::OK();
  return answer;
}

}  // namespace explainti::qa
