#ifndef EXPLAINTI_QA_QUERY_H_
#define EXPLAINTI_QA_QUERY_H_

#include <string>
#include <vector>

#include "core/task_data.h"
#include "util/status.h"

namespace explainti::qa {

/// The structured table-QA queries the composition layer answers by
/// planning them into column-type / column-relation predictions.
enum class QaQueryKind {
  /// "What is the type of this column?" — one type sample.
  kColumnType = 0,
  /// "Which of these columns is a <label>?" — candidate type samples
  /// filtered by a target type label.
  kFindColumnsOfType = 1,
  /// "How are the columns of this pair related?" — one relation sample.
  kRelationBetween = 2,
  /// "Which of these pairs express <label>?" — candidate relation
  /// samples filtered by a target relation label (label_id = -1 answers
  /// "how is each pair related?" instead: every candidate qualifies with
  /// its own top relation).
  kFindRelatedPairs = 3,
};

/// Short human-readable name for `kind` (e.g. "ColumnType").
const char* QaQueryKindName(QaQueryKind kind);

/// The task a query kind plans into.
core::TaskKind QaTaskOf(QaQueryKind kind);

/// One structured query. `sample_ids` is the candidate scope — the type
/// (or relation) samples the query ranges over: a single sample for the
/// point kinds (kColumnType / kRelationBetween), the columns or pairs of
/// one table (or any caller-chosen set) for the kFind* kinds. Scoping by
/// explicit sample ids keeps planning deterministic and generation-local:
/// ids are resolved against the answering session's task data, exactly
/// like every other serve method.
struct QaQuery {
  QaQueryKind kind = QaQueryKind::kColumnType;
  std::vector<int> sample_ids;
  /// Target label for the kFind* kinds; -1 means "any" (only valid for
  /// kFindRelatedPairs). Resolve names with ResolveLabel().
  int label_id = -1;
  /// Answer-entry cap for the kFind* kinds (highest-confidence first).
  int top_k = 3;
};

/// True when `a` and `b` are the same query (used by the serving cache to
/// verify an entry before serving it).
bool SameQuery(const QaQuery& a, const QaQuery& b);

/// Label id for `name` in `task`'s label space, or kNotFound.
util::StatusOr<int> ResolveLabel(const core::TaskData& task,
                                 const std::string& name);

/// Which tier produced a composed prediction step.
enum class QaTier {
  kTeacher = 0,    ///< Full InferenceSession (compiled-plan transformer).
  kSurrogate = 1,  ///< Explanation-distilled linear surrogate.
};

const char* QaTierName(QaTier tier);

/// Which explanation view a justification item was assembled from.
enum class QaView {
  kLocal = 0,       ///< LE attention window (RS score).
  kGlobal = 1,      ///< GE retrieved influential training sample (IS).
  kStructural = 2,  ///< SE graph neighbour (AS score).
  kSurrogate = 3,   ///< Surrogate feature saliency (weight * feature).
};

const char* QaViewName(QaView view);

/// One constituent prediction an answer was composed from — the
/// provenance unit: which call, on which sample, from which tier, with
/// what confidence.
struct QaStep {
  int step = -1;  ///< Index of this step within the justification.
  core::TaskKind task = core::TaskKind::kType;
  int sample_id = -1;
  QaTier tier = QaTier::kTeacher;
  std::vector<int> predicted_labels;
  /// Probability of the label this step contributed to the answer (the
  /// target label for kFind* queries, the top label otherwise).
  float confidence = 0.0f;
  /// GE retrieval fell back to the exact flat index for this step.
  bool ann_degraded = false;
  std::string note;  ///< Degradation note; empty when healthy.
};

/// One evidence item of a composed justification, tagged with its source
/// step and view so every line of the answer is auditable end to end.
struct QaEvidenceItem {
  int step = -1;       ///< Index into QaJustification::steps.
  QaView view = QaView::kLocal;
  float score = 0.0f;  ///< RS / IS / AS, or surrogate contribution.
  std::string text;
};

/// The composed, provenance-tagged justification returned with every
/// answer: the constituent prediction steps plus the evidence items
/// assembled from their LE/GE/SE views (or surrogate saliency).
struct QaJustification {
  std::vector<QaStep> steps;
  /// Step-major, view order LE -> GE -> SE (surrogate steps contribute
  /// kSurrogate items), per-view scores descending.
  std::vector<QaEvidenceItem> items;
};

/// One answered sample: which sample, the labels the answer asserts for
/// it, the confidence backing it, and the justification step it cites.
struct QaAnswerEntry {
  int sample_id = -1;
  std::vector<int> labels;
  float confidence = 0.0f;
  int step = -1;  ///< Provenance: index into justification.steps.
};

/// The full answer envelope. `entries`/`justification` are the answer
/// proper (bit-identical across cascade-off and fault-degraded builds —
/// see SameAnswer); the tier counters and surrogate_status are serving
/// telemetry.
struct QaAnswer {
  QaQuery query;
  /// Highest confidence first for kFind* queries; single entry for the
  /// point kinds. Empty when no candidate qualified (an honest "none").
  std::vector<QaAnswerEntry> entries;
  QaJustification justification;
  // -- Telemetry (not part of answer identity) ---------------------------
  int surrogate_steps = 0;  ///< Steps answered by the surrogate tier.
  int escalated_steps = 0;  ///< Steps escalated surrogate -> teacher.
  /// OK while the surrogate tier is healthy (or disabled); the typed
  /// reason the cascade routed 100% to the teacher otherwise.
  util::Status surrogate_status;
};

/// Bitwise answer identity: query, entries and justification (floats
/// compared exactly). Telemetry (tier counters, surrogate_status) is
/// deliberately excluded — a fault-degraded answer must equal the
/// cascade-off answer even though its telemetry explains the degradation.
bool SameAnswer(const QaAnswer& a, const QaAnswer& b);

}  // namespace explainti::qa

#endif  // EXPLAINTI_QA_QUERY_H_
