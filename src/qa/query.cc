#include "qa/query.h"

#include <cstddef>

namespace explainti::qa {

const char* QaQueryKindName(QaQueryKind kind) {
  switch (kind) {
    case QaQueryKind::kColumnType:
      return "ColumnType";
    case QaQueryKind::kFindColumnsOfType:
      return "FindColumnsOfType";
    case QaQueryKind::kRelationBetween:
      return "RelationBetween";
    case QaQueryKind::kFindRelatedPairs:
      return "FindRelatedPairs";
  }
  return "Unknown";
}

core::TaskKind QaTaskOf(QaQueryKind kind) {
  switch (kind) {
    case QaQueryKind::kColumnType:
    case QaQueryKind::kFindColumnsOfType:
      return core::TaskKind::kType;
    case QaQueryKind::kRelationBetween:
    case QaQueryKind::kFindRelatedPairs:
      return core::TaskKind::kRelation;
  }
  return core::TaskKind::kType;
}

const char* QaTierName(QaTier tier) {
  switch (tier) {
    case QaTier::kTeacher:
      return "teacher";
    case QaTier::kSurrogate:
      return "surrogate";
  }
  return "unknown";
}

const char* QaViewName(QaView view) {
  switch (view) {
    case QaView::kLocal:
      return "LE";
    case QaView::kGlobal:
      return "GE";
    case QaView::kStructural:
      return "SE";
    case QaView::kSurrogate:
      return "surrogate";
  }
  return "unknown";
}

bool SameQuery(const QaQuery& a, const QaQuery& b) {
  return a.kind == b.kind && a.label_id == b.label_id && a.top_k == b.top_k &&
         a.sample_ids == b.sample_ids;
}

util::StatusOr<int> ResolveLabel(const core::TaskData& task,
                                 const std::string& name) {
  for (size_t i = 0; i < task.label_names.size(); ++i) {
    if (task.label_names[i] == name) return static_cast<int>(i);
  }
  return util::Status::NotFound("no label named '" + name + "' in " +
                                std::string(core::TaskKindName(task.kind)) +
                                " task");
}

namespace {

bool SameStep(const QaStep& a, const QaStep& b) {
  return a.step == b.step && a.task == b.task && a.sample_id == b.sample_id &&
         a.tier == b.tier && a.predicted_labels == b.predicted_labels &&
         a.confidence == b.confidence && a.ann_degraded == b.ann_degraded &&
         a.note == b.note;
}

bool SameItem(const QaEvidenceItem& a, const QaEvidenceItem& b) {
  return a.step == b.step && a.view == b.view && a.score == b.score &&
         a.text == b.text;
}

bool SameEntry(const QaAnswerEntry& a, const QaAnswerEntry& b) {
  return a.sample_id == b.sample_id && a.labels == b.labels &&
         a.confidence == b.confidence && a.step == b.step;
}

}  // namespace

bool SameAnswer(const QaAnswer& a, const QaAnswer& b) {
  if (!SameQuery(a.query, b.query)) return false;
  if (a.entries.size() != b.entries.size()) return false;
  for (size_t i = 0; i < a.entries.size(); ++i) {
    if (!SameEntry(a.entries[i], b.entries[i])) return false;
  }
  if (a.justification.steps.size() != b.justification.steps.size()) {
    return false;
  }
  for (size_t i = 0; i < a.justification.steps.size(); ++i) {
    if (!SameStep(a.justification.steps[i], b.justification.steps[i])) {
      return false;
    }
  }
  if (a.justification.items.size() != b.justification.items.size()) {
    return false;
  }
  for (size_t i = 0; i < a.justification.items.size(); ++i) {
    if (!SameItem(a.justification.items[i], b.justification.items[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace explainti::qa
