#ifndef EXPLAINTI_CORE_CHECKPOINT_H_
#define EXPLAINTI_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace explainti::core {

/// Training-state snapshot persisted between epochs so an interrupted
/// `ExplainTiModel::Fit()` can resume instead of restarting (including the
/// pre-training phase, which the snapshot already contains).
///
/// On-disk layout (little-endian, fixed-width):
///
///   magic "XTICKPT1"                       8 bytes
///   version                                u32
///   next_epoch                             i32
///   schedule_step                          i64
///   best_valid_f1                          f32
///   best_epoch                             i32
///   num_params                             i64
///   params[i]: size i64, data f32[size]    (repeated num_params times)
///   has_best_params                        u8
///   best_params[i]: data f32[params[i].size]   (if has_best_params)
///   has_optimizer                          u8
///   opt_step_count                         i64        (if has_optimizer)
///   opt_m[i], opt_v[i]: f32[params[i].size]    (if has_optimizer)
///   crc32 over every preceding byte        u32  <- integrity footer
///
/// Writes are atomic (tmp file + rename), so a crash or injected
/// `checkpoint.write` fault never leaves a partial file at `path`. Loads
/// verify the CRC footer first and return `Status` on any corruption or
/// truncation; callers fall back to training from scratch.
struct Checkpoint {
  int32_t next_epoch = 0;     ///< First epoch still to run.
  int64_t schedule_step = 0;  ///< LR-schedule position.
  float best_valid_f1 = 0.0f;
  int32_t best_epoch = -1;
  /// Current parameter values, in `AllParameters()` order.
  std::vector<std::vector<float>> params;
  /// Best-validation-epoch parameters; empty when no epoch finished yet.
  std::vector<std::vector<float>> best_params;
  /// AdamW state; `opt_m`/`opt_v` empty when not saved.
  int64_t opt_step_count = 0;
  std::vector<std::vector<float>> opt_m;
  std::vector<std::vector<float>> opt_v;
};

/// Writes `ckpt` to `path` atomically with a CRC32 footer. Fault site:
/// "checkpoint.write" (an injected IoError removes the partial tmp file).
util::Status SaveCheckpoint(const std::string& path, const Checkpoint& ckpt);

/// Reads a checkpoint. Returns NotFound when `path` does not exist (no
/// checkpoint yet — not an error for resume logic), InvalidArgument for a
/// corrupted/truncated/CRC-mismatched file, IoError for read failures.
util::StatusOr<Checkpoint> LoadCheckpoint(const std::string& path);

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_CHECKPOINT_H_
