#ifndef EXPLAINTI_CORE_EXPLANATION_H_
#define EXPLAINTI_CORE_EXPLANATION_H_

#include <string>
#include <vector>

#include "graph/column_graph.h"

namespace explainti::core {

/// One local explanation: a token window (or window pair for relations)
/// with its relevance score RS (Eq. 3).
struct LocalExplanation {
  int window_start = -1;  ///< Token index of the window start.
  int window_end = -1;    ///< One past the window end.
  /// Second window for pairwise (relation) concepts; -1 for type task.
  int window_start2 = -1;
  int window_end2 = -1;
  float relevance = 0.0f;  ///< RS_j, normalised over all windows.
  std::string text;        ///< The window's tokens joined with spaces.
};

/// One global explanation: an influential training sample with its
/// influence score IS (Eq. 4).
struct GlobalExplanation {
  int train_sample_id = -1;  ///< Index into the task's training samples.
  float influence = 0.0f;    ///< IS, normalised over the retrieved top-K.
  std::string text;          ///< The sample's serialised text.
  std::vector<int> labels;   ///< The sample's gold labels (for rendering).
};

/// One structural explanation: an influential graph neighbour with its
/// attention score AS (Eq. 5).
struct StructuralExplanation {
  int neighbor_sample_id = -1;
  float attention = 0.0f;
  graph::BridgeKind via = graph::BridgeKind::kSelf;  ///< Connecting bridge.
  std::string text;
  std::vector<int> labels;
};

/// The multi-view explanation set Z returned with every prediction.
struct Explanation {
  std::vector<int> predicted_labels;
  std::vector<float> probabilities;  ///< Per-label sigma outputs.
  std::vector<LocalExplanation> local;            ///< Sorted by RS desc.
  std::vector<GlobalExplanation> global;          ///< Sorted by IS desc.
  std::vector<StructuralExplanation> structural;  ///< Sorted by AS desc.
  /// True when GE retrieval fell back from HNSW to the exact flat index
  /// (index absent, partially built, or the query failed). The results
  /// are still correct — the flat tier is exact — only slower.
  bool ann_degraded = false;
  /// Human-readable account of any degradation; empty when healthy.
  std::string degradation_note;
};

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_EXPLANATION_H_
