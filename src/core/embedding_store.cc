#include "core/embedding_store.h"

#include <algorithm>

#include "core/store_persistence.h"
#include "util/fault_injection.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace explainti::core {

namespace {

/// Builds the Snapshot's fan-out tables from its segments vector.
void IndexShards(EmbeddingStore::Snapshot* snapshot) {
  snapshot->shards.clear();
  snapshot->shard_segments.clear();
  for (const auto& segment : snapshot->segments) {
    if (segment == nullptr) continue;
    snapshot->shards.push_back(
        ann::ShardRef{&segment->flat, segment->hnsw.get()});
    snapshot->shard_segments.push_back(segment.get());
  }
}

}  // namespace

int64_t EmbeddingStore::Segment::RowOf(int64_t id) const {
  const int64_t* end = ids + count;
  const int64_t* it = std::lower_bound(ids, end, id);
  return (it != end && *it == id) ? it - ids : -1;
}

EmbeddingStore::EmbeddingStore() : EmbeddingStore(Options()) {}

EmbeddingStore::EmbeddingStore(Options options) : options_(std::move(options)) {
  CHECK_GE(options_.num_segments, 1);
}

std::shared_ptr<const EmbeddingStore::Segment> EmbeddingStore::BuildSegment(
    int64_t segment_index, const std::vector<int64_t>& seg_ids,
    const std::vector<const std::vector<float>*>& seg_rows, int64_t dim,
    uint64_t content_hash) const {
  auto segment = std::make_shared<Segment>();
  segment->index = segment_index;
  segment->count = static_cast<int64_t>(seg_ids.size());
  segment->dim = dim;
  segment->content_hash = content_hash;
  segment->owned_ids = seg_ids;
  segment->owned_raw.resize(seg_ids.size() * static_cast<size_t>(dim));
  segment->owned_norm.resize(segment->owned_raw.size());
  for (size_t row = 0; row < seg_rows.size(); ++row) {
    const std::vector<float>& src = *seg_rows[row];
    float* raw = segment->owned_raw.data() + row * static_cast<size_t>(dim);
    std::copy(src.begin(), src.end(), raw);
    ann::L2NormalizeInto(
        raw, dim, segment->owned_norm.data() + row * static_cast<size_t>(dim));
  }
  segment->ids = segment->owned_ids.data();
  segment->raw = segment->owned_raw.data();
  segment->norm = segment->owned_norm.data();
  segment->flat.AttachStorage(segment->ids, segment->norm, segment->count,
                              dim);

  ann::HnswOptions hnsw_options = options_.hnsw;
  hnsw_options.seed = ann::SeedForSegment(options_.hnsw.seed, segment_index);
  auto hnsw = std::make_unique<ann::HnswIndex>(hnsw_options);
  hnsw->AttachStorage(segment->ids, segment->norm, segment->count, dim);
  segment->hnsw_ready = true;
  for (int64_t row = 0; row < segment->count; ++row) {
    if (util::Status fault = FAULT_POINT("store.build"); !fault.ok()) {
      LOG(WARNING) << "HNSW build aborted after " << row
                   << " inserts in segment " << segment_index
                   << "; segment degrades to flat tier: " << fault.ToString();
      hnsw.reset();
      segment->hnsw_ready = false;
      break;
    }
    hnsw->InsertNode();
  }
  segment->hnsw = std::move(hnsw);
  return segment;
}

void EmbeddingStore::Rebuild(
    const std::vector<int>& ids,
    const std::vector<std::vector<float>>& embeddings) {
  CHECK_EQ(ids.size(), embeddings.size());
  // Build the whole snapshot off to the side: readers keep serving the
  // previous generation until the single publication below.
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->hnsw = options_.hnsw;
  RebuildStats stats;
  if (ids.empty()) {
    Publish(std::move(snapshot), stats);
    return;
  }

  const int64_t dim = static_cast<int64_t>(embeddings[0].size());
  int64_t max_id = -1;
  for (size_t i = 0; i < ids.size(); ++i) {
    CHECK_GE(ids[i], 0);
    CHECK_EQ(static_cast<int64_t>(embeddings[i].size()), dim)
        << "EmbeddingStore dimension mismatch at id " << ids[i];
    max_id = std::max(max_id, static_cast<int64_t>(ids[i]));
  }
  const int64_t num_segments = options_.num_segments;
  const int64_t span = (max_id + num_segments) / num_segments;  // ceil.
  const int64_t num_ranges = max_id / span + 1;
  snapshot->dim = dim;
  snapshot->count = static_cast<int64_t>(ids.size());
  snapshot->span = span;
  snapshot->max_id = max_id;
  snapshot->segments.resize(static_cast<size_t>(num_ranges));

  // Bucket rows into id-ranges and canonicalise each range: sorted by
  // ascending id, which fixes both the content hash and the HNSW
  // insertion order.
  std::vector<std::vector<int64_t>> range_ids(
      static_cast<size_t>(num_ranges));
  std::vector<std::vector<const std::vector<float>*>> range_rows(
      static_cast<size_t>(num_ranges));
  {
    std::vector<std::vector<size_t>> order(static_cast<size_t>(num_ranges));
    for (size_t i = 0; i < ids.size(); ++i) {
      order[static_cast<size_t>(ids[i] / span)].push_back(i);
    }
    for (int64_t r = 0; r < num_ranges; ++r) {
      auto& rows = order[static_cast<size_t>(r)];
      std::sort(rows.begin(), rows.end(), [&ids](size_t a, size_t b) {
        return ids[a] < ids[b];
      });
      range_ids[static_cast<size_t>(r)].reserve(rows.size());
      range_rows[static_cast<size_t>(r)].reserve(rows.size());
      for (size_t i : rows) {
        auto& rids = range_ids[static_cast<size_t>(r)];
        CHECK(rids.empty() || rids.back() != ids[i])
            << "duplicate store id " << ids[i];
        rids.push_back(ids[i]);
        range_rows[static_cast<size_t>(r)].push_back(&embeddings[i]);
      }
    }
  }

  // Copy-on-write: hash each range and reuse the previous snapshot's
  // segment by pointer when (span, dim, content) all match.
  std::shared_ptr<const Snapshot> previous;
  {
    std::lock_guard<std::mutex> lock(mu_);
    previous = current_;
  }
  const bool comparable =
      previous != nullptr && previous->span == span && previous->dim == dim;
  std::vector<uint64_t> range_hash(static_cast<size_t>(num_ranges), 0);
  std::vector<int64_t> dirty;
  for (int64_t r = 0; r < num_ranges; ++r) {
    const auto& rids = range_ids[static_cast<size_t>(r)];
    if (rids.empty()) continue;
    uint64_t h = util::HashBytes(&dim, sizeof(dim));
    const int64_t count = static_cast<int64_t>(rids.size());
    h = util::HashBytes(&count, sizeof(count), h);
    h = util::HashBytes(rids.data(), rids.size() * sizeof(int64_t), h);
    for (const std::vector<float>* row : range_rows[static_cast<size_t>(r)]) {
      h = util::HashBytes(row->data(), row->size() * sizeof(float), h);
    }
    range_hash[static_cast<size_t>(r)] = h;
    // Reuse requires a healthy segment: a degraded one (aborted HNSW
    // build) is rebuilt even when its content is unchanged, so the next
    // refresh heals the degradation instead of pinning it forever.
    if (comparable && static_cast<size_t>(r) < previous->segments.size() &&
        previous->segments[static_cast<size_t>(r)] != nullptr &&
        previous->segments[static_cast<size_t>(r)]->hnsw_ready &&
        previous->segments[static_cast<size_t>(r)]->content_hash == h &&
        previous->segments[static_cast<size_t>(r)]->count == count) {
      snapshot->segments[static_cast<size_t>(r)] =
          previous->segments[static_cast<size_t>(r)];
      ++stats.segments_reused;
    } else {
      dirty.push_back(r);
    }
  }

  // Only dirty ranges build; independent segments build in parallel (the
  // per-insert ParallelFor inside HnswIndex nests, so it runs inline).
  stats.segments_built = static_cast<int64_t>(dirty.size());
  util::ParallelFor(
      0, static_cast<int64_t>(dirty.size()), 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          const int64_t r = dirty[static_cast<size_t>(i)];
          snapshot->segments[static_cast<size_t>(r)] = BuildSegment(
              r, range_ids[static_cast<size_t>(r)],
              range_rows[static_cast<size_t>(r)], dim,
              range_hash[static_cast<size_t>(r)]);
        }
      });

  IndexShards(snapshot.get());
  Publish(std::move(snapshot), stats);
}

void EmbeddingStore::Publish(std::shared_ptr<Snapshot> snapshot,
                             RebuildStats stats) {
  std::lock_guard<std::mutex> lock(mu_);
  snapshot->generation = next_generation_++;
  last_rebuild_ = stats;
  current_ = std::move(snapshot);
}

EmbeddingStore::RebuildStats EmbeddingStore::last_rebuild_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_rebuild_;
}

util::Status EmbeddingStore::Save(const std::string& dir) const {
  std::shared_ptr<const Snapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = current_;
  }
  if (snapshot == nullptr || snapshot->count == 0) {
    return util::Status::FailedPrecondition(
        "cannot save an empty embedding store");
  }
  if (util::Status s = EnsureDirectory(dir); !s.ok()) return s;

  StoreManifest manifest;
  manifest.dim = snapshot->dim;
  manifest.span = snapshot->span;
  manifest.count = snapshot->count;
  manifest.hnsw = snapshot->hnsw;
  for (const Segment* segment : snapshot->shard_segments) {
    if (util::Status s = SaveSegmentFile(
            dir + "/" + SegmentFileName(segment->index), *segment);
        !s.ok()) {
      return s;
    }
    manifest.entries.push_back(StoreManifest::Entry{
        segment->index, segment->count, segment->content_hash});
  }
  // The manifest goes last: until it lands, the directory is not a
  // loadable store, so a crash above can never publish a partial one.
  return SaveManifest(dir + "/manifest.xtm", manifest);
}

util::Status EmbeddingStore::Load(const std::string& dir) {
  auto manifest_or = LoadManifest(dir + "/manifest.xtm");
  if (!manifest_or.ok()) return manifest_or.status();
  const StoreManifest& manifest = *manifest_or;

  auto snapshot = std::make_shared<Snapshot>();
  snapshot->dim = manifest.dim;
  snapshot->span = manifest.span;
  snapshot->count = manifest.count;
  snapshot->hnsw = manifest.hnsw;
  const int64_t num_ranges = manifest.entries.back().index + 1;
  snapshot->segments.resize(static_cast<size_t>(num_ranges));
  for (const StoreManifest::Entry& entry : manifest.entries) {
    auto segment_or = LoadSegmentFile(
        dir + "/" + SegmentFileName(entry.index), manifest, entry);
    if (!segment_or.ok()) return segment_or.status();
    snapshot->segments[static_cast<size_t>(entry.index)] =
        std::move(segment_or.value());
    const Segment& segment =
        *snapshot->segments[static_cast<size_t>(entry.index)];
    snapshot->max_id =
        std::max(snapshot->max_id, segment.ids[segment.count - 1]);
  }
  IndexShards(snapshot.get());
  Publish(std::move(snapshot), RebuildStats{});
  return util::Status::OK();
}

EmbeddingStore::View EmbeddingStore::view() const {
  std::lock_guard<std::mutex> lock(mu_);
  return View(current_);
}

int64_t EmbeddingStore::degraded_searches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ == nullptr
             ? 0
             : current_->degraded_searches.load(std::memory_order_relaxed);
}

std::vector<ann::SearchResult> EmbeddingStore::View::Search(
    const std::vector<float>& query, int k, int exclude_id,
    bool* used_fallback) const {
  std::vector<ann::SearchResult> out;
  SearchInto(query, k, exclude_id, &out, used_fallback);
  return out;
}

void EmbeddingStore::View::SearchInto(const std::vector<float>& query, int k,
                                      int exclude_id,
                                      std::vector<ann::SearchResult>* out,
                                      bool* used_fallback) const {
  out->clear();
  if (used_fallback != nullptr) *used_fallback = false;
  if (snapshot_ == nullptr || snapshot_->count == 0) {
    return;  // Nothing stored yet.
  }
  if (static_cast<int64_t>(query.size()) != snapshot_->dim) {
    // A malformed query degrades to "no neighbours", not an abort; the
    // caller (GE retrieval) has a recovery path for empty results.
    LOG(WARNING) << "EmbeddingStore: query dim " << query.size()
                 << " != store dim " << snapshot_->dim
                 << "; returning no results";
    return;
  }

  ann::ShardedQueryStats stats;
  ann::ShardedSearchInto(snapshot_->shards.data(),
                         static_cast<int64_t>(snapshot_->shards.size()),
                         query, k, exclude_id, out, &stats);
  if (stats.any_fallback()) {
    snapshot_->degraded_searches.fetch_add(1, std::memory_order_relaxed);
    if (used_fallback != nullptr) *used_fallback = true;
  }
}

EmbeddingStore::EmbeddingRef EmbeddingStore::View::Embedding(int id) const {
  CHECK(Contains(id)) << "no embedding stored for id " << id;
  const Segment& segment =
      *snapshot_->segments[static_cast<size_t>(id / snapshot_->span)];
  const int64_t row = segment.RowOf(id);
  return EmbeddingRef(segment.raw + row * segment.dim, segment.dim);
}

bool EmbeddingStore::View::Contains(int id) const {
  if (snapshot_ == nullptr || id < 0 || snapshot_->span <= 0 ||
      static_cast<int64_t>(id) > snapshot_->max_id) {
    return false;
  }
  const auto& segment =
      snapshot_->segments[static_cast<size_t>(id / snapshot_->span)];
  return segment != nullptr && segment->RowOf(id) >= 0;
}

bool EmbeddingStore::View::hnsw_ready() const {
  if (snapshot_ == nullptr) return false;
  for (const Segment* segment : snapshot_->shard_segments) {
    if (!segment->hnsw_ready) return false;
  }
  return true;
}

bool EmbeddingStore::View::segment_hnsw_ready(int shard) const {
  CHECK(snapshot_ != nullptr && shard >= 0 &&
        static_cast<size_t>(shard) < snapshot_->shard_segments.size());
  return snapshot_->shard_segments[static_cast<size_t>(shard)]->hnsw_ready;
}

}  // namespace explainti::core
