#include "core/embedding_store.h"

#include "util/fault_injection.h"
#include "util/logging.h"

namespace explainti::core {

EmbeddingStore::EmbeddingStore(ann::HnswOptions hnsw_options)
    : hnsw_options_(hnsw_options) {}

void EmbeddingStore::Rebuild(
    const std::vector<int>& ids,
    const std::vector<std::vector<float>>& embeddings) {
  CHECK_EQ(ids.size(), embeddings.size());
  hnsw_ = std::make_unique<ann::HnswIndex>(hnsw_options_);
  flat_ = std::make_unique<ann::FlatIndex>();
  hnsw_ready_ = true;
  count_ = 0;
  degraded_searches_.store(0, std::memory_order_relaxed);
  embeddings_.clear();
  present_.clear();
  for (size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    CHECK_GE(id, 0);
    if (static_cast<size_t>(id) >= embeddings_.size()) {
      embeddings_.resize(static_cast<size_t>(id) + 1);
      present_.resize(static_cast<size_t>(id) + 1, false);
    }
    CHECK(!present_[static_cast<size_t>(id)]) << "duplicate store id " << id;
    embeddings_[static_cast<size_t>(id)] = embeddings[i];
    present_[static_cast<size_t>(id)] = true;
    flat_->Add(id, embeddings[i]);
    ++count_;
    if (hnsw_ready_) {
      if (util::Status fault = FAULT_POINT("store.build"); !fault.ok()) {
        LOG(WARNING) << "HNSW build aborted after " << i
                     << " inserts; store degrades to flat index: "
                     << fault.ToString();
        hnsw_.reset();
        hnsw_ready_ = false;
      } else {
        hnsw_->Add(id, embeddings[i]);
      }
    }
  }
}

std::vector<ann::SearchResult> EmbeddingStore::Search(
    const std::vector<float>& query, int k, int exclude_id,
    bool* used_fallback) const {
  if (used_fallback != nullptr) *used_fallback = false;
  if (flat_ == nullptr || count_ == 0) return {};  // Nothing stored yet.

  // Over-fetch by one so the self-hit can be dropped.
  std::vector<ann::SearchResult> hits;
  bool degraded = !hnsw_ready_;
  if (!degraded) {
    if (util::Status fault = FAULT_POINT("ann.query"); !fault.ok()) {
      LOG(WARNING) << "ANN query failed, falling back to flat index: "
                   << fault.ToString();
      degraded = true;
    } else {
      hits = hnsw_->Search(query, k + 1);
      // A partially built graph can come back empty on a non-empty store.
      if (hits.empty()) degraded = true;
    }
  }
  if (degraded) {
    hits = flat_->Search(query, k + 1);
    degraded_searches_.fetch_add(1, std::memory_order_relaxed);
    if (used_fallback != nullptr) *used_fallback = true;
  }

  std::vector<ann::SearchResult> out;
  out.reserve(static_cast<size_t>(k));
  for (const ann::SearchResult& hit : hits) {
    if (static_cast<int>(hit.id) == exclude_id) continue;
    out.push_back(hit);
    if (static_cast<int>(out.size()) == k) break;
  }
  return out;
}

const std::vector<float>& EmbeddingStore::Embedding(int id) const {
  CHECK(Contains(id)) << "no embedding stored for id " << id;
  return embeddings_[static_cast<size_t>(id)];
}

bool EmbeddingStore::Contains(int id) const {
  return id >= 0 && static_cast<size_t>(id) < present_.size() &&
         present_[static_cast<size_t>(id)];
}

}  // namespace explainti::core
