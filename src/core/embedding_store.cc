#include "core/embedding_store.h"

#include "util/logging.h"

namespace explainti::core {

EmbeddingStore::EmbeddingStore(ann::HnswOptions hnsw_options)
    : hnsw_options_(hnsw_options) {}

void EmbeddingStore::Rebuild(
    const std::vector<int>& ids,
    const std::vector<std::vector<float>>& embeddings) {
  CHECK_EQ(ids.size(), embeddings.size());
  index_ = std::make_unique<ann::HnswIndex>(hnsw_options_);
  embeddings_.clear();
  present_.clear();
  for (size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    CHECK_GE(id, 0);
    if (static_cast<size_t>(id) >= embeddings_.size()) {
      embeddings_.resize(static_cast<size_t>(id) + 1);
      present_.resize(static_cast<size_t>(id) + 1, false);
    }
    CHECK(!present_[static_cast<size_t>(id)]) << "duplicate store id " << id;
    embeddings_[static_cast<size_t>(id)] = embeddings[i];
    present_[static_cast<size_t>(id)] = true;
    index_->Add(id, embeddings[i]);
  }
}

std::vector<ann::SearchResult> EmbeddingStore::Search(
    const std::vector<float>& query, int k, int exclude_id) const {
  CHECK(index_ != nullptr) << "EmbeddingStore::Search before Rebuild";
  // Over-fetch by one so the self-hit can be dropped.
  std::vector<ann::SearchResult> hits = index_->Search(query, k + 1);
  std::vector<ann::SearchResult> out;
  out.reserve(static_cast<size_t>(k));
  for (const ann::SearchResult& hit : hits) {
    if (static_cast<int>(hit.id) == exclude_id) continue;
    out.push_back(hit);
    if (static_cast<int>(out.size()) == k) break;
  }
  return out;
}

const std::vector<float>& EmbeddingStore::Embedding(int id) const {
  CHECK(Contains(id)) << "no embedding stored for id " << id;
  return embeddings_[static_cast<size_t>(id)];
}

bool EmbeddingStore::Contains(int id) const {
  return id >= 0 && static_cast<size_t>(id) < present_.size() &&
         present_[static_cast<size_t>(id)];
}

}  // namespace explainti::core
