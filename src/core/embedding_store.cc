#include "core/embedding_store.h"

#include "util/fault_injection.h"
#include "util/logging.h"

namespace explainti::core {

EmbeddingStore::EmbeddingStore(ann::HnswOptions hnsw_options)
    : hnsw_options_(hnsw_options) {}

void EmbeddingStore::Rebuild(
    const std::vector<int>& ids,
    const std::vector<std::vector<float>>& embeddings) {
  CHECK_EQ(ids.size(), embeddings.size());
  // Build the whole snapshot off to the side: readers keep serving the
  // previous generation until the single publication below.
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->hnsw = std::make_unique<ann::HnswIndex>(hnsw_options_);
  snapshot->flat = std::make_unique<ann::FlatIndex>();
  snapshot->hnsw_ready = true;
  for (size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    CHECK_GE(id, 0);
    if (static_cast<size_t>(id) >= snapshot->embeddings.size()) {
      snapshot->embeddings.resize(static_cast<size_t>(id) + 1);
      snapshot->present.resize(static_cast<size_t>(id) + 1, false);
    }
    CHECK(!snapshot->present[static_cast<size_t>(id)])
        << "duplicate store id " << id;
    snapshot->embeddings[static_cast<size_t>(id)] = embeddings[i];
    snapshot->present[static_cast<size_t>(id)] = true;
    snapshot->flat->Add(id, embeddings[i]);
    ++snapshot->count;
    if (snapshot->hnsw_ready) {
      if (util::Status fault = FAULT_POINT("store.build"); !fault.ok()) {
        LOG(WARNING) << "HNSW build aborted after " << i
                     << " inserts; store degrades to flat index: "
                     << fault.ToString();
        snapshot->hnsw.reset();
        snapshot->hnsw_ready = false;
      } else {
        snapshot->hnsw->Add(id, embeddings[i]);
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  snapshot->generation = next_generation_++;
  current_ = std::move(snapshot);
}

EmbeddingStore::View EmbeddingStore::view() const {
  std::lock_guard<std::mutex> lock(mu_);
  return View(current_);
}

const std::vector<float>& EmbeddingStore::Embedding(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(current_ != nullptr && id >= 0 &&
        static_cast<size_t>(id) < current_->present.size() &&
        current_->present[static_cast<size_t>(id)])
      << "no embedding stored for id " << id;
  return current_->embeddings[static_cast<size_t>(id)];
}

int64_t EmbeddingStore::degraded_searches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ == nullptr
             ? 0
             : current_->degraded_searches.load(std::memory_order_relaxed);
}

std::vector<ann::SearchResult> EmbeddingStore::View::Search(
    const std::vector<float>& query, int k, int exclude_id,
    bool* used_fallback) const {
  if (used_fallback != nullptr) *used_fallback = false;
  if (snapshot_ == nullptr || snapshot_->count == 0) {
    return {};  // Nothing stored yet.
  }

  // Over-fetch by one so the self-hit can be dropped.
  std::vector<ann::SearchResult> hits;
  bool degraded = !snapshot_->hnsw_ready;
  if (!degraded) {
    if (util::Status fault = FAULT_POINT("ann.query"); !fault.ok()) {
      LOG(WARNING) << "ANN query failed, falling back to flat index: "
                   << fault.ToString();
      degraded = true;
    } else {
      hits = snapshot_->hnsw->Search(query, k + 1);
      // A partially built graph can come back empty on a non-empty store.
      if (hits.empty()) degraded = true;
    }
  }
  if (degraded) {
    hits = snapshot_->flat->Search(query, k + 1);
    snapshot_->degraded_searches.fetch_add(1, std::memory_order_relaxed);
    if (used_fallback != nullptr) *used_fallback = true;
  }

  std::vector<ann::SearchResult> out;
  out.reserve(static_cast<size_t>(k));
  for (const ann::SearchResult& hit : hits) {
    if (static_cast<int>(hit.id) == exclude_id) continue;
    out.push_back(hit);
    if (static_cast<int>(out.size()) == k) break;
  }
  return out;
}

const std::vector<float>& EmbeddingStore::View::Embedding(int id) const {
  CHECK(Contains(id)) << "no embedding stored for id " << id;
  return snapshot_->embeddings[static_cast<size_t>(id)];
}

bool EmbeddingStore::View::Contains(int id) const {
  return snapshot_ != nullptr && id >= 0 &&
         static_cast<size_t>(id) < snapshot_->present.size() &&
         snapshot_->present[static_cast<size_t>(id)];
}

}  // namespace explainti::core
