#include "core/task_data.h"

#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace explainti::core {

const char* TaskKindName(TaskKind kind) {
  return kind == TaskKind::kType ? "type" : "relation";
}

std::string TaskData::SampleText(int sample_id) const {
  CHECK(sample_id >= 0 &&
        sample_id < static_cast<int>(samples.size()));
  const TaskSample& sample = samples[static_cast<size_t>(sample_id)];
  std::vector<std::string> words;
  for (const std::string& token : sample.seq.tokens) {
    if (token.size() >= 2 && token[0] == '[') continue;  // Special tokens.
    if (util::StartsWith(token, "##") && !words.empty()) {
      words.back() += token.substr(2);
    } else {
      words.push_back(token);
    }
  }
  return util::Join(words, " ");
}

namespace {

std::vector<int> SampleIdsOf(const std::vector<int>& corpus_ids) {
  return corpus_ids;  // Task sample ids coincide with corpus sample order.
}

}  // namespace

TaskData BuildTypeTaskData(const data::TableCorpus& corpus,
                           const text::SequenceSerializer& serializer) {
  TaskData task;
  task.kind = TaskKind::kType;
  task.multi_label = corpus.type_multi_label;
  task.num_labels = static_cast<int>(corpus.type_label_names.size());
  task.label_names = corpus.type_label_names;

  task.samples.reserve(corpus.type_samples.size());
  for (size_t i = 0; i < corpus.type_samples.size(); ++i) {
    const data::TypeSample& src = corpus.type_samples[i];
    TaskSample sample;
    sample.id = static_cast<int>(i);
    sample.seq = serializer.SerializeColumn(corpus.ColumnTextOf(src));
    sample.labels = src.labels;
    sample.evidence = src.evidence;

    const data::Table& table =
        corpus.tables[static_cast<size_t>(src.table_index)];
    const std::string title_key = util::ToLower(table.title);
    const std::string header_key = util::ToLower(
        table.columns[static_cast<size_t>(src.column_index)].header);
    task.graph.AddSample(sample.id, title_key, header_key);
    task.samples.push_back(std::move(sample));
  }

  task.train_ids = SampleIdsOf(corpus.TypeSampleIds(data::SplitPart::kTrain));
  task.valid_ids = SampleIdsOf(corpus.TypeSampleIds(data::SplitPart::kValid));
  task.test_ids = SampleIdsOf(corpus.TypeSampleIds(data::SplitPart::kTest));
  task.is_train.assign(task.samples.size(), false);
  for (int id : task.train_ids) task.is_train[static_cast<size_t>(id)] = true;
  return task;
}

TaskData BuildRelationTaskData(const data::TableCorpus& corpus,
                               const text::SequenceSerializer& serializer) {
  TaskData task;
  task.kind = TaskKind::kRelation;
  task.multi_label = false;
  task.num_labels = static_cast<int>(corpus.relation_label_names.size());
  task.label_names = corpus.relation_label_names;

  task.samples.reserve(corpus.relation_samples.size());
  for (size_t i = 0; i < corpus.relation_samples.size(); ++i) {
    const data::RelationSample& src = corpus.relation_samples[i];
    TaskSample sample;
    sample.id = static_cast<int>(i);
    sample.seq = serializer.SerializePair(
        corpus.ColumnTextOf(src.table_index, src.left_column),
        corpus.ColumnTextOf(src.table_index, src.right_column));
    sample.labels = {src.label};
    sample.evidence = src.evidence;

    const data::Table& table =
        corpus.tables[static_cast<size_t>(src.table_index)];
    const std::string title_key = util::ToLower(table.title);
    const std::string header_key =
        util::ToLower(
            table.columns[static_cast<size_t>(src.left_column)].header) +
        "||" +
        util::ToLower(
            table.columns[static_cast<size_t>(src.right_column)].header);
    task.graph.AddSample(sample.id, title_key, header_key);
    task.samples.push_back(std::move(sample));
  }

  task.train_ids =
      SampleIdsOf(corpus.RelationSampleIds(data::SplitPart::kTrain));
  task.valid_ids =
      SampleIdsOf(corpus.RelationSampleIds(data::SplitPart::kValid));
  task.test_ids =
      SampleIdsOf(corpus.RelationSampleIds(data::SplitPart::kTest));
  task.is_train.assign(task.samples.size(), false);
  for (int id : task.train_ids) task.is_train[static_cast<size_t>(id)] = true;
  return task;
}

}  // namespace explainti::core
