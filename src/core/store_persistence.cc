#include "core/store_persistence.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/binary_io.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/mmap_file.h"

namespace explainti::core {

namespace {

constexpr char kSegmentMagic[] = "XTISEG01";
constexpr char kManifestMagic[] = "XTIMAN01";
constexpr uint32_t kVersion = 1;
constexpr size_t kSegmentHeaderBytes = 64;
constexpr uint32_t kFlagHnswReady = 1u;

/// Appends `buffer` to `path` atomically: full image to a tmp file, then
/// rename. The "store.save" fault fires mid-write, leaving a torn tmp
/// that is removed before reporting — `path` itself is never torn.
util::Status AtomicWrite(const std::string& path, const std::string& buffer) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return util::Status::IoError("cannot open " + tmp);
    const size_t half = buffer.size() / 2;
    out.write(buffer.data(), static_cast<std::streamsize>(half));
    util::Status fault = FAULT_POINT("store.save");
    if (fault.ok()) {
      out.write(buffer.data() + half,
                static_cast<std::streamsize>(buffer.size() - half));
    }
    out.flush();
    if (!fault.ok() || !out) {
      out.close();
      std::remove(tmp.c_str());
      return fault.ok() ? util::Status::IoError("write failed for " + tmp)
                        : fault;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return util::Status::OK();
}

/// Verifies magic + CRC32 footer of a loaded image and returns the byte
/// range between them (the body a BinaryReader should walk).
util::Status CheckFraming(const char* data, size_t size, const char* magic,
                          const std::string& path, const char* what) {
  if (size < 8 + sizeof(uint32_t) || std::memcmp(data, magic, 8) != 0) {
    return util::Status::InvalidArgument(std::string("not a ") + what +
                                         " file: " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data + size - sizeof(uint32_t), sizeof(uint32_t));
  const uint32_t actual_crc = util::Crc32(data, size - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return util::Status::InvalidArgument(
        std::string(what) + " CRC mismatch (corrupted or truncated): " +
        path);
  }
  return util::Status::OK();
}

}  // namespace

util::Status EnsureDirectory(const std::string& path) {
  if (path.empty()) return util::Status::InvalidArgument("empty directory");
  std::string partial;
  size_t pos = 0;
  while (pos <= path.size()) {
    const size_t next = path.find('/', pos);
    partial = next == std::string::npos ? path : path.substr(0, next);
    pos = next == std::string::npos ? path.size() + 1 : next + 1;
    if (partial.empty()) continue;  // Leading '/'.
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return util::Status::IoError("cannot create directory " + partial +
                                   ": " + std::strerror(errno));
    }
  }
  return util::Status::OK();
}

std::string SegmentFileName(int64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg_%06lld.xts",
                static_cast<long long>(index));
  return name;
}

util::Status SaveSegmentFile(const std::string& path,
                             const EmbeddingStore::Segment& segment) {
  CHECK_GT(segment.count, 0);
  std::string buffer;
  buffer.append(kSegmentMagic, 8);
  util::AppendPod(&buffer, kVersion);
  util::AppendPod(&buffer,
                  segment.hnsw_ready ? kFlagHnswReady : uint32_t{0});
  util::AppendPod(&buffer, segment.index);
  util::AppendPod(&buffer, segment.count);
  util::AppendPod(&buffer, segment.dim);
  util::AppendPod(&buffer, segment.content_hash);
  buffer.append(kSegmentHeaderBytes - buffer.size(), '\0');

  const size_t floats = static_cast<size_t>(segment.count * segment.dim);
  buffer.append(reinterpret_cast<const char*>(segment.ids),
                static_cast<size_t>(segment.count) * sizeof(int64_t));
  buffer.append(reinterpret_cast<const char*>(segment.raw),
                floats * sizeof(float));
  buffer.append(reinterpret_cast<const char*>(segment.norm),
                floats * sizeof(float));
  if (segment.hnsw_ready) {
    CHECK(segment.hnsw != nullptr);
    segment.hnsw->SerializeGraph(&buffer);
  }
  util::AppendPod(&buffer, util::Crc32(buffer));
  return AtomicWrite(path, buffer);
}

util::StatusOr<std::shared_ptr<const EmbeddingStore::Segment>>
LoadSegmentFile(const std::string& path, const StoreManifest& manifest,
                const StoreManifest::Entry& entry) {
  auto file_or = util::MappedFile::Open(path);
  if (!file_or.ok()) return file_or.status();
  std::shared_ptr<util::MappedFile> file = std::move(file_or.value());
  const char* data = file->data();
  const size_t size = file->size();
  if (util::Status framing =
          CheckFraming(data, size, kSegmentMagic, path, "segment");
      !framing.ok()) {
    return framing;
  }
  const auto malformed = [&path](const std::string& what) {
    return util::Status::InvalidArgument("malformed segment file " + path +
                                         ": " + what);
  };
  if (size < kSegmentHeaderBytes + sizeof(uint32_t)) {
    return malformed("short header");
  }

  util::BinaryReader header(data + 8, kSegmentHeaderBytes - 8);
  uint32_t version = 0;
  uint32_t flags = 0;
  int64_t index = 0;
  int64_t count = 0;
  int64_t dim = 0;
  uint64_t content_hash = 0;
  if (!header.Read(&version) || !header.Read(&flags) ||
      !header.Read(&index) || !header.Read(&count) || !header.Read(&dim) ||
      !header.Read(&content_hash)) {
    return malformed("truncated header");
  }
  if (version != kVersion) return malformed("unsupported version");
  if (index != entry.index || count != entry.count ||
      content_hash != entry.content_hash) {
    return malformed("header disagrees with the manifest entry");
  }
  if (dim != manifest.dim) return malformed("dimension mismatch");
  if (count <= 0 || dim <= 0) return malformed("empty segment");

  // Payload bounds. All offsets are computed in size_t after the header,
  // which is 64 bytes — so ids start 8-byte aligned and may be read
  // through typed pointers straight into the mapping.
  const size_t id_bytes = static_cast<size_t>(count) * sizeof(int64_t);
  const size_t row_bytes =
      static_cast<size_t>(count) * static_cast<size_t>(dim) * sizeof(float);
  const size_t graph_offset = kSegmentHeaderBytes + id_bytes + 2 * row_bytes;
  if (graph_offset + sizeof(uint32_t) > size) {
    return malformed("payload overruns the file");
  }

  auto segment = std::make_shared<EmbeddingStore::Segment>();
  segment->index = index;
  segment->count = count;
  segment->dim = dim;
  segment->content_hash = content_hash;
  segment->mapping = file;
  segment->ids =
      reinterpret_cast<const int64_t*>(data + kSegmentHeaderBytes);
  segment->raw = reinterpret_cast<const float*>(data + kSegmentHeaderBytes +
                                                id_bytes);
  segment->norm = reinterpret_cast<const float*>(
      data + kSegmentHeaderBytes + id_bytes + row_bytes);

  // Ids must be strictly ascending and confined to this segment's
  // id-range: together with the manifest that guarantees global
  // uniqueness without a cross-segment pass.
  const int64_t range_begin = index * manifest.span;
  const int64_t range_end = range_begin + manifest.span;
  for (int64_t i = 0; i < count; ++i) {
    const int64_t id = segment->ids[i];
    if (id < range_begin || id >= range_end ||
        (i > 0 && id <= segment->ids[i - 1])) {
      return malformed("ids out of order or outside the segment range");
    }
  }

  segment->flat.AttachStorage(segment->ids, segment->norm, count, dim);
  if ((flags & kFlagHnswReady) != 0) {
    ann::HnswOptions options = manifest.hnsw;
    options.seed = ann::SeedForSegment(manifest.hnsw.seed, index);
    auto hnsw = std::make_unique<ann::HnswIndex>(options);
    hnsw->AttachStorage(segment->ids, segment->norm, count, dim);
    util::BinaryReader graph(data + graph_offset,
                             size - graph_offset - sizeof(uint32_t));
    if (util::Status s = hnsw->LoadGraph(&graph); !s.ok()) return s;
    if (!graph.AtEnd()) return malformed("trailing bytes after the graph");
    segment->hnsw = std::move(hnsw);
    segment->hnsw_ready = true;
  } else if (graph_offset + sizeof(uint32_t) != size) {
    return malformed("trailing bytes in a flat-only segment");
  }
  return std::shared_ptr<const EmbeddingStore::Segment>(std::move(segment));
}

util::Status SaveManifest(const std::string& path,
                          const StoreManifest& manifest) {
  std::string buffer;
  buffer.append(kManifestMagic, 8);
  util::AppendPod(&buffer, kVersion);
  util::AppendPod(&buffer, uint32_t{0});  // Reserved.
  util::AppendPod(&buffer, manifest.dim);
  util::AppendPod(&buffer, manifest.span);
  util::AppendPod(&buffer, manifest.count);
  util::AppendPod(&buffer, static_cast<int64_t>(manifest.entries.size()));
  util::AppendPod(&buffer, manifest.hnsw.seed);
  util::AppendPod(&buffer, static_cast<int32_t>(manifest.hnsw.M));
  util::AppendPod(&buffer,
                  static_cast<int32_t>(manifest.hnsw.ef_construction));
  util::AppendPod(&buffer, static_cast<int32_t>(manifest.hnsw.ef_search));
  util::AppendPod(&buffer, int32_t{0});  // Reserved.
  for (const StoreManifest::Entry& entry : manifest.entries) {
    util::AppendPod(&buffer, entry.index);
    util::AppendPod(&buffer, entry.count);
    util::AppendPod(&buffer, entry.content_hash);
  }
  util::AppendPod(&buffer, util::Crc32(buffer));
  return AtomicWrite(path, buffer);
}

util::StatusOr<StoreManifest> LoadManifest(const std::string& path) {
  auto file_or = util::MappedFile::Open(path);
  if (!file_or.ok()) return file_or.status();
  const std::shared_ptr<util::MappedFile>& file = file_or.value();
  if (util::Status framing = CheckFraming(file->data(), file->size(),
                                          kManifestMagic, path, "manifest");
      !framing.ok()) {
    return framing;
  }
  const auto malformed = [&path](const std::string& what) {
    return util::Status::InvalidArgument("malformed manifest " + path +
                                         ": " + what);
  };
  util::BinaryReader reader(file->data() + 8,
                            file->size() - 8 - sizeof(uint32_t));
  uint32_t version = 0;
  uint32_t reserved32 = 0;
  StoreManifest manifest;
  int64_t num_entries = 0;
  int32_t m = 0;
  int32_t ef_construction = 0;
  int32_t ef_search = 0;
  int32_t reserved = 0;
  if (!reader.Read(&version) || !reader.Read(&reserved32) ||
      !reader.Read(&manifest.dim) || !reader.Read(&manifest.span) ||
      !reader.Read(&manifest.count) || !reader.Read(&num_entries) ||
      !reader.Read(&manifest.hnsw.seed) || !reader.Read(&m) ||
      !reader.Read(&ef_construction) || !reader.Read(&ef_search) ||
      !reader.Read(&reserved)) {
    return malformed("truncated header");
  }
  if (version != kVersion) return malformed("unsupported version");
  if (manifest.dim <= 0 || manifest.span <= 0 || manifest.count <= 0 ||
      num_entries <= 0 || m < 2 || ef_construction < m || ef_search < 1) {
    return malformed("implausible geometry or HNSW options");
  }
  manifest.hnsw.M = m;
  manifest.hnsw.ef_construction = ef_construction;
  manifest.hnsw.ef_search = ef_search;
  manifest.entries.resize(static_cast<size_t>(num_entries));
  int64_t total = 0;
  int64_t previous_index = -1;
  for (StoreManifest::Entry& entry : manifest.entries) {
    if (!reader.Read(&entry.index) || !reader.Read(&entry.count) ||
        !reader.Read(&entry.content_hash)) {
      return malformed("truncated entry table");
    }
    if (entry.index <= previous_index || entry.count <= 0 ||
        entry.count > manifest.span) {
      return malformed("entry table out of order or out of range");
    }
    previous_index = entry.index;
    total += entry.count;
  }
  if (total != manifest.count) {
    return malformed("entry counts do not sum to the store count");
  }
  if (!reader.AtEnd()) return malformed("trailing bytes");
  return manifest;
}

}  // namespace explainti::core
