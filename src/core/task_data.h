#ifndef EXPLAINTI_CORE_TASK_DATA_H_
#define EXPLAINTI_CORE_TASK_DATA_H_

#include <string>
#include <vector>

#include "data/corpus.h"
#include "graph/column_graph.h"
#include "text/serializer.h"

namespace explainti::core {

/// The two table-interpretation tasks (Definitions 1 and 2).
enum class TaskKind { kType = 0, kRelation = 1 };

const char* TaskKindName(TaskKind kind);

/// One serialised, task-ready sample.
struct TaskSample {
  int id = -1;                 ///< Dense id within the task.
  text::EncodedSequence seq;   ///< Serialised input X.
  std::vector<int> labels;     ///< Gold label ids.
  std::vector<std::string> evidence;  ///< Evidence-oracle tokens.
};

/// Everything a trainer needs for one task on one corpus: serialised
/// samples, split membership, label space, and the column (pair) graph of
/// Algorithm 3.
struct TaskData {
  TaskKind kind = TaskKind::kType;
  bool multi_label = false;
  int num_labels = 0;
  std::vector<std::string> label_names;
  std::vector<TaskSample> samples;  ///< Parallel to the corpus sample list.
  std::vector<int> train_ids;
  std::vector<int> valid_ids;
  std::vector<int> test_ids;
  std::vector<bool> is_train;  ///< Parallel to `samples`.
  graph::ColumnGraph graph;  ///< Over all samples (train + valid + test).

  /// True when `sample_id` is a training sample (graph neighbours outside
  /// the training set have no stored embedding and are skipped by SE).
  bool IsTrainSample(int sample_id) const {
    return sample_id >= 0 &&
           sample_id < static_cast<int>(is_train.size()) &&
           is_train[static_cast<size_t>(sample_id)];
  }

  /// The sample's serialised text (tokens joined), used when rendering
  /// global/structural explanations.
  std::string SampleText(int sample_id) const;
};

/// Builds the column-type task: serialises every column with `serializer`
/// and constructs the column graph G_t keyed by (title, header).
TaskData BuildTypeTaskData(const data::TableCorpus& corpus,
                           const text::SequenceSerializer& serializer);

/// Builds the column-relation task: serialises every annotated pair and
/// constructs the column-pair graph G_r keyed by (title, header pair).
TaskData BuildRelationTaskData(const data::TableCorpus& corpus,
                               const text::SequenceSerializer& serializer);

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_TASK_DATA_H_
