#ifndef EXPLAINTI_CORE_EMBEDDING_STORE_H_
#define EXPLAINTI_CORE_EMBEDDING_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "ann/index.h"
#include "ann/sharded_search.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace explainti::core {

/// The embedding store Q of Algorithm 2: the [CLS] embedding of every
/// training sample, plus ANN indexes over them for top-K retrieval.
///
/// Segmented architecture: a published Snapshot is a set of immutable
/// Segments — contiguous id-ranges, each carrying the raw embeddings, an
/// L2-normalised copy shared by both index tiers, an exact FlatIndex and
/// (when its build succeeded) an HNSW graph. Search() fans the query over
/// the segments through ann::ShardedSearchInto and merges with a bounded
/// heap under a total order, so results are bit-identical at any shard
/// count and thread count.
///
/// Copy-on-write rebuilds: Rebuild() hashes each id-range and reuses the
/// previous snapshot's segment by pointer when the range's content is
/// unchanged — only dirty ranges re-encode and re-index — then publishes
/// the new snapshot atomically. Readers pin one generation through a View
/// and keep answering from it while the next rebuild runs.
///
/// Degradation ladder, per segment: HNSW is the fast tier; when a
/// segment's build was aborted (fault site "store.build"), its query
/// fails (fault site "ann.query"), or a partial graph returns nothing for
/// a non-empty segment, that segment — and only that segment — answers
/// from its exact FlatIndex. `used_fallback` / `degraded_searches()`
/// report queries where any segment degraded.
///
/// Persistence: Save() writes one CRC32-footed file per segment plus a
/// manifest (see store_persistence.h); Load() reopens them via mmap (with
/// a read() fallback) and publishes the result as a normal snapshot, so a
/// restarted process serves bit-identical results without re-encoding the
/// corpus.
class EmbeddingStore {
 public:
  struct Options {
    ann::HnswOptions hnsw;
    /// Id-range segments per snapshot (>= 1). Segment i owns ids in
    /// [i*span, (i+1)*span) where span = ceil((max_id+1)/num_segments);
    /// per-segment HNSW seeds derive from hnsw.seed via
    /// ann::SeedForSegment.
    int num_segments = 1;
  };

  /// A borrowed, read-only embedding row. Valid while the View (or
  /// Snapshot) it came from is alive; the bytes may live in an mmap'd
  /// segment file, so there is no std::vector to hand out.
  class EmbeddingRef {
   public:
    EmbeddingRef(const float* data, int64_t dim) : data_(data), dim_(dim) {}
    const float* data() const { return data_; }
    int64_t size() const { return dim_; }
    float operator[](int64_t i) const { return data_[i]; }
    const float* begin() const { return data_; }
    const float* end() const { return data_ + dim_; }
    std::vector<float> ToVector() const {
      return std::vector<float>(data_, data_ + dim_);
    }

   private:
    const float* data_;
    int64_t dim_;
  };

  /// One immutable id-range of a snapshot. Built (or loaded) once, then
  /// shared by pointer across every snapshot whose range content is
  /// unchanged. Rows are sorted by ascending id — the canonical layout
  /// that makes content_hash and the HNSW insertion order reproducible.
  struct Segment {
    int64_t index = 0;  ///< Range ordinal: ids in [index*span, ...).
    int64_t count = 0;
    int64_t dim = 0;
    /// FNV-1a over (count, ids, raw rows) in canonical order; the dirty
    /// check Rebuild() uses for copy-on-write reuse.
    uint64_t content_hash = 0;
    bool hnsw_ready = false;

    // Payload. Either owned (fresh build) or borrowed from `mapping`
    // (loaded from disk); `ids`/`raw`/`norm` point at whichever is live.
    std::vector<int64_t> owned_ids;
    std::vector<float> owned_raw;
    std::vector<float> owned_norm;
    std::shared_ptr<util::MappedFile> mapping;
    const int64_t* ids = nullptr;
    const float* raw = nullptr;   ///< count x dim, caller's values.
    const float* norm = nullptr;  ///< count x dim, L2-normalised.

    ann::FlatIndex flat;
    std::unique_ptr<ann::HnswIndex> hnsw;  ///< Null when build aborted.

    /// Row index of `id` (binary search over the sorted ids), -1 if absent.
    int64_t RowOf(int64_t id) const;
  };

  /// One immutable published store generation. Built privately by
  /// Rebuild()/Load(); reachable only through a View. `degraded_searches`
  /// is the sole mutable field (telemetry, relaxed atomic).
  struct Snapshot {
    int64_t dim = 0;
    int64_t count = 0;
    int64_t span = 0;     ///< Ids per segment range.
    int64_t max_id = -1;
    uint64_t generation = 0;  ///< 1 for the first Rebuild, then +1 each.
    /// Options the segments were built with (Rebuild: the store's own;
    /// Load: the saved manifest's). Save() records these so a reloaded
    /// store searches with the same ef and derives the same seeds.
    ann::HnswOptions hnsw;
    /// Dense by range index; null entries are ranges with no ids.
    std::vector<std::shared_ptr<const Segment>> segments;
    /// The non-empty segments, in range order: what the fan-out searches.
    std::vector<ann::ShardRef> shards;
    std::vector<const Segment*> shard_segments;  ///< Parallel to shards.
    mutable std::atomic<int64_t> degraded_searches{0};
  };

  /// A read handle pinning one snapshot. Cheap to copy (shared_ptr);
  /// valid — and immutable — for its whole lifetime regardless of
  /// concurrent Rebuild() calls. Take one View per forward pass.
  class View {
   public:
    explicit View(std::shared_ptr<const Snapshot> snapshot)
        : snapshot_(std::move(snapshot)) {}

    /// Top-k most-similar stored samples, optionally excluding one id
    /// (the query sample itself during training). Sets `*used_fallback`
    /// (when non-null) to whether any segment answered from its flat
    /// tier instead of HNSW.
    std::vector<ann::SearchResult> Search(const std::vector<float>& query,
                                          int k, int exclude_id = -1,
                                          bool* used_fallback = nullptr) const;

    /// Allocation-reusing form of Search(): clears and fills `*out`,
    /// keeping its capacity. With a warm `out` (and warm thread-local
    /// fan-out scratch) a serial search performs zero heap allocations —
    /// the property the store bench gates.
    void SearchInto(const std::vector<float>& query, int k, int exclude_id,
                    std::vector<ann::SearchResult>* out,
                    bool* used_fallback = nullptr) const;

    /// The stored embedding for `id`; the reference lives as long as this
    /// View. Aborts when absent.
    EmbeddingRef Embedding(int id) const;

    /// True when `id` has a stored embedding.
    bool Contains(int id) const;

    /// Stored embeddings (flat tier; independent of HNSW health).
    int64_t size() const { return snapshot_ == nullptr ? 0 : snapshot_->count; }

    /// Embedding dimensionality (0 when empty).
    int64_t dim() const { return snapshot_ == nullptr ? 0 : snapshot_->dim; }

    /// False when any segment's HNSW build was aborted and that segment
    /// serves flat. Vacuously true for an empty store.
    bool hnsw_ready() const;

    /// Non-empty segments in this snapshot.
    int num_segments() const {
      return snapshot_ == nullptr
                 ? 0
                 : static_cast<int>(snapshot_->shards.size());
    }

    /// Whether non-empty segment `shard` (in range order) serves HNSW.
    bool segment_hnsw_ready(int shard) const;

    /// Largest stored id (-1 when empty).
    int64_t max_id() const {
      return snapshot_ == nullptr ? -1 : snapshot_->max_id;
    }

    /// Which Rebuild() produced this snapshot (0 = never rebuilt).
    uint64_t generation() const {
      return snapshot_ == nullptr ? 0 : snapshot_->generation;
    }

   private:
    std::shared_ptr<const Snapshot> snapshot_;  // Null before any Rebuild.
  };

  /// Counts of segment work done by the last Rebuild().
  struct RebuildStats {
    int64_t segments_built = 0;
    int64_t segments_reused = 0;
  };

  EmbeddingStore();  // Default Options: one segment.
  explicit EmbeddingStore(Options options);

  /// Replaces the store contents: builds a fresh snapshot aside and
  /// publishes it atomically (readers holding Views keep their old
  /// snapshot). `embeddings[i]` is stored under `ids[i]`; all vectors
  /// must share one dimensionality. Copy-on-write: id-ranges whose
  /// content hash matches the previous snapshot reuse that segment by
  /// pointer; only dirty ranges build, in parallel over the thread pool.
  /// The flat tier always builds; an injected "store.build" fault aborts
  /// one segment's HNSW build and degrades that segment alone.
  void Rebuild(const std::vector<int>& ids,
               const std::vector<std::vector<float>>& embeddings);

  /// What the last Rebuild() built vs reused.
  RebuildStats last_rebuild_stats() const;

  /// Persists the current snapshot: one segment file per non-empty range
  /// plus `manifest.xtm`, all CRC32-footed and written via tmp+rename
  /// (the manifest last, so a crash mid-save can never publish a
  /// manifest naming missing segments). Fails on an empty store.
  util::Status Save(const std::string& dir) const;

  /// Loads a Save()d store and publishes it as the current snapshot
  /// (generation advances as if rebuilt). Segments map via mmap with a
  /// read() fallback; every file's CRC is verified before use, and any
  /// corruption returns a typed error (InvalidArgument for CRC/format,
  /// NotFound for missing files) with the store left on its previous
  /// snapshot. Search results over a loaded store are bit-identical to
  /// the store that saved it.
  util::Status Load(const std::string& dir);

  /// Pins the current snapshot. Thread-safe against concurrent Rebuild.
  View view() const;

  // Convenience pass-throughs operating on the instantaneous current
  // snapshot. Multi-read consistency across a rebuild is NOT guaranteed
  // here — readers that must see one generation take view() once instead.
  // (There is deliberately no Embedding() pass-through: a borrowed row
  // must be pinned by a View for its whole lifetime.)
  std::vector<ann::SearchResult> Search(const std::vector<float>& query,
                                        int k, int exclude_id = -1,
                                        bool* used_fallback = nullptr) const {
    return view().Search(query, k, exclude_id, used_fallback);
  }
  bool Contains(int id) const { return view().Contains(id); }
  int64_t size() const { return view().size(); }
  bool hnsw_ready() const { return view().hnsw_ready(); }

  /// Searches answered (fully or partly) by a flat tier since the last
  /// Rebuild.
  int64_t degraded_searches() const;

  const Options& options() const { return options_; }

 private:
  /// Builds one segment from rows (sorted by id) of the rebuild input.
  std::shared_ptr<const Segment> BuildSegment(
      int64_t segment_index, const std::vector<int64_t>& seg_ids,
      const std::vector<const std::vector<float>*>& seg_rows, int64_t dim,
      uint64_t content_hash) const;

  /// Publishes `snapshot` as the current generation.
  void Publish(std::shared_ptr<Snapshot> snapshot, RebuildStats stats);

  Options options_;
  uint64_t next_generation_ = 1;  // Guarded by mu_ (publish-side only).
  RebuildStats last_rebuild_;     // Guarded by mu_.
  mutable std::mutex mu_;  // Guards publication of current_.
  std::shared_ptr<const Snapshot> current_;  // Null before first Rebuild.
};

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_EMBEDDING_STORE_H_
