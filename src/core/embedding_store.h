#ifndef EXPLAINTI_CORE_EMBEDDING_STORE_H_
#define EXPLAINTI_CORE_EMBEDDING_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "ann/index.h"

namespace explainti::core {

/// The embedding store Q of Algorithm 2: the [CLS] embedding of every
/// training sample, plus an HNSW index over them for top-K retrieval.
///
/// The store is rebuilt ("updated after every fixed number of training
/// steps") by re-encoding the training set and calling Rebuild(); ids are
/// the caller's training-sample indices.
///
/// Copy-on-write snapshots: Rebuild() constructs a complete, immutable
/// Snapshot off to the side and publishes it atomically; readers pin one
/// snapshot through a View and keep reading it even while the next
/// rebuild runs and publishes. A forward pass that takes a View therefore
/// sees ONE store generation end to end — concurrent rebuilds can never
/// hand it a half-built index or evidence mixed across generations — and
/// the old snapshot is freed when the last View drops.
///
/// Degradation ladder (mirroring how faiss-backed services degrade): the
/// HNSW index is the fast tier; when its build was aborted (fault site
/// "store.build"), a query fails (fault site "ann.query"), or a partially
/// built graph returns nothing for a non-empty store, Search() falls back
/// to the exact FlatIndex — same results, O(N·d) cost — and reports the
/// fallback through the `used_fallback` out-param and
/// `degraded_searches()`. Before any Rebuild() the store is simply empty
/// and Search() returns no hits.
class EmbeddingStore {
 public:
  /// One immutable published store generation. Built privately by
  /// Rebuild(); reachable only through a View. `degraded_searches` is the
  /// sole mutable field (telemetry, relaxed atomic).
  struct Snapshot {
    std::unique_ptr<ann::HnswIndex> hnsw;
    std::unique_ptr<ann::FlatIndex> flat;
    bool hnsw_ready = false;
    int64_t count = 0;
    uint64_t generation = 0;  ///< 1 for the first Rebuild, then +1 each.
    std::vector<std::vector<float>> embeddings;  // Dense by id.
    std::vector<bool> present;
    mutable std::atomic<int64_t> degraded_searches{0};
  };

  /// A read handle pinning one snapshot. Cheap to copy (shared_ptr);
  /// valid — and immutable — for its whole lifetime regardless of
  /// concurrent Rebuild() calls. Take one View per forward pass.
  class View {
   public:
    explicit View(std::shared_ptr<const Snapshot> snapshot)
        : snapshot_(std::move(snapshot)) {}

    /// Top-k most-similar stored samples, optionally excluding one id
    /// (the query sample itself during training). Sets `*used_fallback`
    /// (when non-null) to whether the flat tier answered instead of HNSW.
    std::vector<ann::SearchResult> Search(const std::vector<float>& query,
                                          int k, int exclude_id = -1,
                                          bool* used_fallback = nullptr) const;

    /// The stored embedding for `id`; the reference lives as long as this
    /// View. Aborts when absent.
    const std::vector<float>& Embedding(int id) const;

    /// True when `id` has a stored embedding.
    bool Contains(int id) const;

    /// Stored embeddings (flat tier; independent of HNSW health).
    int64_t size() const { return snapshot_ == nullptr ? 0 : snapshot_->count; }

    /// False when the HNSW build was aborted and queries serve flat.
    bool hnsw_ready() const {
      return snapshot_ != nullptr && snapshot_->hnsw_ready;
    }

    /// Which Rebuild() produced this snapshot (0 = never rebuilt).
    uint64_t generation() const {
      return snapshot_ == nullptr ? 0 : snapshot_->generation;
    }

   private:
    std::shared_ptr<const Snapshot> snapshot_;  // Null before any Rebuild.
  };

  explicit EmbeddingStore(ann::HnswOptions hnsw_options = ann::HnswOptions());

  /// Replaces the store contents: builds a fresh snapshot aside and
  /// publishes it atomically (readers holding Views keep their old
  /// snapshot). `embeddings[i]` is stored under `ids[i]`; all vectors
  /// must share one dimensionality. The flat tier always builds; an
  /// injected "store.build" fault aborts the HNSW build mid-way and the
  /// snapshot serves from the flat tier.
  void Rebuild(const std::vector<int>& ids,
               const std::vector<std::vector<float>>& embeddings);

  /// Pins the current snapshot. Thread-safe against concurrent Rebuild.
  View view() const;

  // Convenience pass-throughs operating on the instantaneous current
  // snapshot. Multi-read consistency across a rebuild is NOT guaranteed
  // here — readers that must see one generation take view() once instead.
  std::vector<ann::SearchResult> Search(const std::vector<float>& query,
                                        int k, int exclude_id = -1,
                                        bool* used_fallback = nullptr) const {
    return view().Search(query, k, exclude_id, used_fallback);
  }
  bool Contains(int id) const { return view().Contains(id); }
  int64_t size() const { return view().size(); }
  bool hnsw_ready() const { return view().hnsw_ready(); }
  /// The stored embedding for `id`. Aborts when absent. Single-threaded
  /// callers only (training): the reference is into the current snapshot,
  /// which a concurrent Rebuild may release.
  const std::vector<float>& Embedding(int id) const;

  /// Searches answered by the flat fallback since the last Rebuild.
  int64_t degraded_searches() const;

 private:
  ann::HnswOptions hnsw_options_;
  uint64_t next_generation_ = 1;  // Guarded by mu_ (Rebuild-side only).
  mutable std::mutex mu_;  // Guards publication of current_.
  std::shared_ptr<const Snapshot> current_;  // Null before first Rebuild.
};

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_EMBEDDING_STORE_H_
