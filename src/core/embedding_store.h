#ifndef EXPLAINTI_CORE_EMBEDDING_STORE_H_
#define EXPLAINTI_CORE_EMBEDDING_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "ann/index.h"

namespace explainti::core {

/// The embedding store Q of Algorithm 2: the [CLS] embedding of every
/// training sample, plus an HNSW index over them for top-K retrieval.
///
/// The store is rebuilt ("updated after every fixed number of training
/// steps") by re-encoding the training set and calling Rebuild(); ids are
/// the caller's training-sample indices.
///
/// Degradation ladder (mirroring how faiss-backed services degrade): the
/// HNSW index is the fast tier; when its build was aborted (fault site
/// "store.build"), a query fails (fault site "ann.query"), or a partially
/// built graph returns nothing for a non-empty store, Search() falls back
/// to the exact FlatIndex — same results, O(N·d) cost — and reports the
/// fallback through the `used_fallback` out-param and
/// `degraded_searches()`. Before any Rebuild() the store is simply empty
/// and Search() returns no hits.
class EmbeddingStore {
 public:
  explicit EmbeddingStore(ann::HnswOptions hnsw_options = ann::HnswOptions());

  /// Replaces the store contents. `embeddings[i]` is stored under
  /// `ids[i]`; all vectors must share one dimensionality. The flat tier
  /// always builds; an injected "store.build" fault aborts the HNSW build
  /// mid-way and the store serves from the flat tier.
  void Rebuild(const std::vector<int>& ids,
               const std::vector<std::vector<float>>& embeddings);

  /// Top-k most-similar stored samples, optionally excluding one id
  /// (the query sample itself during training). Sets `*used_fallback`
  /// (when non-null) to whether the flat tier answered instead of HNSW.
  std::vector<ann::SearchResult> Search(const std::vector<float>& query,
                                        int k, int exclude_id = -1,
                                        bool* used_fallback = nullptr) const;

  /// The stored embedding for `id`. Aborts when absent.
  const std::vector<float>& Embedding(int id) const;

  /// True when `id` has a stored embedding.
  bool Contains(int id) const;

  /// Number of stored embeddings (flat tier; independent of HNSW health).
  int64_t size() const { return count_; }

  /// False when the HNSW build was aborted and queries serve flat.
  bool hnsw_ready() const { return hnsw_ready_; }

  /// Searches answered by the flat fallback since the last Rebuild.
  int64_t degraded_searches() const {
    return degraded_searches_.load(std::memory_order_relaxed);
  }

 private:
  ann::HnswOptions hnsw_options_;
  std::unique_ptr<ann::HnswIndex> hnsw_;
  std::unique_ptr<ann::FlatIndex> flat_;
  bool hnsw_ready_ = false;
  int64_t count_ = 0;
  mutable std::atomic<int64_t> degraded_searches_{0};
  std::vector<std::vector<float>> embeddings_;  // Dense by id.
  std::vector<bool> present_;
};

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_EMBEDDING_STORE_H_
