#ifndef EXPLAINTI_CORE_EMBEDDING_STORE_H_
#define EXPLAINTI_CORE_EMBEDDING_STORE_H_

#include <memory>
#include <vector>

#include "ann/hnsw_index.h"
#include "ann/index.h"

namespace explainti::core {

/// The embedding store Q of Algorithm 2: the [CLS] embedding of every
/// training sample, plus an HNSW index over them for top-K retrieval.
///
/// The store is rebuilt ("updated after every fixed number of training
/// steps") by re-encoding the training set and calling Rebuild(); ids are
/// the caller's training-sample indices.
class EmbeddingStore {
 public:
  explicit EmbeddingStore(ann::HnswOptions hnsw_options = ann::HnswOptions());

  /// Replaces the store contents. `embeddings[i]` is stored under
  /// `ids[i]`; all vectors must share one dimensionality.
  void Rebuild(const std::vector<int>& ids,
               const std::vector<std::vector<float>>& embeddings);

  /// Top-k most-similar stored samples, optionally excluding one id
  /// (the query sample itself during training).
  std::vector<ann::SearchResult> Search(const std::vector<float>& query,
                                        int k, int exclude_id = -1) const;

  /// The stored embedding for `id`. Aborts when absent.
  const std::vector<float>& Embedding(int id) const;

  /// True when `id` has a stored embedding.
  bool Contains(int id) const;

  int64_t size() const { return index_ ? index_->size() : 0; }

 private:
  ann::HnswOptions hnsw_options_;
  std::unique_ptr<ann::HnswIndex> index_;
  std::vector<std::vector<float>> embeddings_;  // Dense by id.
  std::vector<bool> present_;
};

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_EMBEDDING_STORE_H_
