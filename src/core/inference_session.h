#ifndef EXPLAINTI_CORE_INFERENCE_SESSION_H_
#define EXPLAINTI_CORE_INFERENCE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/explain_ti_model.h"
#include "core/explanation.h"
#include "core/inference_plan.h"
#include "core/task_data.h"
#include "data/corpus.h"
#include "eval/f1_metrics.h"
#include "util/status.h"

namespace explainti::core {

/// Frozen, read-only serving facade over a trained ExplainTiModel.
///
/// Every call runs the no-grad execution path: an InferenceModeGuard on
/// the executing thread makes the tensor ops skip the autograd tape and
/// draw scratch storage from the per-thread Workspace arena, so a
/// warmed-up Predict performs zero tensor heap allocations. Outputs are
/// bit-identical to the model's tape-building Predict/Explain.
///
/// Compiled plans. At construction the session lowers the frozen eval
/// graph once into linearized inference plans (core/inference_plan.h) —
/// one per distinct (task, sequence length, segment use) in the task
/// data — and serves from them: fused kernels, fixed workspace offsets,
/// zero per-call dispatch. The graph walk remains as the fallback (and
/// the reference): if any plan fails to build the session logs, drops all
/// plans, and serves every call through the walk. `EXPLAINTI_PLAN`
/// selects the mode at construction: "on" (default) serves from plans,
/// "off" disables them, "verify" runs BOTH paths on every call and checks
/// the outputs are bit-identical before answering. Plans borrow the
/// model's weight storage (updated in place by Fit/LoadWeights), so they
/// never go stale; they die with the session, which under serve's
/// hot-swap means a new generation always carries freshly built plans.
///
/// Precision tiers. On top of the fp32 plan set the session can arm an
/// int8 post-training-quantized tier (config.precision or
/// `EXPLAINTI_PRECISION` = fp32|int8|mixed, latched at construction):
/// encoder weight GEMMs and the folded base classifier head run
/// ServingGemmInt8 against per-output-column symmetric int8 weights,
/// quantized once from the frozen fp32 storage. "mixed" calibrates a
/// per-layer fp32-fallback bit against the fp32 baseline's predictions on
/// the validation slice and keeps only layers (and the head) whose
/// agreement clears config.precision_min_agreement. The tier is strictly
/// additive and fails closed: any quantization or calibration failure
/// stores a typed precision_status() and rebuilds the all-fp32 plan set,
/// "fp32" policy leaves every output bit-identical to today, verify mode
/// forces fp32 (the quantized path is intentionally not bit-identical to
/// the walk), and training always serves fp32 (the model suspends the
/// tier over Fit and re-quantizes from the new weights afterwards).
///
/// All methods are const and touch no mutable model state (per-call RNGs
/// are derived from ExplainTiModel::InferenceSeed), so one session may be
/// shared across threads serving concurrent requests. The only contract
/// is lifetime/ordering: the model must outlive the session, and
/// weights-mutating calls (Fit, LoadWeights) must not run concurrently
/// with session use. Obtain a session via ExplainTiModel::session(), e.g.
/// after LoadWeights:
///
///   ExplainTiModel model(config, corpus);
///   CHECK(model.LoadWeights(path).ok());
///   const InferenceSession& session = model.session();
///   std::vector<int> labels = session.Predict(TaskKind::kType, id);
///   Explanation z = session.Explain(TaskKind::kType, id);
class InferenceSession {
 public:
  /// How the session dispatches serving calls (from `EXPLAINTI_PLAN`).
  enum class PlanMode {
    kOff,     ///< Graph walk only; no plans are built.
    kOn,      ///< Serve from compiled plans, graph walk as fallback.
    kVerify,  ///< Run both paths per call; CHECK bit-identical outputs.
  };

  /// Serving-path counters, for tests and the bench regression gate.
  struct PlanStats {
    int64_t plans_built = 0;  ///< Distinct plans compiled at construction.
    int64_t plan_runs = 0;    ///< Calls served by the compiled path.
    int64_t graph_runs = 0;   ///< Calls served by the graph walk.
  };

  /// Precision policy requested for this session (from config.precision /
  /// `EXPLAINTI_PRECISION`, latched at construction).
  enum class PrecisionMode {
    kFp32,   ///< Reference tier; bit-identical to the graph walk.
    kInt8,   ///< Every encoder weight GEMM + base head quantized.
    kMixed,  ///< Per-layer int8, calibrated against the fp32 baseline.
  };

  /// Quantized-tier summary, for tests, serve metrics and the bench gate.
  struct PrecisionStats {
    PrecisionMode policy = PrecisionMode::kFp32;
    /// What calls actually run: "fp32" (tier off, suspended, or failed
    /// closed), "int8", or "mixed". Static storage — safe to stamp into
    /// responses without copying.
    const char* served = "fp32";
    int64_t int8_layers = 0;           ///< Encoder layers running int8.
    int64_t fp32_fallback_layers = 0;  ///< Layers calibration kept fp32.
    bool head_int8 = false;            ///< Base classifier head is int8.
    /// Fp32 bytes of the weights the armed tier replaced, and the int8
    /// bytes (data + dequant params) replacing them. Both 0 when the tier
    /// is not armed.
    int64_t weight_bytes_fp32 = 0;
    int64_t weight_bytes_int8 = 0;
  };

  explicit InferenceSession(const ExplainTiModel& model);

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  bool HasTask(TaskKind kind) const { return model_->HasTask(kind); }
  const ExplainTiConfig& config() const { return model_->config(); }
  const TaskData& task_data(TaskKind kind) const {
    return model_->task_data(kind);
  }

  /// Predicted label ids for one sample (no explanation overhead).
  std::vector<int> Predict(TaskKind kind, int sample_id) const;

  /// Per-label sigma outputs for one sample (probabilities).
  std::vector<float> PredictProbabilities(TaskKind kind, int sample_id) const;

  /// Prediction plus the multi-view explanation set Z.
  Explanation Explain(TaskKind kind, int sample_id) const;

  /// Batched Predict: one label vector per entry of `sample_ids`, fanned
  /// out across the pool (each chunk under its own guard/workspace).
  /// Outputs are bit-identical to per-sample Predict — every sample still
  /// runs the same single-sample forward with its own InferenceSeed RNG,
  /// so results do not depend on batch composition or thread count. This
  /// is the dispatch point for the serve::InferenceServer micro-batcher.
  std::vector<std::vector<int>> PredictBatch(
      TaskKind kind, const std::vector<int>& sample_ids) const;

  /// Batched PredictProbabilities; same contract as PredictBatch.
  std::vector<std::vector<float>> PredictProbabilitiesBatch(
      TaskKind kind, const std::vector<int>& sample_ids) const;

  /// Batched Explain; same contract as PredictBatch. Each returned
  /// Explanation carries its own per-sample ANN degradation flag/note —
  /// batching never drops the annotation.
  std::vector<Explanation> ExplainBatch(
      TaskKind kind, const std::vector<int>& sample_ids) const;

  /// [CLS] embeddings for `sample_ids`, encoded in parallel across the
  /// pool (each worker under its own guard/workspace). Feeds the GE/SE
  /// embedding-store rebuilds.
  std::vector<std::vector<float>> EncodeBatch(
      TaskKind kind, const std::vector<int>& sample_ids) const;

  /// Test/valid/train F1 for one task, predictions fanned out across the
  /// pool.
  eval::F1Scores Evaluate(TaskKind kind, data::SplitPart part) const;

  /// True when this session serves from compiled plans (mode is not off
  /// and every plan built).
  bool plans_enabled() const {
    return !type_plans_.empty() || !relation_plans_.empty();
  }

  PlanMode plan_mode() const { return plan_mode_; }

  /// The compiled plan that would serve `sample_id`, or null when the
  /// session is in graph-walk mode (or the sample's shape has no plan —
  /// which, by eager construction over the task data, only happens for
  /// out-of-range ids).
  const InferencePlan* PlanFor(TaskKind kind, int sample_id) const;

  PlanStats plan_stats() const {
    PlanStats s;
    s.plans_built = plans_built_;
    s.plan_runs = plan_runs_.load(std::memory_order_relaxed);
    s.graph_runs = graph_runs_.load(std::memory_order_relaxed);
    return s;
  }

  PrecisionMode precision_mode() const { return precision_policy_; }

  /// The precision calls actually serve at right now ("fp32"/"int8"/
  /// "mixed"); static storage, stable for the session's lifetime between
  /// weight-mutating calls.
  const char* served_precision() const;

  /// OK while the requested tier is armed (or the policy is fp32); a
  /// typed error explaining why the session failed closed to fp32
  /// otherwise (quantization fault, calibration rejected everything,
  /// verify mode forcing the reference path).
  const util::Status& precision_status() const { return precision_status_; }

  PrecisionStats precision_stats() const;

  /// Drops the quantized tier and serves fp32 until ReloadWeights(); the
  /// model calls this at Fit() entry so training-time evaluation is
  /// always the bit-exact fp32 path. Idempotent; no-op when no tier is
  /// armed.
  void SuspendQuantizedTier();

  /// Re-arms the precision policy after the model's weights changed
  /// (Fit() end, LoadWeights()). fp32 policy: no-op — fp32 plans borrow
  /// the model's storage and are never stale. int8 policy with a live
  /// tier: re-quantizes the int8 bytes in place WITHOUT rebuilding plans
  /// (plans borrow the session's quantized storage by pointer, so the
  /// rewrite is all they need). Mixed policy (or a tier that previously
  /// failed / was suspended): full rebuild + recalibration.
  void ReloadWeights();

 private:
  /// Lowers the model and compiles the plan set, then arms the quantized
  /// tier when the policy asks for one; on fp32-build failure drops every
  /// plan and leaves the session on the graph walk, on quantized-tier
  /// failure fails closed to the all-fp32 plan set with a typed
  /// precision_status_.
  void BuildPlans();

  /// Compiles one plan per distinct (task, seq_len, has_segments) key,
  /// quantized per the session's current mask when `quantized`. All or
  /// nothing: on error the plan maps are left empty.
  util::Status BuildPlanSet(const nn::EncoderLowering& lowered,
                            bool quantized);

  /// Quantizes the frozen weights, calibrates the mixed-mode mask, and
  /// rebuilds the plan set quantized. On error the caller fails closed.
  util::Status BuildQuantizedTier(const nn::EncoderLowering& lowered);

  /// Mixed mode: per-layer (and head) agreement probe against `baseline`
  /// (the fp32 plan-head predictions on the calibration slice).
  util::Status CalibrateQuantMask(
      const nn::EncoderLowering& lowered,
      const std::vector<std::pair<TaskKind, int>>& slice,
      const std::vector<std::vector<int>>& baseline);

  /// Base-head predicted labels straight off the compiled plan (no
  /// stores, no structural tail) — the calibration signal.
  std::vector<int> PlanHeadLabels(TaskKind kind, int sample_id) const;

  /// Fraction of `slice` whose PlanHeadLabels match `baseline` under the
  /// currently-installed plan set.
  double AgreementOnSlice(
      const std::vector<std::pair<TaskKind, int>>& slice,
      const std::vector<std::vector<int>>& baseline) const;

  /// Releases quantized weight storage and resets the mask/counters —
  /// and drops every installed plan with it, since int8 plans borrow the
  /// storage by pointer.
  void DropQuantState();

  /// Runs `plan`'s encoder range for `sample` and wraps the output as a
  /// workspace tensor E [L, d] for the RunForward tail. Caller must hold
  /// an InferenceModeGuard.
  tensor::Tensor PlanEncode(const InferencePlan& plan,
                            const TaskSample& sample) const;

  /// Single-sample forward through the plan path: compiled encoder, then
  /// the shared RunForward tail (SE/LE/GE/head). In kVerify mode also
  /// runs the full graph walk and CHECKs the final logits are
  /// bit-identical.
  ExplainTiModel::Forward PlanForward(TaskKind kind, int sample_id,
                                      const InferencePlan& plan,
                                      util::Rng& rng, bool with_local,
                                      bool with_global) const;

  /// Final logits for one sample on whichever path the session serves
  /// from — the shared core of Predict/PredictProbabilities. When the
  /// model runs without structural explanations the compiled plan covers
  /// the classifier head too, so this is the zero-dispatch path.
  std::vector<float> FinalLogits(TaskKind kind, int sample_id) const;

  const ExplainTiModel* model_;
  PlanMode plan_mode_ = PlanMode::kOn;
  /// Keyed by seq_len * 2 + has_segments; mutated only by the
  /// weights-lifecycle calls (construction, SuspendQuantizedTier,
  /// ReloadWeights), which the session contract already serializes
  /// against serving.
  std::unordered_map<int64_t, InferencePlan> type_plans_;
  std::unordered_map<int64_t, InferencePlan> relation_plans_;
  int64_t plans_built_ = 0;
  mutable std::atomic<int64_t> plan_runs_{0};
  mutable std::atomic<int64_t> graph_runs_{0};

  // -- Quantized tier state (see class comment "Precision tiers") --------
  PrecisionMode precision_policy_ = PrecisionMode::kFp32;
  bool suppress_quant_ = false;  ///< Armed by SuspendQuantizedTier().
  util::Status precision_status_;
  /// Quantized weight storage the int8 plan instructions borrow by
  /// pointer; pointer-stable across ReloadWeights()'s in-place
  /// re-quantization fast path.
  std::unique_ptr<nn::QuantizedEncoder> qencoder_;
  std::unique_ptr<nn::QuantizedLinear> qhead_type_;
  std::unique_ptr<nn::QuantizedLinear> qhead_relation_;
  std::vector<uint8_t> layer_int8_;  ///< Per-layer bit; 0 = fp32 fallback.
  bool head_int8_ = false;
  /// True when the installed plan set actually contains int8 GEMMs.
  bool quantized_active_ = false;
};

/// Loads a complete serving replica for a model hot-swap: constructs a
/// fresh ExplainTiModel, loads the checkpoint at `weights_path`, and
/// warms its GE/SE embedding stores — entirely off to the side, touching
/// no live state, so the currently-serving model keeps answering while
/// the replica loads. On success the replica's session() is ready to hand
/// to serve::InferenceServer::SwapSession (with freshly compiled plans of
/// its own — plans are per-session, so the drained generation's plans die
/// with it); on any failure (unreadable or corrupt checkpoint, or the
/// "swap.load_weights" chaos fault) the error Status is returned and
/// there is nothing to roll back — the caller simply keeps the old
/// generation.
util::StatusOr<std::unique_ptr<ExplainTiModel>> LoadReplicaForSwap(
    const ExplainTiConfig& config, const data::TableCorpus& corpus,
    const std::string& weights_path);

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_INFERENCE_SESSION_H_
