#ifndef EXPLAINTI_CORE_INFERENCE_SESSION_H_
#define EXPLAINTI_CORE_INFERENCE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/explain_ti_model.h"
#include "core/explanation.h"
#include "core/task_data.h"
#include "data/corpus.h"
#include "eval/f1_metrics.h"
#include "util/status.h"

namespace explainti::core {

/// Frozen, read-only serving facade over a trained ExplainTiModel.
///
/// Every call runs the no-grad execution path: an InferenceModeGuard on
/// the executing thread makes the tensor ops skip the autograd tape and
/// draw scratch storage from the per-thread Workspace arena, so a
/// warmed-up Predict performs zero tensor heap allocations. Outputs are
/// bit-identical to the model's tape-building Predict/Explain.
///
/// All methods are const and touch no mutable model state (per-call RNGs
/// are derived from ExplainTiModel::InferenceSeed), so one session may be
/// shared across threads serving concurrent requests. The only contract
/// is lifetime/ordering: the model must outlive the session, and
/// weights-mutating calls (Fit, LoadWeights) must not run concurrently
/// with session use. Obtain a session via ExplainTiModel::session(), e.g.
/// after LoadWeights:
///
///   ExplainTiModel model(config, corpus);
///   CHECK(model.LoadWeights(path).ok());
///   const InferenceSession& session = model.session();
///   std::vector<int> labels = session.Predict(TaskKind::kType, id);
///   Explanation z = session.Explain(TaskKind::kType, id);
class InferenceSession {
 public:
  explicit InferenceSession(const ExplainTiModel& model) : model_(&model) {}

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  bool HasTask(TaskKind kind) const { return model_->HasTask(kind); }
  const ExplainTiConfig& config() const { return model_->config(); }
  const TaskData& task_data(TaskKind kind) const {
    return model_->task_data(kind);
  }

  /// Predicted label ids for one sample (no explanation overhead).
  std::vector<int> Predict(TaskKind kind, int sample_id) const;

  /// Per-label sigma outputs for one sample (probabilities).
  std::vector<float> PredictProbabilities(TaskKind kind, int sample_id) const;

  /// Prediction plus the multi-view explanation set Z.
  Explanation Explain(TaskKind kind, int sample_id) const;

  /// Batched Predict: one label vector per entry of `sample_ids`, fanned
  /// out across the pool (each chunk under its own guard/workspace).
  /// Outputs are bit-identical to per-sample Predict — every sample still
  /// runs the same single-sample forward with its own InferenceSeed RNG,
  /// so results do not depend on batch composition or thread count. This
  /// is the dispatch point for the serve::InferenceServer micro-batcher.
  std::vector<std::vector<int>> PredictBatch(
      TaskKind kind, const std::vector<int>& sample_ids) const;

  /// Batched PredictProbabilities; same contract as PredictBatch.
  std::vector<std::vector<float>> PredictProbabilitiesBatch(
      TaskKind kind, const std::vector<int>& sample_ids) const;

  /// Batched Explain; same contract as PredictBatch. Each returned
  /// Explanation carries its own per-sample ANN degradation flag/note —
  /// batching never drops the annotation.
  std::vector<Explanation> ExplainBatch(
      TaskKind kind, const std::vector<int>& sample_ids) const;

  /// [CLS] embeddings for `sample_ids`, encoded in parallel across the
  /// pool (each worker under its own guard/workspace). Feeds the GE/SE
  /// embedding-store rebuilds.
  std::vector<std::vector<float>> EncodeBatch(
      TaskKind kind, const std::vector<int>& sample_ids) const;

  /// Test/valid/train F1 for one task, predictions fanned out across the
  /// pool.
  eval::F1Scores Evaluate(TaskKind kind, data::SplitPart part) const;

 private:
  const ExplainTiModel* model_;
};

/// Loads a complete serving replica for a model hot-swap: constructs a
/// fresh ExplainTiModel, loads the checkpoint at `weights_path`, and
/// warms its GE/SE embedding stores — entirely off to the side, touching
/// no live state, so the currently-serving model keeps answering while
/// the replica loads. On success the replica's session() is ready to hand
/// to serve::InferenceServer::SwapSession; on any failure (unreadable or
/// corrupt checkpoint, or the "swap.load_weights" chaos fault) the error
/// Status is returned and there is nothing to roll back — the caller
/// simply keeps the old generation.
util::StatusOr<std::unique_ptr<ExplainTiModel>> LoadReplicaForSwap(
    const ExplainTiConfig& config, const data::TableCorpus& corpus,
    const std::string& weights_path);

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_INFERENCE_SESSION_H_
