#include "core/inference_session.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "nn/exec_context.h"
#include "nn/lowering.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace explainti::core {

namespace {

// Plans are keyed by the only two shape-relevant properties of a sample:
// its (unpadded) sequence length and whether the embedding stack adds a
// segment term (config-enabled AND the sample carries segment ids —
// mirroring TransformerEmbeddings::Forward's condition).
int64_t PlanKey(const TaskSample& sample, bool encoder_uses_segments) {
  const bool has_seg =
      encoder_uses_segments && !sample.seq.segments.empty();
  return static_cast<int64_t>(sample.seq.ids.size()) * 2 + (has_seg ? 1 : 0);
}

// Bit-exact comparison for the verify mode: float == would accept -0.0f
// vs +0.0f and reject NaN payload matches; the contract is byte identity.
bool BitsEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

}  // namespace

InferenceSession::InferenceSession(const ExplainTiModel& model)
    : model_(&model) {
  // Latch both serving modes once, at construction: the session rebuilds
  // its plans across the weights lifecycle (SuspendQuantizedTier /
  // ReloadWeights), and a rebuild must not change behaviour because the
  // environment moved underneath it.
  const char* plan_env = std::getenv("EXPLAINTI_PLAN");
  const std::string mode = plan_env != nullptr ? plan_env : "on";
  if (mode == "off") {
    plan_mode_ = PlanMode::kOff;
  } else {
    plan_mode_ = mode == "verify" ? PlanMode::kVerify : PlanMode::kOn;
    if (mode != "on" && mode != "verify") {
      LOG(WARNING) << "unknown EXPLAINTI_PLAN value \"" << mode
                   << "\" (expected on/off/verify); serving from plans";
    }
  }
  const char* prec_env = std::getenv("EXPLAINTI_PRECISION");
  const std::string precision =
      prec_env != nullptr ? prec_env : model.config().precision;
  if (precision == "int8") {
    precision_policy_ = PrecisionMode::kInt8;
  } else if (precision == "mixed") {
    precision_policy_ = PrecisionMode::kMixed;
  } else {
    precision_policy_ = PrecisionMode::kFp32;
    if (precision != "fp32") {
      LOG(WARNING) << "unknown precision value \"" << precision
                   << "\" (expected fp32/int8/mixed); serving fp32";
    }
  }
  BuildPlans();
}

void InferenceSession::BuildPlans() {
  if (plan_mode_ == PlanMode::kOff) {
    if (precision_policy_ != PrecisionMode::kFp32) {
      precision_status_ = util::Status::FailedPrecondition(
          "EXPLAINTI_PLAN=off disables compiled plans, and the quantized "
          "tier lives in them; serving fp32 through the graph walk");
    }
    return;
  }
  // Chaos site: models a lowering defect shipping in a new build — plan
  // compilation fails outright and serving must degrade to the graph
  // walk, never to an error.
  if (util::Status fault = FAULT_POINT("plan.build"); !fault.ok()) {
    LOG(WARNING) << "inference plan build faulted (" << fault.ToString()
                 << "); serving from the graph walk";
    if (precision_policy_ != PrecisionMode::kFp32) {
      precision_status_ = util::Status::FailedPrecondition(
          "plan build faulted; the quantized tier requires compiled plans");
    }
    return;
  }

  const nn::EncoderLowering lowered = nn::LowerEncoder(*model_->encoder_);
  if (util::Status built = BuildPlanSet(lowered, /*quantized=*/false);
      !built.ok()) {
    // All or nothing: a per-shape mix of plan and graph serving would
    // make the fast path data-dependent and the fallback untestable.
    LOG(WARNING) << "inference plan build failed (" << built.ToString()
                 << "); serving from the graph walk";
    return;
  }
  if (precision_policy_ == PrecisionMode::kFp32) return;
  if (suppress_quant_) {
    precision_status_ = util::Status::FailedPrecondition(
        "quantized tier suspended for training; fp32 until ReloadWeights");
    return;
  }
  if (plan_mode_ == PlanMode::kVerify) {
    precision_status_ = util::Status::FailedPrecondition(
        "EXPLAINTI_PLAN=verify forces fp32: the int8 tier is deliberately "
        "not bit-identical to the graph walk");
    LOG(WARNING) << "EXPLAINTI_PLAN=verify: quantized tier disabled, "
                    "serving the bit-exact fp32 plans";
    return;
  }
  if (util::Status quant = BuildQuantizedTier(lowered); !quant.ok()) {
    // Fail closed, all or nothing: a failed quantized build never leaves
    // a half-quantized mix installed — the session re-lands on the exact
    // fp32 plan set that just built above, and precision_status() carries
    // the typed reason.
    precision_status_ = quant;
    LOG(WARNING) << "quantized tier build failed (" << quant.ToString()
                 << "); failing closed to the all-fp32 plans";
    DropQuantState();
    const util::Status refp32 = BuildPlanSet(lowered, /*quantized=*/false);
    CHECK(refp32.ok()) << "fp32 plan rebuild failed after a quantized-tier "
                          "failure, but the same build succeeded moments "
                          "ago: " << refp32.ToString();
  } else {
    precision_status_ = util::Status::OK();
  }
}

util::Status InferenceSession::BuildPlanSet(
    const nn::EncoderLowering& lowered, bool quantized) {
  type_plans_.clear();
  relation_plans_.clear();
  plans_built_ = 0;
  quantized_active_ = false;
  const bool use_segments = model_->encoder_->config().use_segments;
  int64_t int8_instrs = 0;
  for (TaskKind kind : {TaskKind::kType, TaskKind::kRelation}) {
    if (!model_->HasTask(kind)) continue;
    auto& plans = kind == TaskKind::kType ? type_plans_ : relation_plans_;
    const TaskData& task = model_->Task(kind);
    const nn::LinearLowering head =
        nn::LowerLinear(model_->Heads(kind).base->projection());
    PlanQuantSpec spec;
    const PlanQuantSpec* spec_ptr = nullptr;
    if (quantized) {
      spec.encoder = qencoder_.get();
      spec.layer_int8 = &layer_int8_;
      spec.head = head_int8_ ? (kind == TaskKind::kType
                                    ? qhead_type_.get()
                                    : qhead_relation_.get())
                             : nullptr;
      spec_ptr = &spec;
    }
    for (const TaskSample& sample : task.samples) {
      const int64_t key = PlanKey(sample, use_segments);
      if (plans.find(key) != plans.end()) continue;
      util::StatusOr<InferencePlan> plan = BuildInferencePlan(
          lowered, &head, static_cast<int64_t>(sample.seq.ids.size()),
          /*has_segments=*/(key & 1) != 0, spec_ptr);
      if (!plan.ok()) {
        type_plans_.clear();
        relation_plans_.clear();
        plans_built_ = 0;
        return plan.status();
      }
      InferencePlan built = std::move(plan).value();
      int8_instrs += built.int8_gemms;
      plans.emplace(key, std::move(built));
      ++plans_built_;
    }
  }
  quantized_active_ = int8_instrs > 0;
  return util::Status::OK();
}

util::Status InferenceSession::BuildQuantizedTier(
    const nn::EncoderLowering& lowered) {
  // Chaos site: models a quantizer defect shipping in a new build — the
  // tier must fail closed to the fp32 plans, never to an error or a
  // half-quantized mix.
  if (util::Status fault = FAULT_POINT("plan.quantize"); !fault.ok()) {
    return fault;
  }
  qencoder_ =
      std::make_unique<nn::QuantizedEncoder>(nn::QuantizeEncoder(lowered));
  for (TaskKind kind : {TaskKind::kType, TaskKind::kRelation}) {
    if (!model_->HasTask(kind)) continue;
    auto& qhead =
        kind == TaskKind::kType ? qhead_type_ : qhead_relation_;
    qhead = std::make_unique<nn::QuantizedLinear>(nn::QuantizeLinear(
        nn::LowerLinear(model_->Heads(kind).base->projection())));
  }
  layer_int8_.assign(lowered.layers.size(), 1);
  head_int8_ = true;
  if (precision_policy_ != PrecisionMode::kMixed) {
    return BuildPlanSet(lowered, /*quantized=*/true);
  }

  // Mixed mode: the fp32 plans (installed right now) are the baseline.
  // The calibration signal is the compiled base-head prediction — pure
  // encoder + head, no embedding stores — so calibration works even on a
  // freshly constructed model whose stores have not been built yet.
  std::vector<std::pair<TaskKind, int>> slice;
  const int per_task =
      std::max(1, model_->config().precision_calibration_samples);
  for (TaskKind kind : {TaskKind::kType, TaskKind::kRelation}) {
    if (!model_->HasTask(kind)) continue;
    const TaskData& task = model_->Task(kind);
    const std::vector<int>& ids =
        task.valid_ids.empty() ? task.train_ids : task.valid_ids;
    if (!ids.empty()) {
      const size_t take =
          std::min(static_cast<size_t>(per_task), ids.size());
      for (size_t i = 0; i < take; ++i) slice.emplace_back(kind, ids[i]);
    } else {
      const size_t take = std::min(static_cast<size_t>(per_task),
                                   task.samples.size());
      for (size_t i = 0; i < take; ++i) {
        slice.emplace_back(kind, static_cast<int>(i));
      }
    }
  }
  if (slice.empty()) {
    return util::Status::FailedPrecondition(
        "mixed-precision calibration has no samples to measure agreement "
        "on");
  }
  std::vector<std::vector<int>> baseline;
  baseline.reserve(slice.size());
  for (const auto& [kind, id] : slice) {
    baseline.push_back(PlanHeadLabels(kind, id));
  }
  return CalibrateQuantMask(lowered, slice, baseline);
}

util::Status InferenceSession::CalibrateQuantMask(
    const nn::EncoderLowering& lowered,
    const std::vector<std::pair<TaskKind, int>>& slice,
    const std::vector<std::vector<int>>& baseline) {
  const size_t num_layers = lowered.layers.size();
  const double min_agree =
      static_cast<double>(model_->config().precision_min_agreement);
  std::vector<uint8_t> accepted(num_layers, 0);
  bool head_accepted = false;
  // Probe one candidate at a time — exactly one layer (or the head) int8,
  // everything else fp32 — so each probe isolates that layer's
  // quantization error against the fp32 baseline.
  for (size_t cand = 0; cand <= num_layers; ++cand) {
    layer_int8_.assign(num_layers, 0);
    head_int8_ = cand == num_layers;
    if (cand < num_layers) layer_int8_[cand] = 1;
    if (util::Status st = BuildPlanSet(lowered, /*quantized=*/true);
        !st.ok()) {
      return st;
    }
    const double agree = AgreementOnSlice(slice, baseline);
    if (agree >= min_agree) {
      if (cand < num_layers) {
        accepted[cand] = 1;
      } else {
        head_accepted = true;
      }
    }
  }
  layer_int8_ = accepted;
  head_int8_ = head_accepted;
  if (util::Status st = BuildPlanSet(lowered, /*quantized=*/true);
      !st.ok()) {
    return st;
  }
  if (!quantized_active_) {
    return util::Status::FailedPrecondition(
        "mixed-precision calibration rejected every layer and the head; "
        "nothing to quantize");
  }
  // Per-layer probes pass independently; errors can still compound when
  // the accepted layers stack, so gate the combined mask too.
  const double combined = AgreementOnSlice(slice, baseline);
  if (combined < min_agree) {
    return util::Status::FailedPrecondition(
        "combined int8 mask agreement fell below the calibration "
        "threshold; individually-acceptable layers compound");
  }
  return util::Status::OK();
}

std::vector<int> InferenceSession::PlanHeadLabels(TaskKind kind,
                                                  int sample_id) const {
  tensor::InferenceModeGuard guard;
  const InferencePlan* plan = PlanFor(kind, sample_id);
  CHECK(plan != nullptr && plan->logits_off >= 0)
      << "calibration requires compiled plans with a folded head";
  const TaskSample& sample =
      model_->Task(kind).samples[static_cast<size_t>(sample_id)];
  std::vector<float> logits(static_cast<size_t>(plan->num_labels));
  PlanRun run;
  run.token_ids = sample.seq.ids.data();
  run.segment_ids =
      plan->has_segments ? sample.seq.segments.data() : nullptr;
  run.logits = logits.data();
  RunPlan(*plan, run);
  return model_->DecodeLabels(kind, logits);
}

double InferenceSession::AgreementOnSlice(
    const std::vector<std::pair<TaskKind, int>>& slice,
    const std::vector<std::vector<int>>& baseline) const {
  CHECK_EQ(slice.size(), baseline.size());
  if (slice.empty()) return 1.0;
  size_t match = 0;
  for (size_t i = 0; i < slice.size(); ++i) {
    if (PlanHeadLabels(slice[i].first, slice[i].second) == baseline[i]) {
      ++match;
    }
  }
  return static_cast<double>(match) / static_cast<double>(slice.size());
}

void InferenceSession::DropQuantState() {
  // Any installed int8 plan borrows qencoder_/qhead storage by pointer;
  // the plans must die with the storage, never outlive it.
  type_plans_.clear();
  relation_plans_.clear();
  plans_built_ = 0;
  qencoder_.reset();
  qhead_type_.reset();
  qhead_relation_.reset();
  layer_int8_.clear();
  head_int8_ = false;
  quantized_active_ = false;
}

const char* InferenceSession::served_precision() const {
  if (!quantized_active_) return "fp32";
  return precision_policy_ == PrecisionMode::kMixed ? "mixed" : "int8";
}

InferenceSession::PrecisionStats InferenceSession::precision_stats() const {
  PrecisionStats s;
  s.policy = precision_policy_;
  s.served = served_precision();
  if (!quantized_active_ || qencoder_ == nullptr) return s;
  for (const uint8_t bit : layer_int8_) s.int8_layers += bit;
  s.fp32_fallback_layers =
      static_cast<int64_t>(layer_int8_.size()) - s.int8_layers;
  s.head_int8 = head_int8_;
  const auto add = [&s](const nn::QuantizedLinear& q) {
    s.weight_bytes_fp32 += q.Fp32Bytes();
    s.weight_bytes_int8 += q.Int8Bytes();
  };
  for (size_t i = 0; i < layer_int8_.size(); ++i) {
    if (layer_int8_[i] == 0) continue;
    const nn::QuantizedEncoderLayer& ql = qencoder_->layers[i];
    add(ql.wq);
    add(ql.wk);
    add(ql.wv);
    add(ql.wo);
    add(ql.ffn_in);
    add(ql.ffn_out);
  }
  if (head_int8_) {
    if (qhead_type_ != nullptr) add(*qhead_type_);
    if (qhead_relation_ != nullptr) add(*qhead_relation_);
  }
  return s;
}

void InferenceSession::SuspendQuantizedTier() {
  suppress_quant_ = true;
  if (qencoder_ == nullptr && !quantized_active_) return;
  DropQuantState();
  precision_status_ = util::Status::OK();
  BuildPlans();  // Rebuilds fp32-only; suppress_quant_ restates the why.
}

void InferenceSession::ReloadWeights() {
  suppress_quant_ = false;
  if (plan_mode_ == PlanMode::kOff) return;
  // fp32 plans borrow the model's weight storage by pointer — a weight
  // update never staled them, so the reference policy stays zero-cost.
  if (precision_policy_ == PrecisionMode::kFp32) return;
  if (precision_policy_ == PrecisionMode::kInt8 && quantized_active_ &&
      qencoder_ != nullptr) {
    // Fast path: the int8 mask is static under the int8 policy, so new
    // weights only need their int8 bytes rewritten in place. The
    // installed plans borrow the quantized storage by pointer
    // (borrowed-pointer contract) and stay exactly as compiled.
    const nn::EncoderLowering lowered = nn::LowerEncoder(*model_->encoder_);
    nn::RequantizeEncoder(lowered, qencoder_.get());
    for (TaskKind kind : {TaskKind::kType, TaskKind::kRelation}) {
      if (!model_->HasTask(kind)) continue;
      nn::QuantizedLinear* qhead = kind == TaskKind::kType
                                       ? qhead_type_.get()
                                       : qhead_relation_.get();
      if (qhead != nullptr) {
        nn::RequantizeLinear(
            nn::LowerLinear(model_->Heads(kind).base->projection()), qhead);
      }
    }
    return;
  }
  // First arm after a suspension, mixed-mode recalibration against the
  // new weights, or a second chance for a tier that previously failed.
  DropQuantState();
  precision_status_ = util::Status::OK();
  BuildPlans();
}

const InferencePlan* InferenceSession::PlanFor(TaskKind kind,
                                               int sample_id) const {
  const auto& plans =
      kind == TaskKind::kType ? type_plans_ : relation_plans_;
  if (plans.empty() || !model_->HasTask(kind)) return nullptr;
  const TaskData& task = model_->Task(kind);
  if (sample_id < 0 ||
      sample_id >= static_cast<int>(task.samples.size())) {
    return nullptr;
  }
  const auto it =
      plans.find(PlanKey(task.samples[static_cast<size_t>(sample_id)],
                         model_->encoder_->config().use_segments));
  return it == plans.end() ? nullptr : &it->second;
}

tensor::Tensor InferenceSession::PlanEncode(const InferencePlan& plan,
                                            const TaskSample& sample) const {
  // The encoder output is the one plan intermediate that must outlive the
  // arena (the RunForward tail reads it), so it gets a pooled workspace
  // node of its own — exactly what the graph walk's final LayerNorm would
  // have produced.
  auto node = tensor::internal::AllocNode({plan.seq_len, plan.d_model},
                                          /*zero_init=*/false);
  PlanRun run;
  run.token_ids = sample.seq.ids.data();
  run.segment_ids = plan.has_segments ? sample.seq.segments.data() : nullptr;
  run.encoder_out = node->data.data();
  run.encoder_out_rows = plan.seq_len;
  RunPlan(plan, run);
  return tensor::Tensor(std::move(node));
}

ExplainTiModel::Forward InferenceSession::PlanForward(
    TaskKind kind, int sample_id, const InferencePlan& plan, util::Rng& rng,
    bool with_local, bool with_global) const {
  plan_runs_.fetch_add(1, std::memory_order_relaxed);
  const TaskData& task = model_->Task(kind);
  const TaskSample& sample = task.samples[static_cast<size_t>(sample_id)];
  tensor::Tensor embeddings = PlanEncode(plan, sample);
  // The tail (SE/LE/GE and head selection) is the graph walk's own code:
  // the plan replaces only the encoder, so the two paths cannot diverge
  // in anything but encoder numerics — which the plan contract (and the
  // verify mode below) pins to bit-identity. The inference-mode encoder
  // draws nothing from the RNG, so the tail sees the same stream either
  // way (SE neighbour sampling stays deterministic per sample).
  ExplainTiModel::Forward fwd =
      model_->RunForward(kind, sample_id, nn::ExecContext::Inference(&rng),
                         with_local, with_global, &embeddings);
  if (plan_mode_ == PlanMode::kVerify) {
    util::Rng ref_rng(model_->InferenceSeed(sample_id));
    ExplainTiModel::Forward ref = model_->RunForward(
        kind, sample_id, nn::ExecContext::Inference(&ref_rng), with_local,
        with_global);
    CHECK(BitsEqual(embeddings.ToVector(), ref.embeddings.ToVector()))
        << "plan verify: encoder output diverged from the graph walk "
           "(task sample " << sample_id << ", seq_len " << plan.seq_len
        << ")";
    CHECK(BitsEqual(fwd.final_logits.ToVector(),
                    ref.final_logits.ToVector()))
        << "plan verify: final logits diverged from the graph walk "
           "(task sample " << sample_id << ")";
  }
  return fwd;
}

std::vector<float> InferenceSession::FinalLogits(TaskKind kind,
                                                 int sample_id) const {
  tensor::InferenceModeGuard guard;
  util::Rng rng(model_->InferenceSeed(sample_id));
  const InferencePlan* plan = PlanFor(kind, sample_id);
  if (plan == nullptr) {
    graph_runs_.fetch_add(1, std::memory_order_relaxed);
    return model_
        ->RunForward(kind, sample_id, nn::ExecContext::Inference(&rng),
                     /*with_local=*/false, /*with_global=*/false)
        .final_logits.ToVector();
  }
  if (model_->config().use_structural || plan->logits_off < 0) {
    // Structural logits depend on store state and sampled neighbours, so
    // the head is not compiled in; run the compiled encoder and the
    // shared tail.
    return PlanForward(kind, sample_id, *plan, rng, /*with_local=*/false,
                       /*with_global=*/false)
        .final_logits.ToVector();
  }
  // Base head: the plan covers the whole sample — one instruction-array
  // walk, no graph dispatch at all.
  plan_runs_.fetch_add(1, std::memory_order_relaxed);
  const TaskSample& sample =
      model_->Task(kind).samples[static_cast<size_t>(sample_id)];
  std::vector<float> logits(static_cast<size_t>(plan->num_labels));
  PlanRun run;
  run.token_ids = sample.seq.ids.data();
  run.segment_ids = plan->has_segments ? sample.seq.segments.data() : nullptr;
  run.logits = logits.data();
  RunPlan(*plan, run);
  if (plan_mode_ == PlanMode::kVerify) {
    util::Rng ref_rng(model_->InferenceSeed(sample_id));
    const std::vector<float> ref =
        model_
            ->RunForward(kind, sample_id,
                         nn::ExecContext::Inference(&ref_rng),
                         /*with_local=*/false, /*with_global=*/false)
            .final_logits.ToVector();
    CHECK(BitsEqual(logits, ref))
        << "plan verify: compiled head logits diverged from the graph "
           "walk (task sample " << sample_id << ")";
  }
  return logits;
}

std::vector<int> InferenceSession::Predict(TaskKind kind,
                                           int sample_id) const {
  return model_->DecodeLabels(kind, FinalLogits(kind, sample_id));
}

std::vector<float> InferenceSession::PredictProbabilities(
    TaskKind kind, int sample_id) const {
  const TaskData& task = model_->Task(kind);
  const std::vector<float> logits = FinalLogits(kind, sample_id);
  return task.multi_label ? tensor::SigmoidValues(logits)
                          : tensor::SoftmaxValues(logits);
}

Explanation InferenceSession::Explain(TaskKind kind, int sample_id) const {
  tensor::InferenceModeGuard guard;
  util::Rng rng(model_->InferenceSeed(sample_id));
  if (const InferencePlan* plan = PlanFor(kind, sample_id)) {
    ExplainTiModel::Forward fwd =
        PlanForward(kind, sample_id, *plan, rng, model_->config().use_local,
                    model_->config().use_global);
    return model_->MakeExplanation(kind, std::move(fwd));
  }
  graph_runs_.fetch_add(1, std::memory_order_relaxed);
  ExplainTiModel::Forward fwd =
      model_->RunForward(kind, sample_id, nn::ExecContext::Inference(&rng));
  return model_->MakeExplanation(kind, std::move(fwd));
}

namespace {

// Shared fan-out shape for the batched serving entry points: each sample
// is an independent single-sample call (own guard, own InferenceSeed
// RNG, writes only its own output slot), so chunking over the pool keeps
// results bit-identical to the serial per-sample loop at any thread
// count and any batch composition.
template <typename Result, typename Fn>
std::vector<Result> ForEachSample(const std::vector<int>& sample_ids,
                                  const Fn& fn) {
  std::vector<Result> results(sample_ids.size());
  util::ParallelFor(0, static_cast<int64_t>(sample_ids.size()), 1,
                    [&](int64_t ib, int64_t ie) {
                      for (int64_t i = ib; i < ie; ++i) {
                        results[static_cast<size_t>(i)] =
                            fn(sample_ids[static_cast<size_t>(i)]);
                      }
                    });
  return results;
}

}  // namespace

std::vector<std::vector<int>> InferenceSession::PredictBatch(
    TaskKind kind, const std::vector<int>& sample_ids) const {
  return ForEachSample<std::vector<int>>(
      sample_ids, [&](int id) { return Predict(kind, id); });
}

std::vector<std::vector<float>> InferenceSession::PredictProbabilitiesBatch(
    TaskKind kind, const std::vector<int>& sample_ids) const {
  return ForEachSample<std::vector<float>>(
      sample_ids, [&](int id) { return PredictProbabilities(kind, id); });
}

std::vector<Explanation> InferenceSession::ExplainBatch(
    TaskKind kind, const std::vector<int>& sample_ids) const {
  return ForEachSample<Explanation>(
      sample_ids, [&](int id) { return Explain(kind, id); });
}

std::vector<std::vector<float>> InferenceSession::EncodeBatch(
    TaskKind kind, const std::vector<int>& sample_ids) const {
  const TaskData& task = model_->Task(kind);
  std::vector<std::vector<float>> embeddings(sample_ids.size());
  // Every sample writes only its own slot, and no-grad encoding is
  // bit-identical to the eval tape, so batched encoding fans out across
  // the pool with results identical to the serial tape loop. The guard is
  // per-chunk: inference mode is thread-local, so each executing thread
  // arms its own flag and allocates from its own workspace.
  util::ParallelFor(
      0, static_cast<int64_t>(sample_ids.size()), 1,
      [&](int64_t ib, int64_t ie) {
        tensor::InferenceModeGuard guard;
        for (int64_t i = ib; i < ie; ++i) {
          const int id = sample_ids[static_cast<size_t>(i)];
          CHECK(id >= 0 && id < static_cast<int>(task.samples.size()));
          const TaskSample& sample = task.samples[static_cast<size_t>(id)];
          std::vector<float>& out = embeddings[static_cast<size_t>(i)];
          if (const InferencePlan* plan = PlanFor(kind, id)) {
            // The store rebuild only needs the [CLS] row: run the
            // compiled encoder and copy out row 0 directly.
            plan_runs_.fetch_add(1, std::memory_order_relaxed);
            out.resize(static_cast<size_t>(plan->d_model));
            PlanRun run;
            run.token_ids = sample.seq.ids.data();
            run.segment_ids =
                plan->has_segments ? sample.seq.segments.data() : nullptr;
            run.encoder_out = out.data();
            run.encoder_out_rows = 1;
            RunPlan(*plan, run);
            if (plan_mode_ == PlanMode::kVerify) {
              tensor::Tensor hidden = model_->encoder_->Forward(
                  sample.seq.ids, sample.seq.segments,
                  nn::ExecContext::Inference());
              CHECK(BitsEqual(out, tensor::Row(hidden, 0).ToVector()))
                  << "plan verify: [CLS] embedding diverged from the "
                     "graph walk (task sample " << id << ")";
            }
          } else {
            graph_runs_.fetch_add(1, std::memory_order_relaxed);
            tensor::Tensor hidden =
                model_->encoder_->Forward(sample.seq.ids,
                                          sample.seq.segments,
                                          nn::ExecContext::Inference());
            out = tensor::Row(hidden, 0).ToVector();
          }
        }
      });
  return embeddings;
}

eval::F1Scores InferenceSession::Evaluate(TaskKind kind,
                                          data::SplitPart part) const {
  const TaskData& task = model_->Task(kind);
  const std::vector<int>* ids = nullptr;
  switch (part) {
    case data::SplitPart::kTrain:
      ids = &task.train_ids;
      break;
    case data::SplitPart::kValid:
      ids = &task.valid_ids;
      break;
    case data::SplitPart::kTest:
      ids = &task.test_ids;
      break;
  }
  // Predict seeds a per-sample RNG (InferenceSeed) and mutates no model
  // state, so samples evaluate concurrently with the same predictions the
  // serial loop produced.
  std::vector<eval::LabeledPrediction> predictions(ids->size());
  util::ParallelFor(
      0, static_cast<int64_t>(ids->size()), 1, [&](int64_t ib, int64_t ie) {
        for (int64_t i = ib; i < ie; ++i) {
          const int id = (*ids)[static_cast<size_t>(i)];
          eval::LabeledPrediction& p = predictions[static_cast<size_t>(i)];
          p.gold = task.samples[static_cast<size_t>(id)].labels;
          p.predicted = Predict(kind, id);
        }
      });
  return eval::ComputeF1(predictions, task.num_labels);
}

util::StatusOr<std::unique_ptr<ExplainTiModel>> LoadReplicaForSwap(
    const ExplainTiConfig& config, const data::TableCorpus& corpus,
    const std::string& weights_path) {
  // Chaos site: models a checkpoint store outage mid-rollout — the
  // replica never comes up, and the caller keeps the old generation.
  if (util::Status fault = FAULT_POINT("swap.load_weights"); !fault.ok()) {
    return fault;
  }
  auto replica = std::make_unique<ExplainTiModel>(config, corpus);
  // LoadWeights warms the GE/SE stores itself: it reopens the persisted
  // segmented stores from config.store_dir when set (mmap, no corpus
  // re-encode) and re-encodes in memory otherwise — so the first
  // post-swap Explain is never a cold start. No extra RefreshStores here;
  // the old double re-encode is gone.
  if (util::Status loaded = replica->LoadWeights(weights_path);
      !loaded.ok()) {
    return loaded;
  }
  return replica;
}

}  // namespace explainti::core
