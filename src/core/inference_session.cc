#include "core/inference_session.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "nn/exec_context.h"
#include "nn/lowering.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace explainti::core {

namespace {

// Plans are keyed by the only two shape-relevant properties of a sample:
// its (unpadded) sequence length and whether the embedding stack adds a
// segment term (config-enabled AND the sample carries segment ids —
// mirroring TransformerEmbeddings::Forward's condition).
int64_t PlanKey(const TaskSample& sample, bool encoder_uses_segments) {
  const bool has_seg =
      encoder_uses_segments && !sample.seq.segments.empty();
  return static_cast<int64_t>(sample.seq.ids.size()) * 2 + (has_seg ? 1 : 0);
}

// Bit-exact comparison for the verify mode: float == would accept -0.0f
// vs +0.0f and reject NaN payload matches; the contract is byte identity.
bool BitsEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

}  // namespace

InferenceSession::InferenceSession(const ExplainTiModel& model)
    : model_(&model) {
  BuildPlans();
}

void InferenceSession::BuildPlans() {
  const char* env = std::getenv("EXPLAINTI_PLAN");
  const std::string mode = env != nullptr ? env : "on";
  if (mode == "off") {
    plan_mode_ = PlanMode::kOff;
    return;
  }
  plan_mode_ = mode == "verify" ? PlanMode::kVerify : PlanMode::kOn;
  if (mode != "on" && mode != "verify") {
    LOG(WARNING) << "unknown EXPLAINTI_PLAN value \"" << mode
                 << "\" (expected on/off/verify); serving from plans";
  }
  // Chaos site: models a lowering defect shipping in a new build — plan
  // compilation fails outright and serving must degrade to the graph
  // walk, never to an error.
  if (util::Status fault = FAULT_POINT("plan.build"); !fault.ok()) {
    LOG(WARNING) << "inference plan build faulted (" << fault.ToString()
                 << "); serving from the graph walk";
    return;
  }

  const nn::EncoderLowering lowered = nn::LowerEncoder(*model_->encoder_);
  const bool use_segments = model_->encoder_->config().use_segments;
  for (TaskKind kind : {TaskKind::kType, TaskKind::kRelation}) {
    if (!model_->HasTask(kind)) continue;
    auto& plans = kind == TaskKind::kType ? type_plans_ : relation_plans_;
    const TaskData& task = model_->Task(kind);
    const nn::LinearLowering head =
        nn::LowerLinear(model_->Heads(kind).base->projection());
    for (const TaskSample& sample : task.samples) {
      const int64_t key = PlanKey(sample, use_segments);
      if (plans.find(key) != plans.end()) continue;
      util::StatusOr<InferencePlan> plan = BuildInferencePlan(
          lowered, &head, static_cast<int64_t>(sample.seq.ids.size()),
          /*has_segments=*/(key & 1) != 0);
      if (!plan.ok()) {
        // All or nothing: a per-shape mix of plan and graph serving would
        // make the fast path data-dependent and the fallback untestable.
        LOG(WARNING) << "inference plan build failed ("
                     << plan.status().ToString()
                     << "); serving from the graph walk";
        type_plans_.clear();
        relation_plans_.clear();
        plans_built_ = 0;
        return;
      }
      plans.emplace(key, std::move(plan).value());
      ++plans_built_;
    }
  }
}

const InferencePlan* InferenceSession::PlanFor(TaskKind kind,
                                               int sample_id) const {
  const auto& plans =
      kind == TaskKind::kType ? type_plans_ : relation_plans_;
  if (plans.empty() || !model_->HasTask(kind)) return nullptr;
  const TaskData& task = model_->Task(kind);
  if (sample_id < 0 ||
      sample_id >= static_cast<int>(task.samples.size())) {
    return nullptr;
  }
  const auto it =
      plans.find(PlanKey(task.samples[static_cast<size_t>(sample_id)],
                         model_->encoder_->config().use_segments));
  return it == plans.end() ? nullptr : &it->second;
}

tensor::Tensor InferenceSession::PlanEncode(const InferencePlan& plan,
                                            const TaskSample& sample) const {
  // The encoder output is the one plan intermediate that must outlive the
  // arena (the RunForward tail reads it), so it gets a pooled workspace
  // node of its own — exactly what the graph walk's final LayerNorm would
  // have produced.
  auto node = tensor::internal::AllocNode({plan.seq_len, plan.d_model},
                                          /*zero_init=*/false);
  PlanRun run;
  run.token_ids = sample.seq.ids.data();
  run.segment_ids = plan.has_segments ? sample.seq.segments.data() : nullptr;
  run.encoder_out = node->data.data();
  run.encoder_out_rows = plan.seq_len;
  RunPlan(plan, run);
  return tensor::Tensor(std::move(node));
}

ExplainTiModel::Forward InferenceSession::PlanForward(
    TaskKind kind, int sample_id, const InferencePlan& plan, util::Rng& rng,
    bool with_local, bool with_global) const {
  plan_runs_.fetch_add(1, std::memory_order_relaxed);
  const TaskData& task = model_->Task(kind);
  const TaskSample& sample = task.samples[static_cast<size_t>(sample_id)];
  tensor::Tensor embeddings = PlanEncode(plan, sample);
  // The tail (SE/LE/GE and head selection) is the graph walk's own code:
  // the plan replaces only the encoder, so the two paths cannot diverge
  // in anything but encoder numerics — which the plan contract (and the
  // verify mode below) pins to bit-identity. The inference-mode encoder
  // draws nothing from the RNG, so the tail sees the same stream either
  // way (SE neighbour sampling stays deterministic per sample).
  ExplainTiModel::Forward fwd =
      model_->RunForward(kind, sample_id, nn::ExecContext::Inference(&rng),
                         with_local, with_global, &embeddings);
  if (plan_mode_ == PlanMode::kVerify) {
    util::Rng ref_rng(model_->InferenceSeed(sample_id));
    ExplainTiModel::Forward ref = model_->RunForward(
        kind, sample_id, nn::ExecContext::Inference(&ref_rng), with_local,
        with_global);
    CHECK(BitsEqual(embeddings.ToVector(), ref.embeddings.ToVector()))
        << "plan verify: encoder output diverged from the graph walk "
           "(task sample " << sample_id << ", seq_len " << plan.seq_len
        << ")";
    CHECK(BitsEqual(fwd.final_logits.ToVector(),
                    ref.final_logits.ToVector()))
        << "plan verify: final logits diverged from the graph walk "
           "(task sample " << sample_id << ")";
  }
  return fwd;
}

std::vector<float> InferenceSession::FinalLogits(TaskKind kind,
                                                 int sample_id) const {
  tensor::InferenceModeGuard guard;
  util::Rng rng(model_->InferenceSeed(sample_id));
  const InferencePlan* plan = PlanFor(kind, sample_id);
  if (plan == nullptr) {
    graph_runs_.fetch_add(1, std::memory_order_relaxed);
    return model_
        ->RunForward(kind, sample_id, nn::ExecContext::Inference(&rng),
                     /*with_local=*/false, /*with_global=*/false)
        .final_logits.ToVector();
  }
  if (model_->config().use_structural || plan->logits_off < 0) {
    // Structural logits depend on store state and sampled neighbours, so
    // the head is not compiled in; run the compiled encoder and the
    // shared tail.
    return PlanForward(kind, sample_id, *plan, rng, /*with_local=*/false,
                       /*with_global=*/false)
        .final_logits.ToVector();
  }
  // Base head: the plan covers the whole sample — one instruction-array
  // walk, no graph dispatch at all.
  plan_runs_.fetch_add(1, std::memory_order_relaxed);
  const TaskSample& sample =
      model_->Task(kind).samples[static_cast<size_t>(sample_id)];
  std::vector<float> logits(static_cast<size_t>(plan->num_labels));
  PlanRun run;
  run.token_ids = sample.seq.ids.data();
  run.segment_ids = plan->has_segments ? sample.seq.segments.data() : nullptr;
  run.logits = logits.data();
  RunPlan(*plan, run);
  if (plan_mode_ == PlanMode::kVerify) {
    util::Rng ref_rng(model_->InferenceSeed(sample_id));
    const std::vector<float> ref =
        model_
            ->RunForward(kind, sample_id,
                         nn::ExecContext::Inference(&ref_rng),
                         /*with_local=*/false, /*with_global=*/false)
            .final_logits.ToVector();
    CHECK(BitsEqual(logits, ref))
        << "plan verify: compiled head logits diverged from the graph "
           "walk (task sample " << sample_id << ")";
  }
  return logits;
}

std::vector<int> InferenceSession::Predict(TaskKind kind,
                                           int sample_id) const {
  return model_->DecodeLabels(kind, FinalLogits(kind, sample_id));
}

std::vector<float> InferenceSession::PredictProbabilities(
    TaskKind kind, int sample_id) const {
  const TaskData& task = model_->Task(kind);
  const std::vector<float> logits = FinalLogits(kind, sample_id);
  return task.multi_label ? tensor::SigmoidValues(logits)
                          : tensor::SoftmaxValues(logits);
}

Explanation InferenceSession::Explain(TaskKind kind, int sample_id) const {
  tensor::InferenceModeGuard guard;
  util::Rng rng(model_->InferenceSeed(sample_id));
  if (const InferencePlan* plan = PlanFor(kind, sample_id)) {
    ExplainTiModel::Forward fwd =
        PlanForward(kind, sample_id, *plan, rng, model_->config().use_local,
                    model_->config().use_global);
    return model_->MakeExplanation(kind, std::move(fwd));
  }
  graph_runs_.fetch_add(1, std::memory_order_relaxed);
  ExplainTiModel::Forward fwd =
      model_->RunForward(kind, sample_id, nn::ExecContext::Inference(&rng));
  return model_->MakeExplanation(kind, std::move(fwd));
}

namespace {

// Shared fan-out shape for the batched serving entry points: each sample
// is an independent single-sample call (own guard, own InferenceSeed
// RNG, writes only its own output slot), so chunking over the pool keeps
// results bit-identical to the serial per-sample loop at any thread
// count and any batch composition.
template <typename Result, typename Fn>
std::vector<Result> ForEachSample(const std::vector<int>& sample_ids,
                                  const Fn& fn) {
  std::vector<Result> results(sample_ids.size());
  util::ParallelFor(0, static_cast<int64_t>(sample_ids.size()), 1,
                    [&](int64_t ib, int64_t ie) {
                      for (int64_t i = ib; i < ie; ++i) {
                        results[static_cast<size_t>(i)] =
                            fn(sample_ids[static_cast<size_t>(i)]);
                      }
                    });
  return results;
}

}  // namespace

std::vector<std::vector<int>> InferenceSession::PredictBatch(
    TaskKind kind, const std::vector<int>& sample_ids) const {
  return ForEachSample<std::vector<int>>(
      sample_ids, [&](int id) { return Predict(kind, id); });
}

std::vector<std::vector<float>> InferenceSession::PredictProbabilitiesBatch(
    TaskKind kind, const std::vector<int>& sample_ids) const {
  return ForEachSample<std::vector<float>>(
      sample_ids, [&](int id) { return PredictProbabilities(kind, id); });
}

std::vector<Explanation> InferenceSession::ExplainBatch(
    TaskKind kind, const std::vector<int>& sample_ids) const {
  return ForEachSample<Explanation>(
      sample_ids, [&](int id) { return Explain(kind, id); });
}

std::vector<std::vector<float>> InferenceSession::EncodeBatch(
    TaskKind kind, const std::vector<int>& sample_ids) const {
  const TaskData& task = model_->Task(kind);
  std::vector<std::vector<float>> embeddings(sample_ids.size());
  // Every sample writes only its own slot, and no-grad encoding is
  // bit-identical to the eval tape, so batched encoding fans out across
  // the pool with results identical to the serial tape loop. The guard is
  // per-chunk: inference mode is thread-local, so each executing thread
  // arms its own flag and allocates from its own workspace.
  util::ParallelFor(
      0, static_cast<int64_t>(sample_ids.size()), 1,
      [&](int64_t ib, int64_t ie) {
        tensor::InferenceModeGuard guard;
        for (int64_t i = ib; i < ie; ++i) {
          const int id = sample_ids[static_cast<size_t>(i)];
          CHECK(id >= 0 && id < static_cast<int>(task.samples.size()));
          const TaskSample& sample = task.samples[static_cast<size_t>(id)];
          std::vector<float>& out = embeddings[static_cast<size_t>(i)];
          if (const InferencePlan* plan = PlanFor(kind, id)) {
            // The store rebuild only needs the [CLS] row: run the
            // compiled encoder and copy out row 0 directly.
            plan_runs_.fetch_add(1, std::memory_order_relaxed);
            out.resize(static_cast<size_t>(plan->d_model));
            PlanRun run;
            run.token_ids = sample.seq.ids.data();
            run.segment_ids =
                plan->has_segments ? sample.seq.segments.data() : nullptr;
            run.encoder_out = out.data();
            run.encoder_out_rows = 1;
            RunPlan(*plan, run);
            if (plan_mode_ == PlanMode::kVerify) {
              tensor::Tensor hidden = model_->encoder_->Forward(
                  sample.seq.ids, sample.seq.segments,
                  nn::ExecContext::Inference());
              CHECK(BitsEqual(out, tensor::Row(hidden, 0).ToVector()))
                  << "plan verify: [CLS] embedding diverged from the "
                     "graph walk (task sample " << id << ")";
            }
          } else {
            graph_runs_.fetch_add(1, std::memory_order_relaxed);
            tensor::Tensor hidden =
                model_->encoder_->Forward(sample.seq.ids,
                                          sample.seq.segments,
                                          nn::ExecContext::Inference());
            out = tensor::Row(hidden, 0).ToVector();
          }
        }
      });
  return embeddings;
}

eval::F1Scores InferenceSession::Evaluate(TaskKind kind,
                                          data::SplitPart part) const {
  const TaskData& task = model_->Task(kind);
  const std::vector<int>* ids = nullptr;
  switch (part) {
    case data::SplitPart::kTrain:
      ids = &task.train_ids;
      break;
    case data::SplitPart::kValid:
      ids = &task.valid_ids;
      break;
    case data::SplitPart::kTest:
      ids = &task.test_ids;
      break;
  }
  // Predict seeds a per-sample RNG (InferenceSeed) and mutates no model
  // state, so samples evaluate concurrently with the same predictions the
  // serial loop produced.
  std::vector<eval::LabeledPrediction> predictions(ids->size());
  util::ParallelFor(
      0, static_cast<int64_t>(ids->size()), 1, [&](int64_t ib, int64_t ie) {
        for (int64_t i = ib; i < ie; ++i) {
          const int id = (*ids)[static_cast<size_t>(i)];
          eval::LabeledPrediction& p = predictions[static_cast<size_t>(i)];
          p.gold = task.samples[static_cast<size_t>(id)].labels;
          p.predicted = Predict(kind, id);
        }
      });
  return eval::ComputeF1(predictions, task.num_labels);
}

util::StatusOr<std::unique_ptr<ExplainTiModel>> LoadReplicaForSwap(
    const ExplainTiConfig& config, const data::TableCorpus& corpus,
    const std::string& weights_path) {
  // Chaos site: models a checkpoint store outage mid-rollout — the
  // replica never comes up, and the caller keeps the old generation.
  if (util::Status fault = FAULT_POINT("swap.load_weights"); !fault.ok()) {
    return fault;
  }
  auto replica = std::make_unique<ExplainTiModel>(config, corpus);
  // LoadWeights warms the GE/SE stores itself: it reopens the persisted
  // segmented stores from config.store_dir when set (mmap, no corpus
  // re-encode) and re-encodes in memory otherwise — so the first
  // post-swap Explain is never a cold start. No extra RefreshStores here;
  // the old double re-encode is gone.
  if (util::Status loaded = replica->LoadWeights(weights_path);
      !loaded.ok()) {
    return loaded;
  }
  return replica;
}

}  // namespace explainti::core
