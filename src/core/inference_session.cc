#include "core/inference_session.h"

#include "nn/exec_context.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace explainti::core {

std::vector<int> InferenceSession::Predict(TaskKind kind,
                                           int sample_id) const {
  tensor::InferenceModeGuard guard;
  util::Rng rng(model_->InferenceSeed(sample_id));
  ExplainTiModel::Forward fwd =
      model_->RunForward(kind, sample_id, nn::ExecContext::Inference(&rng),
                         /*with_local=*/false, /*with_global=*/false);
  return model_->DecodeLabels(kind, fwd.final_logits.ToVector());
}

std::vector<float> InferenceSession::PredictProbabilities(
    TaskKind kind, int sample_id) const {
  tensor::InferenceModeGuard guard;
  util::Rng rng(model_->InferenceSeed(sample_id));
  ExplainTiModel::Forward fwd =
      model_->RunForward(kind, sample_id, nn::ExecContext::Inference(&rng),
                         /*with_local=*/false, /*with_global=*/false);
  const TaskData& task = model_->Task(kind);
  return task.multi_label
             ? tensor::SigmoidValues(fwd.final_logits.ToVector())
             : tensor::SoftmaxValues(fwd.final_logits.ToVector());
}

Explanation InferenceSession::Explain(TaskKind kind, int sample_id) const {
  tensor::InferenceModeGuard guard;
  util::Rng rng(model_->InferenceSeed(sample_id));
  ExplainTiModel::Forward fwd =
      model_->RunForward(kind, sample_id, nn::ExecContext::Inference(&rng));
  return model_->MakeExplanation(kind, std::move(fwd));
}

namespace {

// Shared fan-out shape for the batched serving entry points: each sample
// is an independent single-sample call (own guard, own InferenceSeed
// RNG, writes only its own output slot), so chunking over the pool keeps
// results bit-identical to the serial per-sample loop at any thread
// count and any batch composition.
template <typename Result, typename Fn>
std::vector<Result> ForEachSample(const std::vector<int>& sample_ids,
                                  const Fn& fn) {
  std::vector<Result> results(sample_ids.size());
  util::ParallelFor(0, static_cast<int64_t>(sample_ids.size()), 1,
                    [&](int64_t ib, int64_t ie) {
                      for (int64_t i = ib; i < ie; ++i) {
                        results[static_cast<size_t>(i)] =
                            fn(sample_ids[static_cast<size_t>(i)]);
                      }
                    });
  return results;
}

}  // namespace

std::vector<std::vector<int>> InferenceSession::PredictBatch(
    TaskKind kind, const std::vector<int>& sample_ids) const {
  return ForEachSample<std::vector<int>>(
      sample_ids, [&](int id) { return Predict(kind, id); });
}

std::vector<std::vector<float>> InferenceSession::PredictProbabilitiesBatch(
    TaskKind kind, const std::vector<int>& sample_ids) const {
  return ForEachSample<std::vector<float>>(
      sample_ids, [&](int id) { return PredictProbabilities(kind, id); });
}

std::vector<Explanation> InferenceSession::ExplainBatch(
    TaskKind kind, const std::vector<int>& sample_ids) const {
  return ForEachSample<Explanation>(
      sample_ids, [&](int id) { return Explain(kind, id); });
}

std::vector<std::vector<float>> InferenceSession::EncodeBatch(
    TaskKind kind, const std::vector<int>& sample_ids) const {
  const TaskData& task = model_->Task(kind);
  std::vector<std::vector<float>> embeddings(sample_ids.size());
  // Every sample writes only its own slot, and no-grad encoding is
  // bit-identical to the eval tape, so batched encoding fans out across
  // the pool with results identical to the serial tape loop. The guard is
  // per-chunk: inference mode is thread-local, so each executing thread
  // arms its own flag and allocates from its own workspace.
  util::ParallelFor(
      0, static_cast<int64_t>(sample_ids.size()), 1,
      [&](int64_t ib, int64_t ie) {
        tensor::InferenceModeGuard guard;
        for (int64_t i = ib; i < ie; ++i) {
          const int id = sample_ids[static_cast<size_t>(i)];
          CHECK(id >= 0 && id < static_cast<int>(task.samples.size()));
          const TaskSample& sample = task.samples[static_cast<size_t>(id)];
          tensor::Tensor hidden =
              model_->encoder_->Forward(sample.seq.ids, sample.seq.segments,
                                        nn::ExecContext::Inference());
          embeddings[static_cast<size_t>(i)] =
              tensor::Row(hidden, 0).ToVector();
        }
      });
  return embeddings;
}

eval::F1Scores InferenceSession::Evaluate(TaskKind kind,
                                          data::SplitPart part) const {
  const TaskData& task = model_->Task(kind);
  const std::vector<int>* ids = nullptr;
  switch (part) {
    case data::SplitPart::kTrain:
      ids = &task.train_ids;
      break;
    case data::SplitPart::kValid:
      ids = &task.valid_ids;
      break;
    case data::SplitPart::kTest:
      ids = &task.test_ids;
      break;
  }
  // Predict seeds a per-sample RNG (InferenceSeed) and mutates no model
  // state, so samples evaluate concurrently with the same predictions the
  // serial loop produced.
  std::vector<eval::LabeledPrediction> predictions(ids->size());
  util::ParallelFor(
      0, static_cast<int64_t>(ids->size()), 1, [&](int64_t ib, int64_t ie) {
        for (int64_t i = ib; i < ie; ++i) {
          const int id = (*ids)[static_cast<size_t>(i)];
          eval::LabeledPrediction& p = predictions[static_cast<size_t>(i)];
          p.gold = task.samples[static_cast<size_t>(id)].labels;
          p.predicted = Predict(kind, id);
        }
      });
  return eval::ComputeF1(predictions, task.num_labels);
}

util::StatusOr<std::unique_ptr<ExplainTiModel>> LoadReplicaForSwap(
    const ExplainTiConfig& config, const data::TableCorpus& corpus,
    const std::string& weights_path) {
  // Chaos site: models a checkpoint store outage mid-rollout — the
  // replica never comes up, and the caller keeps the old generation.
  if (util::Status fault = FAULT_POINT("swap.load_weights"); !fault.ok()) {
    return fault;
  }
  auto replica = std::make_unique<ExplainTiModel>(config, corpus);
  if (util::Status loaded = replica->LoadWeights(weights_path);
      !loaded.ok()) {
    return loaded;
  }
  // Warm the GE/SE stores so the first post-swap Explain is not a cold
  // start (and so explanations are available at all).
  replica->RefreshStores();
  return replica;
}

}  // namespace explainti::core
