#ifndef EXPLAINTI_CORE_EXPLAIN_TI_MODEL_H_
#define EXPLAINTI_CORE_EXPLAIN_TI_MODEL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/embedding_store.h"
#include "core/explanation.h"
#include "core/task_data.h"
#include "data/corpus.h"
#include "eval/f1_metrics.h"
#include "nn/encoder.h"
#include "nn/exec_context.h"
#include "nn/heads.h"
#include "text/serializer.h"
#include "text/tokenizer.h"
#include "text/vocab.h"
#include "util/rng.h"
#include "util/status.h"

namespace explainti::core {

class InferenceSession;

/// Wall-clock accounting of a Fit() run (Table V), plus the recovery
/// events the hardened trainer survived.
struct FitStats {
  double pretrain_seconds = 0.0;
  double type_train_seconds = 0.0;
  double relation_train_seconds = 0.0;
  double store_build_seconds = 0.0;
  float best_valid_f1 = 0.0f;
  int best_epoch = -1;
  /// Optimiser steps skipped because the loss or gradients were
  /// non-finite (clip/skip/rollback policy; see DESIGN.md).
  int64_t skipped_steps = 0;
  /// Parameter rollbacks to the last-known-good snapshot after
  /// `config.max_bad_steps` consecutive skipped steps.
  int rollbacks = 0;
  /// Fit() resumed from `config.checkpoint_path` instead of pre-training.
  bool resumed = false;
};

/// The ExplainTI framework (Section III): a pre-trained mini transformer
/// encoder fine-tuned multi-task over column-type and column-relation
/// prediction, with three jointly-trained explanation modules —
/// Local (Algorithm 1), Global (Algorithm 2), Structural (Algorithm 4) —
/// optimised with the joint loss L = L_S + alpha*L_L + beta*L_G (Eq. 11,
/// Algorithm 5).
///
/// Typical usage:
///   ExplainTiModel model(config, corpus);
///   model.Fit();
///   eval::F1Scores f1 = model.Evaluate(TaskKind::kType,
///                                      data::SplitPart::kTest);
///   Explanation z = model.Explain(TaskKind::kType, sample_id);
class ExplainTiModel {
 public:
  /// Builds the vocabulary from the corpus's *training* tables, constructs
  /// the encoder for `config.base_model`, and serialises both tasks.
  ExplainTiModel(const ExplainTiConfig& config,
                 const data::TableCorpus& corpus);

  ExplainTiModel(const ExplainTiModel&) = delete;
  ExplainTiModel& operator=(const ExplainTiModel&) = delete;
  ~ExplainTiModel();

  /// Runs the full pipeline: MLM pre-training, embedding-store
  /// initialisation, and multi-task fine-tuning with epoch-level task
  /// switching; keeps the parameters of the best validation epoch.
  FitStats Fit();

  /// Does this model have the given task (relation is absent on
  /// database-table corpora)?
  bool HasTask(TaskKind kind) const;

  /// Test/valid/train F1 for one task. Routed through the no-grad
  /// InferenceSession (bit-identical to the tape path).
  eval::F1Scores Evaluate(TaskKind kind, data::SplitPart part) const;

  /// Predicted label ids for one sample (no explanation overhead). This is
  /// the tape-building reference path; serving should go through
  /// session() instead.
  std::vector<int> Predict(TaskKind kind, int sample_id) const;

  /// Prediction plus the multi-view explanation set Z (tape-building
  /// reference path; see session()).
  Explanation Explain(TaskKind kind, int sample_id) const;

  /// The frozen no-grad serving facade over this model's current weights.
  /// Valid for the model's lifetime; weights-mutating calls (Fit,
  /// LoadWeights) must not run concurrently with session use.
  const InferenceSession& session() const { return *session_; }

  /// Re-encodes all training samples and rebuilds the embedding stores
  /// from the current weights (serving-time refresh; also lets tests and
  /// benches populate stores without a full Fit()). Safe to call while
  /// the session serves concurrently: each rebuild publishes a
  /// copy-on-write store snapshot, and in-flight forward passes keep the
  /// snapshot they pinned (EmbeddingStore::View) — weights-mutating calls
  /// (Fit, LoadWeights) remain excluded from concurrent session use.
  void RefreshStores();

  /// Persists every active task's embedding store under `dir` (one
  /// subdirectory per task: type/, relation/) in the segmented
  /// CRC32-footed format of store_persistence.h. Requires non-empty
  /// stores (call RefreshStores()/Fit() first).
  util::Status SaveStores(const std::string& dir) const;

  /// Reopens stores written by SaveStores() (segments load via mmap) and
  /// publishes them as the current store snapshots — no corpus
  /// re-encoding. Fails with a typed error on missing/corrupt files or a
  /// geometry mismatch with this model (wrong dim, ids beyond the task's
  /// samples); on failure the stores keep their previous snapshots.
  util::Status LoadStores(const std::string& dir);

  const TaskData& task_data(TaskKind kind) const;
  const ExplainTiConfig& config() const { return config_; }
  const text::Vocab& vocab() const { return *vocab_; }

  /// Per-label sigma outputs for one sample (probabilities).
  std::vector<float> PredictProbabilities(TaskKind kind, int sample_id) const;

  /// Writes all trainable parameters to `path` (binary). The file is only
  /// loadable into a model built with the same config and corpus (the
  /// architecture is reconstructed from those; the file carries weights
  /// only).
  util::Status SaveWeights(const std::string& path) const;

  /// Restores parameters written by SaveWeights and rebuilds the
  /// embedding stores. Fails on shape mismatch without modifying weights.
  util::Status LoadWeights(const std::string& path);

 private:
  friend class InferenceSession;

  /// Trainable heads for one task.
  struct TaskHeads {
    std::unique_ptr<nn::ClassifierHead> base;        // Eq. 1 (w/o SE).
    std::unique_ptr<nn::ClassifierHead> structural;  // Eq. 9 (2d -> c).
    std::unique_ptr<nn::ClassifierHead> local;       // Eq. 2 (W_l).
    std::unique_ptr<nn::ClassifierHead> global;      // l_G head (W_g).
  };

  /// Outcome of one forward pass with the explanation modules attached.
  struct Forward {
    tensor::Tensor embeddings;    // E [L, d].
    tensor::Tensor cls;           // E_[CLS].
    tensor::Tensor final_logits;  // SE logits (Eq. 9) or base (Eq. 1).
    // LE.
    tensor::Tensor local_probs;   // l_L (probability vector), if LE on.
    std::vector<LocalExplanation> windows;
    // GE.
    tensor::Tensor global_logits;  // l_G, if GE on and store ready.
    std::vector<GlobalExplanation> retrieved;
    // SE.
    std::vector<StructuralExplanation> neighbors;
    // True when GE retrieval used the flat-index fallback.
    bool ann_fallback = false;
  };

  const TaskData& Task(TaskKind kind) const;
  TaskHeads& Heads(TaskKind kind);
  const TaskHeads& Heads(TaskKind kind) const;
  EmbeddingStore& Store(TaskKind kind);
  const EmbeddingStore& Store(TaskKind kind) const;

  /// Full forward pass for `sample_id`. `ctx` selects the execution path
  /// (train tape / eval tape / no-grad inference) and carries the RNG used
  /// for dropout and SE neighbour sampling. The three-argument form runs
  /// with the configured explanation modules; the explicit form lets
  /// Predict() skip LE/GE (they never change the final logits) without
  /// mutating shared state, which keeps concurrent Evaluate() calls
  /// race-free. `precomputed_embeddings`, when non-null, replaces the
  /// encoder call with an already-computed E [L, d] (the compiled-plan
  /// path hands the encoder output here and this method runs the
  /// SE/LE/GE/head tail exactly as before — in particular the se_ready
  /// decision stays in one place, so plan and graph calls can never
  /// disagree about which head ran).
  Forward RunForward(TaskKind kind, int sample_id,
                     const nn::ExecContext& ctx) const {
    return RunForward(kind, sample_id, ctx, config_.use_local,
                      config_.use_global);
  }
  Forward RunForward(TaskKind kind, int sample_id, const nn::ExecContext& ctx,
                     bool with_local, bool with_global,
                     const tensor::Tensor* precomputed_embeddings =
                         nullptr) const;

  /// Assembles the public Explanation record from a full Forward.
  Explanation MakeExplanation(TaskKind kind, Forward fwd) const;

  /// Builds the per-sample joint loss (Eq. 11) from a Forward.
  tensor::Tensor ComputeLoss(TaskKind kind, const TaskSample& sample,
                             const Forward& forward) const;

  /// Re-encodes all training samples of `kind` and rebuilds its store.
  void RebuildStore(TaskKind kind);

  /// LoadWeights' store step: reopen persisted stores from
  /// `config_.store_dir` when set and loadable, otherwise fall back to
  /// RefreshStores() (the in-memory re-encode).
  void RestoreStores();

  /// Decodes predicted label ids from final logits.
  std::vector<int> DecodeLabels(TaskKind kind,
                                const std::vector<float>& logits) const;

  std::vector<tensor::Tensor> AllParameters() const;

  /// Seed for inference-time stochastic components (SE neighbour
  /// sampling), derived from the config seed and the sample so that
  /// Predict/Explain are deterministic per sample, independent of call
  /// order (and reproducible after SaveWeights/LoadWeights).
  uint64_t InferenceSeed(int sample_id) const {
    return config_.seed * 2654435761ULL + 999 +
           static_cast<uint64_t>(sample_id);
  }

  ExplainTiConfig config_;
  std::shared_ptr<text::Vocab> vocab_;
  std::unique_ptr<text::Tokenizer> tokenizer_;
  std::unique_ptr<text::SequenceSerializer> serializer_;

  std::unique_ptr<nn::TransformerEncoder> encoder_;
  TaskHeads type_heads_;
  TaskHeads relation_heads_;

  std::optional<TaskData> type_task_;
  std::optional<TaskData> relation_task_;

  EmbeddingStore type_store_;
  EmbeddingStore relation_store_;

  // Created in the constructor; borrows *this (never null afterwards).
  std::unique_ptr<InferenceSession> session_;
};

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_EXPLAIN_TI_MODEL_H_
