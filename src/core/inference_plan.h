#ifndef EXPLAINTI_CORE_INFERENCE_PLAN_H_
#define EXPLAINTI_CORE_INFERENCE_PLAN_H_

#include <cstdint>
#include <vector>

#include "nn/lowering.h"
#include "tensor/dtype.h"
#include "util/status.h"

namespace explainti::core {

/// Compiled inference plans: the frozen eval graph, lowered once at
/// InferenceSession construction into a flat, topologically-ordered
/// instruction stream over a single pre-planned scratch arena.
///
/// Where the graph walk re-builds its op graph every call — allocating a
/// node per op (pooled, but still dispatched), materialising per-head
/// slice/transpose/concat copies, and running bias, activation, residual
/// and normalisation as separate passes — a plan is a POD array of
/// PlanInstr executed by one switch loop:
///
///   * fused elementwise chains: Linear bias-add folded into its GEMM,
///     bias+GELU as one pass, scale+softmax in place on the attention
///     scores, residual-add+LayerNorm as one pass, and the whole
///     embedding stack (token+position+segment gathers + LayerNorm) as a
///     single kernel;
///   * strided per-head GEMMs: attention heads read q/k/v column slices
///     and write their context columns directly via lda/ldb/ldc, so
///     SliceCols/ConcatCols never materialise. Only k_h^T is materialised
///     (kTranspose into one reused planned buffer): the non-transposed
///     GEMM kernel vectorises its contiguous inner loop, while the
///     trans_b strided-gather path does not — the 16x64-float copy is far
///     cheaper than running the scores GEMM scalar;
///   * fixed offsets: every intermediate lives at a liveness-planned
///     byte offset (tensor::PlanBufferOffsets — byte-granular so fp32
///     activations and int8 quantization scratch share one mixed-width
///     arena) in one flat arena, so steady-state execution performs zero
///     tensor dispatch and zero heap allocation — the executor acquires
///     the arena from the per-thread workspace pool and walks the array;
///   * per-tensor precision: each kGemm is stamped with a tensor::DType.
///     A quantized build (PlanQuantSpec) lowers selected weight GEMMs to
///     int8 (quantize activations per row, int32-accumulate against the
///     prebuilt int8 weights, fused dequant epilogue) with a per-layer
///     fp32-fallback bit; activation x activation GEMMs and every
///     normalisation stay fp32. A plan with no quant spec is the exact
///     historical all-fp32 stream, bit-identical to the graph walk.
///
/// Bit-identity with the graph walk is structural, not approximate: both
/// paths call the one compiled copy of each serving kernel
/// (tensor/plan_kernels.h), and no fusion reassociates a float
/// expression. InferenceSession's EXPLAINTI_PLAN=verify mode re-checks
/// the equivalence at runtime on every call.
///
/// Plans are keyed by (task, sequence length, segment use): sequences are
/// unpadded and serve one sample per call (batching is per-sample
/// fan-out), so shape — not batch size — is the axis that changes the
/// instruction stream. The builder runs eagerly over every distinct key
/// in the task data; an unsupported shape fails the build and the session
/// falls back to the graph walk for everything.

enum class PlanOpCode : uint8_t {
  /// out = LN(token[ids] + position (+ segment[seg])) — one pass.
  kEmbedLayerNorm,
  /// out = A * B (+post). B is a weight matrix or an arena view.
  kGemm,
  /// out = LN(a + b) — residual add + LayerNorm, one pass.
  kResidualLayerNorm,
  /// out[j*ldc + i] = a[i*lda + j] for i < m, j < n — materialises a
  /// transposed copy of an [m, n] view. Element values and every
  /// downstream accumulation order are unchanged; only the memory layout
  /// B is read from differs, which the GEMM kernels document as
  /// bit-irrelevant.
  kTranspose,
};

/// Epilogue fused into a kGemm instruction.
enum class PlanPostOp : uint8_t {
  kNone,
  kBias,          ///< C += bias (Linear's broadcast add).
  kBiasGelu,      ///< C = gelu(C + bias) (FFN expansion).
  kScaleSoftmax,  ///< C = softmax(C * scale) per row (attention scores).
};

/// One instruction. POD: fixed dims and strides, arena BYTE offsets for
/// activation operands (b_off < 0 selects the `weight` pointer instead),
/// and raw parameter pointers that borrow the model's storage (and, for
/// int8 GEMMs, the session's quantized weight storage). During building
/// the *_off fields hold logical buffer ids; Finalize patches them to
/// arena byte offsets (folding per-head column offsets in).
struct PlanInstr {
  PlanOpCode op = PlanOpCode::kGemm;
  PlanPostOp post = PlanPostOp::kNone;
  bool trans_b = false;
  /// Precision of a kGemm's inner product. kF32 runs ServingGemm on the
  /// borrowed fp32 weights; kI8 quantizes the A rows into the plan's
  /// shared scratch and runs ServingGemmInt8 against weight_q, then the
  /// post-op epilogue applies in fp32 exactly as on the kF32 path.
  tensor::DType dtype = tensor::DType::kF32;
  int64_t m = 0, k = 0, n = 0;        ///< GEMM dims; LN ops use m rows, n cols.
  int64_t lda = 0, ldb = 0, ldc = 0;  ///< Row strides of A / B / C views.
  int64_t a_off = -1;                 ///< Arena byte offset of A (LN input x).
  int64_t b_off = -1;                 ///< Arena byte offset of B (LN input f).
  int64_t out_off = -1;               ///< Arena byte offset of C / out.
  const float* weight = nullptr;  ///< GEMM B weight; token table for embed.
  const float* bias = nullptr;    ///< Post-op bias; position table for embed.
  const float* aux = nullptr;     ///< Segment table for embed (may be null).
  const float* gamma = nullptr;   ///< LayerNorm gain.
  const float* beta = nullptr;    ///< LayerNorm bias.
  /// kI8 only: the quantized weight [k, n] and its per-column dequant
  /// parameters, borrowing the session's QuantizedLinear storage.
  const int8_t* weight_q = nullptr;
  const float* wq_scales = nullptr;
  const int32_t* wq_col_sums = nullptr;
  float scale = 1.0f;             ///< kScaleSoftmax multiplier.
  float eps = 0.0f;               ///< LayerNorm epsilon.
};

/// Selects the precision of a plan's weight GEMMs. Null `encoder` (or a
/// null spec) builds the all-fp32 plan. `layer_int8` is parallel to the
/// encoder layers: a zero bit is that layer's fp32 fallback (calibration
/// decided int8 loses too much agreement there). `head`, when non-null,
/// lowers the folded classifier head to int8 too.
struct PlanQuantSpec {
  const nn::QuantizedEncoder* encoder = nullptr;
  const std::vector<uint8_t>* layer_int8 = nullptr;  ///< Null: all int8.
  const nn::QuantizedLinear* head = nullptr;
};

/// A compiled plan for one (task, seq_len, has_segments) key.
struct InferencePlan {
  std::vector<PlanInstr> instrs;
  /// Instructions [0, encoder_end) compute the encoder; the remainder
  /// (present when a head was folded in) compute classifier logits.
  int32_t encoder_end = 0;
  int64_t arena_bytes = 0;   ///< Scratch bytes the executor needs.
  int64_t enc_out_off = 0;   ///< Arena byte offset of encoder output [L, d].
  int64_t logits_off = -1;   ///< Arena byte offset of the logits; -1 if none.
  /// Shared int8 quantization scratch (one block serves every int8 GEMM
  /// in sequence): quantized A rows, per-row scales, per-row zero
  /// points. -1 when the plan has no int8 instructions.
  int64_t qa_off = -1;
  int64_t qs_off = -1;
  int64_t qzp_off = -1;
  int64_t seq_len = 0;
  int64_t d_model = 0;
  int64_t num_labels = 0;    ///< 0 when no head was folded in.
  int64_t int8_gemms = 0;    ///< kGemm instructions stamped kI8.
  bool has_segments = false;
};

/// Per-call inputs and outputs of RunPlan. Token/segment ids are the only
/// runtime inputs (the plan bakes shapes and weights); outputs are copied
/// into caller-owned storage so the arena never escapes.
struct PlanRun {
  const int* token_ids = nullptr;    ///< [seq_len]; required.
  const int* segment_ids = nullptr;  ///< [seq_len]; required iff has_segments.
  /// If non-null, receives the first `encoder_out_rows` rows of the
  /// encoder output ([rows, d_model], contiguous). rows=1 copies just the
  /// [CLS] embedding for EncodeBatch.
  float* encoder_out = nullptr;
  int64_t encoder_out_rows = 0;
  /// If non-null, receives the `num_labels` logits; the head instructions
  /// only execute when this is requested (and the plan has them).
  float* logits = nullptr;
};

/// Lowers one (seq_len, has_segments) call shape of `encoder` into a
/// plan; `head` (optional) folds a classifier into the stream. Returns an
/// error — and the session falls back to the graph walk — when the shape
/// is outside the encoder's envelope (seq_len out of [1, max_len],
/// d_model not divisible by num_heads, segment request without a table).
/// `quant` (optional) stamps selected weight GEMMs kI8 per its per-layer
/// bits; a malformed spec (layer count or shape mismatch) returns a
/// typed InvalidArgument, and the session fails closed to the all-fp32
/// plan.
util::StatusOr<InferencePlan> BuildInferencePlan(
    const nn::EncoderLowering& encoder, const nn::LinearLowering* head,
    int64_t seq_len, bool has_segments,
    const PlanQuantSpec* quant = nullptr);

/// Executes `plan` on the calling thread (GEMMs fan out across the pool
/// exactly like the graph walk's MatMul). Zero heap allocations once the
/// per-thread workspace has warmed: the arena is acquired from and
/// returned to the workspace buffer pool around the instruction loop.
void RunPlan(const InferencePlan& plan, const PlanRun& run);

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_INFERENCE_PLAN_H_
