#include "core/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/binary_io.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace explainti::core {

namespace {

constexpr char kMagic[] = "XTICKPT1";
constexpr uint32_t kVersion = 1;

// The framing helpers (append PODs, bounds-checked reads) live in
// util/binary_io.h, shared with the embedding-store segment/manifest
// formats.
using util::AppendFloats;
using util::BinaryReader;

template <typename T>
void Append(std::string* buffer, T value) {
  util::AppendPod(buffer, value);
}

}  // namespace

util::Status SaveCheckpoint(const std::string& path, const Checkpoint& ckpt) {
  if (ckpt.best_params.size() != 0 &&
      ckpt.best_params.size() != ckpt.params.size()) {
    return util::Status::InvalidArgument(
        "best_params count must be 0 or match params");
  }
  const bool has_opt = !ckpt.opt_m.empty();
  if (has_opt && (ckpt.opt_m.size() != ckpt.params.size() ||
                  ckpt.opt_v.size() != ckpt.params.size())) {
    return util::Status::InvalidArgument(
        "optimizer state count must match params");
  }

  std::string buffer;
  buffer.append(kMagic, 8);
  Append(&buffer, kVersion);
  Append(&buffer, ckpt.next_epoch);
  Append(&buffer, ckpt.schedule_step);
  Append(&buffer, ckpt.best_valid_f1);
  Append(&buffer, ckpt.best_epoch);
  Append(&buffer, static_cast<int64_t>(ckpt.params.size()));
  for (const std::vector<float>& p : ckpt.params) {
    Append(&buffer, static_cast<int64_t>(p.size()));
    AppendFloats(&buffer, p);
  }
  Append(&buffer, static_cast<uint8_t>(ckpt.best_params.empty() ? 0 : 1));
  for (size_t i = 0; i < ckpt.best_params.size(); ++i) {
    if (ckpt.best_params[i].size() != ckpt.params[i].size()) {
      return util::Status::InvalidArgument(
          "best_params size mismatch at parameter " + std::to_string(i));
    }
    AppendFloats(&buffer, ckpt.best_params[i]);
  }
  Append(&buffer, static_cast<uint8_t>(has_opt ? 1 : 0));
  if (has_opt) {
    Append(&buffer, ckpt.opt_step_count);
    for (size_t i = 0; i < ckpt.params.size(); ++i) {
      if (ckpt.opt_m[i].size() != ckpt.params[i].size() ||
          ckpt.opt_v[i].size() != ckpt.params[i].size()) {
        return util::Status::InvalidArgument(
            "optimizer state size mismatch at parameter " +
            std::to_string(i));
      }
      AppendFloats(&buffer, ckpt.opt_m[i]);
      AppendFloats(&buffer, ckpt.opt_v[i]);
    }
  }
  Append(&buffer, util::Crc32(buffer));

  // Atomic publish: write the full image to a tmp file, then rename. A
  // crash (or the injected fault below) mid-write leaves `path` untouched,
  // and the torn tmp file is removed before reporting the error.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return util::Status::IoError("cannot open " + tmp);
    const size_t half = buffer.size() / 2;
    out.write(buffer.data(), static_cast<std::streamsize>(half));
    util::Status fault = FAULT_POINT("checkpoint.write");
    if (fault.ok()) {
      out.write(buffer.data() + half,
                static_cast<std::streamsize>(buffer.size() - half));
    }
    out.flush();
    if (!fault.ok() || !out) {
      out.close();
      std::remove(tmp.c_str());
      return fault.ok() ? util::Status::IoError("write failed for " + tmp)
                        : fault;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return util::Status::OK();
}

util::StatusOr<Checkpoint> LoadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("no checkpoint at " + path);
  if (util::Status fault = FAULT_POINT("checkpoint.read"); !fault.ok()) {
    return fault;
  }
  std::string image((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return util::Status::IoError("read failed for " + path);

  if (image.size() < 8 + sizeof(uint32_t) * 2 ||
      std::memcmp(image.data(), kMagic, 8) != 0) {
    return util::Status::InvalidArgument("not a checkpoint file: " + path);
  }
  // Verify the CRC32 footer before trusting any length field.
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, image.data() + image.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t actual_crc =
      util::Crc32(image.data(), image.size() - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return util::Status::InvalidArgument(
        "checkpoint CRC mismatch (corrupted or truncated): " + path);
  }

  BinaryReader reader(image.data() + 8, image.size() - 8 - sizeof(uint32_t));
  uint32_t version = 0;
  Checkpoint ckpt;
  int64_t num_params = 0;
  if (!reader.Read(&version) || version != kVersion) {
    return util::Status::InvalidArgument("unsupported checkpoint version");
  }
  const auto truncated = [&path]() {
    return util::Status::InvalidArgument("truncated checkpoint: " + path);
  };
  if (!reader.Read(&ckpt.next_epoch) || !reader.Read(&ckpt.schedule_step) ||
      !reader.Read(&ckpt.best_valid_f1) || !reader.Read(&ckpt.best_epoch) ||
      !reader.Read(&num_params) || num_params < 0) {
    return truncated();
  }
  ckpt.params.resize(static_cast<size_t>(num_params));
  for (auto& p : ckpt.params) {
    int64_t size = 0;
    if (!reader.Read(&size) || !reader.ReadFloats(&p, size)) {
      return truncated();
    }
  }
  uint8_t has_best = 0;
  if (!reader.Read(&has_best)) return truncated();
  if (has_best != 0) {
    ckpt.best_params.resize(ckpt.params.size());
    for (size_t i = 0; i < ckpt.params.size(); ++i) {
      if (!reader.ReadFloats(&ckpt.best_params[i],
                             static_cast<int64_t>(ckpt.params[i].size()))) {
        return truncated();
      }
    }
  }
  uint8_t has_opt = 0;
  if (!reader.Read(&has_opt)) return truncated();
  if (has_opt != 0) {
    if (!reader.Read(&ckpt.opt_step_count)) return truncated();
    ckpt.opt_m.resize(ckpt.params.size());
    ckpt.opt_v.resize(ckpt.params.size());
    for (size_t i = 0; i < ckpt.params.size(); ++i) {
      const int64_t size = static_cast<int64_t>(ckpt.params[i].size());
      if (!reader.ReadFloats(&ckpt.opt_m[i], size) ||
          !reader.ReadFloats(&ckpt.opt_v[i], size)) {
        return truncated();
      }
    }
  }
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument("trailing bytes in checkpoint: " +
                                         path);
  }
  return ckpt;
}

}  // namespace explainti::core
