#ifndef EXPLAINTI_CORE_EVIDENCE_H_
#define EXPLAINTI_CORE_EVIDENCE_H_

#include <algorithm>
#include <cstddef>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/explanation.h"

namespace explainti::core {

/// The "evidence" of an explanation: the distinct tokens inside the
/// top-`k` local windows by relevance. This is the unit the golden
/// explanation fixture (tests/golden_evidence.h) and the quantized
/// accuracy gate agree on — local windows are the view most sensitive to
/// encoder numerics (relevance scores reorder under tiny logit shifts),
/// so token-set agreement here is a stricter check than label equality
/// but a fairer one than bitwise relevance comparison across precision
/// tiers.
///
/// Tokens are compared as a set: the top windows routinely overlap, and
/// two explanations that highlight the same table cells are the same
/// evidence even when their window ranking swaps neighbours.
///
/// Header-only and dependency-free beyond core/explanation.h, so eval,
/// tests and benches can all share the one definition (core cannot link
/// a helper living in eval — core already links eval for f1_metrics).
inline std::set<std::string> TopEvidenceTokens(const Explanation& explanation,
                                               size_t k) {
  std::set<std::string> tokens;
  const size_t take = std::min(k, explanation.local.size());
  for (size_t i = 0; i < take; ++i) {
    std::istringstream words(explanation.local[i].text);
    std::string token;
    while (words >> token) tokens.insert(token);
  }
  return tokens;
}

/// Jaccard similarity of two evidence sets in [0, 1]; 1.0 when both are
/// empty (no evidence agrees with no evidence).
inline double EvidenceAgreement(const std::set<std::string>& a,
                                const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t intersection = 0;
  for (const std::string& token : a) {
    intersection += b.count(token);
  }
  const size_t unions = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_EVIDENCE_H_
