#ifndef EXPLAINTI_CORE_STORE_PERSISTENCE_H_
#define EXPLAINTI_CORE_STORE_PERSISTENCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/embedding_store.h"
#include "util/status.h"

namespace explainti::core {

// On-disk format of a persisted embedding store (see DESIGN.md "Sharded
// embedding store"). A store directory holds one file per non-empty
// segment plus `manifest.xtm`, every file carrying the same CRC32 footer
// discipline as core/checkpoint and written atomically via tmp+rename;
// the manifest is written last so a crash mid-save can never publish a
// manifest that names missing segment files.
//
// Segment file ("XTISEG01"): a 64-byte header (version, flags, range
// index, count, dim, content hash) followed by ids[count] (int64), the
// raw rows (float, count x dim), the L2-normalised rows (float, count x
// dim) and, when the hnsw_ready flag is set, the serialised HNSW graph.
// Payload arrays start at 8-byte-aligned offsets, so a loaded (mmap'd)
// segment serves searches directly out of the page cache — the arrays
// are read through typed pointers into the mapping, never copied.
//
// Manifest file ("XTIMAN01"): store geometry (dim, span, total count),
// the HnswOptions the segments were built with (per-segment seeds derive
// from the base seed via ann::SeedForSegment), and one (index, count,
// content_hash) record per segment, each cross-checked against the
// segment file's own header at load time.

/// The manifest record: everything needed to reopen a store directory.
struct StoreManifest {
  int64_t dim = 0;
  int64_t span = 0;
  int64_t count = 0;
  ann::HnswOptions hnsw;
  struct Entry {
    int64_t index = 0;
    int64_t count = 0;
    uint64_t content_hash = 0;
  };
  std::vector<Entry> entries;
};

/// mkdir -p: creates `path` and any missing parents (0755).
util::Status EnsureDirectory(const std::string& path);

/// Canonical file name of segment `index` within a store directory.
std::string SegmentFileName(int64_t index);

/// Writes one segment file (atomic tmp+rename; fault site "store.save").
util::Status SaveSegmentFile(const std::string& path,
                             const EmbeddingStore::Segment& segment);

/// Loads one segment file via mmap (read() fallback), verifies its CRC
/// and header against the manifest (`entry` names the expected index,
/// count and content hash), validates ids are strictly ascending within
/// the segment's id-range, and rebinds the index tiers onto the mapped
/// payload. InvalidArgument on any corruption or mismatch.
util::StatusOr<std::shared_ptr<const EmbeddingStore::Segment>>
LoadSegmentFile(const std::string& path, const StoreManifest& manifest,
                const StoreManifest::Entry& entry);

/// Writes the manifest (atomic tmp+rename; fault site "store.save").
util::Status SaveManifest(const std::string& path,
                          const StoreManifest& manifest);

/// Loads and validates a manifest. NotFound when absent, InvalidArgument
/// on CRC mismatch or malformed contents.
util::StatusOr<StoreManifest> LoadManifest(const std::string& path);

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_STORE_PERSISTENCE_H_
