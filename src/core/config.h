#ifndef EXPLAINTI_CORE_CONFIG_H_
#define EXPLAINTI_CORE_CONFIG_H_

#include <cstdint>
#include <string>

namespace explainti::core {

/// Hyper-parameters of the ExplainTI framework (paper Section IV-A, scaled
/// to this CPU reproduction; paper values noted in comments).
struct ExplainTiConfig {
  /// Base encoder: "bert" or "roberta".
  std::string base_model = "bert";

  // -- Explanation modules (the ablation switches of Table III) ----------
  bool use_local = true;       ///< LE (Algorithm 1).
  bool use_global = true;      ///< GE (Algorithm 2).
  bool use_structural = true;  ///< SE (Algorithm 4).
  /// PP: deduplicate cell values during serialisation (Section IV-D).
  bool dedup_cells = false;

  // -- Loss weights (Eq. 11) ---------------------------------------------
  float alpha = 0.10f;  ///< LE loss weight (paper grid {0.05..0.50}).
  float beta = 0.10f;   ///< GE loss weight.

  // -- Module hyper-parameters -------------------------------------------
  int top_k = 10;           ///< K influential samples in GE (paper: 10).
  int window_size = 8;      ///< LE window k (paper: 8).
  int sample_size = 16;     ///< SE neighbour sample size r (paper: 16).
  /// Embedding-store refresh period in epochs. The paper refreshes every
  /// 5 of its 40 epochs; scaled to this reproduction's ~10-epoch runs the
  /// same refresh *fraction* is every 2 epochs (stale stores make SE feed
  /// pre-fine-tuning embeddings to the classifier and hurt accuracy).
  int q_refresh_epochs = 2;

  // -- Optimisation ---------------------------------------------------------
  int epochs = 10;             ///< Per task (paper: 40 on A100).
  float learning_rate = 1e-3f; ///< (paper: 5e-5 for BERT-base).
  int batch_size = 16;         ///< Gradient-accumulation batch (paper: 160).
  int max_seq_len = 40;        ///< Token budget (paper: 64).
  uint64_t seed = 1234;

  // -- Pre-training -----------------------------------------------------------
  int pretrain_epochs = 2;
  float pretrain_learning_rate = 1e-3f;

  // -- Embedding store (see DESIGN.md "Sharded embedding store") ----------
  /// Id-range segments per embedding store (>= 1). More segments shard the
  /// ANN search across the thread pool and make rebuilds copy-on-write at
  /// segment granularity (only dirty id-ranges re-index).
  int store_segments = 1;
  /// When non-empty, LoadWeights() prefers reopening the persisted stores
  /// under this directory (mmap-backed; written by SaveStores()) over
  /// re-encoding the corpus. Missing or corrupt store files log a warning
  /// and fall back to the in-memory rebuild.
  std::string store_dir;

  // -- Serving precision (see DESIGN.md "Precision-tiered serving") -------
  /// Serving precision policy for the compiled-plan tier: "fp32" (the
  /// reference — bit-identical to the graph walk), "int8" (every encoder
  /// weight GEMM and the base classifier head run the quantized kernel),
  /// or "mixed" (per-layer: calibration against a held-out slice keeps a
  /// layer int8 only while its base-head predictions agree with fp32).
  /// `EXPLAINTI_PRECISION` overrides this at session construction. The
  /// policy never affects training (Fit always runs fp32) and is ignored
  /// when plans are off or in verify mode.
  std::string precision = "fp32";
  /// Mixed mode: minimum prediction-agreement fraction with the fp32
  /// baseline on the calibration slice for a layer (or the head) to stay
  /// int8; below it the layer takes the fp32 fallback bit.
  float precision_min_agreement = 0.98f;
  /// Mixed mode: calibration slice size per task, drawn from the task's
  /// validation split (falls back to the sample prefix when empty).
  int precision_calibration_samples = 32;

  // -- Robustness (see DESIGN.md "Failure model & recovery") --------------
  /// Consecutive non-finite (skipped) optimiser steps tolerated before
  /// Fit() rolls the parameters back to the last-known-good snapshot and
  /// resets the optimiser moments.
  int max_bad_steps = 3;
  /// When non-empty, Fit() writes a CRC32-protected checkpoint here every
  /// `checkpoint_every_epochs` epochs and, when `resume_from_checkpoint`,
  /// resumes from it (skipping pre-training). A corrupted or truncated
  /// checkpoint is rejected and training restarts from scratch.
  std::string checkpoint_path;
  int checkpoint_every_epochs = 1;
  bool resume_from_checkpoint = true;

  /// Whether the task's type labels are multi-label (sigmoid+BCE) or
  /// multi-class (softmax+CE); copied from the corpus at Fit time.
};

}  // namespace explainti::core

#endif  // EXPLAINTI_CORE_CONFIG_H_
