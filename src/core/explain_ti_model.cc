#include "core/explain_ti_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <unordered_map>

#include "core/checkpoint.h"
#include "core/inference_session.h"
#include "nn/pretrain.h"
#include "tensor/optimizer.h"
#include "tensor/tensor_ops.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace explainti::core {

namespace {

/// Multi-hot target vector for a label set.
std::vector<float> MultiHot(const std::vector<int>& labels, int num_labels) {
  std::vector<float> y(static_cast<size_t>(num_labels), 0.0f);
  for (int label : labels) y[static_cast<size_t>(label)] = 1.0f;
  return y;
}

/// Normalises a non-negative vector to sum 1 (for KL on sigmoid outputs).
std::vector<float> NormalizeToDistribution(std::vector<float> v) {
  float total = 0.0f;
  for (float x : v) total += x;
  if (total <= 0.0f) {
    const float u = 1.0f / static_cast<float>(v.size());
    for (float& x : v) x = u;
    return v;
  }
  for (float& x : v) x /= total;
  return v;
}

/// Window text: tokens joined, merging "##" continuations, specials kept
/// out.
std::string WindowText(const std::vector<std::string>& tokens, int start,
                       int end) {
  std::vector<std::string> words;
  for (int i = start; i < end && i < static_cast<int>(tokens.size()); ++i) {
    const std::string& token = tokens[static_cast<size_t>(i)];
    if (!token.empty() && token[0] == '[') continue;
    if (util::StartsWith(token, "##") && !words.empty()) {
      words.back() += token.substr(2);
    } else {
      words.push_back(token);
    }
  }
  return util::Join(words, " ");
}

}  // namespace

namespace {

EmbeddingStore::Options StoreOptionsFor(const ExplainTiConfig& config) {
  EmbeddingStore::Options options;
  options.num_segments = std::max(1, config.store_segments);
  return options;
}

}  // namespace

ExplainTiModel::ExplainTiModel(const ExplainTiConfig& config,
                               const data::TableCorpus& corpus)
    : config_(config),
      type_store_(StoreOptionsFor(config)),
      relation_store_(StoreOptionsFor(config)) {
  // -- Vocabulary from the training tables only (no test leakage). -------
  std::unordered_map<std::string, int64_t> counts;
  auto count_text = [&counts](const std::string& text) {
    for (const std::string& token : text::BasicTokenize(text)) {
      ++counts[token];
    }
  };
  for (const char* marker : {"title", "header", "cell"}) {
    counts[marker] += 1000;  // Serialisation markers are always present.
  }
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    if (corpus.table_split[t] != data::SplitPart::kTrain) continue;
    const data::Table& table = corpus.tables[t];
    count_text(table.title);
    for (const data::Column& column : table.columns) {
      count_text(column.header);
      for (const std::string& cell : column.cells) count_text(cell);
    }
  }
  vocab_ = std::make_shared<text::Vocab>(
      text::BuildVocab(counts, /*max_size=*/4000, /*min_count=*/2));
  tokenizer_ = text::MakeTokenizer(config.base_model, vocab_);
  serializer_ = std::make_unique<text::SequenceSerializer>(
      tokenizer_.get(), config.max_seq_len, config.dedup_cells);

  // -- Encoder ------------------------------------------------------------
  nn::TransformerConfig encoder_config = nn::TransformerConfig::ForBaseModel(
      config.base_model, vocab_->size());
  encoder_config.max_len = config.max_seq_len;
  util::Rng init_rng(config.seed);
  encoder_ =
      std::make_unique<nn::TransformerEncoder>(encoder_config, init_rng);
  const int64_t d = encoder_config.d_model;

  // -- Tasks + heads ----------------------------------------------------------
  type_task_ = BuildTypeTaskData(corpus, *serializer_);
  const int64_t c_type = type_task_->num_labels;
  type_heads_.base = std::make_unique<nn::ClassifierHead>(d, c_type, init_rng);
  type_heads_.structural =
      std::make_unique<nn::ClassifierHead>(2 * d, c_type, init_rng);
  type_heads_.local = std::make_unique<nn::ClassifierHead>(d, c_type, init_rng);
  type_heads_.global =
      std::make_unique<nn::ClassifierHead>(d, c_type, init_rng);

  if (!corpus.relation_samples.empty()) {
    relation_task_ = BuildRelationTaskData(corpus, *serializer_);
    const int64_t c_rel = relation_task_->num_labels;
    relation_heads_.base =
        std::make_unique<nn::ClassifierHead>(d, c_rel, init_rng);
    relation_heads_.structural =
        std::make_unique<nn::ClassifierHead>(2 * d, c_rel, init_rng);
    relation_heads_.local =
        std::make_unique<nn::ClassifierHead>(d, c_rel, init_rng);
    relation_heads_.global =
        std::make_unique<nn::ClassifierHead>(d, c_rel, init_rng);
  }

  // -- Serving facade -----------------------------------------------------
  session_ = std::make_unique<InferenceSession>(*this);
}

ExplainTiModel::~ExplainTiModel() = default;

bool ExplainTiModel::HasTask(TaskKind kind) const {
  return kind == TaskKind::kType ? type_task_.has_value()
                                 : relation_task_.has_value();
}

const TaskData& ExplainTiModel::Task(TaskKind kind) const {
  CHECK(HasTask(kind)) << "task not available on this corpus";
  return kind == TaskKind::kType ? *type_task_ : *relation_task_;
}

const TaskData& ExplainTiModel::task_data(TaskKind kind) const {
  return Task(kind);
}

ExplainTiModel::TaskHeads& ExplainTiModel::Heads(TaskKind kind) {
  return kind == TaskKind::kType ? type_heads_ : relation_heads_;
}

const ExplainTiModel::TaskHeads& ExplainTiModel::Heads(TaskKind kind) const {
  return kind == TaskKind::kType ? type_heads_ : relation_heads_;
}

EmbeddingStore& ExplainTiModel::Store(TaskKind kind) {
  return kind == TaskKind::kType ? type_store_ : relation_store_;
}

const EmbeddingStore& ExplainTiModel::Store(TaskKind kind) const {
  return kind == TaskKind::kType ? type_store_ : relation_store_;
}

std::vector<tensor::Tensor> ExplainTiModel::AllParameters() const {
  std::vector<tensor::Tensor> params = encoder_->Parameters();
  auto append = [&params](const nn::Module* module) {
    if (module == nullptr) return;
    const auto p = module->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  };
  for (const TaskHeads* heads : {&type_heads_, &relation_heads_}) {
    append(heads->base.get());
    append(heads->structural.get());
    append(heads->local.get());
    append(heads->global.get());
  }
  return params;
}

// ---------------------------------------------------------------------------
// Forward
// ---------------------------------------------------------------------------

ExplainTiModel::Forward ExplainTiModel::RunForward(
    TaskKind kind, int sample_id, const nn::ExecContext& ctx, bool with_local,
    bool with_global, const tensor::Tensor* precomputed_embeddings) const {
  CHECK(ctx.rng != nullptr) << "RunForward requires an RNG (dropout and SE "
                               "neighbour sampling draw from it)";
  util::Rng& rng = *ctx.rng;
  const TaskData& task = Task(kind);
  CHECK(sample_id >= 0 &&
        sample_id < static_cast<int>(task.samples.size()));
  const TaskSample& sample = task.samples[static_cast<size_t>(sample_id)];
  const TaskHeads& heads = Heads(kind);
  // Pin ONE store generation for the whole forward pass: a concurrent
  // RefreshStores/RebuildStore publishes a new snapshot without touching
  // this view, so SE/GE evidence within one response is never mixed
  // across store generations.
  const EmbeddingStore::View store = Store(kind).view();

  Forward fwd;
  // The compiled-plan path hands the encoder output in precomputed form
  // (bit-identical to the encoder call by the plan contract); everything
  // downstream is shared between the two paths.
  fwd.embeddings =
      precomputed_embeddings != nullptr
          ? *precomputed_embeddings
          : encoder_->Forward(sample.seq.ids, sample.seq.segments, ctx);
  fwd.cls = tensor::Row(fwd.embeddings, 0);
  const int len = static_cast<int>(sample.seq.ids.size());

  // -- Structural Explanations (Algorithm 4) -----------------------------
  const bool se_ready = config_.use_structural && store.size() > 0;
  if (se_ready) {
    // Sample 2-hop neighbours, keeping only training samples (their
    // embeddings live in the store Q).
    std::vector<graph::SampledNeighbor> raw = task.graph.SampleNeighbors(
        sample_id, 4 * config_.sample_size, rng);
    std::vector<graph::SampledNeighbor> usable;
    for (const graph::SampledNeighbor& n : raw) {
      if (n.via != graph::BridgeKind::kSelf && store.Contains(n.sample_id)) {
        usable.push_back(n);
        if (static_cast<int>(usable.size()) == config_.sample_size) break;
      }
    }
    // With-replacement padding when fewer distinct neighbours exist.
    if (!usable.empty()) {
      size_t i = 0;
      while (static_cast<int>(usable.size()) < config_.sample_size) {
        usable.push_back(usable[i++ % usable.size()]);
      }
    }

    if (usable.empty()) {
      // Degenerate: no in-store neighbours; fall back to the sample's own
      // embedding so E_s carries no extra information.
      tensor::Tensor self = fwd.cls.Detach();
      tensor::Tensor concat = tensor::Concat(self, fwd.cls);
      fwd.final_logits = heads.structural->Forward(concat);
      StructuralExplanation self_exp;
      self_exp.neighbor_sample_id = sample_id;
      self_exp.attention = 1.0f;
      self_exp.via = graph::BridgeKind::kSelf;
      fwd.neighbors.push_back(std::move(self_exp));
    } else {
      const int r = static_cast<int>(usable.size());
      const int64_t d = fwd.cls.size();
      std::vector<float> nbr_data(static_cast<size_t>(r) * d);
      for (int j = 0; j < r; ++j) {
        const EmbeddingStore::EmbeddingRef e =
            store.Embedding(usable[j].sample_id);
        std::copy(e.begin(), e.end(),
                  nbr_data.begin() + static_cast<int64_t>(j) * d);
      }
      tensor::Tensor neighbors = tensor::Tensor::FromVector({r, d}, nbr_data);
      // AS = softmax(E_n . E_cls) (Eq. 5); E_s = sum AS_n E_n (Eq. 6).
      tensor::Tensor scores = tensor::MatMul(neighbors, fwd.cls);
      tensor::Tensor attention = tensor::Softmax(scores);
      tensor::Tensor contextual = tensor::MatMul(attention, neighbors);
      tensor::Tensor concat = tensor::Concat(contextual, fwd.cls);
      fwd.final_logits = heads.structural->Forward(concat);

      // Merge repeated neighbours for the explanation record.
      std::unordered_map<int, size_t> merged;
      for (int j = 0; j < r; ++j) {
        const float as = attention.at(j);
        auto it = merged.find(usable[static_cast<size_t>(j)].sample_id);
        if (it != merged.end()) {
          fwd.neighbors[it->second].attention += as;
          continue;
        }
        StructuralExplanation exp;
        exp.neighbor_sample_id = usable[static_cast<size_t>(j)].sample_id;
        exp.attention = as;
        exp.via = usable[static_cast<size_t>(j)].via;
        exp.text = task.SampleText(exp.neighbor_sample_id);
        exp.labels =
            task.samples[static_cast<size_t>(exp.neighbor_sample_id)].labels;
        merged.emplace(exp.neighbor_sample_id, fwd.neighbors.size());
        fwd.neighbors.push_back(std::move(exp));
      }
      std::sort(fwd.neighbors.begin(), fwd.neighbors.end(),
                [](const StructuralExplanation& a,
                   const StructuralExplanation& b) {
                  return a.attention > b.attention;
                });
    }
  } else {
    fwd.final_logits = heads.base->Forward(fwd.cls);
  }

  // -- Global Explanations (Algorithm 2) ----------------------------------
  if (with_global && store.size() > 0) {
    // A training sample would otherwise retrieve itself — vacuous as an
    // explanation and label leakage as a training signal.
    const int exclude = task.IsTrainSample(sample_id) ? sample_id : -1;
    bool used_fallback = false;
    const std::vector<ann::SearchResult> hits = store.Search(
        fwd.cls.ToVector(), config_.top_k, exclude, &used_fallback);
    fwd.ann_fallback = used_fallback;
    if (!hits.empty()) {
      const int k = static_cast<int>(hits.size());
      const int64_t d = fwd.cls.size();
      // Raw and row-normalised copies of the retrieved embeddings.
      std::vector<float> raw(static_cast<size_t>(k) * d);
      std::vector<float> normalized(static_cast<size_t>(k) * d);
      for (int j = 0; j < k; ++j) {
        const EmbeddingStore::EmbeddingRef e =
            store.Embedding(static_cast<int>(hits[static_cast<size_t>(j)].id));
        double norm_sq = 0.0;
        for (float v : e) norm_sq += static_cast<double>(v) * v;
        const float inv =
            norm_sq > 1e-24 ? static_cast<float>(1.0 / std::sqrt(norm_sq))
                            : 0.0f;
        for (int64_t i = 0; i < d; ++i) {
          raw[static_cast<int64_t>(j) * d + i] = e[static_cast<size_t>(i)];
          normalized[static_cast<int64_t>(j) * d + i] =
              e[static_cast<size_t>(i)] * inv;
        }
      }
      tensor::Tensor q_raw = tensor::Tensor::FromVector({k, d}, raw);
      tensor::Tensor q_norm = tensor::Tensor::FromVector({k, d}, normalized);
      // IS = softmax(cos(E_cls, q)) (Eq. 4), differentiable through E_cls.
      tensor::Tensor cls_norm = tensor::L2Normalize(fwd.cls);
      tensor::Tensor cos_scores = tensor::MatMul(q_norm, cls_norm);
      tensor::Tensor influence = tensor::Softmax(cos_scores);
      tensor::Tensor global_embedding = tensor::MatMul(influence, q_raw);
      fwd.global_logits = heads.global->Forward(global_embedding);

      for (int j = 0; j < k; ++j) {
        GlobalExplanation exp;
        exp.train_sample_id = static_cast<int>(hits[static_cast<size_t>(j)].id);
        exp.influence = influence.at(j);
        exp.text = task.SampleText(exp.train_sample_id);
        exp.labels =
            task.samples[static_cast<size_t>(exp.train_sample_id)].labels;
        fwd.retrieved.push_back(std::move(exp));
      }
      std::sort(fwd.retrieved.begin(), fwd.retrieved.end(),
                [](const GlobalExplanation& a, const GlobalExplanation& b) {
                  return a.influence > b.influence;
                });
    }
  }

  // -- Local Explanations (Algorithm 1) ------------------------------------
  if (with_local) {
    const int k = config_.window_size;
    // Reference distribution: the model's own prediction.
    std::vector<float> ref =
        task.multi_label
            ? NormalizeToDistribution(
                  tensor::SigmoidValues(fwd.final_logits.ToVector()))
            : tensor::SoftmaxValues(fwd.final_logits.ToVector());

    struct WindowSpan {
      int start1, end1;
      int start2 = -1, end2 = -1;
    };
    std::vector<WindowSpan> spans;
    if (kind == TaskKind::kType) {
      const int content_begin = 1;           // Skip [CLS].
      const int content_end = len - 1;       // Skip trailing [SEP].
      if (content_end - content_begin <= k) {
        spans.push_back(WindowSpan{content_begin, content_end});
      } else {
        for (int j = content_begin; j + k <= content_end; ++j) {
          spans.push_back(WindowSpan{j, j + k});
        }
      }
    } else {
      const int sep = sample.seq.sep_pos;
      const int left_begin = 1;
      const int left_end = sep;
      const int right_begin = sep + 1;
      const int right_end = len - 1;
      auto window_starts = [k](int begin, int end) {
        std::vector<std::pair<int, int>> ws;
        if (end - begin <= k) {
          if (end > begin) ws.emplace_back(begin, end);
        } else {
          for (int j = begin; j + k <= end; ++j) ws.emplace_back(j, j + k);
        }
        return ws;
      };
      for (const auto& [s1, e1] : window_starts(left_begin, left_end)) {
        for (const auto& [s2, e2] : window_starts(right_begin, right_end)) {
          spans.push_back(WindowSpan{s1, e1, s2, e2});
        }
      }
    }

    if (!spans.empty()) {
      std::vector<tensor::Tensor> s_probs;
      std::vector<float> kls;
      s_probs.reserve(spans.size());
      kls.reserve(spans.size());
      for (const WindowSpan& span : spans) {
        tensor::Tensor pooled = tensor::MeanRows(
            tensor::SliceRows(fwd.embeddings, span.start1, span.end1));
        if (span.start2 >= 0) {
          tensor::Tensor pooled2 = tensor::MeanRows(
              tensor::SliceRows(fwd.embeddings, span.start2, span.end2));
          pooled = tensor::Scale(tensor::Add(pooled, pooled2), 0.5f);
        }
        // t_j is "the representation of the input without the concept's
        // contribution" (Algorithm 1): occluding the window from the
        // sample representation, so that a high KL shift marks an
        // important window.
        tensor::Tensor t_j = tensor::Sub(fwd.cls, pooled);
        tensor::Tensor logits_j = heads.local->Forward(t_j);
        tensor::Tensor s_j = task.multi_label ? tensor::SigmoidOp(logits_j)
                                              : tensor::Softmax(logits_j);
        // KL(s_j, logits) on detached values (Eq. 3).
        std::vector<float> s_dist = s_j.ToVector();
        if (task.multi_label) s_dist = NormalizeToDistribution(s_dist);
        kls.push_back(tensor::KlDivergence(s_dist, ref));
        s_probs.push_back(std::move(s_j));
      }
      float total_kl = 0.0f;
      for (float v : kls) total_kl += v;
      if (total_kl <= 0.0f) total_kl = 1.0f;

      tensor::Tensor l_local;
      for (size_t j = 0; j < spans.size(); ++j) {
        const float rs = kls[j] / total_kl;
        tensor::Tensor weighted = tensor::Scale(s_probs[j], rs);
        l_local = l_local.defined() ? tensor::Add(l_local, weighted)
                                    : weighted;
        LocalExplanation exp;
        exp.window_start = spans[j].start1;
        exp.window_end = spans[j].end1;
        exp.window_start2 = spans[j].start2;
        exp.window_end2 = spans[j].end2;
        exp.relevance = rs;
        fwd.windows.push_back(std::move(exp));
      }
      fwd.local_probs = l_local;
      std::sort(fwd.windows.begin(), fwd.windows.end(),
                [](const LocalExplanation& a, const LocalExplanation& b) {
                  return a.relevance > b.relevance;
                });
      for (LocalExplanation& exp : fwd.windows) {
        exp.text = WindowText(sample.seq.tokens, exp.window_start,
                              exp.window_end);
        if (exp.window_start2 >= 0) {
          const std::string right = WindowText(
              sample.seq.tokens, exp.window_start2, exp.window_end2);
          if (!right.empty()) exp.text += " | " + right;
        }
      }
    }
  }

  return fwd;
}

// ---------------------------------------------------------------------------
// Loss (Eq. 11)
// ---------------------------------------------------------------------------

tensor::Tensor ExplainTiModel::ComputeLoss(TaskKind kind,
                                           const TaskSample& sample,
                                           const Forward& forward) const {
  const TaskData& task = Task(kind);
  tensor::Tensor loss;
  if (task.multi_label) {
    const std::vector<float> y = MultiHot(sample.labels, task.num_labels);
    loss = tensor::BceWithLogitsLoss(forward.final_logits, y);
    if (forward.local_probs.defined()) {
      loss = tensor::Add(
          loss, tensor::Scale(tensor::BceFromProbs(forward.local_probs, y),
                              config_.alpha));
    }
    if (forward.global_logits.defined()) {
      loss = tensor::Add(
          loss,
          tensor::Scale(tensor::BceWithLogitsLoss(forward.global_logits, y),
                        config_.beta));
    }
  } else {
    const int y0 = sample.labels[0];
    loss = tensor::CrossEntropyLoss(forward.final_logits, y0);
    if (forward.local_probs.defined()) {
      loss = tensor::Add(
          loss, tensor::Scale(tensor::NllFromProbs(forward.local_probs, y0),
                              config_.alpha));
    }
    if (forward.global_logits.defined()) {
      loss = tensor::Add(
          loss,
          tensor::Scale(tensor::CrossEntropyLoss(forward.global_logits, y0),
                        config_.beta));
    }
  }
  return loss;
}

// ---------------------------------------------------------------------------
// Embedding store maintenance
// ---------------------------------------------------------------------------

void ExplainTiModel::RebuildStore(TaskKind kind) {
  const TaskData& task = Task(kind);
  std::vector<int> ids(task.train_ids.begin(), task.train_ids.end());
  // No-grad encoding is bit-identical to the eval tape, so the store
  // contents match what the serial tape loop would have produced.
  Store(kind).Rebuild(ids, session_->EncodeBatch(kind, ids));
}

void ExplainTiModel::RefreshStores() {
  if (!config_.use_global && !config_.use_structural) return;
  RebuildStore(TaskKind::kType);
  if (relation_task_.has_value()) RebuildStore(TaskKind::kRelation);
}

util::Status ExplainTiModel::SaveStores(const std::string& dir) const {
  if (util::Status s = type_store_.Save(dir + "/type"); !s.ok()) return s;
  if (relation_task_.has_value()) {
    return relation_store_.Save(dir + "/relation");
  }
  return util::Status::OK();
}

util::Status ExplainTiModel::LoadStores(const std::string& dir) {
  const int64_t d = encoder_->config().d_model;
  const auto load_one = [&](TaskKind kind, EmbeddingStore& store,
                            const std::string& sub) -> util::Status {
    if (util::Status s = store.Load(dir + "/" + sub); !s.ok()) return s;
    const EmbeddingStore::View view = store.view();
    if (view.dim() != d) {
      return util::Status::InvalidArgument(
          "persisted " + sub + " store dim " + std::to_string(view.dim()) +
          " != model d_model " + std::to_string(d));
    }
    const int64_t num_samples =
        static_cast<int64_t>(Task(kind).samples.size());
    if (view.max_id() >= num_samples) {
      return util::Status::InvalidArgument(
          "persisted " + sub + " store id " + std::to_string(view.max_id()) +
          " beyond this corpus (" + std::to_string(num_samples) +
          " samples)");
    }
    return util::Status::OK();
  };
  if (util::Status s = load_one(TaskKind::kType, type_store_, "type");
      !s.ok()) {
    return s;
  }
  if (relation_task_.has_value()) {
    return load_one(TaskKind::kRelation, relation_store_, "relation");
  }
  return util::Status::OK();
}

void ExplainTiModel::RestoreStores() {
  if (!config_.use_global && !config_.use_structural) return;
  if (!config_.store_dir.empty()) {
    if (util::Status s = LoadStores(config_.store_dir); s.ok()) {
      LOG(INFO) << "embedding stores reopened from " << config_.store_dir;
      return;
    } else {
      LOG(WARNING) << "persisted embedding stores unusable ("
                   << s.ToString() << "); re-encoding the corpus in memory";
    }
  }
  RefreshStores();
}

// ---------------------------------------------------------------------------
// Fit (Algorithm 5)
// ---------------------------------------------------------------------------

FitStats ExplainTiModel::Fit() {
  FitStats stats;
  util::WallTimer timer;

  // Training always serves fp32: mid-train evaluation, store rebuilds and
  // model selection must see the bit-exact reference path, not a
  // quantization of stale weights. The tier re-arms from the final
  // weights below.
  session_->SuspendQuantizedTier();

  std::vector<TaskKind> tasks = {TaskKind::kType};
  if (relation_task_.has_value()) tasks.push_back(TaskKind::kRelation);

  std::vector<tensor::Tensor> params = AllParameters();
  auto snapshot = [&params]() {
    std::vector<std::vector<float>> snap;
    snap.reserve(params.size());
    for (const tensor::Tensor& p : params) snap.push_back(p.ToVector());
    return snap;
  };
  auto restore = [&params](const std::vector<std::vector<float>>& snap) {
    for (size_t i = 0; i < params.size(); ++i) {
      std::copy(snap[i].begin(), snap[i].end(), params[i].data());
    }
  };
  auto params_finite = [&params]() {
    for (const tensor::Tensor& p : params) {
      const float* w = p.data();
      for (int64_t i = 0; i < p.size(); ++i) {
        if (!std::isfinite(w[i])) return false;
      }
    }
    return true;
  };
  auto shapes_match = [&params](const std::vector<std::vector<float>>& snap) {
    if (snap.size() != params.size()) return false;
    for (size_t i = 0; i < params.size(); ++i) {
      if (static_cast<int64_t>(snap[i].size()) != params[i].size()) {
        return false;
      }
    }
    return true;
  };

  // -- Step 0: attempt checkpoint resume. ---------------------------------
  // A loadable checkpoint already contains pre-trained + partially
  // fine-tuned weights, so a successful resume skips Step 1 entirely. A
  // missing checkpoint is normal; a corrupted one is logged and ignored —
  // training restarts from scratch rather than crashing or loading garbage
  // (the CRC32 footer catches torn/corrupted files before any field is
  // trusted).
  Checkpoint resume;
  int start_epoch = 0;
  std::vector<std::vector<float>> best_params;
  if (!config_.checkpoint_path.empty() && config_.resume_from_checkpoint) {
    util::StatusOr<Checkpoint> loaded =
        LoadCheckpoint(config_.checkpoint_path);
    if (loaded.ok() && shapes_match(loaded->params)) {
      resume = std::move(loaded).value();
      restore(resume.params);
      start_epoch = resume.next_epoch;
      stats.best_valid_f1 = resume.best_valid_f1;
      stats.best_epoch = resume.best_epoch;
      best_params = std::move(resume.best_params);
      stats.resumed = true;
      LOG(INFO) << "resumed from " << config_.checkpoint_path
                << " at epoch " << start_epoch;
    } else if (loaded.ok()) {
      LOG(WARNING) << "checkpoint " << config_.checkpoint_path
                   << " has mismatched shapes; training from scratch";
    } else if (loaded.status().code() != util::StatusCode::kNotFound) {
      LOG(WARNING) << "checkpoint unusable, training from scratch: "
                   << loaded.status().ToString();
    }
  }

  // -- Step 1: MLM pre-training over all training sequences. --------------
  if (!stats.resumed) {
    std::vector<std::vector<int>> id_seqs;
    std::vector<std::vector<int>> segment_seqs;
    for (TaskKind kind : tasks) {
      const TaskData& task = Task(kind);
      for (int id : task.train_ids) {
        id_seqs.push_back(task.samples[static_cast<size_t>(id)].seq.ids);
        segment_seqs.push_back(
            task.samples[static_cast<size_t>(id)].seq.segments);
      }
    }
    nn::MlmPretrainOptions options;
    options.epochs = config_.pretrain_epochs;
    options.learning_rate = config_.pretrain_learning_rate;
    options.dynamic_masking = config_.base_model == "roberta";
    options.seed = config_.seed + 1;
    timer.Restart();
    nn::PretrainMlm(encoder_.get(), id_seqs, segment_seqs, options);
    stats.pretrain_seconds = timer.ElapsedSeconds();
  }

  // -- Step 2: initialise the embedding stores Q. --------------------------
  const bool needs_store = config_.use_global || config_.use_structural;
  if (needs_store) {
    timer.Restart();
    for (TaskKind kind : tasks) RebuildStore(kind);
    stats.store_build_seconds = timer.ElapsedSeconds();
  }

  // -- Step 3: multi-task fine-tuning. ---------------------------------------
  tensor::AdamWOptions adam_options;
  adam_options.learning_rate = config_.learning_rate;
  tensor::AdamW optimizer(params, adam_options);
  if (stats.resumed && !resume.opt_m.empty()) {
    const util::Status st =
        optimizer.SetState(std::move(resume.opt_m), std::move(resume.opt_v),
                           resume.opt_step_count);
    if (!st.ok()) {
      LOG(WARNING) << "optimizer state not restored: " << st.ToString();
    }
  }

  int64_t steps_per_epoch = 0;
  for (TaskKind kind : tasks) {
    const int64_t n = static_cast<int64_t>(Task(kind).train_ids.size());
    steps_per_epoch += (n + config_.batch_size - 1) / config_.batch_size;
  }
  const int64_t total_steps = steps_per_epoch * config_.epochs;
  tensor::LinearSchedule schedule(config_.learning_rate, total_steps,
                                  /*warmup_steps=*/total_steps / 10);

  util::Rng train_rng(config_.seed + 2);
  util::Rng order_rng(config_.seed + 3);
  int64_t step = stats.resumed ? resume.schedule_step : 0;

  // Clip/skip/rollback state: the last-known-good parameter snapshot is
  // refreshed at every epoch whose weights are finite; `max_bad_steps`
  // consecutive non-finite steps restore it and reset the optimiser
  // moments (stale moments would re-apply the diverging direction).
  std::vector<std::vector<float>> good_params = snapshot();
  int consecutive_bad = 0;
  const int max_bad = std::max(config_.max_bad_steps, 1);

  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    for (TaskKind kind : tasks) {
      const TaskData& task = Task(kind);
      std::vector<int> order = task.train_ids;
      order_rng.Shuffle(order);

      util::WallTimer task_timer;
      optimizer.ZeroGrad();
      int in_batch = 0;
      for (size_t i = 0; i < order.size(); ++i) {
        const int id = order[i];
        Forward fwd = RunForward(kind, id, nn::ExecContext::Train(train_rng));
        tensor::Tensor loss = ComputeLoss(
            kind, task.samples[static_cast<size_t>(id)], fwd);
        loss = tensor::Scale(loss,
                             1.0f / static_cast<float>(config_.batch_size));
        // A non-finite per-sample loss would poison the whole accumulated
        // batch; drop the sample and keep the batch alive.
        if (std::isfinite(loss.item())) {
          loss.Backward();
        } else {
          LOG(WARNING) << "non-finite loss on sample " << id
                       << "; excluded from this batch";
        }
        ++in_batch;
        if (in_batch == config_.batch_size || i + 1 == order.size()) {
          // Fault site "optimizer.step": poisons the accumulated
          // gradients with NaN to exercise the skip/rollback path.
          if (util::fault::ShouldInject("optimizer.step",
                                        util::fault::FaultKind::kNan)) {
            const float nan = std::numeric_limits<float>::quiet_NaN();
            for (tensor::Tensor& p : params) {
              if (!p.has_grad()) continue;
              float* g = p.grad();
              for (int64_t j = 0; j < p.size(); ++j) g[j] = nan;
            }
          }
          const bool applied =
              optimizer.Step(schedule.LearningRate(step++));
          optimizer.ZeroGrad();
          in_batch = 0;
          if (applied) {
            consecutive_bad = 0;
          } else {
            ++stats.skipped_steps;
            if (++consecutive_bad >= max_bad) {
              LOG(WARNING)
                  << consecutive_bad << " consecutive bad steps; rolling "
                  << "back to last-known-good parameters";
              restore(good_params);
              optimizer.ResetState();
              consecutive_bad = 0;
              ++stats.rollbacks;
            }
          }
        }
      }
      const double seconds = task_timer.ElapsedSeconds();
      if (kind == TaskKind::kType) {
        stats.type_train_seconds += seconds;
      } else {
        stats.relation_train_seconds += seconds;
      }
    }

    // End of epoch: refresh the last-known-good snapshot, but only from
    // finite weights — a divergence that slipped past the per-step gate
    // must not become the rollback target.
    if (params_finite()) {
      good_params = snapshot();
    } else {
      LOG(WARNING) << "non-finite weights at end of epoch " << epoch
                   << "; rolling back";
      restore(good_params);
      optimizer.ResetState();
      ++stats.rollbacks;
    }

    // Periodic store refresh (paper: every 5 epochs).
    if (needs_store && (epoch + 1) % config_.q_refresh_epochs == 0 &&
        epoch + 1 < config_.epochs) {
      util::WallTimer store_timer;
      for (TaskKind kind : tasks) RebuildStore(kind);
      stats.store_build_seconds += store_timer.ElapsedSeconds();
    }

    // Model selection on validation F1-weighted (averaged over tasks).
    float valid_f1 = 0.0f;
    for (TaskKind kind : tasks) {
      valid_f1 += static_cast<float>(
          Evaluate(kind, data::SplitPart::kValid).weighted);
    }
    valid_f1 /= static_cast<float>(tasks.size());
    if (std::isfinite(valid_f1) && valid_f1 > stats.best_valid_f1) {
      stats.best_valid_f1 = valid_f1;
      stats.best_epoch = epoch;
      best_params = snapshot();
    }

    // Periodic checkpoint; a failed save degrades to "no checkpoint this
    // epoch" — training never aborts over checkpoint I/O.
    if (!config_.checkpoint_path.empty() &&
        (epoch + 1) % std::max(config_.checkpoint_every_epochs, 1) == 0) {
      Checkpoint ckpt;
      ckpt.next_epoch = epoch + 1;
      ckpt.schedule_step = step;
      ckpt.best_valid_f1 = stats.best_valid_f1;
      ckpt.best_epoch = stats.best_epoch;
      ckpt.params = snapshot();
      ckpt.best_params = best_params;
      ckpt.opt_step_count = optimizer.step_count();
      ckpt.opt_m = optimizer.first_moments();
      ckpt.opt_v = optimizer.second_moments();
      const util::Status saved =
          SaveCheckpoint(config_.checkpoint_path, ckpt);
      if (!saved.ok()) {
        LOG(WARNING) << "checkpoint save failed (training continues): "
                     << saved.ToString();
      }
    }
  }

  if (!best_params.empty()) {
    restore(best_params);
    if (needs_store) {
      for (TaskKind kind : tasks) RebuildStore(kind);
    }
  }
  // Re-arm the precision policy from the final weights (quantize-once;
  // no-op under the fp32 policy).
  session_->ReloadWeights();
  return stats;
}

// ---------------------------------------------------------------------------
// Inference
// ---------------------------------------------------------------------------

std::vector<int> ExplainTiModel::DecodeLabels(
    TaskKind kind, const std::vector<float>& logits) const {
  const TaskData& task = Task(kind);
  std::vector<int> labels;
  if (task.multi_label) {
    const std::vector<float> probs = tensor::SigmoidValues(logits);
    for (size_t i = 0; i < probs.size(); ++i) {
      if (probs[i] >= 0.5f) labels.push_back(static_cast<int>(i));
    }
    if (labels.empty()) {
      labels.push_back(static_cast<int>(
          std::max_element(probs.begin(), probs.end()) - probs.begin()));
    }
  } else {
    labels.push_back(static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin()));
  }
  return labels;
}

std::vector<int> ExplainTiModel::Predict(TaskKind kind, int sample_id) const {
  // Fast path: LE/GE do not change the final logits; skip them via the
  // explicit-flags forward (no shared-state mutation, so concurrent
  // Predict calls from Evaluate's parallel loop are safe). This is the
  // tape-building reference path the golden tests compare the no-grad
  // InferenceSession against.
  util::Rng rng(InferenceSeed(sample_id));
  Forward fwd = RunForward(kind, sample_id, nn::ExecContext::Eval(&rng),
                           /*with_local=*/false, /*with_global=*/false);
  return DecodeLabels(kind, fwd.final_logits.ToVector());
}

std::vector<float> ExplainTiModel::PredictProbabilities(TaskKind kind,
                                                        int sample_id) const {
  util::Rng rng(InferenceSeed(sample_id));
  Forward fwd = RunForward(kind, sample_id, nn::ExecContext::Eval(&rng),
                           /*with_local=*/false, /*with_global=*/false);
  const TaskData& task = Task(kind);
  return task.multi_label
             ? tensor::SigmoidValues(fwd.final_logits.ToVector())
             : tensor::SoftmaxValues(fwd.final_logits.ToVector());
}

Explanation ExplainTiModel::Explain(TaskKind kind, int sample_id) const {
  util::Rng rng(InferenceSeed(sample_id));
  Forward fwd = RunForward(kind, sample_id, nn::ExecContext::Eval(&rng));
  return MakeExplanation(kind, std::move(fwd));
}

Explanation ExplainTiModel::MakeExplanation(TaskKind kind, Forward fwd) const {
  Explanation z;
  z.predicted_labels = DecodeLabels(kind, fwd.final_logits.ToVector());
  const TaskData& task = Task(kind);
  z.probabilities = task.multi_label
                        ? tensor::SigmoidValues(fwd.final_logits.ToVector())
                        : tensor::SoftmaxValues(fwd.final_logits.ToVector());
  z.local = std::move(fwd.windows);
  z.global = std::move(fwd.retrieved);
  z.structural = std::move(fwd.neighbors);
  if (fwd.ann_fallback) {
    z.ann_degraded = true;
    z.degradation_note =
        "global retrieval degraded: HNSW index unavailable or failed; "
        "served exactly by the flat index";
  } else if (config_.use_global && Store(kind).size() == 0) {
    z.degradation_note =
        "embedding store empty: global explanations unavailable";
  }
  return z;
}

namespace {
constexpr char kWeightsMagic[] = "XTIW0001";
}  // namespace

util::Status ExplainTiModel::SaveWeights(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open " + path);
  out.write(kWeightsMagic, 8);
  const std::vector<tensor::Tensor> params = AllParameters();
  const int64_t count = static_cast<int64_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const tensor::Tensor& p : params) {
    const int64_t size = p.size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(p.data()),
              static_cast<std::streamsize>(size * sizeof(float)));
  }
  if (!out) return util::Status::IoError("write failed for " + path);
  return util::Status::OK();
}

util::Status ExplainTiModel::LoadWeights(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open " + path);
  char magic[8];
  in.read(magic, 8);
  if (!in || std::memcmp(magic, kWeightsMagic, 8) != 0) {
    return util::Status::InvalidArgument("not an ExplainTI weights file");
  }
  std::vector<tensor::Tensor> params = AllParameters();
  int64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != static_cast<int64_t>(params.size())) {
    return util::Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", model has " + std::to_string(params.size()));
  }
  // Stage into buffers first so a truncated file leaves weights intact.
  std::vector<std::vector<float>> staged(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    int64_t size = 0;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    if (!in || size != params[i].size()) {
      return util::Status::InvalidArgument(
          "parameter " + std::to_string(i) + " size mismatch");
    }
    staged[i].resize(static_cast<size_t>(size));
    in.read(reinterpret_cast<char*>(staged[i].data()),
            static_cast<std::streamsize>(size * sizeof(float)));
    if (!in) return util::Status::IoError("truncated weights file");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    std::copy(staged[i].begin(), staged[i].end(), params[i].data());
  }
  // Any armed quantized tier was built from the weights just overwritten;
  // drop it before the store warm-up so the stores encode on the
  // bit-exact fp32 path, then re-arm the policy from the fresh weights.
  // (Hot-swap replicas land here too, so a new generation always carries
  // a freshly quantized tier, never a stale one.)
  session_->SuspendQuantizedTier();
  RestoreStores();
  session_->ReloadWeights();
  return util::Status::OK();
}

eval::F1Scores ExplainTiModel::Evaluate(TaskKind kind,
                                        data::SplitPart part) const {
  // Routed through the no-grad session: bit-identical predictions to the
  // tape path, without paying for tape construction per sample.
  return session_->Evaluate(kind, part);
}

}  // namespace explainti::core
