#include "core/inference_plan.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "tensor/buffer_planner.h"
#include "tensor/plan_kernels.h"
#include "tensor/workspace.h"
#include "util/logging.h"

namespace explainti::core {

namespace {

constexpr float kLayerNormEps = 1e-5f;  // tensor::LayerNorm's default.

/// Emission state: instructions plus the liveness interval of every
/// logical buffer. Buffer ids index `bufs`; instruction emission order is
/// the topological order, so an operand's interval is simply
/// [first touch, last touch].
class PlanBuilder {
 public:
  int64_t NewBuffer(int64_t size, int64_t elem_bytes = 4) {
    bufs_.push_back(
        {size, std::numeric_limits<int32_t>::max(), -1, elem_bytes});
    return static_cast<int64_t>(bufs_.size()) - 1;
  }

  /// Pins `buf` live over the whole program without tying it to any
  /// instruction operand — the int8 quantization scratch is written and
  /// consumed inside a single kGemm execution, so it must never alias an
  /// activation buffer at any point in the stream.
  void PinWholeProgram(int64_t buf) {
    tensor::PlannedBuffer& b = bufs_[static_cast<size_t>(buf)];
    b.first_def = 0;
    b.last_use = static_cast<int32_t>(instrs_.size());
  }

  /// Appends `instr` and extends the liveness of its arena operands to
  /// this instruction.
  void Emit(const PlanInstr& instr) {
    const int32_t at = static_cast<int32_t>(instrs_.size());
    for (int64_t buf : {instr.a_off, instr.b_off, instr.out_off}) {
      if (buf < 0) continue;
      tensor::PlannedBuffer& b = bufs_[static_cast<size_t>(buf)];
      b.first_def = std::min(b.first_def, at);
      b.last_use = std::max(b.last_use, at);
    }
    instrs_.push_back(instr);
  }

  /// Pins `buf` as a plan output: it survives the whole program so the
  /// executor can copy it out after the loop.
  void KeepToEnd(int64_t buf) {
    bufs_[static_cast<size_t>(buf)].last_use =
        static_cast<int32_t>(instrs_.size());
  }

  /// Plans arena offsets and patches every instruction's logical buffer
  /// ids (plus the given per-instruction column extras, in elements of
  /// the operand buffer) into arena BYTE offsets. `extras` is parallel
  /// to the instruction stream.
  struct Patched {
    std::vector<PlanInstr> instrs;
    std::vector<int64_t> offsets;  ///< Bytes, per logical buffer.
    int64_t arena_bytes = 0;
  };
  struct OperandExtras {
    int64_t a = 0, b = 0, out = 0;
  };
  Patched Finalize(const std::vector<OperandExtras>& extras) {
    CHECK_EQ(extras.size(), instrs_.size());
    const tensor::BufferPlan layout = tensor::PlanBufferOffsets(bufs_);
    Patched out;
    out.instrs = instrs_;
    out.offsets = layout.offsets;
    out.arena_bytes = layout.arena_bytes;
    for (size_t i = 0; i < out.instrs.size(); ++i) {
      PlanInstr& instr = out.instrs[i];
      auto patch = [&](int64_t& field, int64_t extra) {
        if (field >= 0) {
          const size_t buf = static_cast<size_t>(field);
          field = layout.offsets[buf] + extra * bufs_[buf].elem_bytes;
        }
      };
      patch(instr.a_off, extras[i].a);
      patch(instr.b_off, extras[i].b);
      patch(instr.out_off, extras[i].out);
    }
    return out;
  }

  size_t instr_count() const { return instrs_.size(); }

 private:
  std::vector<PlanInstr> instrs_;
  std::vector<tensor::PlannedBuffer> bufs_;
};

}  // namespace

util::StatusOr<InferencePlan> BuildInferencePlan(
    const nn::EncoderLowering& encoder, const nn::LinearLowering* head,
    int64_t seq_len, bool has_segments, const PlanQuantSpec* quant) {
  const int64_t L = seq_len;
  const int64_t d = encoder.d_model;
  const int64_t ffn = encoder.ffn_dim;
  const int64_t heads = encoder.num_heads;
  const nn::EmbeddingsLowering& emb = encoder.embeddings;
  if (L < 1 || L > emb.max_len) {
    return util::Status::InvalidArgument(
        "plan: seq_len " + std::to_string(L) + " outside [1, " +
        std::to_string(emb.max_len) + "]");
  }
  if (heads <= 0 || d % heads != 0) {
    return util::Status::InvalidArgument(
        "plan: d_model not divisible by num_heads");
  }
  if (has_segments && emb.segment_table == nullptr) {
    return util::Status::InvalidArgument(
        "plan: segments requested but encoder has no segment table");
  }
  if (head != nullptr && head->in != d) {
    return util::Status::InvalidArgument(
        "plan: head input width != d_model (structural heads are not "
        "lowerable)");
  }
  const int64_t head_dim = d / heads;
  const float attn_scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  // Validate the quant spec up front: a malformed spec is a typed error
  // the session fails closed on, never a partially-quantized plan.
  const nn::QuantizedEncoder* qenc =
      quant != nullptr ? quant->encoder : nullptr;
  const std::vector<uint8_t>* layer_int8 =
      quant != nullptr ? quant->layer_int8 : nullptr;
  const nn::QuantizedLinear* qhead = quant != nullptr ? quant->head : nullptr;
  if (qenc != nullptr && qenc->layers.size() != encoder.layers.size()) {
    return util::Status::InvalidArgument(
        "plan: quantized encoder has " + std::to_string(qenc->layers.size()) +
        " layers, lowered encoder has " +
        std::to_string(encoder.layers.size()));
  }
  if (layer_int8 != nullptr && qenc != nullptr &&
      layer_int8->size() != qenc->layers.size()) {
    return util::Status::InvalidArgument(
        "plan: per-layer precision mask does not match the layer stack");
  }
  if (qhead != nullptr &&
      (head == nullptr || qhead->in != head->in || qhead->out != head->out)) {
    return util::Status::InvalidArgument(
        "plan: quantized head does not match the folded classifier head");
  }

  PlanBuilder b;
  std::vector<PlanBuilder::OperandExtras> extras;
  auto emit = [&](const PlanInstr& instr,
                  const PlanBuilder::OperandExtras& e =
                      PlanBuilder::OperandExtras()) {
    b.Emit(instr);
    extras.push_back(e);
  };
  // C[m,n] (+= post) = A * B over arena/weight views, C pre-zeroed by the
  // executor.
  auto gemm = [&](int64_t a_buf, int64_t a_col, int64_t lda, int64_t b_buf,
                  int64_t b_col, int64_t ldb, bool trans_b,
                  const float* weight, int64_t out_buf, int64_t out_col,
                  int64_t ldc, int64_t m, int64_t k, int64_t n, PlanPostOp post,
                  const float* bias, float scale) {
    PlanInstr instr;
    instr.op = PlanOpCode::kGemm;
    instr.post = post;
    instr.trans_b = trans_b;
    instr.m = m;
    instr.k = k;
    instr.n = n;
    instr.lda = lda;
    instr.ldb = ldb;
    instr.ldc = ldc;
    instr.a_off = a_buf;
    instr.b_off = b_buf;
    instr.out_off = out_buf;
    instr.weight = weight;
    instr.bias = bias;
    instr.scale = scale;
    emit(instr, {a_col, b_col, out_col});
  };
  // y[L, out] = x W + b: the fused Linear (contiguous operands). When a
  // quantized view `q` is supplied the GEMM is stamped kI8: the executor
  // quantizes the A rows into the plan's shared scratch, accumulates
  // int8 x int8 -> int32 against q's weights, and the dequant epilogue is
  // fused into the C write; the bias/GELU post-op still applies in fp32.
  int64_t int8_gemms = 0;
  int64_t int8_max_elems = 0;  // max m*k over int8 GEMMs (qa scratch).
  int64_t int8_max_rows = 0;   // max m (per-row scale/zero-point scratch).
  auto linear = [&](int64_t x_buf, const nn::LinearLowering& lin,
                    const nn::QuantizedLinear* q, int64_t out_buf, int64_t m,
                    PlanPostOp post) {
    if (q == nullptr) {
      gemm(x_buf, 0, lin.in, /*b_buf=*/-1, 0, lin.out, /*trans_b=*/false,
           lin.weight, out_buf, 0, lin.out, m, lin.in, lin.out, post,
           lin.bias, 1.0f);
      return;
    }
    PlanInstr instr;
    instr.op = PlanOpCode::kGemm;
    instr.post = post;
    instr.dtype = tensor::DType::kI8;
    instr.m = m;
    instr.k = lin.in;
    instr.n = lin.out;
    instr.lda = lin.in;
    instr.ldb = lin.out;
    instr.ldc = lin.out;
    instr.a_off = x_buf;
    instr.out_off = out_buf;
    instr.weight_q = q->weight.data.data();
    instr.wq_scales = q->weight.params.scales.data();
    instr.wq_col_sums = q->weight.col_sums.data();
    instr.bias = lin.bias;
    emit(instr);
    ++int8_gemms;
    int8_max_elems = std::max(int8_max_elems, m * lin.in);
    int8_max_rows = std::max(int8_max_rows, m);
  };
  auto residual_ln = [&](int64_t x_buf, int64_t f_buf, int64_t out_buf,
                         int64_t rows, int64_t cols, const float* gamma,
                         const float* beta) {
    PlanInstr instr;
    instr.op = PlanOpCode::kResidualLayerNorm;
    instr.m = rows;
    instr.n = cols;
    instr.a_off = x_buf;
    instr.b_off = f_buf;
    instr.out_off = out_buf;
    instr.gamma = gamma;
    instr.beta = beta;
    instr.eps = kLayerNormEps;
    emit(instr);
  };

  // -- Embeddings: one fused gather + LayerNorm pass ----------------------
  int64_t x = b.NewBuffer(L * d);
  {
    PlanInstr instr;
    instr.op = PlanOpCode::kEmbedLayerNorm;
    instr.m = L;
    instr.n = d;
    instr.out_off = x;
    instr.weight = emb.token_table;
    instr.bias = emb.position_table;
    instr.aux = has_segments ? emb.segment_table : nullptr;
    instr.gamma = emb.ln_gamma;
    instr.beta = emb.ln_beta;
    instr.eps = kLayerNormEps;
    emit(instr);
  }

  // -- Encoder layers -----------------------------------------------------
  for (size_t li = 0; li < encoder.layers.size(); ++li) {
    const nn::EncoderLayerLowering& layer = encoder.layers[li];
    // This layer's quantized views, or null for the fp32 fallback (the
    // per-layer precision bit).
    const nn::QuantizedEncoderLayer* ql = nullptr;
    if (qenc != nullptr &&
        (layer_int8 == nullptr || (*layer_int8)[li] != 0)) {
      ql = &qenc->layers[li];
    }
    const int64_t q = b.NewBuffer(L * d);
    const int64_t k = b.NewBuffer(L * d);
    const int64_t v = b.NewBuffer(L * d);
    linear(x, layer.wq, ql != nullptr ? &ql->wq : nullptr, q, L,
           PlanPostOp::kBias);
    linear(x, layer.wk, ql != nullptr ? &ql->wk : nullptr, k, L,
           PlanPostOp::kBias);
    linear(x, layer.wv, ql != nullptr ? &ql->wv : nullptr, v, L,
           PlanPostOp::kBias);

    // One scores buffer and one k^T buffer serve every head in sequence;
    // the context buffer collects per-head columns in place (the graph
    // walk's ConcatCols, without the copy). k^T is the one copy worth
    // keeping: with it the scores GEMM runs the vectorised non-transposed
    // kernel instead of the scalar trans_b gather.
    const int64_t scores = b.NewBuffer(L * L);
    const int64_t kt = b.NewBuffer(head_dim * L);
    const int64_t ctx = b.NewBuffer(L * d);
    for (int64_t h = 0; h < heads; ++h) {
      const int64_t col = h * head_dim;
      // kt[kk, j] = k[j, col + kk] — head_dim x L, contiguous rows.
      {
        PlanInstr instr;
        instr.op = PlanOpCode::kTranspose;
        instr.m = L;
        instr.n = head_dim;
        instr.lda = d;
        instr.ldc = L;
        instr.a_off = k;
        instr.out_off = kt;
        emit(instr, {col, 0, 0});
      }
      // scores = softmax((q_h k_h^T) * 1/sqrt(head_dim)), fused in place.
      gemm(q, col, d, kt, 0, L, /*trans_b=*/false, nullptr, scores, 0, L, L,
           head_dim, L, PlanPostOp::kScaleSoftmax, nullptr, attn_scale);
      // ctx[:, h] = scores * v_h, written straight into its column block.
      gemm(scores, 0, L, v, col, d, /*trans_b=*/false, nullptr, ctx, col, d,
           L, L, head_dim, PlanPostOp::kNone, nullptr, 1.0f);
    }

    const int64_t attn = b.NewBuffer(L * d);
    linear(ctx, layer.wo, ql != nullptr ? &ql->wo : nullptr, attn, L,
           PlanPostOp::kBias);
    const int64_t h1 = b.NewBuffer(L * d);
    residual_ln(x, attn, h1, L, d, layer.ln1_gamma, layer.ln1_beta);

    const int64_t f1 = b.NewBuffer(L * ffn);
    linear(h1, layer.ffn_in, ql != nullptr ? &ql->ffn_in : nullptr, f1, L,
           PlanPostOp::kBiasGelu);
    const int64_t f2 = b.NewBuffer(L * d);
    linear(f1, layer.ffn_out, ql != nullptr ? &ql->ffn_out : nullptr, f2, L,
           PlanPostOp::kBias);
    const int64_t x_next = b.NewBuffer(L * d);
    residual_ln(h1, f2, x_next, L, d, layer.ln2_gamma, layer.ln2_beta);
    x = x_next;
  }
  b.KeepToEnd(x);
  const int32_t encoder_end = static_cast<int32_t>(b.instr_count());

  // -- Optional classifier head over the [CLS] row ------------------------
  int64_t logits = -1;
  if (head != nullptr) {
    logits = b.NewBuffer(head->out);
    // m == 1 from row 0 of x: the rank-1 cls GEMM, same kernel branch the
    // graph walk's MatMul(cls, W) takes.
    linear(x, *head, qhead, logits, 1, PlanPostOp::kBias);
    b.KeepToEnd(logits);
  }

  // -- Shared int8 quantization scratch ------------------------------------
  // One qa/scales/zero-points block serves every int8 GEMM: each use is
  // produce-then-consume inside a single instruction, so the block only
  // needs to be wide enough for the largest A view. Pinned across the
  // whole program so the byte planner never overlays an activation on it.
  int64_t qa = -1, qs = -1, qzp = -1;
  if (int8_gemms > 0) {
    qa = b.NewBuffer(int8_max_elems, /*elem_bytes=*/1);
    qs = b.NewBuffer(int8_max_rows, /*elem_bytes=*/4);
    qzp = b.NewBuffer(int8_max_rows, /*elem_bytes=*/4);
    b.PinWholeProgram(qa);
    b.PinWholeProgram(qs);
    b.PinWholeProgram(qzp);
  }

  PlanBuilder::Patched patched = b.Finalize(extras);
  InferencePlan plan;
  plan.instrs = std::move(patched.instrs);
  plan.encoder_end = encoder_end;
  plan.arena_bytes = patched.arena_bytes;
  plan.enc_out_off = patched.offsets[static_cast<size_t>(x)];
  plan.logits_off =
      logits >= 0 ? patched.offsets[static_cast<size_t>(logits)] : -1;
  if (int8_gemms > 0) {
    plan.qa_off = patched.offsets[static_cast<size_t>(qa)];
    plan.qs_off = patched.offsets[static_cast<size_t>(qs)];
    plan.qzp_off = patched.offsets[static_cast<size_t>(qzp)];
  }
  plan.seq_len = L;
  plan.d_model = d;
  plan.num_labels = head != nullptr ? head->out : 0;
  plan.int8_gemms = int8_gemms;
  plan.has_segments = has_segments;
  return plan;
}

void RunPlan(const InferencePlan& plan, const PlanRun& run) {
  CHECK(run.token_ids != nullptr);
  CHECK(!plan.has_segments || run.segment_ids != nullptr)
      << "plan compiled with segments requires segment_ids";
  const bool want_logits = run.logits != nullptr;
  CHECK(!want_logits || plan.logits_off >= 0)
      << "plan has no head folded in but logits were requested";

  // The whole scratch arena comes from the per-thread workspace buffer
  // pool: steady state is zero heap allocations, and nested ParallelFor
  // workers never touch it (GEMM chunks write disjoint rows of views
  // passed by pointer). Offsets are bytes (the arena is mixed-width when
  // the plan carries int8 scratch); the float pool is rounded up.
  tensor::ScratchBuffer arena(
      static_cast<size_t>((plan.arena_bytes + 3) / 4));
  char* base = reinterpret_cast<char*>(arena.data());
  auto f32 = [base](int64_t off) {
    return reinterpret_cast<float*>(base + off);
  };

  const size_t end = want_logits ? plan.instrs.size()
                                 : static_cast<size_t>(plan.encoder_end);
  for (size_t i = 0; i < end; ++i) {
    const PlanInstr& instr = plan.instrs[i];
    switch (instr.op) {
      case PlanOpCode::kEmbedLayerNorm:
        tensor::EmbedLayerNormRows(
            instr.weight, instr.bias, instr.aux, run.token_ids,
            instr.aux != nullptr ? run.segment_ids : nullptr,
            f32(instr.out_off), instr.m, instr.n, instr.gamma, instr.beta,
            instr.eps);
        break;
      case PlanOpCode::kGemm: {
        const float* a = f32(instr.a_off);
        float* c = f32(instr.out_off);
        if (instr.dtype == tensor::DType::kI8) {
          // Quantize the A rows into the plan's shared scratch, then the
          // int8 GEMM overwrites C with dequantized results (no ZeroRows:
          // the int32 accumulation starts from zero internally).
          int8_t* qa = reinterpret_cast<int8_t*>(base + plan.qa_off);
          float* qs = f32(plan.qs_off);
          int32_t* qzp = reinterpret_cast<int32_t*>(base + plan.qzp_off);
          tensor::QuantizeRowsInt8(a, instr.lda, instr.m, instr.k, qa, qs,
                                   qzp);
          tensor::ServingGemmInt8(qa, qs, qzp, instr.weight_q,
                                  instr.wq_scales, instr.wq_col_sums, c,
                                  instr.ldc, instr.m, instr.k, instr.n);
        } else {
          const float* bm =
              instr.b_off >= 0 ? f32(instr.b_off) : instr.weight;
          tensor::ZeroRows(c, instr.ldc, instr.m, instr.n);
          tensor::ServingGemm(a, instr.lda, bm, instr.ldb, instr.trans_b, c,
                              instr.ldc, instr.m, instr.k, instr.n);
        }
        switch (instr.post) {
          case PlanPostOp::kNone:
            break;
          case PlanPostOp::kBias:
            tensor::AddBiasRows(c, instr.ldc, instr.bias, instr.m, instr.n);
            break;
          case PlanPostOp::kBiasGelu:
            tensor::BiasGeluRows(c, instr.ldc, instr.bias, instr.m, instr.n);
            break;
          case PlanPostOp::kScaleSoftmax:
            tensor::ScaleSoftmaxRows(c, instr.m, instr.n, instr.scale);
            break;
        }
        break;
      }
      case PlanOpCode::kResidualLayerNorm:
        tensor::ResidualLayerNormRows(f32(instr.a_off), f32(instr.b_off),
                                      f32(instr.out_off), instr.m, instr.n,
                                      instr.gamma, instr.beta, instr.eps);
        break;
      case PlanOpCode::kTranspose: {
        const float* a = f32(instr.a_off);
        float* c = f32(instr.out_off);
        for (int64_t r = 0; r < instr.m; ++r) {
          for (int64_t j = 0; j < instr.n; ++j) {
            c[j * instr.ldc + r] = a[r * instr.lda + j];
          }
        }
        break;
      }
    }
  }

  if (run.encoder_out != nullptr && run.encoder_out_rows > 0) {
    CHECK_LE(run.encoder_out_rows, plan.seq_len);
    std::memcpy(run.encoder_out, f32(plan.enc_out_off),
                sizeof(float) *
                    static_cast<size_t>(run.encoder_out_rows * plan.d_model));
  }
  if (want_logits) {
    std::memcpy(run.logits, f32(plan.logits_off),
                sizeof(float) * static_cast<size_t>(plan.num_labels));
  }
}

}  // namespace explainti::core
