#include "tensor/plan_kernels.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

#if defined(__GNUC__) || defined(__clang__)
#define EXPLAINTI_RESTRICT __restrict__
#else
#define EXPLAINTI_RESTRICT
#endif

namespace explainti::tensor {

namespace {

// Same constants (and the same expressions producing them) as the Gelu op
// in tensor_ops.cc — the fused FFN pass must round identically.
constexpr float kGeluCoef = 0.044715f;
const float kSqrt2OverPi = std::sqrt(2.0f / static_cast<float>(M_PI));

inline float GeluScalar(float x) {
  const float inner = kSqrt2OverPi * (x + kGeluCoef * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

// The register-blocked body for one chunk of output rows [ib, ie): two
// output rows x four k steps per pass. Strides generalise the original
// contiguous kernel; with lda == k, ldb == n, ldc == n, TransB == false
// this is the exact loop nest MatMul's serving branch always ran. Each
// output element accumulates its products in ascending-k order with every
// product and add individually rounded, so bits never depend on the
// blocking, the strides, or TransB (which only changes *where* the same
// B values are read from).
template <bool TransB>
void GemmRowsChunk(const float* EXPLAINTI_RESTRICT pa, int64_t lda,
                   const float* EXPLAINTI_RESTRICT pb, int64_t ldb,
                   float* EXPLAINTI_RESTRICT pc, int64_t ldc, int64_t k,
                   int64_t n, int64_t ib, int64_t ie) {
  auto b_at = [pb, ldb](int64_t kk, int64_t j) -> float {
    return TransB ? pb[j * ldb + kk] : pb[kk * ldb + j];
  };
  int64_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    const float* EXPLAINTI_RESTRICT a0r = pa + i * lda;
    const float* EXPLAINTI_RESTRICT a1r = a0r + lda;
    float* EXPLAINTI_RESTRICT c0 = pc + i * ldc;
    float* EXPLAINTI_RESTRICT c1 = c0 + ldc;
    int64_t kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const float x0 = a0r[kk], x1 = a0r[kk + 1];
      const float x2 = a0r[kk + 2], x3 = a0r[kk + 3];
      const float y0 = a1r[kk], y1 = a1r[kk + 1];
      const float y2 = a1r[kk + 2], y3 = a1r[kk + 3];
      for (int64_t j = 0; j < n; ++j) {
        const float v0 = b_at(kk, j), v1 = b_at(kk + 1, j);
        const float v2 = b_at(kk + 2, j), v3 = b_at(kk + 3, j);
        float acc0 = c0[j];
        acc0 += x0 * v0;
        acc0 += x1 * v1;
        acc0 += x2 * v2;
        acc0 += x3 * v3;
        c0[j] = acc0;
        float acc1 = c1[j];
        acc1 += y0 * v0;
        acc1 += y1 * v1;
        acc1 += y2 * v2;
        acc1 += y3 * v3;
        c1[j] = acc1;
      }
    }
    for (; kk < k; ++kk) {
      const float x = a0r[kk], y = a1r[kk];
      for (int64_t j = 0; j < n; ++j) {
        const float v = b_at(kk, j);
        c0[j] += x * v;
        c1[j] += y * v;
      }
    }
  }
  for (; i < ie; ++i) {
    const float* EXPLAINTI_RESTRICT arow = pa + i * lda;
    float* EXPLAINTI_RESTRICT crow = pc + i * ldc;
    int64_t kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const float a0 = arow[kk], a1 = arow[kk + 1];
      const float a2 = arow[kk + 2], a3 = arow[kk + 3];
      for (int64_t j = 0; j < n; ++j) {
        float acc = crow[j];
        acc += a0 * b_at(kk, j);
        acc += a1 * b_at(kk + 1, j);
        acc += a2 * b_at(kk + 2, j);
        acc += a3 * b_at(kk + 3, j);
        crow[j] = acc;
      }
    }
    for (; kk < k; ++kk) {
      const float av = arow[kk];
      for (int64_t j = 0; j < n; ++j) crow[j] += av * b_at(kk, j);
    }
  }
}

// Single-output-row kernel (m == 1), chunked over columns [jb, je) like
// the original vector-matrix branch.
template <bool TransB>
void GemmVecChunk(const float* EXPLAINTI_RESTRICT pa,
                  const float* EXPLAINTI_RESTRICT pb, int64_t ldb,
                  float* EXPLAINTI_RESTRICT pc, int64_t k, int64_t jb,
                  int64_t je) {
  auto b_at = [pb, ldb](int64_t kk, int64_t j) -> float {
    return TransB ? pb[j * ldb + kk] : pb[kk * ldb + j];
  };
  int64_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const float a0 = pa[kk], a1 = pa[kk + 1];
    const float a2 = pa[kk + 2], a3 = pa[kk + 3];
    for (int64_t j = jb; j < je; ++j) {
      float acc = pc[j];
      acc += a0 * b_at(kk, j);
      acc += a1 * b_at(kk + 1, j);
      acc += a2 * b_at(kk + 2, j);
      acc += a3 * b_at(kk + 3, j);
      pc[j] = acc;
    }
  }
  for (; kk < k; ++kk) {
    const float av = pa[kk];
    for (int64_t j = jb; j < je; ++j) pc[j] += av * b_at(kk, j);
  }
}

}  // namespace

void ServingGemm(const float* a, int64_t lda, const float* b, int64_t ldb,
                 bool trans_b, float* c, int64_t ldc, int64_t m, int64_t k,
                 int64_t n) {
  // Same ParallelFor shapes and grains as the MatMul this kernel was
  // extracted from: chunks touch disjoint output rows (or, for a single
  // output row, disjoint columns), so the result is chunking-invariant.
  // When the whole range fits one chunk anyway — or the pool has no
  // workers to fan out to — the chunk function runs directly: it computes
  // the same thing, and skipping ParallelFor's std::function envelope
  // (which heap-allocates for these captures) is what keeps a warmed-up
  // single-threaded plan execution at zero allocations.
  if (m > 1) {
    const int64_t grain = util::GrainForCost(k * n);
    if (m <= grain || util::GlobalThreadPool().num_threads() <= 1) {
      if (trans_b) {
        GemmRowsChunk<true>(a, lda, b, ldb, c, ldc, k, n, 0, m);
      } else {
        GemmRowsChunk<false>(a, lda, b, ldb, c, ldc, k, n, 0, m);
      }
      return;
    }
    util::ParallelFor(0, m, grain, [&](int64_t ib, int64_t ie) {
      if (trans_b) {
        GemmRowsChunk<true>(a, lda, b, ldb, c, ldc, k, n, ib, ie);
      } else {
        GemmRowsChunk<false>(a, lda, b, ldb, c, ldc, k, n, ib, ie);
      }
    });
  } else {
    const int64_t grain = util::GrainForCost(k);
    if (n <= grain || util::GlobalThreadPool().num_threads() <= 1) {
      if (trans_b) {
        GemmVecChunk<true>(a, b, ldb, c, k, 0, n);
      } else {
        GemmVecChunk<false>(a, b, ldb, c, k, 0, n);
      }
      return;
    }
    util::ParallelFor(0, n, grain, [&](int64_t jb, int64_t je) {
      if (trans_b) {
        GemmVecChunk<true>(a, b, ldb, c, k, jb, je);
      } else {
        GemmVecChunk<false>(a, b, ldb, c, k, jb, je);
      }
    });
  }
}

void ZeroRows(float* c, int64_t ldc, int64_t m, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
  }
}

void AddBiasRows(float* c, int64_t ldc, const float* bias, int64_t m,
                 int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* EXPLAINTI_RESTRICT row = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) row[j] = row[j] + bias[j];
  }
}

void BiasGeluRows(float* c, int64_t ldc, const float* bias, int64_t m,
                  int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* EXPLAINTI_RESTRICT row = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) row[j] = GeluScalar(row[j] + bias[j]);
  }
}

void ScaleSoftmaxRows(float* c, int64_t rows, int64_t cols, float scale) {
  // Scale the whole matrix first (the Scale op was a full separate pass),
  // then the exact Softmax row loop. Row order is irrelevant to bits (rows
  // are independent), so the serial loop matches the chunked op.
  const int64_t total = rows * cols;
  for (int64_t i = 0; i < total; ++i) c[i] = c[i] * scale;
  for (int64_t r = 0; r < rows; ++r) {
    float* EXPLAINTI_RESTRICT row = c + r * cols;
    float max_v = row[0];
    for (int64_t j = 1; j < cols; ++j) max_v = std::max(max_v, row[j]);
    float total_exp = 0.0f;
    for (int64_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - max_v);
      total_exp += row[j];
    }
    for (int64_t j = 0; j < cols; ++j) row[j] /= total_exp;
  }
}

namespace {

// The LayerNorm row body from tensor_ops.cc, normalising `out` in place.
// Reading the sums back from `out` in the mean/variance/normalise passes
// sees exactly the values the unfused Add node held.
inline void LayerNormRowInPlace(float* EXPLAINTI_RESTRICT out, int64_t cols,
                                const float* EXPLAINTI_RESTRICT gamma,
                                const float* EXPLAINTI_RESTRICT beta,
                                float eps) {
  float mean = 0.0f;
  for (int64_t j = 0; j < cols; ++j) mean += out[j];
  mean /= static_cast<float>(cols);
  float var = 0.0f;
  for (int64_t j = 0; j < cols; ++j) {
    const float d = out[j] - mean;
    var += d * d;
  }
  var /= static_cast<float>(cols);
  const float inv_std = 1.0f / std::sqrt(var + eps);
  for (int64_t j = 0; j < cols; ++j) {
    out[j] = (out[j] - mean) * inv_std * gamma[j] + beta[j];
  }
}

}  // namespace

void ResidualLayerNormRows(const float* x, const float* f, float* out,
                           int64_t rows, int64_t cols, const float* gamma,
                           const float* beta, float eps) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* EXPLAINTI_RESTRICT xr = x + r * cols;
    const float* EXPLAINTI_RESTRICT fr = f + r * cols;
    float* EXPLAINTI_RESTRICT or_ = out + r * cols;
    for (int64_t j = 0; j < cols; ++j) or_[j] = xr[j] + fr[j];
    LayerNormRowInPlace(or_, cols, gamma, beta, eps);
  }
}

void EmbedLayerNormRows(const float* token_table, const float* position_table,
                        const float* segment_table, const int* ids,
                        const int* segment_ids, float* out, int64_t rows,
                        int64_t cols, const float* gamma, const float* beta,
                        float eps) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* EXPLAINTI_RESTRICT tok =
        token_table + static_cast<int64_t>(ids[r]) * cols;
    const float* EXPLAINTI_RESTRICT pos = position_table + r * cols;
    float* EXPLAINTI_RESTRICT row = out + r * cols;
    if (segment_table != nullptr) {
      const float* EXPLAINTI_RESTRICT seg =
          segment_table + static_cast<int64_t>(segment_ids[r]) * cols;
      // Left-associative (token + position) + segment — the order the
      // unfused Add chain used.
      for (int64_t j = 0; j < cols; ++j) row[j] = (tok[j] + pos[j]) + seg[j];
    } else {
      for (int64_t j = 0; j < cols; ++j) row[j] = tok[j] + pos[j];
    }
    LayerNormRowInPlace(row, cols, gamma, beta, eps);
  }
}

}  // namespace explainti::tensor
