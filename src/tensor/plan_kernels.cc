#include "tensor/plan_kernels.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

#if defined(__GNUC__) || defined(__clang__)
#define EXPLAINTI_RESTRICT __restrict__
#else
#define EXPLAINTI_RESTRICT
#endif

// The int8 GEMM ships a hand-vectorized AVX2 body selected at run time
// (GCC/Clang `target` attribute + __builtin_cpu_supports), because the
// library's baseline -O2 build cannot autovectorize the int8->int32
// widening loop and a quantized tier slower than fp32 would be pointless.
// Integer accumulation is exact, so the vector and scalar bodies produce
// identical bits — dispatch never changes results, only throughput.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EXPLAINTI_INT8_AVX2 1
#include <immintrin.h>
#endif

namespace explainti::tensor {

namespace {

// Same constants (and the same expressions producing them) as the Gelu op
// in tensor_ops.cc — the fused FFN pass must round identically.
constexpr float kGeluCoef = 0.044715f;
const float kSqrt2OverPi = std::sqrt(2.0f / static_cast<float>(M_PI));

inline float GeluScalar(float x) {
  const float inner = kSqrt2OverPi * (x + kGeluCoef * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

// The register-blocked body for one chunk of output rows [ib, ie): two
// output rows x four k steps per pass. Strides generalise the original
// contiguous kernel; with lda == k, ldb == n, ldc == n, TransB == false
// this is the exact loop nest MatMul's serving branch always ran. Each
// output element accumulates its products in ascending-k order with every
// product and add individually rounded, so bits never depend on the
// blocking, the strides, or TransB (which only changes *where* the same
// B values are read from).
template <bool TransB>
void GemmRowsChunk(const float* EXPLAINTI_RESTRICT pa, int64_t lda,
                   const float* EXPLAINTI_RESTRICT pb, int64_t ldb,
                   float* EXPLAINTI_RESTRICT pc, int64_t ldc, int64_t k,
                   int64_t n, int64_t ib, int64_t ie) {
  auto b_at = [pb, ldb](int64_t kk, int64_t j) -> float {
    return TransB ? pb[j * ldb + kk] : pb[kk * ldb + j];
  };
  int64_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    const float* EXPLAINTI_RESTRICT a0r = pa + i * lda;
    const float* EXPLAINTI_RESTRICT a1r = a0r + lda;
    float* EXPLAINTI_RESTRICT c0 = pc + i * ldc;
    float* EXPLAINTI_RESTRICT c1 = c0 + ldc;
    int64_t kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const float x0 = a0r[kk], x1 = a0r[kk + 1];
      const float x2 = a0r[kk + 2], x3 = a0r[kk + 3];
      const float y0 = a1r[kk], y1 = a1r[kk + 1];
      const float y2 = a1r[kk + 2], y3 = a1r[kk + 3];
      for (int64_t j = 0; j < n; ++j) {
        const float v0 = b_at(kk, j), v1 = b_at(kk + 1, j);
        const float v2 = b_at(kk + 2, j), v3 = b_at(kk + 3, j);
        float acc0 = c0[j];
        acc0 += x0 * v0;
        acc0 += x1 * v1;
        acc0 += x2 * v2;
        acc0 += x3 * v3;
        c0[j] = acc0;
        float acc1 = c1[j];
        acc1 += y0 * v0;
        acc1 += y1 * v1;
        acc1 += y2 * v2;
        acc1 += y3 * v3;
        c1[j] = acc1;
      }
    }
    for (; kk < k; ++kk) {
      const float x = a0r[kk], y = a1r[kk];
      for (int64_t j = 0; j < n; ++j) {
        const float v = b_at(kk, j);
        c0[j] += x * v;
        c1[j] += y * v;
      }
    }
  }
  for (; i < ie; ++i) {
    const float* EXPLAINTI_RESTRICT arow = pa + i * lda;
    float* EXPLAINTI_RESTRICT crow = pc + i * ldc;
    int64_t kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const float a0 = arow[kk], a1 = arow[kk + 1];
      const float a2 = arow[kk + 2], a3 = arow[kk + 3];
      for (int64_t j = 0; j < n; ++j) {
        float acc = crow[j];
        acc += a0 * b_at(kk, j);
        acc += a1 * b_at(kk + 1, j);
        acc += a2 * b_at(kk + 2, j);
        acc += a3 * b_at(kk + 3, j);
        crow[j] = acc;
      }
    }
    for (; kk < k; ++kk) {
      const float av = arow[kk];
      for (int64_t j = 0; j < n; ++j) crow[j] += av * b_at(kk, j);
    }
  }
}

// Single-output-row kernel (m == 1), chunked over columns [jb, je) like
// the original vector-matrix branch.
template <bool TransB>
void GemmVecChunk(const float* EXPLAINTI_RESTRICT pa,
                  const float* EXPLAINTI_RESTRICT pb, int64_t ldb,
                  float* EXPLAINTI_RESTRICT pc, int64_t k, int64_t jb,
                  int64_t je) {
  auto b_at = [pb, ldb](int64_t kk, int64_t j) -> float {
    return TransB ? pb[j * ldb + kk] : pb[kk * ldb + j];
  };
  int64_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const float a0 = pa[kk], a1 = pa[kk + 1];
    const float a2 = pa[kk + 2], a3 = pa[kk + 3];
    for (int64_t j = jb; j < je; ++j) {
      float acc = pc[j];
      acc += a0 * b_at(kk, j);
      acc += a1 * b_at(kk + 1, j);
      acc += a2 * b_at(kk + 2, j);
      acc += a3 * b_at(kk + 3, j);
      pc[j] = acc;
    }
  }
  for (; kk < k; ++kk) {
    const float av = pa[kk];
    for (int64_t j = jb; j < je; ++j) pc[j] += av * b_at(kk, j);
  }
}

}  // namespace

void ServingGemm(const float* a, int64_t lda, const float* b, int64_t ldb,
                 bool trans_b, float* c, int64_t ldc, int64_t m, int64_t k,
                 int64_t n) {
  // Same ParallelFor shapes and grains as the MatMul this kernel was
  // extracted from: chunks touch disjoint output rows (or, for a single
  // output row, disjoint columns), so the result is chunking-invariant.
  // When the whole range fits one chunk anyway — or the pool has no
  // workers to fan out to — the chunk function runs directly: it computes
  // the same thing, and skipping ParallelFor's std::function envelope
  // (which heap-allocates for these captures) is what keeps a warmed-up
  // single-threaded plan execution at zero allocations.
  if (m > 1) {
    const int64_t grain = util::GrainForCost(k * n);
    if (m <= grain || util::GlobalThreadPool().num_threads() <= 1) {
      if (trans_b) {
        GemmRowsChunk<true>(a, lda, b, ldb, c, ldc, k, n, 0, m);
      } else {
        GemmRowsChunk<false>(a, lda, b, ldb, c, ldc, k, n, 0, m);
      }
      return;
    }
    util::ParallelFor(0, m, grain, [&](int64_t ib, int64_t ie) {
      if (trans_b) {
        GemmRowsChunk<true>(a, lda, b, ldb, c, ldc, k, n, ib, ie);
      } else {
        GemmRowsChunk<false>(a, lda, b, ldb, c, ldc, k, n, ib, ie);
      }
    });
  } else {
    const int64_t grain = util::GrainForCost(k);
    if (n <= grain || util::GlobalThreadPool().num_threads() <= 1) {
      if (trans_b) {
        GemmVecChunk<true>(a, b, ldb, c, k, 0, n);
      } else {
        GemmVecChunk<false>(a, b, ldb, c, k, 0, n);
      }
      return;
    }
    util::ParallelFor(0, n, grain, [&](int64_t jb, int64_t je) {
      if (trans_b) {
        GemmVecChunk<true>(a, b, ldb, c, k, jb, je);
      } else {
        GemmVecChunk<false>(a, b, ldb, c, k, jb, je);
      }
    });
  }
}

void ZeroRows(float* c, int64_t ldc, int64_t m, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
  }
}

void AddBiasRows(float* c, int64_t ldc, const float* bias, int64_t m,
                 int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* EXPLAINTI_RESTRICT row = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) row[j] = row[j] + bias[j];
  }
}

void BiasGeluRows(float* c, int64_t ldc, const float* bias, int64_t m,
                  int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* EXPLAINTI_RESTRICT row = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) row[j] = GeluScalar(row[j] + bias[j]);
  }
}

void ScaleSoftmaxRows(float* c, int64_t rows, int64_t cols, float scale) {
  // Scale the whole matrix first (the Scale op was a full separate pass),
  // then the exact Softmax row loop. Row order is irrelevant to bits (rows
  // are independent), so the serial loop matches the chunked op.
  const int64_t total = rows * cols;
  for (int64_t i = 0; i < total; ++i) c[i] = c[i] * scale;
  for (int64_t r = 0; r < rows; ++r) {
    float* EXPLAINTI_RESTRICT row = c + r * cols;
    float max_v = row[0];
    for (int64_t j = 1; j < cols; ++j) max_v = std::max(max_v, row[j]);
    float total_exp = 0.0f;
    for (int64_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - max_v);
      total_exp += row[j];
    }
    for (int64_t j = 0; j < cols; ++j) row[j] /= total_exp;
  }
}

namespace {

// The LayerNorm row body from tensor_ops.cc, normalising `out` in place.
// Reading the sums back from `out` in the mean/variance/normalise passes
// sees exactly the values the unfused Add node held.
inline void LayerNormRowInPlace(float* EXPLAINTI_RESTRICT out, int64_t cols,
                                const float* EXPLAINTI_RESTRICT gamma,
                                const float* EXPLAINTI_RESTRICT beta,
                                float eps) {
  float mean = 0.0f;
  for (int64_t j = 0; j < cols; ++j) mean += out[j];
  mean /= static_cast<float>(cols);
  float var = 0.0f;
  for (int64_t j = 0; j < cols; ++j) {
    const float d = out[j] - mean;
    var += d * d;
  }
  var /= static_cast<float>(cols);
  const float inv_std = 1.0f / std::sqrt(var + eps);
  for (int64_t j = 0; j < cols; ++j) {
    out[j] = (out[j] - mean) * inv_std * gamma[j] + beta[j];
  }
}

}  // namespace

void ResidualLayerNormRows(const float* x, const float* f, float* out,
                           int64_t rows, int64_t cols, const float* gamma,
                           const float* beta, float eps) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* EXPLAINTI_RESTRICT xr = x + r * cols;
    const float* EXPLAINTI_RESTRICT fr = f + r * cols;
    float* EXPLAINTI_RESTRICT or_ = out + r * cols;
    for (int64_t j = 0; j < cols; ++j) or_[j] = xr[j] + fr[j];
    LayerNormRowInPlace(or_, cols, gamma, beta, eps);
  }
}

void QuantizeRowsInt8(const float* a, int64_t lda, int64_t m, int64_t k,
                      int8_t* aq, float* scales, int32_t* zero_points) {
  for (int64_t i = 0; i < m; ++i) {
    const float* EXPLAINTI_RESTRICT row = a + i * lda;
    float lo = row[0], hi = row[0];
    for (int64_t kk = 1; kk < k; ++kk) {
      lo = std::min(lo, row[kk]);
      hi = std::max(hi, row[kk]);
    }
    const float range = hi - lo;
    const float scale = range > 0.0f ? range / 255.0f : 1.0f;
    const float inv_scale = 1.0f / scale;
    const int32_t zp =
        -128 - static_cast<int32_t>(std::lrintf(lo * inv_scale));
    scales[i] = scale;
    zero_points[i] = zp;
    int8_t* EXPLAINTI_RESTRICT out = aq + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const int32_t q =
          static_cast<int32_t>(std::lrintf(row[kk] * inv_scale)) + zp;
      out[kk] = static_cast<int8_t>(std::clamp(q, -128, 127));
    }
  }
}

namespace {

// Output-column tile width of the int8 row kernel: 2 rows x 16 columns
// of int32 accumulators live entirely in registers / L1 stack slots, so
// the kernel spills nothing to the heap (the zero-steady-state-
// allocation contract covers the int8 path too).
constexpr int64_t kInt8ColTile = 16;

// Register-blocked int8 chunk over output rows [ib, ie): two output rows
// x a 16-column accumulator tile x four k steps, dequant fused into the
// C write. Integer accumulation is exact, so unlike the fp32 kernel
// there is no rounding-order contract to preserve — the blocking is
// purely for throughput.
void GemmRowsChunkInt8(const int8_t* EXPLAINTI_RESTRICT pa,
                       const float* EXPLAINTI_RESTRICT a_scales,
                       const int32_t* EXPLAINTI_RESTRICT a_zps,
                       const int8_t* EXPLAINTI_RESTRICT pb,
                       const float* EXPLAINTI_RESTRICT b_scales,
                       const int32_t* EXPLAINTI_RESTRICT b_col_sums,
                       float* EXPLAINTI_RESTRICT pc, int64_t ldc, int64_t k,
                       int64_t n, int64_t ib, int64_t ie) {
  int32_t acc0[kInt8ColTile];
  int32_t acc1[kInt8ColTile];
  int64_t i = ib;
  for (; i + 2 <= ie; i += 2) {
    const int8_t* EXPLAINTI_RESTRICT a0r = pa + i * k;
    const int8_t* EXPLAINTI_RESTRICT a1r = a0r + k;
    float* EXPLAINTI_RESTRICT c0 = pc + i * ldc;
    float* EXPLAINTI_RESTRICT c1 = c0 + ldc;
    const float s0 = a_scales[i], s1 = a_scales[i + 1];
    const int32_t z0 = a_zps[i], z1 = a_zps[i + 1];
    for (int64_t jt = 0; jt < n; jt += kInt8ColTile) {
      const int64_t jn = std::min(kInt8ColTile, n - jt);
      for (int64_t jj = 0; jj < jn; ++jj) acc0[jj] = 0;
      for (int64_t jj = 0; jj < jn; ++jj) acc1[jj] = 0;
      int64_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        const int32_t x0 = a0r[kk], x1 = a0r[kk + 1];
        const int32_t x2 = a0r[kk + 2], x3 = a0r[kk + 3];
        const int32_t y0 = a1r[kk], y1 = a1r[kk + 1];
        const int32_t y2 = a1r[kk + 2], y3 = a1r[kk + 3];
        const int8_t* EXPLAINTI_RESTRICT b0 = pb + kk * n + jt;
        const int8_t* EXPLAINTI_RESTRICT b1 = b0 + n;
        const int8_t* EXPLAINTI_RESTRICT b2 = b1 + n;
        const int8_t* EXPLAINTI_RESTRICT b3 = b2 + n;
        for (int64_t jj = 0; jj < jn; ++jj) {
          const int32_t v0 = b0[jj], v1 = b1[jj];
          const int32_t v2 = b2[jj], v3 = b3[jj];
          acc0[jj] += x0 * v0 + x1 * v1 + x2 * v2 + x3 * v3;
          acc1[jj] += y0 * v0 + y1 * v1 + y2 * v2 + y3 * v3;
        }
      }
      for (; kk < k; ++kk) {
        const int32_t x = a0r[kk], y = a1r[kk];
        const int8_t* EXPLAINTI_RESTRICT br = pb + kk * n + jt;
        for (int64_t jj = 0; jj < jn; ++jj) {
          acc0[jj] += x * br[jj];
          acc1[jj] += y * br[jj];
        }
      }
      for (int64_t jj = 0; jj < jn; ++jj) {
        const int64_t j = jt + jj;
        c0[j] = static_cast<float>(acc0[jj] - z0 * b_col_sums[j]) *
                (s0 * b_scales[j]);
        c1[j] = static_cast<float>(acc1[jj] - z1 * b_col_sums[j]) *
                (s1 * b_scales[j]);
      }
    }
  }
  for (; i < ie; ++i) {
    const int8_t* EXPLAINTI_RESTRICT arow = pa + i * k;
    float* EXPLAINTI_RESTRICT crow = pc + i * ldc;
    const float s = a_scales[i];
    const int32_t z = a_zps[i];
    for (int64_t jt = 0; jt < n; jt += kInt8ColTile) {
      const int64_t jn = std::min(kInt8ColTile, n - jt);
      for (int64_t jj = 0; jj < jn; ++jj) acc0[jj] = 0;
      int64_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        const int32_t x0 = arow[kk], x1 = arow[kk + 1];
        const int32_t x2 = arow[kk + 2], x3 = arow[kk + 3];
        const int8_t* EXPLAINTI_RESTRICT b0 = pb + kk * n + jt;
        const int8_t* EXPLAINTI_RESTRICT b1 = b0 + n;
        const int8_t* EXPLAINTI_RESTRICT b2 = b1 + n;
        const int8_t* EXPLAINTI_RESTRICT b3 = b2 + n;
        for (int64_t jj = 0; jj < jn; ++jj) {
          acc0[jj] += x0 * b0[jj] + x1 * b1[jj] + x2 * b2[jj] + x3 * b3[jj];
        }
      }
      for (; kk < k; ++kk) {
        const int32_t x = arow[kk];
        const int8_t* EXPLAINTI_RESTRICT br = pb + kk * n + jt;
        for (int64_t jj = 0; jj < jn; ++jj) acc0[jj] += x * br[jj];
      }
      for (int64_t jj = 0; jj < jn; ++jj) {
        const int64_t j = jt + jj;
        crow[j] = static_cast<float>(acc0[jj] - z * b_col_sums[j]) *
                  (s * b_scales[j]);
      }
    }
  }
}

// Single-output-row int8 kernel (m == 1), chunked over columns [jb, je).
void GemmVecChunkInt8(const int8_t* EXPLAINTI_RESTRICT pa, float a_scale,
                      int32_t a_zp, const int8_t* EXPLAINTI_RESTRICT pb,
                      const float* EXPLAINTI_RESTRICT b_scales,
                      const int32_t* EXPLAINTI_RESTRICT b_col_sums,
                      float* EXPLAINTI_RESTRICT pc, int64_t k, int64_t n,
                      int64_t jb, int64_t je) {
  for (int64_t j = jb; j < je; ++j) {
    int32_t acc = 0;
    int64_t kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      acc += static_cast<int32_t>(pa[kk]) * pb[kk * n + j];
      acc += static_cast<int32_t>(pa[kk + 1]) * pb[(kk + 1) * n + j];
      acc += static_cast<int32_t>(pa[kk + 2]) * pb[(kk + 2) * n + j];
      acc += static_cast<int32_t>(pa[kk + 3]) * pb[(kk + 3) * n + j];
    }
    for (; kk < k; ++kk) {
      acc += static_cast<int32_t>(pa[kk]) * pb[kk * n + j];
    }
    pc[j] = static_cast<float>(acc - a_zp * b_col_sums[j]) *
            (a_scale * b_scales[j]);
  }
}

#if EXPLAINTI_INT8_AVX2

// Largest reduction depth the AVX2 body handles with its stack-resident
// packed-activation buffer (4 rows x kInt8MaxK/2 int32 pairs = 32 KiB of
// stack). Deeper GEMMs fall back to the scalar body; serving weight
// matrices (d_model / ffn_dim reductions) sit far below this.
constexpr int64_t kInt8MaxK = 4096;

// AVX2 int8 chunk over output rows [ib, ie): up to 4 rows x 16 int32
// accumulator lanes, two k steps per _mm256_madd_epi16. Activations are
// sign-extended to int16 and packed into (a[2p], a[2p+1]) pairs once per
// row group; weights are widened per k-pair and interleaved with
// unpacklo/hi so madd contracts the pair against both k rows at once.
// int16 products are exact (|a*b| <= 128*127) and the int32 pair-sums and
// accumulation are exact, so this body is bit-identical to the scalar
// kernel at every shape.
//
// unpack{lo,hi}_epi16 interleave within 128-bit lanes, so the two
// accumulators hold columns [0..3, 8..11] and [4..7, 12..15] of the tile;
// the epilogue below maps lanes back to column order before the k tail
// and the dequant write.

// Scalar tile epilogue shared by the 4-row and tail-row paths: maps the
// two spilled accumulator registers (`ta` = columns [0..3, 8..11], `tb` =
// [4..7, 12..15]) back to column order, folds the odd-k tail, and writes
// the dequantized floats. No intrinsics, so it needs no target attribute.
inline void Int8TileEpilogue(const int32_t* EXPLAINTI_RESTRICT ta,
                             const int32_t* EXPLAINTI_RESTRICT tb,
                             const int8_t* EXPLAINTI_RESTRICT arow,
                             const int8_t* EXPLAINTI_RESTRICT pb,
                             const float* EXPLAINTI_RESTRICT b_scales,
                             const int32_t* EXPLAINTI_RESTRICT b_col_sums,
                             float* EXPLAINTI_RESTRICT crow, int64_t k,
                             int64_t k2, int64_t n, int64_t jt, float s,
                             int32_t z) {
  int32_t cols[16];
  for (int t = 0; t < 4; ++t) {
    cols[t] = ta[t];
    cols[4 + t] = tb[t];
    cols[8 + t] = ta[4 + t];
    cols[12 + t] = tb[4 + t];
  }
  for (int64_t kk = k2; kk < k; ++kk) {
    const int32_t x = arow[kk];
    const int8_t* EXPLAINTI_RESTRICT br = pb + kk * n + jt;
    for (int jj = 0; jj < 16; ++jj) cols[jj] += x * br[jj];
  }
  for (int jj = 0; jj < 16; ++jj) {
    const int64_t j = jt + jj;
    crow[j] =
        static_cast<float>(cols[jj] - z * b_col_sums[j]) * (s * b_scales[j]);
  }
}

__attribute__((target("avx2"))) void GemmRowsChunkInt8Avx2(
    const int8_t* EXPLAINTI_RESTRICT pa,
    const float* EXPLAINTI_RESTRICT a_scales,
    const int32_t* EXPLAINTI_RESTRICT a_zps,
    const int8_t* EXPLAINTI_RESTRICT pb,
    const float* EXPLAINTI_RESTRICT b_scales,
    const int32_t* EXPLAINTI_RESTRICT b_col_sums,
    float* EXPLAINTI_RESTRICT pc, int64_t ldc, int64_t k, int64_t n,
    int64_t ib, int64_t ie) {
  if (k > kInt8MaxK) {
    GemmRowsChunkInt8(pa, a_scales, a_zps, pb, b_scales, b_col_sums, pc, ldc,
                      k, n, ib, ie);
    return;
  }
  const int64_t kp = k / 2;        // Complete k pairs; odd tail is scalar.
  const int64_t n16 = n & ~int64_t{15};
  alignas(32) int32_t pairs[4][kInt8MaxK / 2];
  for (int64_t i = ib; i < ie; i += 4) {
    const int rows = static_cast<int>(std::min<int64_t>(4, ie - i));
    for (int r = 0; r < rows; ++r) {
      const int8_t* EXPLAINTI_RESTRICT arow = pa + (i + r) * k;
      for (int64_t p = 0; p < kp; ++p) {
        const uint32_t lo16 =
            static_cast<uint16_t>(static_cast<int16_t>(arow[2 * p]));
        const uint32_t hi16 =
            static_cast<uint16_t>(static_cast<int16_t>(arow[2 * p + 1]));
        pairs[r][p] = static_cast<int32_t>(lo16 | (hi16 << 16));
      }
    }
    if (rows == 4) {
      // Hot path: named accumulators so they live in ymm registers for
      // the whole k reduction (a runtime-bounded row loop would spill
      // them to the stack on every madd).
      for (int64_t jt = 0; jt < n16; jt += 16) {
        __m256i a0 = _mm256_setzero_si256(), b0acc = _mm256_setzero_si256();
        __m256i a1 = _mm256_setzero_si256(), b1acc = _mm256_setzero_si256();
        __m256i a2 = _mm256_setzero_si256(), b2acc = _mm256_setzero_si256();
        __m256i a3 = _mm256_setzero_si256(), b3acc = _mm256_setzero_si256();
        const int8_t* EXPLAINTI_RESTRICT bbase = pb + jt;
        for (int64_t p = 0; p < kp; ++p) {
          const int8_t* EXPLAINTI_RESTRICT b0 = bbase + (2 * p) * n;
          const __m256i b0w = _mm256_cvtepi8_epi16(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0)));
          const __m256i b1w = _mm256_cvtepi8_epi16(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + n)));
          const __m256i lo = _mm256_unpacklo_epi16(b0w, b1w);
          const __m256i hi = _mm256_unpackhi_epi16(b0w, b1w);
          const __m256i x0 = _mm256_set1_epi32(pairs[0][p]);
          a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(lo, x0));
          b0acc = _mm256_add_epi32(b0acc, _mm256_madd_epi16(hi, x0));
          const __m256i x1 = _mm256_set1_epi32(pairs[1][p]);
          a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(lo, x1));
          b1acc = _mm256_add_epi32(b1acc, _mm256_madd_epi16(hi, x1));
          const __m256i x2 = _mm256_set1_epi32(pairs[2][p]);
          a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(lo, x2));
          b2acc = _mm256_add_epi32(b2acc, _mm256_madd_epi16(hi, x2));
          const __m256i x3 = _mm256_set1_epi32(pairs[3][p]);
          a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(lo, x3));
          b3acc = _mm256_add_epi32(b3acc, _mm256_madd_epi16(hi, x3));
        }
        alignas(32) int32_t ta[4][8], tb[4][8];
        _mm256_store_si256(reinterpret_cast<__m256i*>(ta[0]), a0);
        _mm256_store_si256(reinterpret_cast<__m256i*>(tb[0]), b0acc);
        _mm256_store_si256(reinterpret_cast<__m256i*>(ta[1]), a1);
        _mm256_store_si256(reinterpret_cast<__m256i*>(tb[1]), b1acc);
        _mm256_store_si256(reinterpret_cast<__m256i*>(ta[2]), a2);
        _mm256_store_si256(reinterpret_cast<__m256i*>(tb[2]), b2acc);
        _mm256_store_si256(reinterpret_cast<__m256i*>(ta[3]), a3);
        _mm256_store_si256(reinterpret_cast<__m256i*>(tb[3]), b3acc);
        for (int r = 0; r < 4; ++r) {
          Int8TileEpilogue(ta[r], tb[r], pa + (i + r) * k, pb, b_scales,
                           b_col_sums, pc + (i + r) * ldc, k, kp * 2, n, jt,
                           a_scales[i + r], a_zps[i + r]);
        }
      }
    } else {
      for (int64_t jt = 0; jt < n16; jt += 16) {
        __m256i acc_a[4], acc_b[4];
        for (int r = 0; r < rows; ++r) {
          acc_a[r] = _mm256_setzero_si256();
          acc_b[r] = _mm256_setzero_si256();
        }
        const int8_t* EXPLAINTI_RESTRICT bbase = pb + jt;
        for (int64_t p = 0; p < kp; ++p) {
          const int8_t* EXPLAINTI_RESTRICT b0 = bbase + (2 * p) * n;
          const __m256i b0w = _mm256_cvtepi8_epi16(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0)));
          const __m256i b1w = _mm256_cvtepi8_epi16(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + n)));
          const __m256i lo = _mm256_unpacklo_epi16(b0w, b1w);
          const __m256i hi = _mm256_unpackhi_epi16(b0w, b1w);
          for (int r = 0; r < rows; ++r) {
            const __m256i x = _mm256_set1_epi32(pairs[r][p]);
            acc_a[r] = _mm256_add_epi32(acc_a[r], _mm256_madd_epi16(lo, x));
            acc_b[r] = _mm256_add_epi32(acc_b[r], _mm256_madd_epi16(hi, x));
          }
        }
        for (int r = 0; r < rows; ++r) {
          alignas(32) int32_t ta[8], tb[8];
          _mm256_store_si256(reinterpret_cast<__m256i*>(ta), acc_a[r]);
          _mm256_store_si256(reinterpret_cast<__m256i*>(tb), acc_b[r]);
          Int8TileEpilogue(ta, tb, pa + (i + r) * k, pb, b_scales, b_col_sums,
                           pc + (i + r) * ldc, k, kp * 2, n, jt,
                           a_scales[i + r], a_zps[i + r]);
        }
      }
    }
    for (int r = 0; r < rows; ++r) {  // Column tail [n16, n), scalar.
      const int8_t* EXPLAINTI_RESTRICT arow = pa + (i + r) * k;
      float* EXPLAINTI_RESTRICT crow = pc + (i + r) * ldc;
      const float s = a_scales[i + r];
      const int32_t z = a_zps[i + r];
      for (int64_t j = n16; j < n; ++j) {
        int32_t acc = 0;
        for (int64_t kk = 0; kk < k; ++kk) {
          acc += static_cast<int32_t>(arow[kk]) * pb[kk * n + j];
        }
        crow[j] = static_cast<float>(acc - z * b_col_sums[j]) *
                  (s * b_scales[j]);
      }
    }
  }
}

// AVX-512BW variant: identical structure to the AVX2 4-row body with the
// tile width doubled to 32 columns (zmm madd). Same exact integer math,
// so still bit-identical to the scalar kernel. zmm unpack{lo,hi}_epi16
// interleave per 128-bit lane, so lane L of the two accumulators holds
// columns [L*8 .. L*8+3] and [L*8+4 .. L*8+7] of the tile.
inline void Int8TileEpilogue32(const int32_t* EXPLAINTI_RESTRICT ta,
                               const int32_t* EXPLAINTI_RESTRICT tb,
                               const int8_t* EXPLAINTI_RESTRICT arow,
                               const int8_t* EXPLAINTI_RESTRICT pb,
                               const float* EXPLAINTI_RESTRICT b_scales,
                               const int32_t* EXPLAINTI_RESTRICT b_col_sums,
                               float* EXPLAINTI_RESTRICT crow, int64_t k,
                               int64_t k2, int64_t n, int64_t jt, float s,
                               int32_t z) {
  int32_t cols[32];
  for (int lane = 0; lane < 4; ++lane) {
    for (int t = 0; t < 4; ++t) {
      cols[lane * 8 + t] = ta[lane * 4 + t];
      cols[lane * 8 + 4 + t] = tb[lane * 4 + t];
    }
  }
  for (int64_t kk = k2; kk < k; ++kk) {
    const int32_t x = arow[kk];
    const int8_t* EXPLAINTI_RESTRICT br = pb + kk * n + jt;
    for (int jj = 0; jj < 32; ++jj) cols[jj] += x * br[jj];
  }
  for (int jj = 0; jj < 32; ++jj) {
    const int64_t j = jt + jj;
    crow[j] =
        static_cast<float>(cols[jj] - z * b_col_sums[j]) * (s * b_scales[j]);
  }
}

__attribute__((target("avx512f,avx512bw"))) void GemmRowsChunkInt8Avx512(
    const int8_t* EXPLAINTI_RESTRICT pa,
    const float* EXPLAINTI_RESTRICT a_scales,
    const int32_t* EXPLAINTI_RESTRICT a_zps,
    const int8_t* EXPLAINTI_RESTRICT pb,
    const float* EXPLAINTI_RESTRICT b_scales,
    const int32_t* EXPLAINTI_RESTRICT b_col_sums,
    float* EXPLAINTI_RESTRICT pc, int64_t ldc, int64_t k, int64_t n,
    int64_t ib, int64_t ie) {
  if (k > kInt8MaxK) {
    GemmRowsChunkInt8(pa, a_scales, a_zps, pb, b_scales, b_col_sums, pc, ldc,
                      k, n, ib, ie);
    return;
  }
  const int64_t kp = k / 2;
  const int64_t n32 = n & ~int64_t{31};
  alignas(64) int32_t pairs[4][kInt8MaxK / 2];
  int64_t i = ib;
  for (; i + 4 <= ie; i += 4) {
    for (int r = 0; r < 4; ++r) {
      const int8_t* EXPLAINTI_RESTRICT arow = pa + (i + r) * k;
      for (int64_t p = 0; p < kp; ++p) {
        const uint32_t lo16 =
            static_cast<uint16_t>(static_cast<int16_t>(arow[2 * p]));
        const uint32_t hi16 =
            static_cast<uint16_t>(static_cast<int16_t>(arow[2 * p + 1]));
        pairs[r][p] = static_cast<int32_t>(lo16 | (hi16 << 16));
      }
    }
    for (int64_t jt = 0; jt < n32; jt += 32) {
      __m512i a0 = _mm512_setzero_si512(), b0acc = _mm512_setzero_si512();
      __m512i a1 = _mm512_setzero_si512(), b1acc = _mm512_setzero_si512();
      __m512i a2 = _mm512_setzero_si512(), b2acc = _mm512_setzero_si512();
      __m512i a3 = _mm512_setzero_si512(), b3acc = _mm512_setzero_si512();
      const int8_t* EXPLAINTI_RESTRICT bbase = pb + jt;
      for (int64_t p = 0; p < kp; ++p) {
        const int8_t* EXPLAINTI_RESTRICT b0 = bbase + (2 * p) * n;
        const __m512i b0w = _mm512_cvtepi8_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b0)));
        const __m512i b1w = _mm512_cvtepi8_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b0 + n)));
        const __m512i lo = _mm512_unpacklo_epi16(b0w, b1w);
        const __m512i hi = _mm512_unpackhi_epi16(b0w, b1w);
        const __m512i x0 = _mm512_set1_epi32(pairs[0][p]);
        a0 = _mm512_add_epi32(a0, _mm512_madd_epi16(lo, x0));
        b0acc = _mm512_add_epi32(b0acc, _mm512_madd_epi16(hi, x0));
        const __m512i x1 = _mm512_set1_epi32(pairs[1][p]);
        a1 = _mm512_add_epi32(a1, _mm512_madd_epi16(lo, x1));
        b1acc = _mm512_add_epi32(b1acc, _mm512_madd_epi16(hi, x1));
        const __m512i x2 = _mm512_set1_epi32(pairs[2][p]);
        a2 = _mm512_add_epi32(a2, _mm512_madd_epi16(lo, x2));
        b2acc = _mm512_add_epi32(b2acc, _mm512_madd_epi16(hi, x2));
        const __m512i x3 = _mm512_set1_epi32(pairs[3][p]);
        a3 = _mm512_add_epi32(a3, _mm512_madd_epi16(lo, x3));
        b3acc = _mm512_add_epi32(b3acc, _mm512_madd_epi16(hi, x3));
      }
      alignas(64) int32_t ta[4][16], tb[4][16];
      _mm512_store_si512(reinterpret_cast<void*>(ta[0]), a0);
      _mm512_store_si512(reinterpret_cast<void*>(tb[0]), b0acc);
      _mm512_store_si512(reinterpret_cast<void*>(ta[1]), a1);
      _mm512_store_si512(reinterpret_cast<void*>(tb[1]), b1acc);
      _mm512_store_si512(reinterpret_cast<void*>(ta[2]), a2);
      _mm512_store_si512(reinterpret_cast<void*>(tb[2]), b2acc);
      _mm512_store_si512(reinterpret_cast<void*>(ta[3]), a3);
      _mm512_store_si512(reinterpret_cast<void*>(tb[3]), b3acc);
      for (int r = 0; r < 4; ++r) {
        Int8TileEpilogue32(ta[r], tb[r], pa + (i + r) * k, pb, b_scales,
                           b_col_sums, pc + (i + r) * ldc, k, kp * 2, n, jt,
                           a_scales[i + r], a_zps[i + r]);
      }
    }
    for (int r = 0; r < 4; ++r) {  // Column tail [n32, n), scalar.
      const int8_t* EXPLAINTI_RESTRICT arow = pa + (i + r) * k;
      float* EXPLAINTI_RESTRICT crow = pc + (i + r) * ldc;
      const float s = a_scales[i + r];
      const int32_t z = a_zps[i + r];
      for (int64_t j = n32; j < n; ++j) {
        int32_t acc = 0;
        for (int64_t kk = 0; kk < k; ++kk) {
          acc += static_cast<int32_t>(arow[kk]) * pb[kk * n + j];
        }
        crow[j] = static_cast<float>(acc - z * b_col_sums[j]) *
                  (s * b_scales[j]);
      }
    }
  }
  if (i < ie) {  // Trailing 1-3 rows: the AVX2 body handles short groups.
    GemmRowsChunkInt8Avx2(pa, a_scales, a_zps, pb, b_scales, b_col_sums, pc,
                          ldc, k, n, i, ie);
  }
}

#endif  // EXPLAINTI_INT8_AVX2

using Int8RowsChunkFn = void (*)(const int8_t*, const float*, const int32_t*,
                                 const int8_t*, const float*, const int32_t*,
                                 float*, int64_t, int64_t, int64_t, int64_t,
                                 int64_t);

Int8RowsChunkFn ResolveInt8RowsChunk() {
#if EXPLAINTI_INT8_AVX2
  if (__builtin_cpu_supports("avx512bw")) return GemmRowsChunkInt8Avx512;
  if (__builtin_cpu_supports("avx2")) return GemmRowsChunkInt8Avx2;
#endif
  return GemmRowsChunkInt8;
}

// Resolved once at startup; both bodies produce identical bits.
const Int8RowsChunkFn kInt8RowsChunk = ResolveInt8RowsChunk();

}  // namespace

void ServingGemmInt8(const int8_t* a, const float* a_scales,
                     const int32_t* a_zero_points, const int8_t* b,
                     const float* b_scales, const int32_t* b_col_sums,
                     float* c, int64_t ldc, int64_t m, int64_t k, int64_t n) {
  // Same chunking policy as ServingGemm: disjoint output rows (or, for a
  // single row, disjoint columns), with the direct single-chunk call
  // keeping a warmed-up single-threaded plan execution at zero
  // allocations. The row chunk's int32 accumulators are a fixed-size
  // stack tile, so the int8 path allocates nothing at any thread count.
  if (m > 1) {
    const int64_t grain = util::GrainForCost(k * n);
    if (m <= grain || util::GlobalThreadPool().num_threads() <= 1) {
      kInt8RowsChunk(a, a_scales, a_zero_points, b, b_scales, b_col_sums,
                        c, ldc, k, n, 0, m);
      return;
    }
    util::ParallelFor(0, m, grain, [&](int64_t ib, int64_t ie) {
      kInt8RowsChunk(a, a_scales, a_zero_points, b, b_scales, b_col_sums,
                        c, ldc, k, n, ib, ie);
    });
  } else {
    const int64_t grain = util::GrainForCost(k);
    if (n <= grain || util::GlobalThreadPool().num_threads() <= 1) {
      GemmVecChunkInt8(a, a_scales[0], a_zero_points[0], b, b_scales,
                       b_col_sums, c, k, n, 0, n);
      return;
    }
    util::ParallelFor(0, n, grain, [&](int64_t jb, int64_t je) {
      GemmVecChunkInt8(a, a_scales[0], a_zero_points[0], b, b_scales,
                       b_col_sums, c, k, n, jb, je);
    });
  }
}

void EmbedLayerNormRows(const float* token_table, const float* position_table,
                        const float* segment_table, const int* ids,
                        const int* segment_ids, float* out, int64_t rows,
                        int64_t cols, const float* gamma, const float* beta,
                        float eps) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* EXPLAINTI_RESTRICT tok =
        token_table + static_cast<int64_t>(ids[r]) * cols;
    const float* EXPLAINTI_RESTRICT pos = position_table + r * cols;
    float* EXPLAINTI_RESTRICT row = out + r * cols;
    if (segment_table != nullptr) {
      const float* EXPLAINTI_RESTRICT seg =
          segment_table + static_cast<int64_t>(segment_ids[r]) * cols;
      // Left-associative (token + position) + segment — the order the
      // unfused Add chain used.
      for (int64_t j = 0; j < cols; ++j) row[j] = (tok[j] + pos[j]) + seg[j];
    } else {
      for (int64_t j = 0; j < cols; ++j) row[j] = tok[j] + pos[j];
    }
    LayerNormRowInPlace(row, cols, gamma, beta, eps);
  }
}

}  // namespace explainti::tensor
