#ifndef EXPLAINTI_TENSOR_GRADCHECK_H_
#define EXPLAINTI_TENSOR_GRADCHECK_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace explainti::tensor {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  /// Largest |analytic - numeric| over all checked entries.
  float max_abs_error = 0.0f;
  /// Largest relative error max(|a-n| / max(|a|,|n|,1e-3)).
  float max_rel_error = 0.0f;
  /// Number of gradient entries compared.
  int64_t entries_checked = 0;
};

/// Verifies the analytic gradients of `loss_fn` against central finite
/// differences.
///
/// `loss_fn` must rebuild the computation graph from the *current values*
/// of `inputs` and return a scalar loss tensor. The checker perturbs each
/// input entry by ±`epsilon`, re-evaluates the loss, and compares the
/// numeric slope with the gradient produced by Backward(). Used by the
/// tensor test suite to certify every op's backward implementation.
GradCheckResult GradCheck(
    const std::function<Tensor()>& loss_fn, std::vector<Tensor> inputs,
    float epsilon = 1e-3f);

}  // namespace explainti::tensor

#endif  // EXPLAINTI_TENSOR_GRADCHECK_H_
