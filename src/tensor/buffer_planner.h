#ifndef EXPLAINTI_TENSOR_BUFFER_PLANNER_H_
#define EXPLAINTI_TENSOR_BUFFER_PLANNER_H_

#include <cstdint>
#include <vector>

namespace explainti::tensor {

/// One logical intermediate of a linearized plan: its element count and
/// width, and its liveness interval over the instruction stream.
/// `first_def` is the index of the instruction that writes it;
/// `last_use` the index of the last instruction reading it (inclusive).
/// A buffer that must survive the whole program (a plan output) simply
/// sets `last_use` past the last instruction.
///
/// Buffers are planned at byte granularity: `elem_bytes` defaults to 4
/// (fp32, the historical single-dtype case), and mixed-precision plans
/// set 1 for int8 quantization scratch so narrow buffers pack into the
/// same arena as the fp32 activations.
struct PlannedBuffer {
  int64_t size = 0;        ///< Element count.
  int32_t first_def = 0;
  int32_t last_use = 0;
  int64_t elem_bytes = 4;  ///< Bytes per element (4 = fp32, 1 = int8).
};

/// Fixed byte offsets for every logical buffer inside one flat arena.
struct BufferPlan {
  std::vector<int64_t> offsets;  ///< Bytes; parallel to the input buffers.
  int64_t arena_bytes = 0;       ///< Total bytes required.
};

/// Assigns each logical buffer a fixed byte offset in a single flat
/// arena, reusing storage between buffers whose liveness intervals do
/// not overlap. Greedy first-fit in declaration order: deterministic,
/// and on the encoder's ping-pong access pattern within ~10% of optimal
/// — the point is that the plan executor never allocates, not a perfect
/// packing. Offsets are aligned to `alignment` bytes (default 64 == one
/// cache line) so vectorized kernels start aligned regardless of the
/// element widths planned before them.
BufferPlan PlanBufferOffsets(const std::vector<PlannedBuffer>& buffers,
                             int64_t alignment = 64);

}  // namespace explainti::tensor

#endif  // EXPLAINTI_TENSOR_BUFFER_PLANNER_H_
