#ifndef EXPLAINTI_TENSOR_BUFFER_PLANNER_H_
#define EXPLAINTI_TENSOR_BUFFER_PLANNER_H_

#include <cstdint>
#include <vector>

namespace explainti::tensor {

/// One logical intermediate of a linearized plan: its float count and its
/// liveness interval over the instruction stream. `first_def` is the
/// index of the instruction that writes it; `last_use` the index of the
/// last instruction reading it (inclusive). A buffer that must survive
/// the whole program (a plan output) simply sets `last_use` past the last
/// instruction.
struct PlannedBuffer {
  int64_t size = 0;
  int32_t first_def = 0;
  int32_t last_use = 0;
};

/// Fixed offsets for every logical buffer inside one flat arena.
struct BufferPlan {
  std::vector<int64_t> offsets;  ///< Parallel to the input buffers.
  int64_t arena_size = 0;        ///< Total floats required.
};

/// Assigns each logical buffer a fixed offset in a single flat arena,
/// reusing storage between buffers whose liveness intervals do not
/// overlap. Greedy first-fit in declaration order: deterministic, and on
/// the encoder's ping-pong access pattern within ~10% of optimal — the
/// point is that the plan executor never allocates, not a perfect
/// packing. Offsets are aligned to `alignment` floats (default 16 ==
/// one 64-byte cache line) so vectorized kernels start aligned.
BufferPlan PlanBufferOffsets(const std::vector<PlannedBuffer>& buffers,
                             int64_t alignment = 16);

}  // namespace explainti::tensor

#endif  // EXPLAINTI_TENSOR_BUFFER_PLANNER_H_
