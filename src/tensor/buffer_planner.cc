#include "tensor/buffer_planner.h"

#include <algorithm>

#include "util/logging.h"

namespace explainti::tensor {

namespace {

int64_t AlignUp(int64_t v, int64_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

}  // namespace

BufferPlan PlanBufferOffsets(const std::vector<PlannedBuffer>& buffers,
                             int64_t alignment) {
  CHECK_GT(alignment, 0);
  BufferPlan plan;
  plan.offsets.assign(buffers.size(), 0);

  // Greedy first-fit: place buffers in declaration order; a candidate
  // offset is valid when the new extent overlaps no already-placed buffer
  // whose liveness interval intersects this one. O(n^2) placements with
  // O(n) conflict scans — plans have a few dozen intermediates, so
  // clarity beats an interval tree here.
  struct Placed {
    int64_t begin, end;       // Arena extent [begin, end).
    int32_t first, last;      // Liveness (inclusive).
  };
  std::vector<Placed> placed;
  placed.reserve(buffers.size());

  for (size_t i = 0; i < buffers.size(); ++i) {
    const PlannedBuffer& buf = buffers[i];
    CHECK_GT(buf.size, 0) << "buffer " << i << " has no extent";
    CHECK_GT(buf.elem_bytes, 0) << "buffer " << i << " has no width";
    CHECK_LE(buf.first_def, buf.last_use) << "buffer " << i << " dies "
                                             "before it is defined";
    const int64_t size = AlignUp(buf.size * buf.elem_bytes, alignment);

    // Candidate offsets: 0 and the end of every live-conflicting placed
    // buffer. The smallest candidate where the extent is conflict-free
    // wins.
    std::vector<int64_t> candidates;
    candidates.push_back(0);
    for (const Placed& p : placed) {
      if (p.last < buf.first_def || p.first > buf.last_use) continue;
      candidates.push_back(p.end);
    }
    std::sort(candidates.begin(), candidates.end());

    int64_t offset = -1;
    for (int64_t cand : candidates) {
      bool conflict = false;
      for (const Placed& p : placed) {
        const bool lifetimes_overlap =
            !(p.last < buf.first_def || p.first > buf.last_use);
        const bool extents_overlap = cand < p.end && p.begin < cand + size;
        if (lifetimes_overlap && extents_overlap) {
          conflict = true;
          break;
        }
      }
      if (!conflict) {
        offset = cand;
        break;
      }
    }
    CHECK_GE(offset, 0);  // Candidate list always contains a free slot.

    plan.offsets[i] = offset;
    placed.push_back(
        {offset, offset + size, buf.first_def, buf.last_use});
    plan.arena_bytes = std::max(plan.arena_bytes, offset + size);
  }
  return plan;
}

}  // namespace explainti::tensor
