#include "tensor/workspace.h"

#include <bit>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

namespace explainti::tensor {

namespace {

using internal::Node;

// Buffers are pooled in power-of-two capacity buckets; bucket b holds
// vectors with capacity 2^b. Caps bound a workspace's footprint: anything
// beyond them falls back to the regular heap.
constexpr int kNumBuckets = 31;
constexpr size_t kMaxBuffersPerBucket = 256;
constexpr size_t kMaxPooledNodeBlocks = 4096;

// Smallest b with (1 << b) >= n, for n >= 1.
int BucketForAtLeast(size_t n) {
  return n <= 1 ? 0 : static_cast<int>(std::bit_width(n - 1));
}

// Largest b with (1 << b) <= cap, for cap >= 1.
int BucketForCapacity(size_t cap) {
  return static_cast<int>(std::bit_width(cap)) - 1;
}

class Workspace;

// The owning thread's workspace, registered for the workspace's lifetime.
// Deleters compare against this to decide whether a node being destroyed
// may return its storage to the pool: only same-thread releases recycle;
// cross-thread (or post-thread-exit) releases free to the heap instead.
thread_local Workspace* tls_workspace = nullptr;
thread_local bool tls_inference_mode = false;

/// Per-thread recycling arena for inference-mode tensors. Never touched by
/// any thread other than its owner (see tls_workspace above), so it needs
/// no locking.
class Workspace {
 public:
  Workspace() { tls_workspace = this; }

  ~Workspace() {
    tls_workspace = nullptr;
    for (void* p : node_blocks_) ::operator delete(p);
  }

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  WorkspaceStats stats;

  /// Returns a vector with capacity >= 2^ceil(log2(n)) when pooled. The
  /// caller sets the size; pooled vectors keep whatever size they were
  /// released with, so a shrinking resize() does no element writes.
  std::vector<float> AcquireBuffer(size_t n) {
    ++stats.buffer_acquires;
    const int b = BucketForAtLeast(n);
    if (b < kNumBuckets && !buckets_[b].empty()) {
      std::vector<float> buf = std::move(buckets_[b].back());
      buckets_[b].pop_back();
      return buf;
    }
    ++stats.buffer_misses;
    std::vector<float> buf;
    if (b < kNumBuckets) buf.reserve(size_t{1} << b);
    return buf;
  }

  void ReleaseBuffer(std::vector<float>&& buf) {
    if (buf.capacity() == 0) return;
    const int b = BucketForCapacity(buf.capacity());
    if (b < kNumBuckets && buckets_[b].size() < kMaxBuffersPerBucket) {
      buckets_[b].push_back(std::move(buf));
    }
    // Else: dropped; the vector's destructor frees it.
  }

  /// Fixed-size block pool for the allocate_shared control-block+Node
  /// allocation. All requests have the same size (one type flows through);
  /// a different size is served by the heap.
  void* AcquireNodeBlock(size_t bytes) {
    ++stats.node_acquires;
    if (bytes == node_block_bytes_ && !node_blocks_.empty()) {
      void* p = node_blocks_.back();
      node_blocks_.pop_back();
      return p;
    }
    ++stats.node_misses;
    if (node_block_bytes_ == 0) node_block_bytes_ = bytes;
    return ::operator new(bytes);
  }

  void ReleaseNodeBlock(void* p, size_t bytes) {
    if (bytes == node_block_bytes_ &&
        node_blocks_.size() < kMaxPooledNodeBlocks) {
      node_blocks_.push_back(p);
      return;
    }
    ::operator delete(p);
  }

 private:
  std::vector<std::vector<float>> buckets_[kNumBuckets];
  std::vector<void*> node_blocks_;
  size_t node_block_bytes_ = 0;
};

Workspace& ThisWorkspace() {
  static thread_local Workspace workspace;
  return workspace;
}

/// Allocator handed to allocate_shared so pooled nodes recycle both their
/// control block and, via the Node-specific destroy(), their data buffer.
template <typename T>
struct PoolAlloc {
  using value_type = T;

  Workspace* ws;

  explicit PoolAlloc(Workspace* w) : ws(w) {}
  template <typename U>
  PoolAlloc(const PoolAlloc<U>& other) : ws(other.ws) {}  // NOLINT

  T* allocate(size_t count) {
    return static_cast<T*>(ws->AcquireNodeBlock(count * sizeof(T)));
  }

  void deallocate(T* p, size_t count) {
    if (tls_workspace == ws) {
      ws->ReleaseNodeBlock(p, count * sizeof(T));
    } else {
      ::operator delete(p);
    }
  }

  /// Steals the node's data buffer back into the pool before destruction
  /// (only when destruction happens on the owning thread).
  void destroy(Node* p) {
    if (tls_workspace == ws) ws->ReleaseBuffer(std::move(p->data));
    p->~Node();
  }
  template <typename U>
  void destroy(U* p) {
    p->~U();
  }

  template <typename U>
  bool operator==(const PoolAlloc<U>& other) const {
    return ws == other.ws;
  }
};

}  // namespace

InferenceModeGuard::InferenceModeGuard() : previous_(tls_inference_mode) {
  tls_inference_mode = true;
}

InferenceModeGuard::~InferenceModeGuard() { tls_inference_mode = previous_; }

bool InferenceModeActive() { return tls_inference_mode; }

WorkspaceStats ThisThreadWorkspaceStats() { return ThisWorkspace().stats; }

ScratchBuffer::ScratchBuffer(size_t n) : buf_(ThisWorkspace().AcquireBuffer(n)) {
  // A shrinking resize writes nothing; a growing one value-fills only the
  // tail beyond the pooled vector's previous size. Steady state (same
  // plan, warmed pool) is a same-size no-op.
  buf_.resize(n);
}

ScratchBuffer::~ScratchBuffer() { ThisWorkspace().ReleaseBuffer(std::move(buf_)); }

namespace internal {

std::shared_ptr<Node> AllocNode(Shape shape, bool zero_init) {
  const size_t n = static_cast<size_t>(NumElements(shape));
  if (!tls_inference_mode) {
    // Historical tape-mode behaviour, byte-for-byte: fresh heap node with
    // zero-filled data (zero_init is an inference-only optimisation).
    auto node = std::make_shared<Node>();
    node->shape = std::move(shape);
    node->data.assign(n, 0.0f);
    return node;
  }
  Workspace& ws = ThisWorkspace();
  auto node = std::allocate_shared<Node>(PoolAlloc<Node>(&ws));
  node->shape = std::move(shape);
  node->data = ws.AcquireBuffer(n);
  if (zero_init) {
    node->data.assign(n, 0.0f);
  } else {
    // Ops that overwrite every output element skip the zero-fill. A
    // shrinking resize writes nothing; a growing one value-fills only the
    // tail beyond the pooled vector's previous size.
    node->data.resize(n);
  }
  return node;
}

}  // namespace internal

}  // namespace explainti::tensor
