#include "tensor/gradcheck.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace explainti::tensor {

GradCheckResult GradCheck(const std::function<Tensor()>& loss_fn,
                          std::vector<Tensor> inputs, float epsilon) {
  for (Tensor& input : inputs) {
    CHECK(input.defined() && input.requires_grad())
        << "GradCheck inputs must require gradients";
    input.ZeroGrad();
  }

  // Analytic pass.
  Tensor loss = loss_fn();
  CHECK_EQ(loss.size(), 1) << "GradCheck loss must be scalar";
  loss.Backward();

  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (Tensor& input : inputs) {
    analytic.emplace_back(input.grad(), input.grad() + input.size());
  }

  GradCheckResult result;
  for (size_t t = 0; t < inputs.size(); ++t) {
    Tensor& input = inputs[t];
    float* values = input.data();
    for (int64_t i = 0; i < input.size(); ++i) {
      const float saved = values[i];
      values[i] = saved + epsilon;
      const float plus = loss_fn().item();
      values[i] = saved - epsilon;
      const float minus = loss_fn().item();
      values[i] = saved;
      const float numeric = (plus - minus) / (2.0f * epsilon);
      const float a = analytic[t][static_cast<size_t>(i)];
      const float abs_err = std::abs(a - numeric);
      const float rel_err =
          abs_err / std::max({std::abs(a), std::abs(numeric), 1e-3f});
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      ++result.entries_checked;
    }
  }
  return result;
}

}  // namespace explainti::tensor
