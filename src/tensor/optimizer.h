#ifndef EXPLAINTI_TENSOR_OPTIMIZER_H_
#define EXPLAINTI_TENSOR_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace explainti::tensor {

/// Linearly decreasing learning-rate schedule with warmup, as used by the
/// paper ("learning rate is set to 5e-5 with a linearly decreasing
/// learning rate schedule").
class LinearSchedule {
 public:
  /// `total_steps` is the number of optimiser steps over the whole run;
  /// `warmup_steps` ramp linearly from 0 to `base_lr`, after which the rate
  /// decays linearly to 0 at `total_steps`.
  LinearSchedule(float base_lr, int64_t total_steps, int64_t warmup_steps = 0);

  /// Learning rate at optimiser step `step` (0-based).
  float LearningRate(int64_t step) const;

 private:
  float base_lr_;
  int64_t total_steps_;
  int64_t warmup_steps_;
};

/// Configuration for AdamW.
struct AdamWOptions {
  float learning_rate = 5e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
  /// Gradient clipping by global L2 norm; <= 0 disables.
  float max_grad_norm = 1.0f;
};

/// AdamW (decoupled weight decay) over a fixed set of parameter tensors.
///
/// Parameters are leaves with `requires_grad() == true`; the trainer calls
/// `ZeroGrad()`, runs forward/backward (possibly accumulating several
/// samples), then `Step()`.
class AdamW {
 public:
  AdamW(std::vector<Tensor> parameters, AdamWOptions options);

  /// Zeroes every parameter's gradient.
  void ZeroGrad();

  /// Applies one AdamW update using the current gradients and
  /// `learning_rate` (pass the schedule's value; falls back to the
  /// configured rate when negative).
  void Step(float learning_rate = -1.0f);

  int64_t step_count() const { return step_count_; }
  const std::vector<Tensor>& parameters() const { return parameters_; }

 private:
  std::vector<Tensor> parameters_;
  AdamWOptions options_;
  std::vector<std::vector<float>> m_;  // First-moment estimates.
  std::vector<std::vector<float>> v_;  // Second-moment estimates.
  int64_t step_count_ = 0;
};

/// Plain SGD (used by the lightweight baselines and the FRESH probe).
class Sgd {
 public:
  Sgd(std::vector<Tensor> parameters, float learning_rate);

  void ZeroGrad();
  void Step(float learning_rate = -1.0f);

 private:
  std::vector<Tensor> parameters_;
  float learning_rate_;
};

}  // namespace explainti::tensor

#endif  // EXPLAINTI_TENSOR_OPTIMIZER_H_
