#ifndef EXPLAINTI_TENSOR_OPTIMIZER_H_
#define EXPLAINTI_TENSOR_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace explainti::tensor {

/// Linearly decreasing learning-rate schedule with warmup, as used by the
/// paper ("learning rate is set to 5e-5 with a linearly decreasing
/// learning rate schedule").
class LinearSchedule {
 public:
  /// `total_steps` is the number of optimiser steps over the whole run;
  /// `warmup_steps` ramp linearly from 0 to `base_lr`, after which the rate
  /// decays linearly to 0 at `total_steps`.
  LinearSchedule(float base_lr, int64_t total_steps, int64_t warmup_steps = 0);

  /// Learning rate at optimiser step `step` (0-based).
  float LearningRate(int64_t step) const;

 private:
  float base_lr_;
  int64_t total_steps_;
  int64_t warmup_steps_;
};

/// Configuration for AdamW.
struct AdamWOptions {
  float learning_rate = 5e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
  /// Gradient clipping by global L2 norm; <= 0 disables.
  float max_grad_norm = 1.0f;
};

/// AdamW (decoupled weight decay) over a fixed set of parameter tensors.
///
/// Parameters are leaves with `requires_grad() == true`; the trainer calls
/// `ZeroGrad()`, runs forward/backward (possibly accumulating several
/// samples), then `Step()`.
///
/// Steps are NaN-safe: when any accumulated gradient is non-finite the
/// update is skipped entirely — weights and moment estimates stay
/// untouched — and `Step()` returns false (`skipped_steps()` counts them).
/// Trainers detect the skip and apply their own recovery policy (see
/// `ExplainTiModel::Fit()`'s skip/rollback loop).
class AdamW {
 public:
  AdamW(std::vector<Tensor> parameters, AdamWOptions options);

  /// Zeroes every parameter's gradient.
  void ZeroGrad();

  /// Applies one AdamW update using the current gradients and
  /// `learning_rate` (pass the schedule's value; falls back to the
  /// configured rate when negative). Returns false — without touching
  /// weights or moments — when any gradient is non-finite.
  bool Step(float learning_rate = -1.0f);

  /// True when every gradient buffer currently holds only finite values.
  bool GradientsAreFinite() const;

  /// Zeroes the moment estimates and the step counter. Called after a
  /// parameter rollback: stale moments would otherwise re-apply the very
  /// update direction that diverged.
  void ResetState();

  /// Restores moment estimates and step counter saved from an earlier run
  /// (checkpoint resume). Shapes must match the parameter set.
  util::Status SetState(std::vector<std::vector<float>> m,
                        std::vector<std::vector<float>> v,
                        int64_t step_count);

  int64_t step_count() const { return step_count_; }
  int64_t skipped_steps() const { return skipped_steps_; }
  const std::vector<Tensor>& parameters() const { return parameters_; }
  /// First/second moment estimates, indexed like `parameters()`; exposed
  /// for checkpointing.
  const std::vector<std::vector<float>>& first_moments() const { return m_; }
  const std::vector<std::vector<float>>& second_moments() const {
    return v_;
  }

 private:
  std::vector<Tensor> parameters_;
  AdamWOptions options_;
  std::vector<std::vector<float>> m_;  // First-moment estimates.
  std::vector<std::vector<float>> v_;  // Second-moment estimates.
  int64_t step_count_ = 0;
  int64_t skipped_steps_ = 0;
};

/// Plain SGD (used by the lightweight baselines and the FRESH probe).
/// Shares AdamW's NaN-safety: a non-finite gradient skips the update.
class Sgd {
 public:
  Sgd(std::vector<Tensor> parameters, float learning_rate);

  void ZeroGrad();
  bool Step(float learning_rate = -1.0f);

 private:
  std::vector<Tensor> parameters_;
  float learning_rate_;
};

}  // namespace explainti::tensor

#endif  // EXPLAINTI_TENSOR_OPTIMIZER_H_
