#ifndef EXPLAINTI_TENSOR_TENSOR_OPS_H_
#define EXPLAINTI_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace explainti::tensor {

// Every function below is differentiable: it records a backward closure on
// the returned tensor so that Tensor::Backward() propagates gradients to
// any input with requires_grad set (directly or transitively).

// -- Elementwise / binary ------------------------------------------------

/// a + b. Shapes must match, except that `b` may be a rank-1 tensor whose
/// length equals a's last dimension (bias / row-broadcast add).
Tensor Add(const Tensor& a, const Tensor& b);

/// a - b (same shapes).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise a * b. Shapes must match, except that `b` may be a rank-1
/// tensor broadcast over a's last dimension.
Tensor Mul(const Tensor& a, const Tensor& b);

/// a * c for a scalar constant c.
Tensor Scale(const Tensor& a, float c);

/// a + c for a scalar constant c.
Tensor AddScalar(const Tensor& a, float c);

// -- Linear algebra ------------------------------------------------------

/// Matrix product of a [m,k] and b [k,n] -> [m,n]. Rank-1 operands are
/// treated as [1,k] (a) or [k,1] (b) and the unit dimension is squeezed
/// from the result.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor Transpose(const Tensor& a);

/// Dot product of two equal-length rank-1 tensors -> scalar.
Tensor Dot(const Tensor& a, const Tensor& b);

/// x / max(|x|_2, eps) for a rank-1 tensor (used by cosine similarity).
Tensor L2Normalize(const Tensor& x, float eps = 1e-8f);

// -- Shape ----------------------------------------------------------------

/// View with a new shape (same element count). Copies data; gradients flow.
Tensor Reshape(const Tensor& a, const Shape& shape);

/// Rows [start, end) of a rank-2 tensor -> [end-start, n].
Tensor SliceRows(const Tensor& a, int64_t start, int64_t end);

/// Row `index` of a rank-2 tensor -> rank-1 [n].
Tensor Row(const Tensor& a, int64_t index);

/// Columns [start, end) of a rank-2 tensor -> [m, end-start]. (Per-head
/// views in multi-head attention.)
Tensor SliceCols(const Tensor& a, int64_t start, int64_t end);

/// Concatenates rank-2 tensors along dim 1 (all must share the row count).
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Concatenates two rank-1 tensors -> [p+q].
Tensor Concat(const Tensor& a, const Tensor& b);

/// Concatenates rank-2 tensors along dim 0 (all must share the column
/// count).
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Stacks rank-1 tensors of equal length into a rank-2 [m, n] tensor.
Tensor Stack(const std::vector<Tensor>& rows);

// -- Reductions -----------------------------------------------------------

/// Mean over dim 0 of a rank-2 tensor -> [n]. (Token-wise mean pooling.)
Tensor MeanRows(const Tensor& a);

/// Sum of all elements -> scalar.
Tensor Sum(const Tensor& a);

/// Mean of all elements -> scalar.
Tensor Mean(const Tensor& a);

// -- Activations ------------------------------------------------------------

Tensor Relu(const Tensor& a);
/// GELU with the tanh approximation (as in BERT).
Tensor Gelu(const Tensor& a);
Tensor TanhOp(const Tensor& a);
Tensor SigmoidOp(const Tensor& a);

/// Softmax over the last dimension.
Tensor Softmax(const Tensor& a);

/// Log-softmax over the last dimension (numerically stable).
Tensor LogSoftmax(const Tensor& a);

// -- Normalisation ----------------------------------------------------------

/// Layer normalisation over the last dimension with learnable gain/bias.
/// `gamma` and `beta` are rank-1 of length a.dim(-1).
Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

// -- Embeddings ---------------------------------------------------------------

/// Gathers rows of `table` [V, d] at `ids` -> [len(ids), d]. Backward
/// scatter-adds into the table rows.
Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& ids);

// -- Regularisation ------------------------------------------------------------

/// Inverted dropout: zeroes each element with probability p and scales the
/// rest by 1/(1-p). Identity when `training` is false or p == 0.
Tensor Dropout(const Tensor& a, float p, util::Rng& rng, bool training);

/// Dropout with a caller-supplied mask of multipliers (0 or 1/(1-p)),
/// element-aligned with `a`. Lets callers draw masks from a shared RNG
/// serially and then apply them inside parallel regions, keeping the RNG
/// stream independent of the thread count (multi-head attention does
/// this; see DESIGN.md "Execution model").
Tensor DropoutWithMask(const Tensor& a,
                       std::shared_ptr<const std::vector<float>> mask);

// -- Losses ---------------------------------------------------------------------

/// Softmax cross-entropy of rank-1 `logits` [c] against class `target`.
Tensor CrossEntropyLoss(const Tensor& logits, int target);

/// Cross-entropy of rank-1 `logits` against a probability-vector target
/// (soft labels); target entries must be >= 0 and sum to 1.
Tensor SoftCrossEntropyLoss(const Tensor& logits,
                            const std::vector<float>& target);

/// Mean binary cross-entropy with logits of rank-1 `logits` [c] against a
/// multi-hot target in {0,1}^c. Numerically stable formulation.
Tensor BceWithLogitsLoss(const Tensor& logits,
                         const std::vector<float>& target);

/// Negative log-likelihood -log(probs[target]) of a rank-1 *probability*
/// vector (already sigma-activated). Probabilities are clamped to 1e-7.
/// Used for the LE/GE losses (Eq. 7/8), whose inputs are mixtures of
/// probability vectors rather than logits.
Tensor NllFromProbs(const Tensor& probs, int target);

/// Mean binary cross-entropy of a rank-1 probability vector against a
/// multi-hot target; the multi-label counterpart of NllFromProbs.
Tensor BceFromProbs(const Tensor& probs, const std::vector<float>& target);

// -- Non-differentiable helpers (host-side) ---------------------------------------

/// Softmax of a host vector (no autograd).
std::vector<float> SoftmaxValues(const std::vector<float>& logits);

/// Elementwise sigmoid of a host vector (no autograd).
std::vector<float> SigmoidValues(const std::vector<float>& logits);

/// KL(p || q) between two probability vectors; entries clamped to 1e-9.
float KlDivergence(const std::vector<float>& p, const std::vector<float>& q);

/// Cosine similarity between equal-length host vectors.
float CosineSimilarity(const std::vector<float>& a,
                       const std::vector<float>& b);

}  // namespace explainti::tensor

#endif  // EXPLAINTI_TENSOR_TENSOR_OPS_H_
