#ifndef EXPLAINTI_TENSOR_DTYPE_H_
#define EXPLAINTI_TENSOR_DTYPE_H_

#include <cstdint>

namespace explainti::tensor {

/// Element type of a serving-stack tensor. The training tape is fp32
/// everywhere; dtype exists for the frozen serving path, where compiled
/// plans may stamp individual GEMMs with a cheaper representation
/// (per-tensor, not global — one plan can mix precisions per layer).
enum class DType : uint8_t {
  kF32 = 0,  ///< 32-bit IEEE float: the reference precision.
  kI8 = 1,   ///< 8-bit signed integer with affine quantization params.
};

/// Bytes per element. Buffer planning is byte-granular so that mixed
/// plans pack int8 scratch next to fp32 activations in one arena.
inline constexpr int64_t DTypeSize(DType dtype) {
  return dtype == DType::kI8 ? 1 : 4;
}

inline constexpr const char* DTypeName(DType dtype) {
  return dtype == DType::kI8 ? "i8" : "f32";
}

}  // namespace explainti::tensor

#endif  // EXPLAINTI_TENSOR_DTYPE_H_
