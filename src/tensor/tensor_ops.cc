#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/plan_kernels.h"
#include "tensor/workspace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

#if defined(__GNUC__) || defined(__clang__)
#define EXPLAINTI_RESTRICT __restrict__
#else
#define EXPLAINTI_RESTRICT
#endif

namespace explainti::tensor {

namespace {

using internal::Node;

/// Allocates an op-result node wired to its parents. The caller fills
/// `data` and attaches `backward_fn` when `requires_grad` is set.
///
/// In inference mode (see workspace.h) the node is tape-free: parents are
/// validated but not retained, `requires_grad` stays false (so callers
/// never attach a backward closure), and storage comes from the thread's
/// workspace arena. `zero_init == false` marks ops that overwrite every
/// output element; it has no effect on the tape path, which always
/// zero-fills exactly as before.
template <typename ParentRange>
std::shared_ptr<Node> NewNodeImpl(Shape shape, const ParentRange& parents,
                                  bool zero_init) {
  auto node = internal::AllocNode(std::move(shape), zero_init);
  if (InferenceModeActive()) {
    for (const Tensor& p : parents) CHECK(p.defined());
    return node;
  }
  bool requires_grad = false;
  for (const Tensor& p : parents) {
    CHECK(p.defined());
    node->parents.push_back(p.node());
    requires_grad = requires_grad || p.node()->requires_grad;
  }
  node->requires_grad = requires_grad;
  return node;
}

/// Fixed-arity form for the common `{a, b}` call sites. The parent list
/// lives on the stack (reference_wrapper, no Tensor copies), so in
/// inference mode an op performs no heap allocation beyond its node.
std::shared_ptr<Node> NewNode(
    Shape shape,
    std::initializer_list<std::reference_wrapper<const Tensor>> parents,
    bool zero_init = true) {
  return NewNodeImpl(std::move(shape), parents, zero_init);
}

/// Variable-arity form for ops with a runtime parent list (Concat*, Stack).
std::shared_ptr<Node> NewNode(Shape shape, const std::vector<Tensor>& parents,
                              bool zero_init = true) {
  return NewNodeImpl(std::move(shape), parents, zero_init);
}

void Accumulate(Node* parent, const float* grad, size_t n) {
  if (!parent->requires_grad) return;
  auto& g = parent->EnsureGrad();
  for (size_t i = 0; i < n; ++i) g[i] += grad[i];
}

int64_t LastDim(const Tensor& t) {
  CHECK_GE(t.rank(), 1);
  return t.dim(-1);
}

}  // namespace

// ---------------------------------------------------------------------------
// Elementwise / binary
// ---------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  const bool broadcast = a.shape() != b.shape();
  if (broadcast) {
    CHECK(b.rank() == 1 && a.rank() >= 1 && LastDim(a) == b.dim(0))
        << "Add broadcast requires b rank-1 matching a's last dim; got "
        << ShapeToString(a.shape()) << " + " << ShapeToString(b.shape());
  }
  auto node = NewNode(a.shape(), {a, b}, /*zero_init=*/false);
  const int64_t n = a.size();
  const int64_t cols = broadcast ? b.size() : n;
  const float* EXPLAINTI_RESTRICT pa = a.data();
  const float* EXPLAINTI_RESTRICT pb = b.data();
  float* EXPLAINTI_RESTRICT po = node->data.data();
  // Split the flat `i % cols` indexing into row loops: the modulo costs an
  // integer division per element, which dominated this op in profiles. The
  // additions themselves are unchanged, so the bits are too.
  if (!broadcast) {
    for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
  } else {
    for (int64_t r = 0; r < n; r += cols) {
      for (int64_t j = 0; j < cols; ++j) po[r + j] = pa[r + j] + pb[j];
    }
  }
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    auto nb = b.node();
    node->backward_fn = [out, na, nb, n, cols, broadcast]() {
      Accumulate(na.get(), out->grad.data(), static_cast<size_t>(n));
      if (!nb->requires_grad) return;
      auto& gb = nb->EnsureGrad();
      if (!broadcast) {
        for (int64_t i = 0; i < n; ++i) gb[i] += out->grad[i];
      } else {
        for (int64_t r = 0; r < n; r += cols) {
          for (int64_t j = 0; j < cols; ++j) gb[j] += out->grad[r + j];
        }
      }
    };
  }
  return Tensor(node);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CHECK(a.shape() == b.shape()) << "Sub shape mismatch";
  auto node = NewNode(a.shape(), {a, b}, /*zero_init=*/false);
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) node->data[i] = a.data()[i] - b.data()[i];
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    auto nb = b.node();
    node->backward_fn = [out, na, nb, n]() {
      Accumulate(na.get(), out->grad.data(), static_cast<size_t>(n));
      if (!nb->requires_grad) return;
      auto& gb = nb->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) gb[i] -= out->grad[i];
    };
  }
  return Tensor(node);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  const bool broadcast = a.shape() != b.shape();
  if (broadcast) {
    CHECK(b.rank() == 1 && LastDim(a) == b.dim(0))
        << "Mul broadcast requires b rank-1 matching a's last dim";
  }
  auto node = NewNode(a.shape(), {a, b}, /*zero_init=*/false);
  const int64_t n = a.size();
  const int64_t cols = broadcast ? b.size() : n;
  {
    const float* EXPLAINTI_RESTRICT pa = a.data();
    const float* EXPLAINTI_RESTRICT pb = b.data();
    float* EXPLAINTI_RESTRICT po = node->data.data();
    // Row loops instead of `i % cols` — same products, no per-element
    // integer division (see Add above).
    for (int64_t r = 0; r < n; r += cols) {
      for (int64_t j = 0; j < cols; ++j) po[r + j] = pa[r + j] * pb[j];
    }
  }
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    auto nb = b.node();
    node->backward_fn = [out, na, nb, n, cols]() {
      if (na->requires_grad) {
        auto& ga = na->EnsureGrad();
        for (int64_t r = 0; r < n; r += cols) {
          for (int64_t j = 0; j < cols; ++j) {
            ga[r + j] += out->grad[r + j] * nb->data[j];
          }
        }
      }
      if (nb->requires_grad) {
        auto& gb = nb->EnsureGrad();
        for (int64_t r = 0; r < n; r += cols) {
          for (int64_t j = 0; j < cols; ++j) {
            gb[j] += out->grad[r + j] * na->data[r + j];
          }
        }
      }
    };
  }
  return Tensor(node);
}

Tensor Scale(const Tensor& a, float c) {
  auto node = NewNode(a.shape(), {a}, /*zero_init=*/false);
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) node->data[i] = a.data()[i] * c;
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na, n, c]() {
      if (!na->requires_grad) return;
      auto& ga = na->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) ga[i] += out->grad[i] * c;
    };
  }
  return Tensor(node);
}

Tensor AddScalar(const Tensor& a, float c) {
  auto node = NewNode(a.shape(), {a}, /*zero_init=*/false);
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) node->data[i] = a.data()[i] + c;
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na, n]() {
      Accumulate(na.get(), out->grad.data(), static_cast<size_t>(n));
    };
  }
  return Tensor(node);
}

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CHECK(a.rank() == 1 || a.rank() == 2) << "MatMul: bad lhs rank";
  CHECK(b.rank() == 1 || b.rank() == 2) << "MatMul: bad rhs rank";
  const int64_t m = a.rank() == 2 ? a.dim(0) : 1;
  const int64_t k = a.rank() == 2 ? a.dim(1) : a.dim(0);
  const int64_t k2 = b.rank() == 2 ? b.dim(0) : b.dim(0);
  const int64_t n = b.rank() == 2 ? b.dim(1) : 1;
  CHECK_EQ(k, k2) << "MatMul inner-dimension mismatch: "
                  << ShapeToString(a.shape()) << " x "
                  << ShapeToString(b.shape());

  Shape out_shape;
  if (a.rank() == 2 && b.rank() == 2) {
    out_shape = {m, n};
  } else if (a.rank() == 1 && b.rank() == 2) {
    out_shape = {n};
  } else if (a.rank() == 2 && b.rank() == 1) {
    out_shape = {m};
  } else {
    out_shape = {};  // scalar dot
  }

  auto node = NewNode(out_shape, {a, b});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = node->data.data();
  // i-k-j loop order: streams through b's rows; good locality row-major.
  // Output rows are disjoint, so chunking over i (or, for a single output
  // row, over j) keeps every element's accumulation order — and therefore
  // the float result — identical to the serial loop.
  //
  // The no-grad serving path takes a register-blocked kernel (two output
  // rows x four k steps per pass): each output element still receives its
  // products in ascending-k order with every product and add individually
  // rounded, so the bits match the tape kernel exactly (for finite
  // operands; 0-coefficient terms are added as signed zeros instead of
  // skipped, which cannot change an accumulator that is never -0.0).
  // The kernel lives in plan_kernels.cc — ONE compiled copy shared with
  // the compiled-inference-plan executor, so the plan path and this graph
  // walk cannot drift by even a bit. The tape path keeps the zero-skip
  // kernel whose structure mirrors the backward pass and profits from
  // sparse inputs.
  const bool serving = InferenceModeActive();
  if (serving) {
    ServingGemm(pa, /*lda=*/k, pb, /*ldb=*/n, /*trans_b=*/false, pc,
                /*ldc=*/n, m, k, n);
  } else if (m > 1) {
    util::ParallelFor(0, m, util::GrainForCost(k * n),
                      [&](int64_t ib, int64_t ie) {
      for (int64_t i = ib; i < ie; ++i) {
        for (int64_t kk = 0; kk < k; ++kk) {
          const float av = pa[i * k + kk];
          if (av == 0.0f) continue;
          const float* brow = pb + kk * n;
          float* crow = pc + i * n;
          for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    });
  } else {
    util::ParallelFor(0, n, util::GrainForCost(k),
                      [&](int64_t jb, int64_t je) {
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = pa[kk];
        if (av == 0.0f) continue;
        const float* brow = pb + kk * n;
        for (int64_t j = jb; j < je; ++j) pc[j] += av * brow[j];
      }
    });
  }

  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    auto nb = b.node();
    node->backward_fn = [out, na, nb, m, k, n]() {
      const float* gout = out->grad.data();
      if (na->requires_grad) {
        // dA = dC * B^T : [m,k]. Each dA element is a dot product, so any
        // disjoint chunking (rows, or columns when m == 1) is exact.
        auto& ga = na->EnsureGrad();
        const float* pb = nb->data.data();
        if (m > 1) {
          util::ParallelFor(0, m, util::GrainForCost(k * n),
                            [&](int64_t ib, int64_t ie) {
            for (int64_t i = ib; i < ie; ++i) {
              for (int64_t kk = 0; kk < k; ++kk) {
                float acc = 0.0f;
                const float* grow = gout + i * n;
                const float* brow = pb + kk * n;
                for (int64_t j = 0; j < n; ++j) acc += grow[j] * brow[j];
                ga[i * k + kk] += acc;
              }
            }
          });
        } else {
          util::ParallelFor(0, k, util::GrainForCost(n),
                            [&](int64_t kb, int64_t ke) {
            for (int64_t kk = kb; kk < ke; ++kk) {
              float acc = 0.0f;
              const float* brow = pb + kk * n;
              for (int64_t j = 0; j < n; ++j) acc += gout[j] * brow[j];
              ga[kk] += acc;
            }
          });
        }
      }
      if (nb->requires_grad) {
        // dB = A^T * dC : [k,n], chunked over dB rows (kk). Per (kk, j)
        // the accumulation still runs i-ascending, matching the serial
        // i-outer loop bit-for-bit.
        auto& gb = nb->EnsureGrad();
        const float* pa = na->data.data();
        util::ParallelFor(0, k, util::GrainForCost(m * n),
                          [&](int64_t kb, int64_t ke) {
          for (int64_t kk = kb; kk < ke; ++kk) {
            float* gbrow = gb.data() + kk * n;
            for (int64_t i = 0; i < m; ++i) {
              const float av = pa[i * k + kk];
              if (av == 0.0f) continue;
              const float* grow = gout + i * n;
              for (int64_t j = 0; j < n; ++j) gbrow[j] += av * grow[j];
            }
          }
        });
      }
    };
  }
  return Tensor(node);
}

Tensor Transpose(const Tensor& a) {
  CHECK_EQ(a.rank(), 2) << "Transpose requires rank-2";
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  auto node = NewNode({n, m}, {a}, /*zero_init=*/false);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      node->data[j * m + i] = a.data()[i * n + j];
    }
  }
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na, m, n]() {
      if (!na->requires_grad) return;
      auto& ga = na->EnsureGrad();
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          ga[i * n + j] += out->grad[j * m + i];
        }
      }
    };
  }
  return Tensor(node);
}

Tensor Dot(const Tensor& a, const Tensor& b) {
  CHECK(a.rank() == 1 && b.rank() == 1 && a.size() == b.size())
      << "Dot requires equal-length vectors";
  return MatMul(a, b);
}

Tensor L2Normalize(const Tensor& x, float eps) {
  CHECK_EQ(x.rank(), 1) << "L2Normalize requires rank-1";
  const int64_t n = x.size();
  float norm_sq = 0.0f;
  for (int64_t i = 0; i < n; ++i) norm_sq += x.data()[i] * x.data()[i];
  const float norm = std::max(std::sqrt(norm_sq), eps);
  auto node = NewNode(x.shape(), {x}, /*zero_init=*/false);
  for (int64_t i = 0; i < n; ++i) node->data[i] = x.data()[i] / norm;
  if (node->requires_grad) {
    Node* out = node.get();
    auto nx = x.node();
    node->backward_fn = [out, nx, n, norm]() {
      if (!nx->requires_grad) return;
      // d/dx (x / |x|) = (I - y y^T) / |x| with y = x/|x|.
      float dot = 0.0f;
      for (int64_t i = 0; i < n; ++i) dot += out->grad[i] * out->data[i];
      auto& gx = nx->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        gx[i] += (out->grad[i] - dot * out->data[i]) / norm;
      }
    };
  }
  return Tensor(node);
}

// ---------------------------------------------------------------------------
// Shape
// ---------------------------------------------------------------------------

Tensor Reshape(const Tensor& a, const Shape& shape) {
  CHECK_EQ(NumElements(shape), a.size()) << "Reshape element-count mismatch";
  auto node = NewNode(shape, {a}, /*zero_init=*/false);
  std::copy(a.data(), a.data() + a.size(), node->data.begin());
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na]() {
      Accumulate(na.get(), out->grad.data(), out->grad.size());
    };
  }
  return Tensor(node);
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t end) {
  CHECK_EQ(a.rank(), 2) << "SliceRows requires rank-2";
  CHECK(0 <= start && start < end && end <= a.dim(0))
      << "SliceRows range [" << start << ", " << end << ") out of bounds";
  const int64_t n = a.dim(1);
  const int64_t rows = end - start;
  auto node = NewNode({rows, n}, {a}, /*zero_init=*/false);
  std::copy(a.data() + start * n, a.data() + end * n, node->data.begin());
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na, start, rows, n]() {
      if (!na->requires_grad) return;
      auto& ga = na->EnsureGrad();
      for (int64_t i = 0; i < rows * n; ++i) {
        ga[start * n + i] += out->grad[i];
      }
    };
  }
  return Tensor(node);
}

Tensor Row(const Tensor& a, int64_t index) {
  Tensor slice = SliceRows(a, index, index + 1);
  return Reshape(slice, {a.dim(1)});
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t end) {
  CHECK_EQ(a.rank(), 2) << "SliceCols requires rank-2";
  CHECK(0 <= start && start < end && end <= a.dim(1))
      << "SliceCols range [" << start << ", " << end << ") out of bounds";
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  const int64_t w = end - start;
  auto node = NewNode({m, w}, {a}, /*zero_init=*/false);
  for (int64_t i = 0; i < m; ++i) {
    std::copy(a.data() + i * n + start, a.data() + i * n + end,
              node->data.begin() + i * w);
  }
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na, m, n, w, start]() {
      if (!na->requires_grad) return;
      auto& ga = na->EnsureGrad();
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < w; ++j) {
          ga[i * n + start + j] += out->grad[i * w + j];
        }
      }
    };
  }
  return Tensor(node);
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  CHECK(!parts.empty());
  const int64_t m = parts[0].dim(0);
  int64_t total_cols = 0;
  for (const Tensor& p : parts) {
    CHECK(p.rank() == 2 && p.dim(0) == m) << "ConcatCols row mismatch";
    total_cols += p.dim(1);
  }
  auto node = NewNode({m, total_cols}, parts, /*zero_init=*/false);
  int64_t col_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t w = p.dim(1);
    for (int64_t i = 0; i < m; ++i) {
      std::copy(p.data() + i * w, p.data() + (i + 1) * w,
                node->data.begin() + i * total_cols + col_offset);
    }
    col_offset += w;
  }
  if (node->requires_grad) {
    Node* out = node.get();
    std::vector<std::shared_ptr<Node>> nodes;
    nodes.reserve(parts.size());
    for (const Tensor& p : parts) nodes.push_back(p.node());
    node->backward_fn = [out, nodes, m, total_cols]() {
      int64_t col_offset = 0;
      for (const auto& parent : nodes) {
        const int64_t w =
            static_cast<int64_t>(parent->data.size()) / m;
        if (parent->requires_grad) {
          auto& g = parent->EnsureGrad();
          for (int64_t i = 0; i < m; ++i) {
            for (int64_t j = 0; j < w; ++j) {
              g[i * w + j] += out->grad[i * total_cols + col_offset + j];
            }
          }
        }
        col_offset += w;
      }
    };
  }
  return Tensor(node);
}

Tensor Concat(const Tensor& a, const Tensor& b) {
  CHECK(a.rank() == 1 && b.rank() == 1) << "Concat requires rank-1 inputs";
  const int64_t p = a.size();
  const int64_t q = b.size();
  auto node = NewNode({p + q}, {a, b}, /*zero_init=*/false);
  std::copy(a.data(), a.data() + p, node->data.begin());
  std::copy(b.data(), b.data() + q, node->data.begin() + p);
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    auto nb = b.node();
    node->backward_fn = [out, na, nb, p, q]() {
      Accumulate(na.get(), out->grad.data(), static_cast<size_t>(p));
      if (nb->requires_grad) {
        auto& gb = nb->EnsureGrad();
        for (int64_t i = 0; i < q; ++i) gb[i] += out->grad[p + i];
      }
    };
  }
  return Tensor(node);
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  CHECK(!parts.empty());
  const int64_t n = parts[0].dim(1);
  int64_t total_rows = 0;
  for (const Tensor& p : parts) {
    CHECK(p.rank() == 2 && p.dim(1) == n) << "ConcatRows column mismatch";
    total_rows += p.dim(0);
  }
  auto node = NewNode({total_rows, n}, parts, /*zero_init=*/false);
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    std::copy(p.data(), p.data() + p.size(), node->data.begin() + offset);
    offset += p.size();
  }
  if (node->requires_grad) {
    Node* out = node.get();
    std::vector<std::shared_ptr<Node>> nodes;
    nodes.reserve(parts.size());
    for (const Tensor& p : parts) nodes.push_back(p.node());
    node->backward_fn = [out, nodes]() {
      size_t offset = 0;
      for (const auto& parent : nodes) {
        if (parent->requires_grad) {
          auto& g = parent->EnsureGrad();
          for (size_t i = 0; i < parent->data.size(); ++i) {
            g[i] += out->grad[offset + i];
          }
        }
        offset += parent->data.size();
      }
    };
  }
  return Tensor(node);
}

Tensor Stack(const std::vector<Tensor>& rows) {
  CHECK(!rows.empty());
  const int64_t n = rows[0].size();
  for (const Tensor& r : rows) {
    CHECK(r.rank() == 1 && r.size() == n) << "Stack requires equal rank-1";
  }
  auto node = NewNode({static_cast<int64_t>(rows.size()), n}, rows,
                      /*zero_init=*/false);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::copy(rows[i].data(), rows[i].data() + n,
              node->data.begin() + static_cast<int64_t>(i) * n);
  }
  if (node->requires_grad) {
    Node* out = node.get();
    std::vector<std::shared_ptr<Node>> nodes;
    nodes.reserve(rows.size());
    for (const Tensor& r : rows) nodes.push_back(r.node());
    node->backward_fn = [out, nodes, n]() {
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (!nodes[i]->requires_grad) continue;
        auto& g = nodes[i]->EnsureGrad();
        for (int64_t j = 0; j < n; ++j) {
          g[j] += out->grad[static_cast<int64_t>(i) * n + j];
        }
      }
    };
  }
  return Tensor(node);
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

Tensor MeanRows(const Tensor& a) {
  CHECK_EQ(a.rank(), 2) << "MeanRows requires rank-2";
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  auto node = NewNode({n}, {a});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) node->data[j] += a.data()[i * n + j];
  }
  const float inv_m = 1.0f / static_cast<float>(m);
  for (int64_t j = 0; j < n; ++j) node->data[j] *= inv_m;
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na, m, n, inv_m]() {
      if (!na->requires_grad) return;
      auto& ga = na->EnsureGrad();
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          ga[i * n + j] += out->grad[j] * inv_m;
        }
      }
    };
  }
  return Tensor(node);
}

Tensor Sum(const Tensor& a) {
  auto node = NewNode({}, {a}, /*zero_init=*/false);
  float acc = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) acc += a.data()[i];
  node->data[0] = acc;
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na]() {
      if (!na->requires_grad) return;
      auto& ga = na->EnsureGrad();
      for (float& g : ga) g += out->grad[0];
    };
  }
  return Tensor(node);
}

Tensor Mean(const Tensor& a) {
  return Scale(Sum(a), 1.0f / static_cast<float>(a.size()));
}

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------

Tensor Relu(const Tensor& a) {
  auto node = NewNode(a.shape(), {a}, /*zero_init=*/false);
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) {
    node->data[i] = a.data()[i] > 0.0f ? a.data()[i] : 0.0f;
  }
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na, n]() {
      if (!na->requires_grad) return;
      auto& ga = na->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        if (na->data[i] > 0.0f) ga[i] += out->grad[i];
      }
    };
  }
  return Tensor(node);
}

namespace {
constexpr float kGeluCoef = 0.044715f;
const float kSqrt2OverPi = std::sqrt(2.0f / static_cast<float>(M_PI));
}  // namespace

Tensor Gelu(const Tensor& a) {
  auto node = NewNode(a.shape(), {a}, /*zero_init=*/false);
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) {
    const float x = a.data()[i];
    const float inner = kSqrt2OverPi * (x + kGeluCoef * x * x * x);
    node->data[i] = 0.5f * x * (1.0f + std::tanh(inner));
  }
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na, n]() {
      if (!na->requires_grad) return;
      auto& ga = na->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        const float x = na->data[i];
        const float inner = kSqrt2OverPi * (x + kGeluCoef * x * x * x);
        const float t = std::tanh(inner);
        const float dinner = kSqrt2OverPi * (1.0f + 3.0f * kGeluCoef * x * x);
        const float dy = 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
        ga[i] += out->grad[i] * dy;
      }
    };
  }
  return Tensor(node);
}

Tensor TanhOp(const Tensor& a) {
  auto node = NewNode(a.shape(), {a}, /*zero_init=*/false);
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) node->data[i] = std::tanh(a.data()[i]);
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na, n]() {
      if (!na->requires_grad) return;
      auto& ga = na->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        const float y = out->data[i];
        ga[i] += out->grad[i] * (1.0f - y * y);
      }
    };
  }
  return Tensor(node);
}

Tensor SigmoidOp(const Tensor& a) {
  auto node = NewNode(a.shape(), {a}, /*zero_init=*/false);
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) {
    node->data[i] = 1.0f / (1.0f + std::exp(-a.data()[i]));
  }
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na, n]() {
      if (!na->requires_grad) return;
      auto& ga = na->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        const float y = out->data[i];
        ga[i] += out->grad[i] * y * (1.0f - y);
      }
    };
  }
  return Tensor(node);
}

namespace {

/// Applies a row-wise softmax-family op over the last dimension.
struct RowRange {
  int64_t rows;
  int64_t cols;
};

RowRange LastDimRows(const Tensor& a) {
  CHECK_GE(a.rank(), 1);
  const int64_t cols = a.dim(-1);
  return RowRange{a.size() / cols, cols};
}

}  // namespace

Tensor Softmax(const Tensor& a) {
  const RowRange rr = LastDimRows(a);
  auto node = NewNode(a.shape(), {a}, /*zero_init=*/false);
  // Rows are independent in forward and backward; parallel chunks touch
  // disjoint rows, so results match the serial loop exactly.
  const float* pa = a.data();
  float* pout = node->data.data();
  util::ParallelFor(0, rr.rows, util::GrainForCost(4 * rr.cols),
                    [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      const float* in = pa + r * rr.cols;
      float* out = pout + r * rr.cols;
      float max_v = in[0];
      for (int64_t j = 1; j < rr.cols; ++j) max_v = std::max(max_v, in[j]);
      float total = 0.0f;
      for (int64_t j = 0; j < rr.cols; ++j) {
        out[j] = std::exp(in[j] - max_v);
        total += out[j];
      }
      for (int64_t j = 0; j < rr.cols; ++j) out[j] /= total;
    }
  });
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na, rr]() {
      if (!na->requires_grad) return;
      auto& ga = na->EnsureGrad();
      util::ParallelFor(0, rr.rows, util::GrainForCost(3 * rr.cols),
                        [&](int64_t rb, int64_t re) {
        for (int64_t r = rb; r < re; ++r) {
          const float* y = out->data.data() + r * rr.cols;
          const float* gy = out->grad.data() + r * rr.cols;
          float dot = 0.0f;
          for (int64_t j = 0; j < rr.cols; ++j) dot += y[j] * gy[j];
          for (int64_t j = 0; j < rr.cols; ++j) {
            ga[r * rr.cols + j] += y[j] * (gy[j] - dot);
          }
        }
      });
    };
  }
  return Tensor(node);
}

Tensor LogSoftmax(const Tensor& a) {
  const RowRange rr = LastDimRows(a);
  auto node = NewNode(a.shape(), {a}, /*zero_init=*/false);
  const float* pa = a.data();
  float* pout = node->data.data();
  util::ParallelFor(0, rr.rows, util::GrainForCost(3 * rr.cols),
                    [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      const float* in = pa + r * rr.cols;
      float* out = pout + r * rr.cols;
      float max_v = in[0];
      for (int64_t j = 1; j < rr.cols; ++j) max_v = std::max(max_v, in[j]);
      float total = 0.0f;
      for (int64_t j = 0; j < rr.cols; ++j) total += std::exp(in[j] - max_v);
      const float log_z = max_v + std::log(total);
      for (int64_t j = 0; j < rr.cols; ++j) out[j] = in[j] - log_z;
    }
  });
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na, rr]() {
      if (!na->requires_grad) return;
      auto& ga = na->EnsureGrad();
      util::ParallelFor(0, rr.rows, util::GrainForCost(3 * rr.cols),
                        [&](int64_t rb, int64_t re) {
        for (int64_t r = rb; r < re; ++r) {
          const float* y = out->data.data() + r * rr.cols;
          const float* gy = out->grad.data() + r * rr.cols;
          float gsum = 0.0f;
          for (int64_t j = 0; j < rr.cols; ++j) gsum += gy[j];
          for (int64_t j = 0; j < rr.cols; ++j) {
            ga[r * rr.cols + j] += gy[j] - std::exp(y[j]) * gsum;
          }
        }
      });
    };
  }
  return Tensor(node);
}

// ---------------------------------------------------------------------------
// Normalisation
// ---------------------------------------------------------------------------

Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 float eps) {
  const RowRange rr = LastDimRows(a);
  CHECK(gamma.rank() == 1 && gamma.size() == rr.cols) << "LayerNorm gamma";
  CHECK(beta.rank() == 1 && beta.size() == rr.cols) << "LayerNorm beta";
  auto node = NewNode(a.shape(), {a, gamma, beta}, /*zero_init=*/false);
  // Cache per-row mean and inverse stddev for backward — only when a
  // backward pass can happen. Rows are independent; parallel chunks write
  // disjoint rows of out/means/stds.
  std::shared_ptr<std::vector<float>> means, inv_stds;
  if (node->requires_grad) {
    means = std::make_shared<std::vector<float>>(rr.rows);
    inv_stds = std::make_shared<std::vector<float>>(rr.rows);
  }
  const float* pa = a.data();
  const float* pgamma = gamma.data();
  const float* pbeta = beta.data();
  float* pout = node->data.data();
  util::ParallelFor(0, rr.rows, util::GrainForCost(6 * rr.cols),
                    [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      const float* in = pa + r * rr.cols;
      float mean = 0.0f;
      for (int64_t j = 0; j < rr.cols; ++j) mean += in[j];
      mean /= static_cast<float>(rr.cols);
      float var = 0.0f;
      for (int64_t j = 0; j < rr.cols; ++j) {
        const float d = in[j] - mean;
        var += d * d;
      }
      var /= static_cast<float>(rr.cols);
      const float inv_std = 1.0f / std::sqrt(var + eps);
      if (means) {
        (*means)[r] = mean;
        (*inv_stds)[r] = inv_std;
      }
      float* out = pout + r * rr.cols;
      for (int64_t j = 0; j < rr.cols; ++j) {
        out[j] = (in[j] - mean) * inv_std * pgamma[j] + pbeta[j];
      }
    }
  });
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    auto ng = gamma.node();
    auto nb = beta.node();
    node->backward_fn = [out, na, ng, nb, rr, means, inv_stds]() {
      // gamma/beta gradients accumulate *across* rows: keep them serial so
      // the accumulation order (row-ascending, as before) is fixed.
      if (ng->requires_grad) {
        auto& gg = ng->EnsureGrad();
        for (int64_t r = 0; r < rr.rows; ++r) {
          const float* in = na->data.data() + r * rr.cols;
          const float* gy = out->grad.data() + r * rr.cols;
          const float mean = (*means)[r];
          const float inv_std = (*inv_stds)[r];
          for (int64_t j = 0; j < rr.cols; ++j) {
            gg[j] += gy[j] * (in[j] - mean) * inv_std;
          }
        }
      }
      if (nb->requires_grad) {
        auto& gb = nb->EnsureGrad();
        for (int64_t r = 0; r < rr.rows; ++r) {
          const float* gy = out->grad.data() + r * rr.cols;
          for (int64_t j = 0; j < rr.cols; ++j) gb[j] += gy[j];
        }
      }
      // dx touches disjoint rows; parallel chunks are exact.
      if (na->requires_grad) {
        auto& ga = na->EnsureGrad();
        util::ParallelFor(0, rr.rows, util::GrainForCost(8 * rr.cols),
                          [&](int64_t rb, int64_t re) {
          for (int64_t r = rb; r < re; ++r) {
            const float* in = na->data.data() + r * rr.cols;
            const float* gy = out->grad.data() + r * rr.cols;
            const float mean = (*means)[r];
            const float inv_std = (*inv_stds)[r];
            // Standard layernorm backward:
            // dx = (gamma*gy - mean(gamma*gy) - xhat*mean(gamma*gy*xhat))
            //      * inv_std
            float sum_g = 0.0f;
            float sum_gx = 0.0f;
            for (int64_t j = 0; j < rr.cols; ++j) {
              const float xhat = (in[j] - mean) * inv_std;
              const float g = gy[j] * ng->data[j];
              sum_g += g;
              sum_gx += g * xhat;
            }
            const float inv_n = 1.0f / static_cast<float>(rr.cols);
            for (int64_t j = 0; j < rr.cols; ++j) {
              const float xhat = (in[j] - mean) * inv_std;
              const float g = gy[j] * ng->data[j];
              ga[r * rr.cols + j] +=
                  (g - sum_g * inv_n - xhat * sum_gx * inv_n) * inv_std;
            }
          }
        });
      }
    };
  }
  return Tensor(node);
}

// ---------------------------------------------------------------------------
// Embeddings
// ---------------------------------------------------------------------------

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& ids) {
  CHECK_EQ(table.rank(), 2) << "EmbeddingLookup requires rank-2 table";
  const int64_t vocab = table.dim(0);
  const int64_t d = table.dim(1);
  for (int id : ids) {
    CHECK(id >= 0 && id < vocab) << "embedding id " << id << " out of range";
  }
  auto node = NewNode({static_cast<int64_t>(ids.size()), d}, {table},
                      /*zero_init=*/false);
  for (size_t i = 0; i < ids.size(); ++i) {
    std::copy(table.data() + ids[i] * d, table.data() + (ids[i] + 1) * d,
              node->data.begin() + static_cast<int64_t>(i) * d);
  }
  if (node->requires_grad) {
    Node* out = node.get();
    auto nt = table.node();
    node->backward_fn = [out, nt, ids, d]() {
      if (!nt->requires_grad) return;
      auto& gt = nt->EnsureGrad();
      for (size_t i = 0; i < ids.size(); ++i) {
        for (int64_t j = 0; j < d; ++j) {
          gt[ids[i] * d + j] += out->grad[static_cast<int64_t>(i) * d + j];
        }
      }
    };
  }
  return Tensor(node);
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

Tensor Dropout(const Tensor& a, float p, util::Rng& rng, bool training) {
  if (!training || p <= 0.0f) {
    // Off the tape there is no graph to participate in; skip the identity
    // node entirely (x * 1.0f is bit-identical to x for every float).
    if (InferenceModeActive()) return a;
    // Identity pass-through that still participates in the graph.
    return Scale(a, 1.0f);
  }
  CHECK_LT(p, 1.0f) << "Dropout probability must be < 1";
  const int64_t n = a.size();
  auto mask = std::make_shared<std::vector<float>>(n);
  const float keep_scale = 1.0f / (1.0f - p);
  for (int64_t i = 0; i < n; ++i) {
    (*mask)[i] = rng.Bernoulli(p) ? 0.0f : keep_scale;
  }
  return DropoutWithMask(a, std::move(mask));
}

Tensor DropoutWithMask(const Tensor& a,
                       std::shared_ptr<const std::vector<float>> mask) {
  CHECK(mask != nullptr);
  const int64_t n = a.size();
  CHECK_EQ(static_cast<int64_t>(mask->size()), n)
      << "DropoutWithMask: mask size mismatch";
  auto node = NewNode(a.shape(), {a}, /*zero_init=*/false);
  for (int64_t i = 0; i < n; ++i) node->data[i] = a.data()[i] * (*mask)[i];
  if (node->requires_grad) {
    Node* out = node.get();
    auto na = a.node();
    node->backward_fn = [out, na, mask, n]() {
      if (!na->requires_grad) return;
      auto& ga = na->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) ga[i] += out->grad[i] * (*mask)[i];
    };
  }
  return Tensor(node);
}

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

Tensor CrossEntropyLoss(const Tensor& logits, int target) {
  CHECK_EQ(logits.rank(), 1) << "CrossEntropyLoss expects rank-1 logits";
  CHECK(target >= 0 && target < logits.size()) << "target out of range";
  Tensor log_probs = LogSoftmax(logits);
  // loss = -log_probs[target]
  auto node = NewNode({}, {log_probs}, /*zero_init=*/false);
  node->data[0] = -log_probs.data()[target];
  if (node->requires_grad) {
    Node* out = node.get();
    auto nl = log_probs.node();
    node->backward_fn = [out, nl, target]() {
      if (!nl->requires_grad) return;
      nl->EnsureGrad()[target] -= out->grad[0];
    };
  }
  return Tensor(node);
}

Tensor SoftCrossEntropyLoss(const Tensor& logits,
                            const std::vector<float>& target) {
  CHECK_EQ(logits.rank(), 1);
  CHECK_EQ(static_cast<int64_t>(target.size()), logits.size());
  Tensor log_probs = LogSoftmax(logits);
  auto node = NewNode({}, {log_probs}, /*zero_init=*/false);
  float loss = 0.0f;
  for (size_t i = 0; i < target.size(); ++i) {
    loss -= target[i] * log_probs.data()[i];
  }
  node->data[0] = loss;
  if (node->requires_grad) {
    Node* out = node.get();
    auto nl = log_probs.node();
    node->backward_fn = [out, nl, target]() {
      if (!nl->requires_grad) return;
      auto& g = nl->EnsureGrad();
      for (size_t i = 0; i < target.size(); ++i) {
        g[i] -= out->grad[0] * target[i];
      }
    };
  }
  return Tensor(node);
}

Tensor BceWithLogitsLoss(const Tensor& logits,
                         const std::vector<float>& target) {
  CHECK_EQ(logits.rank(), 1);
  CHECK_EQ(static_cast<int64_t>(target.size()), logits.size());
  const int64_t c = logits.size();
  auto node = NewNode({}, {logits}, /*zero_init=*/false);
  // Stable per-element loss: max(x,0) - x*t + log(1 + exp(-|x|)).
  float total = 0.0f;
  for (int64_t i = 0; i < c; ++i) {
    const float x = logits.data()[i];
    const float t = target[static_cast<size_t>(i)];
    total += std::max(x, 0.0f) - x * t + std::log1p(std::exp(-std::abs(x)));
  }
  node->data[0] = total / static_cast<float>(c);
  if (node->requires_grad) {
    Node* out = node.get();
    auto nl = logits.node();
    node->backward_fn = [out, nl, target, c]() {
      if (!nl->requires_grad) return;
      auto& g = nl->EnsureGrad();
      const float scale = out->grad[0] / static_cast<float>(c);
      for (int64_t i = 0; i < c; ++i) {
        const float sig = 1.0f / (1.0f + std::exp(-nl->data[i]));
        g[i] += scale * (sig - target[static_cast<size_t>(i)]);
      }
    };
  }
  return Tensor(node);
}

Tensor NllFromProbs(const Tensor& probs, int target) {
  CHECK_EQ(probs.rank(), 1);
  CHECK(target >= 0 && target < probs.size());
  constexpr float kEps = 1e-7f;
  auto node = NewNode({}, {probs}, /*zero_init=*/false);
  const float p = std::max(probs.data()[target], kEps);
  node->data[0] = -std::log(p);
  if (node->requires_grad) {
    Node* out = node.get();
    auto np = probs.node();
    node->backward_fn = [out, np, target]() {
      if (!np->requires_grad) return;
      const float p = std::max(np->data[target], 1e-7f);
      np->EnsureGrad()[target] += out->grad[0] * (-1.0f / p);
    };
  }
  return Tensor(node);
}

Tensor BceFromProbs(const Tensor& probs, const std::vector<float>& target) {
  CHECK_EQ(probs.rank(), 1);
  CHECK_EQ(static_cast<int64_t>(target.size()), probs.size());
  constexpr float kEps = 1e-7f;
  const int64_t c = probs.size();
  auto node = NewNode({}, {probs}, /*zero_init=*/false);
  float total = 0.0f;
  for (int64_t i = 0; i < c; ++i) {
    const float p =
        std::min(std::max(probs.data()[i], kEps), 1.0f - kEps);
    const float t = target[static_cast<size_t>(i)];
    total += -(t * std::log(p) + (1.0f - t) * std::log(1.0f - p));
  }
  node->data[0] = total / static_cast<float>(c);
  if (node->requires_grad) {
    Node* out = node.get();
    auto np = probs.node();
    node->backward_fn = [out, np, target, c]() {
      if (!np->requires_grad) return;
      auto& g = np->EnsureGrad();
      const float scale = out->grad[0] / static_cast<float>(c);
      for (int64_t i = 0; i < c; ++i) {
        const float p =
            std::min(std::max(np->data[i], 1e-7f), 1.0f - 1e-7f);
        const float t = target[static_cast<size_t>(i)];
        g[i] += scale * (-t / p + (1.0f - t) / (1.0f - p));
      }
    };
  }
  return Tensor(node);
}

// ---------------------------------------------------------------------------
// Host-side helpers
// ---------------------------------------------------------------------------

std::vector<float> SoftmaxValues(const std::vector<float>& logits) {
  CHECK(!logits.empty());
  std::vector<float> out(logits.size());
  float max_v = logits[0];
  for (float v : logits) max_v = std::max(max_v, v);
  float total = 0.0f;
  for (size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - max_v);
    total += out[i];
  }
  for (float& v : out) v /= total;
  return out;
}

std::vector<float> SigmoidValues(const std::vector<float>& logits) {
  std::vector<float> out(logits.size());
  for (size_t i = 0; i < logits.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-logits[i]));
  }
  return out;
}

float KlDivergence(const std::vector<float>& p, const std::vector<float>& q) {
  CHECK_EQ(p.size(), q.size());
  constexpr float kEps = 1e-9f;
  float kl = 0.0f;
  for (size_t i = 0; i < p.size(); ++i) {
    const float pi = std::max(p[i], kEps);
    const float qi = std::max(q[i], kEps);
    kl += pi * std::log(pi / qi);
  }
  return kl;
}

float CosineSimilarity(const std::vector<float>& a,
                       const std::vector<float>& b) {
  CHECK_EQ(a.size(), b.size());
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom < 1e-12) return 0.0f;
  return static_cast<float>(dot / denom);
}

}  // namespace explainti::tensor
