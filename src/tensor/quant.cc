#include "tensor/quant.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace explainti::tensor {

namespace {

/// Symmetric per-column re-quantization into preallocated storage.
void QuantizeColumns(const float* w, int64_t rows, int64_t cols,
                     QuantizedMatrix* q) {
  for (int64_t j = 0; j < cols; ++j) {
    float amax = 0.0f;
    for (int64_t r = 0; r < rows; ++r) {
      amax = std::max(amax, std::fabs(w[r * cols + j]));
    }
    // An all-zero column quantizes to zeros under any scale; 1.0 keeps
    // the dequant multiply finite.
    const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    const float inv_scale = 1.0f / scale;
    q->params.scales[static_cast<size_t>(j)] = scale;
    q->params.zero_points[static_cast<size_t>(j)] = 0;
    int32_t col_sum = 0;
    for (int64_t r = 0; r < rows; ++r) {
      const float scaled = w[r * cols + j] * inv_scale;
      const int32_t v = static_cast<int32_t>(std::lrintf(scaled));
      const int8_t clamped =
          static_cast<int8_t>(std::clamp(v, -127, 127));
      q->data[static_cast<size_t>(r * cols + j)] = clamped;
      col_sum += clamped;
    }
    q->col_sums[static_cast<size_t>(j)] = col_sum;
  }
}

}  // namespace

QuantizedMatrix QuantizeWeightMatrix(const float* w, int64_t rows,
                                     int64_t cols) {
  CHECK_GT(rows, 0);
  CHECK_GT(cols, 0);
  QuantizedMatrix q;
  q.rows = rows;
  q.cols = cols;
  q.data.resize(static_cast<size_t>(rows * cols));
  q.params.scales.resize(static_cast<size_t>(cols));
  q.params.zero_points.resize(static_cast<size_t>(cols));
  q.col_sums.resize(static_cast<size_t>(cols));
  QuantizeColumns(w, rows, cols, &q);
  return q;
}

void RequantizeWeightMatrix(const float* w, int64_t rows, int64_t cols,
                            QuantizedMatrix* q) {
  CHECK_EQ(rows, q->rows) << "re-quantize must preserve the weight shape";
  CHECK_EQ(cols, q->cols) << "re-quantize must preserve the weight shape";
  QuantizeColumns(w, rows, cols, q);
}

}  // namespace explainti::tensor
