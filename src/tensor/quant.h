#ifndef EXPLAINTI_TENSOR_QUANT_H_
#define EXPLAINTI_TENSOR_QUANT_H_

#include <cstdint>
#include <vector>

#include "tensor/dtype.h"

namespace explainti::tensor {

/// Affine quantization parameters for one int8 tensor, one (scale,
/// zero_point) pair per channel: real = (q - zero_point) * scale.
/// Weights quantize symmetrically (zero_point == 0, per output channel);
/// activations quantize asymmetrically per row at run time.
struct QuantParams {
  std::vector<float> scales;
  std::vector<int32_t> zero_points;
};

/// An int8 post-training-quantized copy of one fp32 weight matrix
/// W [rows, cols] (row-major), quantized symmetrically per output
/// column: scale[j] = max_abs(W[:, j]) / 127, data[r, c] =
/// round(W[r, c] / scale[c]) clamped to [-127, 127].
///
/// `col_sums[j]` caches sum_r data[r, j]; the int8 GEMM's dequant
/// epilogue needs it to cancel the activation zero-point
/// (acc - a_zp * col_sum) without a second pass over the weights.
struct QuantizedMatrix {
  std::vector<int8_t> data;      ///< [rows, cols] row-major.
  QuantParams params;            ///< Per column; zero_points all 0.
  std::vector<int32_t> col_sums; ///< [cols].
  int64_t rows = 0;
  int64_t cols = 0;

  /// Bytes this int8 representation occupies (data + scales + zero
  /// points + column sums) — the numerator of the weight-memory gate.
  int64_t StorageBytes() const {
    return static_cast<int64_t>(data.size()) +
           static_cast<int64_t>(params.scales.size() * sizeof(float)) +
           static_cast<int64_t>(params.zero_points.size() * sizeof(int32_t)) +
           static_cast<int64_t>(col_sums.size() * sizeof(int32_t));
  }
};

/// Quantizes W [rows, cols] into a fresh QuantizedMatrix.
QuantizedMatrix QuantizeWeightMatrix(const float* w, int64_t rows,
                                     int64_t cols);

/// Re-quantizes W into `q`'s existing storage (same shape required).
/// Rewriting in place keeps every pointer into `q` valid, which is what
/// lets compiled plans borrow quantized weights across LoadWeights
/// exactly like they borrow the fp32 parameters.
void RequantizeWeightMatrix(const float* w, int64_t rows, int64_t cols,
                            QuantizedMatrix* q);

}  // namespace explainti::tensor

#endif  // EXPLAINTI_TENSOR_QUANT_H_
