#ifndef EXPLAINTI_TENSOR_PLAN_KERNELS_H_
#define EXPLAINTI_TENSOR_PLAN_KERNELS_H_

#include <cstdint>

namespace explainti::tensor {

/// Shared serving kernels: the register-blocked no-grad GEMM plus the
/// fused elementwise chains executed by compiled inference plans.
///
/// Bit-identity is the whole point of this file. The graph walk
/// (tensor_ops.cc) and the plan executor (core/inference_plan.cc) both
/// call ONE compiled copy of each kernel, built once with this library's
/// vectorization flags and no fast-math, so the two execution paths
/// cannot drift: every output element receives the same individually
/// rounded float operations in the same order on both. Fusions below are
/// chosen so that folding ops into one pass never reassociates a float
/// expression — they only skip materialising intermediates (slice /
/// transpose / concat copies, separate bias and activation passes).
///
/// All kernels run on the calling thread except ServingGemm, which chunks
/// over the thread pool exactly like the MatMul it was extracted from
/// (disjoint output rows/columns, so chunking never changes bits).

/// C[m,n] += A[m,k] * B[k,n], with C pre-zeroed by the caller (see
/// ZeroRows). Row strides lda/ldb/ldc express sub-matrix views: the
/// plan executor reads per-head q/k/v slices and writes per-head context
/// columns in place, eliminating the SliceCols/ConcatCols copies of the
/// graph walk. `trans_b` reads B as B^T (element [kk, j] at
/// b[j * ldb + kk]), folding the materialised Transpose(kh) of the
/// attention-score GEMM. Accumulation order per output element is
/// ascending-k with every product and add individually rounded —
/// identical to the tape kernel and independent of strides, transposition
/// and ParallelFor chunking.
void ServingGemm(const float* a, int64_t lda, const float* b, int64_t ldb,
                 bool trans_b, float* c, int64_t ldc, int64_t m, int64_t k,
                 int64_t n);

/// Zero-fills the m x n output window of C (row stride ldc) so ServingGemm
/// accumulates from +0.0f, exactly like the zero-initialised MatMul node.
void ZeroRows(float* c, int64_t ldc, int64_t m, int64_t n);

/// C[i, j] += bias[j] over the m x n window — the broadcast Add a Linear
/// performs after its MatMul, applied in place after the full GEMM.
void AddBiasRows(float* c, int64_t ldc, const float* bias, int64_t m,
                 int64_t n);

/// C[i, j] = gelu(C[i, j] + bias[j]) over the m x n window: the
/// bias-add + tanh-GELU chain of the FFN expansion as one pass. Uses the
/// same kGeluCoef / sqrt(2/pi) constants and std::tanh as tensor_ops.cc.
void BiasGeluRows(float* c, int64_t ldc, const float* bias, int64_t m,
                  int64_t n);

/// C[i, :] = softmax(C[i, :] * scale) row by row over a contiguous
/// [rows, cols] matrix: the Scale + Softmax chain of the attention scores
/// as one in-place pass (scale everything first, then the max/exp/sum
/// normalisation exactly as Softmax's row loop).
void ScaleSoftmaxRows(float* c, int64_t rows, int64_t cols, float scale);

/// out[i, :] = layernorm(x[i, :] + f[i, :]; gamma, beta, eps): the
/// residual Add + LayerNorm chain as one pass. The row sums are written
/// into `out` first, then normalised in place, so the mean/variance/
/// normalise passes read exactly the values the unfused Add produced.
void ResidualLayerNormRows(const float* x, const float* f, float* out,
                           int64_t rows, int64_t cols, const float* gamma,
                           const float* beta, float eps);

/// out[i, :] = layernorm(token[ids[i]] + position[i] (+ segment[seg[i]]))
/// — the whole embedding stack (three gather-adds, left-associative in
/// this order, then LayerNorm) as one pass. `segment_table` may be null
/// (no segment term; pass `segment_ids` null too).
void EmbedLayerNormRows(const float* token_table, const float* position_table,
                        const float* segment_table, const int* ids,
                        const int* segment_ids, float* out, int64_t rows,
                        int64_t cols, const float* gamma, const float* beta,
                        float eps);

/// Asymmetric per-row int8 quantization of the activation view
/// A [m, k] (row stride lda) into contiguous aq [m, k]:
///   scale[i] = (max(A[i,:]) - min(A[i,:])) / 255
///   zp[i]    = -128 - round(min / scale)
///   aq[i,kk] = clamp(round(A[i,kk] / scale) + zp, -128, 127)
/// so the full row range maps onto [-128, 127]. A constant row gets
/// scale 1 (any scale represents it exactly through the zero point).
/// Runs on the calling thread: m is a sequence length (tiny next to the
/// GEMM it feeds) and the pass is memory-bound.
void QuantizeRowsInt8(const float* a, int64_t lda, int64_t m, int64_t k,
                      int8_t* aq, float* scales, int32_t* zero_points);

/// C[m,n] = dequant(Aq[m,k] * Bq[k,n]): the int8 serving GEMM.
/// Aq is the contiguous per-row-quantized activation block from
/// QuantizeRowsInt8; Bq is a row-major symmetric per-column-quantized
/// weight (tensor/quant.h). Products accumulate in int32 — exact, so
/// bits never depend on blocking or chunking — and the dequant epilogue
/// is fused into the output write:
///   C[i,j] = (acc[i,j] - a_zp[i] * b_col_sums[j])
///            * a_scales[i] * b_scales[j]
/// (the col_sums term cancels the activation zero point analytically).
/// C is overwritten, not accumulated; bias/activation epilogues apply
/// afterwards exactly as on the fp32 path. Chunks over the thread pool
/// like ServingGemm (disjoint output rows / columns).
void ServingGemmInt8(const int8_t* a, const float* a_scales,
                     const int32_t* a_zero_points, const int8_t* b,
                     const float* b_scales, const int32_t* b_col_sums,
                     float* c, int64_t ldc, int64_t m, int64_t k, int64_t n);

}  // namespace explainti::tensor

#endif  // EXPLAINTI_TENSOR_PLAN_KERNELS_H_
