#ifndef EXPLAINTI_TENSOR_PLAN_KERNELS_H_
#define EXPLAINTI_TENSOR_PLAN_KERNELS_H_

#include <cstdint>

namespace explainti::tensor {

/// Shared serving kernels: the register-blocked no-grad GEMM plus the
/// fused elementwise chains executed by compiled inference plans.
///
/// Bit-identity is the whole point of this file. The graph walk
/// (tensor_ops.cc) and the plan executor (core/inference_plan.cc) both
/// call ONE compiled copy of each kernel, built once with this library's
/// vectorization flags and no fast-math, so the two execution paths
/// cannot drift: every output element receives the same individually
/// rounded float operations in the same order on both. Fusions below are
/// chosen so that folding ops into one pass never reassociates a float
/// expression — they only skip materialising intermediates (slice /
/// transpose / concat copies, separate bias and activation passes).
///
/// All kernels run on the calling thread except ServingGemm, which chunks
/// over the thread pool exactly like the MatMul it was extracted from
/// (disjoint output rows/columns, so chunking never changes bits).

/// C[m,n] += A[m,k] * B[k,n], with C pre-zeroed by the caller (see
/// ZeroRows). Row strides lda/ldb/ldc express sub-matrix views: the
/// plan executor reads per-head q/k/v slices and writes per-head context
/// columns in place, eliminating the SliceCols/ConcatCols copies of the
/// graph walk. `trans_b` reads B as B^T (element [kk, j] at
/// b[j * ldb + kk]), folding the materialised Transpose(kh) of the
/// attention-score GEMM. Accumulation order per output element is
/// ascending-k with every product and add individually rounded —
/// identical to the tape kernel and independent of strides, transposition
/// and ParallelFor chunking.
void ServingGemm(const float* a, int64_t lda, const float* b, int64_t ldb,
                 bool trans_b, float* c, int64_t ldc, int64_t m, int64_t k,
                 int64_t n);

/// Zero-fills the m x n output window of C (row stride ldc) so ServingGemm
/// accumulates from +0.0f, exactly like the zero-initialised MatMul node.
void ZeroRows(float* c, int64_t ldc, int64_t m, int64_t n);

/// C[i, j] += bias[j] over the m x n window — the broadcast Add a Linear
/// performs after its MatMul, applied in place after the full GEMM.
void AddBiasRows(float* c, int64_t ldc, const float* bias, int64_t m,
                 int64_t n);

/// C[i, j] = gelu(C[i, j] + bias[j]) over the m x n window: the
/// bias-add + tanh-GELU chain of the FFN expansion as one pass. Uses the
/// same kGeluCoef / sqrt(2/pi) constants and std::tanh as tensor_ops.cc.
void BiasGeluRows(float* c, int64_t ldc, const float* bias, int64_t m,
                  int64_t n);

/// C[i, :] = softmax(C[i, :] * scale) row by row over a contiguous
/// [rows, cols] matrix: the Scale + Softmax chain of the attention scores
/// as one in-place pass (scale everything first, then the max/exp/sum
/// normalisation exactly as Softmax's row loop).
void ScaleSoftmaxRows(float* c, int64_t rows, int64_t cols, float scale);

/// out[i, :] = layernorm(x[i, :] + f[i, :]; gamma, beta, eps): the
/// residual Add + LayerNorm chain as one pass. The row sums are written
/// into `out` first, then normalised in place, so the mean/variance/
/// normalise passes read exactly the values the unfused Add produced.
void ResidualLayerNormRows(const float* x, const float* f, float* out,
                           int64_t rows, int64_t cols, const float* gamma,
                           const float* beta, float eps);

/// out[i, :] = layernorm(token[ids[i]] + position[i] (+ segment[seg[i]]))
/// — the whole embedding stack (three gather-adds, left-associative in
/// this order, then LayerNorm) as one pass. `segment_table` may be null
/// (no segment term; pass `segment_ids` null too).
void EmbedLayerNormRows(const float* token_table, const float* position_table,
                        const float* segment_table, const int* ids,
                        const int* segment_ids, float* out, int64_t rows,
                        int64_t cols, const float* gamma, const float* beta,
                        float eps);

}  // namespace explainti::tensor

#endif  // EXPLAINTI_TENSOR_PLAN_KERNELS_H_
