#include "tensor/optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace explainti::tensor {

namespace {

bool AllFinite(const float* data, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

}  // namespace

LinearSchedule::LinearSchedule(float base_lr, int64_t total_steps,
                               int64_t warmup_steps)
    : base_lr_(base_lr),
      total_steps_(total_steps),
      warmup_steps_(warmup_steps) {
  CHECK_GT(total_steps, 0);
  CHECK_GE(warmup_steps, 0);
  CHECK_LE(warmup_steps, total_steps);
}

float LinearSchedule::LearningRate(int64_t step) const {
  if (step < warmup_steps_) {
    return base_lr_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  if (step >= total_steps_) return 0.0f;
  const float remaining = static_cast<float>(total_steps_ - step) /
                          static_cast<float>(total_steps_ - warmup_steps_);
  return base_lr_ * remaining;
}

AdamW::AdamW(std::vector<Tensor> parameters, AdamWOptions options)
    : parameters_(std::move(parameters)), options_(options) {
  m_.reserve(parameters_.size());
  v_.reserve(parameters_.size());
  for (const Tensor& p : parameters_) {
    CHECK(p.defined() && p.requires_grad())
        << "AdamW parameters must be trainable leaves";
    m_.emplace_back(p.size(), 0.0f);
    v_.emplace_back(p.size(), 0.0f);
  }
}

void AdamW::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

bool AdamW::GradientsAreFinite() const {
  for (const Tensor& p : parameters_) {
    if (!p.has_grad()) continue;
    if (!AllFinite(p.grad(), p.size())) return false;
  }
  return true;
}

bool AdamW::Step(float learning_rate) {
  const float lr = learning_rate >= 0.0f ? learning_rate
                                         : options_.learning_rate;

  // Global-norm accumulation doubles as the non-finite gradient gate: a
  // single NaN/Inf poisons the norm, and the whole update is skipped with
  // weights and moments untouched.
  double total_sq = 0.0;
  for (const Tensor& p : parameters_) {
    if (!p.has_grad()) continue;
    const float* g = p.grad();
    for (int64_t i = 0; i < p.size(); ++i) {
      total_sq += static_cast<double>(g[i]) * g[i];
    }
  }
  if (!std::isfinite(total_sq)) {
    ++skipped_steps_;
    LOG(WARNING) << "AdamW: non-finite gradient, skipping step "
                 << step_count_ + 1 << " (skip #" << skipped_steps_ << ")";
    return false;
  }

  float clip_scale = 1.0f;
  if (options_.max_grad_norm > 0.0f) {
    const float norm = static_cast<float>(std::sqrt(total_sq));
    if (norm > options_.max_grad_norm) {
      clip_scale = options_.max_grad_norm / (norm + 1e-12f);
    }
  }

  ++step_count_;
  const float bias1 = 1.0f - std::pow(options_.beta1,
                                      static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(options_.beta2,
                                      static_cast<float>(step_count_));

  for (size_t idx = 0; idx < parameters_.size(); ++idx) {
    Tensor& p = parameters_[idx];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad();
    auto& m = m_[idx];
    auto& v = v_[idx];
    for (int64_t i = 0; i < p.size(); ++i) {
      const float gi = g[i] * clip_scale;
      m[i] = options_.beta1 * m[i] + (1.0f - options_.beta1) * gi;
      v[i] = options_.beta2 * v[i] + (1.0f - options_.beta2) * gi * gi;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      // Decoupled weight decay (AdamW): decay applied to weights directly.
      w[i] -= lr * (m_hat / (std::sqrt(v_hat) + options_.eps) +
                    options_.weight_decay * w[i]);
    }
  }
  return true;
}

void AdamW::ResetState() {
  for (auto& m : m_) std::fill(m.begin(), m.end(), 0.0f);
  for (auto& v : v_) std::fill(v.begin(), v.end(), 0.0f);
  step_count_ = 0;
}

util::Status AdamW::SetState(std::vector<std::vector<float>> m,
                             std::vector<std::vector<float>> v,
                             int64_t step_count) {
  if (m.size() != parameters_.size() || v.size() != parameters_.size()) {
    return util::Status::InvalidArgument(
        "optimizer state tensor count mismatch");
  }
  for (size_t i = 0; i < parameters_.size(); ++i) {
    if (static_cast<int64_t>(m[i].size()) != parameters_[i].size() ||
        static_cast<int64_t>(v[i].size()) != parameters_[i].size()) {
      return util::Status::InvalidArgument(
          "optimizer state size mismatch at parameter " + std::to_string(i));
    }
  }
  m_ = std::move(m);
  v_ = std::move(v);
  step_count_ = step_count;
  return util::Status::OK();
}

Sgd::Sgd(std::vector<Tensor> parameters, float learning_rate)
    : parameters_(std::move(parameters)), learning_rate_(learning_rate) {
  for (const Tensor& p : parameters_) {
    CHECK(p.defined() && p.requires_grad());
  }
}

void Sgd::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

bool Sgd::Step(float learning_rate) {
  const float lr = learning_rate >= 0.0f ? learning_rate : learning_rate_;
  for (const Tensor& p : parameters_) {
    if (!p.has_grad() || AllFinite(p.grad(), p.size())) continue;
    LOG(WARNING) << "Sgd: non-finite gradient, skipping step";
    return false;
  }
  for (Tensor& p : parameters_) {
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad();
    for (int64_t i = 0; i < p.size(); ++i) w[i] -= lr * g[i];
  }
  return true;
}

}  // namespace explainti::tensor
