#ifndef EXPLAINTI_TENSOR_WORKSPACE_H_
#define EXPLAINTI_TENSOR_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace explainti::tensor {

/// RAII switch into no-grad ("inference") execution for the current
/// thread. While a guard is alive, every op in tensor_ops.cc:
///   - skips parent retention and backward-closure construction (no tape),
///   - forces `requires_grad == false` on its result,
///   - draws its node and `data` buffer from this thread's Workspace arena
///     instead of the heap, and returns them to the arena on destruction.
///
/// Numerics are unchanged: the forward loops are the same code in both
/// modes, so outputs are bit-identical to the tape-building path. Guards
/// nest; the flag is thread-local, so parallel regions that should run
/// off-tape must instantiate a guard on each executing thread.
class InferenceModeGuard {
 public:
  InferenceModeGuard();
  ~InferenceModeGuard();
  InferenceModeGuard(const InferenceModeGuard&) = delete;
  InferenceModeGuard& operator=(const InferenceModeGuard&) = delete;

 private:
  bool previous_;
};

/// True while an InferenceModeGuard is alive on the calling thread.
bool InferenceModeActive();

/// Counters for the calling thread's Workspace arena. An "acquire" is a
/// request served by the arena; a "miss" is an acquire that had to fall
/// back to the heap (cold pool). Steady state on a warmed-up thread is
/// acquires advancing with zero new misses: no tensor heap allocations.
struct WorkspaceStats {
  int64_t node_acquires = 0;
  int64_t node_misses = 0;
  int64_t buffer_acquires = 0;
  int64_t buffer_misses = 0;
};

/// Snapshot of the calling thread's arena counters.
WorkspaceStats ThisThreadWorkspaceStats();

/// RAII raw float scratch drawn from the calling thread's Workspace
/// buffer pool: the compiled-inference-plan executor acquires its whole
/// arena as one ScratchBuffer per call, so a warmed-up plan run performs
/// zero heap allocations. Contents are uninitialised (beyond what the
/// pooled vector happened to hold); the buffer returns to the pool on
/// destruction. Must be destroyed on the thread that created it (stack
/// use only).
class ScratchBuffer {
 public:
  explicit ScratchBuffer(size_t n);
  ~ScratchBuffer();
  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;

  float* data() { return buf_.data(); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<float> buf_;
};

namespace internal {

/// Allocates a node for an op result or leaf. Outside inference mode this
/// is exactly the historical behaviour (fresh heap node, data zero-filled
/// regardless of `zero_init`, so the training tape is byte-for-byte
/// unchanged). In inference mode the node and its data buffer come from
/// the thread's Workspace; `zero_init == false` skips the zero-fill for
/// ops that overwrite every output element.
std::shared_ptr<Node> AllocNode(Shape shape, bool zero_init);

}  // namespace internal

}  // namespace explainti::tensor

#endif  // EXPLAINTI_TENSOR_WORKSPACE_H_
