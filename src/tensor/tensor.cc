#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "tensor/workspace.h"
#include "util/logging.h"

namespace explainti::tensor {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

namespace internal {

std::vector<float>& Node::EnsureGrad() {
  if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  return grad;
}

}  // namespace internal

namespace {

std::shared_ptr<internal::Node> MakeLeaf(const Shape& shape,
                                         bool zero_init = true) {
  return internal::AllocNode(shape, zero_init);
}

}  // namespace

Tensor Tensor::Zeros(const Shape& shape) { return Tensor(MakeLeaf(shape)); }

Tensor Tensor::Full(const Shape& shape, float value) {
  auto node = MakeLeaf(shape, /*zero_init=*/false);
  for (float& v : node->data) v = value;
  return Tensor(node);
}

Tensor Tensor::FromVector(const Shape& shape,
                          const std::vector<float>& values) {
  CHECK_EQ(static_cast<int64_t>(values.size()), NumElements(shape))
      << "FromVector size mismatch for shape " << ShapeToString(shape);
  auto node = MakeLeaf(shape, /*zero_init=*/false);
  std::copy(values.begin(), values.end(), node->data.begin());
  return Tensor(node);
}

Tensor Tensor::Scalar(float value) {
  auto node = MakeLeaf({}, /*zero_init=*/false);
  node->data[0] = value;
  return Tensor(node);
}

Tensor Tensor::Randn(const Shape& shape, util::Rng& rng, float stddev) {
  auto node = MakeLeaf(shape, /*zero_init=*/false);
  for (float& v : node->data) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return Tensor(node);
}

Tensor Tensor::RandUniform(const Shape& shape, util::Rng& rng, float bound) {
  auto node = MakeLeaf(shape, /*zero_init=*/false);
  for (float& v : node->data) {
    v = static_cast<float>(rng.Uniform(-bound, bound));
  }
  return Tensor(node);
}

const Shape& Tensor::shape() const {
  CHECK(node_ != nullptr) << "shape() on null tensor";
  return node_->shape;
}

int64_t Tensor::rank() const { return static_cast<int64_t>(shape().size()); }

int64_t Tensor::dim(int64_t i) const {
  const Shape& s = shape();
  int64_t r = static_cast<int64_t>(s.size());
  if (i < 0) i += r;
  CHECK(i >= 0 && i < r) << "dim index " << i << " out of range for "
                         << ShapeToString(s);
  return s[static_cast<size_t>(i)];
}

float* Tensor::grad() {
  CHECK(node_ != nullptr);
  return node_->EnsureGrad().data();
}

const float* Tensor::grad() const {
  CHECK(node_ != nullptr);
  return node_->EnsureGrad().data();
}

bool Tensor::has_grad() const {
  CHECK(node_ != nullptr);
  return node_->grad.size() == node_->data.size();
}

bool Tensor::requires_grad() const {
  CHECK(node_ != nullptr);
  return node_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool requires_grad) {
  CHECK(node_ != nullptr);
  node_->requires_grad = requires_grad;
  return *this;
}

float Tensor::item() const {
  CHECK_EQ(size(), 1) << "item() requires a single-element tensor";
  return node_->data[0];
}

float Tensor::at(int64_t flat_index) const {
  CHECK(flat_index >= 0 && flat_index < size());
  return node_->data[static_cast<size_t>(flat_index)];
}

std::vector<float> Tensor::ToVector() const {
  CHECK(node_ != nullptr);
  return node_->data;
}

void Tensor::Backward() {
  CHECK(node_ != nullptr);
  CHECK_EQ(size(), 1) << "Backward() must start from a scalar";

  // Topological order via iterative post-order DFS.
  std::vector<internal::Node*> order;
  std::unordered_set<internal::Node*> visited;
  std::vector<std::pair<internal::Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, child_index] = stack.back();
    if (child_index < node->parents.size()) {
      internal::Node* parent = node->parents[child_index].get();
      ++child_index;
      if (visited.insert(parent).second) stack.emplace_back(parent, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  node_->EnsureGrad()[0] = 1.0f;
  // `order` is post-order (parents before children); reverse it so each
  // node's backward runs after all of its consumers have contributed.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::Node* node = *it;
    if (node->backward_fn && node->grad.size() == node->data.size()) {
      node->backward_fn();
    }
  }
}

void Tensor::ZeroGrad() {
  CHECK(node_ != nullptr);
  if (!node_->grad.empty()) {
    std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
  }
}

Tensor Tensor::Detach() const {
  CHECK(node_ != nullptr);
  auto node = internal::AllocNode(node_->shape, /*zero_init=*/false);
  // Copy: detached view must not alias autograd.
  std::copy(node_->data.begin(), node_->data.end(), node->data.begin());
  node->requires_grad = false;
  return Tensor(node);
}

Tensor Tensor::Clone() const { return Detach(); }

void Tensor::AddInPlace(const Tensor& other, float scale) {
  CHECK(node_ != nullptr && other.node_ != nullptr);
  CHECK_EQ(size(), other.size()) << "AddInPlace size mismatch";
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0; i < size(); ++i) dst[i] += scale * src[i];
}

}  // namespace explainti::tensor
