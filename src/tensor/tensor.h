#ifndef EXPLAINTI_TENSOR_TENSOR_H_
#define EXPLAINTI_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace explainti::tensor {

/// Tensor shape; rank 0 (empty shape) denotes a scalar.
using Shape = std::vector<int64_t>;

/// Number of elements implied by `shape` (1 for scalars).
int64_t NumElements(const Shape& shape);

/// Renders a shape as "[2, 3]" for error messages.
std::string ShapeToString(const Shape& shape);

namespace internal {

/// Graph node backing a Tensor: storage, gradient, and the backward closure
/// that scatters this node's gradient into its parents.
struct Node {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // Allocated lazily; same length as data.
  bool requires_grad = false;
  // Parents kept alive for backward; empty for leaves.
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates `grad` into parents' grads. Null for leaves.
  std::function<void()> backward_fn;

  /// Ensures `grad` is allocated (zero-filled) and returns it.
  std::vector<float>& EnsureGrad();
};

}  // namespace internal

/// Dense float32 tensor with reverse-mode automatic differentiation.
///
/// `Tensor` is a cheap value-semantics handle onto a shared graph node, in
/// the style of PyTorch: operations in tensor_ops.h build a computation
/// graph, and `Backward()` on a scalar loss fills `grad()` on every
/// reachable tensor with `requires_grad() == true` (and on the interior
/// nodes between them). Single-threaded; designed for the small encoder
/// models used in this reproduction, not for large-scale training.
class Tensor {
 public:
  /// Null handle; most operations on it abort. Use the factories below.
  Tensor() = default;

  // Factories -----------------------------------------------------------

  /// Zero-filled tensor.
  static Tensor Zeros(const Shape& shape);

  /// Tensor filled with `value`.
  static Tensor Full(const Shape& shape, float value);

  /// Tensor wrapping a copy of `values`; size must match the shape.
  static Tensor FromVector(const Shape& shape,
                           const std::vector<float>& values);

  /// Rank-0 scalar.
  static Tensor Scalar(float value);

  /// Gaussian init with the given standard deviation.
  static Tensor Randn(const Shape& shape, util::Rng& rng, float stddev);

  /// Uniform init in [-bound, bound].
  static Tensor RandUniform(const Shape& shape, util::Rng& rng, float bound);

  // Introspection -------------------------------------------------------

  bool defined() const { return node_ != nullptr; }
  const Shape& shape() const;
  /// Rank (number of dimensions).
  int64_t rank() const;
  /// Extent of dimension `i` (supports negative indexing from the back).
  int64_t dim(int64_t i) const;
  /// Total number of elements.
  int64_t size() const { return static_cast<int64_t>(node_->data.size()); }

  // data()/size() are defined inline: they run once or more per tensor op,
  // and the out-of-line call was measurable (~3%) in serving profiles.
  float* data() { return node_->data.data(); }
  const float* data() const { return node_->data.data(); }

  /// Gradient buffer; allocated (zeros) on first access.
  float* grad();
  const float* grad() const;
  /// True if a gradient buffer has been allocated.
  bool has_grad() const;

  bool requires_grad() const;
  /// Marks this tensor as a trainable leaf (or not). Only meaningful on
  /// leaves; interior nodes track requirement automatically.
  Tensor& set_requires_grad(bool requires_grad);

  /// Value of a rank-0 or single-element tensor.
  float item() const;

  /// Element access by flat index (no autograd).
  float at(int64_t flat_index) const;

  /// Copies the data out.
  std::vector<float> ToVector() const;

  // Autograd ------------------------------------------------------------

  /// Runs reverse-mode autodiff from this scalar: topologically sorts the
  /// graph, seeds d(self)/d(self) = 1, and accumulates into grad buffers.
  /// Requires `size() == 1`.
  void Backward();

  /// Zeroes this tensor's gradient buffer if allocated.
  void ZeroGrad();

  /// Returns a tensor sharing this data but cut off from the graph
  /// (constant with respect to autograd).
  Tensor Detach() const;

  /// Deep copy of the data as a fresh leaf.
  Tensor Clone() const;

  /// In-place elementwise add of `other.data` (no autograd; for optimizer
  /// and embedding-store style bookkeeping).
  void AddInPlace(const Tensor& other, float scale = 1.0f);

  // Internal ------------------------------------------------------------

  /// Wraps an existing node (used by tensor_ops.cc).
  explicit Tensor(std::shared_ptr<internal::Node> node)
      : node_(std::move(node)) {}
  const std::shared_ptr<internal::Node>& node() const { return node_; }

 private:
  std::shared_ptr<internal::Node> node_;
};

}  // namespace explainti::tensor

#endif  // EXPLAINTI_TENSOR_TENSOR_H_
