#ifndef EXPLAINTI_ANN_SHARDED_SEARCH_H_
#define EXPLAINTI_ANN_SHARDED_SEARCH_H_

#include <cstdint>
#include <vector>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "ann/index.h"

namespace explainti::ann {

/// One searchable store segment as the fan-out sees it. `flat` is the
/// exact tier and is always present; `hnsw` is the fast tier, or null
/// when the segment's graph build was aborted and the segment serves
/// flat. Both point into the owning Segment, which the caller keeps
/// pinned for the duration of the query.
struct ShardRef {
  const FlatIndex* flat = nullptr;
  const HnswIndex* hnsw = nullptr;
};

/// Per-query degradation telemetry from one sharded search.
struct ShardedQueryStats {
  /// Shards whose answer came from the exact flat tier instead of HNSW —
  /// missing/aborted graph, an injected "ann.query" fault, or an empty
  /// HNSW result on a non-empty shard.
  int shards_degraded = 0;
  bool any_fallback() const { return shards_degraded > 0; }
};

/// Merges per-shard candidate lists into the global top-k using a bounded
/// heap (never more than k live entries), dropping `exclude_id`. The kept
/// set and its order follow the total order (similarity desc, id asc), so
/// the output is a pure function of the input sets — independent of shard
/// iteration order and thread count. Exposed separately for tests.
void MergeTopK(const std::vector<SearchResult>* shard_hits,
               int64_t num_shards, int k, int64_t exclude_id,
               std::vector<SearchResult>* out);

/// Fans one top-k query across `shards` and merges the per-shard answers.
///
/// Each shard runs the degradation ladder independently (HNSW -> exact
/// flat; see ShardRef), over-fetching k+1 so the excluded id cannot
/// displace a real hit. Shard queries run over util/thread_pool with
/// grain 1 — each shard's hits land in that shard's own slot, so the
/// merged result is bit-identical at any thread count. `query` is raw
/// (un-normalised) and must have exactly the shard dimensionality;
/// callers validate against their store's dim first.
///
/// Reuses thread-local scratch (per-shard SearchScratch + hit slots).
/// Once warm, a serial fan-out — one shard, or a 1-thread global pool —
/// performs zero heap allocations; a parallel fan-out pays only the
/// thread pool's dispatch envelope.
void ShardedSearchInto(const ShardRef* shards, int64_t num_shards,
                       const std::vector<float>& query, int k,
                       int64_t exclude_id, std::vector<SearchResult>* out,
                       ShardedQueryStats* stats);

}  // namespace explainti::ann

#endif  // EXPLAINTI_ANN_SHARDED_SEARCH_H_
