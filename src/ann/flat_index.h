#ifndef EXPLAINTI_ANN_FLAT_INDEX_H_
#define EXPLAINTI_ANN_FLAT_INDEX_H_

#include <cstdint>
#include <vector>

#include "ann/index.h"

namespace explainti::ann {

/// Exact brute-force index; O(N·d) per query.
///
/// The reference implementation the HNSW tests measure recall against, the
/// degradation tier of the embedding store, and a sensible choice for
/// small stores. Two storage modes:
///  - Owned: `Add()` copies and L2-normalises each vector (the historical
///    behaviour).
///  - Attached: `AttachStorage()` rebinds the index to externally owned,
///    already-normalised rows — this is how store segments share one
///    payload (possibly an mmap'd file) between the flat tier, the HNSW
///    tier, and raw-embedding reads without copying it three times.
class FlatIndex : public VectorIndex {
 public:
  FlatIndex() = default;

  void Add(int64_t id, const std::vector<float>& vector) override;
  std::vector<SearchResult> Search(const std::vector<float>& query,
                                   int k) const override;
  int64_t size() const override { return count_; }
  int64_t dim() const override { return dim_; }

  /// Rebinds the index to `count` rows of externally owned storage:
  /// `vectors` is row-major `count x dim` and already L2-normalised,
  /// `ids[i]` names row i. The caller keeps both alive for the index's
  /// lifetime; previously Add()ed rows are discarded. Passing count == 0
  /// resets to an empty index.
  void AttachStorage(const int64_t* ids, const float* vectors, int64_t count,
                     int64_t dim);

  /// Segment-local search: `query` is an already L2-normalised vector of
  /// exactly dim() floats. Fills `*out` (cleared first) with the top-k
  /// rows, most similar first, ties broken by ascending id — bit-identical
  /// to Search() on the same index. Reuses `*scratch`; after the first
  /// call at a given store size, performs no heap allocations.
  void SearchNormalized(const float* query, int k, SearchScratch* scratch,
                        std::vector<SearchResult>* out) const;

 private:
  int64_t dim_ = 0;
  int64_t count_ = 0;
  const int64_t* ids_ = nullptr;     // = owned_ids_.data() in owned mode.
  const float* vectors_ = nullptr;   // Row-major, L2-normalised.
  std::vector<int64_t> owned_ids_;
  std::vector<float> owned_vectors_;
};

}  // namespace explainti::ann

#endif  // EXPLAINTI_ANN_FLAT_INDEX_H_
