#ifndef EXPLAINTI_ANN_FLAT_INDEX_H_
#define EXPLAINTI_ANN_FLAT_INDEX_H_

#include <vector>

#include "ann/index.h"

namespace explainti::ann {

/// Exact brute-force index; O(N·d) per query.
///
/// The reference implementation the HNSW tests measure recall against, and
/// a sensible choice for small embedding stores.
class FlatIndex : public VectorIndex {
 public:
  FlatIndex() = default;

  void Add(int64_t id, const std::vector<float>& vector) override;
  std::vector<SearchResult> Search(const std::vector<float>& query,
                                   int k) const override;
  int64_t size() const override { return static_cast<int64_t>(ids_.size()); }
  int64_t dim() const override { return dim_; }

 private:
  int64_t dim_ = 0;
  std::vector<int64_t> ids_;
  std::vector<float> vectors_;  // Row-major, L2-normalised.
};

}  // namespace explainti::ann

#endif  // EXPLAINTI_ANN_FLAT_INDEX_H_
