#ifndef EXPLAINTI_ANN_HNSW_INDEX_H_
#define EXPLAINTI_ANN_HNSW_INDEX_H_

#include <cstdint>
#include <vector>

#include "ann/index.h"
#include "util/rng.h"

namespace explainti::ann {

/// HNSW construction/search parameters (Malkov & Yashunin, TPAMI 2020).
struct HnswOptions {
  /// Target out-degree per node on upper layers; layer 0 allows 2*M.
  int M = 16;
  /// Beam width while inserting.
  int ef_construction = 100;
  /// Beam width while searching (raised to k when smaller).
  int ef_search = 50;
  /// Seed for the level-assignment randomness.
  uint64_t seed = 42;
};

/// From-scratch Hierarchical Navigable Small World index over cosine
/// similarity.
///
/// Replaces faiss's IndexHNSW in the paper's Global Explanations module
/// (Algorithm 2): the embedding store Q is indexed here and queried for
/// the top-K influential training samples in O(log N) expected time. The
/// test suite certifies recall@10 against FlatIndex.
class HnswIndex : public VectorIndex {
 public:
  explicit HnswIndex(HnswOptions options = HnswOptions());

  void Add(int64_t id, const std::vector<float>& vector) override;
  std::vector<SearchResult> Search(const std::vector<float>& query,
                                   int k) const override;
  int64_t size() const override {
    return static_cast<int64_t>(external_ids_.size());
  }
  int64_t dim() const override { return dim_; }

  /// Maximum layer currently in use (diagnostics).
  int max_level() const { return max_level_; }

 private:
  /// Neighbour lists: per node, per layer (0..node_level).
  struct NodeLinks {
    std::vector<std::vector<int>> per_layer;
  };

  /// (distance, internal id) pair; smaller distance = more similar.
  struct Candidate {
    float distance;
    int node;
    bool operator<(const Candidate& other) const {
      return distance < other.distance;
    }
    bool operator>(const Candidate& other) const {
      return distance > other.distance;
    }
  };

  float Distance(const float* a, const float* b) const;
  const float* VectorOf(int node) const;

  /// Greedy single-entry descent on `layer` (ef = 1).
  int GreedyClosest(const float* query, int entry, int layer) const;

  /// Beam search on `layer` returning up to `ef` closest candidates.
  std::vector<Candidate> SearchLayer(const float* query, int entry, int ef,
                                     int layer) const;

  /// Heuristic neighbour selection: keeps the `m` closest.
  static std::vector<int> SelectNeighbors(std::vector<Candidate> candidates,
                                          int m);

  int RandomLevel();

  HnswOptions options_;
  double level_multiplier_;
  util::Rng rng_;

  int64_t dim_ = 0;
  std::vector<int64_t> external_ids_;
  std::vector<float> vectors_;  // Row-major, L2-normalised.
  std::vector<NodeLinks> links_;
  int entry_point_ = -1;
  int max_level_ = -1;
};

}  // namespace explainti::ann

#endif  // EXPLAINTI_ANN_HNSW_INDEX_H_
