#ifndef EXPLAINTI_ANN_HNSW_INDEX_H_
#define EXPLAINTI_ANN_HNSW_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ann/index.h"
#include "util/binary_io.h"
#include "util/rng.h"
#include "util/status.h"

namespace explainti::ann {

/// HNSW construction/search parameters (Malkov & Yashunin, TPAMI 2020).
struct HnswOptions {
  /// Target out-degree per node on upper layers; layer 0 allows 2*M.
  int M = 16;
  /// Beam width while inserting.
  int ef_construction = 100;
  /// Beam width while searching (raised to k when smaller).
  int ef_search = 50;
  /// Seed for the level-assignment randomness.
  uint64_t seed = 42;
};

/// Derives the level-assignment seed for one store segment from the
/// store-wide base seed: a splitmix64-style mix so sibling segments get
/// decorrelated level sequences (identical seeds would give every segment
/// the same level pattern and correlated graph shape), while the same
/// (base_seed, segment_index) pair always rebuilds the same graph.
inline uint64_t SeedForSegment(uint64_t base_seed, int64_t segment_index) {
  uint64_t z =
      base_seed + 0x9e3779b97f4a7c15ULL *
                      (static_cast<uint64_t>(segment_index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// From-scratch Hierarchical Navigable Small World index over cosine
/// similarity.
///
/// Replaces faiss's IndexHNSW in the paper's Global Explanations module
/// (Algorithm 2): the embedding store Q is indexed here and queried for
/// the top-K influential training samples in O(log N) expected time. The
/// test suite certifies recall@10 against FlatIndex.
///
/// Storage modes mirror FlatIndex: `Add()` copies + normalises and inserts
/// in one step (owned mode), while a store segment attaches its shared
/// normalised payload with `AttachStorage()` and then either inserts rows
/// one at a time with `InsertNode()` (fresh build, with the caller free to
/// abort between rows) or restores a previously serialised graph with
/// `LoadGraph()`. Graph adjacency is the only state `SerializeGraph()`
/// emits — vectors travel in the segment payload, not here.
class HnswIndex : public VectorIndex {
 public:
  explicit HnswIndex(HnswOptions options = HnswOptions());

  void Add(int64_t id, const std::vector<float>& vector) override;
  std::vector<SearchResult> Search(const std::vector<float>& query,
                                   int k) const override;
  int64_t size() const override { return count_; }
  int64_t dim() const override { return dim_; }

  /// Maximum layer currently in use (diagnostics).
  int max_level() const { return max_level_; }

  const HnswOptions& options() const { return options_; }

  /// Rebinds the index to `count` rows of externally owned, already
  /// L2-normalised storage (see FlatIndex::AttachStorage). Only valid on
  /// an index with no graph yet; follow with InsertNode() per row or one
  /// LoadGraph().
  void AttachStorage(const int64_t* ids, const float* vectors, int64_t count,
                     int64_t dim);

  /// Inserts the next attached row (rows enter the graph in storage
  /// order). Segment builds call this once per row so a build can be
  /// abandoned mid-way — the embedding store's "store.build" fault site
  /// sits between calls. Requires graph_size() < size().
  void InsertNode();

  /// Rows inserted into the graph so far (== size() once a build or
  /// LoadGraph completes).
  int64_t graph_size() const { return built_; }

  /// Segment-local search: `query` is already L2-normalised with exactly
  /// dim() floats. Fills `*out` (cleared first) with up to k hits, closest
  /// first — bit-identical to Search() on the same index. Reuses
  /// `*scratch`; steady-state repeats allocate nothing.
  void SearchNormalized(const float* query, int k, SearchScratch* scratch,
                        std::vector<SearchResult>* out) const;

  /// Appends the graph structure (entry point, max level, per-node
  /// per-layer adjacency) to `*out`. Deterministic: equal graphs emit
  /// equal bytes.
  void SerializeGraph(std::string* out) const;

  /// Restores a SerializeGraph() image onto attached storage. The node
  /// count must match the attached row count; malformed or truncated
  /// input returns InvalidArgument and leaves the index unusable for
  /// search (callers discard it).
  util::Status LoadGraph(util::BinaryReader* reader);

 private:
  /// Neighbour lists: per node, per layer (0..node_level).
  struct NodeLinks {
    std::vector<std::vector<int>> per_layer;
  };

  /// (distance, internal id) pair; smaller distance = more similar.
  struct Candidate {
    float distance;
    int node;
    bool operator<(const Candidate& other) const {
      return distance < other.distance;
    }
    bool operator>(const Candidate& other) const {
      return distance > other.distance;
    }
  };

  float Distance(const float* a, const float* b) const;
  const float* VectorOf(int node) const;

  /// Greedy single-entry descent on `layer` (ef = 1).
  int GreedyClosest(const float* query, int entry, int layer) const;

  /// Beam search on `layer` returning up to `ef` closest candidates
  /// (build path; allocates freely).
  std::vector<Candidate> SearchLayer(const float* query, int entry, int ef,
                                     int layer) const;

  /// Query-path beam search into scratch->beam (closest first after the
  /// call). Heap operation order matches SearchLayer exactly, so both
  /// paths produce bit-identical candidate lists.
  void SearchLayerInto(const float* query, int entry, int ef, int layer,
                       SearchScratch* scratch) const;

  /// Heuristic neighbour selection: keeps the `m` closest.
  static std::vector<int> SelectNeighbors(std::vector<Candidate> candidates,
                                          int m);

  int RandomLevel();

  HnswOptions options_;
  double level_multiplier_;
  util::Rng rng_;

  int64_t dim_ = 0;
  int64_t count_ = 0;  ///< Rows in storage (owned or attached).
  int64_t built_ = 0;  ///< Rows inserted into the graph.
  const int64_t* ids_ = nullptr;
  const float* vectors_ = nullptr;  // Row-major, L2-normalised.
  std::vector<int64_t> owned_ids_;
  std::vector<float> owned_vectors_;
  std::vector<NodeLinks> links_;
  int entry_point_ = -1;
  int max_level_ = -1;
};

}  // namespace explainti::ann

#endif  // EXPLAINTI_ANN_HNSW_INDEX_H_
