#include "ann/flat_index.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace explainti::ann {

namespace {

void NormalizeInto(const std::vector<float>& in, float* out) {
  double norm_sq = 0.0;
  for (float v : in) norm_sq += static_cast<double>(v) * v;
  const float inv = norm_sq > 1e-24
                        ? static_cast<float>(1.0 / std::sqrt(norm_sq))
                        : 0.0f;
  for (size_t i = 0; i < in.size(); ++i) out[i] = in[i] * inv;
}

}  // namespace

void FlatIndex::Add(int64_t id, const std::vector<float>& vector) {
  if (dim_ == 0) dim_ = static_cast<int64_t>(vector.size());
  CHECK_EQ(static_cast<int64_t>(vector.size()), dim_)
      << "FlatIndex dimension mismatch";
  ids_.push_back(id);
  const size_t offset = vectors_.size();
  vectors_.resize(offset + vector.size());
  NormalizeInto(vector, vectors_.data() + offset);
}

std::vector<SearchResult> FlatIndex::Search(const std::vector<float>& query,
                                            int k) const {
  if (ids_.empty() || k <= 0) return {};
  if (static_cast<int64_t>(query.size()) != dim_) {
    // A malformed query must degrade to "no neighbours", not abort: the
    // caller (GE retrieval) has a recovery path for empty results.
    LOG(WARNING) << "FlatIndex: query dim " << query.size()
                 << " != index dim " << dim_ << "; returning no results";
    return {};
  }
  std::vector<float> q(query.size());
  NormalizeInto(query, q.data());

  // Each row's score lands in its own slot, so the scored list (and the
  // tie-broken partial sort below) is identical at any thread count.
  std::vector<SearchResult> results(ids_.size());
  util::ParallelFor(
      0, static_cast<int64_t>(ids_.size()), util::GrainForCost(dim_),
      [&](int64_t ib, int64_t ie) {
        for (int64_t i = ib; i < ie; ++i) {
          const float* row = vectors_.data() + i * dim_;
          float dot = 0.0f;
          for (int64_t j = 0; j < dim_; ++j) dot += row[j] * q[j];
          results[static_cast<size_t>(i)] =
              SearchResult{ids_[static_cast<size_t>(i)], dot};
        }
      });
  const size_t take = std::min<size_t>(static_cast<size_t>(std::max(k, 0)),
                                       results.size());
  std::partial_sort(results.begin(), results.begin() + take, results.end(),
                    [](const SearchResult& a, const SearchResult& b) {
                      if (a.similarity != b.similarity) {
                        return a.similarity > b.similarity;
                      }
                      return a.id < b.id;
                    });
  results.resize(take);
  return results;
}

}  // namespace explainti::ann
