#include "ann/flat_index.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace explainti::ann {

void FlatIndex::Add(int64_t id, const std::vector<float>& vector) {
  CHECK(owned_ids_.size() == static_cast<size_t>(count_))
      << "FlatIndex::Add on an index attached to external storage";
  if (dim_ == 0) dim_ = static_cast<int64_t>(vector.size());
  CHECK_EQ(static_cast<int64_t>(vector.size()), dim_)
      << "FlatIndex dimension mismatch";
  owned_ids_.push_back(id);
  const size_t offset = owned_vectors_.size();
  owned_vectors_.resize(offset + vector.size());
  L2NormalizeInto(vector.data(), dim_, owned_vectors_.data() + offset);
  ++count_;
  // push_back may have reallocated; rebind the active pointers.
  ids_ = owned_ids_.data();
  vectors_ = owned_vectors_.data();
}

void FlatIndex::AttachStorage(const int64_t* ids, const float* vectors,
                              int64_t count, int64_t dim) {
  CHECK_GE(count, 0);
  owned_ids_.clear();
  owned_vectors_.clear();
  count_ = count;
  dim_ = count == 0 ? 0 : dim;
  ids_ = count == 0 ? nullptr : ids;
  vectors_ = count == 0 ? nullptr : vectors;
}

void FlatIndex::SearchNormalized(const float* query, int k,
                                 SearchScratch* scratch,
                                 std::vector<SearchResult>* out) const {
  out->clear();
  if (count_ == 0 || k <= 0) return;

  // Each row's score lands in its own slot, so the scored list (and the
  // tie-broken partial sort below) is identical at any thread count.
  std::vector<SearchResult>& scores = scratch->scores;
  scores.resize(static_cast<size_t>(count_));
  const int64_t grain = util::GrainForCost(dim_);
  const auto score_rows = [&](int64_t ib, int64_t ie) {
    for (int64_t i = ib; i < ie; ++i) {
      const float* row = vectors_ + i * dim_;
      float dot = 0.0f;
      for (int64_t j = 0; j < dim_; ++j) dot += row[j] * query[j];
      scores[static_cast<size_t>(i)] =
          SearchResult{ids_[static_cast<size_t>(i)], dot};
    }
  };
  // The direct call keeps the serial path free of the std::function
  // envelope ParallelFor would heap-allocate (the store's steady-state
  // zero-allocation gate counts every operator new).
  if (count_ <= grain || util::GlobalThreadPool().num_threads() == 1) {
    score_rows(0, count_);
  } else {
    util::ParallelFor(0, count_, grain, score_rows);
  }

  const size_t take =
      std::min<size_t>(static_cast<size_t>(k), scores.size());
  std::partial_sort(scores.begin(), scores.begin() + take, scores.end(),
                    [](const SearchResult& a, const SearchResult& b) {
                      if (a.similarity != b.similarity) {
                        return a.similarity > b.similarity;
                      }
                      return a.id < b.id;
                    });
  out->assign(scores.begin(), scores.begin() + take);
}

std::vector<SearchResult> FlatIndex::Search(const std::vector<float>& query,
                                            int k) const {
  if (count_ == 0 || k <= 0) return {};
  if (static_cast<int64_t>(query.size()) != dim_) {
    // A malformed query must degrade to "no neighbours", not abort: the
    // caller (GE retrieval) has a recovery path for empty results.
    LOG(WARNING) << "FlatIndex: query dim " << query.size()
                 << " != index dim " << dim_ << "; returning no results";
    return {};
  }
  std::vector<float> q(query.size());
  L2NormalizeInto(query.data(), dim_, q.data());
  SearchScratch scratch;
  std::vector<SearchResult> out;
  SearchNormalized(q.data(), k, &scratch, &out);
  return out;
}

}  // namespace explainti::ann
