#ifndef EXPLAINTI_ANN_INDEX_H_
#define EXPLAINTI_ANN_INDEX_H_

#include <cstdint>
#include <vector>

namespace explainti::ann {

/// One nearest-neighbour hit: the id passed at Add() time and the cosine
/// similarity to the query (higher is closer).
struct SearchResult {
  int64_t id = -1;
  float similarity = 0.0f;
};

/// Interface for the embedding-store indexes used by Global Explanations
/// (Algorithm 2). Vectors are compared by cosine similarity; every
/// implementation stores L2-normalised copies internally.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Inserts `vector` under `id`. Ids need not be dense but must be unique.
  virtual void Add(int64_t id, const std::vector<float>& vector) = 0;

  /// Top-k most-similar stored vectors, most similar first. Returns fewer
  /// than k when the index holds fewer vectors.
  virtual std::vector<SearchResult> Search(const std::vector<float>& query,
                                           int k) const = 0;

  /// Number of stored vectors.
  virtual int64_t size() const = 0;

  /// Vector dimensionality (0 until the first Add).
  virtual int64_t dim() const = 0;
};

}  // namespace explainti::ann

#endif  // EXPLAINTI_ANN_INDEX_H_
