#ifndef EXPLAINTI_ANN_INDEX_H_
#define EXPLAINTI_ANN_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace explainti::ann {

/// One nearest-neighbour hit: the id passed at Add() time and the cosine
/// similarity to the query (higher is closer).
struct SearchResult {
  int64_t id = -1;
  float similarity = 0.0f;
};

/// Reusable per-thread state for the segment-local search entry points
/// (`FlatIndex::SearchNormalized`, `HnswIndex::SearchNormalized`). One
/// scratch per (thread, segment-slot); after the first query over a
/// segment, repeated searches through the same scratch perform no heap
/// allocations. The fields are an implementation detail of the indexes —
/// callers only default-construct and pass the struct back in.
struct SearchScratch {
  std::vector<SearchResult> scores;           // Flat: one slot per row.
  std::vector<uint32_t> visited;              // HNSW: epoch-stamped marks.
  uint32_t epoch = 0;
  std::vector<std::pair<float, int>> frontier;  // HNSW: min-heap by distance.
  std::vector<std::pair<float, int>> beam;      // HNSW: max-heap by distance.
  std::vector<int> fresh;                       // HNSW: unvisited neighbours.
  std::vector<float> fresh_dist;
};

/// L2-normalises `in[0..n)` into `out` (all-zero input stays all-zero).
/// The shared definition both index types build on: normalising at insert
/// time turns cosine similarity into a plain dot product on the hot path,
/// and a single implementation keeps stored bits identical across tiers.
void L2NormalizeInto(const float* in, int64_t n, float* out);

/// Interface for the embedding-store indexes used by Global Explanations
/// (Algorithm 2). Vectors are compared by cosine similarity; every
/// implementation stores L2-normalised copies internally.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Inserts `vector` under `id`. Ids need not be dense but must be unique.
  virtual void Add(int64_t id, const std::vector<float>& vector) = 0;

  /// Top-k most-similar stored vectors, most similar first. Returns fewer
  /// than k when the index holds fewer vectors.
  virtual std::vector<SearchResult> Search(const std::vector<float>& query,
                                           int k) const = 0;

  /// Number of stored vectors.
  virtual int64_t size() const = 0;

  /// Vector dimensionality (0 until the first Add).
  virtual int64_t dim() const = 0;
};

}  // namespace explainti::ann

#endif  // EXPLAINTI_ANN_INDEX_H_
