#include "ann/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace explainti::ann {

namespace {

// Heap comparators over (distance, node) pairs. They compare distance
// ONLY — exactly like Candidate::operator</operator> — so the scratch
// heaps in SearchLayerInto replay the same element order as the
// priority_queue-based build path (both sit on push_heap/pop_heap).
inline bool DistLess(const std::pair<float, int>& a,
                     const std::pair<float, int>& b) {
  return a.first < b.first;
}
inline bool DistGreater(const std::pair<float, int>& a,
                        const std::pair<float, int>& b) {
  return a.first > b.first;
}

}  // namespace

HnswIndex::HnswIndex(HnswOptions options)
    : options_(options),
      level_multiplier_(1.0 / std::log(static_cast<double>(options.M))),
      rng_(options.seed) {
  CHECK_GE(options.M, 2);
  CHECK_GE(options.ef_construction, options.M);
}

float HnswIndex::Distance(const float* a, const float* b) const {
  // Vectors are unit-norm: cosine distance = 1 - dot.
  float dot = 0.0f;
  for (int64_t j = 0; j < dim_; ++j) dot += a[j] * b[j];
  return 1.0f - dot;
}

const float* HnswIndex::VectorOf(int node) const {
  return vectors_ + static_cast<int64_t>(node) * dim_;
}

int HnswIndex::RandomLevel() {
  const double u = std::max(rng_.Uniform(), 1e-12);
  return static_cast<int>(-std::log(u) * level_multiplier_);
}

int HnswIndex::GreedyClosest(const float* query, int entry, int layer) const {
  int current = entry;
  float current_dist = Distance(query, VectorOf(current));
  bool improved = true;
  while (improved) {
    improved = false;
    for (int neighbor : links_[static_cast<size_t>(current)]
                            .per_layer[static_cast<size_t>(layer)]) {
      const float d = Distance(query, VectorOf(neighbor));
      if (d < current_dist) {
        current = neighbor;
        current_dist = d;
        improved = true;
      }
    }
  }
  return current;
}

std::vector<HnswIndex::Candidate> HnswIndex::SearchLayer(const float* query,
                                                         int entry, int ef,
                                                         int layer) const {
  std::unordered_set<int> visited;
  // Min-heap of frontier candidates (closest first).
  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      frontier;
  // Max-heap of current results (farthest first, for easy eviction).
  std::priority_queue<Candidate> results;

  const float entry_dist = Distance(query, VectorOf(entry));
  frontier.push(Candidate{entry_dist, entry});
  results.push(Candidate{entry_dist, entry});
  visited.insert(entry);

  // Scratch reused across frontier expansions so the parallel distance
  // pass doesn't allocate per iteration.
  std::vector<int> fresh;
  std::vector<float> fresh_dist;

  while (!frontier.empty()) {
    const Candidate closest = frontier.top();
    frontier.pop();
    if (closest.distance > results.top().distance &&
        static_cast<int>(results.size()) >= ef) {
      break;
    }
    // Distance evaluation is the hot part of an expansion; the heap
    // updates stay serial and in link order, so the beam (and the final
    // candidate list) is bit-identical to the single-threaded search.
    fresh.clear();
    for (int neighbor : links_[static_cast<size_t>(closest.node)]
                            .per_layer[static_cast<size_t>(layer)]) {
      if (visited.insert(neighbor).second) fresh.push_back(neighbor);
    }
    fresh_dist.resize(fresh.size());
    util::ParallelFor(
        0, static_cast<int64_t>(fresh.size()), util::GrainForCost(dim_),
        [&](int64_t ib, int64_t ie) {
          for (int64_t i = ib; i < ie; ++i) {
            fresh_dist[static_cast<size_t>(i)] =
                Distance(query, VectorOf(fresh[static_cast<size_t>(i)]));
          }
        });
    for (size_t i = 0; i < fresh.size(); ++i) {
      const float d = fresh_dist[i];
      if (static_cast<int>(results.size()) < ef ||
          d < results.top().distance) {
        frontier.push(Candidate{d, fresh[i]});
        results.push(Candidate{d, fresh[i]});
        if (static_cast<int>(results.size()) > ef) results.pop();
      }
    }
  }

  std::vector<Candidate> out;
  out.reserve(results.size());
  while (!results.empty()) {
    out.push_back(results.top());
    results.pop();
  }
  std::reverse(out.begin(), out.end());  // Closest first.
  return out;
}

void HnswIndex::SearchLayerInto(const float* query, int entry, int ef,
                                int layer, SearchScratch* s) const {
  // Epoch-stamped visited marks: bumping the epoch "clears" the array in
  // O(1) without touching memory, so repeat queries allocate nothing.
  if (s->visited.size() < static_cast<size_t>(count_)) {
    s->visited.resize(static_cast<size_t>(count_), 0);
  }
  if (++s->epoch == 0) {
    std::fill(s->visited.begin(), s->visited.end(), 0);
    s->epoch = 1;
  }
  auto& frontier = s->frontier;  // Min-heap by distance (DistGreater).
  auto& beam = s->beam;          // Max-heap by distance (DistLess).
  frontier.clear();
  beam.clear();

  const float entry_dist = Distance(query, VectorOf(entry));
  frontier.emplace_back(entry_dist, entry);
  beam.emplace_back(entry_dist, entry);
  s->visited[static_cast<size_t>(entry)] = s->epoch;

  auto& fresh = s->fresh;
  auto& fresh_dist = s->fresh_dist;
  const int64_t grain = util::GrainForCost(dim_);

  while (!frontier.empty()) {
    const std::pair<float, int> closest = frontier.front();
    std::pop_heap(frontier.begin(), frontier.end(), DistGreater);
    frontier.pop_back();
    if (closest.first > beam.front().first &&
        static_cast<int>(beam.size()) >= ef) {
      break;
    }
    fresh.clear();
    for (int neighbor : links_[static_cast<size_t>(closest.second)]
                            .per_layer[static_cast<size_t>(layer)]) {
      uint32_t& mark = s->visited[static_cast<size_t>(neighbor)];
      if (mark != s->epoch) {
        mark = s->epoch;
        fresh.push_back(neighbor);
      }
    }
    fresh_dist.resize(fresh.size());
    const auto eval = [&](int64_t ib, int64_t ie) {
      for (int64_t i = ib; i < ie; ++i) {
        fresh_dist[static_cast<size_t>(i)] =
            Distance(query, VectorOf(fresh[static_cast<size_t>(i)]));
      }
    };
    // Direct call on the serial path: ParallelFor's std::function envelope
    // would heap-allocate, and steady-state queries must not.
    if (static_cast<int64_t>(fresh.size()) <= grain ||
        util::GlobalThreadPool().num_threads() == 1) {
      eval(0, static_cast<int64_t>(fresh.size()));
    } else {
      util::ParallelFor(0, static_cast<int64_t>(fresh.size()), grain, eval);
    }
    for (size_t i = 0; i < fresh.size(); ++i) {
      const float d = fresh_dist[i];
      if (static_cast<int>(beam.size()) < ef || d < beam.front().first) {
        frontier.emplace_back(d, fresh[i]);
        std::push_heap(frontier.begin(), frontier.end(), DistGreater);
        beam.emplace_back(d, fresh[i]);
        std::push_heap(beam.begin(), beam.end(), DistLess);
        if (static_cast<int>(beam.size()) > ef) {
          std::pop_heap(beam.begin(), beam.end(), DistLess);
          beam.pop_back();
        }
      }
    }
  }
  // Ascending distance == the reverse of SearchLayer's pop order; both are
  // n pop_heap steps with the same comparator, so the lists match bit for
  // bit, ties included.
  std::sort_heap(beam.begin(), beam.end(), DistLess);
}

std::vector<int> HnswIndex::SelectNeighbors(std::vector<Candidate> candidates,
                                            int m) {
  std::sort(candidates.begin(), candidates.end());
  std::vector<int> out;
  out.reserve(static_cast<size_t>(m));
  for (const Candidate& c : candidates) {
    if (static_cast<int>(out.size()) >= m) break;
    out.push_back(c.node);
  }
  return out;
}

void HnswIndex::Add(int64_t id, const std::vector<float>& vector) {
  CHECK(owned_ids_.size() == static_cast<size_t>(count_))
      << "HnswIndex::Add on an index attached to external storage";
  if (dim_ == 0) dim_ = static_cast<int64_t>(vector.size());
  CHECK_EQ(static_cast<int64_t>(vector.size()), dim_)
      << "HnswIndex dimension mismatch";
  owned_ids_.push_back(id);
  const size_t offset = owned_vectors_.size();
  owned_vectors_.resize(offset + vector.size());
  L2NormalizeInto(vector.data(), dim_, owned_vectors_.data() + offset);
  ++count_;
  // push_back may have reallocated; rebind the active pointers.
  ids_ = owned_ids_.data();
  vectors_ = owned_vectors_.data();
  InsertNode();
}

void HnswIndex::AttachStorage(const int64_t* ids, const float* vectors,
                              int64_t count, int64_t dim) {
  CHECK_EQ(built_, 0) << "HnswIndex::AttachStorage on a non-empty graph";
  CHECK_GE(count, 0);
  owned_ids_.clear();
  owned_vectors_.clear();
  count_ = count;
  dim_ = dim;
  ids_ = ids;
  vectors_ = vectors;
}

void HnswIndex::InsertNode() {
  CHECK_LT(built_, count_) << "HnswIndex::InsertNode past the attached rows";
  const int node = static_cast<int>(built_++);
  const int level = RandomLevel();
  links_.emplace_back();
  links_.back().per_layer.resize(static_cast<size_t>(level) + 1);

  if (entry_point_ < 0) {
    entry_point_ = node;
    max_level_ = level;
    return;
  }

  const float* query = VectorOf(node);
  int current = entry_point_;

  // Descend greedily through layers above the new node's level.
  for (int layer = max_level_; layer > level; --layer) {
    current = GreedyClosest(query, current, layer);
  }

  // Insert with beam search on each shared layer.
  for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
    std::vector<Candidate> candidates =
        SearchLayer(query, current, options_.ef_construction, layer);
    const int m_max = layer == 0 ? 2 * options_.M : options_.M;
    std::vector<int> neighbors = SelectNeighbors(candidates, options_.M);

    auto& node_links = links_[static_cast<size_t>(node)]
                           .per_layer[static_cast<size_t>(layer)];
    node_links = neighbors;

    // Bidirectional links, shrinking over-full neighbour lists.
    for (int neighbor : neighbors) {
      auto& nbr_links = links_[static_cast<size_t>(neighbor)]
                            .per_layer[static_cast<size_t>(layer)];
      nbr_links.push_back(node);
      if (static_cast<int>(nbr_links.size()) > m_max) {
        std::vector<Candidate> pruned(nbr_links.size());
        const float* nbr_vec = VectorOf(neighbor);
        util::ParallelFor(
            0, static_cast<int64_t>(nbr_links.size()),
            util::GrainForCost(dim_), [&](int64_t ib, int64_t ie) {
              for (int64_t i = ib; i < ie; ++i) {
                const int candidate = nbr_links[static_cast<size_t>(i)];
                pruned[static_cast<size_t>(i)] = Candidate{
                    Distance(nbr_vec, VectorOf(candidate)), candidate};
              }
            });
        nbr_links = SelectNeighbors(std::move(pruned), m_max);
      }
    }
    if (!candidates.empty()) current = candidates.front().node;
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = node;
  }
}

void HnswIndex::SearchNormalized(const float* query, int k,
                                 SearchScratch* scratch,
                                 std::vector<SearchResult>* out) const {
  out->clear();
  if (entry_point_ < 0 || k <= 0) return;

  int current = entry_point_;
  for (int layer = max_level_; layer > 0; --layer) {
    current = GreedyClosest(query, current, layer);
  }
  const int ef = std::max(options_.ef_search, k);
  SearchLayerInto(query, current, ef, 0, scratch);

  const size_t take =
      std::min(scratch->beam.size(), static_cast<size_t>(k));
  for (size_t i = 0; i < take; ++i) {
    out->push_back(SearchResult{
        ids_[static_cast<size_t>(scratch->beam[i].second)],
        1.0f - scratch->beam[i].first});
  }
}

std::vector<SearchResult> HnswIndex::Search(const std::vector<float>& query,
                                            int k) const {
  std::vector<SearchResult> out;
  if (entry_point_ < 0 || k <= 0) return out;
  if (static_cast<int64_t>(query.size()) != dim_) {
    // Degrade to "no neighbours" instead of aborting; see FlatIndex.
    LOG(WARNING) << "HnswIndex: query dim " << query.size()
                 << " != index dim " << dim_ << "; returning no results";
    return out;
  }

  std::vector<float> q(query.size());
  L2NormalizeInto(query.data(), dim_, q.data());
  SearchScratch scratch;
  SearchNormalized(q.data(), k, &scratch, &out);
  return out;
}

void HnswIndex::SerializeGraph(std::string* out) const {
  util::AppendPod(out, static_cast<int32_t>(entry_point_));
  util::AppendPod(out, static_cast<int32_t>(max_level_));
  util::AppendPod(out, static_cast<int64_t>(links_.size()));
  for (const NodeLinks& node : links_) {
    util::AppendPod(out, static_cast<int32_t>(node.per_layer.size()));
    for (const std::vector<int>& layer : node.per_layer) {
      util::AppendPod(out, static_cast<int32_t>(layer.size()));
      for (int neighbor : layer) {
        util::AppendPod(out, static_cast<int32_t>(neighbor));
      }
    }
  }
}

util::Status HnswIndex::LoadGraph(util::BinaryReader* reader) {
  if (built_ != 0) {
    return util::Status::FailedPrecondition(
        "HnswIndex::LoadGraph on a non-empty graph");
  }
  const auto malformed = [](const std::string& what) {
    return util::Status::InvalidArgument("malformed HNSW graph: " + what);
  };
  int32_t entry = 0;
  int32_t max_level = 0;
  int64_t nodes = 0;
  if (!reader->Read(&entry) || !reader->Read(&max_level) ||
      !reader->Read(&nodes)) {
    return malformed("truncated header");
  }
  if (nodes != count_) {
    return malformed("node count " + std::to_string(nodes) +
                     " != attached rows " + std::to_string(count_));
  }
  if (nodes == 0) {
    if (entry != -1) return malformed("entry point in an empty graph");
    return util::Status::OK();
  }
  if (entry < 0 || entry >= nodes || max_level < 0) {
    return malformed("entry point or max level out of range");
  }
  links_.resize(static_cast<size_t>(nodes));
  for (int64_t n = 0; n < nodes; ++n) {
    int32_t num_layers = 0;
    if (!reader->Read(&num_layers) || num_layers < 1 ||
        num_layers > max_level + 1) {
      return malformed("layer count at node " + std::to_string(n));
    }
    auto& per_layer = links_[static_cast<size_t>(n)].per_layer;
    per_layer.resize(static_cast<size_t>(num_layers));
    for (int32_t l = 0; l < num_layers; ++l) {
      int32_t degree = 0;
      if (!reader->Read(&degree) || degree < 0 || degree > nodes) {
        return malformed("degree at node " + std::to_string(n));
      }
      auto& layer = per_layer[static_cast<size_t>(l)];
      layer.resize(static_cast<size_t>(degree));
      for (int32_t e = 0; e < degree; ++e) {
        int32_t neighbor = 0;
        if (!reader->Read(&neighbor) || neighbor < 0 || neighbor >= nodes) {
          return malformed("neighbour at node " + std::to_string(n));
        }
        layer[static_cast<size_t>(e)] = neighbor;
      }
    }
  }
  entry_point_ = entry;
  max_level_ = max_level;
  built_ = nodes;
  return util::Status::OK();
}

}  // namespace explainti::ann
