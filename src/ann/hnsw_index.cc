#include "ann/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace explainti::ann {

namespace {

void NormalizeInto(const std::vector<float>& in, float* out) {
  double norm_sq = 0.0;
  for (float v : in) norm_sq += static_cast<double>(v) * v;
  const float inv = norm_sq > 1e-24
                        ? static_cast<float>(1.0 / std::sqrt(norm_sq))
                        : 0.0f;
  for (size_t i = 0; i < in.size(); ++i) out[i] = in[i] * inv;
}

}  // namespace

HnswIndex::HnswIndex(HnswOptions options)
    : options_(options),
      level_multiplier_(1.0 / std::log(static_cast<double>(options.M))),
      rng_(options.seed) {
  CHECK_GE(options.M, 2);
  CHECK_GE(options.ef_construction, options.M);
}

float HnswIndex::Distance(const float* a, const float* b) const {
  // Vectors are unit-norm: cosine distance = 1 - dot.
  float dot = 0.0f;
  for (int64_t j = 0; j < dim_; ++j) dot += a[j] * b[j];
  return 1.0f - dot;
}

const float* HnswIndex::VectorOf(int node) const {
  return vectors_.data() + static_cast<int64_t>(node) * dim_;
}

int HnswIndex::RandomLevel() {
  const double u = std::max(rng_.Uniform(), 1e-12);
  return static_cast<int>(-std::log(u) * level_multiplier_);
}

int HnswIndex::GreedyClosest(const float* query, int entry, int layer) const {
  int current = entry;
  float current_dist = Distance(query, VectorOf(current));
  bool improved = true;
  while (improved) {
    improved = false;
    for (int neighbor : links_[static_cast<size_t>(current)]
                            .per_layer[static_cast<size_t>(layer)]) {
      const float d = Distance(query, VectorOf(neighbor));
      if (d < current_dist) {
        current = neighbor;
        current_dist = d;
        improved = true;
      }
    }
  }
  return current;
}

std::vector<HnswIndex::Candidate> HnswIndex::SearchLayer(const float* query,
                                                         int entry, int ef,
                                                         int layer) const {
  std::unordered_set<int> visited;
  // Min-heap of frontier candidates (closest first).
  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      frontier;
  // Max-heap of current results (farthest first, for easy eviction).
  std::priority_queue<Candidate> results;

  const float entry_dist = Distance(query, VectorOf(entry));
  frontier.push(Candidate{entry_dist, entry});
  results.push(Candidate{entry_dist, entry});
  visited.insert(entry);

  // Scratch reused across frontier expansions so the parallel distance
  // pass doesn't allocate per iteration.
  std::vector<int> fresh;
  std::vector<float> fresh_dist;

  while (!frontier.empty()) {
    const Candidate closest = frontier.top();
    frontier.pop();
    if (closest.distance > results.top().distance &&
        static_cast<int>(results.size()) >= ef) {
      break;
    }
    // Distance evaluation is the hot part of an expansion; the heap
    // updates stay serial and in link order, so the beam (and the final
    // candidate list) is bit-identical to the single-threaded search.
    fresh.clear();
    for (int neighbor : links_[static_cast<size_t>(closest.node)]
                            .per_layer[static_cast<size_t>(layer)]) {
      if (visited.insert(neighbor).second) fresh.push_back(neighbor);
    }
    fresh_dist.resize(fresh.size());
    util::ParallelFor(
        0, static_cast<int64_t>(fresh.size()), util::GrainForCost(dim_),
        [&](int64_t ib, int64_t ie) {
          for (int64_t i = ib; i < ie; ++i) {
            fresh_dist[static_cast<size_t>(i)] =
                Distance(query, VectorOf(fresh[static_cast<size_t>(i)]));
          }
        });
    for (size_t i = 0; i < fresh.size(); ++i) {
      const float d = fresh_dist[i];
      if (static_cast<int>(results.size()) < ef ||
          d < results.top().distance) {
        frontier.push(Candidate{d, fresh[i]});
        results.push(Candidate{d, fresh[i]});
        if (static_cast<int>(results.size()) > ef) results.pop();
      }
    }
  }

  std::vector<Candidate> out;
  out.reserve(results.size());
  while (!results.empty()) {
    out.push_back(results.top());
    results.pop();
  }
  std::reverse(out.begin(), out.end());  // Closest first.
  return out;
}

std::vector<int> HnswIndex::SelectNeighbors(std::vector<Candidate> candidates,
                                            int m) {
  std::sort(candidates.begin(), candidates.end());
  std::vector<int> out;
  out.reserve(static_cast<size_t>(m));
  for (const Candidate& c : candidates) {
    if (static_cast<int>(out.size()) >= m) break;
    out.push_back(c.node);
  }
  return out;
}

void HnswIndex::Add(int64_t id, const std::vector<float>& vector) {
  if (dim_ == 0) dim_ = static_cast<int64_t>(vector.size());
  CHECK_EQ(static_cast<int64_t>(vector.size()), dim_)
      << "HnswIndex dimension mismatch";

  const int node = static_cast<int>(external_ids_.size());
  external_ids_.push_back(id);
  const size_t offset = vectors_.size();
  vectors_.resize(offset + vector.size());
  NormalizeInto(vector, vectors_.data() + offset);

  const int level = RandomLevel();
  links_.emplace_back();
  links_.back().per_layer.resize(static_cast<size_t>(level) + 1);

  if (entry_point_ < 0) {
    entry_point_ = node;
    max_level_ = level;
    return;
  }

  const float* query = VectorOf(node);
  int current = entry_point_;

  // Descend greedily through layers above the new node's level.
  for (int layer = max_level_; layer > level; --layer) {
    current = GreedyClosest(query, current, layer);
  }

  // Insert with beam search on each shared layer.
  for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
    std::vector<Candidate> candidates =
        SearchLayer(query, current, options_.ef_construction, layer);
    const int m_max = layer == 0 ? 2 * options_.M : options_.M;
    std::vector<int> neighbors = SelectNeighbors(candidates, options_.M);

    auto& node_links = links_[static_cast<size_t>(node)]
                           .per_layer[static_cast<size_t>(layer)];
    node_links = neighbors;

    // Bidirectional links, shrinking over-full neighbour lists.
    for (int neighbor : neighbors) {
      auto& nbr_links = links_[static_cast<size_t>(neighbor)]
                            .per_layer[static_cast<size_t>(layer)];
      nbr_links.push_back(node);
      if (static_cast<int>(nbr_links.size()) > m_max) {
        std::vector<Candidate> pruned(nbr_links.size());
        const float* nbr_vec = VectorOf(neighbor);
        util::ParallelFor(
            0, static_cast<int64_t>(nbr_links.size()),
            util::GrainForCost(dim_), [&](int64_t ib, int64_t ie) {
              for (int64_t i = ib; i < ie; ++i) {
                const int candidate = nbr_links[static_cast<size_t>(i)];
                pruned[static_cast<size_t>(i)] = Candidate{
                    Distance(nbr_vec, VectorOf(candidate)), candidate};
              }
            });
        nbr_links = SelectNeighbors(std::move(pruned), m_max);
      }
    }
    if (!candidates.empty()) current = candidates.front().node;
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = node;
  }
}

std::vector<SearchResult> HnswIndex::Search(const std::vector<float>& query,
                                            int k) const {
  std::vector<SearchResult> out;
  if (entry_point_ < 0 || k <= 0) return out;
  if (static_cast<int64_t>(query.size()) != dim_) {
    // Degrade to "no neighbours" instead of aborting; see FlatIndex.
    LOG(WARNING) << "HnswIndex: query dim " << query.size()
                 << " != index dim " << dim_ << "; returning no results";
    return out;
  }

  std::vector<float> q(query.size());
  NormalizeInto(query, q.data());

  int current = entry_point_;
  for (int layer = max_level_; layer > 0; --layer) {
    current = GreedyClosest(q.data(), current, layer);
  }
  const int ef = std::max(options_.ef_search, k);
  std::vector<Candidate> candidates = SearchLayer(q.data(), current, ef, 0);

  const size_t take =
      std::min(candidates.size(), static_cast<size_t>(k));
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(SearchResult{external_ids_[static_cast<size_t>(
                                   candidates[i].node)],
                               1.0f - candidates[i].distance});
  }
  return out;
}

}  // namespace explainti::ann
