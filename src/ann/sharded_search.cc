#include "ann/sharded_search.h"

#include <algorithm>
#include <cmath>

#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace explainti::ann {

void L2NormalizeInto(const float* in, int64_t n, float* out) {
  double norm_sq = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    norm_sq += static_cast<double>(in[i]) * in[i];
  }
  const float inv = norm_sq > 1e-24
                        ? static_cast<float>(1.0 / std::sqrt(norm_sq))
                        : 0.0f;
  for (int64_t i = 0; i < n; ++i) out[i] = in[i] * inv;
}

namespace {

// "a outranks b" under the merge's total order: higher similarity first,
// ties broken by ascending global id. A total order over distinct ids, so
// the global top-k is a set — not an artifact of merge order.
inline bool Outranks(const SearchResult& a, const SearchResult& b) {
  if (a.similarity != b.similarity) return a.similarity > b.similarity;
  return a.id < b.id;
}

// Cross-query scratch for one querying thread. Slot i belongs to shard i
// exclusively during the fan-out, so parallel shard queries never share
// state; the buffers persist across queries so the steady state allocates
// nothing new.
struct FanoutScratch {
  std::vector<float> qnorm;
  std::vector<std::vector<SearchResult>> hits;
  std::vector<uint8_t> degraded;
  std::vector<SearchScratch> search;
};

FanoutScratch& LocalScratch() {
  static thread_local FanoutScratch scratch;
  return scratch;
}

}  // namespace

void MergeTopK(const std::vector<SearchResult>* shard_hits,
               int64_t num_shards, int k, int64_t exclude_id,
               std::vector<SearchResult>* out) {
  out->clear();
  if (k <= 0) return;
  // Bounded max-heap ordered by Outranks: the front is the WORST kept hit
  // (everything else outranks it), so replacing the front evicts the
  // right element in O(log k).
  const auto heap_cmp = [](const SearchResult& a, const SearchResult& b) {
    return Outranks(a, b);
  };
  for (int64_t s = 0; s < num_shards; ++s) {
    for (const SearchResult& hit : shard_hits[s]) {
      if (hit.id == exclude_id) continue;
      if (static_cast<int>(out->size()) < k) {
        out->push_back(hit);
        std::push_heap(out->begin(), out->end(), heap_cmp);
      } else if (Outranks(hit, out->front())) {
        std::pop_heap(out->begin(), out->end(), heap_cmp);
        out->back() = hit;
        std::push_heap(out->begin(), out->end(), heap_cmp);
      }
    }
  }
  std::sort(out->begin(), out->end(), Outranks);
}

void ShardedSearchInto(const ShardRef* shards, int64_t num_shards,
                       const std::vector<float>& query, int k,
                       int64_t exclude_id, std::vector<SearchResult>* out,
                       ShardedQueryStats* stats) {
  *stats = ShardedQueryStats{};
  out->clear();
  if (num_shards <= 0 || k <= 0) return;

  FanoutScratch& s = LocalScratch();
  if (s.hits.size() < static_cast<size_t>(num_shards)) {
    s.hits.resize(static_cast<size_t>(num_shards));
    s.degraded.resize(static_cast<size_t>(num_shards));
    s.search.resize(static_cast<size_t>(num_shards));
  }
  const int64_t dim = shards[0].flat->dim();
  s.qnorm.resize(static_cast<size_t>(dim));
  L2NormalizeInto(query.data(), dim, s.qnorm.data());
  const float* qnorm = s.qnorm.data();

  // Over-fetch by one per shard so dropping exclude_id in the merge can
  // never cost a real hit.
  const int fetch = k + 1;
  const auto run_shards = [&](int64_t sb, int64_t se) {
    for (int64_t i = sb; i < se; ++i) {
      std::vector<SearchResult>& hits = s.hits[static_cast<size_t>(i)];
      SearchScratch& scratch = s.search[static_cast<size_t>(i)];
      const ShardRef& shard = shards[i];
      hits.clear();
      bool degraded = shard.hnsw == nullptr;
      if (!degraded) {
        if (util::Status fault = FAULT_POINT("ann.query"); !fault.ok()) {
          LOG(WARNING) << "ANN query failed on shard " << i
                       << ", falling back to flat tier: "
                       << fault.ToString();
          degraded = true;
        } else {
          shard.hnsw->SearchNormalized(qnorm, fetch, &scratch, &hits);
          // A partially built graph can come back empty on a non-empty
          // shard.
          if (hits.empty() && shard.flat->size() > 0) degraded = true;
        }
      }
      if (degraded) {
        shard.flat->SearchNormalized(qnorm, fetch, &scratch, &hits);
      }
      s.degraded[static_cast<size_t>(i)] = degraded ? 1 : 0;
    }
  };
  // Serial fan-outs skip ParallelFor entirely: its std::function envelope
  // heap-allocates, and the single-shard/single-thread steady state is
  // gated at exactly zero allocations per query.
  if (num_shards == 1 || util::GlobalThreadPool().num_threads() == 1) {
    run_shards(0, num_shards);
  } else {
    util::ParallelFor(0, num_shards, 1, run_shards);
  }

  for (int64_t i = 0; i < num_shards; ++i) {
    if (s.degraded[static_cast<size_t>(i)] != 0) ++stats->shards_degraded;
  }
  MergeTopK(s.hits.data(), num_shards, k, exclude_id, out);
}

}  // namespace explainti::ann
