#ifndef EXPLAINTI_GRAPH_COLUMN_GRAPH_H_
#define EXPLAINTI_GRAPH_COLUMN_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace explainti::graph {

/// How a neighbour is connected to a sample (which bridge node links them).
enum class BridgeKind {
  kTitle,   ///< Shared table title.
  kHeader,  ///< Shared column header (or header pair for the pair graph).
  kSelf,    ///< Degenerate fallback when a sample has no neighbours.
};

const char* BridgeKindName(BridgeKind kind);

/// A sampled 2-hop neighbour: another sample id plus the bridge that
/// connects it (kept for rendering structural explanations).
struct SampledNeighbor {
  int sample_id = -1;
  BridgeKind via = BridgeKind::kSelf;
};

/// The column graph G_t / column-pair graph G_r of Algorithm 3.
///
/// Samples (columns, or column pairs) are nodes; table titles and column
/// headers (header pairs) are bridge nodes. Two samples are 2-hop
/// neighbours when they share a title or a header, which is exactly the
/// implicit intra-table (same title) and inter-table (same header, or same
/// title string across tables) connection structure the paper exploits.
/// The graph is "lightweight": columns are whole nodes, so its size is
/// O(total columns), not O(cells).
class ColumnGraph {
 public:
  ColumnGraph() = default;

  /// Registers sample `sample_id` (dense ids 0..N-1, in order) under its
  /// title and header bridge keys. Keys should be normalised (lower-case)
  /// by the caller; the pair graph passes a combined "h_i||h_j" header key.
  void AddSample(int sample_id, const std::string& title_key,
                 const std::string& header_key);

  /// Number of registered samples.
  int num_samples() const { return num_samples_; }

  /// Number of distinct bridge nodes (titles + headers).
  int64_t num_bridges() const {
    return static_cast<int64_t>(title_groups_.size() + header_groups_.size());
  }

  /// All distinct 2-hop neighbours of `sample_id` (excluding itself).
  std::vector<SampledNeighbor> Neighbors(int sample_id) const;

  /// Uniformly samples `r` 2-hop neighbours, with replacement when the
  /// sample has fewer than `r` distinct neighbours (Section III-D.2). A
  /// sample with no neighbours at all yields `r` copies of itself with
  /// BridgeKind::kSelf so aggregation degenerates gracefully.
  std::vector<SampledNeighbor> SampleNeighbors(int sample_id, int r,
                                               util::Rng& rng) const;

 private:
  struct Membership {
    int title_group = -1;
    int header_group = -1;
  };

  int num_samples_ = 0;
  std::unordered_map<std::string, int> title_group_ids_;
  std::unordered_map<std::string, int> header_group_ids_;
  std::vector<std::vector<int>> title_groups_;   // Group id -> sample ids.
  std::vector<std::vector<int>> header_groups_;  // Group id -> sample ids.
  std::vector<Membership> memberships_;          // Sample id -> groups.
};

}  // namespace explainti::graph

#endif  // EXPLAINTI_GRAPH_COLUMN_GRAPH_H_
