#include "graph/column_graph.h"

#include <unordered_set>

#include "util/logging.h"

namespace explainti::graph {

const char* BridgeKindName(BridgeKind kind) {
  switch (kind) {
    case BridgeKind::kTitle:
      return "title";
    case BridgeKind::kHeader:
      return "header";
    case BridgeKind::kSelf:
      return "self";
  }
  return "?";
}

void ColumnGraph::AddSample(int sample_id, const std::string& title_key,
                            const std::string& header_key) {
  CHECK_EQ(sample_id, num_samples_)
      << "samples must be added with dense, increasing ids";
  ++num_samples_;

  Membership membership;
  {
    auto [it, inserted] = title_group_ids_.try_emplace(
        title_key, static_cast<int>(title_groups_.size()));
    if (inserted) title_groups_.emplace_back();
    membership.title_group = it->second;
    title_groups_[static_cast<size_t>(it->second)].push_back(sample_id);
  }
  {
    auto [it, inserted] = header_group_ids_.try_emplace(
        header_key, static_cast<int>(header_groups_.size()));
    if (inserted) header_groups_.emplace_back();
    membership.header_group = it->second;
    header_groups_[static_cast<size_t>(it->second)].push_back(sample_id);
  }
  memberships_.push_back(membership);
}

std::vector<SampledNeighbor> ColumnGraph::Neighbors(int sample_id) const {
  CHECK(sample_id >= 0 && sample_id < num_samples_);
  const Membership& m = memberships_[static_cast<size_t>(sample_id)];
  std::vector<SampledNeighbor> out;
  std::unordered_set<int> seen;
  for (int other : title_groups_[static_cast<size_t>(m.title_group)]) {
    if (other == sample_id) continue;
    if (seen.insert(other).second) {
      out.push_back(SampledNeighbor{other, BridgeKind::kTitle});
    }
  }
  for (int other : header_groups_[static_cast<size_t>(m.header_group)]) {
    if (other == sample_id) continue;
    if (seen.insert(other).second) {
      out.push_back(SampledNeighbor{other, BridgeKind::kHeader});
    }
  }
  return out;
}

std::vector<SampledNeighbor> ColumnGraph::SampleNeighbors(
    int sample_id, int r, util::Rng& rng) const {
  CHECK_GT(r, 0);
  CHECK(sample_id >= 0 && sample_id < num_samples_);
  const Membership& m = memberships_[static_cast<size_t>(sample_id)];
  const auto& title_group = title_groups_[static_cast<size_t>(m.title_group)];
  const auto& header_group =
      header_groups_[static_cast<size_t>(m.header_group)];
  // Sizes excluding the sample itself (it belongs to both groups).
  const size_t title_others = title_group.size() - 1;
  const size_t header_others = header_group.size() - 1;

  std::vector<SampledNeighbor> out;
  out.reserve(static_cast<size_t>(r));
  if (title_others + header_others == 0) {
    out.assign(static_cast<size_t>(r),
               SampledNeighbor{sample_id, BridgeKind::kSelf});
    return out;
  }

  // Uniform over the multiset of (bridge, neighbour) edges; a neighbour
  // reachable via both bridges is proportionally more likely, matching
  // uniform sampling over graph edges.
  const size_t total = title_others + header_others;
  while (out.size() < static_cast<size_t>(r)) {
    size_t pick = static_cast<size_t>(rng.UniformInt(total));
    if (pick < title_others) {
      // Skip over the sample itself within its group.
      int chosen = title_group[pick];
      if (chosen == sample_id) chosen = title_group[title_others];
      out.push_back(SampledNeighbor{chosen, BridgeKind::kTitle});
    } else {
      pick -= title_others;
      int chosen = header_group[pick];
      if (chosen == sample_id) chosen = header_group[header_others];
      out.push_back(SampledNeighbor{chosen, BridgeKind::kHeader});
    }
  }
  return out;
}

}  // namespace explainti::graph
