#include "core/inference_plan.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/explain_ti_model.h"
#include "core/inference_session.h"
#include "data/wiki_generator.h"
#include "golden_evidence.h"
#include "tensor/workspace.h"
#include "util/alloc_counter.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace explainti::core {
namespace {

// Pins EXPLAINTI_PLAN for one model construction and restores the outer
// environment after — the mode is latched in the session constructor, so
// scoping the variable around the ctor is enough.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

class GlobalPoolGuard {
 public:
  GlobalPoolGuard() = default;
  ~GlobalPoolGuard() {
    util::SetGlobalThreadCount(util::ConfiguredThreadCount());
  }
};

// Arms one fault site for the scope (mirrors the serve chaos harness).
class ArmedFault {
 public:
  explicit ArmedFault(const std::string& site) {
    util::fault::FaultSpec spec;
    spec.kind = util::fault::FaultKind::kError;
    spec.code = util::StatusCode::kInternal;
    spec.message = "chaos: " + site;
    util::fault::FaultRegistry::Instance().Arm(site, spec);
  }
  ~ArmedFault() { util::fault::FaultRegistry::Instance().DisarmAll(); }
};

data::TableCorpus TinyCorpus() {
  data::WikiTableOptions options;
  options.num_tables = 28;
  return data::GenerateWikiTableCorpus(options);
}

ExplainTiConfig TinyConfig() {
  ExplainTiConfig config;
  config.base_model = "bert";
  config.sample_size = 4;
  config.top_k = 3;
  return config;
}

void ExpectBitEqual(const std::vector<float>& a, const std::vector<float>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << what;
  }
}

uint32_t Bits(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Full structural comparison of two explanations: prediction, LE windows,
// GE retrievals, and SE neighbours must all match bit for bit between the
// compiled-plan path and the graph walk.
void ExpectExplanationsBitEqual(const Explanation& want,
                                const Explanation& got) {
  EXPECT_EQ(want.predicted_labels, got.predicted_labels);
  ExpectBitEqual(want.probabilities, got.probabilities, "probabilities");
  ASSERT_EQ(want.local.size(), got.local.size());
  for (size_t i = 0; i < want.local.size(); ++i) {
    EXPECT_EQ(want.local[i].window_start, got.local[i].window_start);
    EXPECT_EQ(want.local[i].window_end, got.local[i].window_end);
    EXPECT_EQ(Bits(want.local[i].relevance), Bits(got.local[i].relevance))
        << "LE relevance at " << i;
  }
  ASSERT_EQ(want.global.size(), got.global.size());
  for (size_t i = 0; i < want.global.size(); ++i) {
    EXPECT_EQ(want.global[i].train_sample_id, got.global[i].train_sample_id);
    EXPECT_EQ(Bits(want.global[i].influence), Bits(got.global[i].influence))
        << "GE influence at " << i;
  }
  ASSERT_EQ(want.structural.size(), got.structural.size());
  for (size_t i = 0; i < want.structural.size(); ++i) {
    EXPECT_EQ(want.structural[i].neighbor_sample_id,
              got.structural[i].neighbor_sample_id);
    EXPECT_EQ(Bits(want.structural[i].attention),
              Bits(got.structural[i].attention))
        << "SE attention at " << i;
  }
  EXPECT_EQ(want.ann_degraded, got.ann_degraded);
}

std::vector<int> SampleIds(const TaskData& task) {
  std::vector<int> ids;
  const int n = static_cast<int>(task.samples.size());
  for (int id = 0; id < n && static_cast<int>(ids.size()) < 6; id += 3) {
    ids.push_back(id);
  }
  return ids;
}

// -- Golden bit-equality: compiled plans vs the graph walk -----------------

// Two sessions over identical weights (same seed, same corpus), one
// serving from compiled plans, one forced onto the graph walk: every
// serving method must agree bit for bit on every sample of every task.
TEST(InferencePlanTest, PlanServesBitIdenticalToGraphWalk) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(2);
  const data::TableCorpus corpus = TinyCorpus();
  auto plan_model = [&] {
    ScopedEnv env("EXPLAINTI_PLAN", "on");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  auto graph_model = [&] {
    ScopedEnv env("EXPLAINTI_PLAN", "off");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  plan_model->RefreshStores();
  graph_model->RefreshStores();
  const InferenceSession& plan = plan_model->session();
  const InferenceSession& graph = graph_model->session();
  ASSERT_TRUE(plan.plans_enabled());
  ASSERT_GT(plan.plan_stats().plans_built, 0);
  ASSERT_FALSE(graph.plans_enabled());

  for (TaskKind kind : {TaskKind::kType, TaskKind::kRelation}) {
    if (!plan.HasTask(kind)) continue;
    const std::vector<int> ids = SampleIds(plan.task_data(kind));
    for (int id : ids) {
      EXPECT_EQ(plan.Predict(kind, id), graph.Predict(kind, id))
          << "Predict diverged, sample " << id;
      ExpectBitEqual(plan.PredictProbabilities(kind, id),
                     graph.PredictProbabilities(kind, id),
                     "PredictProbabilities");
      ExpectExplanationsBitEqual(graph.Explain(kind, id),
                                 plan.Explain(kind, id));
    }
    const auto plan_embs = plan.EncodeBatch(kind, ids);
    const auto graph_embs = graph.EncodeBatch(kind, ids);
    ASSERT_EQ(plan_embs.size(), graph_embs.size());
    for (size_t i = 0; i < plan_embs.size(); ++i) {
      ExpectBitEqual(plan_embs[i], graph_embs[i], "EncodeBatch");
    }
  }
  EXPECT_GT(plan.plan_stats().plan_runs, 0);
  EXPECT_EQ(plan.plan_stats().graph_runs, 0)
      << "a sample unexpectedly fell back to the graph walk";
  EXPECT_GT(graph.plan_stats().graph_runs, 0);
  EXPECT_EQ(graph.plan_stats().plan_runs, 0);
}

// With structural explanations off the plan folds the classifier head in
// and Predict never touches the tensor graph at all; outputs must still
// match the graph walk bit for bit.
TEST(InferencePlanTest, FullPlanWithFoldedHeadWhenStructuralOff) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  ExplainTiConfig config = TinyConfig();
  config.use_structural = false;
  auto plan_model = [&] {
    ScopedEnv env("EXPLAINTI_PLAN", "on");
    return std::make_unique<ExplainTiModel>(config, corpus);
  }();
  auto graph_model = [&] {
    ScopedEnv env("EXPLAINTI_PLAN", "off");
    return std::make_unique<ExplainTiModel>(config, corpus);
  }();
  const InferenceSession& plan = plan_model->session();
  ASSERT_TRUE(plan.plans_enabled());

  const std::vector<int> ids = SampleIds(plan.task_data(TaskKind::kType));
  const InferencePlan* compiled = plan.PlanFor(TaskKind::kType, ids.front());
  ASSERT_NE(compiled, nullptr);
  EXPECT_GE(compiled->logits_off, 0) << "head was not folded into the plan";
  EXPECT_GT(compiled->num_labels, 0);

  for (int id : ids) {
    EXPECT_EQ(plan.Predict(TaskKind::kType, id),
              graph_model->session().Predict(TaskKind::kType, id));
    ExpectBitEqual(
        plan.PredictProbabilities(TaskKind::kType, id),
        graph_model->session().PredictProbabilities(TaskKind::kType, id),
        "folded-head probabilities");
  }
}

// -- Plan keying: per task, per sequence length ----------------------------

// Switching task mid-stream must select the right compiled plan each
// call: plans are keyed per (task, seq_len), so interleaved type/relation
// traffic answers exactly like two separate per-task streams.
TEST(InferencePlanTest, TaskSwitchMidStreamSelectsTheRightPlan) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  ScopedEnv env("EXPLAINTI_PLAN", "on");
  ExplainTiModel model(TinyConfig(), corpus);
  const InferenceSession& session = model.session();
  ASSERT_TRUE(session.plans_enabled());
  if (!session.HasTask(TaskKind::kRelation)) {
    GTEST_SKIP() << "corpus produced no relation task";
  }

  const std::vector<int> type_ids = SampleIds(session.task_data(TaskKind::kType));
  const std::vector<int> rel_ids =
      SampleIds(session.task_data(TaskKind::kRelation));

  // Each sample's plan matches its own shape (the relation serialization
  // differs from the type one, so the two tasks genuinely exercise
  // distinct plans even at equal lengths — head widths differ).
  for (int id : type_ids) {
    const InferencePlan* p = session.PlanFor(TaskKind::kType, id);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->seq_len,
              static_cast<int64_t>(session.task_data(TaskKind::kType)
                                       .samples[static_cast<size_t>(id)]
                                       .seq.ids.size()));
  }
  ASSERT_NE(session.PlanFor(TaskKind::kType, type_ids.front()),
            session.PlanFor(TaskKind::kRelation, rel_ids.front()))
      << "type and relation traffic share one plan object";

  // Per-task reference results from task-homogeneous streams...
  std::vector<std::vector<float>> want_type, want_rel;
  for (int id : type_ids) {
    want_type.push_back(session.PredictProbabilities(TaskKind::kType, id));
  }
  for (int id : rel_ids) {
    want_rel.push_back(session.PredictProbabilities(TaskKind::kRelation, id));
  }
  // ...must be reproduced exactly by an interleaved stream.
  const size_t rounds = std::max(type_ids.size(), rel_ids.size());
  for (size_t i = 0; i < rounds; ++i) {
    if (i < type_ids.size()) {
      ExpectBitEqual(session.PredictProbabilities(TaskKind::kType, type_ids[i]),
                     want_type[i], "interleaved type");
    }
    if (i < rel_ids.size()) {
      ExpectBitEqual(
          session.PredictProbabilities(TaskKind::kRelation, rel_ids[i]),
          want_rel[i], "interleaved relation");
    }
  }
}

// Batch composition must not affect results: a sample served alone, in a
// full batch, or per-sample gives identical bits (each plan execution is
// independent — per-thread arenas, no cross-sample state).
TEST(InferencePlanTest, BatchSizeOneMatchesFullBatch) {
  GlobalPoolGuard guard;
  const data::TableCorpus corpus = TinyCorpus();
  ScopedEnv env("EXPLAINTI_PLAN", "on");
  ExplainTiModel model(TinyConfig(), corpus);
  model.RefreshStores();
  const InferenceSession& session = model.session();
  ASSERT_TRUE(session.plans_enabled());
  const std::vector<int> ids = SampleIds(session.task_data(TaskKind::kType));

  util::SetGlobalThreadCount(4);
  const auto full = session.PredictProbabilitiesBatch(TaskKind::kType, ids);
  ASSERT_EQ(full.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto single =
        session.PredictProbabilitiesBatch(TaskKind::kType, {ids[i]});
    ASSERT_EQ(single.size(), 1u);
    ExpectBitEqual(single[0], full[i], "batch=1 vs full batch");
    util::SetGlobalThreadCount(1);
    ExpectBitEqual(session.PredictProbabilities(TaskKind::kType, ids[i]),
                   full[i], "per-sample vs full batch");
    util::SetGlobalThreadCount(4);
  }
}

// -- Fallback and mode selection -------------------------------------------

// A failed plan build (here: the plan.build chaos fault) must degrade the
// session to the graph walk — same answers, zero plans, no error.
TEST(InferencePlanTest, BuildFaultFallsBackToGraphWalkBitIdentically) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  auto reference = [&] {
    ScopedEnv env("EXPLAINTI_PLAN", "on");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  ASSERT_TRUE(reference->session().plans_enabled());

  auto faulted = [&] {
    ScopedEnv env("EXPLAINTI_PLAN", "on");
    ArmedFault fault("plan.build");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  const InferenceSession& degraded = faulted->session();
  EXPECT_FALSE(degraded.plans_enabled());
  EXPECT_EQ(degraded.plan_stats().plans_built, 0);
  EXPECT_EQ(degraded.PlanFor(TaskKind::kType, 0), nullptr);

  for (int id : SampleIds(degraded.task_data(TaskKind::kType))) {
    ExpectBitEqual(degraded.PredictProbabilities(TaskKind::kType, id),
                   reference->session().PredictProbabilities(TaskKind::kType,
                                                             id),
                   "faulted-session probabilities");
  }
  EXPECT_GT(degraded.plan_stats().graph_runs, 0);
  EXPECT_EQ(degraded.plan_stats().plan_runs, 0);
}

TEST(InferencePlanTest, EnvOffDisablesPlans) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  ScopedEnv env("EXPLAINTI_PLAN", "off");
  ExplainTiModel model(TinyConfig(), corpus);
  const InferenceSession& session = model.session();
  EXPECT_FALSE(session.plans_enabled());
  EXPECT_EQ(session.plan_mode(), InferenceSession::PlanMode::kOff);
  EXPECT_FALSE(session.Predict(TaskKind::kType, 0).empty());
  EXPECT_GT(session.plan_stats().graph_runs, 0);
}

// Verify mode runs both paths per call and CHECK-fails the process on any
// bit divergence — so simply serving a few calls is the assertion.
TEST(InferencePlanTest, VerifyModeCrossChecksEveryCall) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  ScopedEnv env("EXPLAINTI_PLAN", "verify");
  ExplainTiModel model(TinyConfig(), corpus);
  model.RefreshStores();
  const InferenceSession& session = model.session();
  ASSERT_TRUE(session.plans_enabled());
  EXPECT_EQ(session.plan_mode(), InferenceSession::PlanMode::kVerify);

  const std::vector<int> ids = SampleIds(session.task_data(TaskKind::kType));
  for (int id : ids) {
    session.Predict(TaskKind::kType, id);
    session.Explain(TaskKind::kType, id);
  }
  session.EncodeBatch(TaskKind::kType, ids);
  EXPECT_GT(session.plan_stats().plan_runs, 0);
}

// -- Hot-swap: plans are per-generation ------------------------------------

// A swap replica compiles its own plans (the old generation's die with
// its session), and serves the reloaded weights bit-identically.
TEST(InferencePlanTest, HotSwapReplicaGetsFreshPlans) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  ScopedEnv env("EXPLAINTI_PLAN", "on");
  ExplainTiModel model(TinyConfig(), corpus);
  model.RefreshStores();
  const std::string path = ::testing::TempDir() + "/plan_swap_weights.bin";
  ASSERT_TRUE(model.SaveWeights(path).ok());

  auto replica = LoadReplicaForSwap(TinyConfig(), corpus, path);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  const InferenceSession& fresh = (*replica)->session();
  ASSERT_TRUE(fresh.plans_enabled());
  EXPECT_GT(fresh.plan_stats().plans_built, 0);

  const std::vector<int> ids = SampleIds(model.task_data(TaskKind::kType));
  // Distinct plan objects per generation — the replica did not inherit
  // (or dangle into) the old session's cache.
  EXPECT_NE(fresh.PlanFor(TaskKind::kType, ids.front()),
            model.session().PlanFor(TaskKind::kType, ids.front()));
  for (int id : ids) {
    ExpectBitEqual(fresh.PredictProbabilities(TaskKind::kType, id),
                   model.session().PredictProbabilities(TaskKind::kType, id),
                   "replica probabilities");
  }
}

// -- Steady state: zero allocations, zero arena misses ---------------------

// The executor's whole scratch arena comes from the per-thread workspace
// pool: once warmed, RunPlan performs zero heap allocations and never
// misses the buffer pool.
TEST(InferencePlanTest, SteadyStateRunPlanIsZeroAlloc) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  ScopedEnv env("EXPLAINTI_PLAN", "on");
  ExplainTiModel model(TinyConfig(), corpus);
  const InferenceSession& session = model.session();
  ASSERT_TRUE(session.plans_enabled());

  const TaskData& task = session.task_data(TaskKind::kType);
  const int id = SampleIds(task).front();
  const InferencePlan* plan = session.PlanFor(TaskKind::kType, id);
  ASSERT_NE(plan, nullptr);
  const TaskSample& sample = task.samples[static_cast<size_t>(id)];

  std::vector<float> encoder_out(
      static_cast<size_t>(plan->seq_len * plan->d_model));
  std::vector<float> logits(static_cast<size_t>(plan->num_labels));
  PlanRun run;
  run.token_ids = sample.seq.ids.data();
  run.segment_ids = plan->has_segments ? sample.seq.segments.data() : nullptr;
  run.encoder_out = encoder_out.data();
  run.encoder_out_rows = plan->seq_len;
  run.logits = plan->logits_off >= 0 ? logits.data() : nullptr;

  RunPlan(*plan, run);  // Warm-up: seeds the arena bucket.
  RunPlan(*plan, run);

  const tensor::WorkspaceStats ws_before = tensor::ThisThreadWorkspaceStats();
  const util::AllocCounts heap_before = util::ThisThreadAllocCounts();
  for (int i = 0; i < 16; ++i) RunPlan(*plan, run);
  const util::AllocCounts heap_after = util::ThisThreadAllocCounts();
  const tensor::WorkspaceStats ws_after = tensor::ThisThreadWorkspaceStats();

  EXPECT_EQ(heap_after.allocations - heap_before.allocations, 0u)
      << "warmed-up RunPlan allocated on the heap";
  EXPECT_EQ(ws_after.buffer_misses, ws_before.buffer_misses)
      << "warmed-up RunPlan missed the workspace buffer pool";
  EXPECT_GT(ws_after.buffer_acquires, ws_before.buffer_acquires);
}

// -- Golden evidence: every fp32 path tells the same story -----------------

// The shared golden-evidence fixture (tests/golden_evidence.h) pins the
// explanation evidence across serving configurations: the compiled plan
// path, the graph walk, and an explicit EXPLAINTI_PRECISION=fp32 session
// must surface identical top-window token sets on the golden samples.
// (The quantized gate in quantized_test.cc scores int8 sessions against
// the same fixture with a tolerance; the fp32 paths get none.)
TEST(InferencePlanTest, GoldenEvidenceAgreesAcrossFp32Paths) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = explainti::testing::GoldenCorpus();
  auto plan_model = [&] {
    ScopedEnv env("EXPLAINTI_PLAN", "on");
    return std::make_unique<ExplainTiModel>(explainti::testing::GoldenConfig(),
                                            corpus);
  }();
  auto graph_model = [&] {
    ScopedEnv env("EXPLAINTI_PLAN", "off");
    return std::make_unique<ExplainTiModel>(explainti::testing::GoldenConfig(),
                                            corpus);
  }();
  auto fp32_model = [&] {
    ScopedEnv plan_env("EXPLAINTI_PLAN", "on");
    ScopedEnv prec_env("EXPLAINTI_PRECISION", "fp32");
    return std::make_unique<ExplainTiModel>(explainti::testing::GoldenConfig(),
                                            corpus);
  }();
  plan_model->RefreshStores();
  graph_model->RefreshStores();
  fp32_model->RefreshStores();
  ASSERT_STREQ(fp32_model->session().served_precision(), "fp32");

  for (TaskKind kind : {TaskKind::kType, TaskKind::kRelation}) {
    if (!plan_model->session().HasTask(kind)) continue;
    const auto want =
        explainti::testing::GoldenEvidence(graph_model->session(), kind);
    ASSERT_FALSE(want.empty());
    ASSERT_FALSE(want.front().empty()) << "golden sample produced no evidence";
    const auto from_plan =
        explainti::testing::GoldenEvidence(plan_model->session(), kind);
    const auto from_fp32 =
        explainti::testing::GoldenEvidence(fp32_model->session(), kind);
    // fp32 paths are bit-identical, so evidence agreement is exact — the
    // Jaccard tolerance exists only for the quantized tier.
    EXPECT_EQ(explainti::testing::MeanEvidenceAgreement(want, from_plan), 1.0);
    EXPECT_EQ(explainti::testing::MeanEvidenceAgreement(want, from_fp32), 1.0);
    EXPECT_EQ(want, from_plan);
    EXPECT_EQ(want, from_fp32);
  }
}

}  // namespace
}  // namespace explainti::core
