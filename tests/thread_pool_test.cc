#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "nn/encoder.h"
#include "nn/pretrain.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace explainti::util {
namespace {

// Restores the global pool to the environment-configured size when a test
// that sweeps thread counts finishes, so test order doesn't matter.
class GlobalPoolGuard {
 public:
  GlobalPoolGuard() = default;
  ~GlobalPoolGuard() { SetGlobalThreadCount(ConfiguredThreadCount()); }
};

TEST(ThreadPoolTest, ConstructionAndTeardown) {
  // Pools of every small size construct, report their size, and join
  // cleanly — including repeated construction (worker leak check).
  for (int round = 0; round < 3; ++round) {
    for (int n = 1; n <= 8; ++n) {
      ThreadPool pool(n);
      EXPECT_EQ(pool.num_threads(), n);
    }
  }
  // Non-positive requests clamp to a single participant.
  EXPECT_EQ(ThreadPool(0).num_threads(), 1);
  EXPECT_EQ(ThreadPool(-3).num_threads(), 1);
}

TEST(ThreadPoolTest, ParallelForMatchesSerialOnUnevenRanges) {
  ThreadPool pool(4);
  // Ranges chosen to hit: empty, single, smaller-than-pool, exact
  // multiples, one-over, primes, and a large uneven range.
  const int64_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 61, 1000, 1003};
  for (int64_t n : sizes) {
    for (int64_t grain : {int64_t{1}, int64_t{3}, int64_t{8}, int64_t{100}}) {
      std::vector<int64_t> out(static_cast<size_t>(n), -1);
      std::atomic<int64_t> covered{0};
      pool.ParallelFor(0, n, grain, [&](int64_t b, int64_t e) {
        EXPECT_LE(b, e);
        for (int64_t i = b; i < e; ++i) {
          out[static_cast<size_t>(i)] = i * i;
        }
        covered.fetch_add(e - b, std::memory_order_relaxed);
      });
      // Every index covered exactly once.
      EXPECT_EQ(covered.load(), n) << "n=" << n << " grain=" << grain;
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[static_cast<size_t>(i)], i * i)
            << "n=" << n << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, NonZeroBeginAndNegativeRanges) {
  ThreadPool pool(3);
  std::vector<int> hit(30, 0);
  pool.ParallelFor(-10, 20, 4, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hit[static_cast<size_t>(i + 10)];
  });
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<int64_t> covered{0};
  try {
    pool.ParallelFor(0, 100, 1, [&](int64_t b, int64_t e) {
      covered.fetch_add(e - b, std::memory_order_relaxed);
      if (b <= 37 && 37 < e) {
        throw std::runtime_error("chunk failed");
      }
    });
    FAIL() << "expected the chunk's exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk failed");
  }
  // Remaining chunks still ran (chunks are independent by contract).
  EXPECT_EQ(covered.load(), 100);
  // The pool is still usable after an exception.
  std::atomic<int64_t> again{0};
  pool.ParallelFor(0, 10, 1, [&](int64_t b, int64_t e) {
    again.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(again.load(), 10);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      // Nested region: must run inline on this thread, not deadlock on
      // the (busy) pool.
      pool.ParallelFor(0, 5, 1, [&](int64_t nb, int64_t ne) {
        total.fetch_add(ne - nb, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 5);
}

TEST(ThreadPoolTest, ConfiguredThreadCountReadsEnvironment) {
  // Cannot portably setenv after threads exist, so just check the
  // invariant: positive, and consistent across calls.
  const int n = ConfiguredThreadCount();
  EXPECT_GE(n, 1);
  EXPECT_EQ(ConfiguredThreadCount(), n);
}

TEST(ThreadPoolTest, GrainForCost) {
  EXPECT_EQ(GrainForCost(1), 16384);
  EXPECT_EQ(GrainForCost(16384), 1);
  EXPECT_EQ(GrainForCost(1 << 20), 1);   // Costlier than target: grain 1.
  EXPECT_EQ(GrainForCost(0), 16384);     // Degenerate cost clamps to 1.
  EXPECT_EQ(GrainForCost(64, 1024), 16);
}

// -- Determinism across thread counts --------------------------------------

// Naive triple-loop reference matmul, accumulation in k order — the exact
// order the production kernel must preserve.
std::vector<float> ReferenceMatMul(const std::vector<float>& a,
                                   const std::vector<float>& b, int64_t m,
                                   int64_t k, int64_t n) {
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = a[static_cast<size_t>(i * k + kk)];
      if (av == 0.0f) continue;
      for (int64_t j = 0; j < n; ++j) {
        c[static_cast<size_t>(i * n + j)] +=
            av * b[static_cast<size_t>(kk * n + j)];
      }
    }
  }
  return c;
}

TEST(ThreadPoolDeterminismTest, ParallelMatMulMatchesSerialReference) {
  GlobalPoolGuard guard;
  const int64_t m = 37, k = 29, n = 41;
  util::Rng rng(2024);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (float& v : a) v = static_cast<float>(rng.Normal());
  for (float& v : b) v = static_cast<float>(rng.Normal());
  // Sprinkle zeros to exercise the kernel's zero-skip path.
  for (size_t i = 0; i < a.size(); i += 7) a[i] = 0.0f;

  const std::vector<float> expected = ReferenceMatMul(a, b, m, k, n);

  for (int threads : {1, 2, 4}) {
    SetGlobalThreadCount(threads);
    tensor::Tensor ta = tensor::Tensor::FromVector({m, k}, a);
    tensor::Tensor tb = tensor::Tensor::FromVector({k, n}, b);
    tensor::Tensor tc = tensor::MatMul(ta, tb);
    ASSERT_EQ(tc.size(), static_cast<int64_t>(expected.size()));
    for (int64_t i = 0; i < tc.size(); ++i) {
      // Bit-exact, not approximate: accumulation order must not change
      // with the thread count.
      uint32_t got, want;
      std::memcpy(&got, tc.data() + i, sizeof(got));
      std::memcpy(&want, expected.data() + static_cast<size_t>(i),
                  sizeof(want));
      ASSERT_EQ(got, want) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPoolDeterminismTest, MatMulGradientsBitIdenticalAcrossThreads) {
  GlobalPoolGuard guard;
  const int64_t m = 13, k = 17, n = 11;
  util::Rng rng(77);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (float& v : a) v = static_cast<float>(rng.Normal());
  for (float& v : b) v = static_cast<float>(rng.Normal());

  std::vector<float> ga1, gb1;
  for (int threads : {1, 2, 4}) {
    SetGlobalThreadCount(threads);
    tensor::Tensor ta = tensor::Tensor::FromVector({m, k}, a);
    tensor::Tensor tb = tensor::Tensor::FromVector({k, n}, b);
    ta.set_requires_grad(true);
    tb.set_requires_grad(true);
    tensor::Tensor loss = tensor::Sum(tensor::MatMul(ta, tb));
    loss.Backward();
    const std::vector<float> ga(ta.grad(), ta.grad() + ta.size());
    const std::vector<float> gb(tb.grad(), tb.grad() + tb.size());
    if (threads == 1) {
      ga1 = ga;
      gb1 = gb;
    } else {
      EXPECT_EQ(std::memcmp(ga.data(), ga1.data(),
                            ga.size() * sizeof(float)), 0)
          << "dA differs at threads=" << threads;
      EXPECT_EQ(std::memcmp(gb.data(), gb1.data(),
                            gb.size() * sizeof(float)), 0)
          << "dB differs at threads=" << threads;
    }
  }
}

// -- Golden regression: threads=1 (and 4) reproduce pre-parallelism
//    numerics captured from the seed build, bit for bit. ----------------------

uint32_t Bits(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

struct GoldenResult {
  float encoder_first, encoder_last, encoder_sum;
  float train_fwd_first, train_fwd_last;
  float mlm_final_epoch_loss;
  int64_t mlm_masked_tokens_total, mlm_steps;
  float post_pretrain_encoder_sum, post_pretrain_encoder_first;
};

GoldenResult RunGoldenRecipe() {
  nn::TransformerConfig config;
  config.vocab_size = 97;
  config.d_model = 32;
  config.num_heads = 4;
  config.num_layers = 2;
  config.ffn_dim = 64;
  config.max_len = 24;
  util::Rng init_rng(1234);
  nn::TransformerEncoder encoder(config, init_rng);

  std::vector<int> ids, segments;
  util::Rng data_rng(777);
  for (int i = 0; i < 20; ++i) {
    ids.push_back(static_cast<int>(5 + data_rng.UniformInt(90)));
    segments.push_back(i < 10 ? 0 : 1);
  }

  GoldenResult result;
  util::Rng fwd_rng(99);
  tensor::Tensor out =
      encoder.Forward(ids, segments, /*training=*/false, fwd_rng);
  float sum = 0.0f;
  for (int64_t i = 0; i < out.size(); ++i) sum += out.data()[i];
  result.encoder_sum = sum;
  result.encoder_first = out.data()[0];
  result.encoder_last = out.data()[out.size() - 1];

  // Training-mode forward: exercises the dropout RNG stream.
  util::Rng train_rng(4242);
  tensor::Tensor tout =
      encoder.Forward(ids, segments, /*training=*/true, train_rng);
  result.train_fwd_first = tout.data()[0];
  result.train_fwd_last = tout.data()[tout.size() - 1];

  // Short MLM pretrain: full forward/backward/AdamW loop.
  std::vector<std::vector<int>> seqs;
  std::vector<std::vector<int>> segs;
  util::Rng corpus_rng(31337);
  for (int s = 0; s < 6; ++s) {
    std::vector<int> seq, seg;
    for (int i = 0; i < 16; ++i) {
      seq.push_back(static_cast<int>(5 + corpus_rng.UniformInt(90)));
      seg.push_back(0);
    }
    seqs.push_back(seq);
    segs.push_back(seg);
  }
  nn::MlmPretrainOptions options;
  options.epochs = 2;
  options.batch_size = 2;
  options.seed = 7;
  nn::MlmPretrainStats stats = PretrainMlm(&encoder, seqs, segs, options);
  result.mlm_final_epoch_loss = stats.final_epoch_loss;
  result.mlm_masked_tokens_total = stats.masked_tokens_total;
  result.mlm_steps = stats.steps;

  util::Rng fwd_rng2(99);
  tensor::Tensor out2 =
      encoder.Forward(ids, segments, /*training=*/false, fwd_rng2);
  float sum2 = 0.0f;
  for (int64_t i = 0; i < out2.size(); ++i) sum2 += out2.data()[i];
  result.post_pretrain_encoder_sum = sum2;
  result.post_pretrain_encoder_first = out2.data()[0];
  return result;
}

// Exact bit patterns captured from the pre-parallelism seed build
// (commit d714b09) with the recipe above.
void ExpectMatchesSeedGoldens(const GoldenResult& r) {
  EXPECT_EQ(Bits(r.encoder_first), 0x3f0a527cu);             // 0.540321112
  EXPECT_EQ(Bits(r.encoder_last), 0x3f84d8a7u);              // 1.0378617
  EXPECT_EQ(Bits(r.encoder_sum), 0xb4c00000u);               // -3.57627869e-07
  EXPECT_EQ(Bits(r.train_fwd_first), 0xbdd99d5eu);           // -0.106257185
  EXPECT_EQ(Bits(r.train_fwd_last), 0x3fca42a7u);            // 1.58015907
  EXPECT_EQ(Bits(r.mlm_final_epoch_loss), 0x408e9e68u);      // 4.4568367
  EXPECT_EQ(r.mlm_masked_tokens_total, 38);
  EXPECT_EQ(r.mlm_steps, 6);
  EXPECT_EQ(Bits(r.post_pretrain_encoder_sum), 0xbc999540u);   // -0.0187479
  EXPECT_EQ(Bits(r.post_pretrain_encoder_first), 0xbd5f72e1u); // -0.0545529
}

TEST(ThreadPoolGoldenTest, SingleThreadReproducesSeedNumerics) {
  GlobalPoolGuard guard;
  SetGlobalThreadCount(1);
  ExpectMatchesSeedGoldens(RunGoldenRecipe());
}

TEST(ThreadPoolGoldenTest, FourThreadsReproduceSeedNumerics) {
  GlobalPoolGuard guard;
  SetGlobalThreadCount(4);
  ExpectMatchesSeedGoldens(RunGoldenRecipe());
}

}  // namespace
}  // namespace explainti::util
