#include "qa/engine.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/explain_ti_model.h"
#include "data/wiki_generator.h"
#include "eval/human_sim.h"
#include "golden_evidence.h"
#include "qa/query.h"
#include "qa/surrogate.h"
#include "serve/server.h"
#include "util/fault_injection.h"

namespace explainti::qa {
namespace {

using core::ExplainTiConfig;
using core::ExplainTiModel;
using core::InferenceSession;
using core::TaskKind;

// One shared frozen model for the whole suite (the QA layer never mutates
// it): the golden wiki fixture, stores refreshed but untrained — the
// composition contracts under test (planning, provenance, bit-identity,
// coverage algebra) are invariant to training, and skipping Fit keeps the
// suite tier-1 fast.
struct SharedModel {
  SharedModel()
      : corpus(explainti::testing::GoldenCorpus()),
        model(explainti::testing::GoldenConfig(), corpus) {
    model.RefreshStores();
  }
  data::TableCorpus corpus;
  ExplainTiModel model;
};

const SharedModel& Shared() {
  static const SharedModel* shared = new SharedModel();
  return *shared;
}

QaOptions CascadeOptions() {
  QaOptions options;
  options.enable_surrogate = true;
  // Tiny distillation schedule: the tests assert routing and identity
  // semantics, not agreement quality (the bench gates that).
  options.surrogate_epochs = 20;
  options.distill_max_samples = 8;
  return options;
}

std::vector<int> CandidateIds(TaskKind kind, int count) {
  const core::TaskData& task = Shared().model.task_data(kind);
  std::vector<int> ids;
  for (int id = 0; id < static_cast<int>(task.samples.size()) &&
                   static_cast<int>(ids.size()) < count;
       ++id) {
    ids.push_back(id);
  }
  return ids;
}

TEST(QaQueryTest, KindToTaskMapping) {
  EXPECT_EQ(QaTaskOf(QaQueryKind::kColumnType), TaskKind::kType);
  EXPECT_EQ(QaTaskOf(QaQueryKind::kFindColumnsOfType), TaskKind::kType);
  EXPECT_EQ(QaTaskOf(QaQueryKind::kRelationBetween), TaskKind::kRelation);
  EXPECT_EQ(QaTaskOf(QaQueryKind::kFindRelatedPairs), TaskKind::kRelation);
}

TEST(QaQueryTest, ResolveLabelByName) {
  const core::TaskData& task = Shared().model.task_data(TaskKind::kType);
  ASSERT_FALSE(task.label_names.empty());
  auto hit = ResolveLabel(task, task.label_names.front());
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value(), 0);
  auto miss = ResolveLabel(task, "no-such-label");
  EXPECT_EQ(miss.status().code(), util::StatusCode::kNotFound);
}

TEST(QaQueryTest, ValidateQueryRejectsMalformedQueries) {
  const InferenceSession& session = Shared().model.session();

  QaQuery query;  // kColumnType, no samples.
  EXPECT_EQ(ValidateQuery(session, query).code(),
            util::StatusCode::kInvalidArgument);

  query.sample_ids = {0, 1};  // Point query with two samples.
  EXPECT_EQ(ValidateQuery(session, query).code(),
            util::StatusCode::kInvalidArgument);

  query.sample_ids = {1 << 20};  // Out of range.
  EXPECT_EQ(ValidateQuery(session, query).code(),
            util::StatusCode::kInvalidArgument);

  query.sample_ids = {0};
  query.label_id = 0;  // Point queries take no target label.
  EXPECT_EQ(ValidateQuery(session, query).code(),
            util::StatusCode::kInvalidArgument);

  query.label_id = -1;
  EXPECT_TRUE(ValidateQuery(session, query).ok());

  QaQuery find;
  find.kind = QaQueryKind::kFindColumnsOfType;
  find.sample_ids = CandidateIds(TaskKind::kType, 4);
  find.label_id = -1;  // "Any" is only meaningful for relation finds.
  EXPECT_EQ(ValidateQuery(session, find).code(),
            util::StatusCode::kInvalidArgument);
  find.label_id = 0;
  find.top_k = 0;
  EXPECT_EQ(ValidateQuery(session, find).code(),
            util::StatusCode::kInvalidArgument);
  find.top_k = 3;
  EXPECT_TRUE(ValidateQuery(session, find).ok());
}

// A point query's answer must assert exactly the teacher's prediction,
// cite a step whose provenance names the prediction it came from, and
// carry evidence items from all three teacher views.
TEST(QaEngineTest, ColumnTypeAnswerMatchesTeacherPrediction) {
  const InferenceSession& session = Shared().model.session();
  QaEngine engine(&session, QaOptions{});

  QaQuery query;
  query.kind = QaQueryKind::kColumnType;
  query.sample_ids = {2};
  auto result = engine.Answer(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QaAnswer& answer = result.value();

  ASSERT_EQ(answer.entries.size(), 1u);
  EXPECT_EQ(answer.entries[0].sample_id, 2);
  EXPECT_EQ(answer.entries[0].labels, session.Predict(TaskKind::kType, 2));
  const std::vector<float> probs =
      session.PredictProbabilities(TaskKind::kType, 2);
  float max_prob = 0.0f;
  for (int label : answer.entries[0].labels) {
    max_prob = std::max(max_prob, probs[static_cast<size_t>(label)]);
  }
  EXPECT_EQ(answer.entries[0].confidence, max_prob);

  ASSERT_EQ(answer.justification.steps.size(), 1u);
  const QaStep& step = answer.justification.steps[0];
  EXPECT_EQ(step.step, 0);
  EXPECT_EQ(step.task, TaskKind::kType);
  EXPECT_EQ(step.sample_id, 2);
  EXPECT_EQ(step.tier, QaTier::kTeacher);
  EXPECT_EQ(step.predicted_labels, answer.entries[0].labels);
  EXPECT_EQ(answer.entries[0].step, 0);

  // The fixture model explains every prediction with LE/GE/SE views, so
  // the composed justification must carry items from each.
  bool has_local = false;
  bool has_global = false;
  bool has_structural = false;
  for (const QaEvidenceItem& item : answer.justification.items) {
    EXPECT_EQ(item.step, 0);
    has_local |= item.view == QaView::kLocal;
    has_global |= item.view == QaView::kGlobal;
    has_structural |= item.view == QaView::kStructural;
  }
  EXPECT_TRUE(has_local);
  EXPECT_TRUE(has_global);
  EXPECT_TRUE(has_structural);
  EXPECT_EQ(answer.surrogate_steps, 0);
  EXPECT_TRUE(answer.surrogate_status.ok());
}

// Find-queries must select exactly the candidates the teacher predicts
// as the target label, ranked by confidence, capped at top_k — and keep
// a provenance step for every evaluated candidate, selected or not.
TEST(QaEngineTest, FindColumnsOfTypeSelectsTeacherQualifiers) {
  const InferenceSession& session = Shared().model.session();
  const core::TaskData& task = session.task_data(TaskKind::kType);
  QaEngine engine(&session, QaOptions{});

  QaQuery query;
  query.kind = QaQueryKind::kFindColumnsOfType;
  query.sample_ids = CandidateIds(TaskKind::kType, 8);
  query.top_k = static_cast<int>(query.sample_ids.size());

  // Use the label the teacher predicts for the first candidate so the
  // qualifying set is non-empty by construction.
  query.label_id = session.Predict(TaskKind::kType, query.sample_ids[0])[0];

  auto result = engine.Answer(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QaAnswer& answer = result.value();

  // Expected qualifiers straight from the teacher.
  std::vector<int> expected;
  for (int id : query.sample_ids) {
    const std::vector<int> labels = session.Predict(TaskKind::kType, id);
    const std::vector<float> probs =
        session.PredictProbabilities(TaskKind::kType, id);
    const bool qualifies =
        task.multi_label
            ? probs[static_cast<size_t>(query.label_id)] >= 0.5f
            : std::find(labels.begin(), labels.end(), query.label_id) !=
                  labels.end();
    if (qualifies) expected.push_back(id);
  }
  ASSERT_FALSE(expected.empty());
  ASSERT_EQ(answer.entries.size(), expected.size());
  std::vector<int> answered;
  for (const QaAnswerEntry& entry : answer.entries) {
    answered.push_back(entry.sample_id);
  }
  std::sort(answered.begin(), answered.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(answered, expected);

  // Ranked by confidence, and every evaluated candidate has a step.
  for (size_t i = 1; i < answer.entries.size(); ++i) {
    EXPECT_GE(answer.entries[i - 1].confidence, answer.entries[i].confidence);
  }
  EXPECT_EQ(answer.justification.steps.size(), query.sample_ids.size());
  for (size_t i = 0; i < answer.justification.steps.size(); ++i) {
    EXPECT_EQ(answer.justification.steps[i].sample_id,
              query.sample_ids[i]);
    EXPECT_EQ(answer.justification.steps[i].step, static_cast<int>(i));
  }
  // top_k truncation.
  query.top_k = 1;
  auto truncated = engine.Answer(query);
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(truncated.value().entries.size(), 1u);
  EXPECT_EQ(truncated.value().entries[0].sample_id,
            answer.entries[0].sample_id);
}

TEST(QaEngineTest, RelationQueriesCompose) {
  const InferenceSession& session = Shared().model.session();
  QaEngine engine(&session, QaOptions{});

  QaQuery between;
  between.kind = QaQueryKind::kRelationBetween;
  between.sample_ids = {0};
  auto result = engine.Answer(between);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().entries[0].labels,
            session.Predict(TaskKind::kRelation, 0));

  // "Any relation" find: every candidate qualifies with its top label.
  QaQuery any;
  any.kind = QaQueryKind::kFindRelatedPairs;
  any.sample_ids = CandidateIds(TaskKind::kRelation, 5);
  any.label_id = -1;
  any.top_k = static_cast<int>(any.sample_ids.size());
  auto related = engine.Answer(any);
  ASSERT_TRUE(related.ok()) << related.status().ToString();
  EXPECT_EQ(related.value().entries.size(), any.sample_ids.size());
}

// The cascade-off build is the identity reference: a cascade whose
// threshold escalates everything must produce bit-identical answers (the
// fail-closed path leans on this).
TEST(QaEngineTest, FullyEscalatedCascadeIsBitIdenticalToTeacherOnly) {
  const InferenceSession& session = Shared().model.session();
  QaEngine teacher_only(&session, QaOptions{});
  QaEngine cascade(&session, CascadeOptions());
  ASSERT_TRUE(cascade.surrogate_active());

  QaQuery query;
  query.kind = QaQueryKind::kFindColumnsOfType;
  query.sample_ids = CandidateIds(TaskKind::kType, 6);
  query.label_id = session.Predict(TaskKind::kType, 0)[0];

  auto reference = teacher_only.Answer(query);
  ASSERT_TRUE(reference.ok());
  // Threshold above any reachable confidence: every step escalates.
  auto escalated = cascade.AnswerWithThreshold(query, 1.01f);
  ASSERT_TRUE(escalated.ok());
  EXPECT_TRUE(SameAnswer(reference.value(), escalated.value()));
  EXPECT_EQ(escalated.value().surrogate_steps, 0);
  EXPECT_EQ(escalated.value().escalated_steps,
            static_cast<int>(query.sample_ids.size()));
}

// Threshold 0 routes every step to the surrogate: provenance must say so
// and the justification must carry surrogate saliency items.
TEST(QaEngineTest, ZeroThresholdAnswersEverythingAtSurrogateTier) {
  const InferenceSession& session = Shared().model.session();
  QaEngine cascade(&session, CascadeOptions());
  ASSERT_TRUE(cascade.surrogate_active());

  QaQuery query;
  query.kind = QaQueryKind::kColumnType;
  query.sample_ids = {1};
  auto result = cascade.AnswerWithThreshold(query, 0.0f);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QaAnswer& answer = result.value();
  ASSERT_EQ(answer.justification.steps.size(), 1u);
  EXPECT_EQ(answer.justification.steps[0].tier, QaTier::kSurrogate);
  EXPECT_EQ(answer.surrogate_steps, 1);
  EXPECT_EQ(answer.escalated_steps, 0);
  ASSERT_FALSE(answer.justification.items.empty());
  for (const QaEvidenceItem& item : answer.justification.items) {
    EXPECT_EQ(item.view, QaView::kSurrogate);
    EXPECT_FALSE(item.text.empty());
  }
}

// The surrogate's decode mirrors the teacher's rule, its scoring is
// deterministic, and a warmed scratch makes ScoreInto allocation-free
// (asserted end-to-end by bench_qa; here we assert determinism + decode).
TEST(QaSurrogateTest, ScoreIsDeterministicAndDecodesLikeTeacher) {
  const InferenceSession& session = Shared().model.session();
  auto built =
      SurrogateModel::Distill(session, TaskKind::kType, CascadeOptions());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const SurrogateModel& surrogate = *built.value();
  EXPECT_EQ(surrogate.num_labels(),
            session.task_data(TaskKind::kType).num_labels);

  SurrogateModel::Scratch scratch;
  float confidence1 = 0.0f;
  ASSERT_TRUE(surrogate.ScoreInto(3, &scratch, &confidence1).ok());
  const std::vector<int> labels1 = scratch.labels;
  const std::vector<float> probs1 = scratch.probs;
  float confidence2 = 0.0f;
  ASSERT_TRUE(surrogate.ScoreInto(3, &scratch, &confidence2).ok());
  EXPECT_EQ(labels1, scratch.labels);
  EXPECT_EQ(probs1, scratch.probs);
  EXPECT_EQ(confidence1, confidence2);
  EXPECT_GE(confidence1, 0.0f);
  EXPECT_LE(confidence1, 1.0f);
  ASSERT_FALSE(labels1.empty());
  // Multiclass type task: the decoded label is the argmax.
  if (!session.task_data(TaskKind::kType).multi_label) {
    int argmax = 0;
    for (int l = 1; l < surrogate.num_labels(); ++l) {
      if (probs1[static_cast<size_t>(l)] > probs1[static_cast<size_t>(argmax)])
        argmax = l;
    }
    EXPECT_EQ(labels1, std::vector<int>{argmax});
  }
  EXPECT_EQ(surrogate.ScoreInto(1 << 20, &scratch, &confidence1).code(),
            util::StatusCode::kInvalidArgument);
}

// Composition must not dilute evidence: the pooled justification items
// judged against the union of their steps' oracle evidence cover at
// least as well as the same items judged against their own step's
// evidence alone — and a SimulateJudges run over composed answers stays
// in range.
TEST(QaJudgeTest, ComposedCoverageDoesNotRegressConstituents) {
  const InferenceSession& session = Shared().model.session();
  const core::TaskData& task = session.task_data(TaskKind::kType);
  QaEngine engine(&session, QaOptions{});

  QaQuery query;
  query.kind = QaQueryKind::kFindColumnsOfType;
  query.sample_ids = CandidateIds(TaskKind::kType, 8);
  query.label_id = session.Predict(TaskKind::kType, 0)[0];
  query.top_k = 8;
  auto result = engine.Answer(query);
  ASSERT_TRUE(result.ok());
  const QaAnswer& answer = result.value();
  ASSERT_FALSE(answer.justification.items.empty());

  const explainti::testing::QaCoverage coverage =
      explainti::testing::ComposedJustificationCoverage(task,
                                                        answer.justification);
  EXPECT_GE(coverage.composed, coverage.constituent - 1e-12);
  EXPECT_GE(coverage.composed, 0.0);
  EXPECT_LE(coverage.composed, 1.0);

  const std::vector<eval::JudgedExplanation> judged =
      explainti::testing::JudgedQaAnswer(task, answer);
  ASSERT_EQ(judged.size(), answer.entries.size());
  const eval::HumanEvalResult verdict =
      eval::SimulateJudges(judged, /*num_judges=*/10, /*seed=*/7);
  EXPECT_GE(verdict.adequacy_pct, 0.0);
  EXPECT_LE(verdict.adequacy_pct, 100.0);
  EXPECT_GE(verdict.mean_trust, 1.0);
  EXPECT_LE(verdict.mean_trust, 5.0);
  EXPECT_GE(verdict.evidence_coverage, 0.0);
  EXPECT_LE(verdict.evidence_coverage, 1.0);
}

// ---------------------------------------------------------------------------
// Serving integration.
// ---------------------------------------------------------------------------

serve::ServeRequest QaRequest(const QaQuery& query, uint64_t trace_id = 0) {
  serve::ServeRequest request;
  request.method = serve::ServeMethod::kQaAnswer;
  request.qa = query;
  request.trace_id = trace_id;
  return request;
}

TEST(QaServeTest, ServerAnswersQaRequests) {
  const InferenceSession& session = Shared().model.session();
  serve::ServerOptions options;
  options.num_workers = 2;
  options.qa.enabled = true;
  serve::InferenceServer server(session, options);

  QaQuery query;
  query.kind = QaQueryKind::kColumnType;
  query.sample_ids = {4};
  serve::ServeResponse response = server.ServeSync(QaRequest(query, 99));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.trace_id, 99u);
  EXPECT_EQ(response.model_generation, 1u);

  ASSERT_NE(server.qa_engine(), nullptr);
  auto direct = server.qa_engine()->Answer(query);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(SameAnswer(response.qa, direct.value()));
  EXPECT_EQ(server.metrics().GetCounter("serve.qa_accepted")->Value(), 1);
  EXPECT_EQ(server.metrics().GetCounter("qa.answered")->Value(), 1);
}

TEST(QaServeTest, QaDisabledServerRejectsAtAdmission) {
  const InferenceSession& session = Shared().model.session();
  serve::InferenceServer server(session, serve::ServerOptions{});
  EXPECT_EQ(server.qa_engine(), nullptr);

  QaQuery query;
  query.kind = QaQueryKind::kColumnType;
  query.sample_ids = {0};
  serve::ServeResponse response = server.ServeSync(QaRequest(query));
  EXPECT_EQ(response.status.code(), util::StatusCode::kInvalidArgument);
}

TEST(QaServeTest, MalformedQueryRejectedBeforeQueue) {
  const InferenceSession& session = Shared().model.session();
  serve::ServerOptions options;
  options.qa.enabled = true;
  serve::InferenceServer server(session, options);

  QaQuery query;
  query.kind = QaQueryKind::kFindColumnsOfType;
  query.sample_ids = {0, 1 << 20};
  query.label_id = 0;
  serve::ServeResponse response = server.ServeSync(QaRequest(query));
  EXPECT_EQ(response.status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(server.metrics().GetCounter("serve.accepted")->Value(), 0);
}

// Regression for the QA cache contract: a hit returns the full
// QaJustification bit-identically, never collides with an Explain entry
// for the same table, and never answers a different query.
TEST(QaServeTest, QaCacheHitIsBitIdenticalAndCollisionFree) {
  const InferenceSession& session = Shared().model.session();
  serve::ServerOptions options;
  options.num_workers = 2;
  options.qa.enabled = true;
  options.cache.enabled = true;
  options.cache.capacity = 64;
  serve::InferenceServer server(session, options);

  QaQuery query;
  query.kind = QaQueryKind::kFindColumnsOfType;
  query.sample_ids = CandidateIds(TaskKind::kType, 5);
  query.label_id = session.Predict(TaskKind::kType, 0)[0];

  serve::ServeResponse first = server.ServeSync(QaRequest(query));
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);

  serve::ServeResponse second = server.ServeSync(QaRequest(query));
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(SameAnswer(first.qa, second.qa));
  ASSERT_EQ(second.qa.justification.items.size(),
            first.qa.justification.items.size());
  for (size_t i = 0; i < first.qa.justification.items.size(); ++i) {
    EXPECT_EQ(second.qa.justification.items[i].text,
              first.qa.justification.items[i].text);
    EXPECT_EQ(second.qa.justification.items[i].score,
              first.qa.justification.items[i].score);
  }

  // An Explain request for the same primary table must compute its own
  // entry (method is part of the key), and its payload is an
  // explanation, not a QA answer.
  serve::ServeRequest explain;
  explain.method = serve::ServeMethod::kExplain;
  explain.task = TaskKind::kType;
  explain.sample_id = query.sample_ids[0];
  serve::ServeResponse explained = server.ServeSync(explain);
  ASSERT_TRUE(explained.status.ok());
  EXPECT_FALSE(explained.cache_hit);
  EXPECT_FALSE(explained.explanation.predicted_labels.empty());
  EXPECT_TRUE(explained.qa.entries.empty());

  // A different query over the same primary sample (narrower candidate
  // set) must miss and compute its own answer.
  QaQuery narrower = query;
  narrower.sample_ids.pop_back();
  serve::ServeResponse third = server.ServeSync(QaRequest(narrower));
  ASSERT_TRUE(third.status.ok());
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.qa.justification.steps.size(), narrower.sample_ids.size());
}

TEST(QaServeTest, PerTenantQaCounter) {
  const InferenceSession& session = Shared().model.session();
  serve::TenantRegistry tenants;
  serve::TenantOptions tenant;
  tenant.name = "qa-tenant";
  const int tenant_id = tenants.Register(tenant);

  serve::ServerOptions options;
  options.num_workers = 1;
  options.qa.enabled = true;
  options.tenants = &tenants;
  serve::InferenceServer server(session, options);

  QaQuery query;
  query.kind = QaQueryKind::kColumnType;
  query.sample_ids = {0};
  serve::ServeRequest request = QaRequest(query);
  request.tenant_id = tenant_id;
  serve::ServeResponse response = server.ServeSync(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(
      server.metrics().GetCounter("serve.tenant.qa-tenant.qa_accepted")
          ->Value(),
      1);
}

// Tier-1 fail-closed smoke (the full storm lives in qa_chaos_test.cc):
// a compose fault is a typed error, never a partial answer, and a score
// fault degrades to teacher-identical answers.
TEST(QaFaultTest, ComposeFaultIsTypedNeverPartial) {
  const InferenceSession& session = Shared().model.session();
  QaEngine engine(&session, QaOptions{});
  QaQuery query;
  query.kind = QaQueryKind::kColumnType;
  query.sample_ids = {0};

  util::fault::FaultSpec spec;
  spec.kind = util::fault::FaultKind::kError;
  spec.code = util::StatusCode::kInternal;
  spec.message = "chaos: qa.compose";
  util::fault::FaultRegistry::Instance().Arm("qa.compose", spec);
  auto faulted = engine.Answer(query);
  util::fault::FaultRegistry::Instance().DisarmAll();
  EXPECT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), util::StatusCode::kInternal);

  auto healthy = engine.Answer(query);
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy.value().entries.empty());
}

TEST(QaFaultTest, ScoreFaultDegradesToTeacherIdenticalAnswers) {
  const InferenceSession& session = Shared().model.session();
  QaEngine teacher_only(&session, QaOptions{});
  QaEngine cascade(&session, CascadeOptions());
  ASSERT_TRUE(cascade.surrogate_active());

  QaQuery query;
  query.kind = QaQueryKind::kFindColumnsOfType;
  query.sample_ids = CandidateIds(TaskKind::kType, 6);
  query.label_id = session.Predict(TaskKind::kType, 0)[0];
  auto reference = teacher_only.Answer(query);
  ASSERT_TRUE(reference.ok());

  util::fault::FaultSpec spec;
  spec.kind = util::fault::FaultKind::kError;
  spec.code = util::StatusCode::kInternal;
  spec.message = "chaos: qa.surrogate_score";
  util::fault::FaultRegistry::Instance().Arm("qa.surrogate_score", spec);
  auto degraded = cascade.Answer(query);
  util::fault::FaultRegistry::Instance().DisarmAll();

  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(SameAnswer(reference.value(), degraded.value()));
  EXPECT_EQ(degraded.value().surrogate_steps, 0);
  EXPECT_FALSE(degraded.value().surrogate_status.ok());

  // The trip is sticky: even disarmed, the tier stays down with its
  // typed root cause, and answers stay teacher-identical.
  EXPECT_FALSE(cascade.surrogate_active());
  auto after = cascade.Answer(query);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(SameAnswer(reference.value(), after.value()));
  EXPECT_EQ(cascade.surrogate_status().code(), util::StatusCode::kInternal);
}

}  // namespace
}  // namespace explainti::qa
