// CSV parsing/loading, model-weight persistence, and embedding-store
// persistence (segment/manifest corruption, fallback behaviour).

#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "core/embedding_store.h"
#include "core/explain_ti_model.h"
#include "data/csv_loader.h"
#include "data/wiki_generator.h"
#include "util/csv.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace explainti {
namespace {

TEST(CsvTest, ParsesSimpleRows) {
  auto rows = util::ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, HandlesQuotedFieldsAndEscapes) {
  auto rows = util::ParseCsv("\"a,b\",\"say \"\"hi\"\"\",plain\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "a,b");
  EXPECT_EQ((*rows)[0][1], "say \"hi\"");
  EXPECT_EQ((*rows)[0][2], "plain");
}

TEST(CsvTest, QuotedNewlineStaysInField) {
  auto rows = util::ParseCsv("\"line1\nline2\",x\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "line1\nline2");
}

TEST(CsvTest, ToleratesCrlfAndMissingFinalNewline) {
  auto rows = util::ParseCsv("a,b\r\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, EmptyFieldsPreserved) {
  auto rows = util::ParseCsv("a,,c\n,,\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0].size(), 3u);
  EXPECT_EQ((*rows)[1].size(), 3u);
  EXPECT_EQ((*rows)[0][1], "");
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(util::ParseCsv("\"oops\n").ok());
}

TEST(CsvTest, WriteRoundTrips) {
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "needs,quote", "has \"quotes\""},
      {"second", "line\nbreak", ""}};
  auto parsed = util::ParseCsv(util::WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

TEST(CsvLoaderTest, BuildsTableWithHeaders) {
  auto table = data::TableFromCsvRows(
      {{"Player", "Team"}, {"james smith", "lakers"}, {"mary jones", "bulls"}},
      data::CsvLoadOptions{true, "1990 nba draft", 0});
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->columns.size(), 2u);
  EXPECT_EQ(table->columns[0].header, "player");
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->columns[1].cells[0], "lakers");
  EXPECT_EQ(table->title, "1990 nba draft");
}

TEST(CsvLoaderTest, PadsRaggedRows) {
  auto table = data::TableFromCsvRows(
      {{"a", "b", "c"}, {"1"}, {"1", "2", "3", "4"}},
      data::CsvLoadOptions{true, "t", 0});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->columns[2].cells[0], "");
  EXPECT_EQ(table->num_rows(), 2);
}

TEST(CsvLoaderTest, SyntheticHeadersWithoutHeaderRow) {
  auto table = data::TableFromCsvRows({{"1", "2"}},
                                      data::CsvLoadOptions{false, "t", 0});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->columns[0].header, "column_0");
  EXPECT_EQ(table->num_rows(), 1);
}

TEST(CsvLoaderTest, MaxRowsCapsLoading) {
  std::vector<std::vector<std::string>> rows = {{"h"}};
  for (int i = 0; i < 10; ++i) rows.push_back({std::to_string(i)});
  auto table =
      data::TableFromCsvRows(rows, data::CsvLoadOptions{true, "t", 4});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 4);
}

TEST(CsvLoaderTest, RejectsEmptyInput) {
  EXPECT_FALSE(data::TableFromCsvRows({}, {}).ok());
  EXPECT_FALSE(
      data::TableFromCsvRows({{"only", "headers"}}, {}).ok());
}

TEST(CsvLoaderTest, MissingFileIsIoError) {
  auto table = data::LoadTableFromCsv("/nonexistent/file.csv");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), util::StatusCode::kIoError);
}

TEST(WeightsIoTest, SaveLoadRoundTripPreservesPredictions) {
  data::WikiTableOptions options;
  options.num_tables = 30;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);

  core::ExplainTiConfig config;
  config.epochs = 1;
  config.pretrain_epochs = 1;
  core::ExplainTiModel trained(config, corpus);
  trained.Fit();

  const std::string path = "/tmp/explainti_weights_test.bin";
  ASSERT_TRUE(trained.SaveWeights(path).ok());

  // A fresh, untrained model with the same architecture.
  core::ExplainTiModel restored(config, corpus);
  ASSERT_TRUE(restored.LoadWeights(path).ok());

  const auto& task = trained.task_data(core::TaskKind::kType);
  for (size_t i = 0; i < task.test_ids.size() && i < 10; ++i) {
    const int id = task.test_ids[i];
    EXPECT_EQ(trained.PredictProbabilities(core::TaskKind::kType, id),
              restored.PredictProbabilities(core::TaskKind::kType, id));
  }
  std::remove(path.c_str());
}

TEST(WeightsIoTest, LoadRejectsWrongArchitecture) {
  data::WikiTableOptions options;
  options.num_tables = 30;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);

  core::ExplainTiConfig config;
  config.epochs = 1;
  config.pretrain_epochs = 1;
  core::ExplainTiModel model(config, corpus);

  const std::string path = "/tmp/explainti_weights_bad.bin";
  ASSERT_TRUE(model.SaveWeights(path).ok());

  core::ExplainTiConfig other = config;
  other.max_seq_len = 24;  // Smaller position table -> shape mismatch.
  core::ExplainTiModel mismatched(other, corpus);
  EXPECT_FALSE(mismatched.LoadWeights(path).ok());
  std::remove(path.c_str());
}

TEST(WeightsIoTest, LoadRejectsGarbageFile) {
  const std::string path = "/tmp/explainti_weights_garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a weights file at all", f);
  fclose(f);

  data::WikiTableOptions options;
  options.num_tables = 30;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);
  core::ExplainTiConfig config;
  config.epochs = 1;
  core::ExplainTiModel model(config, corpus);
  EXPECT_FALSE(model.LoadWeights(path).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Embedding-store persistence: corruption is rejected with typed errors,
// and the model-level path falls back to the in-memory rebuild.
// ---------------------------------------------------------------------------

std::string FreshStoreDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::system(("rm -rf " + dir).c_str());
  return dir;
}

/// XORs one byte of `path` at `offset` (negative = from the end).
void FlipByte(const std::string& path, long offset) {
  FILE* f = fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  fseek(f, offset, offset < 0 ? SEEK_END : SEEK_SET);
  const int c = fgetc(f);
  ASSERT_NE(c, EOF);
  fseek(f, offset, offset < 0 ? SEEK_END : SEEK_SET);
  fputc(c ^ 0x40, f);
  fclose(f);
}

core::EmbeddingStore::Options SegOptions(int num_segments) {
  core::EmbeddingStore::Options options;
  options.num_segments = num_segments;
  return options;
}

void FillSavableStore(core::EmbeddingStore* store) {
  util::Rng rng(19);
  std::vector<int> ids;
  std::vector<std::vector<float>> rows;
  for (int i = 0; i < 48; ++i) {
    ids.push_back(i);
    std::vector<float> v(8);
    for (float& x : v) x = static_cast<float>(rng.Normal());
    rows.push_back(std::move(v));
  }
  store->Rebuild(ids, rows);
}

TEST(StorePersistenceTest, CorruptSegmentFileIsTypedNotFatal) {
  core::EmbeddingStore store(SegOptions(4));
  FillSavableStore(&store);
  const std::string dir = FreshStoreDir("store_corrupt_segment");
  ASSERT_TRUE(store.Save(dir).ok());

  // Flip one byte in the middle of a segment payload and one in its CRC
  // footer; both must surface as InvalidArgument, never a crash, with the
  // loading store left on its previous (empty) snapshot.
  for (long offset : {200L, -2L}) {
    const std::string dir2 = FreshStoreDir("store_corrupt_segment_work");
    ASSERT_EQ(std::system(("cp -r " + dir + " " + dir2).c_str()), 0);
    FlipByte(dir2 + "/seg_000001.xts", offset);

    core::EmbeddingStore loaded;
    const util::Status status = loaded.Load(dir2);
    EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument)
        << "offset=" << offset << ": " << status.ToString();
    EXPECT_EQ(loaded.size(), 0);
    EXPECT_EQ(loaded.view().generation(), 0u);
  }
}

TEST(StorePersistenceTest, CorruptManifestIsTypedNotFatal) {
  core::EmbeddingStore store(SegOptions(2));
  FillSavableStore(&store);
  const std::string dir = FreshStoreDir("store_corrupt_manifest");
  ASSERT_TRUE(store.Save(dir).ok());
  FlipByte(dir + "/manifest.xtm", 12);

  core::EmbeddingStore loaded;
  const util::Status status = loaded.Load(dir);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument)
      << status.ToString();
  EXPECT_EQ(loaded.size(), 0);
}

TEST(StorePersistenceTest, TruncatedSegmentFileIsTypedNotFatal) {
  core::EmbeddingStore store(SegOptions(2));
  FillSavableStore(&store);
  const std::string dir = FreshStoreDir("store_truncated_segment");
  ASSERT_TRUE(store.Save(dir).ok());
  ASSERT_EQ(std::system(
                ("truncate -s 100 " + dir + "/seg_000000.xts").c_str()),
            0);

  core::EmbeddingStore loaded;
  EXPECT_EQ(loaded.Load(dir).code(), util::StatusCode::kInvalidArgument);
}

TEST(StorePersistenceTest, SaveFaultLeavesNoLoadableDir) {
  util::fault::FaultSpec spec;
  spec.max_fires = 1;
  util::fault::FaultRegistry::Instance().Arm("store.save", spec);
  core::EmbeddingStore store(SegOptions(2));
  FillSavableStore(&store);
  const std::string dir = FreshStoreDir("store_save_fault");
  const util::Status status = store.Save(dir);
  util::fault::FaultRegistry::Instance().DisarmAll();
  EXPECT_FALSE(status.ok());

  // The manifest goes last, so a failed save leaves nothing loadable —
  // and a retry on the same directory succeeds cleanly.
  core::EmbeddingStore loaded;
  EXPECT_EQ(loaded.Load(dir).code(), util::StatusCode::kNotFound);
  ASSERT_TRUE(store.Save(dir).ok());
  EXPECT_TRUE(loaded.Load(dir).ok());
  EXPECT_EQ(loaded.size(), store.size());
}

TEST(ModelStoreIoTest, RestoredModelReopensStoresWithoutReencoding) {
  data::WikiTableOptions options;
  options.num_tables = 30;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);

  core::ExplainTiConfig config;
  config.epochs = 1;
  config.pretrain_epochs = 1;
  config.store_segments = 2;
  core::ExplainTiModel trained(config, corpus);
  trained.Fit();

  const std::string weights = "/tmp/explainti_store_io_weights.bin";
  const std::string store_dir = FreshStoreDir("model_stores");
  ASSERT_TRUE(trained.SaveWeights(weights).ok());
  ASSERT_TRUE(trained.SaveStores(store_dir).ok());

  // A fresh process image: same architecture, store_dir pointed at the
  // persisted stores. LoadWeights reopens them (mmap) instead of
  // re-encoding the corpus, and every store-dependent output — SE feeds
  // the final logits, GE drives the global view — matches bit-for-bit.
  core::ExplainTiConfig restored_config = config;
  restored_config.store_dir = store_dir;
  core::ExplainTiModel restored(restored_config, corpus);
  ASSERT_TRUE(restored.LoadWeights(weights).ok());

  const auto& task = trained.task_data(core::TaskKind::kType);
  for (size_t i = 0; i < task.test_ids.size() && i < 5; ++i) {
    const int id = task.test_ids[i];
    EXPECT_EQ(trained.PredictProbabilities(core::TaskKind::kType, id),
              restored.PredictProbabilities(core::TaskKind::kType, id));
    const core::Explanation a = trained.Explain(core::TaskKind::kType, id);
    const core::Explanation b = restored.Explain(core::TaskKind::kType, id);
    ASSERT_EQ(a.global.size(), b.global.size());
    for (size_t g = 0; g < a.global.size(); ++g) {
      EXPECT_EQ(a.global[g].train_sample_id, b.global[g].train_sample_id);
      EXPECT_EQ(a.global[g].influence, b.global[g].influence);
    }
  }
  std::remove(weights.c_str());
}

TEST(ModelStoreIoTest, CorruptStoreDirFallsBackToInMemoryRebuild) {
  data::WikiTableOptions options;
  options.num_tables = 30;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);

  core::ExplainTiConfig config;
  config.epochs = 1;
  config.pretrain_epochs = 1;
  config.store_segments = 2;
  core::ExplainTiModel trained(config, corpus);
  trained.Fit();

  const std::string weights = "/tmp/explainti_store_fallback_weights.bin";
  const std::string store_dir = FreshStoreDir("model_stores_corrupt");
  ASSERT_TRUE(trained.SaveWeights(weights).ok());
  ASSERT_TRUE(trained.SaveStores(store_dir).ok());
  FlipByte(store_dir + "/type/manifest.xtm", -3);

  // The corrupt store is rejected, but LoadWeights does not fail: it
  // falls back to re-encoding the corpus, and predictions still match
  // (the rebuilt store holds the same embeddings).
  core::ExplainTiConfig restored_config = config;
  restored_config.store_dir = store_dir;
  core::ExplainTiModel restored(restored_config, corpus);
  ASSERT_TRUE(restored.LoadWeights(weights).ok());

  const auto& task = trained.task_data(core::TaskKind::kType);
  for (size_t i = 0; i < task.test_ids.size() && i < 5; ++i) {
    const int id = task.test_ids[i];
    EXPECT_EQ(trained.PredictProbabilities(core::TaskKind::kType, id),
              restored.PredictProbabilities(core::TaskKind::kType, id));
  }
  std::remove(weights.c_str());
}

}  // namespace
}  // namespace explainti
