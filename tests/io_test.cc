// CSV parsing/loading and model-weight persistence.

#include <cstdio>

#include <gtest/gtest.h>

#include "core/explain_ti_model.h"
#include "data/csv_loader.h"
#include "data/wiki_generator.h"
#include "util/csv.h"

namespace explainti {
namespace {

TEST(CsvTest, ParsesSimpleRows) {
  auto rows = util::ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, HandlesQuotedFieldsAndEscapes) {
  auto rows = util::ParseCsv("\"a,b\",\"say \"\"hi\"\"\",plain\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "a,b");
  EXPECT_EQ((*rows)[0][1], "say \"hi\"");
  EXPECT_EQ((*rows)[0][2], "plain");
}

TEST(CsvTest, QuotedNewlineStaysInField) {
  auto rows = util::ParseCsv("\"line1\nline2\",x\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "line1\nline2");
}

TEST(CsvTest, ToleratesCrlfAndMissingFinalNewline) {
  auto rows = util::ParseCsv("a,b\r\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, EmptyFieldsPreserved) {
  auto rows = util::ParseCsv("a,,c\n,,\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0].size(), 3u);
  EXPECT_EQ((*rows)[1].size(), 3u);
  EXPECT_EQ((*rows)[0][1], "");
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(util::ParseCsv("\"oops\n").ok());
}

TEST(CsvTest, WriteRoundTrips) {
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "needs,quote", "has \"quotes\""},
      {"second", "line\nbreak", ""}};
  auto parsed = util::ParseCsv(util::WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

TEST(CsvLoaderTest, BuildsTableWithHeaders) {
  auto table = data::TableFromCsvRows(
      {{"Player", "Team"}, {"james smith", "lakers"}, {"mary jones", "bulls"}},
      data::CsvLoadOptions{true, "1990 nba draft", 0});
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->columns.size(), 2u);
  EXPECT_EQ(table->columns[0].header, "player");
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->columns[1].cells[0], "lakers");
  EXPECT_EQ(table->title, "1990 nba draft");
}

TEST(CsvLoaderTest, PadsRaggedRows) {
  auto table = data::TableFromCsvRows(
      {{"a", "b", "c"}, {"1"}, {"1", "2", "3", "4"}},
      data::CsvLoadOptions{true, "t", 0});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->columns[2].cells[0], "");
  EXPECT_EQ(table->num_rows(), 2);
}

TEST(CsvLoaderTest, SyntheticHeadersWithoutHeaderRow) {
  auto table = data::TableFromCsvRows({{"1", "2"}},
                                      data::CsvLoadOptions{false, "t", 0});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->columns[0].header, "column_0");
  EXPECT_EQ(table->num_rows(), 1);
}

TEST(CsvLoaderTest, MaxRowsCapsLoading) {
  std::vector<std::vector<std::string>> rows = {{"h"}};
  for (int i = 0; i < 10; ++i) rows.push_back({std::to_string(i)});
  auto table =
      data::TableFromCsvRows(rows, data::CsvLoadOptions{true, "t", 4});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 4);
}

TEST(CsvLoaderTest, RejectsEmptyInput) {
  EXPECT_FALSE(data::TableFromCsvRows({}, {}).ok());
  EXPECT_FALSE(
      data::TableFromCsvRows({{"only", "headers"}}, {}).ok());
}

TEST(CsvLoaderTest, MissingFileIsIoError) {
  auto table = data::LoadTableFromCsv("/nonexistent/file.csv");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), util::StatusCode::kIoError);
}

TEST(WeightsIoTest, SaveLoadRoundTripPreservesPredictions) {
  data::WikiTableOptions options;
  options.num_tables = 30;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);

  core::ExplainTiConfig config;
  config.epochs = 1;
  config.pretrain_epochs = 1;
  core::ExplainTiModel trained(config, corpus);
  trained.Fit();

  const std::string path = "/tmp/explainti_weights_test.bin";
  ASSERT_TRUE(trained.SaveWeights(path).ok());

  // A fresh, untrained model with the same architecture.
  core::ExplainTiModel restored(config, corpus);
  ASSERT_TRUE(restored.LoadWeights(path).ok());

  const auto& task = trained.task_data(core::TaskKind::kType);
  for (size_t i = 0; i < task.test_ids.size() && i < 10; ++i) {
    const int id = task.test_ids[i];
    EXPECT_EQ(trained.PredictProbabilities(core::TaskKind::kType, id),
              restored.PredictProbabilities(core::TaskKind::kType, id));
  }
  std::remove(path.c_str());
}

TEST(WeightsIoTest, LoadRejectsWrongArchitecture) {
  data::WikiTableOptions options;
  options.num_tables = 30;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);

  core::ExplainTiConfig config;
  config.epochs = 1;
  config.pretrain_epochs = 1;
  core::ExplainTiModel model(config, corpus);

  const std::string path = "/tmp/explainti_weights_bad.bin";
  ASSERT_TRUE(model.SaveWeights(path).ok());

  core::ExplainTiConfig other = config;
  other.max_seq_len = 24;  // Smaller position table -> shape mismatch.
  core::ExplainTiModel mismatched(other, corpus);
  EXPECT_FALSE(mismatched.LoadWeights(path).ok());
  std::remove(path.c_str());
}

TEST(WeightsIoTest, LoadRejectsGarbageFile) {
  const std::string path = "/tmp/explainti_weights_garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a weights file at all", f);
  fclose(f);

  data::WikiTableOptions options;
  options.num_tables = 30;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);
  core::ExplainTiConfig config;
  config.epochs = 1;
  core::ExplainTiModel model(config, corpus);
  EXPECT_FALSE(model.LoadWeights(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace explainti
