#include <memory>

#include <gtest/gtest.h>

#include "text/serializer.h"
#include "text/tokenizer.h"
#include "text/vocab.h"

namespace explainti::text {
namespace {

std::shared_ptr<Vocab> TestVocab() {
  auto vocab = std::make_shared<Vocab>();
  for (const char* word :
       {"title", "header", "cell", "nba", "draft", "player", "team",
        "lakers", "james", "smith", "1990", "basket", "##ball"}) {
    vocab->AddToken(word);
  }
  return vocab;
}

TEST(VocabTest, SpecialTokensAreFirst) {
  Vocab vocab;
  EXPECT_EQ(vocab.Id("[PAD]"), SpecialTokens::kPad);
  EXPECT_EQ(vocab.Id("[UNK]"), SpecialTokens::kUnk);
  EXPECT_EQ(vocab.Id("[CLS]"), SpecialTokens::kCls);
  EXPECT_EQ(vocab.Id("[SEP]"), SpecialTokens::kSep);
  EXPECT_EQ(vocab.Id("[MASK]"), SpecialTokens::kMask);
  EXPECT_EQ(vocab.size(), SpecialTokens::kCount);
}

TEST(VocabTest, UnknownMapsToUnk) {
  Vocab vocab;
  EXPECT_EQ(vocab.Id("zzz"), SpecialTokens::kUnk);
}

TEST(VocabTest, AddTokenIsIdempotent) {
  Vocab vocab;
  const int id1 = vocab.AddToken("hello");
  const int id2 = vocab.AddToken("hello");
  EXPECT_EQ(id1, id2);
}

TEST(VocabTest, BuildVocabOrdersByFrequency) {
  std::unordered_map<std::string, int64_t> counts = {
      {"rare", 1}, {"common", 100}, {"mid", 10}};
  Vocab vocab = BuildVocab(counts, /*max_size=*/10000, /*min_count=*/1);
  EXPECT_LT(vocab.Id("common"), vocab.Id("mid"));
  EXPECT_LT(vocab.Id("mid"), vocab.Id("rare"));
}

TEST(VocabTest, BuildVocabRespectsMinCount) {
  std::unordered_map<std::string, int64_t> counts = {{"once", 1},
                                                     {"often", 5}};
  Vocab vocab = BuildVocab(counts, 10000, /*min_count=*/2);
  EXPECT_TRUE(vocab.Contains("often"));
  EXPECT_FALSE(vocab.Contains("once"));
}

TEST(VocabTest, BuildVocabIncludesCharacterFallbacks) {
  Vocab vocab = BuildVocab({}, 10000);
  EXPECT_TRUE(vocab.Contains("a"));
  EXPECT_TRUE(vocab.Contains("##z"));
  EXPECT_TRUE(vocab.Contains("7"));
}

TEST(BasicTokenizeTest, LowercasesAndSplitsPunctuation) {
  EXPECT_EQ(BasicTokenize("Hello, World!"),
            (std::vector<std::string>{"hello", ",", "world", "!"}));
}

TEST(BasicTokenizeTest, KeepsApostrophes) {
  EXPECT_EQ(BasicTokenize("o'neal"), (std::vector<std::string>{"o'neal"}));
}

TEST(WordPieceTest, WholeWordMatch) {
  WordPieceTokenizer tokenizer(TestVocab());
  EXPECT_EQ(tokenizer.Tokenize("nba draft"),
            (std::vector<std::string>{"nba", "draft"}));
}

TEST(WordPieceTest, GreedyLongestMatchDecomposition) {
  WordPieceTokenizer tokenizer(TestVocab());
  EXPECT_EQ(tokenizer.Tokenize("basketball"),
            (std::vector<std::string>{"basket", "##ball"}));
}

TEST(WordPieceTest, UnmatchableWordBecomesUnk) {
  WordPieceTokenizer tokenizer(TestVocab());
  const auto tokens = tokenizer.Tokenize("qqqq");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "[UNK]");
}

TEST(ByteFallbackTest, NeverProducesUnkToken) {
  ByteFallbackTokenizer tokenizer(TestVocab());
  const auto tokens = tokenizer.Tokenize("qqqq");
  EXPECT_EQ(tokens, (std::vector<std::string>{"q", "##q", "##q", "##q"}));
}

TEST(MakeTokenizerTest, DispatchesOnBaseModel) {
  auto vocab = TestVocab();
  EXPECT_NE(dynamic_cast<WordPieceTokenizer*>(
                MakeTokenizer("bert", vocab).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<ByteFallbackTokenizer*>(
                MakeTokenizer("roberta", vocab).get()),
            nullptr);
}

TEST(SerializerTest, ColumnLayoutMatchesPaper) {
  auto vocab = TestVocab();
  WordPieceTokenizer tokenizer(vocab);
  SequenceSerializer serializer(&tokenizer, 40);
  const EncodedSequence seq = serializer.SerializeColumn(
      ColumnText{"1990 nba draft", "player", {"james smith"}});
  ASSERT_GE(seq.ids.size(), 4u);
  EXPECT_EQ(seq.ids.front(), SpecialTokens::kCls);
  EXPECT_EQ(seq.ids.back(), SpecialTokens::kSep);
  EXPECT_EQ(seq.tokens[1], "title");
  // All segments are 0 for a single column.
  for (int segment : seq.segments) EXPECT_EQ(segment, 0);
  EXPECT_EQ(seq.sep_pos, static_cast<int>(seq.ids.size()) - 1);
}

TEST(SerializerTest, PairLayoutHasTwoSegments) {
  auto vocab = TestVocab();
  WordPieceTokenizer tokenizer(vocab);
  SequenceSerializer serializer(&tokenizer, 40);
  const EncodedSequence seq = serializer.SerializePair(
      ColumnText{"1990 nba draft", "player", {"james smith"}},
      ColumnText{"1990 nba draft", "team", {"lakers"}});
  EXPECT_EQ(seq.ids.front(), SpecialTokens::kCls);
  EXPECT_EQ(seq.ids.back(), SpecialTokens::kSep);
  ASSERT_GT(seq.sep_pos, 0);
  EXPECT_EQ(seq.ids[static_cast<size_t>(seq.sep_pos)], SpecialTokens::kSep);
  // Segment flips to 1 after the first [SEP].
  EXPECT_EQ(seq.segments[static_cast<size_t>(seq.sep_pos)], 0);
  EXPECT_EQ(seq.segments.back(), 1);
}

TEST(SerializerTest, TruncatesToMaxLenWithTrailingSep) {
  auto vocab = TestVocab();
  WordPieceTokenizer tokenizer(vocab);
  SequenceSerializer serializer(&tokenizer, 12);
  std::vector<std::string> many_cells(50, "james smith");
  const EncodedSequence seq = serializer.SerializeColumn(
      ColumnText{"1990 nba draft", "player", many_cells});
  EXPECT_LE(seq.ids.size(), 12u);
  EXPECT_EQ(seq.ids.back(), SpecialTokens::kSep);
}

TEST(SerializerTest, DedupCellsRemovesDuplicates) {
  auto vocab = TestVocab();
  WordPieceTokenizer tokenizer(vocab);
  SequenceSerializer plain(&tokenizer, 64, /*dedup_cells=*/false);
  SequenceSerializer dedup(&tokenizer, 64, /*dedup_cells=*/true);
  const ColumnText column{"draft", "player",
                          {"james", "james", "james", "smith"}};
  EXPECT_GT(plain.SerializeColumn(column).ids.size(),
            dedup.SerializeColumn(column).ids.size());
}

TEST(SequenceBuilderTest, BuildsWithSepPosAndBudget) {
  auto vocab = TestVocab();
  WordPieceTokenizer tokenizer(vocab);
  SequenceBuilder builder(&tokenizer, 10);
  builder.AddSpecial(SpecialTokens::kCls, 0);
  builder.AddText("nba draft", 0);
  builder.AddSpecial(SpecialTokens::kSep, 0);
  builder.AddText("player team lakers james smith draft nba", 1);
  const EncodedSequence seq = builder.Build();
  EXPECT_LE(seq.ids.size(), 10u);
  EXPECT_EQ(seq.ids.back(), SpecialTokens::kSep);
  EXPECT_EQ(seq.sep_pos, 3);
}

}  // namespace
}  // namespace explainti::text
