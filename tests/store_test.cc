// Sharded, snapshot-persistent embedding store: merge determinism,
// copy-on-write rebuilds, and the persisted-format round trip (mmap and
// read() fallback). The acceptance bar here is bit-identity: a saved
// store reloaded in a fresh object must answer every query with the same
// ids, the same similarity BITS, and the same fallback flags — at every
// shard count and thread count.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ann/sharded_search.h"
#include "core/embedding_store.h"
#include "util/alloc_counter.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace explainti::core {
namespace {

using ann::SearchResult;

// ---------------------------------------------------------------------------
// MergeTopK: the bounded-heap merge under the (similarity desc, id asc)
// total order.
// ---------------------------------------------------------------------------

TEST(MergeTopKTest, OrdersBySimilarityThenId) {
  std::vector<std::vector<SearchResult>> shards(2);
  shards[0] = {{5, 0.9f}, {9, 0.5f}};
  shards[1] = {{2, 0.9f}, {1, 0.7f}};
  std::vector<SearchResult> out;
  ann::MergeTopK(shards.data(), 2, 4, /*exclude_id=*/-1, &out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].id, 2);  // Tie at 0.9 broken by ascending id.
  EXPECT_EQ(out[1].id, 5);
  EXPECT_EQ(out[2].id, 1);
  EXPECT_EQ(out[3].id, 9);
}

TEST(MergeTopKTest, DropsExcludedIdWithoutCostingAHit) {
  std::vector<std::vector<SearchResult>> shards(1);
  shards[0] = {{0, 1.0f}, {1, 0.9f}, {2, 0.8f}};
  std::vector<SearchResult> out;
  ann::MergeTopK(shards.data(), 1, 2, /*exclude_id=*/0, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1);
  EXPECT_EQ(out[1].id, 2);
}

TEST(MergeTopKTest, BoundedToKAndIndependentOfShardOrder) {
  std::vector<SearchResult> a = {{10, 0.9f}, {11, 0.3f}, {12, 0.1f}};
  std::vector<SearchResult> b = {{20, 0.8f}, {21, 0.4f}};
  std::vector<SearchResult> c = {{30, 0.85f}, {31, 0.2f}};
  std::vector<std::vector<SearchResult>> fwd = {a, b, c};
  std::vector<std::vector<SearchResult>> rev = {c, b, a};
  std::vector<SearchResult> out_fwd, out_rev;
  ann::MergeTopK(fwd.data(), 3, 3, -1, &out_fwd);
  ann::MergeTopK(rev.data(), 3, 3, -1, &out_rev);
  ASSERT_EQ(out_fwd.size(), 3u);
  EXPECT_EQ(out_fwd[0].id, 10);
  EXPECT_EQ(out_fwd[1].id, 30);
  EXPECT_EQ(out_fwd[2].id, 20);
  ASSERT_EQ(out_rev.size(), out_fwd.size());
  for (size_t i = 0; i < out_fwd.size(); ++i) {
    EXPECT_EQ(out_fwd[i].id, out_rev[i].id);
    EXPECT_EQ(out_fwd[i].similarity, out_rev[i].similarity);
  }
}

TEST(MergeTopKTest, NonPositiveKReturnsNothing) {
  std::vector<std::vector<SearchResult>> shards(1);
  shards[0] = {{1, 0.5f}};
  std::vector<SearchResult> out = {{99, 0.1f}};
  ann::MergeTopK(shards.data(), 1, 0, -1, &out);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// Store fixture helpers.
// ---------------------------------------------------------------------------

std::vector<std::vector<float>> MakeRows(int n, int dim, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> rows(static_cast<size_t>(n));
  for (auto& row : rows) {
    row.resize(static_cast<size_t>(dim));
    for (float& x : row) x = static_cast<float>(rng.Normal());
  }
  return rows;
}

std::vector<int> Iota(int n) {
  std::vector<int> ids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  return ids;
}

EmbeddingStore::Options SegOptions(int num_segments) {
  EmbeddingStore::Options options;
  options.num_segments = num_segments;
  options.hnsw.M = 6;
  options.hnsw.ef_construction = 32;
  options.hnsw.ef_search = 24;
  return options;
}

/// One query's full observable outcome, with similarities captured as raw
/// bits so "close enough" can never pass for "identical".
struct GoldenHit {
  int64_t id;
  uint32_t sim_bits;
  bool operator==(const GoldenHit&) const = default;
};
struct GoldenQuery {
  std::vector<GoldenHit> hits;
  bool used_fallback = false;
  bool operator==(const GoldenQuery&) const = default;
};

std::vector<GoldenQuery> CaptureGolden(
    const EmbeddingStore::View& view,
    const std::vector<std::vector<float>>& queries, int k) {
  std::vector<GoldenQuery> golden;
  for (const auto& q : queries) {
    GoldenQuery g;
    const auto hits = view.Search(q, k, /*exclude_id=*/-1, &g.used_fallback);
    for (const SearchResult& hit : hits) {
      uint32_t bits = 0;
      static_assert(sizeof(bits) == sizeof(hit.similarity));
      std::memcpy(&bits, &hit.similarity, sizeof(bits));
      g.hits.push_back(GoldenHit{hit.id, bits});
    }
    golden.push_back(std::move(g));
  }
  return golden;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::system(("rm -rf " + dir).c_str());
  return dir;
}

class StoreTest : public ::testing::Test {
 protected:
  void TearDown() override { util::SetGlobalThreadCount(1); }
};

// ---------------------------------------------------------------------------
// Segmented search semantics.
// ---------------------------------------------------------------------------

TEST_F(StoreTest, SegmentedStoreAgreesWithFlatTruthOnTopHit) {
  const int kDim = 8;
  const auto rows = MakeRows(60, kDim, 7);
  for (int segments : {1, 2, 8}) {
    EmbeddingStore store(SegOptions(segments));
    store.Rebuild(Iota(60), rows);
    EXPECT_TRUE(store.hnsw_ready());
    const EmbeddingStore::View view = store.view();
    EXPECT_EQ(view.num_segments(), segments);
    for (int q = 0; q < 60; q += 7) {
      const auto hits = view.Search(rows[static_cast<size_t>(q)], 3);
      ASSERT_FALSE(hits.empty()) << "segments=" << segments << " q=" << q;
      EXPECT_EQ(hits[0].id, q);  // A stored row's nearest is itself.
    }
  }
}

TEST_F(StoreTest, SearchIsBitIdenticalAcrossThreadCounts) {
  const auto rows = MakeRows(80, 8, 11);
  const auto queries = MakeRows(10, 8, 99);
  EmbeddingStore store(SegOptions(8));
  store.Rebuild(Iota(80), rows);
  const EmbeddingStore::View view = store.view();

  util::SetGlobalThreadCount(1);
  const auto serial = CaptureGolden(view, queries, 5);
  util::SetGlobalThreadCount(4);
  const auto parallel = CaptureGolden(view, queries, 5);
  EXPECT_EQ(serial, parallel);
}

TEST_F(StoreTest, SearchIntoMatchesSearchAndReusesCapacity) {
  const auto rows = MakeRows(40, 8, 3);
  EmbeddingStore store(SegOptions(4));
  store.Rebuild(Iota(40), rows);
  const EmbeddingStore::View view = store.view();
  std::vector<SearchResult> reused;
  for (int q = 0; q < 10; ++q) {
    const auto by_value = view.Search(rows[static_cast<size_t>(q)], 4, q);
    view.SearchInto(rows[static_cast<size_t>(q)], 4, q, &reused);
    ASSERT_EQ(by_value.size(), reused.size());
    for (size_t i = 0; i < by_value.size(); ++i) {
      EXPECT_EQ(by_value[i].id, reused[i].id);
      EXPECT_EQ(by_value[i].similarity, reused[i].similarity);
    }
  }
}

TEST_F(StoreTest, SteadyStateSerialSearchAllocatesNothing) {
  const auto rows = MakeRows(64, 8, 21);
  EmbeddingStore store(SegOptions(4));
  store.Rebuild(Iota(64), rows);
  const EmbeddingStore::View view = store.view();
  util::SetGlobalThreadCount(1);

  std::vector<SearchResult> out;
  // Warm the output vector and the thread-local fan-out scratch.
  for (int q = 0; q < 8; ++q) {
    view.SearchInto(rows[static_cast<size_t>(q)], 5, -1, &out);
  }
  util::ScopedAllocCounter counter;
  for (int q = 0; q < 32; ++q) {
    view.SearchInto(rows[static_cast<size_t>(q % 8)], 5, -1, &out);
  }
  EXPECT_EQ(counter.Delta().allocations, 0)
      << "steady-state serial store search must not touch the heap";
}

// ---------------------------------------------------------------------------
// Copy-on-write rebuilds.
// ---------------------------------------------------------------------------

TEST_F(StoreTest, IncrementalRebuildReencodesOnlyDirtySegments) {
  const int kN = 64, kDim = 8;
  auto rows = MakeRows(kN, kDim, 5);
  EmbeddingStore store(SegOptions(8));
  store.Rebuild(Iota(kN), rows);
  EXPECT_EQ(store.last_rebuild_stats().segments_built, 8);
  EXPECT_EQ(store.last_rebuild_stats().segments_reused, 0);
  const EmbeddingStore::View old_view = store.view();

  // Dirty exactly one id-range (span is 8 here: ids 16..23 = segment 2).
  rows[17][0] += 1.0f;
  store.Rebuild(Iota(kN), rows);
  const EmbeddingStore::RebuildStats stats = store.last_rebuild_stats();
  EXPECT_EQ(stats.segments_built, 1);
  EXPECT_EQ(stats.segments_reused, 7);

  // Clean segments are reused by POINTER, not re-encoded: a row borrowed
  // from the old generation and the same row in the new one share storage.
  const EmbeddingStore::View new_view = store.view();
  EXPECT_EQ(old_view.Embedding(0).data(), new_view.Embedding(0).data());
  EXPECT_NE(old_view.Embedding(17).data(), new_view.Embedding(17).data());

  // The pinned old view still answers from its own generation.
  EXPECT_EQ(old_view.Embedding(17).ToVector()[0] + 1.0f,
            new_view.Embedding(17).ToVector()[0]);
}

TEST_F(StoreTest, RebuildWithIdenticalContentReusesEverything) {
  const auto rows = MakeRows(48, 8, 13);
  EmbeddingStore store(SegOptions(6));
  store.Rebuild(Iota(48), rows);
  store.Rebuild(Iota(48), rows);
  EXPECT_EQ(store.last_rebuild_stats().segments_built, 0);
  EXPECT_EQ(store.last_rebuild_stats().segments_reused, 6);
  EXPECT_EQ(store.view().generation(), 2u);
}

TEST_F(StoreTest, SpanChangeInvalidatesReuse) {
  const auto rows = MakeRows(48, 8, 17);
  EmbeddingStore a(SegOptions(6));
  a.Rebuild(Iota(48), rows);
  // Dropping rows changes max_id, hence span: no segment is comparable.
  EmbeddingStore b(SegOptions(6));
  b.Rebuild(Iota(48), rows);
  b.Rebuild(Iota(24), {rows.begin(), rows.begin() + 24});
  EXPECT_EQ(b.last_rebuild_stats().segments_reused, 0);
  EXPECT_EQ(b.size(), 24);
}

// ---------------------------------------------------------------------------
// Persistence: save -> load bit-identity at every shard count and thread
// count, through mmap and through the read() fallback.
// ---------------------------------------------------------------------------

TEST_F(StoreTest, SaveLoadRoundTripIsBitIdentical) {
  const int kN = 200, kDim = 16, kK = 10;
  const auto rows = MakeRows(kN, kDim, 29);
  const auto queries = MakeRows(12, kDim, 101);

  for (int segments : {1, 2, 8}) {
    EmbeddingStore store(SegOptions(segments));
    store.Rebuild(Iota(kN), rows);
    const std::string dir =
        FreshDir("store_roundtrip_" + std::to_string(segments));
    ASSERT_TRUE(store.Save(dir).ok());

    for (int threads : {1, 4}) {
      util::SetGlobalThreadCount(threads);
      const auto golden = CaptureGolden(store.view(), queries, kK);

      EmbeddingStore loaded(SegOptions(segments));
      ASSERT_TRUE(loaded.Load(dir).ok())
          << "segments=" << segments << " threads=" << threads;
      const EmbeddingStore::View view = loaded.view();
      EXPECT_EQ(view.size(), kN);
      EXPECT_EQ(view.dim(), kDim);
      EXPECT_EQ(view.num_segments(), segments);
      EXPECT_TRUE(view.hnsw_ready());
      EXPECT_EQ(CaptureGolden(view, queries, kK), golden)
          << "segments=" << segments << " threads=" << threads;

      // Raw embedding rows survive byte-for-byte too.
      for (int id = 0; id < kN; id += 37) {
        EXPECT_EQ(view.Embedding(id).ToVector(),
                  rows[static_cast<size_t>(id)]);
      }
    }
  }
}

TEST_F(StoreTest, ReadFallbackMatchesMmap) {
  const auto rows = MakeRows(96, 8, 31);
  const auto queries = MakeRows(8, 8, 103);
  EmbeddingStore store(SegOptions(4));
  store.Rebuild(Iota(96), rows);
  const std::string dir = FreshDir("store_nommap");
  ASSERT_TRUE(store.Save(dir).ok());
  const auto golden = CaptureGolden(store.view(), queries, 5);

  ASSERT_EQ(setenv("EXPLAINTI_NO_MMAP", "1", 1), 0);
  EmbeddingStore loaded(SegOptions(4));
  const util::Status status = loaded.Load(dir);
  unsetenv("EXPLAINTI_NO_MMAP");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(CaptureGolden(loaded.view(), queries, 5), golden);
}

TEST_F(StoreTest, ReloadedStoreSavesAnIdenticalStore) {
  // Save -> load -> save -> load must stay bit-identical: the manifest
  // carries the HNSW geometry (seed, ef) so a second generation of files
  // reproduces the same graphs and the same search behaviour.
  const auto rows = MakeRows(64, 8, 37);
  const auto queries = MakeRows(6, 8, 107);
  EmbeddingStore store(SegOptions(2));
  store.Rebuild(Iota(64), rows);
  const std::string dir1 = FreshDir("store_regen1");
  ASSERT_TRUE(store.Save(dir1).ok());
  const auto golden = CaptureGolden(store.view(), queries, 5);

  EmbeddingStore mid;
  ASSERT_TRUE(mid.Load(dir1).ok());
  const std::string dir2 = FreshDir("store_regen2");
  ASSERT_TRUE(mid.Save(dir2).ok());

  EmbeddingStore end;
  ASSERT_TRUE(end.Load(dir2).ok());
  EXPECT_EQ(CaptureGolden(end.view(), queries, 5), golden);
}

TEST_F(StoreTest, SaveEmptyStoreIsFailedPrecondition) {
  EmbeddingStore store;
  const util::Status status = store.Save(FreshDir("store_empty"));
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(StoreTest, LoadMissingDirectoryFailsAndKeepsCurrentSnapshot) {
  const auto rows = MakeRows(16, 4, 41);
  EmbeddingStore store(SegOptions(2));
  store.Rebuild(Iota(16), rows);
  const uint64_t generation = store.view().generation();

  EXPECT_EQ(store.Load("/nonexistent/store/dir").code(),
            util::StatusCode::kNotFound);
  // The failed load never published: same generation, same contents.
  EXPECT_EQ(store.view().generation(), generation);
  EXPECT_EQ(store.size(), 16);
}

TEST_F(StoreTest, SparseIdsRoundTrip) {
  // Non-contiguous ids leave some ranges empty; empty ranges get no file
  // and no manifest entry, and reload preserves membership exactly.
  const std::vector<int> ids = {3, 4, 40, 41, 42, 95};
  const auto rows = MakeRows(static_cast<int>(ids.size()), 8, 43);
  EmbeddingStore store(SegOptions(8));
  store.Rebuild(ids, rows);
  const std::string dir = FreshDir("store_sparse");
  ASSERT_TRUE(store.Save(dir).ok());

  EmbeddingStore loaded;
  ASSERT_TRUE(loaded.Load(dir).ok());
  const EmbeddingStore::View view = loaded.view();
  EXPECT_EQ(view.size(), static_cast<int64_t>(ids.size()));
  for (int id : ids) EXPECT_TRUE(view.Contains(id));
  EXPECT_FALSE(view.Contains(5));
  EXPECT_FALSE(view.Contains(50));
  EXPECT_EQ(view.max_id(), 95);
}

}  // namespace
}  // namespace explainti::core
