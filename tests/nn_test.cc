#include <cmath>

#include <gtest/gtest.h>

#include "nn/encoder.h"
#include "nn/heads.h"
#include "nn/linear.h"
#include "nn/pretrain.h"
#include "text/vocab.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace explainti::nn {
namespace {

TransformerConfig SmallConfig() {
  TransformerConfig config;
  config.vocab_size = 50;
  config.d_model = 16;
  config.num_heads = 2;
  config.num_layers = 2;
  config.ffn_dim = 32;
  config.max_len = 16;
  config.dropout = 0.1f;
  return config;
}

TEST(LinearTest, ShapesAndBias) {
  util::Rng rng(1);
  Linear linear(3, 2, rng);
  tensor::Tensor x = tensor::Tensor::FromVector({3}, {1, 0, 0});
  tensor::Tensor y = linear.Forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{2}));
  // y = W[0,:] + b; bias starts at zero so y equals first weight row.
  EXPECT_FLOAT_EQ(y.at(0), linear.weight().at(0));
  EXPECT_FLOAT_EQ(y.at(1), linear.weight().at(1));
}

TEST(LinearTest, BatchedInput) {
  util::Rng rng(2);
  Linear linear(4, 3, rng);
  tensor::Tensor x = tensor::Tensor::Zeros({5, 4});
  EXPECT_EQ(linear.Forward(x).shape(), (tensor::Shape{5, 3}));
}

TEST(ModuleTest, ParameterCollectionIsRecursive) {
  util::Rng rng(3);
  TransformerEncoder encoder(SmallConfig(), rng);
  // embeddings: 3 tables + 2 LN params; per layer: 4 linears (2 params
  // each) + 2 FFN linears + 4 LN params.
  EXPECT_GT(encoder.Parameters().size(), 20u);
  EXPECT_GT(encoder.ParameterCount(), 1000);
}

TEST(EmbeddingsTest, OutputShape) {
  util::Rng rng(4);
  TransformerConfig config = SmallConfig();
  TransformerEmbeddings embeddings(config, rng);
  util::Rng dropout_rng(5);
  tensor::Tensor out =
      embeddings.Forward({5, 6, 7}, {0, 0, 1}, /*training=*/false,
                         dropout_rng);
  EXPECT_EQ(out.shape(), (tensor::Shape{3, 16}));
}

TEST(EmbeddingsTest, SegmentEmbeddingChangesOutput) {
  util::Rng rng(6);
  TransformerConfig config = SmallConfig();
  TransformerEmbeddings embeddings(config, rng);
  util::Rng dropout_rng(7);
  tensor::Tensor a = embeddings.Forward({5, 6}, {0, 0}, false, dropout_rng);
  tensor::Tensor b = embeddings.Forward({5, 6}, {0, 1}, false, dropout_rng);
  EXPECT_NE(a.ToVector(), b.ToVector());
}

TEST(EmbeddingsTest, SegmentsIgnoredWhenDisabled) {
  util::Rng rng(8);
  TransformerConfig config = SmallConfig();
  config.use_segments = false;  // RoBERTa flavour.
  TransformerEmbeddings embeddings(config, rng);
  util::Rng dropout_rng(9);
  tensor::Tensor a = embeddings.Forward({5, 6}, {0, 0}, false, dropout_rng);
  tensor::Tensor b = embeddings.Forward({5, 6}, {0, 1}, false, dropout_rng);
  EXPECT_EQ(a.ToVector(), b.ToVector());
}

TEST(AttentionTest, OutputShapePreserved) {
  util::Rng rng(10);
  MultiHeadSelfAttention attention(SmallConfig(), rng);
  util::Rng dropout_rng(11);
  tensor::Tensor x = tensor::Tensor::Randn({5, 16}, rng, 1.0f);
  tensor::Tensor out =
      attention.Forward(x, tensor::Tensor(), /*training=*/false, dropout_rng);
  EXPECT_EQ(out.shape(), (tensor::Shape{5, 16}));
}

TEST(AttentionTest, MaskBlocksInformationFlow) {
  util::Rng rng(12);
  MultiHeadSelfAttention attention(SmallConfig(), rng);
  util::Rng dropout_rng(13);
  tensor::Tensor x = tensor::Tensor::Randn({3, 16}, rng, 1.0f);

  // Fully-open mask vs a mask where token 0 cannot see token 2.
  std::vector<float> open(9, 0.0f);
  std::vector<float> blocked = open;
  blocked[2] = -1e9f;  // (query 0, key 2).
  tensor::Tensor out_open = attention.Forward(
      x, tensor::Tensor::FromVector({3, 3}, open), false, dropout_rng);
  tensor::Tensor out_blocked = attention.Forward(
      x, tensor::Tensor::FromVector({3, 3}, blocked), false, dropout_rng);

  // Row 0 must change; rows 1 and 2 are untouched.
  bool row0_differs = false;
  for (int64_t j = 0; j < 16; ++j) {
    if (out_open.at(j) != out_blocked.at(j)) row0_differs = true;
    EXPECT_FLOAT_EQ(out_open.at(16 + j), out_blocked.at(16 + j));
    EXPECT_FLOAT_EQ(out_open.at(32 + j), out_blocked.at(32 + j));
  }
  EXPECT_TRUE(row0_differs);
}

TEST(EncoderTest, ForwardDeterministicInEvalMode) {
  util::Rng rng(14);
  TransformerEncoder encoder(SmallConfig(), rng);
  util::Rng r1(1);
  util::Rng r2(2);
  tensor::Tensor a = encoder.Forward({3, 4, 5}, {}, false, r1);
  tensor::Tensor b = encoder.Forward({3, 4, 5}, {}, false, r2);
  EXPECT_EQ(a.ToVector(), b.ToVector());
}

TEST(EncoderTest, DropoutMakesTrainingStochastic) {
  util::Rng rng(15);
  TransformerEncoder encoder(SmallConfig(), rng);
  util::Rng r1(1);
  tensor::Tensor a = encoder.Forward({3, 4, 5}, {}, true, r1);
  tensor::Tensor b = encoder.Forward({3, 4, 5}, {}, true, r1);
  EXPECT_NE(a.ToVector(), b.ToVector());
}

TEST(EncoderTest, GradientsReachAllParameters) {
  util::Rng rng(16);
  TransformerConfig config = SmallConfig();
  config.dropout = 0.0f;
  TransformerEncoder encoder(config, rng);
  util::Rng fwd_rng(17);
  tensor::Tensor out = encoder.Forward({1, 2, 3, 4}, {}, true, fwd_rng);
  tensor::Mean(out).Backward();
  int with_grad = 0;
  for (const tensor::Tensor& p : encoder.Parameters()) {
    if (p.has_grad()) {
      float norm = 0.0f;
      for (int64_t i = 0; i < p.size(); ++i) norm += std::abs(p.grad()[i]);
      if (norm > 0.0f) ++with_grad;
    }
  }
  // All parameter tensors except unused position/segment rows get signal.
  EXPECT_GT(with_grad,
            static_cast<int>(encoder.Parameters().size()) * 3 / 4);
}

TEST(HeadsTest, ClassifierOutputsNumLabels) {
  util::Rng rng(18);
  ClassifierHead head(16, 7, rng);
  EXPECT_EQ(head.num_labels(), 7);
  tensor::Tensor logits =
      head.Forward(tensor::Tensor::Zeros({16}));
  EXPECT_EQ(logits.shape(), (tensor::Shape{7}));
}

TEST(MlmPretrainTest, LossDecreasesOnTinyCorpus) {
  util::Rng rng(19);
  TransformerConfig config = SmallConfig();
  TransformerEncoder encoder(config, rng);

  // A tiny corpus of patterned sequences the model can memorise.
  std::vector<std::vector<int>> sequences;
  util::Rng data_rng(20);
  for (int i = 0; i < 24; ++i) {
    std::vector<int> seq = {text::SpecialTokens::kCls};
    const int base = 10 + static_cast<int>(data_rng.UniformInt(3)) * 10;
    for (int j = 0; j < 10; ++j) seq.push_back(base + j);
    seq.push_back(text::SpecialTokens::kSep);
    sequences.push_back(seq);
  }
  std::vector<std::vector<int>> segments(sequences.size());

  MlmPretrainOptions options;
  options.epochs = 1;
  options.seed = 5;
  const MlmPretrainStats first =
      PretrainMlm(&encoder, sequences, segments, options);

  options.epochs = 6;
  const MlmPretrainStats later =
      PretrainMlm(&encoder, sequences, segments, options);
  EXPECT_LT(later.final_epoch_loss, first.final_epoch_loss);
  EXPECT_GT(later.masked_tokens_total, 0);
  EXPECT_GT(later.steps, 0);
}

TEST(MlmPretrainTest, DynamicMaskingStillTrains) {
  util::Rng rng(21);
  TransformerEncoder encoder(SmallConfig(), rng);
  std::vector<std::vector<int>> sequences(8, std::vector<int>{2, 10, 11, 12,
                                                              13, 14, 3});
  std::vector<std::vector<int>> segments(sequences.size());
  MlmPretrainOptions options;
  options.epochs = 2;
  options.dynamic_masking = true;
  const MlmPretrainStats stats =
      PretrainMlm(&encoder, sequences, segments, options);
  EXPECT_GT(stats.masked_tokens_total, 0);
}

}  // namespace
}  // namespace explainti::nn
