// 100k-corpus embedding-store cases (ctest label: slow). Everything the
// tier-1 store_test certifies at toy scale — copy-on-write reuse,
// save/load bit-identity, mmap loading — re-checked at the corpus size
// the sharded store exists for.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/embedding_store.h"
#include "util/rng.h"

namespace explainti::core {
namespace {

constexpr int kN = 100000;
constexpr int kDim = 12;
constexpr int kSegments = 8;

EmbeddingStore::Options ScaleOptions() {
  EmbeddingStore::Options options;
  options.num_segments = kSegments;
  // Light graph parameters: this test certifies the store machinery at
  // scale, not recall (the bench gates recall with production settings).
  options.hnsw.M = 5;
  options.hnsw.ef_construction = 16;
  options.hnsw.ef_search = 24;
  return options;
}

std::vector<std::vector<float>> MakeRows(int n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> rows(static_cast<size_t>(n));
  for (auto& row : rows) {
    row.resize(kDim);
    for (float& x : row) x = static_cast<float>(rng.Normal());
  }
  return rows;
}

std::vector<int> Iota(int n) {
  std::vector<int> ids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  return ids;
}

TEST(StoreScaleTest, HundredThousandRowRoundTripAndCow) {
  auto rows = MakeRows(kN, 51);
  EmbeddingStore store(ScaleOptions());
  store.Rebuild(Iota(kN), rows);
  EXPECT_TRUE(store.hnsw_ready());
  EXPECT_EQ(store.size(), kN);
  EXPECT_EQ(store.last_rebuild_stats().segments_built, kSegments);

  // Incremental rebuild re-encodes only the dirty segment, at scale.
  rows[70000][0] += 1.0f;
  store.Rebuild(Iota(kN), rows);
  EXPECT_EQ(store.last_rebuild_stats().segments_built, 1);
  EXPECT_EQ(store.last_rebuild_stats().segments_reused, kSegments - 1);

  // Save -> load in a fresh store stays bit-identical on a probe set.
  const std::string dir = ::testing::TempDir() + "/store_scale";
  std::system(("rm -rf " + dir).c_str());
  ASSERT_TRUE(store.Save(dir).ok());
  EmbeddingStore loaded;
  ASSERT_TRUE(loaded.Load(dir).ok());
  const EmbeddingStore::View a = store.view();
  const EmbeddingStore::View b = loaded.view();
  EXPECT_EQ(b.size(), kN);
  EXPECT_EQ(b.num_segments(), kSegments);
  for (int q = 0; q < kN; q += 9973) {
    const auto& query = rows[static_cast<size_t>(q)];
    const auto ha = a.Search(query, 10);
    const auto hb = b.Search(query, 10);
    ASSERT_EQ(ha.size(), hb.size()) << "q=" << q;
    for (size_t i = 0; i < ha.size(); ++i) {
      EXPECT_EQ(ha[i].id, hb[i].id);
      EXPECT_EQ(ha[i].similarity, hb[i].similarity);
    }
    EXPECT_EQ(b.Embedding(q).ToVector(), query);
  }
  std::system(("rm -rf " + dir).c_str());
}

}  // namespace
}  // namespace explainti::core
