// Cross-module integration tests: the full ExplainTI pipeline against
// baselines on shared corpora, the FRESH sufficiency loop over real model
// explanations, and the database-table (GitTable) path.

#include <gtest/gtest.h>

#include "baselines/doduo.h"
#include "baselines/feature_mlp.h"
#include "bench/bench_common.h"
#include "core/explain_ti_model.h"
#include "data/git_generator.h"
#include "data/wiki_generator.h"
#include "eval/sufficiency.h"
#include "util/string_util.h"

namespace explainti {
namespace {

data::TableCorpus SmallWiki() {
  data::WikiTableOptions options;
  options.num_tables = 80;
  return data::GenerateWikiTableCorpus(options);
}

core::ExplainTiConfig SmallConfig() {
  core::ExplainTiConfig config;
  config.epochs = 5;
  config.pretrain_epochs = 1;
  return config;
}

TEST(IntegrationTest, ExplainTiLearnsBothWikiTasks) {
  const data::TableCorpus corpus = SmallWiki();
  core::ExplainTiModel model(SmallConfig(), corpus);
  const core::FitStats stats = model.Fit();
  EXPECT_GT(stats.best_valid_f1, 0.2f);
  EXPECT_GE(stats.best_epoch, 0);
  EXPECT_GT(stats.pretrain_seconds, 0.0);

  const eval::F1Scores rel =
      model.Evaluate(core::TaskKind::kRelation, data::SplitPart::kTest);
  EXPECT_GT(rel.micro, 0.4) << "relation task should be learnable";
}

TEST(IntegrationTest, GitCorpusTypeOnlyPipeline) {
  data::GitTableOptions options;
  options.num_tables = 50;
  options.min_rows = 10;
  options.max_rows = 30;
  const data::TableCorpus corpus = data::GenerateGitTableCorpus(options);

  core::ExplainTiConfig config = SmallConfig();
  config.epochs = 8;
  core::ExplainTiModel model(config, corpus);
  model.Fit();
  EXPECT_TRUE(model.HasTask(core::TaskKind::kType));
  EXPECT_FALSE(model.HasTask(core::TaskKind::kRelation));

  const eval::F1Scores f1 =
      model.Evaluate(core::TaskKind::kType, data::SplitPart::kTest);
  EXPECT_GT(f1.micro, 0.4) << "headers are highly indicative on GitTable";

  const core::Explanation z = model.Explain(
      core::TaskKind::kType, model.task_data(core::TaskKind::kType).test_ids[0]);
  EXPECT_FALSE(z.local.empty());
  EXPECT_FALSE(z.global.empty());
}

TEST(IntegrationTest, ExplanationSufficiencyLoopRuns) {
  const data::TableCorpus corpus = SmallWiki();
  core::ExplainTiModel model(SmallConfig(), corpus);
  model.Fit();
  const core::TaskData& task = model.task_data(core::TaskKind::kType);

  const eval::ExplanationDataset dataset = bench::BuildExplanationDataset(
      task, [&](int id) {
        const core::Explanation z = model.Explain(core::TaskKind::kType, id);
        return z.global.empty() ? std::string() : z.global[0].text;
      });
  ASSERT_EQ(dataset.train_texts.size(), task.train_ids.size());
  const eval::F1Scores f1 = eval::EvaluateSufficiency(dataset);
  // GE retrieves label-aligned neighbours once fine-tuned: well above
  // chance on 30 labels.
  EXPECT_GT(f1.micro, 0.25);
}

TEST(IntegrationTest, FeatureBaselineAndTransformerAgreeOnTaskShape) {
  const data::TableCorpus corpus = SmallWiki();
  auto sherlock = baselines::MakeSherlock(5);
  sherlock->Fit(corpus);

  baselines::TransformerBaselineConfig config;
  config.epochs = 6;
  config.pretrain_epochs = 1;
  baselines::Doduo doduo(config);
  doduo.Fit(corpus);

  const eval::F1Scores sherlock_f1 = baselines::EvaluateInterpreter(
      *sherlock, corpus, core::TaskKind::kType, data::SplitPart::kTest);
  const eval::F1Scores doduo_f1 = baselines::EvaluateInterpreter(
      doduo, corpus, core::TaskKind::kType, data::SplitPart::kTest);
  // The paper's headline ordering at any scale: value-only features lose
  // to the serialised-transformer approach.
  EXPECT_GT(doduo_f1.micro + 0.10, sherlock_f1.micro);
}

TEST(IntegrationTest, StructuralModuleDoesNotHurtTypePrediction) {
  // Table III's ablation shape: on Web tables, SE helps type prediction
  // (or at minimum does not hurt it). At this reduced test scale we
  // assert the tolerant direction; the bench reproduces the full margin.
  data::WikiTableOptions options;
  options.num_tables = 120;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);

  core::ExplainTiConfig with_se = SmallConfig();
  with_se.epochs = 8;
  core::ExplainTiConfig without_se = with_se;
  without_se.use_structural = false;

  core::ExplainTiModel model_with(with_se, corpus);
  model_with.Fit();
  core::ExplainTiModel model_without(without_se, corpus);
  model_without.Fit();

  const double f1_with =
      model_with.Evaluate(core::TaskKind::kType, data::SplitPart::kTest)
          .weighted;
  const double f1_without =
      model_without.Evaluate(core::TaskKind::kType, data::SplitPart::kTest)
          .weighted;
  EXPECT_GT(f1_with + 0.08, f1_without)
      << "SE should not materially hurt type prediction";
}

}  // namespace
}  // namespace explainti
